#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <vector>

#include "core/runner.hpp"
#include "gossip/rumor.hpp"

namespace rfc::sim {
namespace {

/// BFS connectivity check over are_adjacent (test-only; O(n^2)).
bool is_connected(const Topology& topo) {
  const std::uint32_t n = topo.n();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::queue<AgentId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::uint32_t count = 1;
  while (!frontier.empty()) {
    const AgentId u = frontier.front();
    frontier.pop();
    for (AgentId v = 0; v < n; ++v) {
      if (!seen[v] && topo.are_adjacent(u, v)) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count == n;
}

TEST(CompleteTopology, EverythingAdjacent) {
  const auto topo = make_complete(16);
  EXPECT_EQ(topo->n(), 16u);
  EXPECT_TRUE(topo->are_adjacent(0, 15));
  EXPECT_EQ(topo->degree(3), 16u);
  rfc::support::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(topo->sample_neighbor(5, rng), 16u);
  }
}

TEST(RingTopology, DegreeAndAdjacency) {
  const auto topo = make_ring(10, 2);
  for (AgentId u = 0; u < 10; ++u) EXPECT_EQ(topo->degree(u), 4u);
  EXPECT_TRUE(topo->are_adjacent(0, 1));
  EXPECT_TRUE(topo->are_adjacent(0, 2));
  EXPECT_FALSE(topo->are_adjacent(0, 3));
  EXPECT_TRUE(topo->are_adjacent(0, 9));  // Wraps.
  EXPECT_TRUE(topo->are_adjacent(0, 8));
  EXPECT_TRUE(is_connected(*topo));
}

TEST(RingTopology, RejectsZeroK) {
  EXPECT_THROW(make_ring(10, 0), std::invalid_argument);
}

TEST(RingTopology, SamplesOnlyNeighbors) {
  const auto topo = make_ring(20, 1);
  rfc::support::Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) {
    const AgentId v = topo->sample_neighbor(7, rng);
    EXPECT_TRUE(v == 6 || v == 8) << v;
  }
}

TEST(RandomRegular, DegreesNearDAndConnected) {
  const auto topo = make_random_regular(128, 8, 5);
  std::uint32_t total_degree = 0;
  for (AgentId u = 0; u < 128; ++u) {
    EXPECT_LE(topo->degree(u), 8u);
    EXPECT_GE(topo->degree(u), 2u);  // At least the two cycle edges.
    total_degree += topo->degree(u);
  }
  // Cycle unions lose only the rare overlapping edges.
  EXPECT_GE(total_degree, 128u * 7);
  EXPECT_TRUE(is_connected(*topo));
}

TEST(RandomRegular, RejectsOddOrTinyDegree) {
  EXPECT_THROW(make_random_regular(16, 3, 1), std::invalid_argument);
  EXPECT_THROW(make_random_regular(16, 0, 1), std::invalid_argument);
}

TEST(RandomRegular, SeedDeterminism) {
  const auto a = make_random_regular(64, 4, 9);
  const auto b = make_random_regular(64, 4, 9);
  for (AgentId u = 0; u < 64; ++u) {
    for (AgentId v = 0; v < 64; ++v) {
      EXPECT_EQ(a->are_adjacent(u, v), b->are_adjacent(u, v));
    }
  }
}

TEST(ErdosRenyi, EdgeDensityNearP) {
  const auto topo = make_erdos_renyi(200, 0.1, 3);
  std::uint64_t edges = 0;
  for (AgentId u = 0; u < 200; ++u) edges += topo->degree(u);
  edges /= 2;
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(edges), expected, 4 * std::sqrt(expected));
}

TEST(ErdosRenyi, SuperConnectivityRegimeIsConnected) {
  const double p = 4.0 * std::log(256.0) / 256;
  EXPECT_TRUE(is_connected(*make_erdos_renyi(256, p, 11)));
}

TEST(ErdosRenyi, RejectsBadProbability) {
  EXPECT_THROW(make_erdos_renyi(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(make_erdos_renyi(10, 1.5, 1), std::invalid_argument);
}

TEST(ErdosRenyi, IsolatedNodeSelfSamples) {
  const auto topo = make_erdos_renyi(8, 0.0, 1);
  rfc::support::Xoshiro256 rng(1);
  EXPECT_EQ(topo->sample_neighbor(3, rng), 3u);
  EXPECT_EQ(topo->degree(3), 0u);
}

TEST(TopologyIntegration, RumorSpreadsOnExpander) {
  gossip::SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 4;
  cfg.topology = make_random_regular(256, 8, 4);
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_LT(r.rounds, 60u);  // Θ(log n) with expander constants.
}

TEST(TopologyIntegration, RumorOnRingTakesLinearTime) {
  gossip::SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 4;
  cfg.topology = make_ring(256, 1);
  cfg.max_rounds = 10'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.rounds, 60u);  // Frontier moves O(1) per round.
}

TEST(TopologyIntegration, ProtocolSucceedsOnExpander) {
  core::RunConfig cfg;
  cfg.n = 256;
  cfg.gamma = 5.0;
  cfg.topology = make_random_regular(256, 8, 21);
  cfg.colors = core::split_colors(cfg.n, {0.5, 0.5});
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    if (!core::run_protocol(cfg).failed()) ++successes;
  }
  EXPECT_GE(successes, 9);
}

TEST(TopologyIntegration, ProtocolStarvesOnRing) {
  core::RunConfig cfg;
  cfg.n = 256;
  cfg.gamma = 4.0;
  cfg.topology = make_ring(256, 1);
  cfg.seed = 8;
  const auto r = core::run_protocol(cfg);
  // The Θ(log n) Find-Min budget cannot cover a Θ(n)-diameter graph: the
  // protocol detects the disagreement and fails safely.
  EXPECT_TRUE(r.failed());
}

}  // namespace
}  // namespace rfc::sim
