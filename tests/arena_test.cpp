// Unit tests for the per-round bump allocator (support/arena.hpp):
// alignment guarantees, reset-and-reuse (the steady state allocates
// nothing), large-object fallback chunks, and finalizer ordering.

#include "support/arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace rfc::support {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  // Interleave odd sizes with strict alignments; every pointer must honor
  // the requested alignment regardless of what preceded it.
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (std::size_t size : {1u, 3u, 7u, 24u, 100u}) {
      void* p = arena.allocate(size, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "size=" << size << " align=" << align;
      std::memset(p, 0xAB, size);  // Must be writable storage.
    }
  }
}

TEST(ArenaTest, ZeroSizeAllocationYieldsDistinctPointer) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a, b);  // Size 0 is bumped to 1 byte, so pointers are unique.
}

TEST(ArenaTest, ResetRewindsAndReusesChunks) {
  Arena arena;
  // Fill several chunks' worth.
  for (int i = 0; i < 100; ++i) arena.allocate(4096, 8);
  const std::size_t chunks_after_fill = arena.chunk_count();
  EXPECT_GT(chunks_after_fill, 1u);
  EXPECT_EQ(arena.bytes_allocated(), 100u * 4096u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.total_resets(), 1u);
  // Standard chunks survive the reset...
  EXPECT_EQ(arena.chunk_count(), chunks_after_fill);

  // ...and the same workload reuses them instead of growing the arena.
  for (int i = 0; i < 100; ++i) arena.allocate(4096, 8);
  EXPECT_EQ(arena.chunk_count(), chunks_after_fill);
}

TEST(ArenaTest, FirstAllocationOfFreshChunkIsReused) {
  Arena arena;
  void* first = arena.allocate(64, 8);
  arena.reset();
  void* again = arena.allocate(64, 8);
  // Bump rewind: the first post-reset allocation lands on the same storage.
  EXPECT_EQ(first, again);
}

TEST(ArenaTest, LargeObjectsGetDedicatedChunksFreedOnReset) {
  Arena arena;  // 64 KiB standard chunks.
  void* big = arena.allocate(Arena::kDefaultChunkBytes * 4, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  std::memset(big, 0xCD, Arena::kDefaultChunkBytes * 4);

  // A small allocation after the oversized one must not land inside it.
  void* small = arena.allocate(16, 8);
  ASSERT_NE(small, nullptr);
  const std::size_t with_big = arena.chunk_count();

  arena.reset();
  // The dedicated chunk is gone; standard chunks are kept.
  EXPECT_LT(arena.chunk_count(), with_big);

  // The arena still works after dropping the oversized chunk.
  void* p = arena.allocate(128, 8);
  ASSERT_NE(p, nullptr);
}

struct Tracked {
  explicit Tracked(std::vector<int>* log_, int id_) : log(log_), id(id_) {
    heap.resize(8, id_);  // Owns real heap state, like a VoteIntention.
  }
  ~Tracked() { log->push_back(id); }
  std::vector<int>* log;
  int id;
  std::vector<int> heap;
};

TEST(ArenaTest, CreateRunsDestructorsInReverseOrderOnReset) {
  std::vector<int> destroyed;
  Arena arena;
  Tracked* a = arena.create<Tracked>(&destroyed, 1);
  Tracked* b = arena.create<Tracked>(&destroyed, 2);
  Tracked* c = arena.create<Tracked>(&destroyed, 3);
  EXPECT_EQ(a->heap[0], 1);
  EXPECT_EQ(b->heap[0], 2);
  EXPECT_EQ(c->heap[0], 3);
  EXPECT_TRUE(destroyed.empty());

  arena.reset();
  EXPECT_EQ(destroyed, (std::vector<int>{3, 2, 1}));

  // A second reset must not double-run finalizers.
  arena.reset();
  EXPECT_EQ(destroyed.size(), 3u);
}

TEST(ArenaTest, DestructorFinalizesLiveObjects) {
  std::vector<int> destroyed;
  {
    Arena arena;
    arena.create<Tracked>(&destroyed, 7);
  }
  EXPECT_EQ(destroyed, (std::vector<int>{7}));
}

TEST(ArenaTest, TriviallyDestructibleTypesRegisterNoFinalizer) {
  // Indirect check: creating many trivially-destructible objects and
  // resetting must work (nothing to verify beyond no crash and reuse), and
  // create() returns properly aligned, constructed objects.
  Arena arena;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t* v = arena.create<std::uint64_t>(0xDEADBEEFu + i);
    ASSERT_EQ(*v, 0xDEADBEEFu + static_cast<std::uint64_t>(i));
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(v) % alignof(std::uint64_t),
              0u);
  }
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ArenaTest, SmallChunkArenaStillServesMixedSizes) {
  Arena arena(256);  // Tiny chunks force frequent chunk turnover.
  std::vector<void*> ptrs;
  for (int i = 0; i < 64; ++i) {
    void* p = arena.allocate(static_cast<std::size_t>(1 + (i * 37) % 300), 8);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  // All pointers distinct.
  std::sort(ptrs.begin(), ptrs.end());
  EXPECT_EQ(std::adjacent_find(ptrs.begin(), ptrs.end()), ptrs.end());
}

}  // namespace
}  // namespace rfc::support
