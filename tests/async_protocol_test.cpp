// The exploratory asynchronous Protocol P: schedule math, guard-band
// effect, fairness when it succeeds.
#include "core/async_protocol.hpp"

#include <gtest/gtest.h>

#include <map>

namespace rfc::core {
namespace {

TEST(AsyncSchedule, PhaseBoundaries) {
  AsyncSchedule s;
  s.q = 10;
  s.slack = 3;
  using P = AsyncSchedule::LocalPhase;
  EXPECT_EQ(s.phase_of(0), P::kCommitment);
  EXPECT_EQ(s.phase_of(9), P::kCommitment);
  EXPECT_EQ(s.phase_of(10), P::kGuard);
  EXPECT_EQ(s.phase_of(12), P::kGuard);
  EXPECT_EQ(s.phase_of(13), P::kVoting);
  EXPECT_EQ(s.phase_of(22), P::kVoting);
  EXPECT_EQ(s.phase_of(23), P::kGuard);
  EXPECT_EQ(s.phase_of(25), P::kGuard);
  EXPECT_EQ(s.phase_of(26), P::kFindMin);
  EXPECT_EQ(s.phase_of(38), P::kFindMin);  // Length q + slack = 13.
  EXPECT_EQ(s.phase_of(39), P::kCoherence);
  EXPECT_EQ(s.phase_of(48), P::kCoherence);
  EXPECT_EQ(s.phase_of(49), P::kFinished);
  EXPECT_EQ(s.total_activations(), 49u);
}

TEST(AsyncSchedule, ZeroSlackIsContiguous) {
  AsyncSchedule s;
  s.q = 5;
  s.slack = 0;
  using P = AsyncSchedule::LocalPhase;
  EXPECT_EQ(s.phase_of(4), P::kCommitment);
  EXPECT_EQ(s.phase_of(5), P::kVoting);
  EXPECT_EQ(s.phase_of(10), P::kFindMin);
  EXPECT_EQ(s.phase_of(15), P::kCoherence);
  EXPECT_EQ(s.phase_of(20), P::kFinished);
}

TEST(AsyncSchedule, IndexWithinPhase) {
  AsyncSchedule s;
  s.q = 10;
  s.slack = 3;
  EXPECT_EQ(s.index_of(0), 0u);
  EXPECT_EQ(s.index_of(9), 9u);
  EXPECT_EQ(s.index_of(13), 0u);  // First voting activation.
  EXPECT_EQ(s.index_of(22), 9u);  // Last voting activation.
  EXPECT_EQ(s.index_of(26), 0u);  // First find-min activation.
}

TEST(AsyncProtocol, GuardBandsMakeItSucceed) {
  // With a generous guard band the full pipeline (audit, vote, broadcast,
  // verify) goes through in the sequential model.
  AsyncRunConfig cfg;
  cfg.n = 96;
  cfg.gamma = 4.0;
  cfg.slack = 40;  // ~2 sqrt(q log n) at this size.
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    if (!run_async_protocol(cfg).failed()) ++successes;
  }
  EXPECT_GE(successes, 8);
}

TEST(AsyncProtocol, NaiveScheduleFailsMoreOften) {
  // slack = 0: late votes miss sealed certificates and strict verification
  // fires.  This is the measured obstacle of open problem #2.
  int naive_successes = 0, guarded_successes = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    AsyncRunConfig cfg;
    cfg.n = 96;
    cfg.gamma = 4.0;
    cfg.seed = seed;
    cfg.slack = 0;
    if (!run_async_protocol(cfg).failed()) ++naive_successes;
    cfg.slack = 40;
    if (!run_async_protocol(cfg).failed()) ++guarded_successes;
  }
  EXPECT_GT(guarded_successes, naive_successes);
}

TEST(AsyncProtocol, WinnerIsAValidColor) {
  AsyncRunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.slack = 40;
  cfg.colors.assign(64, 0);
  for (int i = 0; i < 16; ++i) cfg.colors[i] = 1;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cfg.seed = seed;
    const auto r = run_async_protocol(cfg);
    if (!r.failed()) {
      EXPECT_TRUE(r.winner == 0 || r.winner == 1);
    }
  }
}

TEST(AsyncProtocol, RoughlyFairWhenItSucceeds) {
  AsyncRunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.slack = 48;
  cfg.colors.assign(64, 0);
  for (int i = 0; i < 32; ++i) cfg.colors[i] = 1;
  int wins1 = 0, successes = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    cfg.seed = seed;
    const auto r = run_async_protocol(cfg);
    if (!r.failed()) {
      ++successes;
      if (r.winner == 1) ++wins1;
    }
  }
  ASSERT_GT(successes, 30);
  const double share =
      static_cast<double>(wins1) / static_cast<double>(successes);
  EXPECT_NEAR(share, 0.5, 0.25);
}

TEST(AsyncProtocol, SeedDeterministic) {
  AsyncRunConfig cfg;
  cfg.n = 48;
  cfg.gamma = 3.0;
  cfg.slack = 30;
  cfg.seed = 77;
  const auto a = run_async_protocol(cfg);
  const auto b = run_async_protocol(cfg);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(AsyncProtocol, ToleratesFaults) {
  AsyncRunConfig cfg;
  cfg.n = 96;
  cfg.gamma = 5.0;
  cfg.slack = 50;
  cfg.num_faulty = 24;
  cfg.placement = sim::FaultPlacement::kRandom;
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const auto r = run_async_protocol(cfg);
    if (!r.failed()) {
      ++successes;
      EXPECT_EQ(r.active_colors.size(), 72u);  // Leader election colors.
    }
  }
  EXPECT_GE(successes, 7);
}

}  // namespace
}  // namespace rfc::core
