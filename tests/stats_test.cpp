#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfc::support {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Histogram, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bucket 0
  h.add(1.99);   // bucket 0
  h.add(2.0);    // bucket 1
  h.add(9.99);   // bucket 4
  h.add(10.0);   // overflow
  h.add(25.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(OutcomeCounter, CountsAndFractions) {
  OutcomeCounter c;
  c.add(1);
  c.add(1);
  c.add(2);
  c.add(-1);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.count(1), 2u);
  EXPECT_EQ(c.count(7), 0u);
  EXPECT_DOUBLE_EQ(c.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction(-1), 0.25);
}

TEST(WilsonInterval, ContainsTruthForBalancedData) {
  const Interval ci = wilson_interval(500, 1000);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_TRUE(ci.contains(0.5));
  EXPECT_NEAR(ci.lo, 0.469, 0.005);
  EXPECT_NEAR(ci.hi, 0.531, 0.005);
}

TEST(WilsonInterval, ExtremesStayInUnitRange) {
  const Interval zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const Interval one = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(one.hi, 1.0);
  EXPECT_LT(one.lo, 1.0);
}

TEST(WilsonInterval, NoTrialsIsVacuous) {
  const Interval ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(WilsonInterval, NarrowsWithMoreTrials) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

}  // namespace
}  // namespace rfc::support
