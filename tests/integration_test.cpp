// End-to-end integration: the full stack (engine + gossip + protocol +
// rational + baselines + analysis) exercised together the way the examples
// and experiments use it.
#include <gtest/gtest.h>

#include "analysis/equilibrium.hpp"
#include "analysis/fairness.hpp"
#include "analysis/scaling.hpp"
#include "baseline/local_fair_election.hpp"
#include "baseline/naive_election.hpp"
#include "core/runner.hpp"
#include "rational/strategies.hpp"

namespace rfc {
namespace {

TEST(Integration, MediumNetworkFullPipeline) {
  // One substantial honest run with faults: all good-execution events and
  // a clean consensus.
  core::RunConfig cfg;
  cfg.n = 512;
  cfg.gamma = 4.0;
  cfg.seed = 2024;
  cfg.colors = core::split_colors(cfg.n, {0.4, 0.35, 0.25});
  cfg.num_faulty = 128;
  cfg.placement = sim::FaultPlacement::kClustered;

  const auto r = core::run_protocol(cfg);
  ASSERT_FALSE(r.failed());
  EXPECT_TRUE(r.winner >= 0 && r.winner <= 2);
  EXPECT_EQ(r.num_active, 384u);
  EXPECT_GE(r.events.min_votes, 1u);
  EXPECT_TRUE(r.events.k_values_distinct);
  EXPECT_TRUE(r.events.find_min_agreement);

  // Communication stays far below the LOCAL baseline at this size.
  baseline::LocalElectionConfig lc;
  lc.n = cfg.n;
  const auto local = baseline::run_local_fair_election(lc);
  EXPECT_LT(r.metrics.messages(), local.messages);
}

TEST(Integration, EquilibriumAndFairnessAgreeOnHonestPlay) {
  // The two analysis paths must tell the same story for honest play: the
  // coalition's color wins at its share.
  analysis::DeviationConfig dev;
  dev.n = 96;
  dev.gamma = 3.0;
  dev.coalition_size = 24;
  dev.strategy = rational::DeviationStrategy::kHonest;
  dev.seed = 55;
  const auto eq = analysis::measure_deviation(dev, 150);

  core::RunConfig fair_cfg;
  fair_cfg.n = 96;
  fair_cfg.gamma = 3.0;
  fair_cfg.seed = 55;
  fair_cfg.colors.assign(96, 0);
  for (std::uint32_t i = 0; i < 24; ++i) fair_cfg.colors[i] = 1;
  const auto fair = analysis::measure_fairness(fair_cfg, 150);

  double fair_color1 = 0;
  for (const auto& share : fair.shares) {
    if (share.color == 1) fair_color1 = share.observed;
  }
  EXPECT_NEAR(eq.win_rate(), fair_color1, 0.12);
  EXPECT_NEAR(eq.win_rate(), 0.25, 0.12);
}

TEST(Integration, AttackedProtocolStillProtectsHonestMajority) {
  // Large-ish network, faults AND a deviating coalition simultaneously.
  const auto coalition = rational::make_prefix_coalition(8);
  core::RunConfig cfg;
  cfg.n = 256;
  cfg.gamma = 4.0;
  cfg.colors.assign(cfg.n, 0);
  for (std::uint32_t i = 0; i < 8; ++i) cfg.colors[i] = 1;
  cfg.coalition = coalition->members();
  cfg.num_faulty = 64;
  cfg.placement = sim::FaultPlacement::kSuffix;

  int coalition_wins = 0, failures = 0;
  constexpr int kTrials = 30;
  for (int i = 0; i < kTrials; ++i) {
    cfg.seed = 9000 + i;
    const auto fresh = rational::make_prefix_coalition(8);
    cfg.factory = rational::make_deviating_factory(
        rational::DeviationStrategy::kForgedCoalitionCert, fresh);
    const auto r = core::run_protocol(cfg);
    if (r.failed()) {
      ++failures;
    } else if (r.winner == 1) {
      ++coalition_wins;
    }
  }
  // The attack must never convert into wins; it only burns executions.
  EXPECT_EQ(coalition_wins, 0);
  EXPECT_GT(failures, kTrials / 2);
}

TEST(Integration, ScalingSweepMatchesDirectRuns) {
  core::RunConfig base;
  base.gamma = 3.0;
  base.seed = 31;
  const auto sweep = analysis::measure_scaling(base, {64}, 3);
  ASSERT_EQ(sweep.points.size(), 1u);

  // Reproduce trial 0 by hand and compare.
  core::RunConfig direct;
  direct.n = 64;
  direct.gamma = 3.0;
  direct.seed = rfc::support::derive_seed(31, 0);
  const auto r = core::run_protocol(direct);
  EXPECT_EQ(sweep.points[0].total_bits.min() <=
                static_cast<double>(r.metrics.total_bits) &&
            static_cast<double>(r.metrics.total_bits) <=
                sweep.points[0].total_bits.max(),
            true);
}

TEST(Integration, NaiveBaselineBreaksWhereProtocolHolds) {
  // The paper's motivation in one test: identical cheating intent, two
  // protocols, opposite outcomes.
  baseline::NaiveElectionConfig naive;
  naive.n = 128;
  naive.gamma = 4.0;
  naive.cheaters = 1;
  naive.colors.assign(128, 0);
  naive.colors[0] = 1;
  int naive_cheater_wins = 0;
  for (int i = 0; i < 20; ++i) {
    naive.seed = 100 + i;
    if (baseline::run_naive_election(naive).winner == 1) {
      ++naive_cheater_wins;
    }
  }
  EXPECT_EQ(naive_cheater_wins, 20);

  analysis::DeviationConfig dev;
  dev.n = 128;
  dev.gamma = 4.0;
  dev.coalition_size = 1;
  dev.strategy = rational::DeviationStrategy::kForgedEmptyCert;
  dev.seed = 100;
  const auto report = analysis::measure_deviation(dev, 20);
  EXPECT_EQ(report.coalition_wins, 0u);
}

}  // namespace
}  // namespace rfc
