// White-box tests of the honest ProtocolAgent driven through a real engine.
#include "core/protocol_agent.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/payloads.hpp"
#include "sim/engine.hpp"

namespace rfc::core {
namespace {

struct World {
  explicit World(std::uint32_t n, double gamma = 2.0, std::uint64_t seed = 1)
      : params(ProtocolParams::make(n, gamma)), engine({n, seed}) {
    for (std::uint32_t i = 0; i < n; ++i) {
      auto agent = std::make_unique<ProtocolAgent>(
          params, static_cast<Color>(i % 3));
      agents.push_back(agent.get());
      engine.set_agent(i, std::move(agent));
    }
  }
  void run_all() { engine.run(params.total_rounds() + 4); }

  ProtocolParams params;
  sim::Engine engine;
  std::vector<ProtocolAgent*> agents;
};

TEST(ProtocolAgent, IntentionHasCorrectShape) {
  World w(64);
  w.engine.step();  // on_start runs before round 0.
  for (const auto* agent : w.agents) {
    const VoteIntention& h = agent->intention();
    ASSERT_EQ(h.size(), w.params.q);
    for (const VoteEntry& e : h) {
      EXPECT_LT(e.value, w.params.m);
      EXPECT_LT(e.target, w.params.n);
    }
  }
}

TEST(ProtocolAgent, IntentionsVaryAcrossAgents) {
  World w(32);
  w.engine.step();
  std::set<std::uint64_t> first_values;
  for (const auto* agent : w.agents) {
    first_values.insert(agent->intention().front().value);
  }
  EXPECT_GT(first_values.size(), 30u);  // Collisions vanishingly unlikely.
}

TEST(ProtocolAgent, CommitmentCollectsOnePullPerRound) {
  World w(64);
  for (std::uint32_t r = 0; r < w.params.q; ++r) w.engine.step();
  for (const auto* agent : w.agents) {
    // Up to q records (self-pulls and repeats dedupe).
    EXPECT_GE(agent->collected_intentions().size(), 1u);
    EXPECT_LE(agent->collected_intentions().size(), w.params.q);
    for (const auto& [peer, record] : agent->collected_intentions()) {
      EXPECT_LT(peer, w.params.n);
      EXPECT_FALSE(record.marked_faulty);  // Everyone honest & active.
      EXPECT_EQ(record.intention.size(), w.params.q);
    }
  }
}

TEST(ProtocolAgent, FaultyPeersAreMarkedFaulty) {
  World w(32);
  // Make half the network faulty before starting.
  for (std::uint32_t i = 16; i < 32; ++i) w.engine.set_faulty(i);
  for (std::uint32_t r = 0; r < w.params.q; ++r) w.engine.step();
  bool saw_faulty_mark = false;
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (const auto& [peer, record] :
         w.agents[i]->collected_intentions()) {
      if (peer >= 16) {
        EXPECT_TRUE(record.marked_faulty);
        saw_faulty_mark = true;
      } else {
        EXPECT_FALSE(record.marked_faulty);
      }
    }
  }
  EXPECT_TRUE(saw_faulty_mark);  // With q pulls over 32 labels, certain.
}

TEST(ProtocolAgent, VotesMatchDeclaredIntentions) {
  World w(64);
  for (std::uint32_t r = 0; r < 2 * w.params.q; ++r) w.engine.step();
  // Cross-check: every received vote (v, j, h) equals H_v[j] and targets
  // the receiver.
  for (std::uint32_t i = 0; i < 64; ++i) {
    for (const ReceivedVote& vote : w.agents[i]->received_votes()) {
      const VoteIntention& hv = w.agents[vote.voter]->intention();
      EXPECT_EQ(hv.at(vote.round_index).value, vote.value);
      EXPECT_EQ(hv.at(vote.round_index).target, i);
    }
  }
}

TEST(ProtocolAgent, TotalVotesEqualsActiveTimesQ) {
  World w(64);
  for (std::uint32_t r = 0; r < 2 * w.params.q; ++r) w.engine.step();
  std::size_t total = 0;
  for (const auto* agent : w.agents) total += agent->received_votes().size();
  EXPECT_EQ(total, 64ull * w.params.q);
}

TEST(ProtocolAgent, CertificateBuiltAtFindMinStart) {
  World w(64);
  for (std::uint32_t r = 0; r < 2 * w.params.q; ++r) w.engine.step();
  for (const auto* agent : w.agents) {
    EXPECT_FALSE(agent->has_own_certificate());
  }
  w.engine.step();
  for (const auto* agent : w.agents) {
    ASSERT_TRUE(agent->has_own_certificate());
    const Certificate& ce = agent->own_certificate();
    EXPECT_EQ(ce.k, ce.vote_sum(w.params));
    EXPECT_EQ(ce.votes.size(), agent->received_votes().size());
  }
}

TEST(ProtocolAgent, FindMinReachesGlobalMinimum) {
  World w(128, 4.0);
  for (std::uint32_t r = 0; r < 3 * w.params.q; ++r) w.engine.step();
  Certificate global_min = w.agents[0]->own_certificate();
  for (const auto* agent : w.agents) {
    if (agent->own_certificate().less_than(global_min)) {
      global_min = agent->own_certificate();
    }
  }
  for (const auto* agent : w.agents) {
    EXPECT_EQ(agent->min_certificate(), global_min);
  }
}

TEST(ProtocolAgent, FullRunDecidesUnanimously) {
  World w(128, 4.0);
  w.run_all();
  ASSERT_TRUE(w.agents[0]->decided());
  const Color winner = w.agents[0]->decision();
  EXPECT_NE(winner, kNoColor);
  for (const auto* agent : w.agents) {
    EXPECT_TRUE(agent->decided());
    EXPECT_FALSE(agent->failed());
    EXPECT_EQ(agent->decision(), winner);
    EXPECT_EQ(agent->verification_failure(), VerificationFailure::kNone);
  }
}

TEST(ProtocolAgent, WinnerColorBelongsToMinCertOwner) {
  World w(64, 3.0);
  w.run_all();
  const Certificate& min_cert = w.agents[0]->min_certificate();
  EXPECT_EQ(w.agents[0]->decision(),
            w.agents[min_cert.owner]->initial_color());
}

TEST(ProtocolAgent, CommitmentPullersAreRecorded) {
  World w(32);
  for (std::uint32_t r = 0; r < w.params.q; ++r) w.engine.step();
  std::size_t total_pulls = 0;
  for (const auto* agent : w.agents) {
    total_pulls += agent->commitment_pullers().size();
  }
  EXPECT_EQ(total_pulls, 32ull * w.params.q);
}

TEST(ProtocolAgent, ServesNothingOutsideProtocolPhases) {
  World w(16);
  // Drive to the Voting phase, where the protocol defines no pulls.
  for (std::uint32_t r = 0; r < w.params.q + 1; ++r) w.engine.step();
  sim::Context ctx;
  ctx.self = 0;
  ctx.n = 16;
  ctx.round = w.params.q + 1;  // Voting.
  rfc::support::Xoshiro256 rng(1);
  ctx.rng = &rng;
  EXPECT_TRUE(w.agents[0]->serve_pull(ctx, 5).empty());
}

TEST(ProtocolAgent, DoneAgentIsQuiescent) {
  World w(16);
  w.run_all();
  ASSERT_TRUE(w.agents[0]->done());
  sim::Context ctx;
  ctx.self = 0;
  ctx.n = 16;
  ctx.round = 0;  // Even a Commitment-phase pull gets silence now.
  rfc::support::Xoshiro256 rng(1);
  ctx.rng = &rng;
  EXPECT_TRUE(w.agents[0]->serve_pull(ctx, 3).empty());
  EXPECT_EQ(w.agents[0]->on_round(ctx).kind, sim::ActionKind::kIdle);
}

TEST(ProtocolAgent, TerminatesWithinScheduledRounds) {
  World w(64);
  const std::uint64_t rounds = w.engine.run(w.params.total_rounds() + 100);
  EXPECT_EQ(rounds, w.params.total_rounds());
}

}  // namespace
}  // namespace rfc::core
