// TraceRecorder + the protocol's phase structure observed from outside:
// the communication pattern of Algorithm 1 is visible in the per-round
// metric deltas.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/params.hpp"
#include "core/protocol_agent.hpp"

namespace rfc::sim {
namespace {

struct TracedWorld {
  explicit TracedWorld(std::uint32_t n, double gamma = 2.0)
      : params(core::ProtocolParams::make(n, gamma)), engine({n, 3}) {
    for (std::uint32_t i = 0; i < n; ++i) {
      engine.set_agent(i, std::make_unique<core::ProtocolAgent>(
                              params, static_cast<core::Color>(i)));
    }
    trace.attach(engine);
    engine.run(params.total_rounds());
  }
  core::ProtocolParams params;
  Engine engine;
  TraceRecorder trace;
};

TEST(Trace, RecordsEveryRound) {
  TracedWorld w(32);
  EXPECT_EQ(w.trace.rounds().size(), w.params.total_rounds());
  for (std::size_t i = 0; i < w.trace.rounds().size(); ++i) {
    EXPECT_EQ(w.trace.rounds()[i].round, i);
  }
}

TEST(Trace, CommitmentPhaseIsPullOnly) {
  TracedWorld w(32);
  const auto q = w.params.q;
  EXPECT_EQ(w.trace.total_pushes(0, q), 0u);
  EXPECT_EQ(w.trace.total_pulls(0, q), 32ull * q);
}

TEST(Trace, VotingPhaseIsPushOnly) {
  TracedWorld w(32);
  const auto q = w.params.q;
  EXPECT_EQ(w.trace.total_pushes(q, 2ull * q), 32ull * q);
  EXPECT_EQ(w.trace.total_pulls(q, 2ull * q), 0u);
}

TEST(Trace, FindMinPhaseIsPullOnly) {
  TracedWorld w(32);
  const auto q = w.params.q;
  EXPECT_EQ(w.trace.total_pushes(2ull * q, 3ull * q), 0u);
  EXPECT_EQ(w.trace.total_pulls(2ull * q, 3ull * q), 32ull * q);
}

TEST(Trace, CoherencePhaseIsPushOnly) {
  TracedWorld w(32);
  const auto q = w.params.q;
  EXPECT_EQ(w.trace.total_pushes(3ull * q, 4ull * q), 32ull * q);
  EXPECT_EQ(w.trace.total_pulls(3ull * q, 4ull * q), 0u);
}

TEST(Trace, VerificationRoundIsSilent) {
  TracedWorld w(32);
  const auto last = w.params.communication_rounds();
  EXPECT_EQ(w.trace.total_pushes(last, last + 1), 0u);
  EXPECT_EQ(w.trace.total_pulls(last, last + 1), 0u);
  EXPECT_EQ(w.trace.total_bits(last, last + 1), 0u);
}

TEST(Trace, BitsSumToEngineTotal) {
  TracedWorld w(48);
  EXPECT_EQ(w.trace.total_bits(0, w.params.total_rounds()),
            w.engine.metrics().total_bits);
}

TEST(Trace, CoherenceBitsDominateWithoutDigest) {
  // The Θ(log^2 n)-bit certificates make Coherence the costliest push
  // phase — the motivation for the digest optimization.
  TracedWorld w(64, 3.0);
  const auto q = w.params.q;
  const auto voting_bits = w.trace.total_bits(q, 2ull * q);
  const auto coherence_bits = w.trace.total_bits(3ull * q, 4ull * q);
  EXPECT_GT(coherence_bits, voting_bits);
}

TEST(Trace, RenderContainsRoundLines) {
  TracedWorld w(8);
  const std::string out = w.trace.render();
  EXPECT_NE(out.find("r0:"), std::string::npos);
  EXPECT_NE(out.find("push="), std::string::npos);
}

}  // namespace
}  // namespace rfc::sim
