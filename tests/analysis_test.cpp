#include <gtest/gtest.h>

#include "analysis/montecarlo.hpp"
#include "analysis/scaling.hpp"

namespace rfc::analysis {
namespace {

TEST(MonteCarlo, ResultsInIndexOrderAndSeedDerived) {
  const auto results = run_trials<std::uint64_t>(
      16, 7,
      [](std::uint64_t seed, std::size_t index) {
        return seed ^ (index << 32);
      },
      4);
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(results[i],
              rfc::support::derive_seed(7, i) ^ (std::uint64_t{i} << 32));
  }
}

TEST(MonteCarlo, ThreadCountDoesNotChangeResults) {
  const auto run = [](std::size_t threads) {
    return run_trials<std::uint64_t>(
        64, 99,
        [](std::uint64_t seed, std::size_t) { return seed * 3; }, threads);
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(Scaling, BitsGrowSubquadratically) {
  core::RunConfig base;
  base.gamma = 3.0;
  base.seed = 5;
  const auto sweep = measure_scaling(base, {64, 128, 256, 512}, 6);
  ASSERT_EQ(sweep.points.size(), 4u);
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_GT(sweep.points[i].total_bits.mean(),
              sweep.points[i - 1].total_bits.mean());
  }
  const auto fit = sweep.total_bits_fit();
  EXPECT_GT(fit.exponent, 0.9);
  EXPECT_LT(fit.exponent, 1.8);  // Well below the baseline's 2.
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(Scaling, NoFailuresAtDefaultGamma) {
  core::RunConfig base;
  base.gamma = 4.0;
  base.seed = 6;
  const auto sweep = measure_scaling(base, {64, 256}, 10);
  for (const auto& p : sweep.points) {
    EXPECT_EQ(p.failures, 0u) << "n=" << p.n;
    EXPECT_EQ(p.trials, 10u);
    EXPECT_GE(p.min_votes.min(), 1.0);
  }
}

TEST(Scaling, NormalizedMetricsAreBounded) {
  core::RunConfig base;
  base.gamma = 4.0;
  base.seed = 8;
  const auto sweep = measure_scaling(base, {128, 1024}, 4);
  for (const auto& p : sweep.points) {
    EXPECT_GT(p.rounds_per_log_n(), 1.0);
    EXPECT_LT(p.rounds_per_log_n(), 40.0);
    EXPECT_GT(p.max_msg_per_log2_n(), 0.1);
    EXPECT_LT(p.max_msg_per_log2_n(), 200.0);
    EXPECT_GT(p.bits_per_n_log3_n(), 0.01);
    EXPECT_LT(p.bits_per_n_log3_n(), 500.0);
  }
}

}  // namespace
}  // namespace rfc::analysis
