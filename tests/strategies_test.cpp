// Behavioural tests of each deviation strategy: what the attack does, and
// how Protocol P punishes it.
#include "rational/strategies.hpp"

#include <gtest/gtest.h>

#include "analysis/equilibrium.hpp"
#include "core/runner.hpp"

namespace rfc::rational {
namespace {

/// Runs `trials` executions of strategy `s` with a coalition of size t
/// (color 1) against honest agents (color 0) and returns (wins, failures).
struct AttackOutcome {
  std::uint64_t coalition_wins = 0;
  std::uint64_t failures = 0;
  std::uint64_t trials = 0;
};

AttackOutcome run_attack(DeviationStrategy s, std::uint32_t n,
                         std::uint32_t t, std::uint64_t trials,
                         bool strict = true, double gamma = 4.0) {
  AttackOutcome outcome;
  outcome.trials = trials;
  for (std::uint64_t i = 0; i < trials; ++i) {
    core::RunConfig cfg;
    cfg.n = n;
    cfg.gamma = gamma;
    cfg.seed = 1000 + i;
    cfg.strict_verification = strict;
    cfg.colors.assign(n, 0);
    const CoalitionPtr coalition = make_prefix_coalition(t);
    for (std::uint32_t j = 0; j < t; ++j) cfg.colors[j] = 1;
    cfg.coalition = coalition->members();
    cfg.factory = make_deviating_factory(s, coalition);
    const core::RunResult r = core::run_protocol(cfg);
    if (r.failed()) {
      ++outcome.failures;
    } else if (r.winner == 1) {
      ++outcome.coalition_wins;
    }
  }
  return outcome;
}

TEST(Coalition, ConstructionAndAccessors) {
  const auto c = make_prefix_coalition(4);
  EXPECT_EQ(c->size(), 4u);
  EXPECT_EQ(c->beneficiary(), 0u);
  EXPECT_EQ(c->fixer(), 0u);
  EXPECT_TRUE(c->contains(3));
  EXPECT_FALSE(c->contains(4));
}

TEST(Coalition, BeneficiaryMustBeMember) {
  EXPECT_THROW(Coalition({1, 2}, 5), std::invalid_argument);
  EXPECT_THROW(Coalition({}, 0), std::invalid_argument);
}

TEST(Coalition, BlackboardRoundTrips) {
  const auto c = make_prefix_coalition(2);
  core::VoteIntention h(3, {7, 0});
  c->publish_intention(1, h);
  EXPECT_EQ(c->declared_intentions().at(1), h);
  c->publish_beneficiary_vote_sum(42);
  EXPECT_EQ(c->beneficiary_vote_sum(), 42u);
}

TEST(Strategies, AllHaveNamesAndFactories) {
  for (const auto s : all_deviation_strategies()) {
    EXPECT_NE(to_string(s), "unknown");
    const auto factory = make_deviating_factory(s, make_prefix_coalition(2));
    ASSERT_TRUE(factory);
    const auto params = core::ProtocolParams::make(16, 2.0);
    auto agent = factory(0, params, 1);
    if (s == DeviationStrategy::kHonest) {
      EXPECT_EQ(agent, nullptr);
    } else {
      EXPECT_NE(agent, nullptr);
    }
  }
}

TEST(Strategies, HonestControlWinsAtFairShare) {
  const auto outcome = run_attack(DeviationStrategy::kHonest, 64, 16, 60);
  EXPECT_EQ(outcome.failures, 0u);
  const double rate =
      static_cast<double>(outcome.coalition_wins) / outcome.trials;
  EXPECT_NEAR(rate, 0.25, 0.17);  // Fair share 16/64 with wide CI.
}

TEST(Strategies, SelfishVotingGainsNothing) {
  const auto outcome =
      run_attack(DeviationStrategy::kSelfishVoting, 64, 16, 60);
  // Votes stay consistent with declarations: no failures, no gain.
  EXPECT_EQ(outcome.failures, 0u);
  const double rate =
      static_cast<double>(outcome.coalition_wins) / outcome.trials;
  EXPECT_LT(rate, 0.25 + 0.17);
}

TEST(Strategies, ForgedEmptyCertIsCaughtByStrictVerification) {
  const auto outcome =
      run_attack(DeviationStrategy::kForgedEmptyCert, 64, 4, 40);
  // The forged k=0 certificate always wins Find-Min, and the completeness
  // audit then fails the protocol (votes for the beneficiary were declared
  // to honest auditors but are absent from W).
  EXPECT_EQ(outcome.coalition_wins, 0u);
  EXPECT_GT(outcome.failures, 35u);
}

TEST(Strategies, ForgedCoalitionCertCaughtStrictButWinsLax) {
  const auto strict =
      run_attack(DeviationStrategy::kForgedCoalitionCert, 64, 4, 40, true);
  EXPECT_EQ(strict.coalition_wins, 0u);
  EXPECT_GT(strict.failures, 35u);

  // Ablation: with value-only verification the same attack wins outright —
  // the completeness check is load-bearing (proof of Claim 1).
  const auto lax =
      run_attack(DeviationStrategy::kForgedCoalitionCert, 64, 4, 40, false);
  EXPECT_GT(lax.coalition_wins, 35u);
  EXPECT_EQ(lax.failures, 0u);
}

TEST(Strategies, VoteDropCaughtStrict) {
  const auto outcome = run_attack(DeviationStrategy::kVoteDrop, 64, 4, 40);
  // Whenever the dropped-vote certificate wins Find-Min, some auditor holds
  // the dropped voter's declaration and fails the protocol; the coalition
  // can never *win* with a tampered certificate.
  const double win_rate =
      static_cast<double>(outcome.coalition_wins) / outcome.trials;
  EXPECT_LT(win_rate, 4.0 / 64 + 0.15);
}

TEST(Strategies, StubbornCertForcesFailure) {
  const auto outcome =
      run_attack(DeviationStrategy::kStubbornCert, 64, 8, 40);
  // Honest agents receive mismatching certificates in Coherence: ⊥ almost
  // always (unless a coalition certificate happens to be the true min).
  EXPECT_GT(outcome.failures, 30u);
}

TEST(Strategies, SkipVerificationChangesNothing) {
  const auto outcome =
      run_attack(DeviationStrategy::kSkipVerification, 64, 16, 60);
  EXPECT_EQ(outcome.failures, 0u);
  const double rate =
      static_cast<double>(outcome.coalition_wins) / outcome.trials;
  EXPECT_NEAR(rate, 0.25, 0.17);
}

TEST(Strategies, FindMinSuppressDoesNotBlockConsensus) {
  const auto outcome =
      run_attack(DeviationStrategy::kFindMinSuppress, 64, 8, 40);
  // Honest pulls route around the suppressors w.h.p.
  EXPECT_LT(outcome.failures, 8u);
}

TEST(Strategies, PlayDeadGainsNothing) {
  const auto outcome = run_attack(DeviationStrategy::kPlayDead, 64, 8, 40);
  const double rate =
      static_cast<double>(outcome.coalition_wins) / outcome.trials;
  EXPECT_LT(rate, 8.0 / 64 + 0.18);
}

TEST(Strategies, EquivocateGainsNothing) {
  const auto outcome = run_attack(DeviationStrategy::kEquivocate, 64, 8, 40);
  const double rate =
      static_cast<double>(outcome.coalition_wins) / outcome.trials;
  EXPECT_LT(rate, 8.0 / 64 + 0.18);
}

TEST(Strategies, ForgingStillCaughtUnderDigestCoherence) {
  // The digest optimization must not weaken the audit chain: forged
  // certificates still lose under strict verification.
  std::uint64_t wins = 0, failures = 0;
  for (std::uint64_t i = 0; i < 30; ++i) {
    core::RunConfig cfg;
    cfg.n = 64;
    cfg.gamma = 4.0;
    cfg.seed = 4000 + i;
    cfg.coherence_digest = true;
    cfg.colors.assign(64, 0);
    const CoalitionPtr coalition = make_prefix_coalition(4);
    for (std::uint32_t j = 0; j < 4; ++j) cfg.colors[j] = 1;
    cfg.coalition = coalition->members();
    cfg.factory = make_deviating_factory(
        DeviationStrategy::kForgedCoalitionCert, coalition);
    const core::RunResult r = core::run_protocol(cfg);
    if (r.failed()) {
      ++failures;
    } else if (r.winner == 1) {
      ++wins;
    }
  }
  EXPECT_EQ(wins, 0u);
  EXPECT_GT(failures, 25u);
}

TEST(Strategies, AdaptiveVoteCannotBeatAudits) {
  const auto outcome =
      run_attack(DeviationStrategy::kAdaptiveVote, 64, 8, 40);
  // Voting differently from the declaration is caught whenever the forged
  // votes back the winning certificate: win rate stays at/below fair share.
  const double rate =
      static_cast<double>(outcome.coalition_wins) / outcome.trials;
  EXPECT_LT(rate, 8.0 / 64 + 0.18);
}

}  // namespace
}  // namespace rfc::rational
