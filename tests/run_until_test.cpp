// Virtual-time run budgets: the sim::Budget value type, Engine::run_until /
// Engine::run(Budget), and the budget plumbing through the run entry
// points.  The acceptance contract for continuous-time runs: a
// virtual-time horizon terminates, is deterministic per seed, and
// Metrics::virtual_time never overshoots the horizon by more than one step
// increment.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/naive_election.hpp"
#include "core/async_protocol.hpp"
#include "gossip/rumor.hpp"
#include "sim/budget.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::sim {
namespace {

class IdleForeverAgent final : public Agent {
 public:
  Action on_round(const Context&) override { return Action::idle(); }
  Payload serve_pull(const Context&, AgentId) override { return {}; }
  bool done() const override { return false; }
};

Engine idle_engine(std::uint32_t n, std::uint64_t seed,
                   const SchedulerSpec& spec) {
  Engine engine({n, seed, nullptr, spec.make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<IdleForeverAgent>());
  }
  return engine;
}

TEST(Budget, ExhaustionRules) {
  EXPECT_TRUE(Budget{}.unbounded());
  EXPECT_FALSE(Budget{}.exhausted(1'000'000, 1e12));
  EXPECT_FALSE(Budget::of_events(10).unbounded());
  EXPECT_TRUE(Budget::of_events(10).exhausted(10, 0.0));
  EXPECT_FALSE(Budget::of_events(10).exhausted(9, 1e12));
  EXPECT_TRUE(Budget::until(2.5).exhausted(0, 2.5));
  EXPECT_FALSE(Budget::until(2.5).exhausted(1'000'000, 2.49));
  // Both caps set: whichever trips first ends the run.
  const Budget both{5, 3.0};
  EXPECT_TRUE(both.exhausted(5, 0.0));
  EXPECT_TRUE(both.exhausted(0, 3.0));
  EXPECT_FALSE(both.exhausted(4, 2.9));
}

TEST(RunUntil, SynchronousHorizonCountsRounds) {
  Engine engine = idle_engine(8, 1, SchedulerSpec::synchronous());
  // Rounds are unit time: the first round starting at or past t=10.5 never
  // runs, so exactly 11 rounds execute (vtime 11 >= 10.5 after round 11).
  EXPECT_EQ(engine.run_until(10.5), 11u);
  EXPECT_DOUBLE_EQ(engine.virtual_time(), 11.0);
  // Re-running with the same horizon is a no-op; a later one resumes.
  EXPECT_EQ(engine.run_until(10.5), 11u);
  EXPECT_EQ(engine.run_until(20.0), 20u);
}

TEST(RunUntil, EventBudgetStillCaps) {
  Engine engine = idle_engine(8, 2, SchedulerSpec::synchronous());
  EXPECT_EQ(engine.run(Budget::of_events(7)), 7u);
  EXPECT_EQ(engine.run(7), 7u);  // The historical overload agrees.
  // Horizon far away, events near: events win.
  EXPECT_EQ(engine.run(Budget{9, 1e9}), 9u);
  // Events far away, horizon near: the horizon wins.
  EXPECT_EQ(engine.run(Budget{1'000, 12.0}), 12u);
}

TEST(RunUntil, PoissonHorizonTerminatesDeterministicallyWithinOneStep) {
  const double kHorizon = 4.0;
  const auto run = [&](std::uint64_t seed) {
    Engine engine = idle_engine(32, seed, SchedulerSpec::poisson());
    // Record the virtual-time trace to bound the overshoot by the last
    // step's increment.
    std::vector<double> trace;
    engine.set_round_observer([&trace](const Engine& e) {
      trace.push_back(e.virtual_time());
    });
    const std::uint64_t events = engine.run_until(kHorizon);
    EXPECT_EQ(events, trace.size());
    return trace;
  };
  const auto a = run(77);
  ASSERT_GE(a.size(), 2u);
  // Terminates past the horizon...
  EXPECT_GE(a.back(), kHorizon);
  // ...but the step *before* the last still lay short of it — i.e. the
  // overshoot is bounded by one step increment.
  EXPECT_LT(a[a.size() - 2], kHorizon);
  // ~n·λ·horizon events in expectation, not millions: the horizon binds.
  EXPECT_GT(a.size(), 32u);
  EXPECT_LT(a.size(), 32u * 20u);
  // Deterministic per seed, different across seeds.
  EXPECT_EQ(a, run(77));
  EXPECT_NE(a, run(78));
}

TEST(RunUntil, SpreadConfigHorizonBindsPoissonRun) {
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 5;
  cfg.scheduler = SchedulerSpec::poisson();
  cfg.max_rounds = 1'000'000;
  const auto full = gossip::run_rumor_spreading(cfg);
  ASSERT_TRUE(full.complete);
  // A horizon short of the broadcast's Θ(log n) virtual time truncates it.
  cfg.budget = Budget::until(1.0);
  const auto cut = gossip::run_rumor_spreading(cfg);
  EXPECT_FALSE(cut.complete);
  EXPECT_LT(cut.rounds, full.rounds);
  EXPECT_GE(cut.virtual_time, 1.0);
  // Deterministic per seed.
  const auto again = gossip::run_rumor_spreading(cfg);
  EXPECT_EQ(cut.rounds, again.rounds);
  EXPECT_DOUBLE_EQ(cut.virtual_time, again.virtual_time);
}

TEST(RunUntil, AsyncProtocolAcceptsVirtualHorizon) {
  core::AsyncRunConfig cfg;
  cfg.n = 32;
  cfg.slack = 10;
  cfg.seed = 9;
  cfg.scheduler = SchedulerSpec::poisson();
  const auto full = core::run_async_protocol(cfg);
  cfg.budget = Budget::until(3.0);
  const auto cut = core::run_async_protocol(cfg);
  // ~3 activations per agent cannot finish the audit pipeline.
  EXPECT_TRUE(cut.failed());
  EXPECT_LT(cut.steps, full.steps);
  EXPECT_GE(cut.virtual_time, 3.0);
}

TEST(RunUntil, NaiveElectionAcceptsEventBudget) {
  baseline::NaiveElectionConfig cfg;
  cfg.n = 64;
  cfg.seed = 4;
  cfg.budget = Budget::of_events(3);
  const auto r = baseline::run_naive_election(cfg);
  EXPECT_EQ(r.rounds, 3u);
}

}  // namespace
}  // namespace rfc::sim
