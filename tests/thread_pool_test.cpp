#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rfc::support {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 20 * (batch + 1));
  }
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 2);
  SUCCEED();
}

TEST(ParallelFor, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // The determinism contract: per-index outputs depend only on the index.
  const auto compute = [](std::size_t threads) {
    std::vector<std::uint64_t> out(256);
    parallel_for(
        out.size(),
        [&out](std::size_t i) { out[i] = i * 2654435761u + 17; }, threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

TEST(ParallelFor, PoolOverloadWorks) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(pool, 100, [&sum](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace rfc::support
