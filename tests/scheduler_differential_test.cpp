// Cross-scheduler differential-testing harness.
//
// Reactive policies are the first schedulers whose behavior depends on
// agent *internals* (Agent::phase()/progress() through EngineView), so a
// bug can hide in any (policy, protocol) pairing rather than in a policy
// alone.  This harness runs every policy in the SchedulerSpec registry —
// via one or more representative specs each, including the reactive
// `target=` rules — over a grid of
//
//   {rumor spread, Protocol P, async Protocol P, naive election}
//     × {faults off, faults on} × {shards 1, shards 4}
//
// and asserts the invariants that must hold across the whole spectrum:
//
//   * starvation accounting: Metrics::denials never exceeds the configured
//     budget, and is exactly zero under non-adversarial policies;
//   * virtual time is monotone (positive per-step increments) and
//     policy-consistent (vt == events for unit-time policies, events/B for
//     batched, positive continuous increments for poisson);
//   * runs are deterministic per (spec, seed) — byte-identical metrics;
//   * sharded runs are bit-identical to serial for every policy that
//     accepts shards=;
//   * Metrics::merge_from is associative and commutative, the property the
//     sharded queue merge and Monte-Carlo pooling both lean on — including
//     exact denial sums under analysis::run_trials worker pooling.
//
// A policy registered out-of-tree is exercised through its default spec,
// so the harness keeps covering registry growth with no further wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/montecarlo.hpp"
#include "baseline/naive_election.hpp"
#include "core/async_protocol.hpp"
#include "core/runner.hpp"
#include "gossip/rumor.hpp"
#include "net/harness.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/metrics.hpp"
#include "sim/network_spec.hpp"
#include "sim/scheduler_spec.hpp"
#include "support/chi_square.hpp"

namespace rfc::sim {
namespace {

// --------------------------------------------------------------------------
// The spec universe: every registered policy, via representative specs.
// --------------------------------------------------------------------------

std::vector<SchedulerSpec> specs_for(const std::string& policy) {
  if (policy == "synchronous") {
    return {SchedulerSpec::parse("synchronous")};
  }
  if (policy == "sequential") {
    // Both sides of the wasted= knob: keep (the pinned coupon-collector
    // draw) and skip (eager pruning of finished agents).
    return {SchedulerSpec::parse("sequential"),
            SchedulerSpec::parse("sequential:wasted=skip")};
  }
  if (policy == "partial-async") {
    return {SchedulerSpec::parse("partial-async:p=0.4")};
  }
  if (policy == "batched") {
    return {SchedulerSpec::parse("batched:block=3")};
  }
  if (policy == "poisson") {
    // Both continuous-time simulators: the Gillespie scan sampler and the
    // event-driven heap path (same law, different queue substrate).
    return {SchedulerSpec::parse("poisson:rate=2"),
            SchedulerSpec::parse("poisson:queue=heap,rate=2")};
  }
  if (policy == "adversarial") {
    // The static, phase-gated, and all three reactive targeting rules.
    return {
        SchedulerSpec::parse("adversarial:victim_fraction=0.25,budget=64"),
        SchedulerSpec::parse("adversarial:phase=vote,budget=64"),
        SchedulerSpec::parse("adversarial:target=min-cert,budget=64"),
        SchedulerSpec::parse(
            "adversarial:target=laggard,victim_fraction=0.1,budget=64"),
        SchedulerSpec::parse("adversarial:target=quorum-edge,budget=64"),
        SchedulerSpec::parse(
            "adversarial:victim_fraction=0.25,budget=64,wasted=skip"),
    };
  }
  // Out-of-tree policy: exercise its default configuration.
  return {SchedulerSpec::parse(policy)};
}

std::vector<SchedulerSpec> all_specs() {
  std::vector<SchedulerSpec> out;
  for (const auto& policy : SchedulerSpec::registered_policies()) {
    for (auto& spec : specs_for(policy)) out.push_back(std::move(spec));
  }
  return out;
}

/// Appends shards=S,threads=T to a spec (policies that accept them).
SchedulerSpec with_shards(const SchedulerSpec& spec, std::uint32_t shards,
                          std::uint32_t threads) {
  const std::string text = spec.to_string();
  const char sep = spec.params().empty() ? ':' : ',';
  return SchedulerSpec::parse(text + sep + "shards=" +
                              std::to_string(shards) +
                              ",threads=" + std::to_string(threads));
}

bool accepts_shards(const SchedulerSpec& spec) {
  return spec.policy() == "synchronous" || spec.policy() == "partial-async" ||
         spec.policy() == "batched";
}

// --------------------------------------------------------------------------
// The workload grid.
// --------------------------------------------------------------------------

struct RunOutcome {
  Metrics metrics;
  std::uint64_t events = 0;
};

struct Workload {
  std::string name;
  std::function<RunOutcome(const SchedulerSpec&, const NetworkSpec&,
                           bool faults, std::uint64_t seed)>
      run;
};

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> kWorkloads = {
      {"rumor",
       [](const SchedulerSpec& spec, const NetworkSpec& net, bool faults,
          std::uint64_t seed) {
         gossip::SpreadConfig cfg;
         cfg.n = 48;
         cfg.mechanism = gossip::Mechanism::kPushPull;
         cfg.seed = seed;
         cfg.scheduler = spec;
         cfg.network = net;
         cfg.num_faulty = faults ? 8 : 0;
         cfg.placement =
             faults ? FaultPlacement::kRandom : FaultPlacement::kNone;
         cfg.max_rounds = 200'000;
         const auto r = gossip::run_rumor_spreading(cfg);
         return RunOutcome{r.metrics, r.rounds};
       }},
      {"protocol-p",
       [](const SchedulerSpec& spec, const NetworkSpec& net, bool faults,
          std::uint64_t seed) {
         core::RunConfig cfg;
         cfg.n = 32;
         cfg.gamma = 3.0;
         cfg.seed = seed;
         cfg.scheduler = spec;
         cfg.network = net;
         cfg.num_faulty = faults ? 5 : 0;
         cfg.placement =
             faults ? FaultPlacement::kRandom : FaultPlacement::kNone;
         const auto r = core::run_protocol(cfg);
         return RunOutcome{r.metrics, r.rounds};
       }},
      {"async-p",
       [](const SchedulerSpec& spec, const NetworkSpec& net, bool faults,
          std::uint64_t seed) {
         core::AsyncRunConfig cfg;
         cfg.n = 32;
         cfg.gamma = 3.0;
         cfg.slack = 8;
         cfg.seed = seed;
         cfg.scheduler = spec;
         cfg.network = net;
         cfg.num_faulty = faults ? 5 : 0;
         cfg.placement =
             faults ? FaultPlacement::kRandom : FaultPlacement::kNone;
         const auto r = core::run_async_protocol(cfg);
         return RunOutcome{r.metrics, r.steps};
       }},
      {"naive-election",
       [](const SchedulerSpec& spec, const NetworkSpec& net, bool faults,
          std::uint64_t seed) {
         baseline::NaiveElectionConfig cfg;
         cfg.n = 32;
         cfg.seed = seed;
         cfg.scheduler = spec;
         cfg.network = net;
         cfg.num_faulty = faults ? 5 : 0;
         cfg.placement =
             faults ? FaultPlacement::kRandom : FaultPlacement::kNone;
         const auto r = baseline::run_naive_election(cfg);
         return RunOutcome{r.metrics, r.rounds};
       }},
  };
  return kWorkloads;
}

// --------------------------------------------------------------------------
// The network universe: the inert spec plus one representative of every
// fault axis and their composition — crossed with the scheduler universe
// below.  Permanent churn (rejoin=0) stays out of the grid: a crashed
// originator would leave completion-bounded workloads spinning to their
// round caps.
// --------------------------------------------------------------------------

std::vector<NetworkSpec> network_universe() {
  return {
      NetworkSpec::none(),
      NetworkSpec::parse("network:drop=0.15,seed=5"),
      NetworkSpec::parse("network:corrupt=0.1,seed=5"),
      NetworkSpec::parse("network:dup=0.2,reorder=0.2,seed=5"),
      NetworkSpec::parse("network:delay=2,seed=5"),
      NetworkSpec::parse("network:churn=0.01,rejoin=4,seed=5"),
      NetworkSpec::parse(
          "network:drop=0.1,dup=0.1,reorder=0.1,delay=2,corrupt=0.05,seed=5"),
  };
}

void expect_metrics_eq(const Metrics& a, const Metrics& b,
                       const std::string& what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.virtual_time, b.virtual_time) << what;  // Bit-identical.
  EXPECT_EQ(a.pushes, b.pushes) << what;
  EXPECT_EQ(a.pull_requests, b.pull_requests) << what;
  EXPECT_EQ(a.pull_replies, b.pull_replies) << what;
  EXPECT_EQ(a.total_bits, b.total_bits) << what;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << what;
  EXPECT_EQ(a.active_links, b.active_links) << what;
  EXPECT_EQ(a.denials, b.denials) << what;
  EXPECT_EQ(a.net_drops, b.net_drops) << what;
  EXPECT_EQ(a.net_dups, b.net_dups) << what;
  EXPECT_EQ(a.net_corruptions, b.net_corruptions) << what;
  EXPECT_EQ(a.net_delays, b.net_delays) << what;
  EXPECT_EQ(a.churn_crashes, b.churn_crashes) << what;
}

std::string label(const SchedulerSpec& spec, const Workload& w, bool faults) {
  return spec.to_string() + " / " + w.name + (faults ? " +faults" : "");
}

// --------------------------------------------------------------------------
// Registry coverage
// --------------------------------------------------------------------------

TEST(SchedulerDifferential, EveryRegisteredPolicyYieldsRunnableSpecs) {
  const auto policies = SchedulerSpec::registered_policies();
  // The six built-ins must be present; out-of-tree additions only extend
  // the grid.
  for (const char* name : {"synchronous", "sequential", "partial-async",
                           "batched", "adversarial", "poisson"}) {
    EXPECT_NE(std::find(policies.begin(), policies.end(), name),
              policies.end())
        << name;
  }
  for (const auto& policy : policies) {
    const auto specs = specs_for(policy);
    ASSERT_FALSE(specs.empty()) << policy;
    for (const auto& spec : specs) {
      EXPECT_EQ(spec.policy(), policy) << spec.to_string();
      EXPECT_NE(spec.make(), nullptr) << spec.to_string();
      // The value contract: the spec survives its own string round-trip.
      EXPECT_EQ(SchedulerSpec::parse(spec.to_string()), spec);
    }
  }
  // The reactive rules are part of the default universe.
  std::uint32_t reactive = 0;
  for (const auto& spec : all_specs()) {
    if (spec.has_param("target")) ++reactive;
  }
  EXPECT_EQ(reactive, 3u);
}

// --------------------------------------------------------------------------
// The main grid: denial accounting + determinism for every (spec, workload,
// faults) cell.
// --------------------------------------------------------------------------

TEST(SchedulerDifferential, DenialAccountingAndDeterminismAcrossGrid) {
  for (const auto& spec : all_specs()) {
    const bool adversarial = spec.policy() == "adversarial";
    const std::uint64_t budget = spec.param_uint("budget", 0);
    for (const Workload& w : workloads()) {
      for (const bool faults : {false, true}) {
        const std::string what = label(spec, w, faults);
        const auto a = w.run(spec, NetworkSpec::none(), faults, 1234);
        if (adversarial) {
          ASSERT_NE(budget, 0u) << what << " (grid specs cap their budget)";
          EXPECT_LE(a.metrics.denials, budget) << what;
        } else {
          EXPECT_EQ(a.metrics.denials, 0u) << what;
        }
        // The inert network really is inert: no faults ever metered.
        EXPECT_EQ(a.metrics.net_drops, 0u) << what;
        EXPECT_EQ(a.metrics.net_corruptions, 0u) << what;
        EXPECT_EQ(a.metrics.churn_crashes, 0u) << what;
        EXPECT_GT(a.events, 0u) << what;
        EXPECT_EQ(a.metrics.rounds, a.events) << what;
        // Deterministic per seed: observation-driven policies must stay a
        // pure function of (config, seed) like everyone else.
        const auto b = w.run(spec, NetworkSpec::none(), faults, 1234);
        expect_metrics_eq(a.metrics, b.metrics, what);
        EXPECT_EQ(a.events, b.events) << what;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Virtual time: monotone, positive increments, policy-consistent totals.
// --------------------------------------------------------------------------

TEST(SchedulerDifferential, VirtualTimeMonotoneAndPolicyConsistent) {
  for (const auto& spec : all_specs()) {
    Engine engine({24, 99, nullptr, spec.make()});
    for (AgentId i = 0; i < 24; ++i) {
      engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                              gossip::Mechanism::kPushPull, i == 0, 16));
    }
    double last = 0.0;
    bool monotone = true;
    engine.set_round_observer([&](const Engine& e) {
      if (!(e.virtual_time() > last)) monotone = false;
      last = e.virtual_time();
    });
    const std::uint64_t events = engine.run(120);
    EXPECT_TRUE(monotone) << spec.to_string()
                          << ": virtual time must strictly increase";
    EXPECT_EQ(events, 120u) << spec.to_string();
    const double vt = engine.virtual_time();
    if (spec.policy() == "batched") {
      const double blocks =
          static_cast<double>(spec.param_uint("block", 2));
      EXPECT_DOUBLE_EQ(vt, static_cast<double>(events) / blocks)
          << spec.to_string();
    } else if (spec.policy() == "poisson") {
      EXPECT_GT(vt, 0.0) << spec.to_string();
    } else if (spec.policy() == "synchronous" ||
               spec.policy() == "sequential" ||
               spec.policy() == "partial-async" ||
               spec.policy() == "adversarial") {
      // Unit-time policies: the virtual clock is the event count.
      EXPECT_DOUBLE_EQ(vt, static_cast<double>(events)) << spec.to_string();
    }
  }
}

// --------------------------------------------------------------------------
// Sharded runs must stay bit-identical to serial for every policy that
// accepts shards — including when the run also carries faults.
// --------------------------------------------------------------------------

TEST(SchedulerDifferential, ShardedRunsBitIdenticalToSerial) {
  std::uint32_t covered = 0;
  for (const auto& spec : all_specs()) {
    if (!accepts_shards(spec)) continue;
    ++covered;
    const auto sharded = with_shards(spec, 4, 2);
    for (const Workload& w : workloads()) {
      for (const bool faults : {false, true}) {
        const std::string what = label(sharded, w, faults);
        const auto serial = w.run(spec, NetworkSpec::none(), faults, 77);
        const auto split = w.run(sharded, NetworkSpec::none(), faults, 77);
        expect_metrics_eq(serial.metrics, split.metrics, what);
        EXPECT_EQ(serial.events, split.events) << what;
      }
    }
  }
  EXPECT_EQ(covered, 3u);  // synchronous, partial-async, batched.
}

// --------------------------------------------------------------------------
// poisson:queue=heap vs queue=scan: the two continuous-time simulators must
// agree in *law* — wake choices uniform over the live set (two-sample
// chi-square), inter-event times Exp(λ·|live|) (virtual-time totals), and
// matched-seed end states equivalent where the trace contract allows (the
// RNG streams differ by design, so bit-identity is out of scope).
// --------------------------------------------------------------------------

class WakeCountingAgent final : public Agent {
 public:
  std::uint64_t activations() const noexcept { return activations_; }
  Action on_round(const Context&) override {
    ++activations_;
    return Action::idle();
  }
  Payload serve_pull(const Context&, AgentId) override { return {}; }
  bool done() const override { return false; }

 private:
  std::uint64_t activations_ = 0;
};

std::vector<std::uint64_t> poisson_wake_counts(const SchedulerSpec& spec,
                                               std::uint32_t n,
                                               std::uint64_t seed,
                                               std::uint64_t events) {
  Engine engine({n, seed, nullptr, spec.make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<WakeCountingAgent>());
  }
  engine.run(events);
  std::vector<std::uint64_t> counts(n);
  for (AgentId i = 0; i < n; ++i) {
    counts[i] =
        static_cast<const WakeCountingAgent&>(engine.agent(i)).activations();
  }
  return counts;
}

TEST(SchedulerDifferential, PoissonHeapWakeDistributionMatchesScanChiSquare) {
  // Two-sample chi-square over the per-agent wake counts of T events under
  // each path: statistic Σ (h_i - s_i)² / (h_i + s_i), df = n - 1 for equal
  // totals.  Rejects only if the heap path's wake choices are *not* drawn
  // from the same (uniform) law as the scan path's.
  const std::uint32_t n = 24;
  const std::uint64_t events = 400ull * n;
  const auto scan = poisson_wake_counts(SchedulerSpec::parse("poisson"), n,
                                        4242, events);
  const auto heap = poisson_wake_counts(
      SchedulerSpec::parse("poisson:queue=heap"), n, 4242, events);
  double statistic = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double h = static_cast<double>(heap[i]);
    const double s = static_cast<double>(scan[i]);
    ASSERT_GT(h + s, 0.0) << i;
    statistic += (h - s) * (h - s) / (h + s);
  }
  const double p = rfc::support::chi_square_sf(statistic, n - 1);
  EXPECT_GT(p, 0.001) << "two-sample statistic=" << statistic;
}

TEST(SchedulerDifferential, PoissonHeapVirtualTimeLawMatchesScan) {
  // T events of an aggregate rate-λn process span vt ≈ T/(λn) with relative
  // sd 1/√T under either simulator; the totals must agree far inside that
  // band (15% at T=3200 is ~8 sigma).
  const std::uint32_t n = 32;
  const std::uint64_t events = 3200;
  for (const double rate : {1.0, 2.0}) {
    Engine scan({n, 77, nullptr, SchedulerSpec::poisson(rate).make()});
    Engine heap({n, 77, nullptr, SchedulerSpec::poisson_heap(rate).make()});
    for (AgentId i = 0; i < n; ++i) {
      scan.set_agent(i, std::make_unique<WakeCountingAgent>());
      heap.set_agent(i, std::make_unique<WakeCountingAgent>());
    }
    scan.run(events);
    heap.run(events);
    const double expected = static_cast<double>(events) / (rate * n);
    EXPECT_NEAR(scan.virtual_time(), expected, 0.15 * expected) << rate;
    EXPECT_NEAR(heap.virtual_time(), expected, 0.15 * expected) << rate;
    EXPECT_NEAR(heap.virtual_time(), scan.virtual_time(),
                0.2 * scan.virtual_time())
        << rate;
  }
}

TEST(SchedulerDifferential, PoissonHeapEndStateMatchesScanUnderMatchedSeeds) {
  // Matched-seed rumor runs under both paths: the broadcast completes in
  // both, informs the same (full) active set, and the event/virtual-time
  // totals agree within the concentration of the Θ(n log n) / Θ(log n)
  // bounds — the end-state equivalence the trace contract allows.
  for (const bool faults : {false, true}) {
    gossip::SpreadConfig cfg;
    cfg.n = 48;
    cfg.mechanism = gossip::Mechanism::kPushPull;
    cfg.seed = 3131;
    cfg.num_faulty = faults ? 8 : 0;
    cfg.placement = faults ? FaultPlacement::kRandom : FaultPlacement::kNone;
    cfg.max_rounds = 200'000;
    cfg.scheduler = SchedulerSpec::poisson();
    const auto scan = gossip::run_rumor_spreading(cfg);
    cfg.scheduler = SchedulerSpec::poisson_heap();
    const auto heap = gossip::run_rumor_spreading(cfg);
    ASSERT_TRUE(scan.complete) << faults;
    ASSERT_TRUE(heap.complete) << faults;
    EXPECT_GT(heap.rounds, scan.rounds / 3) << faults;
    EXPECT_LT(heap.rounds, scan.rounds * 3) << faults;
    EXPECT_GT(heap.virtual_time, scan.virtual_time / 3.0) << faults;
    EXPECT_LT(heap.virtual_time, scan.virtual_time * 3.0) << faults;
    // Message accounting is per-event and mechanism-bound, so the per-event
    // averages agree in law as well; pin the cheap invariant that both
    // paths actually exchanged rumor traffic.
    EXPECT_GT(scan.metrics.total_bits, 0u) << faults;
    EXPECT_GT(heap.metrics.total_bits, 0u) << faults;
  }
}

// --------------------------------------------------------------------------
// Metrics::merge_from: associative and commutative over real run deltas —
// the property that makes sharded totals and Monte-Carlo pools exact.
// --------------------------------------------------------------------------

TEST(SchedulerDifferential, MetricsMergeAssociativeAndCommutative) {
  const auto& w = workloads().front();  // Rumor: cheap, message-heavy.
  // Deltas from an adversarial, a lossy/corrupting, and a plain run, so the
  // merge identities are checked with *every* counter populated — denials
  // from the scheduler adversary, net_*/churn_* from the network one.
  const Metrics a =
      w.run(SchedulerSpec::parse("adversarial:target=min-cert,budget=64"),
            NetworkSpec::none(), false, 1)
          .metrics;
  const Metrics b =
      w.run(SchedulerSpec::parse("poisson:rate=2"),
            NetworkSpec::parse(
                "network:drop=0.1,dup=0.1,corrupt=0.1,delay=2,seed=9"),
            true, 2)
          .metrics;
  const Metrics c =
      w.run(SchedulerSpec::parse("batched:block=3"),
            NetworkSpec::parse("network:churn=0.02,rejoin=3,seed=9"), false,
            3)
          .metrics;
  EXPECT_GT(b.net_drops + b.net_dups + b.net_corruptions + b.net_delays, 0u);
  EXPECT_GT(c.churn_crashes, 0u);

  Metrics ab = a;
  ab.merge_from(b);
  Metrics ab_c = ab;
  ab_c.merge_from(c);

  Metrics bc = b;
  bc.merge_from(c);
  Metrics a_bc = a;
  a_bc.merge_from(bc);

  expect_metrics_eq(ab_c, a_bc, "(a+b)+c vs a+(b+c)");

  Metrics ba = b;
  ba.merge_from(a);
  expect_metrics_eq(ab, ba, "a+b vs b+a");
}

// --------------------------------------------------------------------------
// Denials must sum exactly under analysis::run_trials worker pooling
// (satellite: today only single-run paths pin the denial meter).
// --------------------------------------------------------------------------

TEST(SchedulerDifferential, DenialsSumExactlyUnderMonteCarloPooling) {
  const auto spec =
      SchedulerSpec::parse("adversarial:victim_fraction=0.25,budget=40");
  // A live network adversary rides along so the pooling identity is pinned
  // for the net_*/churn_* counters in the same pass as denials.
  const auto net =
      NetworkSpec::parse("network:drop=0.1,corrupt=0.05,seed=31");
  const std::uint64_t kTrials = 12;
  const std::uint64_t kBaseSeed = 909;
  const auto trial = [&](std::uint64_t seed, std::size_t) {
    core::AsyncRunConfig cfg;
    cfg.n = 24;
    cfg.gamma = 3.0;
    cfg.slack = 6;
    cfg.seed = seed;
    cfg.scheduler = spec;
    cfg.network = net;
    return core::run_async_protocol(cfg);
  };

  // Parallel pool (forced multi-worker) vs the serial reference.
  const auto pooled = analysis::run_trials<core::AsyncRunResult>(
      kTrials, kBaseSeed, trial, /*threads=*/3);
  ASSERT_EQ(pooled.size(), kTrials);

  std::uint64_t serial_sum = 0;
  std::uint64_t serial_drops = 0, serial_corruptions = 0;
  Metrics pooled_total;
  std::uint64_t pooled_sum = 0;
  for (std::size_t i = 0; i < kTrials; ++i) {
    const auto reference =
        trial(rfc::support::derive_seed(kBaseSeed, i), i);
    // Trial i is byte-identical no matter which worker ran it.
    expect_metrics_eq(pooled[i].metrics, reference.metrics,
                      "trial " + std::to_string(i));
    EXPECT_LE(pooled[i].metrics.denials, 40u) << i;
    serial_sum += reference.metrics.denials;
    serial_drops += reference.metrics.net_drops;
    serial_corruptions += reference.metrics.net_corruptions;
    pooled_sum += pooled[i].metrics.denials;
    pooled_total.merge_from(pooled[i].metrics);
  }
  EXPECT_GT(serial_sum, 0u);
  EXPECT_EQ(pooled_sum, serial_sum);
  EXPECT_EQ(pooled_total.denials, serial_sum);
  EXPECT_GT(serial_drops, 0u);
  EXPECT_EQ(pooled_total.net_drops, serial_drops);
  EXPECT_EQ(pooled_total.net_corruptions, serial_corruptions);
}

// --------------------------------------------------------------------------
// The (scheduler × network) product: the message adversary must compose
// with every activation policy without breaking the harness invariants —
// per-seed determinism, zero-rate inertness, and shard-count independence.
// --------------------------------------------------------------------------

std::vector<SchedulerSpec> representative_schedulers() {
  return {
      SchedulerSpec::parse("synchronous"),
      SchedulerSpec::parse("sequential"),
      SchedulerSpec::parse("partial-async:p=0.4"),
      SchedulerSpec::parse("batched:block=3"),
      SchedulerSpec::parse("poisson:rate=2"),
      SchedulerSpec::parse("adversarial:victim_fraction=0.25,budget=64"),
  };
}

TEST(NetworkDifferential, SpecUniverseRoundTripsAndClassifiesInertness) {
  for (const auto& net : network_universe()) {
    EXPECT_EQ(NetworkSpec::parse(net.to_string()), net) << net.to_string();
    EXPECT_NE(net.make(), nullptr) << net.to_string();
  }
  EXPECT_TRUE(NetworkSpec::none().inert());
  EXPECT_TRUE(NetworkSpec::parse("network:drop=0,corrupt=0.0").inert());
  EXPECT_TRUE(NetworkSpec::parse("network:seed=42").inert());
  for (std::size_t i = 1; i < network_universe().size(); ++i) {
    EXPECT_FALSE(network_universe()[i].inert())
        << network_universe()[i].to_string();
  }
}

TEST(NetworkDifferential, SchedulerNetworkProductDeterministicPerSeed) {
  // Every (policy, network) cell is a pure function of (config, seed): the
  // fault verdicts are hashes of (seed, kind, time, endpoints), no RNG
  // stream is consumed, so two identical runs must agree byte for byte.
  const std::vector<Workload> grid = {workloads()[0], workloads()[2]};
  for (const auto& sched : representative_schedulers()) {
    for (const auto& net : network_universe()) {
      for (const Workload& w : grid) {
        const std::string what =
            sched.to_string() + " / " + net.to_string() + " / " + w.name;
        const auto a = w.run(sched, net, false, 4242);
        const auto b = w.run(sched, net, false, 4242);
        expect_metrics_eq(a.metrics, b.metrics, what);
        EXPECT_EQ(a.events, b.events) << what;
      }
    }
  }
  // The high-rate axes really bite on a message-heavy workload: drops and
  // corruptions are metered, and corruption never goes unmetered when the
  // rate is saturated onto every reply.
  const auto& rumor = workloads().front();
  EXPECT_GT(rumor
                .run(SchedulerSpec::parse("synchronous"),
                     NetworkSpec::parse("network:drop=0.15,seed=5"), false,
                     4242)
                .metrics.net_drops,
            0u);
  EXPECT_GT(rumor
                .run(SchedulerSpec::parse("synchronous"),
                     NetworkSpec::parse("network:dup=0.2,reorder=0.2,seed=5"),
                     false, 4242)
                .metrics.net_dups,
            0u);
  EXPECT_GT(rumor
                .run(SchedulerSpec::parse("synchronous"),
                     NetworkSpec::parse("network:delay=2,seed=5"), false,
                     4242)
                .metrics.net_delays,
            0u);
  EXPECT_GT(rumor
                .run(SchedulerSpec::parse("synchronous"),
                     NetworkSpec::parse("network:churn=0.01,rejoin=4,seed=5"),
                     false, 4242)
                .metrics.churn_crashes,
            0u);
}

TEST(NetworkDifferential, ZeroRateModelBitIdenticalToNoModelAtAll) {
  // The acceptance pin: installing the default NetworkSpec's model must be
  // indistinguishable from never calling set_network — same metrics, same
  // virtual time, across both the round path and the sequential path.
  for (const char* sched : {"synchronous", "sequential", "poisson:rate=2"}) {
    const auto spec = SchedulerSpec::parse(sched);
    Engine bare({24, 99, nullptr, spec.make()});
    Engine inert({24, 99, nullptr, spec.make(), NetworkSpec::none().make()});
    for (AgentId i = 0; i < 24; ++i) {
      bare.set_agent(i, std::make_unique<gossip::RumorAgent>(
                            gossip::Mechanism::kPushPull, i == 0, 16));
      inert.set_agent(i, std::make_unique<gossip::RumorAgent>(
                             gossip::Mechanism::kPushPull, i == 0, 16));
    }
    bare.run(200);
    inert.run(200);
    expect_metrics_eq(bare.metrics(), inert.metrics(), sched);
    EXPECT_EQ(bare.virtual_time(), inert.virtual_time()) << sched;
  }
}

TEST(NetworkDifferential, ShardedRunsBitIdenticalToSerialUnderActiveNetwork) {
  // The fault verdicts are pure hashes and the delayed/deferred flushes are
  // sorted into total orders, so S shards must reproduce the serial round
  // exactly even while the adversary drops, corrupts, delays, and crashes.
  const std::vector<Workload> grid = {workloads()[0], workloads()[1]};
  for (const auto& sched :
       {SchedulerSpec::parse("synchronous"),
        SchedulerSpec::parse("partial-async:p=0.4"),
        SchedulerSpec::parse("batched:block=3")}) {
    const auto sharded = with_shards(sched, 4, 2);
    for (const auto& net : network_universe()) {
      for (const Workload& w : grid) {
        const std::string what =
            sharded.to_string() + " / " + net.to_string() + " / " + w.name;
        const auto serial = w.run(sched, net, false, 77);
        const auto split = w.run(sharded, net, false, 77);
        expect_metrics_eq(serial.metrics, split.metrics, what);
        EXPECT_EQ(serial.events, split.events) << what;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Transport differential: the distributed node protocol (net/) over the
// deterministic loopback backend must be bit-identical to the in-memory
// engine for every round-based scheduler it supports, at matched seeds —
// the same identity the rest of this harness pins across schedulers, now
// pinned across the *execution substrate*.
// --------------------------------------------------------------------------

TEST(SchedulerDifferential, LoopbackTransportMatchesInMemoryEngine) {
  using rfc::net::ClusterSpec;
  for (const char* scheduler : {"synchronous", "partial-async:p=0.5"}) {
    for (const bool faults : {false, true}) {
      ClusterSpec rumor;
      rumor.kind = ClusterSpec::Kind::kRumor;
      rumor.num_nodes = 3;
      rumor.rumor.n = 48;
      rumor.rumor.seed = 4321;
      rumor.rumor.mechanism = gossip::Mechanism::kPushPull;
      rumor.rumor.num_faulty = faults ? 6 : 0;
      rumor.rumor.placement =
          faults ? FaultPlacement::kRandom : FaultPlacement::kNone;
      rumor.rumor.scheduler = SchedulerSpec::parse(scheduler);
      EXPECT_EQ(rfc::net::cross_check_local(rumor,
                                            rfc::net::TransportKind::kLoopback),
                "")
          << scheduler << " faults=" << faults;

      ClusterSpec protocol;
      protocol.kind = ClusterSpec::Kind::kProtocol;
      protocol.num_nodes = 3;
      protocol.protocol.n = 48;
      protocol.protocol.seed = 4321;
      protocol.protocol.num_faulty = faults ? 4 : 0;
      protocol.protocol.placement =
          faults ? FaultPlacement::kRandom : FaultPlacement::kNone;
      protocol.protocol.scheduler = SchedulerSpec::parse(scheduler);
      EXPECT_EQ(rfc::net::cross_check_local(protocol,
                                            rfc::net::TransportKind::kLoopback),
                "")
          << scheduler << " faults=" << faults;
    }
  }
}

}  // namespace
}  // namespace rfc::sim
