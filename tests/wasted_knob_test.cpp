// The wasted= activation knob on the sampling schedulers.
//
// wasted=keep (the default) is a pinned trace contract: sequential draws
// over the *initial* active pool forever — a drawn finished agent consumes
// the step as a wasted activation (the coupon-collector tail the analysis
// notebooks integrate over) — and the adversarial walk removes done agents
// only lazily when the cursor lands on them.  wasted=skip prunes finished
// agents from the wakeable pool eagerly (sequential: swap-remove on draw,
// like the Poisson sampler; adversarial: eviction driven by the engine's
// done log), so every step wakes a live agent.
//
// The tests pin both sides: keep must be bit-identical to the
// unparameterized spec (the default is a no-op), and skip's wake traces /
// end-state digests are pinned so the pruned path is itself a frozen
// contract.  When the engine's done log is unavailable (an agent without
// cacheable observations), adversarial skip degrades to the lazy walk and
// must reproduce keep's trace exactly; sequential skip never needs the log.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "end_state_digest.hpp"
#include "gossip/rumor.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::sim {
namespace {

// --------------------------------------------------------------------------
// A finite agent: done after a fixed number of activations.  The cacheable
// flag switches the engine's SoA caches (and with them the done log) on or
// off, selecting the eager-prune or lazy-fallback path under wasted=skip.
// --------------------------------------------------------------------------
class DoneAfterAgent final : public Agent {
 public:
  DoneAfterAgent(std::uint64_t limit, std::vector<AgentId>* trace,
                 bool cacheable) noexcept
      : limit_(limit), trace_(trace), cacheable_(cacheable) {}

  Action on_round(const Context& ctx) override {
    ++activations_;
    if (trace_ != nullptr) trace_->push_back(ctx.self);
    return Action::idle();
  }
  Payload serve_pull(const Context&, AgentId) override { return {}; }
  bool done() const override { return activations_ >= limit_; }
  bool cacheable_observations() const noexcept override { return cacheable_; }

 private:
  std::uint64_t limit_;
  std::vector<AgentId>* trace_;
  bool cacheable_;
  std::uint64_t activations_ = 0;
};

struct TraceRun {
  std::vector<AgentId> trace;  ///< Wake order (live activations only).
  std::uint64_t steps = 0;     ///< Scheduler steps to completion.
};

/// Runs n DoneAfterAgent(limit=2) agents to completion under `spec_text`.
TraceRun trace_run(const std::string& spec_text, bool cacheable,
                   std::uint32_t n = 8, std::uint64_t seed = 42) {
  TraceRun out;
  Engine engine({n, seed, nullptr, SchedulerSpec::parse(spec_text).make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i,
                     std::make_unique<DoneAfterAgent>(2, &out.trace, cacheable));
  }
  while (!engine.all_done() && out.steps < 100'000) {
    engine.step();
    ++out.steps;
  }
  EXPECT_TRUE(engine.all_done()) << spec_text;
  return out;
}

// --------------------------------------------------------------------------
// Sequential: pinned traces for both knob values.
// --------------------------------------------------------------------------

// Captured from this tree; freeze the contract.  Every agent is woken
// exactly twice (16 live activations); keep pays extra wasted steps on
// already-done draws, skip completes in exactly 16.
const std::vector<AgentId> kSequentialKeepTrace = {
    1, 4, 5, 5, 6, 1, 2, 3, 3, 7, 2, 6, 7, 4, 0, 0};
constexpr std::uint64_t kSequentialKeepSteps = 29;
const std::vector<AgentId> kSequentialSkipTrace = {
    1, 4, 5, 5, 6, 0, 7, 2, 3, 7, 3, 6, 2, 1, 0, 4};

TEST(WastedKnob, SequentialKeepIsTheDefault) {
  const TraceRun plain = trace_run("sequential", true);
  const TraceRun keep = trace_run("sequential:wasted=keep", true);
  EXPECT_EQ(plain.trace, keep.trace);
  EXPECT_EQ(plain.steps, keep.steps);
  EXPECT_EQ(keep.trace, kSequentialKeepTrace);
  EXPECT_EQ(keep.steps, kSequentialKeepSteps);
  EXPECT_GT(keep.steps, keep.trace.size());  // Wasted draws cost steps.
}

TEST(WastedKnob, SequentialSkipWastesNoSteps) {
  const TraceRun skip = trace_run("sequential:wasted=skip", true);
  EXPECT_EQ(skip.trace, kSequentialSkipTrace);
  EXPECT_EQ(skip.steps, skip.trace.size());  // Every step wakes a live agent.
  EXPECT_EQ(skip.trace.size(), 16u);         // 8 agents x 2 activations.
  // The sampler reads done() directly, so pruning works identically with
  // the SoA caches (and the done log) disabled.
  const TraceRun uncached = trace_run("sequential:wasted=skip", false);
  EXPECT_EQ(skip.trace, uncached.trace);
  EXPECT_EQ(skip.steps, uncached.steps);
}

// --------------------------------------------------------------------------
// Adversarial: pinned traces, plus the lazy fallback without the done log.
// --------------------------------------------------------------------------

// The walk never wastes a *step* (lazy removal consumes no walk slot), so
// keep also finishes in 16; the knob shows up as a different wake order —
// eager eviction reorders the pool at prune time, lazy at encounter time.
const std::vector<AgentId> kAdversarialKeepTrace = {
    0, 5, 1, 4, 6, 7, 0, 5, 1, 4, 6, 7, 3, 2, 3, 2};
constexpr std::uint64_t kAdversarialKeepSteps = 16;
const std::vector<AgentId> kAdversarialSkipTrace = {
    0, 5, 1, 4, 6, 7, 0, 7, 6, 4, 1, 5, 3, 2, 3, 2};
constexpr std::uint64_t kAdversarialSkipSteps = 16;

constexpr char kAdvKeep[] = "adversarial:budget=8,victim_fraction=0.25";
constexpr char kAdvSkip[] =
    "adversarial:budget=8,victim_fraction=0.25,wasted=skip";

TEST(WastedKnob, AdversarialKeepIsTheDefault) {
  const TraceRun plain = trace_run(kAdvKeep, true);
  EXPECT_EQ(plain.trace, kAdversarialKeepTrace);
  EXPECT_EQ(plain.steps, kAdversarialKeepSteps);
}

TEST(WastedKnob, AdversarialSkipPrunesOffTheDoneLog) {
  const TraceRun skip = trace_run(kAdvSkip, true);
  EXPECT_EQ(skip.trace, kAdversarialSkipTrace);
  EXPECT_EQ(skip.steps, kAdversarialSkipSteps);
  EXPECT_EQ(skip.trace.size(), 16u);  // 8 agents x 2 activations.
  EXPECT_EQ(skip.steps, skip.trace.size());  // No wasted walk outcomes.
}

TEST(WastedKnob, AdversarialSkipFallsBackToLazyWithoutDoneLog) {
  // Non-cacheable agents leave the engine without a done log; skip then
  // degrades to exactly the lazy at-cursor removal — keep's trace.
  const TraceRun keep = trace_run(kAdvKeep, false);
  const TraceRun skip = trace_run(kAdvSkip, false);
  EXPECT_EQ(keep.trace, skip.trace);
  EXPECT_EQ(keep.steps, skip.steps);
  EXPECT_EQ(keep.trace, kAdversarialKeepTrace);  // Same as the cached run.
}

// --------------------------------------------------------------------------
// Protocol P end-state digests: the knob pinned on a real protocol, where
// agents finish at scattered times, and cross-checked against the sharded
// synchronous round (S in {1, 4}) on the same population — the sparse
// live-list path must stay shard-invariant.
// --------------------------------------------------------------------------

core::RunConfig knob_protocol_config(const std::string& spec_text) {
  core::RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 3.0;
  cfg.seed = 987654321;
  cfg.num_faulty = 8;
  cfg.placement = FaultPlacement::kRandom;
  cfg.scheduler = SchedulerSpec::parse(spec_text);
  return cfg;
}

constexpr std::uint64_t kSequentialKeepProtocolDigest =
    13349877110825083527ull;
constexpr std::uint64_t kSequentialSkipProtocolDigest =
    7906545989172036869ull;
// On this workload the adversarial walk's wake *order* differs between the
// knob values (the trace pins above) but every agent still wakes the same
// number of times before finishing, so end state + metrics coincide — the
// two digests are legitimately equal.
constexpr std::uint64_t kAdversarialKeepProtocolDigest =
    11668558595272729605ull;
constexpr std::uint64_t kAdversarialSkipProtocolDigest =
    11668558595272729605ull;

TEST(WastedKnob, PinnedProtocolDigests) {
  EXPECT_EQ(kSequentialKeepProtocolDigest,
            rfc::testing::protocol_end_state_digest(
                knob_protocol_config("sequential")));
  EXPECT_EQ(kSequentialKeepProtocolDigest,
            rfc::testing::protocol_end_state_digest(
                knob_protocol_config("sequential:wasted=keep")));
  EXPECT_EQ(kSequentialSkipProtocolDigest,
            rfc::testing::protocol_end_state_digest(
                knob_protocol_config("sequential:wasted=skip")));
  EXPECT_EQ(kAdversarialKeepProtocolDigest,
            rfc::testing::protocol_end_state_digest(
                knob_protocol_config(kAdvKeep)));
  EXPECT_EQ(kAdversarialSkipProtocolDigest,
            rfc::testing::protocol_end_state_digest(
                knob_protocol_config(kAdvSkip)));
}

TEST(WastedKnob, SynchronousDigestShardInvariantOnKnobPopulation) {
  const std::uint64_t serial = rfc::testing::protocol_end_state_digest(
      knob_protocol_config("synchronous"));
  EXPECT_EQ(serial, rfc::testing::protocol_end_state_digest(
                        knob_protocol_config("synchronous:shards=4")));
}

}  // namespace
}  // namespace rfc::sim
