// Real-socket transports driven in-process: N node threads over actual
// TCP/UDP sockets on localhost must still reproduce the in-memory engine
// bit for bit.  The multi-*process* variant of the same cross-check runs as
// the socket_smoke_* CTest entries (bench/exp_socket); this test keeps the
// socket paths under the ordinary unit-test (and sanitizer) umbrella.
#include <unistd.h>

#include <cstdint>

#include <gtest/gtest.h>

#include "net/harness.hpp"
#include "sim/scheduler.hpp"

namespace rfc::net {
namespace {

/// Distinct per-process port block, away from the ephemeral range; each
/// test case offsets further so parallel ctest jobs on one box do not
/// collide (the CTest RESOURCE_LOCK serializes the socket tests anyway).
std::uint16_t port_base(std::uint16_t lane) {
  return static_cast<std::uint16_t>(18000 + (getpid() % 2000) +
                                    lane * 16);
}

ClusterSpec rumor_spec(std::uint32_t num_nodes, std::uint32_t num_faulty) {
  ClusterSpec spec;
  spec.kind = ClusterSpec::Kind::kRumor;
  spec.num_nodes = num_nodes;
  spec.rumor.n = 48;
  spec.rumor.seed = 1234;
  spec.rumor.mechanism = gossip::Mechanism::kPushPull;
  spec.rumor.num_faulty = num_faulty;
  spec.rumor.placement = num_faulty == 0 ? sim::FaultPlacement::kNone
                                         : sim::FaultPlacement::kRandom;
  return spec;
}

ClusterSpec protocol_spec(std::uint32_t num_nodes) {
  ClusterSpec spec;
  spec.kind = ClusterSpec::Kind::kProtocol;
  spec.num_nodes = num_nodes;
  spec.protocol.n = 48;
  spec.protocol.seed = 99;
  return spec;
}

TEST(TcpCluster, RumorMatchesEngine) {
  EXPECT_EQ(
      cross_check_local(rumor_spec(3, 6), TransportKind::kTcp, port_base(0)),
      "");
}

TEST(TcpCluster, ProtocolMatchesEngine) {
  EXPECT_EQ(
      cross_check_local(protocol_spec(3), TransportKind::kTcp, port_base(1)),
      "");
}

TEST(UdpCluster, RumorMatchesEngine) {
  EXPECT_EQ(
      cross_check_local(rumor_spec(3, 0), TransportKind::kUdp, port_base(2)),
      "");
}

TEST(UdpCluster, ProtocolMatchesEngine) {
  EXPECT_EQ(
      cross_check_local(protocol_spec(3), TransportKind::kUdp, port_base(3)),
      "");
}

}  // namespace
}  // namespace rfc::net
