// Golden regression anchors: exact outcomes for pinned seeds.
//
// These protect the reproducibility contract — any change to RNG stream
// layout, engine callback order, payload sizes, or protocol logic shows up
// here first, deliberately.  If a change is *intended* to alter execution
// (new draw order, different accounting), regenerate the constants with
// tests/golden_test --print and update this file in the same commit.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/runner.hpp"

namespace rfc::core {
namespace {

RunResult golden_run() {
  RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 3.0;
  cfg.seed = 123456789;
  cfg.colors = split_colors(cfg.n, {0.5, 0.5});
  return run_protocol(cfg);
}

RunResult golden_faulty_run() {
  RunConfig cfg;
  cfg.n = 96;
  cfg.gamma = 5.0;
  cfg.seed = 42;
  cfg.num_faulty = 24;
  cfg.placement = sim::FaultPlacement::kRandom;
  return run_protocol(cfg);
}

TEST(Golden, PrintCurrentValues) {
  // Not an assertion — run with --gtest_also_run_disabled_tests after an
  // intended behaviour change to regenerate the constants below.
  if (!::testing::GTEST_FLAG(also_run_disabled_tests)) {
    GTEST_SKIP() << "regeneration helper";
  }
  const RunResult a = golden_run();
  std::printf("golden_run: winner=%lld agent=%u bits=%llu msgs=%llu max=%llu\n",
              static_cast<long long>(a.winner), a.winner_agent,
              static_cast<unsigned long long>(a.metrics.total_bits),
              static_cast<unsigned long long>(a.metrics.messages()),
              static_cast<unsigned long long>(a.metrics.max_message_bits));
  const RunResult b = golden_faulty_run();
  std::printf("golden_faulty: winner=%lld bits=%llu active=%u\n",
              static_cast<long long>(b.winner),
              static_cast<unsigned long long>(b.metrics.total_bits),
              b.num_active);
}

TEST(Golden, FaultFreeRunIsPinned) {
  const RunResult r = golden_run();
  EXPECT_EQ(r.winner, 1);
  EXPECT_EQ(r.winner_agent, 36u);
  EXPECT_EQ(r.metrics.total_bits, 1008340u);
  EXPECT_EQ(r.metrics.messages(), 4992u);
  EXPECT_EQ(r.metrics.max_message_bits, 674u);
  EXPECT_EQ(r.rounds, 53u);
  EXPECT_EQ(r.rounds, 4ull * ProtocolParams::make(64, 3.0).q + 1);
}

TEST(Golden, FaultyRunIsPinned) {
  const RunResult r = golden_faulty_run();
  EXPECT_EQ(r.winner, 0);
  EXPECT_EQ(r.num_active, 72u);
  EXPECT_EQ(r.metrics.total_bits, 2442902u);
  EXPECT_EQ(r.events.min_votes, 6u);
}

}  // namespace
}  // namespace rfc::core
