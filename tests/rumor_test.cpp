// Rumor spreading: completion, Θ(log n) convergence, fault resilience.
#include "gossip/rumor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace rfc::gossip {
namespace {

class MechanismTest : public ::testing::TestWithParam<Mechanism> {};

TEST_P(MechanismTest, CompletesOnCompleteGraph) {
  SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = GetParam();
  cfg.seed = 1;
  const auto result = run_rumor_spreading(cfg);
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.rounds, 0u);
}

TEST_P(MechanismTest, RoundsAreLogarithmic) {
  // Very loose sanity bounds: complete within c*log2(n) rounds, need at
  // least log2(n) (push/pull can at best double the informed set).
  SpreadConfig cfg;
  cfg.n = 1024;
  cfg.mechanism = GetParam();
  double mean = 0;
  constexpr int kReps = 10;
  for (int i = 0; i < kReps; ++i) {
    cfg.seed = 100 + i;
    const auto result = run_rumor_spreading(cfg);
    ASSERT_TRUE(result.complete);
    mean += static_cast<double>(result.rounds) / kReps;
  }
  const double log2n = std::log2(1024.0);
  EXPECT_GE(mean, log2n * 0.9);
  EXPECT_LE(mean, log2n * 6.0);
}

TEST_P(MechanismTest, CompletesDespiteFaults) {
  SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = GetParam();
  cfg.num_faulty = 128;
  cfg.placement = sim::FaultPlacement::kRandom;
  cfg.seed = 5;
  const auto result = run_rumor_spreading(cfg);
  EXPECT_TRUE(result.complete);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismTest, ::testing::ValuesIn(all_mechanisms()),
    [](const ::testing::TestParamInfo<Mechanism>& info) {
      std::string name = to_string(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Rumor, SingleNodeIsImmediatelyComplete) {
  SpreadConfig cfg;
  cfg.n = 1;
  const auto result = run_rumor_spreading(cfg);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Rumor, SourceAvoidsFaultyLabels) {
  // With a prefix fault plan the source must land on an active label, so
  // the rumor still spreads.
  SpreadConfig cfg;
  cfg.n = 64;
  cfg.num_faulty = 32;
  cfg.placement = sim::FaultPlacement::kPrefix;
  cfg.mechanism = Mechanism::kPushPull;
  cfg.seed = 9;
  const auto result = run_rumor_spreading(cfg);
  EXPECT_TRUE(result.complete);
}

TEST(Rumor, MoreSourcesConvergeFaster) {
  SpreadConfig one, many;
  one.n = many.n = 2048;
  one.mechanism = many.mechanism = Mechanism::kPush;
  many.initial_informed = 512;
  double rounds_one = 0, rounds_many = 0;
  for (int i = 0; i < 5; ++i) {
    one.seed = many.seed = 40 + i;
    rounds_one += static_cast<double>(run_rumor_spreading(one).rounds);
    rounds_many += static_cast<double>(run_rumor_spreading(many).rounds);
  }
  EXPECT_LT(rounds_many, rounds_one);
}

TEST(Rumor, MetricsAreAccounted) {
  SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = Mechanism::kPull;
  cfg.rumor_bits = 77;
  const auto result = run_rumor_spreading(cfg);
  EXPECT_GT(result.metrics.pull_requests, 0u);
  EXPECT_GT(result.metrics.total_bits, 0u);
  EXPECT_GE(result.metrics.max_message_bits, 77u);
}

TEST(Rumor, MaxRoundsCapRespected) {
  SpreadConfig cfg;
  cfg.n = 4096;
  cfg.mechanism = Mechanism::kPush;
  cfg.max_rounds = 2;  // Cannot possibly finish.
  const auto result = run_rumor_spreading(cfg);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.rounds, 2u);
}

}  // namespace
}  // namespace rfc::gossip
