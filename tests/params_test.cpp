#include "core/params.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rfc::core {
namespace {

TEST(ProtocolParams, BasicDerivation) {
  const auto p = ProtocolParams::make(1024, 4.0);
  EXPECT_EQ(p.n, 1024u);
  EXPECT_EQ(p.m, 1024ull * 1024 * 1024);
  EXPECT_EQ(p.q, static_cast<std::uint32_t>(
                     std::ceil(4.0 * std::log(1024.0))));
  EXPECT_TRUE(p.strict_verification);
}

TEST(ProtocolParams, ValidationErrors) {
  EXPECT_THROW(ProtocolParams::make(0), std::invalid_argument);
  EXPECT_THROW(ProtocolParams::make(100, 0.0), std::invalid_argument);
  EXPECT_THROW(ProtocolParams::make(100, -1.0), std::invalid_argument);
  EXPECT_THROW(ProtocolParams::make((1u << 21) + 1), std::invalid_argument);
  EXPECT_NO_THROW(ProtocolParams::make(1u << 21));
}

TEST(ProtocolParams, PhaseBoundaries) {
  const auto p = ProtocolParams::make(256, 2.0);
  const std::uint64_t q = p.q;
  EXPECT_EQ(p.phase_of_round(0), Phase::kCommitment);
  EXPECT_EQ(p.phase_of_round(q - 1), Phase::kCommitment);
  EXPECT_EQ(p.phase_of_round(q), Phase::kVoting);
  EXPECT_EQ(p.phase_of_round(2 * q - 1), Phase::kVoting);
  EXPECT_EQ(p.phase_of_round(2 * q), Phase::kFindMin);
  EXPECT_EQ(p.phase_of_round(3 * q - 1), Phase::kFindMin);
  EXPECT_EQ(p.phase_of_round(3 * q), Phase::kCoherence);
  EXPECT_EQ(p.phase_of_round(4 * q - 1), Phase::kCoherence);
  EXPECT_EQ(p.phase_of_round(4 * q), Phase::kFinished);
  EXPECT_EQ(p.phase_of_round(4 * q + 100), Phase::kFinished);
}

TEST(ProtocolParams, RoundInPhaseWraps) {
  const auto p = ProtocolParams::make(256, 2.0);
  EXPECT_EQ(p.round_in_phase(0), 0u);
  EXPECT_EQ(p.round_in_phase(p.q), 0u);
  EXPECT_EQ(p.round_in_phase(p.q + 3), 3u);
  EXPECT_EQ(p.round_in_phase(3ull * p.q + (p.q - 1)), p.q - 1);
}

TEST(ProtocolParams, TotalRounds) {
  const auto p = ProtocolParams::make(100, 3.0);
  EXPECT_EQ(p.communication_rounds(), 4ull * p.q);
  EXPECT_EQ(p.total_rounds(), 4ull * p.q + 1);
}

TEST(ProtocolParams, BitWidths) {
  const auto p = ProtocolParams::make(1024, 4.0);
  EXPECT_EQ(p.label_bits(), 10u);
  EXPECT_EQ(p.value_bits(), 30u);  // log2(1024^3).
  EXPECT_EQ(p.color_bits(), 10u);
  EXPECT_GE(p.round_bits(), 1u);
}

TEST(ProtocolParams, TinyNetworksStillValid) {
  const auto p = ProtocolParams::make(1, 4.0);
  EXPECT_GE(p.q, 1u);
  EXPECT_EQ(p.m, 1u);
  const auto p2 = ProtocolParams::make(2, 0.1);
  EXPECT_GE(p2.q, 1u);
}

TEST(ProtocolParams, MessageSizeIsPolylog) {
  // The certificate budget the paper quotes: q * (value + label) bits for
  // intentions must be O(log^2 n).
  for (const std::uint32_t n : {256u, 4096u, 65536u}) {
    const auto p = ProtocolParams::make(n, 4.0);
    const double log2n = std::log2(static_cast<double>(n));
    const double intention_bits =
        static_cast<double>(p.q) * (p.value_bits() + p.label_bits());
    EXPECT_LT(intention_bits, 40.0 * log2n * log2n);
  }
}

}  // namespace
}  // namespace rfc::core
