// Behavioural tests of the pluggable activation policies: the sequential
// model's contracts (previously AsyncEngine's test suite), the two
// scenario-opening schedulers (partial-async, adversarial), and the
// continuous-time Poisson clock.  Policies are selected through
// sim::SchedulerSpec throughout — the same path the run entry points and
// the --scheduler flag use.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/runner.hpp"
#include "gossip/min_aggregation.hpp"
#include "gossip/rumor.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler_spec.hpp"
#include "support/chi_square.hpp"

namespace rfc::sim {
namespace {

Engine sequential_engine(std::uint32_t n, std::uint64_t seed) {
  return Engine({n, seed, nullptr, make_sequential_scheduler()});
}

/// Records its own wake-ups: per-agent count plus the shared global wake
/// order (for determinism-trace assertions).
class CountingAgent final : public Agent {
 public:
  explicit CountingAgent(std::vector<AgentId>* trace = nullptr) noexcept
      : trace_(trace) {}

  std::uint64_t activations() const noexcept { return activations_; }

  Action on_round(const Context& ctx) override {
    ++activations_;
    if (trace_ != nullptr) trace_->push_back(ctx.self);
    return Action::idle();
  }
  Payload serve_pull(const Context&, AgentId) override { return {}; }
  bool done() const override { return false; }

 private:
  std::vector<AgentId>* trace_;
  std::uint64_t activations_ = 0;
};

Engine counting_engine(std::uint32_t n, std::uint64_t seed,
                       const SchedulerSpec& spec,
                       std::vector<AgentId>* trace = nullptr) {
  Engine engine({n, seed, nullptr, spec.make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<CountingAgent>(trace));
  }
  return engine;
}

std::vector<std::uint64_t> wake_counts(const Engine& engine) {
  std::vector<std::uint64_t> counts(engine.n());
  for (AgentId i = 0; i < engine.n(); ++i) {
    counts[i] =
        static_cast<const CountingAgent&>(engine.agent(i)).activations();
  }
  return counts;
}

TEST(SequentialScheduler, RejectsZeroAgents) {
  EXPECT_THROW(Engine({0, 1, nullptr, make_sequential_scheduler()}),
               std::invalid_argument);
}

TEST(SequentialScheduler, MissingAgentThrows) {
  Engine engine = sequential_engine(2, 1);
  engine.set_agent(0, std::make_unique<gossip::RumorAgent>(
                          gossip::Mechanism::kPull, true, 8));
  EXPECT_THROW(engine.step(), std::logic_error);
}

TEST(SequentialScheduler, FaultPlanLockedAfterStart) {
  Engine engine = sequential_engine(2, 1);
  for (AgentId i = 0; i < 2; ++i) {
    engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                            gossip::Mechanism::kPull, i == 0, 8));
  }
  engine.step();
  EXPECT_THROW(engine.set_faulty(1), std::logic_error);
}

TEST(SequentialScheduler, RumorEventuallyReachesEveryone) {
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 3;
  cfg.scheduler = SchedulerSpec::sequential();
  cfg.max_rounds = 100'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.rounds, 128u);  // Needs far more steps than agents.
}

TEST(SequentialScheduler, StepsScaleAsNLogN) {
  // Coupon-collector behaviour: steps/(n ln n) bounded for push-pull.
  for (const std::uint32_t n : {128u, 512u}) {
    gossip::SpreadConfig cfg;
    cfg.n = n;
    cfg.mechanism = gossip::Mechanism::kPushPull;
    cfg.scheduler = SchedulerSpec::sequential();
    cfg.max_rounds = 1'000'000;
    double mean = 0;
    constexpr int kReps = 5;
    for (int i = 0; i < kReps; ++i) {
      cfg.seed = 50 + i;
      const auto r = gossip::run_rumor_spreading(cfg);
      ASSERT_TRUE(r.complete);
      mean += static_cast<double>(r.rounds) / kReps;
    }
    const double normalized = mean / (n * std::log(n));
    EXPECT_GT(normalized, 0.3) << "n=" << n;
    EXPECT_LT(normalized, 6.0) << "n=" << n;
  }
}

TEST(SequentialScheduler, SeedReproducible) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 12;
  cfg.scheduler = SchedulerSpec::sequential();
  cfg.max_rounds = 100'000;
  const auto a = gossip::run_rumor_spreading(cfg);
  const auto b = gossip::run_rumor_spreading(cfg);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(SequentialScheduler, FaultyAgentsNeverWake) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.num_faulty = 32;
  cfg.placement = FaultPlacement::kPrefix;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 7;
  cfg.scheduler = SchedulerSpec::sequential();
  cfg.max_rounds = 200'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);  // Among active agents.
}

TEST(SequentialScheduler, RespectsTopology) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 5;
  cfg.topology = make_ring(64, 1);
  cfg.scheduler = SchedulerSpec::sequential();
  cfg.max_rounds = 500'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);
  // Ring diameter forces ≫ n log n steps.
  EXPECT_GT(r.rounds, 64u * 6);
}

TEST(SequentialScheduler, MetricsAccountMessages) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 6;
  cfg.rumor_bits = 99;
  cfg.scheduler = SchedulerSpec::sequential();
  cfg.max_rounds = 100'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_GT(r.metrics.pull_requests, 0u);
  EXPECT_GE(r.metrics.max_message_bits, 99u);
  EXPECT_LE(r.metrics.active_links, r.rounds);
}

TEST(SequentialScheduler, VirtualTimeCountsSteps) {
  gossip::SpreadConfig cfg;
  cfg.n = 48;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 8;
  cfg.scheduler = SchedulerSpec::sequential();
  cfg.max_rounds = 50'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_DOUBLE_EQ(r.virtual_time, static_cast<double>(r.rounds));
  EXPECT_DOUBLE_EQ(r.metrics.virtual_time, r.virtual_time);
}

// --------------------------------------------------------------------------
// PartialAsyncScheduler
// --------------------------------------------------------------------------

TEST(PartialAsyncScheduler, RejectsInvalidProbability) {
  EXPECT_THROW(make_partial_async_scheduler(-0.1), std::invalid_argument);
  EXPECT_THROW(make_partial_async_scheduler(1.5), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::partial_async(1.5).make(),
               std::invalid_argument);
}

TEST(PartialAsyncScheduler, SpreadsUnderPartialWakes) {
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 17;
  cfg.scheduler = SchedulerSpec::partial_async(0.25);
  cfg.check_every = 1;
  cfg.max_rounds = 20'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);
}

TEST(PartialAsyncScheduler, InterpolatesBetweenModels) {
  // Fewer awake agents per round => more rounds to completion; the sweep
  // must be monotone-ish between full synchrony and sparse wake-ups.
  gossip::SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 23;
  cfg.check_every = 1;
  cfg.max_rounds = 200'000;
  cfg.scheduler = SchedulerSpec::partial_async(1.0);
  const auto dense = gossip::run_rumor_spreading(cfg);
  cfg.scheduler = SchedulerSpec::partial_async(0.05);
  const auto sparse = gossip::run_rumor_spreading(cfg);
  ASSERT_TRUE(dense.complete);
  ASSERT_TRUE(sparse.complete);
  EXPECT_LT(dense.rounds, sparse.rounds);
}

TEST(PartialAsyncScheduler, FullProbabilityMatchesSynchronousRoundCount) {
  // p = 1 wakes everyone every round: completion time must equal the
  // synchronous engine's (the wake draws differ, but every agent acts).
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 29;
  cfg.max_rounds = 10'000;
  const auto sync = gossip::run_rumor_spreading(cfg);
  cfg.scheduler = SchedulerSpec::partial_async(1.0);
  cfg.check_every = 1;
  const auto p1 = gossip::run_rumor_spreading(cfg);
  ASSERT_TRUE(sync.complete);
  ASSERT_TRUE(p1.complete);
  EXPECT_EQ(sync.rounds, p1.rounds);
  EXPECT_EQ(sync.metrics.total_bits, p1.metrics.total_bits);
}

TEST(PartialAsyncScheduler, SeedReproducible) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 31;
  cfg.scheduler = SchedulerSpec::partial_async(0.3);
  cfg.check_every = 1;
  cfg.max_rounds = 50'000;
  const auto a = gossip::run_rumor_spreading(cfg);
  const auto b = gossip::run_rumor_spreading(cfg);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

// --------------------------------------------------------------------------
// AdversarialScheduler
// --------------------------------------------------------------------------

TEST(AdversarialScheduler, RejectsInvalidFraction) {
  EXPECT_THROW(make_adversarial_scheduler({.victim_fraction = 1.5}),
               std::invalid_argument);
}

TEST(AdversarialScheduler, StarvedVictimsStillLearnByPush) {
  // Victims never wake while any favored agent is unfinished, but passive
  // receptions still reach them: push-pull spreading completes.
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 37;
  cfg.scheduler =
      SchedulerSpec::adversarial({.victim_fraction = 0.25});
  cfg.check_every = 1;
  cfg.max_rounds = 400'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);
}

TEST(AdversarialScheduler, StarvationBeatsUniformSchedulingForPullOnly) {
  // Pull-only spreading needs the uninformed agent itself to wake; starving
  // a quarter of the network must not be faster than the uniform sequential
  // schedule at informing everyone.
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 41;
  cfg.check_every = 16;
  cfg.max_rounds = 500'000;
  cfg.scheduler = SchedulerSpec::sequential();
  const auto uniform = gossip::run_rumor_spreading(cfg);
  cfg.scheduler =
      SchedulerSpec::adversarial({.victim_fraction = 0.25});
  const auto adversarial = gossip::run_rumor_spreading(cfg);
  ASSERT_TRUE(uniform.complete);
  EXPECT_LT(uniform.rounds, cfg.max_rounds);
  // Victims can only pull once every favored agent is done — and rumor
  // agents never finish, so pull-only spreading cannot complete while any
  // victim exists: the run must exhaust its full step budget.
  EXPECT_FALSE(adversarial.complete);
  EXPECT_EQ(adversarial.rounds, cfg.max_rounds);
}

TEST(AdversarialScheduler, ZeroFractionIsSeededRoundRobin) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 43;
  cfg.scheduler = SchedulerSpec::adversarial({.victim_fraction = 0.0});
  cfg.check_every = 8;
  cfg.max_rounds = 200'000;
  const auto a = gossip::run_rumor_spreading(cfg);
  const auto b = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(a.complete);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(AdversarialScheduler, DifferentStreamsGiveDifferentOrderings) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 47;
  cfg.check_every = 1;
  cfg.max_rounds = 400'000;
  cfg.scheduler = SchedulerSpec::adversarial(
      {.victim_fraction = 0.25, .stream = 0xADF0u});
  const auto a = gossip::run_rumor_spreading(cfg);
  cfg.scheduler = SchedulerSpec::adversarial(
      {.victim_fraction = 0.25, .stream = 0xBEEFu});
  const auto b = gossip::run_rumor_spreading(cfg);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_NE(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(AdversarialScheduler, ExplicitVictimIdsAreStarved) {
  // Counting agents never report done(), so the favored pool never drains
  // and the pinned victims must never wake.
  const std::uint32_t n = 16;
  Engine engine = counting_engine(
      n, 51, SchedulerSpec::adversarial({.victim_ids = {3, 7}}));
  engine.run(400);
  const auto counts = wake_counts(engine);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[7], 0u);
  for (AgentId i = 0; i < n; ++i) {
    if (i == 3 || i == 7) continue;
    EXPECT_GT(counts[i], 0u) << "agent " << i;
  }
}

TEST(AdversarialScheduler, VictimIdsOverrideFraction) {
  // With victim_ids set the fraction is ignored: everyone else wakes even
  // though victim_fraction alone would starve the whole network.
  const std::uint32_t n = 8;
  Engine engine = counting_engine(
      n, 53,
      SchedulerSpec::adversarial(
          {.victim_fraction = 1.0, .victim_ids = {0}}));
  engine.run(160);
  const auto counts = wake_counts(engine);
  EXPECT_EQ(counts[0], 0u);
  for (AgentId i = 1; i < n; ++i) EXPECT_GT(counts[i], 0u);
}

TEST(AdversarialScheduler, VictimIdOutOfRangeIsIgnored) {
  // A victim label beyond n never wakes anyway; the list must keep working
  // across a sweep over n instead of aborting the run.
  const std::uint32_t n = 4;
  Engine engine =
      counting_engine(n, 55, SchedulerSpec::adversarial({.victim_ids = {9}}));
  engine.run(40);
  const auto counts = wake_counts(engine);
  for (AgentId i = 0; i < n; ++i) EXPECT_GT(counts[i], 0u) << "agent " << i;
}

// --------------------------------------------------------------------------
// PoissonClockScheduler
// --------------------------------------------------------------------------

TEST(PoissonClockScheduler, RejectsNonPositiveRate) {
  EXPECT_THROW(make_poisson_clock_scheduler(0.0), std::invalid_argument);
  EXPECT_THROW(make_poisson_clock_scheduler(-1.0), std::invalid_argument);
}

TEST(PoissonClockScheduler, WakeCountsAreUniformChiSquare) {
  // Independent rate-1 clocks wake every agent equally often: the per-agent
  // wake counts of T events must pass a chi-square uniformity test.
  const std::uint32_t n = 24;
  const std::uint64_t events = 400ull * n;
  Engine engine = counting_engine(n, 61, SchedulerSpec::poisson());
  engine.run(events);
  const auto counts = wake_counts(engine);
  const std::vector<double> uniform(n, 1.0);
  const auto gof = rfc::support::chi_square_gof(counts, uniform);
  EXPECT_EQ(gof.dof, n - 1);
  EXPECT_FALSE(gof.rejected(0.001))
      << "statistic=" << gof.statistic << " p=" << gof.p_value;
}

TEST(PoissonClockScheduler, FixedSeedDeterminismTrace) {
  const std::uint32_t n = 12;
  std::vector<AgentId> trace_a, trace_b;
  Engine a = counting_engine(n, 67, SchedulerSpec::poisson(), &trace_a);
  Engine b = counting_engine(n, 67, SchedulerSpec::poisson(), &trace_b);
  a.run(500);
  b.run(500);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(a.virtual_time(), b.virtual_time());
  // And a different seed must give a different wake order.
  std::vector<AgentId> trace_c;
  Engine c = counting_engine(n, 68, SchedulerSpec::poisson(), &trace_c);
  c.run(500);
  EXPECT_NE(trace_a, trace_c);
}

TEST(PoissonClockScheduler, VirtualTimeMatchesAggregateRate) {
  // T events of an aggregate rate-λn process take ~T/(λn) virtual time.
  const std::uint32_t n = 32;
  const std::uint64_t events = 3200;
  Engine one = counting_engine(n, 71, SchedulerSpec::poisson());
  one.run(events);
  const double expected = static_cast<double>(events) / n;
  EXPECT_NEAR(one.virtual_time(), expected, 0.2 * expected);
  // Doubling every clock's rate halves the elapsed virtual time.
  Engine two = counting_engine(n, 71, SchedulerSpec::poisson(2.0));
  two.run(events);
  EXPECT_NEAR(two.virtual_time(), expected / 2, 0.1 * expected);
}

TEST(PoissonClockScheduler, RumorCompletesInLogVirtualTime) {
  // The continuous-time broadcast bound: push-pull completes in Θ(log n)
  // virtual time, even though it needs Θ(n log n) discrete events.
  gossip::SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 73;
  cfg.scheduler = SchedulerSpec::poisson();
  cfg.max_rounds = 1'000'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  ASSERT_TRUE(r.complete);
  EXPECT_GT(r.rounds, 256u);
  const double log_n = std::log(256.0);
  EXPECT_GT(r.virtual_time, 0.5 * log_n);
  EXPECT_LT(r.virtual_time, 12.0 * log_n);
}

TEST(PoissonClockScheduler, FaultyAgentsNeverWake) {
  const std::uint32_t n = 16;
  Engine engine({n, 79, nullptr, SchedulerSpec::poisson().make()});
  engine.set_faulty(2);
  engine.set_faulty(5);
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<CountingAgent>());
  }
  engine.run(600);
  const auto counts = wake_counts(engine);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[5], 0u);
}

TEST(PoissonClockScheduler, CompactsDoneAgentsOutOfTheActiveSet) {
  // The satellite-3 contract pin: an agent that finishes stops absorbing
  // wake draws, so a population of done-after-k agents completes in
  // *exactly* k·n events — the pre-compaction scheduler wasted extra events
  // re-waking done agents w.h.p. before the run loop noticed completion.
  class DoneAfterAgent final : public Agent {
   public:
    explicit DoneAfterAgent(std::uint64_t k) noexcept : k_(k) {}
    Action on_round(const Context&) override {
      ++activations_;
      return Action::idle();
    }
    Payload serve_pull(const Context&, AgentId) override { return {}; }
    bool done() const override { return activations_ >= k_; }

   private:
    std::uint64_t k_;
    std::uint64_t activations_ = 0;
  };
  const std::uint32_t n = 24;
  const std::uint64_t k = 3;
  for (const SchedulerSpec& spec :
       {SchedulerSpec::poisson(), SchedulerSpec::poisson_heap()}) {
    Engine engine({n, 83, nullptr, spec.make()});
    for (AgentId i = 0; i < n; ++i) {
      engine.set_agent(i, std::make_unique<DoneAfterAgent>(k));
    }
    const std::uint64_t events = engine.run(1'000'000);
    EXPECT_TRUE(engine.all_done()) << spec.to_string();
    EXPECT_EQ(events, k * n) << spec.to_string();
  }
}

// --------------------------------------------------------------------------
// EventDrivenPoissonScheduler (poisson:queue=heap)
// --------------------------------------------------------------------------

TEST(PoissonHeapScheduler, RejectsNonPositiveRateAndUnknownQueue) {
  EXPECT_THROW(make_event_driven_poisson_scheduler(0.0),
               std::invalid_argument);
  EXPECT_THROW(make_event_driven_poisson_scheduler(-2.0),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("poisson:queue=wheel").make(),
               std::invalid_argument);
  EXPECT_NE(SchedulerSpec::parse("poisson:queue=scan").make(), nullptr);
  EXPECT_NE(SchedulerSpec::parse("poisson:queue=heap,rate=2").make(),
            nullptr);
}

TEST(PoissonHeapScheduler, SpecSelectsTheHeapPath) {
  EXPECT_STREQ(SchedulerSpec::poisson_heap().make()->name(), "poisson-heap");
  EXPECT_STREQ(SchedulerSpec::parse("poisson:queue=heap").make()->name(),
               "poisson-heap");
  EXPECT_STREQ(SchedulerSpec::parse("poisson:queue=scan").make()->name(),
               "poisson");
  EXPECT_STREQ(SchedulerSpec::parse("poisson").make()->name(), "poisson");
  EXPECT_EQ(SchedulerSpec::poisson_heap(2.0).to_string(),
            "poisson:queue=heap,rate=2");
  EXPECT_EQ(SchedulerSpec::parse(SchedulerSpec::poisson_heap(2.0).to_string()),
            SchedulerSpec::poisson_heap(2.0));
  // Self-termination is the heap path's engine contract; the scan path
  // keeps the classic all-done run loop.
  EXPECT_TRUE(SchedulerSpec::poisson_heap().make()->self_terminating());
  EXPECT_FALSE(SchedulerSpec::poisson().make()->self_terminating());
}

TEST(PoissonHeapScheduler, WakeCountsAreUniformChiSquare) {
  // Per-agent Exp(λ) clocks and the scan path's aggregate process are the
  // same law (Poisson superposition): wake counts stay uniform.
  const std::uint32_t n = 24;
  const std::uint64_t events = 400ull * n;
  Engine engine = counting_engine(n, 61, SchedulerSpec::poisson_heap());
  engine.run(events);
  const auto counts = wake_counts(engine);
  const std::vector<double> uniform(n, 1.0);
  const auto gof = rfc::support::chi_square_gof(counts, uniform);
  EXPECT_EQ(gof.dof, n - 1);
  EXPECT_FALSE(gof.rejected(0.001))
      << "statistic=" << gof.statistic << " p=" << gof.p_value;
}

TEST(PoissonHeapScheduler, FixedSeedDeterminismTrace) {
  const std::uint32_t n = 12;
  std::vector<AgentId> trace_a, trace_b;
  Engine a = counting_engine(n, 67, SchedulerSpec::poisson_heap(), &trace_a);
  Engine b = counting_engine(n, 67, SchedulerSpec::poisson_heap(), &trace_b);
  a.run(500);
  b.run(500);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(a.virtual_time(), b.virtual_time());
  std::vector<AgentId> trace_c;
  Engine c = counting_engine(n, 68, SchedulerSpec::poisson_heap(), &trace_c);
  c.run(500);
  EXPECT_NE(trace_a, trace_c);
  // The heap path draws from its own stream: same seed, different trace
  // than the scan path (equal in distribution, not bit-identical).
  std::vector<AgentId> trace_scan;
  Engine s = counting_engine(n, 67, SchedulerSpec::poisson(), &trace_scan);
  s.run(500);
  EXPECT_NE(trace_a, trace_scan);
}

TEST(PoissonHeapScheduler, VirtualTimeMatchesAggregateRate) {
  // T events over n independent rate-λ clocks take ~T/(λn) virtual time —
  // the same aggregate law the scan path simulates directly.
  const std::uint32_t n = 32;
  const std::uint64_t events = 3200;
  Engine one = counting_engine(n, 71, SchedulerSpec::poisson_heap());
  one.run(events);
  const double expected = static_cast<double>(events) / n;
  EXPECT_NEAR(one.virtual_time(), expected, 0.2 * expected);
  Engine two = counting_engine(n, 71, SchedulerSpec::poisson_heap(2.0));
  two.run(events);
  EXPECT_NEAR(two.virtual_time(), expected / 2, 0.1 * expected);
}

TEST(PoissonHeapScheduler, RumorCompletesInLogVirtualTime) {
  gossip::SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 73;
  cfg.scheduler = SchedulerSpec::poisson_heap();
  cfg.max_rounds = 1'000'000;
  const auto r = gossip::run_rumor_spreading(cfg);
  ASSERT_TRUE(r.complete);
  EXPECT_GT(r.rounds, 256u);
  const double log_n = std::log(256.0);
  EXPECT_GT(r.virtual_time, 0.5 * log_n);
  EXPECT_LT(r.virtual_time, 12.0 * log_n);
}

TEST(PoissonHeapScheduler, FaultyAgentsNeverWake) {
  const std::uint32_t n = 16;
  Engine engine({n, 79, nullptr, SchedulerSpec::poisson_heap().make()});
  engine.set_faulty(2);
  engine.set_faulty(5);
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<CountingAgent>());
  }
  engine.run(600);
  const auto counts = wake_counts(engine);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[5], 0u);
}

TEST(PoissonHeapScheduler, ObserverSeesEveryEventExactlyOnce) {
  Engine engine({8, 2, nullptr, SchedulerSpec::poisson_heap().make()});
  for (AgentId i = 0; i < 8; ++i) {
    engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                            gossip::Mechanism::kPushPull, i == 0, 8));
  }
  int calls = 0;
  engine.set_round_observer([&calls](const Engine&) { ++calls; });
  engine.run(5);
  EXPECT_EQ(calls, 5);
}

// --------------------------------------------------------------------------
// Protocol P under the spec-driven entry point (acceptance: poisson and
// adversarial runs go end-to-end through core::RunConfig).
// --------------------------------------------------------------------------

core::RunResult run_protocol_under(const std::string& spec_text) {
  core::RunConfig cfg;
  cfg.n = 32;
  cfg.seed = 11;
  cfg.scheduler = SchedulerSpec::parse(spec_text);
  return core::run_protocol(cfg);
}

TEST(SchedulerSpecProtocol, SynchronousStillElectsALeader) {
  const auto r = run_protocol_under("synchronous");
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.num_active, 32u);
}

TEST(SchedulerSpecProtocol, RunsEndToEndUnderPoisson) {
  const auto r = run_protocol_under("poisson");
  // The synchronous phase schedule reads the global clock, so under
  // activation-based policies completeness is expected to break (that is
  // the experiment) — but the run must execute to termination and report.
  EXPECT_EQ(r.num_active, 32u);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_GT(r.metrics.virtual_time, 0.0);
}

TEST(SchedulerSpecProtocol, RunsEndToEndUnderAdversarial) {
  const auto r = run_protocol_under("adversarial:victim_fraction=0.25");
  EXPECT_EQ(r.num_active, 32u);
  EXPECT_GT(r.rounds, 0u);
}

TEST(SchedulerSpecProtocol, RunsEndToEndUnderPoissonHeap) {
  const auto r = run_protocol_under("poisson:queue=heap");
  EXPECT_EQ(r.num_active, 32u);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_GT(r.metrics.virtual_time, 0.0);
}

// --------------------------------------------------------------------------
// Facade plumbing
// --------------------------------------------------------------------------

TEST(Scheduler, NamesAreStable) {
  EXPECT_STREQ(make_synchronous_scheduler()->name(), "synchronous");
  EXPECT_STREQ(make_sequential_scheduler()->name(), "sequential");
  EXPECT_STREQ(make_partial_async_scheduler(0.5)->name(), "partial-async");
  EXPECT_STREQ(make_adversarial_scheduler()->name(), "adversarial");
  EXPECT_STREQ(make_poisson_clock_scheduler()->name(), "poisson");
  EXPECT_STREQ(make_event_driven_poisson_scheduler()->name(), "poisson-heap");
}

TEST(Scheduler, EngineDefaultsToSynchronous) {
  Engine engine({4, 1});
  EXPECT_STREQ(engine.scheduler().name(), "synchronous");
}

TEST(Scheduler, ObserverFiresUnderEveryPolicy) {
  for (const auto& name : SchedulerSpec::registered_policies()) {
    Engine engine({8, 2, nullptr, SchedulerSpec::parse(name).make()});
    for (AgentId i = 0; i < 8; ++i) {
      engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                              gossip::Mechanism::kPushPull, i == 0, 8));
    }
    int calls = 0;
    engine.set_round_observer([&calls](const Engine&) { ++calls; });
    engine.run(5);
    EXPECT_EQ(calls, 5) << name;
  }
}

TEST(Scheduler, DiscreteSchedulersPinVirtualTimeToEvents) {
  for (const char* name :
       {"synchronous", "sequential", "partial-async", "adversarial"}) {
    Engine engine = counting_engine(8, 3, SchedulerSpec::parse(name));
    engine.run(17);
    EXPECT_DOUBLE_EQ(engine.virtual_time(), 17.0) << name;
  }
}

}  // namespace
}  // namespace rfc::sim
