// Behavioural tests of the pluggable activation policies: the sequential
// model's contracts (previously AsyncEngine's test suite) plus the two
// scenario-opening schedulers (partial-async, adversarial).
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gossip/min_aggregation.hpp"
#include "gossip/rumor.hpp"
#include "sim/engine.hpp"

namespace rfc::sim {
namespace {

Engine sequential_engine(std::uint32_t n, std::uint64_t seed) {
  return Engine({n, seed, nullptr, make_sequential_scheduler()});
}

TEST(SequentialScheduler, RejectsZeroAgents) {
  EXPECT_THROW(Engine({0, 1, nullptr, make_sequential_scheduler()}),
               std::invalid_argument);
}

TEST(SequentialScheduler, MissingAgentThrows) {
  Engine engine = sequential_engine(2, 1);
  engine.set_agent(0, std::make_unique<gossip::RumorAgent>(
                          gossip::Mechanism::kPull, true, 8));
  EXPECT_THROW(engine.step(), std::logic_error);
}

TEST(SequentialScheduler, FaultPlanLockedAfterStart) {
  Engine engine = sequential_engine(2, 1);
  for (AgentId i = 0; i < 2; ++i) {
    engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                            gossip::Mechanism::kPull, i == 0, 8));
  }
  engine.step();
  EXPECT_THROW(engine.set_faulty(1), std::logic_error);
}

TEST(SequentialScheduler, RumorEventuallyReachesEveryone) {
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 3;
  cfg.max_rounds = 100'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.rounds, 128u);  // Needs far more steps than agents.
}

TEST(SequentialScheduler, StepsScaleAsNLogN) {
  // Coupon-collector behaviour: steps/(n ln n) bounded for push-pull.
  for (const std::uint32_t n : {128u, 512u}) {
    gossip::SpreadConfig cfg;
    cfg.n = n;
    cfg.mechanism = gossip::Mechanism::kPushPull;
    cfg.max_rounds = 1'000'000;
    double mean = 0;
    constexpr int kReps = 5;
    for (int i = 0; i < kReps; ++i) {
      cfg.seed = 50 + i;
      const auto r = gossip::run_rumor_spreading_async(cfg);
      ASSERT_TRUE(r.complete);
      mean += static_cast<double>(r.rounds) / kReps;
    }
    const double normalized = mean / (n * std::log(n));
    EXPECT_GT(normalized, 0.3) << "n=" << n;
    EXPECT_LT(normalized, 6.0) << "n=" << n;
  }
}

TEST(SequentialScheduler, SeedReproducible) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 12;
  cfg.max_rounds = 100'000;
  const auto a = gossip::run_rumor_spreading_async(cfg);
  const auto b = gossip::run_rumor_spreading_async(cfg);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(SequentialScheduler, FaultyAgentsNeverWake) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.num_faulty = 32;
  cfg.placement = FaultPlacement::kPrefix;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 7;
  cfg.max_rounds = 200'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_TRUE(r.complete);  // Among active agents.
}

TEST(SequentialScheduler, RespectsTopology) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 5;
  cfg.topology = make_ring(64, 1);
  cfg.max_rounds = 500'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_TRUE(r.complete);
  // Ring diameter forces ≫ n log n steps.
  EXPECT_GT(r.rounds, 64u * 6);
}

TEST(SequentialScheduler, MetricsAccountMessages) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 6;
  cfg.rumor_bits = 99;
  cfg.max_rounds = 100'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_GT(r.metrics.pull_requests, 0u);
  EXPECT_GE(r.metrics.max_message_bits, 99u);
  EXPECT_LE(r.metrics.active_links, r.rounds);
}

// --------------------------------------------------------------------------
// PartialAsyncScheduler
// --------------------------------------------------------------------------

TEST(PartialAsyncScheduler, RejectsInvalidProbability) {
  EXPECT_THROW(make_partial_async_scheduler(-0.1), std::invalid_argument);
  EXPECT_THROW(make_partial_async_scheduler(1.5), std::invalid_argument);
}

TEST(PartialAsyncScheduler, SpreadsUnderPartialWakes) {
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 17;
  cfg.max_rounds = 20'000;
  const auto r = gossip::run_rumor_spreading_scheduled(
      cfg, make_partial_async_scheduler(0.25));
  EXPECT_TRUE(r.complete);
}

TEST(PartialAsyncScheduler, InterpolatesBetweenModels) {
  // Fewer awake agents per round => more rounds to completion; the sweep
  // must be monotone-ish between full synchrony and sparse wake-ups.
  gossip::SpreadConfig cfg;
  cfg.n = 256;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 23;
  cfg.max_rounds = 200'000;
  const auto dense = gossip::run_rumor_spreading_scheduled(
      cfg, make_partial_async_scheduler(1.0));
  const auto sparse = gossip::run_rumor_spreading_scheduled(
      cfg, make_partial_async_scheduler(0.05));
  ASSERT_TRUE(dense.complete);
  ASSERT_TRUE(sparse.complete);
  EXPECT_LT(dense.rounds, sparse.rounds);
}

TEST(PartialAsyncScheduler, FullProbabilityMatchesSynchronousRoundCount) {
  // p = 1 wakes everyone every round: completion time must equal the
  // synchronous engine's (the wake draws differ, but every agent acts).
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 29;
  cfg.max_rounds = 10'000;
  const auto sync = gossip::run_rumor_spreading(cfg);
  const auto p1 = gossip::run_rumor_spreading_scheduled(
      cfg, make_partial_async_scheduler(1.0));
  ASSERT_TRUE(sync.complete);
  ASSERT_TRUE(p1.complete);
  EXPECT_EQ(sync.rounds, p1.rounds);
  EXPECT_EQ(sync.metrics.total_bits, p1.metrics.total_bits);
}

TEST(PartialAsyncScheduler, SeedReproducible) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 31;
  cfg.max_rounds = 50'000;
  const auto a = gossip::run_rumor_spreading_scheduled(
      cfg, make_partial_async_scheduler(0.3));
  const auto b = gossip::run_rumor_spreading_scheduled(
      cfg, make_partial_async_scheduler(0.3));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

// --------------------------------------------------------------------------
// AdversarialScheduler
// --------------------------------------------------------------------------

TEST(AdversarialScheduler, RejectsInvalidFraction) {
  EXPECT_THROW(make_adversarial_scheduler({.victim_fraction = 1.5}),
               std::invalid_argument);
}

TEST(AdversarialScheduler, StarvedVictimsStillLearnByPush) {
  // Victims never wake while any favored agent is unfinished, but passive
  // receptions still reach them: push-pull spreading completes.
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 37;
  cfg.max_rounds = 400'000;
  const auto r = gossip::run_rumor_spreading_scheduled(
      cfg, make_adversarial_scheduler({.victim_fraction = 0.25}));
  EXPECT_TRUE(r.complete);
}

TEST(AdversarialScheduler, StarvationBeatsUniformSchedulingForPullOnly) {
  // Pull-only spreading needs the uninformed agent itself to wake; starving
  // a quarter of the network must not be faster than the uniform sequential
  // schedule at informing everyone.
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 41;
  cfg.max_rounds = 500'000;
  const auto uniform = gossip::run_rumor_spreading_scheduled(
      cfg, make_sequential_scheduler(), 16);
  const auto adversarial = gossip::run_rumor_spreading_scheduled(
      cfg, make_adversarial_scheduler({.victim_fraction = 0.25}), 16);
  ASSERT_TRUE(uniform.complete);
  EXPECT_LT(uniform.rounds, cfg.max_rounds);
  // Victims can only pull once every favored agent is done — and rumor
  // agents never finish, so pull-only spreading cannot complete while any
  // victim exists: the run must exhaust its full step budget.
  EXPECT_FALSE(adversarial.complete);
  EXPECT_EQ(adversarial.rounds, cfg.max_rounds);
}

TEST(AdversarialScheduler, ZeroFractionIsSeededRoundRobin) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 43;
  cfg.max_rounds = 200'000;
  const auto a = gossip::run_rumor_spreading_scheduled(
      cfg, make_adversarial_scheduler({.victim_fraction = 0.0}), 8);
  const auto b = gossip::run_rumor_spreading_scheduled(
      cfg, make_adversarial_scheduler({.victim_fraction = 0.0}), 8);
  EXPECT_TRUE(a.complete);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(AdversarialScheduler, DifferentStreamsGiveDifferentOrderings) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 47;
  cfg.max_rounds = 400'000;
  const auto a = gossip::run_rumor_spreading_scheduled(
      cfg, make_adversarial_scheduler({.victim_fraction = 0.25,
                                       .stream = 0xADF0u}));
  const auto b = gossip::run_rumor_spreading_scheduled(
      cfg, make_adversarial_scheduler({.victim_fraction = 0.25,
                                       .stream = 0xBEEFu}));
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_NE(a.metrics.total_bits, b.metrics.total_bits);
}

// --------------------------------------------------------------------------
// Facade plumbing
// --------------------------------------------------------------------------

TEST(Scheduler, NamesAreStable) {
  EXPECT_STREQ(make_synchronous_scheduler()->name(), "synchronous");
  EXPECT_STREQ(make_sequential_scheduler()->name(), "sequential");
  EXPECT_STREQ(make_partial_async_scheduler(0.5)->name(), "partial-async");
  EXPECT_STREQ(make_adversarial_scheduler()->name(), "adversarial");
}

TEST(Scheduler, EngineDefaultsToSynchronous) {
  Engine engine({4, 1});
  EXPECT_STREQ(engine.scheduler().name(), "synchronous");
}

TEST(Scheduler, ObserverFiresUnderEveryPolicy) {
  for (auto make : {+[] { return make_synchronous_scheduler(); },
                    +[] { return make_sequential_scheduler(); },
                    +[] { return make_partial_async_scheduler(0.5); },
                    +[] { return make_adversarial_scheduler({}); }}) {
    Engine engine({8, 2, nullptr, make()});
    for (AgentId i = 0; i < 8; ++i) {
      engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                              gossip::Mechanism::kPushPull, i == 0, 8));
    }
    int calls = 0;
    engine.set_round_observer([&calls](const Engine&) { ++calls; });
    engine.run(5);
    EXPECT_EQ(calls, 5);
  }
}

}  // namespace
}  // namespace rfc::sim
