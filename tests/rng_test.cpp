#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rfc::support {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 0 from Vigna's splitmix64.c.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, DistinctSeedsDistinctStreams) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Xoshiro256, BetweenIsInclusive) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.between(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Xoshiro256, Uniform01InUnitInterval) {
  Xoshiro256 rng(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(19);
  int hits = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(DeriveSeed, ProducesIndependentLookingStreams) {
  // Adjacent stream ids must not give adjacent or equal seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    seeds.insert(derive_seed(42, s));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, DependsOnMaster) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(99, 7), derive_seed(99, 7));
}

}  // namespace
}  // namespace rfc::support
