#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baseline/local_fair_election.hpp"
#include "baseline/naive_election.hpp"

namespace rfc::baseline {
namespace {

TEST(LocalFairElection, ElectsAnActiveAgent) {
  LocalElectionConfig cfg;
  cfg.n = 100;
  cfg.num_faulty = 40;
  cfg.placement = sim::FaultPlacement::kPrefix;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    cfg.seed = seed;
    const auto r = run_local_fair_election(cfg);
    EXPECT_GE(r.leader, 40u);
    EXPECT_EQ(r.winner, static_cast<core::Color>(r.leader));
    EXPECT_EQ(r.num_active, 60u);
  }
}

TEST(LocalFairElection, MessageCountIsQuadratic) {
  LocalElectionConfig cfg;
  cfg.n = 100;
  const auto r = run_local_fair_election(cfg);
  EXPECT_EQ(r.messages, 2ull * 100 * 99);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_EQ(r.total_bits, r.messages * 7);  // ceil(log2 100) = 7.
}

TEST(LocalFairElection, RoughlyUniformOverActiveAgents) {
  LocalElectionConfig cfg;
  cfg.n = 8;
  std::map<sim::AgentId, int> wins;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    cfg.seed = 100 + i;
    ++wins[run_local_fair_election(cfg).leader];
  }
  for (const auto& [leader, count] : wins) {
    EXPECT_NEAR(count, kTrials / 8.0, 5 * std::sqrt(kTrials / 8.0))
        << "leader " << leader;
  }
  EXPECT_EQ(wins.size(), 8u);
}

TEST(LocalFairElection, CustomColors) {
  LocalElectionConfig cfg;
  cfg.n = 10;
  cfg.colors.assign(10, 7);
  cfg.seed = 3;
  const auto r = run_local_fair_election(cfg);
  EXPECT_EQ(r.winner, 7);
}

TEST(LocalFairElection, EmptyNetworkIsNoop) {
  LocalElectionConfig cfg;
  cfg.n = 0;
  const auto r = run_local_fair_election(cfg);
  EXPECT_EQ(r.winner, core::kNoColor);
}

TEST(NaiveElection, HonestRunsAgreeAndElectSomeone) {
  NaiveElectionConfig cfg;
  cfg.n = 128;
  cfg.gamma = 4.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const auto r = run_naive_election(cfg);
    EXPECT_TRUE(r.agreement);
    EXPECT_NE(r.winner, core::kNoColor);
    EXPECT_LT(r.leader, 128u);
  }
}

TEST(NaiveElection, HonestElectionIsRoughlyFair) {
  NaiveElectionConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.colors.assign(64, 0);
  for (int i = 0; i < 32; ++i) cfg.colors[i] = 1;
  int color1 = 0;
  constexpr int kTrials = 300;
  for (int i = 0; i < kTrials; ++i) {
    cfg.seed = 500 + i;
    if (run_naive_election(cfg).winner == 1) ++color1;
  }
  EXPECT_NEAR(color1 / static_cast<double>(kTrials), 0.5, 0.1);
}

TEST(NaiveElection, SingleCheaterAlwaysWins) {
  NaiveElectionConfig cfg;
  cfg.n = 128;
  cfg.gamma = 4.0;
  cfg.cheaters = 1;
  cfg.colors.assign(128, 0);
  cfg.colors[0] = 1;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    cfg.seed = seed;
    const auto r = run_naive_election(cfg);
    ASSERT_TRUE(r.agreement);
    EXPECT_EQ(r.winner, 1);
    EXPECT_EQ(r.leader, 0u);
  }
}

TEST(NaiveElection, MinIdModeAlwaysElectsLabelZero) {
  NaiveElectionConfig cfg;
  cfg.n = 64;
  cfg.mode = NaiveKeyMode::kMinId;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const auto r = run_naive_election(cfg);
    ASSERT_TRUE(r.agreement);
    EXPECT_EQ(r.leader, 0u);
  }
}

TEST(NaiveElection, SurvivesFaults) {
  NaiveElectionConfig cfg;
  cfg.n = 128;
  cfg.gamma = 6.0;
  cfg.num_faulty = 64;
  cfg.placement = sim::FaultPlacement::kRandom;
  cfg.seed = 4;
  const auto r = run_naive_election(cfg);
  EXPECT_TRUE(r.agreement);
}

TEST(NaiveElectionAsync, AgreesWithGenerousBudget) {
  NaiveElectionConfig cfg;
  cfg.n = 128;
  cfg.gamma = 4.0;
  cfg.scheduler = sim::SchedulerSpec::sequential();
  cfg.budget_multiplier = 4.0;
  int agreements = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    cfg.seed = seed;
    if (run_naive_election(cfg).agreement) ++agreements;
  }
  EXPECT_GE(agreements, 19);
}

TEST(NaiveElectionAsync, StarvedBudgetLosesAgreement) {
  NaiveElectionConfig cfg;
  cfg.n = 128;
  cfg.gamma = 4.0;
  cfg.scheduler = sim::SchedulerSpec::sequential();
  int starved = 0, generous = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    cfg.seed = seed;
    cfg.budget_multiplier = 0.25;
    if (run_naive_election(cfg).agreement) ++starved;
    cfg.budget_multiplier = 4.0;
    if (run_naive_election(cfg).agreement) ++generous;
  }
  EXPECT_LT(starved, generous);
}

TEST(NaiveElectionAsync, CheaterStillWins) {
  // The async baseline inherits the sync one's vulnerability.
  NaiveElectionConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.cheaters = 1;
  cfg.colors.assign(64, 0);
  cfg.colors[0] = 1;
  cfg.scheduler = sim::SchedulerSpec::sequential();
  cfg.budget_multiplier = 4.0;
  int cheater_wins = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const auto r = run_naive_election(cfg);
    if (r.agreement && r.winner == 1) ++cheater_wins;
  }
  EXPECT_GE(cheater_wins, 9);
}

TEST(NaiveElection, ModeNamesDefined) {
  EXPECT_EQ(to_string(NaiveKeyMode::kRandom), "random-key");
  EXPECT_EQ(to_string(NaiveKeyMode::kMinId), "min-id");
}

}  // namespace
}  // namespace rfc::baseline
