#include "baseline/adh_election.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace rfc::baseline {
namespace {

TEST(AdhElection, HonestRunElectsAParticipant) {
  AdhConfig cfg;
  cfg.n = 50;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    cfg.seed = seed;
    const auto r = run_adh_election(cfg);
    ASSERT_FALSE(r.failed());
    EXPECT_LT(r.leader, 50u);
    EXPECT_EQ(r.winner, static_cast<core::Color>(r.leader));
    EXPECT_EQ(r.rounds, 2u);
    EXPECT_EQ(r.messages, 2ull * 50 * 49);
  }
}

TEST(AdhElection, HonestRunIsRoughlyUniform) {
  AdhConfig cfg;
  cfg.n = 8;
  std::map<sim::AgentId, int> wins;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    cfg.seed = 100 + i;
    ++wins[run_adh_election(cfg).leader];
  }
  EXPECT_EQ(wins.size(), 8u);
  for (const auto& [leader, count] : wins) {
    EXPECT_NEAR(count, kTrials / 8.0, 5 * std::sqrt(kTrials / 8.0))
        << "leader " << leader;
  }
}

TEST(AdhElection, PreProtocolFaultsAreFine) {
  // Agents that were *already* dead never commit, so the election runs
  // among the live ones (this is not the problematic case).
  AdhConfig cfg;
  cfg.n = 40;
  cfg.num_faulty = 10;
  cfg.placement = sim::FaultPlacement::kPrefix;
  cfg.seed = 5;
  const auto r = run_adh_election(cfg);
  ASSERT_FALSE(r.failed());
  EXPECT_GE(r.leader, 10u);
  EXPECT_EQ(r.num_active, 30u);
}

TEST(AdhElection, CrashAfterCommitKillsTheElection) {
  // The paper's critique: ONE participant crashing between commit and
  // reveal leaves the protocol stuck, every time.
  AdhConfig cfg;
  cfg.n = 64;
  cfg.deviators = 1;
  cfg.deviation = AdhDeviation::kCrashAfterCommit;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    cfg.seed = seed;
    EXPECT_TRUE(run_adh_election(cfg).failed());
  }
}

TEST(AdhElection, FalseRevealIsDetectedAndExcluded) {
  AdhConfig cfg;
  cfg.n = 32;
  cfg.deviators = 3;
  cfg.deviation = AdhDeviation::kFalseReveal;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const auto r = run_adh_election(cfg);
    ASSERT_FALSE(r.failed());
    EXPECT_EQ(r.detected_cheaters, 3u);
    EXPECT_GE(r.leader, 3u);  // Cheaters are out of the re-run.
    EXPECT_EQ(r.rounds, 4u);  // One restart.
  }
}

TEST(AdhElection, FalseRevealGainsNothing) {
  // Being excluded can only lower the deviators' winning chances.
  AdhConfig cfg;
  cfg.n = 32;
  cfg.colors.assign(32, 0);
  for (int i = 0; i < 4; ++i) cfg.colors[i] = 1;
  cfg.deviators = 4;
  cfg.deviation = AdhDeviation::kFalseReveal;
  int wins = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    cfg.seed = seed;
    const auto r = run_adh_election(cfg);
    if (!r.failed() && r.winner == 1) ++wins;
  }
  EXPECT_EQ(wins, 0);  // Excluded cheaters cannot be elected.
}

TEST(AdhElection, AbortIfLosingBurnsTheElection) {
  AdhConfig cfg;
  cfg.n = 32;
  cfg.colors.assign(32, 0);
  for (int i = 0; i < 4; ++i) cfg.colors[i] = 1;
  cfg.deviators = 4;
  cfg.deviation = AdhDeviation::kAbortIfLosing;
  int wins = 0, aborts = 0;
  constexpr int kTrials = 300;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    cfg.seed = seed;
    const auto r = run_adh_election(cfg);
    if (r.failed()) {
      ++aborts;
    } else if (r.winner == 1) {
      ++wins;
    }
  }
  // Wins only at the fair share (the coalition cannot bias the draw)...
  EXPECT_NEAR(static_cast<double>(wins) / kTrials, 4.0 / 32, 0.06);
  // ...and every unfavourable draw is converted to ⊥ (like StubbornCert
  // against Protocol P, this is utility-destroying for chi > 0).
  EXPECT_NEAR(static_cast<double>(aborts) / kTrials, 28.0 / 32, 0.08);
}

TEST(AdhElection, QuadraticMessageCost) {
  for (const std::uint32_t n : {16u, 64u, 256u}) {
    AdhConfig cfg;
    cfg.n = n;
    cfg.seed = 2;
    const auto r = run_adh_election(cfg);
    EXPECT_EQ(r.messages, 2ull * n * (n - 1));
    EXPECT_GT(r.total_bits, 0u);
  }
}

TEST(AdhElection, DeviationNamesDefined) {
  EXPECT_EQ(to_string(AdhDeviation::kNone), "honest");
  EXPECT_EQ(to_string(AdhDeviation::kCrashAfterCommit),
            "crash-after-commit");
  EXPECT_EQ(to_string(AdhDeviation::kFalseReveal), "false-reveal");
  EXPECT_EQ(to_string(AdhDeviation::kAbortIfLosing), "abort-if-losing");
}

}  // namespace
}  // namespace rfc::baseline
