// Byte-identical equivalence of the sharded synchronous round with the
// serial engine, for every tested (shards, threads) combination.
//
// The sharded EngineCore path (sim/sharding.hpp) promises bit-identical
// metrics and agent state for ANY shard count and ANY thread count —
// including shards that do not divide n, shards exceeding n, and more
// threads than cores.  These tests pin that promise over the two workloads
// the acceptance bar names: epidemic rumor spreading and Protocol P, each
// compared field-by-field against the unsharded engine (S ∈ {1, 2, 7, 64}
// × threads ∈ {1, 4}), plus the masked round of PartialAsyncScheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "end_state_digest.hpp"
#include "gossip/rumor.hpp"
#include "rational/strategies.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::sim {
namespace {

struct ShardCase {
  std::uint32_t shards;
  std::uint32_t threads;
};

const std::vector<ShardCase>& shard_cases() {
  // 2 divides the test sizes, 7 does not, 64 equals/exceeds some of them;
  // 4 threads oversubscribe a small CI box on purpose — scheduling order
  // must not matter.
  static const std::vector<ShardCase> kCases = {
      {1, 1}, {1, 4}, {2, 1}, {2, 4}, {7, 1}, {7, 4}, {64, 1}, {64, 4}};
  return kCases;
}

std::string case_name(const ShardCase& c) {
  return "shards=" + std::to_string(c.shards) +
         ",threads=" + std::to_string(c.threads);
}

SchedulerSpec sharded_spec(const ShardCase& c) {
  return SchedulerSpec::parse("synchronous:" + case_name(c));
}

void expect_metrics_identical(const Metrics& a, const Metrics& b,
                              const std::string& label) {
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.virtual_time, b.virtual_time) << label;
  EXPECT_EQ(a.pushes, b.pushes) << label;
  EXPECT_EQ(a.pull_requests, b.pull_requests) << label;
  EXPECT_EQ(a.pull_replies, b.pull_replies) << label;
  EXPECT_EQ(a.total_bits, b.total_bits) << label;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << label;
  EXPECT_EQ(a.active_links, b.active_links) << label;
  EXPECT_EQ(a.denials, b.denials) << label;
}

// --------------------------------------------------------------------------
// Rumor spreading: full run via the public entry point, plus a
// direct engine drive comparing per-agent final state.
// --------------------------------------------------------------------------

gossip::SpreadResult run_spread(const SchedulerSpec& spec) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 20260726;
  cfg.num_faulty = 24;
  cfg.placement = FaultPlacement::kRandom;
  cfg.scheduler = spec;
  return gossip::run_rumor_spreading(cfg);
}

TEST(ShardedEquivalence, RumorSpreadingIdenticalAcrossShardsAndThreads) {
  const gossip::SpreadResult base = run_spread(SchedulerSpec::synchronous());
  ASSERT_TRUE(base.complete);
  for (const ShardCase& c : shard_cases()) {
    const gossip::SpreadResult sharded = run_spread(sharded_spec(c));
    EXPECT_EQ(base.complete, sharded.complete) << case_name(c);
    EXPECT_EQ(base.rounds, sharded.rounds) << case_name(c);
    EXPECT_EQ(base.virtual_time, sharded.virtual_time) << case_name(c);
    expect_metrics_identical(base.metrics, sharded.metrics, case_name(c));
  }
}

TEST(ShardedEquivalence, RumorAgentStateIdenticalMidRun) {
  // Drive engines a fixed number of rounds (mid-spread, where per-round
  // deliveries are dense) and compare every agent's informed flag plus the
  // metric trace after every round.
  const std::uint32_t n = 96;
  const std::uint64_t kRounds = 8;
  const auto build = [n](SchedulerPtr scheduler) {
    auto engine =
        std::make_unique<Engine>(EngineConfig{n, 77, nullptr,
                                              std::move(scheduler)});
    for (std::uint32_t i = 0; i < n; ++i) {
      engine->set_agent(i, std::make_unique<gossip::RumorAgent>(
                               gossip::Mechanism::kPushPull, i == 0, 64));
    }
    return engine;
  };
  const auto base = build(make_synchronous_scheduler());
  for (const ShardCase& c : shard_cases()) {
    const auto sharded = build(sharded_spec(c).make());
    for (std::uint64_t r = 0; r < kRounds; ++r) sharded->step();
    while (base->round() < sharded->round()) base->step();
    expect_metrics_identical(base->metrics(), sharded->metrics(),
                             case_name(c));
    for (std::uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(
          static_cast<const gossip::RumorAgent&>(base->agent(i)).informed(),
          static_cast<const gossip::RumorAgent&>(sharded->agent(i))
              .informed())
          << case_name(c) << " agent " << i;
    }
  }
}

// --------------------------------------------------------------------------
// Protocol P: full consensus runs through core::run_protocol, comparing the
// outcome, the good-execution events, and per-agent decisions.
// --------------------------------------------------------------------------

core::RunResult run_p(const SchedulerSpec& spec, std::uint32_t num_faulty) {
  core::RunConfig cfg;
  cfg.n = 48;
  cfg.gamma = 3.0;
  cfg.seed = 987654321;
  cfg.num_faulty = num_faulty;
  cfg.placement =
      num_faulty > 0 ? FaultPlacement::kRandom : FaultPlacement::kNone;
  cfg.scheduler = spec;
  return core::run_protocol(cfg);
}

void expect_run_identical(const core::RunResult& a, const core::RunResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.winner, b.winner) << label;
  EXPECT_EQ(a.winner_agent, b.winner_agent) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.num_active, b.num_active) << label;
  EXPECT_EQ(a.honest_failures, b.honest_failures) << label;
  EXPECT_EQ(a.max_local_memory_bits, b.max_local_memory_bits) << label;
  expect_metrics_identical(a.metrics, b.metrics, label);
  EXPECT_EQ(a.events.min_votes, b.events.min_votes) << label;
  EXPECT_EQ(a.events.max_votes, b.events.max_votes) << label;
  EXPECT_EQ(a.events.k_values_distinct, b.events.k_values_distinct) << label;
  EXPECT_EQ(a.events.find_min_agreement, b.events.find_min_agreement)
      << label;
  EXPECT_EQ(a.events.every_agent_audited, b.events.every_agent_audited)
      << label;
  EXPECT_EQ(a.events.every_agent_cleanly_voted,
            b.events.every_agent_cleanly_voted)
      << label;
  EXPECT_EQ(a.active_colors, b.active_colors) << label;
}

TEST(ShardedEquivalence, ProtocolPIdenticalAcrossShardsAndThreads) {
  const core::RunResult base = run_p(SchedulerSpec::synchronous(), 0);
  EXPECT_NE(base.winner, core::kNoColor);
  for (const ShardCase& c : shard_cases()) {
    expect_run_identical(base, run_p(sharded_spec(c), 0), case_name(c));
  }
}

TEST(ShardedEquivalence, ProtocolPWithFaultsIdentical) {
  const core::RunResult base = run_p(SchedulerSpec::synchronous(), 12);
  for (const ShardCase& c : shard_cases()) {
    expect_run_identical(base, run_p(sharded_spec(c), 12), case_name(c));
  }
}

// --------------------------------------------------------------------------
// The masked round (PartialAsyncScheduler) shards identically too.
// --------------------------------------------------------------------------

TEST(ShardedEquivalence, PartialAsyncMaskedRoundIdentical) {
  const auto run = [](const std::string& spec_text) {
    gossip::SpreadConfig cfg;
    cfg.n = 80;
    cfg.mechanism = gossip::Mechanism::kPushPull;
    cfg.seed = 4242;
    cfg.scheduler = SchedulerSpec::parse(spec_text);
    return gossip::run_rumor_spreading(cfg);
  };
  const gossip::SpreadResult base = run("partial-async:p=0.4");
  for (const ShardCase& c : shard_cases()) {
    const gossip::SpreadResult sharded =
        run("partial-async:p=0.4," + case_name(c));
    EXPECT_EQ(base.complete, sharded.complete) << case_name(c);
    EXPECT_EQ(base.rounds, sharded.rounds) << case_name(c);
    expect_metrics_identical(base.metrics, sharded.metrics, case_name(c));
  }
}

// --------------------------------------------------------------------------
// Batched delivery: the masked sub-round must shard identically too, so
// batched:block=B traces are pinned for every (shards, threads).
// --------------------------------------------------------------------------

TEST(ShardedEquivalence, BatchedDeliveryIdenticalAcrossShardsAndThreads) {
  const gossip::SpreadResult base =
      run_spread(SchedulerSpec::parse("batched:block=3"));
  ASSERT_TRUE(base.complete);
  for (const ShardCase& c : shard_cases()) {
    const gossip::SpreadResult sharded =
        run_spread(SchedulerSpec::parse("batched:block=3," + case_name(c)));
    EXPECT_EQ(base.complete, sharded.complete) << case_name(c);
    EXPECT_EQ(base.rounds, sharded.rounds) << case_name(c);
    EXPECT_EQ(base.virtual_time, sharded.virtual_time) << case_name(c);
    expect_metrics_identical(base.metrics, sharded.metrics, case_name(c));
  }
}

TEST(ShardedEquivalence, ProtocolPBatchedIdenticalAcrossShardsAndThreads) {
  // Protocol P under batched delivery usually fails (its phase schedule
  // reads the global clock, which now ticks B× per agent wake) — the
  // equivalence claim is about traces, not protocol success.
  const core::RunResult base =
      run_p(SchedulerSpec::parse("batched:block=3"), 0);
  for (const ShardCase& c : shard_cases()) {
    expect_run_identical(
        base, run_p(SchedulerSpec::parse("batched:block=3," + case_name(c)), 0),
        case_name(c));
  }
}

TEST(ShardedEquivalence, BatchedRotationMatchesSynchronousAtOneBlock) {
  // block=1 wakes everyone each sub-step: exactly the synchronous engine.
  const gossip::SpreadResult sync = run_spread(SchedulerSpec::synchronous());
  const gossip::SpreadResult one =
      run_spread(SchedulerSpec::parse("batched:block=1"));
  EXPECT_EQ(sync.rounds, one.rounds);
  expect_metrics_identical(sync.metrics, one.metrics, "batched:block=1");
}

// --------------------------------------------------------------------------
// Shard-safety: agents sharing a coalition blackboard must be rejected at
// executor setup instead of racing (regression for the fail-fast path).
// --------------------------------------------------------------------------

TEST(ShardedEquivalence, CoalitionAgentsRejectedByShardedExecutor) {
  const std::uint32_t n = 8;
  const auto params = core::ProtocolParams::make(n, 3.0);
  const auto coalition = rational::make_prefix_coalition(2);
  const auto build = [&](SchedulerPtr scheduler) {
    auto engine = std::make_unique<Engine>(
        EngineConfig{n, 99, nullptr, std::move(scheduler)});
    for (std::uint32_t i = 0; i < n; ++i) {
      if (coalition->contains(i)) {
        engine->set_agent(i, std::make_unique<rational::SelfishVotingAgent>(
                                 params, static_cast<core::Color>(i),
                                 coalition));
      } else {
        engine->set_agent(i, std::make_unique<core::ProtocolAgent>(
                                 params, static_cast<core::Color>(i)));
      }
    }
    return engine;
  };
  // The sharded round refuses at setup...
  EXPECT_THROW(
      build(SchedulerSpec::parse("synchronous:shards=2").make())->step(),
      std::invalid_argument);
  // ...including through batched delivery's sharded sub-round...
  EXPECT_THROW(
      build(SchedulerSpec::parse("batched:block=2,shards=2").make())->step(),
      std::invalid_argument);
  // ...while the serial round runs the same agents fine.
  EXPECT_NO_THROW(build(SchedulerSpec::synchronous().make())->step());
  EXPECT_NO_THROW(
      build(SchedulerSpec::parse("batched:block=2").make())->step());
}

TEST(ShardedEquivalence, RunProtocolRejectsCoalitionWithShards) {
  core::RunConfig cfg;
  cfg.n = 16;
  cfg.gamma = 3.0;
  cfg.seed = 5;
  cfg.coalition = {0, 1};
  cfg.factory = rational::make_deviating_factory(
      rational::DeviationStrategy::kSelfishVoting,
      rational::make_prefix_coalition(2));
  cfg.scheduler = SchedulerSpec::parse("synchronous:shards=2");
  EXPECT_THROW(core::run_protocol(cfg), std::invalid_argument);
  cfg.scheduler = SchedulerSpec::synchronous();
  EXPECT_NO_THROW(core::run_protocol(cfg));
}

// --------------------------------------------------------------------------
// Pinned pre-refactor digests: the constants below were captured from the
// engine BEFORE the SoA/arena/blocked-delivery refactor (PR 7 tree).  They
// freeze the full observable trace — outcome, every Metrics field, and the
// per-agent end state — at n ∈ {64, 4096}, serial AND sharded.  If any of
// these change, the engine is no longer bit-identical to the pre-refactor
// one: fix the engine, never the constants.
// --------------------------------------------------------------------------

gossip::SpreadConfig pinned_spread_config(std::uint32_t n,
                                          const SchedulerSpec& spec) {
  gossip::SpreadConfig cfg;
  cfg.n = n;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 20260726;
  cfg.num_faulty = n / 4;
  cfg.placement = FaultPlacement::kRandom;
  cfg.scheduler = spec;
  return cfg;
}

core::RunConfig pinned_protocol_config(std::uint32_t n,
                                       const SchedulerSpec& spec) {
  core::RunConfig cfg;
  cfg.n = n;
  cfg.gamma = 3.0;
  cfg.seed = 987654321;
  cfg.num_faulty = n / 8;
  cfg.placement = FaultPlacement::kRandom;
  cfg.scheduler = spec;
  return cfg;
}

constexpr std::uint64_t kPinnedRumorDigest64 = 2641881396828198800ull;
constexpr std::uint64_t kPinnedRumorDigest4096 = 16758659222488018666ull;
constexpr std::uint64_t kPinnedProtocolDigest64 = 4567136017251614761ull;
constexpr std::uint64_t kPinnedProtocolDigest4096 = 6452961838860156847ull;

TEST(ShardedEquivalence, PinnedRumorDigests) {
  for (std::uint32_t n : {64u, 4096u}) {
    const std::uint64_t expected =
        n == 64 ? kPinnedRumorDigest64 : kPinnedRumorDigest4096;
    EXPECT_EQ(expected, rfc::testing::rumor_end_state_digest(
                            pinned_spread_config(n, SchedulerSpec::synchronous())))
        << "serial n=" << n;
    for (const ShardCase& c : shard_cases()) {
      EXPECT_EQ(expected, rfc::testing::rumor_end_state_digest(
                              pinned_spread_config(n, sharded_spec(c))))
          << "n=" << n << " " << case_name(c);
    }
  }
}

TEST(ShardedEquivalence, PinnedProtocolDigests) {
  EXPECT_EQ(kPinnedProtocolDigest64,
            rfc::testing::protocol_end_state_digest(
                pinned_protocol_config(64, SchedulerSpec::synchronous())))
      << "serial n=64";
  for (const ShardCase& c : shard_cases()) {
    EXPECT_EQ(kPinnedProtocolDigest64,
              rfc::testing::protocol_end_state_digest(
                  pinned_protocol_config(64, sharded_spec(c))))
        << "n=64 " << case_name(c);
  }
  // n=4096 runs in ~0.6 s apiece: serial plus one non-dividing sharded case.
  EXPECT_EQ(kPinnedProtocolDigest4096,
            rfc::testing::protocol_end_state_digest(
                pinned_protocol_config(4096, SchedulerSpec::synchronous())))
      << "serial n=4096";
  EXPECT_EQ(kPinnedProtocolDigest4096,
            rfc::testing::protocol_end_state_digest(
                pinned_protocol_config(4096, sharded_spec({7, 4}))))
      << "n=4096 shards=7,threads=4";
}

TEST(ShardedEquivalence, PinnedDigestsUnderForcedBlockedDelivery) {
  // The cache-blocked delivery path normally activates only at n >= 2^16;
  // force it on at tiny n with several block sizes (1 label per block is
  // the degenerate extreme, 8 cuts n=64 into 8 blocks, 4096 makes a single
  // block).  Every combination must reproduce the serial constants exactly
  // — the blocked round is bit-identical by construction, and this is the
  // test that keeps it honest.
  for (const std::uint32_t block_labels : {1u, 8u, 4096u}) {
    const auto force = [block_labels](Engine& engine) {
      engine.set_blocked_delivery(1, block_labels);
    };
    EXPECT_EQ(kPinnedRumorDigest64,
              rfc::testing::rumor_end_state_digest(
                  pinned_spread_config(64, SchedulerSpec::synchronous()),
                  force))
        << "rumor blocked n=64 block_labels=" << block_labels;
    EXPECT_EQ(kPinnedProtocolDigest64,
              rfc::testing::protocol_end_state_digest(
                  pinned_protocol_config(64, SchedulerSpec::synchronous()),
                  force))
        << "protocol blocked n=64 block_labels=" << block_labels;
  }
  // One larger run: n=4096 over 512-label blocks.
  const auto force = [](Engine& engine) {
    engine.set_blocked_delivery(1, 512);
  };
  EXPECT_EQ(kPinnedRumorDigest4096,
            rfc::testing::rumor_end_state_digest(
                pinned_spread_config(4096, SchedulerSpec::synchronous()),
                force))
      << "rumor blocked n=4096 block_labels=512";
  EXPECT_EQ(kPinnedProtocolDigest4096,
            rfc::testing::protocol_end_state_digest(
                pinned_protocol_config(4096, SchedulerSpec::synchronous()),
                force))
      << "protocol blocked n=4096 block_labels=512";
}

// --------------------------------------------------------------------------
// Spec plumbing: round-trip and validation of the sharding parameters.
// --------------------------------------------------------------------------

TEST(ShardedEquivalence, SpecRoundTripAndValidation) {
  const SchedulerSpec spec =
      SchedulerSpec::synchronous(ShardingConfig{8, 4});
  EXPECT_EQ(spec.to_string(), "synchronous:shards=8,threads=4");
  EXPECT_EQ(SchedulerSpec::parse(spec.to_string()), spec);
  // shards=1 collapses to the canonical plain spec.
  EXPECT_EQ(SchedulerSpec::synchronous(ShardingConfig{1, 4}).to_string(),
            "synchronous");
  EXPECT_THROW(SchedulerSpec::parse("synchronous:shards=0").make(),
               std::invalid_argument);
  // Activation-based policies have no sharded round.
  EXPECT_THROW(SchedulerSpec::parse("sequential:shards=4").make(),
               std::invalid_argument);
}

}  // namespace
}  // namespace rfc::sim
