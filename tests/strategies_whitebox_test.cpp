// White-box behavioural tests of individual deviation agents: what exactly
// each strategy emits, checked against its specification.
#include <gtest/gtest.h>

#include <memory>

#include "core/payloads.hpp"
#include "rational/strategies.hpp"
#include "support/rng.hpp"

namespace rfc::rational {
namespace {

struct Harness {
  Harness()
      : params(core::ProtocolParams::make(64, 2.0)),
        coalition(make_prefix_coalition(4)),
        rng(11) {}

  sim::Context ctx(sim::AgentId self, std::uint64_t round = 0) {
    sim::Context c;
    c.self = self;
    c.n = params.n;
    c.round = round;
    c.rng = &rng;
    return c;
  }

  core::ProtocolParams params;
  CoalitionPtr coalition;
  rfc::support::Xoshiro256 rng;
};

TEST(SelfishVotingWhitebox, DeclaresOnlyZeroVotesAtBeneficiary) {
  Harness h;
  SelfishVotingAgent agent(h.params, 1, h.coalition);
  agent.on_start(h.ctx(2));
  ASSERT_EQ(agent.intention().size(), h.params.q);
  for (const core::VoteEntry& e : agent.intention()) {
    EXPECT_EQ(e.value, 0u);
    EXPECT_EQ(e.target, h.coalition->beneficiary());
  }
  // And the declaration is published to the blackboard.
  EXPECT_TRUE(h.coalition->declared_intentions().contains(2));
}

TEST(PlayDeadWhitebox, SilentInCommitmentButVotes) {
  Harness h;
  PlayDeadAgent agent(h.params, 1, h.coalition);
  agent.on_start(h.ctx(3));
  // Commitment pull gets silence.
  EXPECT_TRUE(agent.serve_pull(h.ctx(3, 0), 9).empty());
  // Yet the voting action is a real push at the beneficiary.
  const sim::Action a = agent.on_round(h.ctx(3, h.params.q));
  EXPECT_EQ(a.kind, sim::ActionKind::kPush);
  EXPECT_EQ(a.target, h.coalition->beneficiary());
}

TEST(EquivocateWhitebox, FreshLiePerAuditor) {
  Harness h;
  EquivocatingAgent agent(h.params, 1, h.coalition);
  agent.on_start(h.ctx(2));
  const auto r1 = agent.serve_pull(h.ctx(2, 0), 10);
  const auto r2 = agent.serve_pull(h.ctx(2, 0), 11);
  ASSERT_NE(core::intention_in(r1), nullptr);
  ASSERT_NE(core::intention_in(r2), nullptr);
  const auto& h1 = *core::intention_in(r1);
  const auto& h2 = *core::intention_in(r2);
  EXPECT_NE(h1, h2);  // Two lies; collision probability ~0.
  EXPECT_NE(h1, agent.intention());  // And neither matches the real plan.
}

TEST(ForgedEmptyCertWhitebox, BeneficiaryForgesOthersHonest) {
  Harness h;
  ForgedEmptyCertAgent beneficiary(h.params, 1, h.coalition);
  ForgedEmptyCertAgent member(h.params, 1, h.coalition);
  beneficiary.on_start(h.ctx(0));
  member.on_start(h.ctx(2));
  // Drive both to the Find-Min entry round via on_round.
  const auto find_min_round = 2ull * h.params.q;
  const sim::Action ab = beneficiary.on_round(h.ctx(0, find_min_round));
  const sim::Action am = member.on_round(h.ctx(2, find_min_round));
  EXPECT_EQ(ab.kind, sim::ActionKind::kPull);
  EXPECT_EQ(am.kind, sim::ActionKind::kPull);
  EXPECT_EQ(beneficiary.own_certificate().k, 0u);
  EXPECT_TRUE(beneficiary.own_certificate().votes.empty());
  // The non-beneficiary member built an honest (empty here, but computed)
  // certificate via the base path.
  EXPECT_EQ(member.own_certificate().k,
            member.own_certificate().vote_sum(h.params));
}

TEST(ForgedCoalitionCertWhitebox, CertContainsExactlyDeclaredVotes) {
  Harness h;
  // Two members declare; then the beneficiary forges.
  ForgedCoalitionCertAgent m1(h.params, 1, h.coalition);
  ForgedCoalitionCertAgent m2(h.params, 1, h.coalition);
  ForgedCoalitionCertAgent beneficiary(h.params, 1, h.coalition);
  m1.on_start(h.ctx(1));
  m2.on_start(h.ctx(2));
  beneficiary.on_start(h.ctx(0));
  beneficiary.on_round(h.ctx(0, 2ull * h.params.q));
  const core::Certificate& ce = beneficiary.own_certificate();
  EXPECT_EQ(ce.k, 0u);
  // Every declared (member, j) pair targeting the beneficiary appears.
  // All three declared q zero-votes each at label 0.
  EXPECT_EQ(ce.votes.size(), 3ull * h.params.q);
  for (const core::ReceivedVote& v : ce.votes) {
    EXPECT_EQ(v.value, 0u);
    EXPECT_TRUE(v.voter <= 2);
  }
}

TEST(VoteDropWhitebox, DropsVotesToMinimizeKey) {
  Harness h;
  VoteDropAgent agent(h.params, 1, h.coalition);
  agent.on_start(h.ctx(0));
  // Inject received votes by pushing during the Voting phase.
  const auto vote_round = static_cast<std::uint64_t>(h.params.q);
  const auto push = [&](sim::AgentId from, std::uint64_t value) {
    agent.on_push(h.ctx(0, vote_round), from,
                  core::make_vote_payload(value, h.params));
  };
  push(10, 100);
  push(11, 7);
  push(12, 50);
  agent.on_round(h.ctx(0, 2ull * h.params.q));  // Builds the certificate.
  // Best drop of up to two votes: remove 100 and 50, keep 7.
  EXPECT_EQ(agent.own_certificate().k, 7u);
  EXPECT_EQ(agent.own_certificate().votes.size(), 1u);
}

TEST(StubbornWhitebox, IgnoresSmallerHonestCertificates) {
  Harness h;
  StubbornCertAgent agent(h.params, 1, h.coalition);
  agent.on_start(h.ctx(0));
  // Give the agent a nonzero key so smaller certificates exist.
  agent.on_push(h.ctx(0, h.params.q), 10,
                core::make_vote_payload(500, h.params));
  agent.on_round(h.ctx(0, 2ull * h.params.q));  // Build own certificate.
  const std::uint64_t own_k = agent.min_certificate().k;
  ASSERT_EQ(own_k, 500u);

  core::Certificate honest_smaller;
  honest_smaller.k = 0;
  honest_smaller.owner = 50;  // Outside the coalition.
  agent.on_pull_reply(
      h.ctx(0, 2ull * h.params.q), 50,
      core::make_certificate_payload(honest_smaller, h.params));
  EXPECT_EQ(agent.min_certificate().k, own_k);  // Not adopted.

  core::Certificate coalition_smaller = honest_smaller;
  coalition_smaller.owner = 2;  // Coalition member.
  agent.on_pull_reply(
      h.ctx(0, 2ull * h.params.q), 2,
      core::make_certificate_payload(coalition_smaller, h.params));
  EXPECT_EQ(agent.min_certificate().owner, 2u);  // Adopted.
}

TEST(AdaptiveVoteWhitebox, FixerCancelsPublishedSum) {
  Harness h;
  // A coalition whose beneficiary (3) differs from the fixer (1).
  const auto coalition =
      std::make_shared<Coalition>(std::vector<sim::AgentId>{1, 2, 3}, 3);
  AdaptiveVoteAgent member(h.params, 1, coalition);
  member.on_start(h.ctx(1));
  coalition->publish_beneficiary_vote_sum(1000);
  // Last voting round: the fixer (label 1) votes m - 1000 at label 3.
  const sim::Action a =
      member.on_round(h.ctx(1, 2ull * h.params.q - 1));
  ASSERT_EQ(a.kind, sim::ActionKind::kPush);
  EXPECT_EQ(a.target, 3u);
  ASSERT_TRUE(core::is_vote(a.payload));
  EXPECT_EQ(core::vote_value_in(a.payload), (h.params.m - 1000) % h.params.m);
}

TEST(SkipVerificationWhitebox, AcceptsAnyCertificateColor) {
  Harness h;
  SkipVerificationAgent agent(h.params, 1, h.coalition);
  agent.on_start(h.ctx(2));
  agent.on_push(h.ctx(2, h.params.q), 10,
                core::make_vote_payload(999, h.params));
  agent.on_round(h.ctx(2, 2ull * h.params.q));  // Build cert (k = 999).
  core::Certificate bogus;
  bogus.k = 0;
  bogus.color = 7;
  bogus.owner = 60;
  agent.on_pull_reply(
      h.ctx(2, 2ull * h.params.q), 60,
      core::make_certificate_payload(bogus, h.params));
  // Finalize without verification: adopts color 7 despite no audit trail.
  agent.on_round(h.ctx(2, 4ull * h.params.q));
  EXPECT_TRUE(agent.decided());
  EXPECT_FALSE(agent.failed());
  EXPECT_EQ(agent.decision(), 7);
}

}  // namespace
}  // namespace rfc::rational
