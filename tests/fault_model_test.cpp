#include "sim/fault_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rfc::sim {
namespace {

std::uint32_t count(const std::vector<bool>& plan) {
  return static_cast<std::uint32_t>(
      std::count(plan.begin(), plan.end(), true));
}

class FaultPlanTest : public ::testing::TestWithParam<FaultPlacement> {};

TEST_P(FaultPlanTest, ExactCountForEveryPlacement) {
  rfc::support::Xoshiro256 rng(1);
  for (const std::uint32_t n : {2u, 10u, 64u, 257u}) {
    for (const std::uint32_t f : {0u, 1u, n / 3, n - 1}) {
      const auto plan = make_fault_plan(GetParam(), n, f, rng);
      ASSERT_EQ(plan.size(), n);
      if (GetParam() == FaultPlacement::kNone) {
        EXPECT_EQ(count(plan), 0u);
      } else {
        EXPECT_EQ(count(plan), f);
      }
    }
  }
}

TEST_P(FaultPlanTest, ClampsToLeaveOneActive) {
  rfc::support::Xoshiro256 rng(2);
  const auto plan = make_fault_plan(GetParam(), 8, 100, rng);
  if (GetParam() == FaultPlacement::kNone) {
    EXPECT_EQ(count(plan), 0u);
  } else {
    EXPECT_EQ(count(plan), 7u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlacements, FaultPlanTest,
    ::testing::ValuesIn(all_fault_placements()),
    [](const ::testing::TestParamInfo<FaultPlacement>& info) {
      std::string name = to_string(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(FaultPlan, PrefixKillsSmallestLabels) {
  rfc::support::Xoshiro256 rng(3);
  const auto plan = make_fault_plan(FaultPlacement::kPrefix, 10, 3, rng);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(plan[i], i < 3);
}

TEST(FaultPlan, SuffixKillsLargestLabels) {
  rfc::support::Xoshiro256 rng(3);
  const auto plan = make_fault_plan(FaultPlacement::kSuffix, 10, 3, rng);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(plan[i], i >= 7);
}

TEST(FaultPlan, StrideIsSpread) {
  rfc::support::Xoshiro256 rng(3);
  const auto plan = make_fault_plan(FaultPlacement::kStride, 12, 4, rng);
  EXPECT_TRUE(plan[0]);
  EXPECT_TRUE(plan[3]);
  EXPECT_TRUE(plan[6]);
  EXPECT_TRUE(plan[9]);
}

TEST(FaultPlan, ClusteredIsContiguousModN) {
  rfc::support::Xoshiro256 rng(5);
  const auto plan = make_fault_plan(FaultPlacement::kClustered, 16, 5, rng);
  // Find the start and verify the next 5 (mod 16) are faulty.
  std::uint32_t start = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    const bool prev = plan[(i + 15) % 16];
    if (plan[i] && !prev) start = i;
  }
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_TRUE(plan[(start + i) % 16]);
}

TEST(FaultPlan, RandomIsDeterministicGivenRngState) {
  rfc::support::Xoshiro256 rng_a(7), rng_b(7);
  EXPECT_EQ(make_fault_plan(FaultPlacement::kRandom, 100, 30, rng_a),
            make_fault_plan(FaultPlacement::kRandom, 100, 30, rng_b));
}

TEST(FaultPlan, RandomVariesAcrossSeeds) {
  rfc::support::Xoshiro256 rng_a(7), rng_b(8);
  EXPECT_NE(make_fault_plan(FaultPlacement::kRandom, 100, 30, rng_a),
            make_fault_plan(FaultPlacement::kRandom, 100, 30, rng_b));
}

TEST(FaultPlan, AllPlacementsHaveNames) {
  for (const auto p : all_fault_placements()) {
    EXPECT_NE(to_string(p), "unknown");
  }
}

}  // namespace
}  // namespace rfc::sim
