#include "support/math_util.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfc::support {
namespace {

TEST(FloorLog2, KnownValues) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(~0ull), 63u);
}

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1ull << 40), 40u);
  EXPECT_EQ(ceil_log2((1ull << 40) + 1), 41u);
}

TEST(BitWidthForDomain, NeverZero) {
  EXPECT_EQ(bit_width_for_domain(1), 1u);
  EXPECT_EQ(bit_width_for_domain(2), 1u);
  EXPECT_EQ(bit_width_for_domain(3), 2u);
  EXPECT_EQ(bit_width_for_domain(256), 8u);
  EXPECT_EQ(bit_width_for_domain(257), 9u);
}

TEST(Cube, MatchesMultiplication) {
  EXPECT_EQ(cube(1), 1u);
  EXPECT_EQ(cube(10), 1000u);
  EXPECT_EQ(cube(1u << 21), 1ull << 63);  // The domain boundary for m = n^3.
}

TEST(RoundCount, MatchesCeilGammaLnN) {
  EXPECT_EQ(round_count(4.0, 1024),
            static_cast<std::uint32_t>(std::ceil(4.0 * std::log(1024.0))));
  EXPECT_EQ(round_count(1.0, 2), 1u);
}

TEST(RoundCount, AtLeastOne) {
  EXPECT_GE(round_count(0.01, 2), 1u);
  EXPECT_GE(round_count(0.5, 1), 1u);
}

TEST(RoundCount, MonotoneInGammaAndN) {
  EXPECT_LE(round_count(2.0, 100), round_count(4.0, 100));
  EXPECT_LE(round_count(4.0, 100), round_count(4.0, 10'000));
}

}  // namespace
}  // namespace rfc::support
