// Exhaustive tests of the Verification-phase audit — the security core of
// the protocol.
#include "core/verification.hpp"

#include <gtest/gtest.h>

#include "core/payloads.hpp"
#include "core/runner.hpp"
#include "sim/network.hpp"
#include "sim/network_spec.hpp"

namespace rfc::core {
namespace {

class VerificationTest : public ::testing::Test {
 protected:
  VerificationTest() : params_(ProtocolParams::make(64, 2.0)) {}

  /// A consistent world: voter v declared intention H_v, the winner's W
  /// contains exactly the declared votes aimed at the winner.
  void build_consistent_world(sim::AgentId winner, int num_voters) {
    cert_ = Certificate{};
    cert_.owner = winner;
    cert_.color = 3;
    collected_.clear();
    std::uint64_t value = 10;
    for (int v = 1; v <= num_voters; ++v) {
      CommitmentRecord record;
      record.intention.assign(params_.q, {0, sim::kNoAgent});
      for (std::uint32_t j = 0; j < params_.q; ++j) {
        // Even rounds vote for the winner, odd rounds elsewhere.
        if (j % 2 == 0) {
          record.intention[j] = {value, winner};
          cert_.votes.push_back(
              {static_cast<sim::AgentId>(v), j, value});
          value += 7;
        } else {
          record.intention[j] = {value * 3, static_cast<sim::AgentId>(63)};
        }
      }
      collected_.emplace(static_cast<sim::AgentId>(v), std::move(record));
    }
    cert_.k = cert_.vote_sum(params_);
  }

  ProtocolParams params_;
  Certificate cert_;
  CollectedIntentions collected_;
};

TEST_F(VerificationTest, AcceptsConsistentCertificate) {
  build_consistent_world(0, 3);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_TRUE(r.accepted()) << to_string(r.failure);
}

TEST_F(VerificationTest, AcceptsEmptyAuditData) {
  // A verifier that audited nobody can only check well-formedness and k.
  build_consistent_world(0, 3);
  const auto r = verify_certificate(params_, cert_, {});
  EXPECT_TRUE(r.accepted());
}

TEST_F(VerificationTest, AcceptsVotesFromUnauditedPeers) {
  build_consistent_world(0, 2);
  cert_.votes.push_back({40, 0, 999});  // Voter 40 not in collected_.
  cert_.k = cert_.vote_sum(params_);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_TRUE(r.accepted());
}

TEST_F(VerificationTest, RejectsBadKeySum) {
  build_consistent_world(0, 2);
  cert_.k = (cert_.k + 1) % params_.m;
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kBadKeySum);
}

TEST_F(VerificationTest, RejectsOversizedVoteValue) {
  build_consistent_world(0, 1);
  cert_.votes.push_back({40, 0, params_.m});  // value == m is out of domain.
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kMalformedVote);
}

TEST_F(VerificationTest, RejectsOutOfRangeRound) {
  build_consistent_world(0, 1);
  cert_.votes.push_back({40, params_.q, 1});
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kMalformedVote);
}

TEST_F(VerificationTest, RejectsOutOfRangeVoter) {
  build_consistent_world(0, 1);
  cert_.votes.push_back({params_.n, 0, 1});
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kMalformedVote);
}

TEST_F(VerificationTest, RejectsDuplicateVote) {
  build_consistent_world(0, 1);
  cert_.votes.push_back(cert_.votes.front());
  cert_.k = cert_.vote_sum(params_);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kDuplicateVote);
}

TEST_F(VerificationTest, RejectsVoteFromPeerMarkedFaulty) {
  build_consistent_world(0, 2);
  // Re-mark voter 1 as faulty: its votes all count as zero (footnote 4),
  // so any vote from it in W is a lie.
  collected_[1].marked_faulty = true;
  collected_[1].intention.clear();
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kVoteFromFaulty);
}

TEST_F(VerificationTest, RejectsValueDifferentFromDeclaration) {
  build_consistent_world(0, 2);
  cert_.votes.front().value += 1;
  cert_.k = cert_.vote_sum(params_);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kIntentionMismatch);
}

TEST_F(VerificationTest, RejectsVoteDeclaredForAnotherTarget) {
  build_consistent_world(0, 2);
  // Claim voter 1's round-1 vote (declared for agent 63) was for us.
  const auto& declared = collected_[1].intention[1];
  cert_.votes.push_back({1, 1, declared.value});
  cert_.k = cert_.vote_sum(params_);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kIntentionMismatch);
}

TEST_F(VerificationTest, StrictModeRejectsDroppedVote) {
  build_consistent_world(0, 2);
  cert_.votes.pop_back();
  cert_.k = cert_.vote_sum(params_);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kMissingVote);
}

TEST_F(VerificationTest, LaxModeMissesDroppedVote) {
  // The ablation: with completeness off, vote dropping passes — this is the
  // loophole E7's ablation block demonstrates end-to-end.
  params_ = ProtocolParams::make(64, 2.0, /*strict_verification=*/false);
  build_consistent_world(0, 2);
  cert_.votes.pop_back();
  cert_.k = cert_.vote_sum(params_);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_TRUE(r.accepted());
}

TEST_F(VerificationTest, LaxModeStillChecksPresentVotes) {
  params_ = ProtocolParams::make(64, 2.0, /*strict_verification=*/false);
  build_consistent_world(0, 2);
  cert_.votes.front().value += 1;
  cert_.k = cert_.vote_sum(params_);
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kIntentionMismatch);
}

TEST_F(VerificationTest, EmptyCertificateWithNoAuditsAccepted) {
  Certificate empty;
  empty.owner = 5;
  empty.color = 0;
  empty.k = 0;
  const auto r = verify_certificate(params_, empty, {});
  EXPECT_TRUE(r.accepted());
}

TEST_F(VerificationTest, EmptyCertificateCaughtByCompleteness) {
  // The forged-empty-cert attack: k=0, W={}, but an audited peer declared a
  // vote for the owner.
  build_consistent_world(0, 2);
  cert_.votes.clear();
  cert_.k = 0;
  const auto r = verify_certificate(params_, cert_, collected_);
  EXPECT_EQ(r.failure, VerificationFailure::kMissingVote);
}

TEST_F(VerificationTest, TamperedCertificatePayloadRejectedForAnySalt) {
  // The network adversary's tamper hook (core/payloads.cpp) flips one bit
  // of k in a *copy* of the boxed certificate; whatever bit the salt picks,
  // k no longer matches the vote sum and verification must report
  // kBadKeySum — a tampered certificate can never be adopted.
  build_consistent_world(0, 3);
  const sim::Payload clean = make_certificate_payload(cert_, params_);
  for (const std::uint64_t salt :
       {0ull, 1ull, 17ull, 63ull, 64ull, 0x9e3779b97f4a7c15ull}) {
    const sim::Payload tampered = sim::corrupt_payload(clean, salt);
    const Certificate* cert = certificate_in(tampered);
    ASSERT_NE(cert, nullptr) << salt;
    EXPECT_NE(cert->k, cert_.k) << salt;
    const auto r = verify_certificate(params_, *cert, collected_);
    EXPECT_EQ(r.failure, VerificationFailure::kBadKeySum) << salt;
  }
  // Corruption copies; the original payload still verifies clean.
  const auto r = verify_certificate(params_, *certificate_in(clean),
                                    collected_);
  EXPECT_TRUE(r.accepted()) << to_string(r.failure);
}

TEST(VerificationNetworkTest, CorruptingAdversaryCaughtAndMeteredEndToEnd) {
  // The same property through the *real delivery path*: a network:corrupt=1
  // adversary flips bits in every payload the engine delivers (certificates
  // in Find-Min replies included), so every certificate any verifier
  // receives is tampered.  The run must terminate on its fixed schedule
  // with every spent corruption metered, and — since no tampered
  // certificate may be adopted — the agents are left disagreeing on their
  // own certificates instead of converging on a forged minimum.
  RunConfig cfg;
  cfg.n = 48;
  cfg.gamma = 3.0;
  cfg.seed = 77;
  cfg.network = sim::NetworkSpec::parse("network:corrupt=1,seed=3");
  const auto tampered = run_protocol(cfg);
  EXPECT_GT(tampered.metrics.net_corruptions, 0u);
  EXPECT_TRUE(tampered.failed());

  // Control: the identical run over the reliable network succeeds and
  // meters nothing — the corruption counter is the only degree of freedom.
  cfg.network = sim::NetworkSpec::none();
  const auto clean = run_protocol(cfg);
  EXPECT_EQ(clean.metrics.net_corruptions, 0u);
  EXPECT_FALSE(clean.failed());
}

TEST_F(VerificationTest, FailureNamesAreDistinct) {
  EXPECT_NE(to_string(VerificationFailure::kBadKeySum),
            to_string(VerificationFailure::kMissingVote));
  EXPECT_EQ(to_string(VerificationFailure::kNone), "none");
}

}  // namespace
}  // namespace rfc::core
