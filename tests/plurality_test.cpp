#include "baseline/plurality.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace rfc::baseline {
namespace {

TEST(Plurality, ConvergesOnTwoColors) {
  PluralityConfig cfg;
  cfg.n = 128;
  cfg.colors = core::split_colors(cfg.n, {0.5, 0.5});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const auto r = run_plurality_consensus(cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.winner == 0 || r.winner == 1);
    EXPECT_LT(r.rounds, 200u);
  }
}

TEST(Plurality, StrongMajorityAlmostAlwaysWins) {
  PluralityConfig cfg;
  cfg.n = 200;
  cfg.colors = core::split_colors(cfg.n, {0.75, 0.25});
  int majority_wins = 0;
  constexpr int kTrials = 40;
  for (int i = 0; i < kTrials; ++i) {
    cfg.seed = 100 + i;
    const auto r = run_plurality_consensus(cfg);
    ASSERT_TRUE(r.converged);
    if (r.winner == 0) ++majority_wins;
  }
  // The point of E8b: this is NOT proportional (75%) — it is ~100%.
  EXPECT_GE(majority_wins, kTrials - 1);
}

TEST(Plurality, MonochromaticStartIsImmediate) {
  PluralityConfig cfg;
  cfg.n = 32;
  cfg.colors.assign(32, 7);
  cfg.seed = 2;
  const auto r = run_plurality_consensus(cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.winner, 7);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Plurality, SurvivesFaults) {
  PluralityConfig cfg;
  cfg.n = 128;
  cfg.colors = core::split_colors(cfg.n, {0.7, 0.3});
  cfg.num_faulty = 48;
  cfg.placement = sim::FaultPlacement::kRandom;
  cfg.seed = 5;
  const auto r = run_plurality_consensus(cfg);
  EXPECT_TRUE(r.converged);
}

TEST(Plurality, MetricsCountThreeSamplesPerAgentRound) {
  PluralityConfig cfg;
  cfg.n = 64;
  cfg.colors = core::split_colors(cfg.n, {0.5, 0.5});
  cfg.seed = 3;
  const auto r = run_plurality_consensus(cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.metrics.pull_requests, 3ull * 64 * r.rounds);
}

TEST(Plurality, DeterministicPerSeed) {
  PluralityConfig cfg;
  cfg.n = 96;
  cfg.colors = core::split_colors(cfg.n, {0.5, 0.5});
  cfg.seed = 11;
  const auto a = run_plurality_consensus(cfg);
  const auto b = run_plurality_consensus(cfg);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Plurality, RespectsMaxRounds) {
  PluralityConfig cfg;
  cfg.n = 128;
  cfg.colors = core::split_colors(cfg.n, {0.5, 0.5});
  cfg.max_rounds = 1;
  cfg.seed = 4;
  const auto r = run_plurality_consensus(cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(Plurality, RejectsEmptyNetwork) {
  PluralityConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(run_plurality_consensus(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace rfc::baseline
