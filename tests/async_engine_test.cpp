#include "sim/async_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gossip/min_aggregation.hpp"
#include "gossip/rumor.hpp"

namespace rfc::sim {
namespace {

TEST(AsyncEngine, RejectsZeroAgents) {
  EXPECT_THROW(AsyncEngine({0, 1, nullptr}), std::invalid_argument);
}

TEST(AsyncEngine, MissingAgentThrows) {
  AsyncEngine engine({2, 1, nullptr});
  engine.set_agent(0, std::make_unique<gossip::RumorAgent>(
                          gossip::Mechanism::kPull, true, 8));
  EXPECT_THROW(engine.step(), std::logic_error);
}

TEST(AsyncEngine, FaultPlanLockedAfterStart) {
  AsyncEngine engine({2, 1, nullptr});
  for (AgentId i = 0; i < 2; ++i) {
    engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                            gossip::Mechanism::kPull, i == 0, 8));
  }
  engine.step();
  EXPECT_THROW(engine.set_faulty(1), std::logic_error);
}

TEST(AsyncEngine, RumorEventuallyReachesEveryone) {
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 3;
  cfg.max_rounds = 100'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.rounds, 128u);  // Needs far more steps than agents.
}

TEST(AsyncEngine, StepsScaleAsNLogN) {
  // Coupon-collector behaviour: steps/(n ln n) bounded for push-pull.
  for (const std::uint32_t n : {128u, 512u}) {
    gossip::SpreadConfig cfg;
    cfg.n = n;
    cfg.mechanism = gossip::Mechanism::kPushPull;
    cfg.max_rounds = 1'000'000;
    double mean = 0;
    constexpr int kReps = 5;
    for (int i = 0; i < kReps; ++i) {
      cfg.seed = 50 + i;
      const auto r = gossip::run_rumor_spreading_async(cfg);
      ASSERT_TRUE(r.complete);
      mean += static_cast<double>(r.rounds) / kReps;
    }
    const double normalized = mean / (n * std::log(n));
    EXPECT_GT(normalized, 0.3) << "n=" << n;
    EXPECT_LT(normalized, 6.0) << "n=" << n;
  }
}

TEST(AsyncEngine, SeedReproducible) {
  gossip::SpreadConfig cfg;
  cfg.n = 96;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 12;
  cfg.max_rounds = 100'000;
  const auto a = gossip::run_rumor_spreading_async(cfg);
  const auto b = gossip::run_rumor_spreading_async(cfg);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(AsyncEngine, FaultyAgentsNeverWake) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.num_faulty = 32;
  cfg.placement = FaultPlacement::kPrefix;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 7;
  cfg.max_rounds = 200'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_TRUE(r.complete);  // Among active agents.
}

TEST(AsyncEngine, RespectsTopology) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 5;
  cfg.topology = make_ring(64, 1);
  cfg.max_rounds = 500'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_TRUE(r.complete);
  // Ring diameter forces ≫ n log n steps.
  EXPECT_GT(r.rounds, 64u * 6);
}

TEST(AsyncEngine, MetricsAccountMessages) {
  gossip::SpreadConfig cfg;
  cfg.n = 64;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.seed = 6;
  cfg.rumor_bits = 99;
  cfg.max_rounds = 100'000;
  const auto r = gossip::run_rumor_spreading_async(cfg);
  EXPECT_GT(r.metrics.pull_requests, 0u);
  EXPECT_GE(r.metrics.max_message_bits, 99u);
  EXPECT_LE(r.metrics.active_links, r.rounds);
}

}  // namespace
}  // namespace rfc::sim
