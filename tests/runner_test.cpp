#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace rfc::core {
namespace {

TEST(SplitColors, FractionsRespected) {
  const auto colors = split_colors(10, {0.5, 0.3, 0.2});
  EXPECT_EQ(std::count(colors.begin(), colors.end(), 0), 5);
  EXPECT_EQ(std::count(colors.begin(), colors.end(), 1), 3);
  EXPECT_EQ(std::count(colors.begin(), colors.end(), 2), 2);
}

TEST(SplitColors, UnnormalizedFractions) {
  const auto colors = split_colors(8, {1.0, 1.0});
  EXPECT_EQ(std::count(colors.begin(), colors.end(), 0), 4);
  EXPECT_EQ(std::count(colors.begin(), colors.end(), 1), 4);
}

TEST(SplitColors, EmptyFractionsAllZero) {
  const auto colors = split_colors(5, {});
  EXPECT_EQ(std::count(colors.begin(), colors.end(), 0), 5);
}

TEST(LeaderElectionColors, OnePerLabel) {
  const auto colors = leader_election_colors(6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(colors[i], static_cast<Color>(i));
  }
}

TEST(RunProtocol, ReachesConsensusFaultFree) {
  RunConfig cfg;
  cfg.n = 128;
  cfg.gamma = 4.0;
  cfg.seed = 5;
  cfg.colors = split_colors(cfg.n, {0.5, 0.5});
  const RunResult r = run_protocol(cfg);
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.winner == 0 || r.winner == 1);
  EXPECT_EQ(r.honest_failures, 0u);
  EXPECT_EQ(r.num_active, 128u);
}

TEST(RunProtocol, ValidityWinnerIsInitiallySupported) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.colors = split_colors(cfg.n, {0.9, 0.1});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cfg.seed = seed;
    const RunResult r = run_protocol(cfg);
    ASSERT_FALSE(r.failed());
    EXPECT_TRUE(r.winner == 0 || r.winner == 1);
  }
}

TEST(RunProtocol, RoundsMatchSchedule) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 2.0;
  const auto params = ProtocolParams::make(cfg.n, cfg.gamma);
  const RunResult r = run_protocol(cfg);
  EXPECT_EQ(r.rounds, params.total_rounds());
}

TEST(RunProtocol, WinnerAgentSupportsWinnerColor) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.seed = 17;
  const RunResult r = run_protocol(cfg);  // Leader election colors.
  ASSERT_FALSE(r.failed());
  EXPECT_EQ(r.winner, static_cast<Color>(r.winner_agent));
}

TEST(RunProtocol, FaultyAgentNeverWinsLeaderElection) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 6.0;
  cfg.num_faulty = 32;
  cfg.placement = sim::FaultPlacement::kPrefix;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const RunResult r = run_protocol(cfg);
    ASSERT_FALSE(r.failed()) << "seed " << seed;
    EXPECT_GE(r.winner, 32);  // Labels 0..31 are dead.
    EXPECT_EQ(r.num_active, 32u);
  }
}

TEST(RunProtocol, SurvivesEveryPlacementAtAlphaHalf) {
  for (const auto placement : sim::all_fault_placements()) {
    if (placement == sim::FaultPlacement::kNone) continue;
    RunConfig cfg;
    cfg.n = 64;
    cfg.gamma = 6.0;
    cfg.num_faulty = 32;
    cfg.placement = placement;
    cfg.seed = 3;
    const RunResult r = run_protocol(cfg);
    EXPECT_FALSE(r.failed()) << sim::to_string(placement);
  }
}

TEST(RunProtocol, ActiveColorHistogramExcludesFaulty) {
  RunConfig cfg;
  cfg.n = 20;
  cfg.gamma = 4.0;
  cfg.colors = split_colors(cfg.n, {0.5, 0.5});  // Labels 0-9: 0, 10-19: 1.
  cfg.num_faulty = 10;
  cfg.placement = sim::FaultPlacement::kPrefix;  // Kills all of color 0.
  const RunResult r = run_protocol(cfg);
  EXPECT_EQ(r.active_colors.size(), 1u);
  EXPECT_EQ(r.active_colors.at(1), 10u);
  ASSERT_FALSE(r.failed());
  EXPECT_EQ(r.winner, 1);  // Fairness degenerates to the only live color.
}

TEST(RunProtocol, GoodExecutionEventsHoldFaultFree) {
  RunConfig cfg;
  cfg.n = 128;
  cfg.gamma = 4.0;
  cfg.seed = 21;
  const RunResult r = run_protocol(cfg);
  EXPECT_GE(r.events.min_votes, 1u);
  EXPECT_TRUE(r.events.k_values_distinct);
  EXPECT_TRUE(r.events.find_min_agreement);
  EXPECT_TRUE(r.events.every_agent_audited);
  EXPECT_TRUE(r.events.every_agent_cleanly_voted);
}

TEST(RunProtocol, MetricsAreWithinModelBounds) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 2.0;
  const RunResult r = run_protocol(cfg);
  // At most one active operation per agent per round.
  EXPECT_LE(r.metrics.active_links, r.rounds * cfg.n);
  EXPECT_GT(r.metrics.total_bits, 0u);
  EXPECT_GT(r.metrics.messages(), 0u);
  // Message size bound: certificates are O(log^2 n); sanity-cap at n bits.
  EXPECT_LT(r.metrics.max_message_bits, 64ull * 64);
}

TEST(RunProtocol, CoalitionLabelsExcludedFromOutcome) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.seed = 9;
  cfg.coalition = {0, 1, 2};  // Honest-behaving coalition (no factory).
  const RunResult r = run_protocol(cfg);
  EXPECT_FALSE(r.failed());
}

TEST(RunProtocol, DigestModeReachesConsensusCheaper) {
  RunConfig cfg;
  cfg.n = 128;
  cfg.gamma = 4.0;
  cfg.seed = 19;
  const RunResult full = run_protocol(cfg);
  cfg.coherence_digest = true;
  const RunResult digest = run_protocol(cfg);
  ASSERT_FALSE(full.failed());
  ASSERT_FALSE(digest.failed());
  // Same seed, same randomness: the winner is identical; only the
  // Coherence pushes shrink.
  EXPECT_EQ(full.winner, digest.winner);
  EXPECT_LT(digest.metrics.total_bits, full.metrics.total_bits);
}

TEST(RunProtocol, DigestModeStaysCorrectAcrossSeeds) {
  RunConfig cfg;
  cfg.n = 96;
  cfg.gamma = 4.0;
  cfg.coherence_digest = true;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    EXPECT_FALSE(run_protocol(cfg).failed()) << "seed " << seed;
  }
}

TEST(Certificate, DigestSeparatesDistinctCertificates) {
  const auto params = ProtocolParams::make(64, 2.0);
  Certificate a = make_certificate(params, 1, 2, {{3, 0, 10}, {4, 1, 20}});
  Certificate b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.votes[0].value += 1;
  EXPECT_NE(a.digest(), b.digest());
  Certificate c = a;
  c.color = 3;
  EXPECT_NE(a.digest(), c.digest());
  Certificate d = a;
  d.owner = 2;
  EXPECT_NE(a.digest(), d.digest());
  Certificate e = a;
  e.k += 1;
  EXPECT_NE(a.digest(), e.digest());
}

TEST(RunProtocol, LocalMemoryIsPolylog) {
  // The paper's local-memory claim: polylog per agent, dominated by L_u.
  for (const std::uint32_t n : {64u, 1024u}) {
    RunConfig cfg;
    cfg.n = n;
    cfg.gamma = 4.0;
    cfg.seed = 13;
    const RunResult r = run_protocol(cfg);
    EXPECT_GT(r.max_local_memory_bits, 0u);
    // Far below linear: n * one-label would already be n*log n bits.
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(r.max_local_memory_bits),
              60.0 * log2n * log2n * log2n);
  }
}

TEST(RunProtocol, TinyNetworks) {
  for (const std::uint32_t n : {1u, 2u, 3u}) {
    RunConfig cfg;
    cfg.n = n;
    cfg.gamma = 4.0;
    cfg.seed = 2;
    const RunResult r = run_protocol(cfg);
    EXPECT_FALSE(r.failed()) << "n=" << n;
  }
}

}  // namespace
}  // namespace rfc::core
