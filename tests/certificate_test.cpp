#include "core/certificate.hpp"

#include <gtest/gtest.h>

#include "core/payloads.hpp"

namespace rfc::core {
namespace {

ProtocolParams params() { return ProtocolParams::make(256, 2.0); }

TEST(Certificate, VoteSumIsModular) {
  const auto p = params();
  Certificate ce;
  ce.votes = {{1, 0, p.m - 1}, {2, 0, 2}};
  EXPECT_EQ(ce.vote_sum(p), 1u);  // (m-1) + 2 mod m.
}

TEST(Certificate, VoteSumEmptyIsZero) {
  Certificate ce;
  EXPECT_EQ(ce.vote_sum(params()), 0u);
}

TEST(Certificate, VoteSumReducesOversizedValues) {
  const auto p = params();
  Certificate ce;
  ce.votes = {{1, 0, p.m + 5}};  // Malformed value still sums mod m.
  EXPECT_EQ(ce.vote_sum(p), 5u);
}

TEST(Certificate, MakeCertificateComputesKey) {
  const auto p = params();
  ReceivedVotes votes = {{3, 1, 100}, {4, 2, 250}};
  const Certificate ce = make_certificate(p, 7, 2, votes);
  EXPECT_EQ(ce.k, 350u);
  EXPECT_EQ(ce.owner, 7u);
  EXPECT_EQ(ce.color, 2);
  EXPECT_EQ(ce.votes.size(), 2u);
}

TEST(Certificate, LessThanOrdersByKey) {
  Certificate a, b;
  a.k = 5;
  a.owner = 9;
  b.k = 6;
  b.owner = 1;
  EXPECT_TRUE(a.less_than(b));
  EXPECT_FALSE(b.less_than(a));
}

TEST(Certificate, LessThanTieBreaksByOwner) {
  Certificate a, b;
  a.k = b.k = 5;
  a.owner = 1;
  b.owner = 2;
  EXPECT_TRUE(a.less_than(b));
  EXPECT_FALSE(b.less_than(a));
  EXPECT_FALSE(a.less_than(a));  // Irreflexive.
}

TEST(Certificate, EqualityIsStructural) {
  const auto p = params();
  const Certificate a = make_certificate(p, 1, 0, {{2, 0, 10}});
  Certificate b = a;
  EXPECT_EQ(a, b);
  b.votes[0].value = 11;
  EXPECT_FALSE(a == b);
}

TEST(Certificate, BitSizeFormula) {
  const auto p = params();
  Certificate ce = make_certificate(p, 1, 0, {{2, 0, 10}, {3, 1, 20}});
  const std::uint64_t per_vote =
      p.label_bits() + p.round_bits() + p.value_bits();
  EXPECT_EQ(ce.bit_size(p),
            p.value_bits() + 2 * per_vote + p.color_bits() + p.label_bits());
}

TEST(Certificate, BitSizeGrowsWithVotes) {
  const auto p = params();
  Certificate small = make_certificate(p, 1, 0, {});
  ReceivedVotes many;
  for (std::uint32_t i = 0; i < 40; ++i) many.push_back({i, 0, i});
  Certificate large = make_certificate(p, 1, 0, many);
  EXPECT_GT(large.bit_size(p), small.bit_size(p));
}

TEST(CertificatePayload, ReportsCertificateSize) {
  const auto p = params();
  const Certificate ce = make_certificate(p, 1, 0, {{2, 0, 10}});
  const sim::Payload payload = make_certificate_payload(ce, p);
  EXPECT_EQ(payload.bit_size(), ce.bit_size(p));
  ASSERT_NE(certificate_in(payload), nullptr);
  EXPECT_EQ(*certificate_in(payload), ce);
}

TEST(IntentionPayload, SizeIsPerEntry) {
  const auto p = params();
  VoteIntention h(p.q, {1, 2});
  const sim::Payload payload = make_intention_payload(h, p);
  EXPECT_EQ(payload.bit_size(),
            static_cast<std::uint64_t>(p.q) *
                (p.value_bits() + p.label_bits()));
  ASSERT_NE(intention_in(payload), nullptr);
  EXPECT_EQ(intention_in(payload)->size(), p.q);
}

TEST(VotePayload, SizeIsValueWidth) {
  const auto p = params();
  const sim::Payload payload = make_vote_payload(123, p);
  EXPECT_EQ(payload.bit_size(), p.value_bits());
  ASSERT_TRUE(is_vote(payload));
  EXPECT_EQ(vote_value_in(payload), 123u);
}

TEST(Payload, TagMismatchYieldsNull) {
  const auto p = params();
  // A boxed accessor refuses payloads of any other kind — the typed-access
  // contract that replaced dynamic_cast.
  const sim::Payload vote = make_vote_payload(1, p);
  EXPECT_EQ(certificate_in(vote), nullptr);
  EXPECT_EQ(intention_in(vote), nullptr);
  const sim::Payload cert =
      make_certificate_payload(make_certificate(p, 1, 0, {}), p);
  EXPECT_EQ(intention_in(cert), nullptr);
  EXPECT_FALSE(is_vote(cert));
  EXPECT_EQ(sim::Payload{}.bit_size(), 0u);
  EXPECT_TRUE(sim::Payload{}.empty());
}

}  // namespace
}  // namespace rfc::core
