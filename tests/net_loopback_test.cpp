// Loopback transport: the distributed node protocol must be *bit-identical*
// to the in-memory engine.  The loopback backend has no network
// nondeterminism, so any divergence here is a protocol bug in the
// NodeDriver, not a flaky socket — which is what makes these the tier-1
// guards of the transport layer.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/harness.hpp"
#include "net/loopback.hpp"
#include "net/workload.hpp"
#include "sim/scheduler.hpp"

namespace rfc::net {
namespace {

ClusterSpec rumor_spec(std::uint32_t num_nodes, std::uint32_t num_faulty,
                       const char* scheduler = "synchronous") {
  ClusterSpec spec;
  spec.kind = ClusterSpec::Kind::kRumor;
  spec.num_nodes = num_nodes;
  spec.rumor.n = 48;
  spec.rumor.seed = 1234;
  spec.rumor.mechanism = gossip::Mechanism::kPushPull;
  spec.rumor.num_faulty = num_faulty;
  spec.rumor.placement = num_faulty == 0 ? sim::FaultPlacement::kNone
                                         : sim::FaultPlacement::kRandom;
  spec.rumor.scheduler = sim::SchedulerSpec::parse(scheduler);
  return spec;
}

ClusterSpec protocol_spec(std::uint32_t num_nodes, std::uint32_t num_faulty,
                          const char* scheduler = "synchronous") {
  ClusterSpec spec;
  spec.kind = ClusterSpec::Kind::kProtocol;
  spec.num_nodes = num_nodes;
  spec.protocol.n = 48;
  spec.protocol.seed = 99;
  spec.protocol.num_faulty = num_faulty;
  spec.protocol.placement = num_faulty == 0 ? sim::FaultPlacement::kNone
                                            : sim::FaultPlacement::kRandom;
  spec.protocol.scheduler = sim::SchedulerSpec::parse(scheduler);
  return spec;
}

TEST(LoopbackHub, DeliversFifoPerSenderAndValidatesDestinations) {
  LoopbackHub hub(3);
  const std::uint8_t a = 1, b = 2;
  hub.post(0, 2, &a, 1);
  hub.post(1, 2, &b, 1);
  hub.post(0, 2, &b, 1);
  const auto drained = hub.drain(2, 0);
  ASSERT_EQ(drained.size(), 3u);
  // FIFO within each (sender, receiver) pair.
  std::vector<std::uint8_t> from0;
  for (const auto& [from, bytes] : drained) {
    if (from == 0) from0.push_back(bytes.at(0));
  }
  ASSERT_EQ(from0.size(), 2u);
  EXPECT_EQ(from0[0], a);
  EXPECT_EQ(from0[1], b);
  EXPECT_TRUE(hub.drain(2, 0).empty());
  EXPECT_THROW(hub.post(0, 3, &a, 1), std::invalid_argument);
}

TEST(ClusterWorkload, RejectsActivationBasedSchedulers) {
  // The node protocol reproduces the engine's *round-based* phases; an
  // activation-based policy has no distributed counterpart and must be
  // rejected up front rather than silently diverging.
  ClusterSpec spec = rumor_spec(2, 0, "sequential");
  EXPECT_THROW(make_cluster_workload(spec), std::invalid_argument);
}

TEST(LoopbackCluster, RumorMatchesEngineAcrossNodeCounts) {
  for (const std::uint32_t nodes : {1u, 2u, 3u, 5u}) {
    EXPECT_EQ(cross_check_local(rumor_spec(nodes, 0), TransportKind::kLoopback),
              "")
        << "nodes=" << nodes;
  }
}

TEST(LoopbackCluster, RumorWithFaultsMatchesEngine) {
  for (const std::uint32_t nodes : {2u, 4u}) {
    EXPECT_EQ(
        cross_check_local(rumor_spec(nodes, 6), TransportKind::kLoopback), "")
        << "nodes=" << nodes;
  }
}

TEST(LoopbackCluster, ProtocolMatchesEngineAcrossNodeCounts) {
  for (const std::uint32_t nodes : {1u, 3u}) {
    EXPECT_EQ(
        cross_check_local(protocol_spec(nodes, 0), TransportKind::kLoopback),
        "")
        << "nodes=" << nodes;
  }
}

TEST(LoopbackCluster, ProtocolWithFaultsMatchesEngine) {
  EXPECT_EQ(cross_check_local(protocol_spec(4, 4), TransportKind::kLoopback),
            "");
}

TEST(LoopbackCluster, PartialAsyncSchedulerMatchesEngine) {
  // The shared Bernoulli awake-mask stream must stay aligned across blocks:
  // every node draws the full n-label mask per round.
  EXPECT_EQ(cross_check_local(rumor_spec(3, 4, "partial-async:p=0.5"),
                              TransportKind::kLoopback),
            "");
  EXPECT_EQ(cross_check_local(protocol_spec(3, 0, "partial-async:p=0.75"),
                              TransportKind::kLoopback),
            "");
}

TEST(LoopbackCluster, RunsAreBitReproducible) {
  // Same spec, two runs: identical digests and metrics — the loopback
  // transport adds no nondeterminism on top of the seeded workload.
  const ClusterSpec spec = rumor_spec(3, 6);
  const Workload wl = make_cluster_workload(spec);
  const ClusterResult a =
      merge_reports(wl, run_local_cluster(spec, TransportKind::kLoopback));
  const ClusterResult b =
      merge_reports(wl, run_local_cluster(spec, TransportKind::kLoopback));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.block_digests, b.block_digests);
  EXPECT_EQ(cross_check(a, b), "");
}

TEST(MergeReports, RejectsInconsistentReportSets) {
  const ClusterSpec spec = rumor_spec(2, 0);
  const Workload wl = make_cluster_workload(spec);
  std::vector<NodeReport> reports =
      run_local_cluster(spec, TransportKind::kLoopback);
  ASSERT_EQ(reports.size(), 2u);

  std::vector<NodeReport> duplicated = reports;
  duplicated[1] = duplicated[0];
  EXPECT_THROW(merge_reports(wl, duplicated), std::runtime_error);

  std::vector<NodeReport> disagreeing = reports;
  disagreeing[1].rounds += 1;
  EXPECT_THROW(merge_reports(wl, disagreeing), std::runtime_error);

  std::vector<NodeReport> missing(reports.begin(), reports.begin() + 1);
  EXPECT_THROW(merge_reports(wl, missing), std::runtime_error);
}

}  // namespace
}  // namespace rfc::net
