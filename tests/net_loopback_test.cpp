// Loopback transport: the distributed node protocol must be *bit-identical*
// to the in-memory engine.  The loopback backend has no network
// nondeterminism, so any divergence here is a protocol bug in the
// NodeDriver, not a flaky socket — which is what makes these the tier-1
// guards of the transport layer.
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/harness.hpp"
#include "net/loopback.hpp"
#include "net/lossy_client.hpp"
#include "net/wire_frame.hpp"
#include "net/workload.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace rfc::net {
namespace {

ClusterSpec rumor_spec(std::uint32_t num_nodes, std::uint32_t num_faulty,
                       const char* scheduler = "synchronous") {
  ClusterSpec spec;
  spec.kind = ClusterSpec::Kind::kRumor;
  spec.num_nodes = num_nodes;
  spec.rumor.n = 48;
  spec.rumor.seed = 1234;
  spec.rumor.mechanism = gossip::Mechanism::kPushPull;
  spec.rumor.num_faulty = num_faulty;
  spec.rumor.placement = num_faulty == 0 ? sim::FaultPlacement::kNone
                                         : sim::FaultPlacement::kRandom;
  spec.rumor.scheduler = sim::SchedulerSpec::parse(scheduler);
  return spec;
}

ClusterSpec protocol_spec(std::uint32_t num_nodes, std::uint32_t num_faulty,
                          const char* scheduler = "synchronous") {
  ClusterSpec spec;
  spec.kind = ClusterSpec::Kind::kProtocol;
  spec.num_nodes = num_nodes;
  spec.protocol.n = 48;
  spec.protocol.seed = 99;
  spec.protocol.num_faulty = num_faulty;
  spec.protocol.placement = num_faulty == 0 ? sim::FaultPlacement::kNone
                                            : sim::FaultPlacement::kRandom;
  spec.protocol.scheduler = sim::SchedulerSpec::parse(scheduler);
  return spec;
}

TEST(LoopbackHub, DeliversFifoPerSenderAndValidatesDestinations) {
  LoopbackHub hub(3);
  const std::uint8_t a = 1, b = 2;
  hub.post(0, 2, &a, 1);
  hub.post(1, 2, &b, 1);
  hub.post(0, 2, &b, 1);
  const auto drained = hub.drain(2, 0);
  ASSERT_EQ(drained.size(), 3u);
  // FIFO within each (sender, receiver) pair.
  std::vector<std::uint8_t> from0;
  for (const auto& [from, bytes] : drained) {
    if (from == 0) from0.push_back(bytes.at(0));
  }
  ASSERT_EQ(from0.size(), 2u);
  EXPECT_EQ(from0[0], a);
  EXPECT_EQ(from0[1], b);
  EXPECT_TRUE(hub.drain(2, 0).empty());
  EXPECT_THROW(hub.post(0, 3, &a, 1), std::invalid_argument);
}

TEST(ClusterWorkload, RejectsActivationBasedSchedulers) {
  // The node protocol reproduces the engine's *round-based* phases; an
  // activation-based policy has no distributed counterpart and must be
  // rejected up front rather than silently diverging.
  ClusterSpec spec = rumor_spec(2, 0, "sequential");
  EXPECT_THROW(make_cluster_workload(spec), std::invalid_argument);
}

TEST(LoopbackCluster, RumorMatchesEngineAcrossNodeCounts) {
  for (const std::uint32_t nodes : {1u, 2u, 3u, 5u}) {
    EXPECT_EQ(cross_check_local(rumor_spec(nodes, 0), TransportKind::kLoopback),
              "")
        << "nodes=" << nodes;
  }
}

TEST(LoopbackCluster, RumorWithFaultsMatchesEngine) {
  for (const std::uint32_t nodes : {2u, 4u}) {
    EXPECT_EQ(
        cross_check_local(rumor_spec(nodes, 6), TransportKind::kLoopback), "")
        << "nodes=" << nodes;
  }
}

TEST(LoopbackCluster, ProtocolMatchesEngineAcrossNodeCounts) {
  for (const std::uint32_t nodes : {1u, 3u}) {
    EXPECT_EQ(
        cross_check_local(protocol_spec(nodes, 0), TransportKind::kLoopback),
        "")
        << "nodes=" << nodes;
  }
}

TEST(LoopbackCluster, ProtocolWithFaultsMatchesEngine) {
  EXPECT_EQ(cross_check_local(protocol_spec(4, 4), TransportKind::kLoopback),
            "");
}

TEST(LoopbackCluster, PartialAsyncSchedulerMatchesEngine) {
  // The shared Bernoulli awake-mask stream must stay aligned across blocks:
  // every node draws the full n-label mask per round.
  EXPECT_EQ(cross_check_local(rumor_spec(3, 4, "partial-async:p=0.5"),
                              TransportKind::kLoopback),
            "");
  EXPECT_EQ(cross_check_local(protocol_spec(3, 0, "partial-async:p=0.75"),
                              TransportKind::kLoopback),
            "");
}

TEST(LoopbackCluster, RunsAreBitReproducible) {
  // Same spec, two runs: identical digests and metrics — the loopback
  // transport adds no nondeterminism on top of the seeded workload.
  const ClusterSpec spec = rumor_spec(3, 6);
  const Workload wl = make_cluster_workload(spec);
  const ClusterResult a =
      merge_reports(wl, run_local_cluster(spec, TransportKind::kLoopback));
  const ClusterResult b =
      merge_reports(wl, run_local_cluster(spec, TransportKind::kLoopback));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.block_digests, b.block_digests);
  EXPECT_EQ(cross_check(a, b), "");
}

// --------------------------------------------------------------------------
// Loss regression: before the resend protocol, ONE lost sync frame hung the
// cluster until the sync timeout (the bug src/net/socket_client.hpp used to
// document).  These tests inject loss deterministically through the lossy
// decorator and require the run to terminate promptly AND stay
// bit-identical to the engine — retransmission must recover the execution,
// not merely unblock it.
// --------------------------------------------------------------------------

namespace {

/// Runs `spec` on a loopback hub where node 0's outgoing frames go through
/// `drop`; all nodes resend aggressively so a recovered run still finishes
/// fast.  Returns the cross_check mismatch ("" = clean).
std::string run_lossy_cluster(ClusterSpec spec,
                              const LossyCommClient::DropFn& drop,
                              int linger_ms = 0) {
  spec.sync_timeout_ms = 20000;  // The hang guard, not the recovery path.
  spec.resend_interval_ms = 25;
  spec.linger_ms = linger_ms;
  const Workload wl = make_cluster_workload(spec);
  LoopbackHub hub(spec.num_nodes);
  const auto reports = run_local_cluster(spec, [&](NodeId id) {
    CommClientPtr inner = make_comm_client(TransportKind::kLoopback, &hub);
    if (id != 0) return inner;
    return CommClientPtr(std::make_unique<LossyCommClient>(
        std::move(inner), drop));
  });
  return cross_check(merge_reports(wl, reports), reference_result(spec));
}

/// Drops the first outgoing frame of the given kind, once.
LossyCommClient::DropFn drop_first(FrameKind kind) {
  auto dropped = std::make_shared<std::atomic<bool>>(false);
  return [kind, dropped](NodeId, const std::uint8_t* data, std::size_t size) {
    if (size < 2 || data[0] != 0xC5) return false;
    if (data[1] != static_cast<std::uint8_t>(kind)) return false;
    return !dropped->exchange(true);
  };
}

}  // namespace

TEST(LossyCluster, DroppedSyncFrameNoLongerHangsTheBarrier) {
  // Each sync kind in turn: the round-start status, the actions-done mark,
  // and the replies-done mark.  Any of these lost used to deadlock the
  // wait_for loop; the resend request must now recover it within a couple
  // of 25 ms resend intervals, far inside the test timeout.
  for (const FrameKind kind :
       {FrameKind::kRoundStatus, FrameKind::kActionsDone,
        FrameKind::kRepliesDone}) {
    EXPECT_EQ(run_lossy_cluster(rumor_spec(3, 0), drop_first(kind)), "")
        << to_string(kind);
  }
}

TEST(LossyCluster, DroppedDataFrameRecoveredExactly) {
  // Data frames (pull request / reply / push) carry the execution itself;
  // a lost one must be replayed from the send buffer and the run stay
  // bit-identical — the count-carrying sync marks make the wait exact.
  for (const FrameKind kind : {FrameKind::kPullRequest, FrameKind::kPullReply,
                               FrameKind::kPush}) {
    EXPECT_EQ(run_lossy_cluster(protocol_spec(3, 0), drop_first(kind)), "")
        << to_string(kind);
  }
}

TEST(LossyCluster, SeededRandomLossStaysBitIdentical) {
  // 10% independent loss on every node's outgoing frames (each node seeded
  // separately).  Lingering covers the final status broadcast — the one
  // frame whose loss only the sender-side linger can answer for.
  ClusterSpec spec = rumor_spec(3, 6);
  spec.sync_timeout_ms = 20000;
  spec.resend_interval_ms = 25;
  spec.linger_ms = 500;
  const Workload wl = make_cluster_workload(spec);
  LoopbackHub hub(spec.num_nodes);
  const auto reports = run_local_cluster(spec, [&](NodeId id) {
    return make_lossy_client(
        make_comm_client(TransportKind::kLoopback, &hub), 0.10,
        rfc::support::derive_seed(4242, id));
  });
  EXPECT_EQ(cross_check(merge_reports(wl, reports), reference_result(spec)),
            "");
}

TEST(ClusterWorkload, RejectsNonInertNetworkSpecs) {
  // The simulated message adversary lives in the engine; transport runs
  // must refuse it rather than silently running two different experiments
  // on the two sides of the cross-check.
  ClusterSpec spec = rumor_spec(2, 0);
  spec.rumor.network = sim::NetworkSpec::parse("network:drop=0.25");
  EXPECT_THROW(make_cluster_workload(spec), std::invalid_argument);
  // The inert spec (the default) stays accepted.
  spec.rumor.network = sim::NetworkSpec::none();
  EXPECT_EQ(cross_check_local(spec, TransportKind::kLoopback), "");
}

TEST(MergeReports, RejectsInconsistentReportSets) {
  const ClusterSpec spec = rumor_spec(2, 0);
  const Workload wl = make_cluster_workload(spec);
  std::vector<NodeReport> reports =
      run_local_cluster(spec, TransportKind::kLoopback);
  ASSERT_EQ(reports.size(), 2u);

  std::vector<NodeReport> duplicated = reports;
  duplicated[1] = duplicated[0];
  EXPECT_THROW(merge_reports(wl, duplicated), std::runtime_error);

  std::vector<NodeReport> disagreeing = reports;
  disagreeing[1].rounds += 1;
  EXPECT_THROW(merge_reports(wl, disagreeing), std::runtime_error);

  std::vector<NodeReport> missing(reports.begin(), reports.begin() + 1);
  EXPECT_THROW(merge_reports(wl, missing), std::runtime_error);
}

}  // namespace
}  // namespace rfc::net
