// Engine robustness fuzz: agents performing random actions must never
// violate the engine's model invariants, whatever they do — and the
// SchedulerSpec grammar must round-trip every valid spec and throw (never
// crash, never silently coerce) on malformed ones, mirroring the strict
// CliArgs parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/network_spec.hpp"
#include "sim/scheduler_spec.hpp"
#include "sim/topology.hpp"

namespace rfc::sim {
namespace {

constexpr PayloadTag kChaosTag = 0xF1;

Payload chaos_payload(std::uint64_t bits) {
  return Payload::inline_words(kChaosTag, bits, /*w0=*/0);
}

/// Acts uniformly at random each round: idle / push / pull, random targets
/// (possibly self), random payload sizes, randomly refuses to serve pulls,
/// randomly declares itself done.
class ChaosAgent final : public Agent {
 public:
  Action on_round(const Context& ctx) override {
    if (!done_ && ctx.rng->bernoulli(0.01)) done_ = true;
    switch (ctx.rng->below(3)) {
      case 0: return Action::idle();
      case 1:
        return Action::push(ctx.random_peer(),
                            ctx.rng->bernoulli(0.2)
                                ? Payload{}  // Even empty payloads.
                                : chaos_payload(ctx.rng->below(512)));
      default: return Action::pull(ctx.random_peer());
    }
  }
  Payload serve_pull(const Context& ctx, AgentId) override {
    if (ctx.rng->bernoulli(0.3)) return {};
    return chaos_payload(ctx.rng->below(256));
  }
  void on_pull_reply(const Context&, AgentId, const Payload&) override {}
  void on_push(const Context&, AgentId, const Payload&) override {}
  bool done() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(EngineFuzz, InvariantsUnderChaos) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Engine engine({64, seed, nullptr});
    rfc::support::Xoshiro256 rng(seed);
    engine.apply_fault_plan(
        make_fault_plan(FaultPlacement::kRandom, 64, 16, rng));
    for (AgentId i = 0; i < 64; ++i) {
      engine.set_agent(i, std::make_unique<ChaosAgent>());
    }
    const std::uint64_t rounds = engine.run(300);
    const Metrics& m = engine.metrics();
    // At most one active op per active agent per round.
    EXPECT_LE(m.active_links, rounds * 48);
    // Replies never exceed requests.
    EXPECT_LE(m.pull_replies, m.pull_requests);
    // Accounting is internally consistent.
    EXPECT_GE(m.total_bits, m.pull_requests * engine.pull_request_bits());
    EXPECT_LE(m.max_message_bits, 512u);
    EXPECT_EQ(m.rounds, rounds);
  }
}

TEST(EngineFuzz, ChaosOnSparseTopology) {
  Engine engine({32, 9, make_ring(32, 1)});
  for (AgentId i = 0; i < 32; ++i) {
    engine.set_agent(i, std::make_unique<ChaosAgent>());
  }
  engine.run(200);
  EXPECT_LE(engine.metrics().active_links, 200u * 32);
}

// --------------------------------------------------------------------------
// SchedulerSpec::parse fuzz: valid specs round-trip, malformed text throws.
// --------------------------------------------------------------------------

/// Draws a random *valid* spec over the full parameter space of the
/// builtin policies, including the reactive target= rules.
rfc::sim::SchedulerSpec random_valid_spec(rfc::support::Xoshiro256& rng) {
  using rfc::sim::SchedulerSpec;
  switch (rng.below(7)) {
    case 0:
      return SchedulerSpec::synchronous(
          {.shards = static_cast<std::uint32_t>(1 + rng.below(8)),
           .threads = static_cast<std::uint32_t>(rng.below(4))});
    case 1: return SchedulerSpec::sequential();
    case 2:
      return SchedulerSpec::partial_async(rng.uniform01());
    case 3:
      return SchedulerSpec::batched(
          static_cast<std::uint32_t>(1 + rng.below(12)),
          {.shards = static_cast<std::uint32_t>(1 + rng.below(4))});
    case 4: {
      // Both continuous-time queue substrates, uniformly.
      const double rate = 0.25 + rng.uniform01() * 4.0;
      return rng.bernoulli(0.5) ? SchedulerSpec::poisson(rate)
                                : SchedulerSpec::poisson_heap(rate);
    }
    case 5: {
      rfc::sim::AdversarialConfig cfg;
      cfg.victim_fraction = rng.uniform01();
      cfg.budget = rng.below(10'000);
      if (rng.bernoulli(0.5)) {
        cfg.target_phase = static_cast<rfc::sim::AgentPhase>(
            1 + rng.below(5));
      }
      if (rng.bernoulli(0.3)) {
        cfg.victim_ids = {static_cast<rfc::sim::AgentId>(rng.below(64)),
                          static_cast<rfc::sim::AgentId>(64 + rng.below(64))};
      }
      return SchedulerSpec::adversarial(cfg);
    }
    default: {
      // The reactive adversary: every target rule × random knobs.
      rfc::sim::AdversarialConfig cfg;
      cfg.target = static_cast<rfc::sim::ReactiveTarget>(1 + rng.below(3));
      cfg.victim_fraction = rng.uniform01();
      cfg.budget = rng.below(10'000);
      if (rng.bernoulli(0.5)) {
        cfg.target_phase = static_cast<rfc::sim::AgentPhase>(
            1 + rng.below(5));
      }
      return SchedulerSpec::adversarial(cfg);
    }
  }
}

TEST(SchedulerSpecFuzz, RandomValidSpecsRoundTripAndBuild) {
  rfc::support::Xoshiro256 rng(0x5EEDu);
  for (int i = 0; i < 500; ++i) {
    const auto spec = random_valid_spec(rng);
    const std::string text = spec.to_string();
    // parse(to_string()) is the identity...
    const auto reparsed = rfc::sim::SchedulerSpec::parse(text);
    EXPECT_EQ(reparsed, spec) << text;
    // ...and the canonical form is a fixed point.
    EXPECT_EQ(reparsed.to_string(), text);
    // Every valid spec builds a live scheduler.
    EXPECT_NE(spec.make(), nullptr) << text;
  }
}

TEST(SchedulerSpecFuzz, MalformedTargetRuleNamesThrow) {
  // Mutations of the valid rule names must be rejected at make() with
  // std::invalid_argument — never accepted, coerced, or crashed on.
  rfc::support::Xoshiro256 rng(0xBADu);
  const std::vector<std::string> valid = {"min-cert", "laggard",
                                          "quorum-edge"};
  const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz-_0123456789";
  for (int i = 0; i < 300; ++i) {
    std::string rule = valid[rng.below(valid.size())];
    switch (rng.below(4)) {
      case 0:  // Flip one character.
        rule[rng.below(rule.size())] =
            kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
        break;
      case 1:  // Truncate.
        rule.resize(rng.below(rule.size()));
        break;
      case 2:  // Append garbage.
        rule += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
        break;
      default: {  // Random word.
        rule.clear();
        const auto len = 1 + rng.below(12);
        for (std::uint64_t c = 0; c < len; ++c) {
          rule += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
        }
        break;
      }
    }
    if (std::find(valid.begin(), valid.end(), rule) != valid.end()) {
      continue;  // The mutation landed on a real rule; skip.
    }
    const std::string text = "adversarial:target=" + rule;
    // The *grammar* is fine, so parse() accepts; the value check at make()
    // must throw.
    EXPECT_THROW(rfc::sim::SchedulerSpec::parse(text).make(),
                 std::invalid_argument)
        << text;
  }
}

TEST(SchedulerSpecFuzz, StructurallyMalformedTextThrowsAtParse) {
  const std::vector<std::string> malformed = {
      "",
      ":",
      ":p=1",
      "warp-drive",
      "synchronous:",
      "synchronous:,",
      "synchronous:shards",
      "synchronous:=4",
      "synchronous:shards=1,shards=2",       // Duplicate key.
      "adversarial:target=min-cert,target=laggard",
      "batched:block=3,,threads=2",
      "poisson:rate=1,",
  };
  for (const auto& text : malformed) {
    EXPECT_THROW(rfc::sim::SchedulerSpec::parse(text),
                 std::invalid_argument)
        << '"' << text << '"';
  }
  // Well-formed grammar with out-of-schema keys or broken values fails at
  // make() instead (where the policy schema is known).
  const std::vector<std::string> bad_values = {
      "sequential:warp=1",
      "poisson:rate=fast",
      "poisson:queue=wheel",
      "poisson:queue=heap,rate=-1",
      "batched:block=0",
      "batched:block=-3",
      "adversarial:victims=1+x",
      "adversarial:phase=warp",
      "adversarial:budget=1e3x",
  };
  for (const auto& text : bad_values) {
    EXPECT_THROW(rfc::sim::SchedulerSpec::parse(text).make(),
                 std::invalid_argument)
        << '"' << text << '"';
  }
}

// --------------------------------------------------------------------------
// NetworkSpec::parse fuzz: the network grammar must hold the same line the
// scheduler grammar does — valid specs round-trip and build, structural
// damage throws at parse(), and bad *values* throw at make() naming the
// offending key (never crash, never silently coerce or clamp).
// --------------------------------------------------------------------------

/// Draws a random *valid* network spec: a random subset of the probability
/// and count keys with in-range values.
rfc::sim::NetworkSpec random_valid_network_spec(
    rfc::support::Xoshiro256& rng) {
  std::string text = "network";
  char sep = ':';
  const auto add = [&](const std::string& key, const std::string& value) {
    text += sep;
    text += key + "=" + value;
    sep = ',';
  };
  const auto prob = [&rng] {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6f", rng.uniform01());
    return std::string(buffer);
  };
  for (const char* key : {"drop", "dup", "reorder", "corrupt", "churn"}) {
    if (rng.bernoulli(0.4)) add(key, prob());
  }
  if (rng.bernoulli(0.4)) add("delay", std::to_string(rng.below(6)));
  if (rng.bernoulli(0.4)) add("rejoin", std::to_string(rng.below(10)));
  if (rng.bernoulli(0.5)) add("seed", std::to_string(rng.below(1 << 20)));
  return rfc::sim::NetworkSpec::parse(text);
}

TEST(NetworkSpecFuzz, RandomValidSpecsRoundTripAndBuild) {
  rfc::support::Xoshiro256 rng(0x0DDFACEu);
  for (int i = 0; i < 500; ++i) {
    const auto spec = random_valid_network_spec(rng);
    const std::string text = spec.to_string();
    const auto reparsed = rfc::sim::NetworkSpec::parse(text);
    EXPECT_EQ(reparsed, spec) << text;
    EXPECT_EQ(reparsed.to_string(), text);
    EXPECT_NE(spec.make(), nullptr) << text;
  }
}

TEST(NetworkSpecFuzz, MutatedSpecsThrowOrBuildButNeverCrash) {
  // Character-level mutations of valid specs: whatever the damage, the
  // outcome is a successful build or std::invalid_argument — nothing else.
  rfc::support::Xoshiro256 rng(0xFACADEu);
  const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz=,.:0123456789-";
  for (int i = 0; i < 500; ++i) {
    std::string text = random_valid_network_spec(rng).to_string();
    const auto mutations = 1 + rng.below(3);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.below(3)) {
        case 0:
          text[rng.below(text.size())] =
              kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
          break;
        case 1:
          text.insert(text.begin() + static_cast<std::ptrdiff_t>(
                                         rng.below(text.size() + 1)),
                      kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
          break;
        default: text.resize(rng.below(text.size()) + 1); break;
      }
    }
    try {
      (void)rfc::sim::NetworkSpec::parse(text).make();
    } catch (const std::invalid_argument&) {
      // The only acceptable failure mode.
    }
  }
}

TEST(NetworkSpecFuzz, OutOfRangeValuesThrowAtMakeNamingTheKey) {
  // Satellite contract: value errors throw at make(), not parse(), and the
  // message carries the offending key — matching SchedulerSpec.
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"network:drop=1.5", "drop"},
      {"network:drop=-0.1", "drop"},
      {"network:dup=2", "dup"},
      {"network:reorder=nan", "reorder"},
      {"network:corrupt=yes", "corrupt"},
      {"network:churn=1.01", "churn"},
      {"network:delay=-1", "delay"},
      {"network:delay=2.5", "delay"},
      {"network:rejoin=-3", "rejoin"},
      {"network:seed=0x", "seed"},
      {"network:drop=0.5,corrupt=1e9", "corrupt"},
  };
  for (const auto& [text, key] : bad) {
    const auto spec = rfc::sim::NetworkSpec::parse(text);  // Grammar is fine.
    try {
      spec.make();
      FAIL() << text << " built a model";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << text << " threw without naming \"" << key << "\": " << e.what();
    }
  }
  // Unknown keys are make()-time errors too, with the key in the message.
  try {
    rfc::sim::NetworkSpec::parse("network:jitter=0.5").make();
    FAIL() << "unknown key built a model";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("jitter"), std::string::npos)
        << e.what();
  }
}

TEST(NetworkSpecFuzz, StructurallyMalformedTextThrowsAtParse) {
  const std::vector<std::string> malformed = {
      "",
      ":",
      ":drop=0.1",
      "subspace",                        // Unknown policy.
      "network:",
      "network:,",
      "network:drop",
      "network:=0.1",
      "network:drop=0.1,drop=0.2",       // Duplicate key.
      "network:drop=0.1,,dup=0.2",
      "network:drop=0.1,",
  };
  for (const auto& text : malformed) {
    EXPECT_THROW(rfc::sim::NetworkSpec::parse(text), std::invalid_argument)
        << '"' << text << '"';
  }
}

TEST(EngineFuzz, TerminatesWhenChaosAgentsAllFinish) {
  // done_ flips with p=0.01 per round: by round 3000 all 16 agents are done
  // with overwhelming probability, and the engine must stop by itself.
  Engine engine({16, 4, nullptr});
  for (AgentId i = 0; i < 16; ++i) {
    engine.set_agent(i, std::make_unique<ChaosAgent>());
  }
  const std::uint64_t rounds = engine.run(10'000);
  EXPECT_LT(rounds, 10'000u);
  EXPECT_TRUE(engine.all_done());
}

}  // namespace
}  // namespace rfc::sim
