// Engine robustness fuzz: agents performing random actions must never
// violate the engine's model invariants, whatever they do.
#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/topology.hpp"

namespace rfc::sim {
namespace {

constexpr PayloadTag kChaosTag = 0xF1;

Payload chaos_payload(std::uint64_t bits) {
  return Payload::inline_words(kChaosTag, bits, /*w0=*/0);
}

/// Acts uniformly at random each round: idle / push / pull, random targets
/// (possibly self), random payload sizes, randomly refuses to serve pulls,
/// randomly declares itself done.
class ChaosAgent final : public Agent {
 public:
  Action on_round(const Context& ctx) override {
    if (!done_ && ctx.rng->bernoulli(0.01)) done_ = true;
    switch (ctx.rng->below(3)) {
      case 0: return Action::idle();
      case 1:
        return Action::push(ctx.random_peer(),
                            ctx.rng->bernoulli(0.2)
                                ? Payload{}  // Even empty payloads.
                                : chaos_payload(ctx.rng->below(512)));
      default: return Action::pull(ctx.random_peer());
    }
  }
  Payload serve_pull(const Context& ctx, AgentId) override {
    if (ctx.rng->bernoulli(0.3)) return {};
    return chaos_payload(ctx.rng->below(256));
  }
  void on_pull_reply(const Context&, AgentId, const Payload&) override {}
  void on_push(const Context&, AgentId, const Payload&) override {}
  bool done() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(EngineFuzz, InvariantsUnderChaos) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Engine engine({64, seed, nullptr});
    rfc::support::Xoshiro256 rng(seed);
    engine.apply_fault_plan(
        make_fault_plan(FaultPlacement::kRandom, 64, 16, rng));
    for (AgentId i = 0; i < 64; ++i) {
      engine.set_agent(i, std::make_unique<ChaosAgent>());
    }
    const std::uint64_t rounds = engine.run(300);
    const Metrics& m = engine.metrics();
    // At most one active op per active agent per round.
    EXPECT_LE(m.active_links, rounds * 48);
    // Replies never exceed requests.
    EXPECT_LE(m.pull_replies, m.pull_requests);
    // Accounting is internally consistent.
    EXPECT_GE(m.total_bits, m.pull_requests * engine.pull_request_bits());
    EXPECT_LE(m.max_message_bits, 512u);
    EXPECT_EQ(m.rounds, rounds);
  }
}

TEST(EngineFuzz, ChaosOnSparseTopology) {
  Engine engine({32, 9, make_ring(32, 1)});
  for (AgentId i = 0; i < 32; ++i) {
    engine.set_agent(i, std::make_unique<ChaosAgent>());
  }
  engine.run(200);
  EXPECT_LE(engine.metrics().active_links, 200u * 32);
}

TEST(EngineFuzz, TerminatesWhenChaosAgentsAllFinish) {
  // done_ flips with p=0.01 per round: by round 3000 all 16 agents are done
  // with overwhelming probability, and the engine must stop by itself.
  Engine engine({16, 4, nullptr});
  for (AgentId i = 0; i < 16; ++i) {
    engine.set_agent(i, std::make_unique<ChaosAgent>());
  }
  const std::uint64_t rounds = engine.run(10'000);
  EXPECT_LT(rounds, 10'000u);
  EXPECT_TRUE(engine.all_done());
}

}  // namespace
}  // namespace rfc::sim
