#include "support/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

namespace rfc::support {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string out = t.render();
  // Every line of the table must have the same length.
  std::size_t expected = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    EXPECT_EQ(eol - pos, expected);
    pos = eol + 1;
  }
}

TEST(Table, ColumnsWidenToFitCells) {
  Table t({"x"});
  t.add_row({"a-much-longer-cell"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a-much-longer-cell"), std::string::npos);
}

TEST(Table, CaptionIsPrepended) {
  Table t({"x"});
  const std::string out = t.render("My caption");
  EXPECT_EQ(out.rfind("My caption", 0), 0u);
}

TEST(TableFmt, FixedPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(-0.5, 1), "-0.5");
}

TEST(TableFmt, IntGrouping) {
  EXPECT_EQ(Table::fmt_int(0), "0");
  EXPECT_EQ(Table::fmt_int(999), "999");
  EXPECT_EQ(Table::fmt_int(1000), "1'000");
  EXPECT_EQ(Table::fmt_int(1234567), "1'234'567");
}

TEST(TableFmt, Percent) {
  EXPECT_EQ(Table::fmt_pct(0.5), "50.0%");
  EXPECT_EQ(Table::fmt_pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::fmt_pct(1.0, 0), "100%");
}

TEST(TableCsv, PlainCells) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x", "y"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\nx,y\n");
}

TEST(TableCsv, EscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"with,comma", "with \"quote\""});
  t.add_row({"with\nnewline", "plain"});
  EXPECT_EQ(t.to_csv(),
            "name,note\n"
            "\"with,comma\",\"with \"\"quote\"\"\"\n"
            "\"with\nnewline\",plain\n");
}

TEST(TableCsv, PaddedRowsStayRectangular) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.to_csv(), "a,b,c\n1,,\n");
}

TEST(TableCsv, WriteFileRoundTrips) {
  Table t({"h"});
  t.add_row({"v"});
  const std::string path = ::testing::TempDir() + "/rfc_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "h\nv\n");
}

TEST(TableCsv, WriteFileFailsOnBadPath) {
  Table t({"h"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-zz/file.csv"));
}

}  // namespace
}  // namespace rfc::support
