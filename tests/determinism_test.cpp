// Reproducibility guarantees: a master seed pins down the entire execution,
// and parallel analysis never perturbs results.
#include <gtest/gtest.h>

#include "analysis/fairness.hpp"
#include "baseline/naive_election.hpp"
#include "core/runner.hpp"
#include "gossip/rumor.hpp"

namespace rfc {
namespace {

core::RunConfig protocol_config(std::uint64_t seed) {
  core::RunConfig cfg;
  cfg.n = 96;
  cfg.gamma = 3.0;
  cfg.seed = seed;
  cfg.colors = core::split_colors(cfg.n, {0.7, 0.3});
  cfg.num_faulty = 10;
  cfg.placement = sim::FaultPlacement::kRandom;
  return cfg;
}

TEST(Determinism, ProtocolRunIsSeedReproducible) {
  const auto a = core::run_protocol(protocol_config(42));
  const auto b = core::run_protocol(protocol_config(42));
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.winner_agent, b.winner_agent);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_EQ(a.metrics.messages(), b.metrics.messages());
  EXPECT_EQ(a.metrics.max_message_bits, b.metrics.max_message_bits);
  EXPECT_EQ(a.events.min_votes, b.events.min_votes);
  EXPECT_EQ(a.events.max_votes, b.events.max_votes);
  EXPECT_EQ(a.active_colors, b.active_colors);
}

TEST(Determinism, DifferentSeedsGiveDifferentExecutions) {
  const auto a = core::run_protocol(protocol_config(1));
  const auto b = core::run_protocol(protocol_config(2));
  // Total bits depend on every random vote landing; equality across seeds
  // would indicate the seed is ignored somewhere.
  EXPECT_NE(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(Determinism, RumorSpreadIsSeedReproducible) {
  gossip::SpreadConfig cfg;
  cfg.n = 512;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 9;
  const auto a = gossip::run_rumor_spreading(cfg);
  const auto b = gossip::run_rumor_spreading(cfg);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(Determinism, NaiveElectionIsSeedReproducible) {
  baseline::NaiveElectionConfig cfg;
  cfg.n = 128;
  cfg.seed = 31;
  const auto a = baseline::run_naive_election(cfg);
  const auto b = baseline::run_naive_election(cfg);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(Determinism, FairnessReportInvariantUnderThreadCount) {
  const auto report_with = [](std::size_t threads) {
    return analysis::measure_fairness(protocol_config(77), 24, threads);
  };
  const auto a = report_with(1);
  const auto b = report_with(8);
  ASSERT_EQ(a.shares.size(), b.shares.size());
  for (std::size_t i = 0; i < a.shares.size(); ++i) {
    EXPECT_EQ(a.shares[i].wins, b.shares[i].wins);
    EXPECT_DOUBLE_EQ(a.shares[i].expected, b.shares[i].expected);
  }
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.total_bits.mean(), b.total_bits.mean());
}

TEST(Determinism, EngineTraceIsIdentical) {
  // Byte-level check: per-round metric deltas match between two engines.
  const auto trace = [] {
    std::vector<std::uint64_t> bits_per_round;
    core::RunConfig cfg = protocol_config(5);
    // Re-run through the public API but sample metrics via the observer by
    // using a tiny n so the full trace is cheap.
    cfg.n = 32;
    cfg.num_faulty = 0;
    cfg.colors.clear();
    const auto result = core::run_protocol(cfg);
    bits_per_round.push_back(result.metrics.total_bits);
    bits_per_round.push_back(result.metrics.pull_requests);
    bits_per_round.push_back(result.metrics.pushes);
    bits_per_round.push_back(result.metrics.active_links);
    return bits_per_round;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace rfc
