// Property-based fuzzing of the Verification audit: randomly generated
// consistent worlds are always accepted; a random single-field corruption
// is always rejected (when the corrupted voter is audited).
#include <gtest/gtest.h>

#include "core/verification.hpp"
#include "support/rng.hpp"

namespace rfc::core {
namespace {

struct FuzzWorld {
  Certificate cert;
  CollectedIntentions collected;
};

/// Builds a random world where the certificate is exactly consistent with
/// the audit data: `audited` voters with full intentions, of which the
/// entries targeting `owner` appear verbatim in W; plus `unaudited` voters
/// contributing extra votes the verifier cannot check.
FuzzWorld make_world(const ProtocolParams& params, sim::AgentId owner,
                     std::uint32_t audited, std::uint32_t unaudited,
                     rfc::support::Xoshiro256& rng) {
  FuzzWorld w;
  w.cert.owner = owner;
  w.cert.color = static_cast<Color>(rng.below(params.n));
  for (std::uint32_t v = 1; v <= audited; ++v) {
    CommitmentRecord record;
    record.intention.resize(params.q);
    for (std::uint32_t j = 0; j < params.q; ++j) {
      record.intention[j].value = rng.below(params.m);
      // ~1/3 of declared votes hit the owner.
      record.intention[j].target =
          rng.below(3) == 0 ? owner
                            : static_cast<sim::AgentId>(rng.below(params.n));
      if (record.intention[j].target == owner) {
        w.cert.votes.push_back({static_cast<sim::AgentId>(v), j,
                                record.intention[j].value});
      }
    }
    w.collected.emplace(static_cast<sim::AgentId>(v), std::move(record));
  }
  for (std::uint32_t u = 0; u < unaudited; ++u) {
    const auto voter =
        static_cast<sim::AgentId>(audited + 1 + u);
    w.cert.votes.push_back(
        {voter, static_cast<std::uint32_t>(rng.below(params.q)),
         rng.below(params.m)});
  }
  w.cert.k = w.cert.vote_sum(params);
  return w;
}

TEST(VerificationFuzz, ConsistentWorldsAlwaysAccepted) {
  const auto params = ProtocolParams::make(128, 3.0);
  rfc::support::Xoshiro256 rng(101);
  for (int rep = 0; rep < 200; ++rep) {
    const auto audited = static_cast<std::uint32_t>(1 + rng.below(8));
    const auto unaudited = static_cast<std::uint32_t>(rng.below(5));
    const FuzzWorld w = make_world(params, 0, audited, unaudited, rng);
    const auto r = verify_certificate(params, w.cert, w.collected);
    EXPECT_TRUE(r.accepted()) << "rep " << rep << ": "
                              << to_string(r.failure);
  }
}

TEST(VerificationFuzz, CorruptedAuditedVoteAlwaysRejected) {
  const auto params = ProtocolParams::make(128, 3.0);
  rfc::support::Xoshiro256 rng(202);
  int corrupted_reps = 0;
  for (int rep = 0; rep < 300; ++rep) {
    FuzzWorld w = make_world(params, 0, 1 + rng.below(6), 0, rng);
    if (w.cert.votes.empty()) continue;
    ++corrupted_reps;
    const std::size_t idx = rng.below(w.cert.votes.size());
    switch (rng.below(3)) {
      case 0:  // Flip the value (and fix k so the sum check passes).
        w.cert.votes[idx].value =
            (w.cert.votes[idx].value + 1 + rng.below(params.m - 1)) %
            params.m;
        w.cert.k = w.cert.vote_sum(params);
        break;
      case 1:  // Drop the vote (k fixed): only completeness can notice.
        w.cert.votes.erase(w.cert.votes.begin() +
                           static_cast<std::ptrdiff_t>(idx));
        w.cert.k = w.cert.vote_sum(params);
        break;
      default:  // Lie about k itself.
        w.cert.k = (w.cert.k + 1 + rng.below(params.m - 1)) % params.m;
        break;
    }
    const auto r = verify_certificate(params, w.cert, w.collected);
    EXPECT_FALSE(r.accepted()) << "rep " << rep;
  }
  EXPECT_GT(corrupted_reps, 250);
}

TEST(VerificationFuzz, UnauditedCorruptionIsInvisible) {
  // Sanity check on the model: tampering with votes from voters outside
  // L_u passes the local audit (k is fixed up) — it is the *union* of
  // honest auditors that covers everyone (Def. 5(1)), not any single one.
  const auto params = ProtocolParams::make(128, 3.0);
  rfc::support::Xoshiro256 rng(303);
  for (int rep = 0; rep < 100; ++rep) {
    FuzzWorld w = make_world(params, 0, 2, 3, rng);
    // Corrupt an unaudited vote's value; fix k.
    for (auto& v : w.cert.votes) {
      if (!w.collected.contains(v.voter)) {
        v.value = (v.value + 1) % params.m;
        break;
      }
    }
    w.cert.k = w.cert.vote_sum(params);
    const auto r = verify_certificate(params, w.cert, w.collected);
    EXPECT_TRUE(r.accepted());
  }
}

}  // namespace
}  // namespace rfc::core
