#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rfc::support {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, EqualsSyntax) {
  const auto args = make({"--n=128", "--gamma=2.5"});
  EXPECT_EQ(args.get_uint("n", 0), 128u);
  EXPECT_DOUBLE_EQ(args.get_double("gamma", 0), 2.5);
}

TEST(CliArgs, SpaceSyntax) {
  const auto args = make({"--n", "64"});
  EXPECT_EQ(args.get_uint("n", 0), 64u);
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = make({"--full"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_TRUE(args.has("full"));
}

TEST(CliArgs, BoolParsing) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const auto args = make({});
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("k", -3), -3);
  EXPECT_EQ(args.get_uint("k", 9), 9u);
  EXPECT_DOUBLE_EQ(args.get_double("k", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool("k"));
  EXPECT_FALSE(args.has("k"));
}

TEST(CliArgs, PositionalArguments) {
  const auto args = make({"input.txt", "--n=4", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(CliArgs, NegativeIntegers) {
  const auto args = make({"--delta=-12"});
  EXPECT_EQ(args.get_int("delta", 0), -12);
}

TEST(CliArgs, FlagFollowedByFlagIsBoolean) {
  const auto args = make({"--a", "--b=2"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_EQ(args.get_uint("b", 0), 2u);
}

TEST(CliArgs, MalformedIntThrowsInsteadOfDefaulting) {
  // A typo must not silently run the experiment with the default value.
  EXPECT_THROW(make({"--n=abc"}).get_int("n", 7), std::invalid_argument);
  EXPECT_THROW(make({"--n="}).get_int("n", 7), std::invalid_argument);
  EXPECT_THROW(make({"--n=12x"}).get_int("n", 7), std::invalid_argument);
  EXPECT_THROW(make({"--n=99999999999999999999"}).get_int("n", 7),
               std::invalid_argument);
}

TEST(CliArgs, MalformedUintThrowsInsteadOfDefaulting) {
  EXPECT_THROW(make({"--n=abc"}).get_uint("n", 7), std::invalid_argument);
  EXPECT_THROW(make({"--n=1.5"}).get_uint("n", 7), std::invalid_argument);
  // strtoull would silently wrap a negative value; we must not.
  EXPECT_THROW(make({"--n=-3"}).get_uint("n", 7), std::invalid_argument);
}

TEST(CliArgs, MalformedDoubleThrowsInsteadOfDefaulting) {
  EXPECT_THROW(make({"--gamma=abc"}).get_double("gamma", 1.0),
               std::invalid_argument);
  EXPECT_THROW(make({"--gamma=1.5x"}).get_double("gamma", 1.0),
               std::invalid_argument);
  EXPECT_THROW(make({"--gamma="}).get_double("gamma", 1.0),
               std::invalid_argument);
}

TEST(CliArgs, MalformedErrorNamesFlagAndValue) {
  try {
    make({"--n=abc"}).get_uint("n", 7);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--n"), std::string::npos);
    EXPECT_NE(what.find("abc"), std::string::npos);
  }
}

TEST(CliArgs, WellFormedNumericValuesStillParse) {
  const auto args = make({"--a=-5", "--b=0", "--c=2.5e3"});
  EXPECT_EQ(args.get_int("a", 0), -5);
  EXPECT_EQ(args.get_uint("b", 9), 0u);
  EXPECT_DOUBLE_EQ(args.get_double("c", 0), 2500.0);
}

}  // namespace
}  // namespace rfc::support
