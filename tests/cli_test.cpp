#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace rfc::support {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, EqualsSyntax) {
  const auto args = make({"--n=128", "--gamma=2.5"});
  EXPECT_EQ(args.get_uint("n", 0), 128u);
  EXPECT_DOUBLE_EQ(args.get_double("gamma", 0), 2.5);
}

TEST(CliArgs, SpaceSyntax) {
  const auto args = make({"--n", "64"});
  EXPECT_EQ(args.get_uint("n", 0), 64u);
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = make({"--full"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_TRUE(args.has("full"));
}

TEST(CliArgs, BoolParsing) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x"));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const auto args = make({});
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("k", -3), -3);
  EXPECT_EQ(args.get_uint("k", 9), 9u);
  EXPECT_DOUBLE_EQ(args.get_double("k", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool("k"));
  EXPECT_FALSE(args.has("k"));
}

TEST(CliArgs, PositionalArguments) {
  const auto args = make({"input.txt", "--n=4", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(CliArgs, NegativeIntegers) {
  const auto args = make({"--delta=-12"});
  EXPECT_EQ(args.get_int("delta", 0), -12);
}

TEST(CliArgs, FlagFollowedByFlagIsBoolean) {
  const auto args = make({"--a", "--b=2"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_EQ(args.get_uint("b", 0), 2u);
}

}  // namespace
}  // namespace rfc::support
