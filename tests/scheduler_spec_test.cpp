// SchedulerSpec: string grammar round-trips, registry behaviour, factory
// validation, and the steps_per_round exchange rate the run entry points
// use to scale budgets across policies.
#include "sim/scheduler_spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace rfc::sim {
namespace {

TEST(SchedulerSpec, DefaultIsSynchronous) {
  const SchedulerSpec spec;
  EXPECT_EQ(spec.policy(), "synchronous");
  EXPECT_TRUE(spec.params().empty());
  EXPECT_EQ(spec.to_string(), "synchronous");
  EXPECT_STREQ(spec.make()->name(), "synchronous");
}

TEST(SchedulerSpec, AllBuiltinPoliciesAreRegistered) {
  const auto names = SchedulerSpec::registered_policies();
  for (const char* expected : {"synchronous", "sequential", "partial-async",
                               "batched", "adversarial", "poisson"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(SchedulerSpec, ParseToStringRoundTripsForEveryRegisteredPolicy) {
  // Bare policy names...
  for (const auto& name : SchedulerSpec::registered_policies()) {
    const auto spec = SchedulerSpec::parse(name);
    EXPECT_EQ(SchedulerSpec::parse(spec.to_string()), spec) << name;
    EXPECT_NE(spec.make(), nullptr) << name;
  }
  // ...and fully parameterized forms of each shipped policy.
  for (const char* text :
       {"synchronous", "sequential", "partial-async:p=0.25",
        "adversarial:victim_fraction=0.125", "adversarial:victims=0+3+7",
        "adversarial:stream=48879,victim_fraction=0.5",
        "adversarial:budget=1500,phase=vote,victims=0+1",
        "adversarial:phase=commit,victim_fraction=0.25",
        "sequential:wasted=keep", "sequential:wasted=skip",
        "adversarial:victim_fraction=0.25,wasted=skip",
        "batched:block=8", "batched:block=8,shards=4,threads=2",
        "poisson:rate=2.5"}) {
    const auto spec = SchedulerSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text) << text;
    EXPECT_EQ(SchedulerSpec::parse(spec.to_string()), spec) << text;
    EXPECT_NE(spec.make(), nullptr) << text;
  }
}

TEST(SchedulerSpec, NamedConstructorsRoundTripThroughParse) {
  const std::vector<SchedulerSpec> specs = {
      SchedulerSpec::synchronous(),
      SchedulerSpec::sequential(),
      SchedulerSpec::partial_async(0.25),
      SchedulerSpec::batched(4),
      SchedulerSpec::batched(4, ShardingConfig{8, 2}),
      SchedulerSpec::adversarial({.victim_fraction = 0.375}),
      SchedulerSpec::adversarial({.victim_ids = {1, 4}, .stream = 0xBEEFu}),
      SchedulerSpec::adversarial({.victim_ids = {1, 4},
                                  .target_phase = AgentPhase::kVote,
                                  .budget = 250}),
      SchedulerSpec::adversarial({.victim_fraction = 0.25,
                                  .skip_wasted = true}),
      SchedulerSpec::poisson(),
      SchedulerSpec::poisson(0.5),
  };
  for (const auto& spec : specs) {
    EXPECT_EQ(SchedulerSpec::parse(spec.to_string()), spec)
        << spec.to_string();
  }
}

TEST(SchedulerSpec, ParsedParametersReachTheScheduler) {
  const auto spec = SchedulerSpec::parse("partial-async:p=0.25");
  const auto scheduler = spec.make();
  const auto* partial =
      dynamic_cast<const PartialAsyncScheduler*>(scheduler.get());
  ASSERT_NE(partial, nullptr);
  EXPECT_DOUBLE_EQ(partial->wake_probability(), 0.25);

  const auto adv = SchedulerSpec::parse(
      "adversarial:victim_fraction=0.5,stream=48879,victims=2+9,"
      "phase=vote,budget=1500");
  const auto adv_scheduler = adv.make();
  const auto* adversarial =
      dynamic_cast<const PhaseAdversarialScheduler*>(adv_scheduler.get());
  ASSERT_NE(adversarial, nullptr);
  EXPECT_DOUBLE_EQ(adversarial->config().victim_fraction, 0.5);
  EXPECT_EQ(adversarial->config().stream, 0xBEEFu);
  EXPECT_EQ(adversarial->config().victim_ids,
            (std::vector<AgentId>{2, 9}));
  EXPECT_EQ(adversarial->config().target_phase, AgentPhase::kVote);
  EXPECT_EQ(adversarial->config().budget, 1500u);

  const auto batched_scheduler =
      SchedulerSpec::parse("batched:block=5").make();
  const auto* batched =
      dynamic_cast<const BatchedDeliveryScheduler*>(batched_scheduler.get());
  ASSERT_NE(batched, nullptr);
  EXPECT_EQ(batched->config().blocks, 5u);

  const auto poisson = SchedulerSpec::parse("poisson:rate=2.5").make();
  const auto* clock =
      dynamic_cast<const PoissonClockScheduler*>(poisson.get());
  ASSERT_NE(clock, nullptr);
  EXPECT_DOUBLE_EQ(clock->rate(), 2.5);

  // The wasted= knob: keep and the bare spec are the default, skip flips it.
  for (const char* text : {"sequential", "sequential:wasted=keep"}) {
    const auto seq = SchedulerSpec::parse(text).make();
    const auto* sequential =
        dynamic_cast<const SequentialScheduler*>(seq.get());
    ASSERT_NE(sequential, nullptr) << text;
    EXPECT_FALSE(sequential->skip_wasted()) << text;
  }
  const auto seq_skip = SchedulerSpec::parse("sequential:wasted=skip").make();
  const auto* seq_skip_sched =
      dynamic_cast<const SequentialScheduler*>(seq_skip.get());
  ASSERT_NE(seq_skip_sched, nullptr);
  EXPECT_TRUE(seq_skip_sched->skip_wasted());
  const auto adv_skip =
      SchedulerSpec::parse("adversarial:victims=3,wasted=skip").make();
  const auto* adv_skip_sched =
      dynamic_cast<const PhaseAdversarialScheduler*>(adv_skip.get());
  ASSERT_NE(adv_skip_sched, nullptr);
  EXPECT_TRUE(adv_skip_sched->config().skip_wasted);
}

TEST(SchedulerSpec, ParseRejectsMalformedText) {
  EXPECT_THROW(SchedulerSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("warp-drive"), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("poisson:"), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("poisson:rate"), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("poisson:=1"), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("poisson:rate=1,rate=2"),
               std::invalid_argument);
}

TEST(SchedulerSpec, MakeRejectsBadParameters) {
  // Unknown key for the policy.
  EXPECT_THROW(SchedulerSpec::parse("poisson:p=0.5").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("synchronous:p=0.5").make(),
               std::invalid_argument);
  // Malformed values (the satellite case: a typo must not silently fall
  // back to a default).
  EXPECT_THROW(SchedulerSpec::parse("partial-async:p=abc").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("adversarial:stream=-3").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("adversarial:victims=1+x").make(),
               std::invalid_argument);
  // Out-of-range values surface the underlying scheduler's validation.
  EXPECT_THROW(SchedulerSpec::parse("partial-async:p=1.5").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("poisson:rate=0").make(),
               std::invalid_argument);
  // The adaptive-adversary and batched parameters validate the same way.
  EXPECT_THROW(SchedulerSpec::parse("adversarial:phase=warp-drive").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("adversarial:phase=unknown").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("adversarial:budget=-1").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("adversarial:budget=soon").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("batched:block=0").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("batched:block=abc").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("batched:p=0.5").make(),
               std::invalid_argument);
  // Activation-based policies still have no sharded round.
  EXPECT_THROW(SchedulerSpec::parse("adversarial:shards=4").make(),
               std::invalid_argument);
  // The wasted= knob accepts exactly keep|skip, on exactly the sampling
  // policies that own a wakeable pool.
  EXPECT_THROW(SchedulerSpec::parse("sequential:wasted=banana").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("sequential:wasted=").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("adversarial:wasted=true").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("synchronous:wasted=skip").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("poisson:wasted=skip").make(),
               std::invalid_argument);
}

TEST(SchedulerSpec, StepsPerRoundExchangeRate) {
  const std::uint32_t n = 64;
  EXPECT_EQ(SchedulerSpec::synchronous().steps_per_round(n), 1u);
  EXPECT_EQ(SchedulerSpec::sequential().steps_per_round(n), 64u);
  EXPECT_EQ(SchedulerSpec::poisson().steps_per_round(n), 64u);
  EXPECT_EQ(SchedulerSpec::adversarial({}).steps_per_round(n), 64u);
  EXPECT_EQ(SchedulerSpec::partial_async(1.0).steps_per_round(n), 1u);
  EXPECT_EQ(SchedulerSpec::partial_async(0.25).steps_per_round(n), 4u);
  // One batched rotation (B sub-steps) is a round; blocks clamp to n.
  EXPECT_EQ(SchedulerSpec::batched(8).steps_per_round(n), 8u);
  EXPECT_EQ(SchedulerSpec::batched(1).steps_per_round(n), 1u);
  EXPECT_EQ(SchedulerSpec::batched(200).steps_per_round(n), 64u);
}

TEST(SchedulerSpec, ActivationBasedClassifiesEventCost) {
  EXPECT_FALSE(SchedulerSpec::synchronous().activation_based());
  EXPECT_FALSE(SchedulerSpec::partial_async(0.1).activation_based());
  EXPECT_FALSE(SchedulerSpec::batched(4).activation_based());
  EXPECT_TRUE(SchedulerSpec::sequential().activation_based());
  EXPECT_TRUE(SchedulerSpec::adversarial({}).activation_based());
  EXPECT_TRUE(SchedulerSpec::poisson().activation_based());
}

TEST(SchedulerSpec, WhitespaceIsTolerated) {
  const auto spec = SchedulerSpec::parse("partial-async: p = 0.25");
  EXPECT_EQ(spec.to_string(), "partial-async:p=0.25");
}

TEST(SchedulerSpec, DescribeRegistryListsEveryPolicy) {
  const auto text = SchedulerSpec::describe_registry();
  for (const auto& name : SchedulerSpec::registered_policies()) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(SchedulerSpec, RegistryIsOpenForExtension) {
  // An out-of-tree policy becomes parseable, buildable, and listed without
  // touching any run entry point.
  SchedulerSpec::register_policy(
      "test-roundrobin",
      {[](const SchedulerSpec&) { return make_adversarial_scheduler(
           {.victim_fraction = 0.0}); },
       [](std::uint32_t n, const SchedulerSpec&) -> std::uint64_t {
         return n;
       },
       {},
       "deterministic seeded round-robin (test-only)"});
  const auto spec = SchedulerSpec::parse("test-roundrobin");
  EXPECT_EQ(spec.steps_per_round(8), 8u);
  EXPECT_STREQ(spec.make()->name(), "adversarial");
  const auto names = SchedulerSpec::registered_policies();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-roundrobin"),
            names.end());
  EXPECT_THROW(SchedulerSpec::register_policy("bad:name", {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rfc::sim
