// Shared end-state digest helpers for the equivalence suites.
//
// A run digest FNV-1a-hashes everything the equivalence contracts pin:
// the run outcome, every Metrics field (bit patterns, not approximations),
// and the per-agent end state — for Protocol P including the wire-encoded
// certificates, so "identical" means identical at the bit level.  The
// pinned constants in the tests were captured from the pre-SoA engine
// (PR 7 tree) and must never change: any engine-core refactor has to
// reproduce them exactly (same RNG stream consumption, same metrics,
// same end state).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>

#include "core/protocol_agent.hpp"
#include "core/runner.hpp"
#include "core/wire.hpp"
#include "gossip/rumor.hpp"
#include "net/state_digest.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace rfc::testing {

inline void mix_double(net::Fnv1a& fnv, double value) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  fnv.mix_u64(bits);
}

inline void mix_metrics(net::Fnv1a& fnv, const sim::Metrics& m) noexcept {
  fnv.mix_u64(m.rounds);
  mix_double(fnv, m.virtual_time);
  fnv.mix_u64(m.pushes);
  fnv.mix_u64(m.pull_requests);
  fnv.mix_u64(m.pull_replies);
  fnv.mix_u64(m.total_bits);
  fnv.mix_u64(m.max_message_bits);
  fnv.mix_u64(m.active_links);
  fnv.mix_u64(m.denials);
}

/// Pre-run hook: lets a test retune the engine (e.g. force the
/// cache-blocked delivery path at tiny n) before the run starts.
using EngineConfigureHook = std::function<void(sim::Engine&)>;

/// Runs a rumor spread and digests result + metrics + every agent's state.
inline std::uint64_t rumor_end_state_digest(
    const gossip::SpreadConfig& cfg,
    const EngineConfigureHook& configure = {}) {
  auto engine = gossip::build_spread_engine(cfg);
  if (configure) configure(*engine);
  const gossip::SpreadResult res =
      gossip::run_rumor_spreading_on(*engine, cfg);
  net::Fnv1a fnv;
  fnv.mix_bool(res.complete);
  fnv.mix_u64(res.rounds);
  mix_double(fnv, res.virtual_time);
  mix_metrics(fnv, res.metrics);
  for (sim::AgentId u = 0; u < cfg.n; ++u) {
    fnv.mix_u64(u);
    fnv.mix_bool(engine->is_faulty(u));
    fnv.mix_bool(
        static_cast<const gossip::RumorAgent&>(engine->agent(u)).informed());
  }
  return fnv.value();
}

/// Runs Protocol P and digests outcome + metrics + every agent's end state,
/// with certificates hashed through their checked wire encoding.
inline std::uint64_t protocol_end_state_digest(
    const core::RunConfig& cfg, const EngineConfigureHook& configure = {}) {
  auto engine = core::build_protocol_engine(cfg);
  if (configure) configure(*engine);
  const core::RunResult res = core::run_protocol_on(*engine, cfg);
  const core::ProtocolParams params =
      core::ProtocolParams::make(cfg.n, cfg.gamma, cfg.strict_verification);
  const auto mix_certificate = [&params](net::Fnv1a& fnv,
                                         const core::Certificate& cert) {
    core::BitWriter w;
    core::encode_certificate(w, params, cert);
    fnv.mix_u64(w.bit_count());
    fnv.mix_bytes(w.bytes().data(), w.bytes().size());
  };
  net::Fnv1a fnv;
  fnv.mix_u64(static_cast<std::uint64_t>(res.winner));
  fnv.mix_u64(res.winner_agent);
  fnv.mix_u64(res.rounds);
  fnv.mix_u64(res.num_active);
  fnv.mix_u64(res.honest_failures);
  fnv.mix_u64(res.max_local_memory_bits);
  mix_metrics(fnv, res.metrics);
  for (sim::AgentId u = 0; u < cfg.n; ++u) {
    fnv.mix_u64(u);
    fnv.mix_bool(engine->is_faulty(u));
    const auto& p =
        static_cast<const core::ProtocolAgent&>(engine->agent(u));
    fnv.mix_bool(p.failed());
    fnv.mix_bool(p.decided());
    fnv.mix_u64(static_cast<std::uint64_t>(p.decision()));
    fnv.mix_bool(p.has_own_certificate());
    if (p.has_own_certificate()) mix_certificate(fnv, p.own_certificate());
    fnv.mix_bool(p.has_min_certificate());
    if (p.has_min_certificate()) mix_certificate(fnv, p.min_certificate());
  }
  return fnv.value();
}

}  // namespace rfc::testing
