// Tests of the synchronous GOSSIP engine: round phases, snapshot semantics,
// fault silence, message accounting, and determinism.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace rfc::sim {
namespace {

constexpr PayloadTag kNumberTag = 0xF0;

Payload number_payload(std::uint64_t v, std::uint64_t bits = 32) {
  return Payload::inline_words(kNumberTag, bits, v);
}

/// Scripted agent: performs a fixed list of actions, records every event.
class ScriptedAgent final : public Agent {
 public:
  std::vector<Action> script;
  std::uint64_t counter_value = 0;  ///< Served to pulls; bumped on replies.
  std::vector<std::pair<AgentId, std::uint64_t>> pushes_seen;
  std::vector<std::pair<AgentId, bool>> pull_replies_seen;
  std::vector<AgentId> pull_requesters_seen;
  bool is_done = false;

  Action on_round(const Context& ctx) override {
    if (ctx.round < script.size()) return script[ctx.round];
    return Action::idle();
  }
  Payload serve_pull(const Context&, AgentId requester) override {
    pull_requesters_seen.push_back(requester);
    return number_payload(counter_value);
  }
  void on_pull_reply(const Context&, AgentId target,
                     const Payload& reply) override {
    pull_replies_seen.emplace_back(target, !reply.empty());
    if (!reply.empty()) counter_value = reply.word(0) + 100;
  }
  void on_push(const Context&, AgentId sender,
               const Payload& payload) override {
    pushes_seen.emplace_back(sender, payload.word(0));
  }
  bool done() const override { return is_done; }
};

ScriptedAgent* install(Engine& engine, AgentId id) {
  auto agent = std::make_unique<ScriptedAgent>();
  ScriptedAgent* ptr = agent.get();
  engine.set_agent(id, std::move(agent));
  return ptr;
}

TEST(Engine, RejectsZeroAgents) {
  EXPECT_THROW(Engine({0, 1}), std::invalid_argument);
}

TEST(Engine, PushIsDeliveredSameRound) {
  Engine engine({2, 1});
  auto* a = install(engine, 0);
  auto* b = install(engine, 1);
  a->script = {Action::push(1, number_payload(7))};
  engine.step();
  ASSERT_EQ(b->pushes_seen.size(), 1u);
  EXPECT_EQ(b->pushes_seen[0], (std::pair<AgentId, std::uint64_t>{0, 7}));
  EXPECT_EQ(engine.metrics().pushes, 1u);
}

TEST(Engine, PullGetsReplyAndRequesterIsAuthentic) {
  Engine engine({2, 1});
  auto* a = install(engine, 0);
  auto* b = install(engine, 1);
  b->counter_value = 55;
  a->script = {Action::pull(1)};
  engine.step();
  ASSERT_EQ(a->pull_replies_seen.size(), 1u);
  EXPECT_EQ(a->pull_replies_seen[0].first, 1u);
  EXPECT_TRUE(a->pull_replies_seen[0].second);
  EXPECT_EQ(a->counter_value, 155u);  // 55 + 100.
  ASSERT_EQ(b->pull_requesters_seen.size(), 1u);
  EXPECT_EQ(b->pull_requesters_seen[0], 0u);
}

TEST(Engine, PullServesRoundStartState) {
  // a pulls b while b pulls c: b's reply to a must reflect b's value
  // *before* b's own pull reply mutates it.
  Engine engine({3, 1});
  auto* a = install(engine, 0);
  auto* b = install(engine, 1);
  auto* c = install(engine, 2);
  b->counter_value = 10;
  c->counter_value = 20;
  a->script = {Action::pull(1)};
  b->script = {Action::pull(2)};
  engine.step();
  EXPECT_EQ(a->counter_value, 110u);  // Saw b's round-start 10.
  EXPECT_EQ(b->counter_value, 120u);  // Saw c's 20.
}

TEST(Engine, FaultyAgentsAreSilentAndReceiveNothing) {
  Engine engine({2, 1});
  auto* a = install(engine, 0);
  auto* b = install(engine, 1);
  engine.set_faulty(1);
  a->script = {Action::pull(1), Action::push(1, number_payload(3))};
  engine.step();
  ASSERT_EQ(a->pull_replies_seen.size(), 1u);
  EXPECT_FALSE(a->pull_replies_seen[0].second);  // Silence.
  engine.step();
  EXPECT_TRUE(b->pushes_seen.empty());
  EXPECT_TRUE(b->pull_requesters_seen.empty());
  // The faulty node performed no active operation either.
  EXPECT_EQ(engine.metrics().active_links, 2u);  // Only a's two actions.
}

TEST(Engine, FaultPlanLockedAfterStart) {
  Engine engine({2, 1});
  install(engine, 0);
  install(engine, 1);
  engine.step();
  EXPECT_THROW(engine.set_faulty(0), std::logic_error);
}

TEST(Engine, FaultPlanSizeChecked) {
  Engine engine({2, 1});
  EXPECT_THROW(engine.apply_fault_plan({true}), std::invalid_argument);
}

TEST(Engine, NumActiveTracksFaults) {
  Engine engine({5, 1});
  for (AgentId i = 0; i < 5; ++i) install(engine, i);
  engine.apply_fault_plan({true, false, true, false, false});
  EXPECT_EQ(engine.num_faulty(), 2u);
  EXPECT_EQ(engine.num_active(), 3u);
}

TEST(Engine, MessageAccountingExact) {
  Engine engine({2, 1});
  auto* a = install(engine, 0);
  install(engine, 1);
  a->script = {Action::push(1, number_payload(1, 128)), Action::pull(1)};
  engine.step();
  EXPECT_EQ(engine.metrics().pushes, 1u);
  EXPECT_EQ(engine.metrics().total_bits, 128u);
  EXPECT_EQ(engine.metrics().max_message_bits, 128u);
  engine.step();
  // Pull: request header (1 bit for n=2) + 32-bit reply.
  EXPECT_EQ(engine.metrics().pull_requests, 1u);
  EXPECT_EQ(engine.metrics().pull_replies, 1u);
  EXPECT_EQ(engine.metrics().total_bits, 128u + engine.pull_request_bits() + 32u);
  EXPECT_EQ(engine.metrics().messages(), 3u);
}

TEST(Engine, RunStopsWhenAllActiveDone) {
  Engine engine({3, 1});
  auto* a = install(engine, 0);
  auto* b = install(engine, 1);
  auto* c = install(engine, 2);
  engine.set_faulty(2);
  c->is_done = false;  // Faulty: ignored by the done-check.
  a->is_done = true;
  b->is_done = true;
  EXPECT_EQ(engine.run(100), 0u);
  EXPECT_TRUE(engine.all_done());
}

TEST(Engine, RunRespectsMaxRounds) {
  Engine engine({1, 1});
  install(engine, 0);  // Never done.
  EXPECT_EQ(engine.run(17), 17u);
  EXPECT_EQ(engine.metrics().rounds, 17u);
}

TEST(Engine, SelfPullWorks) {
  Engine engine({1, 1});
  auto* a = install(engine, 0);
  a->counter_value = 5;
  a->script = {Action::pull(0)};
  engine.step();
  EXPECT_EQ(a->counter_value, 105u);
}

TEST(Engine, RoundObserverInvokedEachRound) {
  Engine engine({1, 1});
  install(engine, 0);
  int calls = 0;
  engine.set_round_observer([&calls](const Engine&) { ++calls; });
  engine.run(5);
  EXPECT_EQ(calls, 5);
}

TEST(Engine, MissingAgentThrows) {
  Engine engine({2, 1});
  install(engine, 0);
  EXPECT_THROW(engine.step(), std::logic_error);
}

TEST(Engine, PerAgentRngStreamsDiffer) {
  Engine engine({2, 99});
  // Two agents pulling "random" peers must not mirror each other; check by
  // comparing the raw streams the engine would hand them.
  rfc::support::Xoshiro256 r0(rfc::support::derive_seed(99, 0));
  rfc::support::Xoshiro256 r1(rfc::support::derive_seed(99, 1));
  EXPECT_NE(r0.next(), r1.next());
}

}  // namespace
}  // namespace rfc::sim
