// Pull-based min-aggregation: the Find-Min communication skeleton.
#include "gossip/min_aggregation.hpp"

#include <gtest/gtest.h>

#include "support/math_util.hpp"

namespace rfc::gossip {
namespace {

TEST(MinAggregation, ConvergesWithGenerousBudget) {
  MinAggConfig cfg;
  cfg.n = 512;
  cfg.rounds = rfc::support::round_count(4.0, cfg.n);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cfg.seed = seed;
    const auto result = run_min_aggregation(cfg);
    EXPECT_TRUE(result.converged) << "seed " << seed;
  }
}

TEST(MinAggregation, ZeroRoundsDoesNotConverge) {
  MinAggConfig cfg;
  cfg.n = 64;
  cfg.rounds = 0;
  cfg.seed = 3;
  const auto result = run_min_aggregation(cfg);
  // With 64 distinct random inputs, no-communication agreement is
  // impossible.
  EXPECT_FALSE(result.converged);
}

TEST(MinAggregation, SingleAgentTriviallyConverged) {
  MinAggConfig cfg;
  cfg.n = 1;
  cfg.rounds = 0;
  const auto result = run_min_aggregation(cfg);
  EXPECT_TRUE(result.converged);
}

TEST(MinAggregation, GlobalMinExcludesFaultyInputs) {
  // With faults, convergence is to the min over *active* agents.
  MinAggConfig cfg;
  cfg.n = 256;
  cfg.rounds = rfc::support::round_count(6.0, cfg.n);
  cfg.num_faulty = 128;
  cfg.placement = sim::FaultPlacement::kRandom;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    const auto result = run_min_aggregation(cfg);
    EXPECT_TRUE(result.converged) << "seed " << seed;
  }
}

TEST(MinAggregation, BudgetMonotonicity) {
  // If the process converged with budget q, it stays converged with q' > q
  // (value sets only shrink toward the min).  Check statistically: the
  // convergence rate with double budget is at least as high.
  int small_ok = 0, large_ok = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    MinAggConfig cfg;
    cfg.n = 128;
    cfg.seed = seed;
    cfg.rounds = 3;
    if (run_min_aggregation(cfg).converged) ++small_ok;
    cfg.rounds = 30;
    if (run_min_aggregation(cfg).converged) ++large_ok;
  }
  EXPECT_GE(large_ok, small_ok);
  EXPECT_EQ(large_ok, 20);
}

TEST(MinAggregation, MetricsCountPullsOnly) {
  MinAggConfig cfg;
  cfg.n = 32;
  cfg.rounds = 4;
  const auto result = run_min_aggregation(cfg);
  EXPECT_EQ(result.metrics.pushes, 0u);
  EXPECT_EQ(result.metrics.pull_requests, 32u * 4u);
}

}  // namespace
}  // namespace rfc::gossip
