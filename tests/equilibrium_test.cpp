#include "analysis/equilibrium.hpp"

#include <gtest/gtest.h>

namespace rfc::analysis {
namespace {

DeviationConfig base_config(rational::DeviationStrategy s,
                            std::uint32_t t = 8) {
  DeviationConfig cfg;
  cfg.n = 64;
  cfg.gamma = 4.0;
  cfg.coalition_size = t;
  cfg.strategy = s;
  cfg.seed = 321;
  return cfg;
}

TEST(Equilibrium, HonestControlMatchesFairShare) {
  const auto report =
      measure_deviation(base_config(rational::DeviationStrategy::kHonest),
                        200);
  EXPECT_EQ(report.trials, 200u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_DOUBLE_EQ(report.fair_share, 8.0 / 64.0);
  EXPECT_TRUE(report.win_ci().contains(report.fair_share));
  EXPECT_TRUE(report.equilibrium_holds());
}

TEST(Equilibrium, UtilityAccountsForFailures) {
  DeviationReport r;
  r.trials = 100;
  r.coalition_wins = 20;
  r.failures = 50;
  EXPECT_DOUBLE_EQ(r.win_rate(), 0.2);
  EXPECT_DOUBLE_EQ(r.fail_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.utility(0.0), 0.2);
  EXPECT_DOUBLE_EQ(r.utility(1.0), 0.2 - 0.5);
}

TEST(Equilibrium, ForgingNeverProfitsUnderStrictVerification) {
  for (const auto s : {rational::DeviationStrategy::kForgedEmptyCert,
                       rational::DeviationStrategy::kForgedCoalitionCert}) {
    const auto report = measure_deviation(base_config(s, 4), 60);
    EXPECT_TRUE(report.equilibrium_holds(0.05))
        << rational::to_string(s) << " win rate " << report.win_rate();
    // And the failures make the utility strictly worse than honesty.
    EXPECT_LT(report.utility(1.0), report.fair_share);
  }
}

TEST(Equilibrium, AblationDetectsTheLoophole) {
  auto cfg = base_config(rational::DeviationStrategy::kForgedCoalitionCert, 4);
  cfg.strict_verification = false;
  const auto report = measure_deviation(cfg, 60);
  // The harness must be able to *see* a broken protocol: without the
  // completeness check the coalition wins nearly every execution.
  EXPECT_GT(report.win_rate(), 0.9);
  EXPECT_FALSE(report.equilibrium_holds(0.05));
}

TEST(Equilibrium, WorksWithFaults) {
  auto cfg = base_config(rational::DeviationStrategy::kHonest, 4);
  cfg.gamma = 6.0;      // gamma(alpha) grows with the fault fraction.
  cfg.num_faulty = 16;  // Suffix placement: never overlaps the coalition.
  const auto report = measure_deviation(cfg, 100);
  EXPECT_DOUBLE_EQ(report.fair_share, 4.0 / 48.0);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_TRUE(report.win_ci().contains(report.fair_share));
}

TEST(Equilibrium, EveryStrategyHoldsAtSmallCoalition) {
  // The headline theorem, smoke-tested across the whole strategy library.
  for (const auto s : rational::all_deviation_strategies()) {
    const auto report = measure_deviation(base_config(s, 2), 40);
    EXPECT_TRUE(report.equilibrium_holds(0.12)) << rational::to_string(s);
  }
}

}  // namespace
}  // namespace rfc::analysis
