// Golden equivalence of the pluggable-scheduler engine with the
// pre-refactor engines.
//
// The two classes below are frozen, verbatim copies of the synchronous
// Engine and the AsyncEngine as they existed before the Scheduler split.
// The tests drive a reference engine and the unified Engine through the
// same workloads and assert *bit-identical* observable output — per-round
// message accounting, per-agent delivery state, and step counts — across
// multiple (n, seed, fault-plan, topology) configurations.  A smoke test
// additionally runs gossip::RumorAgent to completion under all four
// shipped schedulers.
#include <gtest/gtest.h>

#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "end_state_digest.hpp"
#include "gossip/rumor.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/scheduler.hpp"
#include "sim/scheduler_spec.hpp"
#include "support/math_util.hpp"

namespace rfc::sim {
namespace {

// --------------------------------------------------------------------------
// Reference: the pre-refactor synchronous Engine, frozen.
// --------------------------------------------------------------------------
class LegacySyncEngine {
 public:
  LegacySyncEngine(std::uint32_t n, std::uint64_t seed, TopologyPtr topology)
      : n_(n), seed_(seed), topology_(std::move(topology)) {
    if (n_ == 0) throw std::invalid_argument("n must be positive");
    agents_.resize(n_);
    faulty_.assign(n_, false);
    rngs_.reserve(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      rngs_.emplace_back(rfc::support::derive_seed(seed_, i));
    }
    actions_.resize(n_);
    pull_replies_.resize(n_);
  }

  void set_agent(AgentId id, std::unique_ptr<Agent> agent) {
    agents_.at(id) = std::move(agent);
  }
  void apply_fault_plan(const std::vector<bool>& plan) {
    for (std::uint32_t i = 0; i < n_; ++i) faulty_[i] = plan[i];
  }
  const Metrics& metrics() const noexcept { return metrics_; }
  const Agent& agent(AgentId id) const { return *agents_.at(id); }
  bool is_faulty(AgentId id) const { return faulty_.at(id); }
  std::uint64_t round() const noexcept { return round_; }

  void step() {
    if (!started_) {
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (!faulty_[i]) agents_[i]->on_start(make_context(i));
      }
      started_ = true;
    }
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (faulty_[i] || agents_[i]->done()) {
        actions_[i] = Action::idle();
        continue;
      }
      actions_[i] = agents_[i]->on_round(make_context(i));
      if (actions_[i].kind != ActionKind::kIdle) ++metrics_.active_links;
    }
    for (std::uint32_t i = 0; i < n_; ++i) {
      pull_replies_[i] = {};
      const Action& a = actions_[i];
      if (a.kind != ActionKind::kPull) continue;
      ++metrics_.pull_requests;
      metrics_.note_message(rfc::support::bit_width_for_domain(n_));
      const AgentId v = a.target;
      if (faulty_[v]) continue;
      Payload reply = agents_[v]->serve_pull(make_context(v), i);
      if (!reply.empty()) {
        ++metrics_.pull_replies;
        metrics_.note_message(reply.bit_size());
        pull_replies_[i] = std::move(reply);
      }
    }
    for (std::uint32_t i = 0; i < n_; ++i) {
      const Action& a = actions_[i];
      if (a.kind != ActionKind::kPull) continue;
      agents_[i]->on_pull_reply(make_context(i), a.target, pull_replies_[i]);
      pull_replies_[i] = {};
    }
    for (std::uint32_t i = 0; i < n_; ++i) {
      const Action& a = actions_[i];
      if (a.kind != ActionKind::kPush) continue;
      ++metrics_.pushes;
      metrics_.note_message(a.payload.bit_size());
      const AgentId v = a.target;
      if (!faulty_[v]) agents_[v]->on_push(make_context(v), i, a.payload);
    }
    ++round_;
    metrics_.rounds = round_;
  }

 private:
  Context make_context(AgentId id) noexcept {
    Context ctx;
    ctx.self = id;
    ctx.n = n_;
    ctx.round = round_;
    ctx.rng = &rngs_[id];
    ctx.topology = topology_.get();
    return ctx;
  }

  std::uint32_t n_;
  std::uint64_t seed_;
  TopologyPtr topology_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<bool> faulty_;
  std::vector<rfc::support::Xoshiro256> rngs_;
  std::uint64_t round_ = 0;
  bool started_ = false;
  Metrics metrics_;
  std::vector<Action> actions_;
  std::vector<Payload> pull_replies_;
};

// --------------------------------------------------------------------------
// Reference: the pre-refactor AsyncEngine (one u.a.r. wake per step), frozen.
// --------------------------------------------------------------------------
class LegacySequentialEngine {
 public:
  LegacySequentialEngine(std::uint32_t n, std::uint64_t seed,
                         TopologyPtr topology)
      : n_(n),
        topology_(std::move(topology)),
        scheduler_rng_(rfc::support::derive_seed(seed, 0xA57Cu)) {
    agents_.resize(n_);
    faulty_.assign(n_, false);
    rngs_.reserve(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      rngs_.emplace_back(rfc::support::derive_seed(seed, i));
    }
  }

  void set_agent(AgentId id, std::unique_ptr<Agent> agent) {
    agents_.at(id) = std::move(agent);
  }
  void set_faulty(AgentId id) { faulty_.at(id) = true; }
  const Metrics& metrics() const noexcept { return metrics_; }
  const Agent& agent(AgentId id) const { return *agents_.at(id); }
  bool is_faulty(AgentId id) const { return faulty_.at(id); }
  std::uint64_t steps() const noexcept { return steps_; }

  void step() {
    if (!started_) {
      active_.clear();
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (!faulty_[i]) {
          agents_[i]->on_start(make_context(i));
          active_.push_back(i);
        }
      }
      started_ = true;
      if (active_.empty()) return;
    }
    const AgentId u = active_[scheduler_rng_.below(active_.size())];
    ++steps_;
    metrics_.rounds = steps_;
    if (agents_[u]->done()) return;
    const Action action = agents_[u]->on_round(make_context(u));
    switch (action.kind) {
      case ActionKind::kIdle:
        return;
      case ActionKind::kPull: {
        ++metrics_.active_links;
        ++metrics_.pull_requests;
        metrics_.note_message(rfc::support::bit_width_for_domain(n_));
        const AgentId v = action.target;
        Payload reply;
        if (!faulty_[v]) reply = agents_[v]->serve_pull(make_context(v), u);
        if (!reply.empty()) {
          ++metrics_.pull_replies;
          metrics_.note_message(reply.bit_size());
        }
        agents_[u]->on_pull_reply(make_context(u), action.target, reply);
        return;
      }
      case ActionKind::kPush: {
        ++metrics_.active_links;
        ++metrics_.pushes;
        metrics_.note_message(action.payload.bit_size());
        const AgentId v = action.target;
        if (!faulty_[v]) agents_[v]->on_push(make_context(v), u, action.payload);
        return;
      }
    }
  }

 private:
  Context make_context(AgentId id) noexcept {
    Context ctx;
    ctx.self = id;
    ctx.n = n_;
    ctx.round = steps_;
    ctx.rng = &rngs_[id];
    ctx.topology = topology_.get();
    return ctx;
  }

  std::uint32_t n_;
  TopologyPtr topology_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<bool> faulty_;
  std::vector<rfc::support::Xoshiro256> rngs_;
  std::vector<AgentId> active_;
  rfc::support::Xoshiro256 scheduler_rng_;
  std::uint64_t steps_ = 0;
  bool started_ = false;
  Metrics metrics_;
};

// --------------------------------------------------------------------------
// Harness
// --------------------------------------------------------------------------

struct EquivalenceConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  gossip::Mechanism mechanism = gossip::Mechanism::kPushPull;
  std::uint32_t num_faulty = 0;
  FaultPlacement placement = FaultPlacement::kNone;
  TopologyPtr topology;
  std::uint64_t rumor_bits = 48;
};

std::vector<bool> fault_plan_for(const EquivalenceConfig& cfg) {
  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  return make_fault_plan(cfg.placement, cfg.n, cfg.num_faulty, fault_rng);
}

template <typename EngineT>
void install_rumor_agents(EngineT& engine, const EquivalenceConfig& cfg,
                          const std::vector<bool>& plan) {
  bool placed_source = false;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    const bool informed = !plan[i] && !placed_source;
    if (informed) placed_source = true;
    engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                            cfg.mechanism, informed, cfg.rumor_bits));
  }
}

void expect_metrics_equal(const Metrics& a, const Metrics& b,
                          std::uint64_t at_time) {
  EXPECT_EQ(a.rounds, b.rounds) << "t=" << at_time;
  EXPECT_EQ(a.pushes, b.pushes) << "t=" << at_time;
  EXPECT_EQ(a.pull_requests, b.pull_requests) << "t=" << at_time;
  EXPECT_EQ(a.pull_replies, b.pull_replies) << "t=" << at_time;
  EXPECT_EQ(a.total_bits, b.total_bits) << "t=" << at_time;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "t=" << at_time;
  EXPECT_EQ(a.active_links, b.active_links) << "t=" << at_time;
  EXPECT_EQ(a.denials, b.denials) << "t=" << at_time;
}

template <typename ReferenceT>
void expect_informed_equal(const ReferenceT& reference, const Engine& engine,
                           std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const bool ref_informed =
        static_cast<const gossip::RumorAgent&>(reference.agent(i)).informed();
    const bool new_informed =
        static_cast<const gossip::RumorAgent&>(engine.agent(i)).informed();
    EXPECT_EQ(ref_informed, new_informed) << "agent " << i;
  }
}

/// Drives the frozen synchronous engine and the unified Engine (default
/// scheduler) through `rounds` lock-step rounds, comparing the full metric
/// trace after every round and the delivery state at the end.
void expect_synchronous_bit_identical(const EquivalenceConfig& cfg,
                                      std::uint64_t rounds) {
  const std::vector<bool> plan = fault_plan_for(cfg);

  LegacySyncEngine reference(cfg.n, cfg.seed, cfg.topology);
  reference.apply_fault_plan(plan);
  install_rumor_agents(reference, cfg, plan);

  Engine engine({cfg.n, cfg.seed, cfg.topology});
  engine.apply_fault_plan(plan);
  install_rumor_agents(engine, cfg, plan);

  for (std::uint64_t r = 0; r < rounds; ++r) {
    reference.step();
    engine.step();
    expect_metrics_equal(reference.metrics(), engine.metrics(), r);
  }
  EXPECT_EQ(reference.round(), engine.round());
  expect_informed_equal(reference, engine, cfg.n);
}

/// Same, for the frozen AsyncEngine vs Engine + SequentialScheduler over
/// `steps` sequential activations.
void expect_sequential_bit_identical(const EquivalenceConfig& cfg,
                                     std::uint64_t steps) {
  const std::vector<bool> plan = fault_plan_for(cfg);

  LegacySequentialEngine reference(cfg.n, cfg.seed, cfg.topology);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (plan[i]) reference.set_faulty(i);
  }
  install_rumor_agents(reference, cfg, plan);

  Engine engine(
      {cfg.n, cfg.seed, cfg.topology, make_sequential_scheduler()});
  engine.apply_fault_plan(plan);
  install_rumor_agents(engine, cfg, plan);

  for (std::uint64_t s = 0; s < steps; ++s) {
    reference.step();
    engine.step();
    expect_metrics_equal(reference.metrics(), engine.metrics(), s);
  }
  EXPECT_EQ(reference.steps(), engine.steps());
  expect_informed_equal(reference, engine, cfg.n);
}

// --------------------------------------------------------------------------
// Configurations: at least three distinct (n, seed, fault-plan) points, one
// with a non-complete topology.
// --------------------------------------------------------------------------

TEST(SchedulerEquivalence, SynchronousMatchesLegacyNoFaults) {
  EquivalenceConfig cfg;
  cfg.n = 64;
  cfg.seed = 7;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  expect_synchronous_bit_identical(cfg, 48);
}

TEST(SchedulerEquivalence, SynchronousMatchesLegacyRandomFaults) {
  EquivalenceConfig cfg;
  cfg.n = 97;
  cfg.seed = 1234;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.num_faulty = 20;
  cfg.placement = FaultPlacement::kRandom;
  expect_synchronous_bit_identical(cfg, 64);
}

TEST(SchedulerEquivalence, SynchronousMatchesLegacyPrefixFaultsOnRing) {
  EquivalenceConfig cfg;
  cfg.n = 80;
  cfg.seed = 99;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.num_faulty = 10;
  cfg.placement = FaultPlacement::kPrefix;
  cfg.topology = make_ring(80, 2);
  expect_synchronous_bit_identical(cfg, 96);
}

TEST(SchedulerEquivalence, SequentialMatchesLegacyNoFaults) {
  EquivalenceConfig cfg;
  cfg.n = 64;
  cfg.seed = 11;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  expect_sequential_bit_identical(cfg, 4000);
}

TEST(SchedulerEquivalence, SequentialMatchesLegacyRandomFaults) {
  EquivalenceConfig cfg;
  cfg.n = 96;
  cfg.seed = 2025;
  cfg.mechanism = gossip::Mechanism::kPull;
  cfg.num_faulty = 24;
  cfg.placement = FaultPlacement::kRandom;
  expect_sequential_bit_identical(cfg, 6000);
}

TEST(SchedulerEquivalence, SequentialMatchesLegacyStepCountToCompletion) {
  // Run both engines to rumor completion under the same chunked drive loop
  // and require the *exact* same number of steps.
  const std::uint32_t n = 72;
  EquivalenceConfig cfg;
  cfg.n = n;
  cfg.seed = 5;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  const std::vector<bool> plan = fault_plan_for(cfg);

  LegacySequentialEngine reference(n, cfg.seed, nullptr);
  install_rumor_agents(reference, cfg, plan);
  Engine engine({n, cfg.seed, nullptr, make_sequential_scheduler()});
  install_rumor_agents(engine, cfg, plan);

  const auto all_informed = [&](auto& eng) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!static_cast<const gossip::RumorAgent&>(eng.agent(i)).informed()) {
        return false;
      }
    }
    return true;
  };
  const std::uint64_t cap = 100'000;
  while (reference.steps() < cap && !all_informed(reference)) {
    reference.step();
  }
  while (engine.steps() < cap && !all_informed(engine)) engine.step();

  ASSERT_TRUE(all_informed(reference));
  EXPECT_EQ(reference.steps(), engine.steps());
  expect_metrics_equal(reference.metrics(), engine.metrics(),
                       reference.steps());
}

// --------------------------------------------------------------------------
// Smoke: every shipped scheduler runs RumorAgent to completion.
// --------------------------------------------------------------------------

bool spread_completes(SchedulerPtr scheduler, std::uint64_t cap) {
  const std::uint32_t n = 64;
  Engine engine({n, 21, nullptr, std::move(scheduler)});
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<gossip::RumorAgent>(
                            gossip::Mechanism::kPushPull, i == 0, 32));
  }
  const auto all_informed = [&] {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!static_cast<const gossip::RumorAgent&>(engine.agent(i))
               .informed()) {
        return false;
      }
    }
    return true;
  };
  while (engine.round() < cap && !all_informed()) engine.step();
  return all_informed();
}

TEST(SchedulerSmoke, SynchronousRunsRumorToCompletion) {
  EXPECT_TRUE(spread_completes(make_synchronous_scheduler(), 1'000));
}

TEST(SchedulerSmoke, SequentialRunsRumorToCompletion) {
  EXPECT_TRUE(spread_completes(make_sequential_scheduler(), 200'000));
}

TEST(SchedulerSmoke, PartialAsyncRunsRumorToCompletion) {
  EXPECT_TRUE(spread_completes(make_partial_async_scheduler(0.3), 10'000));
}

TEST(SchedulerSmoke, AdversarialRunsRumorToCompletion) {
  EXPECT_TRUE(spread_completes(
      make_adversarial_scheduler({.victim_fraction = 0.25}), 400'000));
}

// --------------------------------------------------------------------------
// Pinned pre-refactor digests: captured from the engine BEFORE the
// SoA/arena refactor.  They freeze the full observable run — outcome,
// every Metrics field, per-agent end state — under the activation-based
// schedulers at n ∈ {64, 4096}.  If these change, the refactored engine
// consumes a different RNG stream or produces different state: fix the
// engine, never the constants.
// --------------------------------------------------------------------------

std::uint64_t pinned_sched_digest(std::uint32_t n, const char* spec,
                                  std::uint64_t max_rounds) {
  gossip::SpreadConfig cfg;
  cfg.n = n;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 20260808;
  cfg.num_faulty = n / 8;
  cfg.placement = FaultPlacement::kRandom;
  cfg.scheduler = SchedulerSpec::parse(spec);
  cfg.max_rounds = max_rounds;
  return rfc::testing::rumor_end_state_digest(cfg);
}

TEST(SchedulerEquivalence, PinnedDigestsAtN64) {
  EXPECT_EQ(12715222893965880738ull,
            pinned_sched_digest(64, "synchronous", 10'000));
  EXPECT_EQ(2982810673277185428ull,
            pinned_sched_digest(64, "sequential", 200'000));
  EXPECT_EQ(43729312433838413ull,
            pinned_sched_digest(64, "partial-async:p=0.4", 10'000));
  EXPECT_EQ(12773505966425255158ull,
            pinned_sched_digest(64, "adversarial:victim_fraction=0.25",
                                400'000));
  EXPECT_EQ(2101983261708445093ull,
            pinned_sched_digest(64, "poisson", 200'000));
}

TEST(SchedulerEquivalence, PinnedDigestsAtN4096) {
  // Sequential needs Θ(n log n) activations at this size; the cap covers it.
  EXPECT_EQ(9461341282772828440ull,
            pinned_sched_digest(4096, "synchronous", 10'000));
  EXPECT_EQ(13871016384705893468ull,
            pinned_sched_digest(4096, "sequential", 2'000'000));
}

}  // namespace
}  // namespace rfc::sim
