// Property test for sim::Budget (generalizes run_until_test.cpp): for
// random (events, horizon) pairs, Engine::run(Budget) stops on whichever
// cap trips first, and a virtual-time horizon is overshot by at most one
// step increment — across a synchronous, a continuous-time (poisson), and
// a fractional-increment (batched) policy, whose step increments are 1,
// Exp(λ·n), and 1/B respectively.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/budget.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler_spec.hpp"
#include "support/rng.hpp"

namespace rfc::sim {
namespace {

class IdleForeverAgent final : public Agent {
 public:
  Action on_round(const Context&) override { return Action::idle(); }
  Payload serve_pull(const Context&, AgentId) override { return {}; }
  bool done() const override { return false; }
};

Engine idle_engine(std::uint32_t n, std::uint64_t seed,
                   const SchedulerSpec& spec) {
  Engine engine({n, seed, nullptr, spec.make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<IdleForeverAgent>());
  }
  return engine;
}

TEST(BudgetProperty, WhicheverCapTripsFirstEndsTheRun) {
  const std::uint32_t kN = 16;
  const std::vector<SchedulerSpec> specs = {
      SchedulerSpec::parse("synchronous"),
      SchedulerSpec::parse("poisson"),
      SchedulerSpec::parse("poisson:rate=3"),
      SchedulerSpec::parse("batched:block=3"),
      SchedulerSpec::parse("batched:block=7"),
  };
  rfc::support::Xoshiro256 rng(0xB0D6u);
  for (const auto& spec : specs) {
    for (int trial = 0; trial < 40; ++trial) {
      // Random budget shapes: events only, horizon only, or both.
      Budget budget;
      const auto shape = rng.below(3);
      if (shape != 1) budget.events = 1 + rng.below(400);
      if (shape != 0) budget.virtual_horizon = rng.uniform01() * 25.0;
      if (budget.unbounded()) continue;  // horizon drew ~0.0: nothing caps.

      Engine engine = idle_engine(kN, 1000 + trial, spec);
      // Record the virtual-time trace so the overshoot can be bounded by
      // the final step's increment.
      std::vector<double> trace;
      engine.set_round_observer([&trace](const Engine& e) {
        trace.push_back(e.virtual_time());
      });
      const std::uint64_t events = engine.run(budget);
      const std::string what =
          spec.to_string() + " events=" + std::to_string(budget.events) +
          " horizon=" + std::to_string(budget.virtual_horizon);

      ASSERT_EQ(events, trace.size()) << what;
      ASSERT_GT(events, 0u) << what;
      const double vt = engine.virtual_time();
      EXPECT_DOUBLE_EQ(vt, trace.back()) << what;

      // The run stopped because *some* cap tripped (idle agents are never
      // all done)...
      EXPECT_TRUE(budget.exhausted(events, vt)) << what;
      // ...and the event cap was never exceeded.
      if (budget.events != 0) {
        EXPECT_LE(events, budget.events) << what;
      }

      if (events < budget.events || budget.events == 0) {
        // The event cap did not trip, so the horizon did: every step but
        // the last *started* short of the horizon (the one-step-overshoot
        // contract), and one fewer step would have left the run short.
        ASSERT_GT(budget.virtual_horizon, 0.0) << what;
        EXPECT_GE(vt, budget.virtual_horizon) << what;
        const double before =
            events >= 2 ? trace[events - 2] : 0.0;
        EXPECT_LT(before, budget.virtual_horizon) << what;
      } else {
        // The event cap tripped exactly; any horizon must not have tripped
        // strictly earlier than the final step.
        EXPECT_EQ(events, budget.events) << what;
        if (budget.virtual_horizon > 0.0) {
          const double before =
              events >= 2 ? trace[events - 2] : 0.0;
          EXPECT_LT(before, budget.virtual_horizon) << what;
        }
      }

      // Resuming with the same budget is a no-op: the caps are totals, not
      // increments.
      EXPECT_EQ(engine.run(budget), events) << what;
    }
  }
}

TEST(BudgetProperty, BatchedHorizonNeverOvershootsByMoreThanOneSubStep) {
  // The sharpest version of the overshoot bound: batched increments are
  // exactly 1/B, so vt at stop lies in [horizon, horizon + 1/B).
  rfc::support::Xoshiro256 rng(0x60A1u);
  for (const std::uint32_t blocks : {2u, 3u, 5u}) {
    for (int trial = 0; trial < 20; ++trial) {
      const double horizon = 0.1 + rng.uniform01() * 10.0;
      Engine engine = idle_engine(
          10, 7 + trial,
          SchedulerSpec::parse("batched:block=" + std::to_string(blocks)));
      engine.run(Budget::until(horizon));
      const double vt = engine.virtual_time();
      EXPECT_GE(vt, horizon) << blocks << " " << horizon;
      EXPECT_LT(vt, horizon + 1.0 / blocks + 1e-12) << blocks << " "
                                                    << horizon;
    }
  }
}

}  // namespace
}  // namespace rfc::sim
