// Transport-frame hardening: every payload tag round-trips through the
// frame codec, and no truncation or mutation of a valid frame can crash the
// decoder — hostile input yields a structured core::WireError, never an
// assert, a throw, or an unbounded allocation.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/payloads.hpp"
#include "core/wire.hpp"
#include "gossip/rumor.hpp"
#include "net/wire_frame.hpp"
#include "support/rng.hpp"

namespace rfc::net {
namespace {

core::ProtocolParams params() { return core::ProtocolParams::make(300, 3.0); }

core::VoteIntention sample_intention(const core::ProtocolParams& p,
                                     std::uint64_t seed) {
  rfc::support::Xoshiro256 rng(seed);
  core::VoteIntention h(p.q);
  for (core::VoteEntry& e : h) {
    e.value = rng.below(p.m);
    e.target = static_cast<sim::AgentId>(rng.below(p.n));
  }
  return h;
}

core::Certificate sample_certificate(const core::ProtocolParams& p,
                                     std::uint64_t seed) {
  rfc::support::Xoshiro256 rng(seed);
  core::ReceivedVotes votes;
  for (std::uint32_t i = 0; i < 25; ++i) {
    votes.push_back({static_cast<sim::AgentId>(rng.below(p.n)),
                     static_cast<std::uint32_t>(rng.below(p.q)),
                     rng.below(p.m)});
  }
  return core::make_certificate(p, 17, 5, votes);
}

/// One representative payload per registered tag that has a wire form.
std::vector<sim::Payload> every_wire_payload(const core::ProtocolParams& p) {
  std::vector<sim::Payload> payloads;
  payloads.emplace_back();  // Empty (tag 0): the silent pull reply.
  payloads.push_back(gossip::make_rumor_payload(0xDEADBEEFu, 64));
  payloads.push_back(core::make_vote_payload(123456, p));
  payloads.push_back(core::make_digest_payload(0x0123456789ABCDEFull));
  payloads.push_back(core::make_intention_payload(sample_intention(p, 7), p));
  payloads.push_back(
      core::make_certificate_payload(sample_certificate(p, 8), p));
  // Async vote (0x28) is inline and travels generically; the test tag range
  // (0xF0..) stands in for any future inline payload.
  payloads.push_back(sim::Payload::inline_words(core::kAsyncVotePayloadTag,
                                                24, 42, 0, 0));
  payloads.push_back(sim::Payload::inline_words(0xF0, 17, 1, 2, 3));
  return payloads;
}

void expect_equal_payloads(const sim::Payload& got, const sim::Payload& want) {
  EXPECT_EQ(got.tag(), want.tag());
  EXPECT_EQ(got.bit_size(), want.bit_size());
  EXPECT_EQ(got.empty(), want.empty());
  if (const core::VoteIntention* h = core::intention_in(want)) {
    ASSERT_NE(core::intention_in(got), nullptr);
    EXPECT_EQ(*core::intention_in(got), *h);
    return;
  }
  if (const core::Certificate* c = core::certificate_in(want)) {
    ASSERT_NE(core::certificate_in(got), nullptr);
    EXPECT_EQ(*core::certificate_in(got), *c);
    return;
  }
  for (std::size_t i = 0; i < sim::Payload::kInlineWords; ++i) {
    EXPECT_EQ(got.word(i), want.word(i));
  }
}

TEST(PayloadWire, EveryTagRoundTrips) {
  const auto p = params();
  for (const sim::Payload& payload : every_wire_payload(p)) {
    core::BitWriter w;
    encode_payload(w, payload, &p);
    core::BitReader r(w.bytes(), w.bit_count());
    const auto decoded = decode_payload(r, &p);
    ASSERT_TRUE(decoded.ok()) << "tag " << payload.tag() << ": "
                              << core::to_string(decoded.error);
    expect_equal_payloads(*decoded.value, payload);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(PayloadWire, AsyncReplyBoxedTagHasNoWireForm) {
  // 0x29 is the sequential model's in-memory reply object; it must be
  // rejected on both sides, not silently mis-serialized.
  const auto p = params();
  const sim::Payload boxed =
      sim::Payload::make_boxed<int>(core::kAsyncReplyPayloadTag, 8, 5);
  core::BitWriter w;
  EXPECT_THROW(encode_payload(w, boxed, &p), std::invalid_argument);

  core::BitWriter raw;
  raw.write(core::kAsyncReplyPayloadTag, 16);
  core::BitReader r(raw.bytes(), raw.bit_count());
  const auto decoded = decode_payload(r, &p);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, core::WireError::kUnsupportedTag);
}

TEST(PayloadWire, ProtocolPayloadsNeedParams) {
  const auto p = params();
  const sim::Payload intention =
      core::make_intention_payload(sample_intention(p, 9), p);
  core::BitWriter w;
  EXPECT_THROW(encode_payload(w, intention, nullptr), std::invalid_argument);

  core::BitWriter raw;
  raw.write(core::kIntentionPayloadTag, 16);
  core::BitReader r(raw.bytes(), raw.bit_count());
  const auto decoded = decode_payload(r, nullptr);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, core::WireError::kUnsupportedTag);
}

/// Frames covering every FrameKind, payload-carrying ones over every
/// wire-encodable payload.
std::vector<Frame> every_frame(const core::ProtocolParams& p) {
  std::vector<Frame> frames;
  Frame status;
  status.kind = FrameKind::kRoundStatus;
  status.round = 12;
  status.complete = true;
  frames.push_back(status);
  for (const FrameKind mark : {FrameKind::kActionsDone,
                               FrameKind::kRepliesDone}) {
    Frame f;
    f.kind = mark;
    f.round = 12;
    f.count = 7;
    frames.push_back(f);
  }
  Frame pull;
  pull.kind = FrameKind::kPullRequest;
  pull.round = 12;
  pull.agent = 3;
  pull.target = 141;
  frames.push_back(pull);
  for (const sim::Payload& payload : every_wire_payload(p)) {
    for (const FrameKind kind : {FrameKind::kPullReply, FrameKind::kPush}) {
      Frame f;
      f.kind = kind;
      f.round = 12;
      f.agent = 5;
      f.target = 299;
      f.payload = payload;
      frames.push_back(f);
    }
  }
  return frames;
}

TEST(FrameCodec, EveryKindAndPayloadRoundTrips) {
  const auto p = params();
  const FrameCodec codec{p.n, &p};
  for (const Frame& frame : every_frame(p)) {
    const std::vector<std::uint8_t> bytes = codec.encode(frame);
    const auto decoded = codec.decode(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << to_string(frame.kind) << ": "
                              << core::to_string(decoded.error);
    EXPECT_EQ(decoded.value->kind, frame.kind);
    EXPECT_EQ(decoded.value->round, frame.round);
    EXPECT_EQ(decoded.value->agent, frame.agent);
    EXPECT_EQ(decoded.value->target, frame.target);
    EXPECT_EQ(decoded.value->complete, frame.complete);
    EXPECT_EQ(decoded.value->count, frame.count);
    expect_equal_payloads(decoded.value->payload, frame.payload);
  }
}

TEST(FrameCodec, RejectsBadMagicUnknownKindAndTrailingBytes) {
  const auto p = params();
  const FrameCodec codec{p.n, &p};
  Frame f;
  f.kind = FrameKind::kRoundStatus;
  std::vector<std::uint8_t> bytes = codec.encode(f);

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(codec.decode(bad_magic.data(), bad_magic.size()).error,
            core::WireError::kBadFrame);

  std::vector<std::uint8_t> bad_kind = bytes;
  bad_kind[1] = 0x7F;
  EXPECT_EQ(codec.decode(bad_kind.data(), bad_kind.size()).error,
            core::WireError::kBadFrame);

  std::vector<std::uint8_t> overlong = bytes;
  overlong.push_back(0);
  EXPECT_EQ(codec.decode(overlong.data(), overlong.size()).error,
            core::WireError::kBadFrame);
}

TEST(FrameCodec, RejectsOutOfRangeLabels) {
  const auto p = params();
  const FrameCodec codec{p.n, &p};
  Frame f;
  f.kind = FrameKind::kPullRequest;
  f.agent = p.n;  // One past the last valid label.
  f.target = 0;
  const std::vector<std::uint8_t> bytes = codec.encode(f);
  EXPECT_EQ(codec.decode(bytes.data(), bytes.size()).error,
            core::WireError::kRangeViolation);
}

TEST(FrameCodec, RejectsCertificateCountBomb) {
  // A hostile count prefix larger than n*q must be refused before any
  // reserve happens, not trusted as a vector length.
  const auto p = params();
  const FrameCodec codec{p.n, &p};
  core::BitWriter w;
  w.write(0xC5, 8);
  w.write(static_cast<std::uint64_t>(FrameKind::kPush), 8);
  w.write(0, 32);   // round
  w.write(1, 32);   // agent
  w.write(2, 32);   // target
  w.write(0, 8);    // complete
  w.write(0, 32);   // count
  w.write(core::kCertificatePayloadTag, 16);
  w.write(0, p.value_bits());  // k
  w.write((1ull << core::certificate_count_bits(p)) - 1,
          core::certificate_count_bits(p));
  const auto decoded = codec.decode(w.bytes().data(), w.bytes().size());
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, core::WireError::kCountOverflow);
}

TEST(FrameFuzz, EveryTruncationFailsStructurally) {
  const auto p = params();
  const FrameCodec codec{p.n, &p};
  for (const Frame& frame : every_frame(p)) {
    const std::vector<std::uint8_t> bytes = codec.encode(frame);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const auto decoded = codec.decode(bytes.data(), len);
      // A truncated prefix must never parse as the full frame; payload-free
      // kinds may still parse if only padding was cut, so only the error
      // kind (when present) is pinned.
      if (!decoded.ok()) {
        EXPECT_NE(decoded.error, core::WireError::kNone);
      }
    }
  }
}

TEST(FrameFuzz, RandomMutationsNeverCrashTheDecoder) {
  const auto p = params();
  const FrameCodec codec{p.n, &p};
  rfc::support::Xoshiro256 rng(20260808);
  const std::vector<Frame> frames = every_frame(p);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes =
        codec.encode(frames[rng.below(frames.size())]);
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    const auto decoded = codec.decode(bytes.data(), bytes.size());
    if (decoded.ok()) {
      // Whatever survived mutation must re-encode: the decoder may only
      // accept frames that are themselves well-formed.
      EXPECT_NO_THROW((void)codec.encode(*decoded.value));
    } else {
      EXPECT_NE(decoded.error, core::WireError::kNone);
    }
  }
}

TEST(FrameFuzz, RandomGarbageNeverCrashesTheDecoder) {
  const auto p = params();
  const FrameCodec codec{p.n, &p};
  rfc::support::Xoshiro256 rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.below(64));
    for (std::uint8_t& b : bytes) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto decoded = codec.decode(bytes.data(), bytes.size());
    if (!decoded.ok()) {
      EXPECT_NE(decoded.error, core::WireError::kNone);
    }
  }
}

}  // namespace
}  // namespace rfc::net
