// Property tests of the fairness guarantee (Theorem 4), parameterized over
// color configurations: the empirical winning distribution must match the
// initial histogram.
#include <gtest/gtest.h>

#include "analysis/fairness.hpp"
#include "core/runner.hpp"

namespace rfc::analysis {
namespace {

struct FairnessCase {
  const char* name;
  std::vector<double> fractions;  ///< Empty = leader election.
  std::uint32_t n;
};

class FairnessPropertyTest : public ::testing::TestWithParam<FairnessCase> {};

TEST_P(FairnessPropertyTest, ObservedSharesMatchInitialShares) {
  const FairnessCase& c = GetParam();
  core::RunConfig cfg;
  cfg.n = c.n;
  cfg.gamma = 4.0;
  cfg.seed = 1234;
  if (!c.fractions.empty()) {
    cfg.colors = core::split_colors(c.n, c.fractions);
  }
  const FairnessReport report = measure_fairness(cfg, 400);

  // "w.h.p." is not "always": a straggling Find-Min broadcast makes the
  // protocol fail safely (⊥, no unfair winner).  At gamma=4 this is rare.
  EXPECT_LE(report.failures, 4u);
  // Chi-square must not reject at a very conservative level.
  EXPECT_GT(report.chi.p_value, 1e-4) << "stat=" << report.chi.statistic;
  // Every color's initial share must sit inside a 99.9% interval around
  // its observed winning rate (the report's 95% CIs are for display; at a
  // fixed seed the occasional 95% miss is expected by construction).
  const std::uint64_t successes = report.trials - report.failures;
  for (const auto& share : report.shares) {
    const auto wide =
        rfc::support::wilson_interval(share.wins, successes, 3.29);
    EXPECT_TRUE(wide.contains(share.expected))
        << "color " << share.color << " observed " << share.observed
        << " expected " << share.expected;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ColorConfigurations, FairnessPropertyTest,
    ::testing::Values(
        FairnessCase{"balanced", {0.5, 0.5}, 96},
        FairnessCase{"skewed", {0.85, 0.15}, 96},
        FairnessCase{"three_way", {0.6, 0.3, 0.1}, 96},
        FairnessCase{"five_way", {0.3, 0.25, 0.2, 0.15, 0.1}, 100},
        FairnessCase{"leader_election", {}, 48}),
    [](const ::testing::TestParamInfo<FairnessCase>& info) {
      return info.param.name;
    });

TEST(Fairness, FaultyColorNeverWins) {
  // Kill every supporter of color 0: color 1 must always win.
  core::RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 5.0;
  cfg.seed = 77;
  cfg.colors = core::split_colors(cfg.n, {0.25, 0.75});
  cfg.num_faulty = 16;
  cfg.placement = sim::FaultPlacement::kPrefix;
  const FairnessReport report = measure_fairness(cfg, 100);
  EXPECT_EQ(report.failures, 0u);
  for (const auto& share : report.shares) {
    if (share.color == 1) {
      EXPECT_EQ(share.wins, 100u);
      EXPECT_DOUBLE_EQ(share.expected, 1.0);
    }
  }
}

TEST(Fairness, FairAmongSurvivorsUnderFaults) {
  // 50/50 split, half of each color killed: survivors still 50/50.
  core::RunConfig cfg;
  cfg.n = 96;
  cfg.gamma = 5.0;
  cfg.seed = 99;
  cfg.colors = core::split_colors(cfg.n, {0.5, 0.5});
  cfg.num_faulty = 32;
  cfg.placement = sim::FaultPlacement::kStride;
  const FairnessReport report = measure_fairness(cfg, 300);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.chi.p_value, 1e-4);
}

TEST(Fairness, ReportAggregatesCostStatistics) {
  core::RunConfig cfg;
  cfg.n = 64;
  cfg.gamma = 2.0;
  const FairnessReport report = measure_fairness(cfg, 20);
  EXPECT_EQ(report.rounds.count(), 20u);
  EXPECT_GT(report.total_bits.mean(), 0.0);
  EXPECT_GT(report.max_message_bits.mean(), 0.0);
}

}  // namespace
}  // namespace rfc::analysis
