// The adaptive half of the scheduler contract: EngineView observations
// (clocks, per-agent done/faulty/phase, shard geometry), the Agent::phase()
// hook implementations, the phase-aware adversary's starvation/budget
// semantics, and the batched-delivery rotation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/async_protocol.hpp"
#include "core/protocol_agent.hpp"
#include "core/runner.hpp"
#include "gossip/rumor.hpp"
#include "sim/engine.hpp"
#include "sim/engine_view.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::sim {
namespace {

/// Never-done agent with a pinned, externally controlled phase report.
class PhasedAgent final : public Agent {
 public:
  explicit PhasedAgent(AgentPhase phase = AgentPhase::kUnknown) noexcept
      : phase_(phase) {}

  std::uint64_t activations() const noexcept { return activations_; }
  void set_phase(AgentPhase phase) noexcept { phase_ = phase; }

  Action on_round(const Context&) override {
    ++activations_;
    return Action::idle();
  }
  Payload serve_pull(const Context&, AgentId) override { return {}; }
  bool done() const override { return false; }
  AgentPhase phase() const noexcept override { return phase_; }

 private:
  AgentPhase phase_;
  std::uint64_t activations_ = 0;
};

/// Never-done agent with an externally controlled progress report (the
/// pointer lets a test move an agent's progress mid-run) and an optional
/// pinned phase, for exercising the reactive rules against known state.
class ProgressAgent final : public Agent {
 public:
  explicit ProgressAgent(const double* progress,
                         AgentPhase phase = AgentPhase::kUnknown) noexcept
      : progress_(progress), phase_(phase) {}

  std::uint64_t activations() const noexcept { return activations_; }

  Action on_round(const Context&) override {
    ++activations_;
    return Action::idle();
  }
  Payload serve_pull(const Context&, AgentId) override { return {}; }
  bool done() const override { return false; }
  AgentPhase phase() const noexcept override { return phase_; }
  double progress() const noexcept override { return *progress_; }

 private:
  const double* progress_;
  AgentPhase phase_;
  std::uint64_t activations_ = 0;
};

Engine progress_engine(std::uint32_t n, std::uint64_t seed,
                       const SchedulerSpec& spec,
                       const std::vector<double>& progress,
                       const std::vector<AgentPhase>& phases = {}) {
  Engine engine({n, seed, nullptr, spec.make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<ProgressAgent>(
                            &progress.at(i),
                            i < phases.size() ? phases[i]
                                              : AgentPhase::kUnknown));
  }
  return engine;
}

std::vector<std::uint64_t> progress_activation_counts(const Engine& engine) {
  std::vector<std::uint64_t> counts(engine.n());
  for (AgentId i = 0; i < engine.n(); ++i) {
    counts[i] =
        static_cast<const ProgressAgent&>(engine.agent(i)).activations();
  }
  return counts;
}

Engine phased_engine(std::uint32_t n, std::uint64_t seed,
                     const SchedulerSpec& spec,
                     const std::vector<AgentPhase>& phases) {
  Engine engine({n, seed, nullptr, spec.make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<PhasedAgent>(
                            i < phases.size() ? phases[i]
                                              : AgentPhase::kUnknown));
  }
  return engine;
}

std::vector<std::uint64_t> activation_counts(const Engine& engine) {
  std::vector<std::uint64_t> counts(engine.n());
  for (AgentId i = 0; i < engine.n(); ++i) {
    counts[i] =
        static_cast<const PhasedAgent&>(engine.agent(i)).activations();
  }
  return counts;
}

// --------------------------------------------------------------------------
// AgentPhase plumbing
// --------------------------------------------------------------------------

TEST(AgentPhase, StringRoundTrip) {
  for (const AgentPhase p : {AgentPhase::kCommit, AgentPhase::kVote,
                             AgentPhase::kSpread, AgentPhase::kConfirm,
                             AgentPhase::kDone}) {
    EXPECT_EQ(parse_agent_phase(to_string(p)), p) << to_string(p);
  }
  EXPECT_THROW(parse_agent_phase("warp-drive"), std::invalid_argument);
  EXPECT_THROW(parse_agent_phase("unknown"), std::invalid_argument);
  EXPECT_THROW(parse_agent_phase(""), std::invalid_argument);
}

TEST(AgentPhase, DefaultsToUnknownForPlainAgents) {
  const gossip::RumorAgent agent(gossip::Mechanism::kPull, false, 8);
  EXPECT_EQ(agent.phase(), AgentPhase::kUnknown);
  EXPECT_TRUE(agent.shard_safe());
}

TEST(AgentPhase, AsyncScheduleObservesPipelineStages) {
  // Guard bands report the communication phase they lead into: an agent
  // idling before its voting pushes is already "entering its voting
  // window".
  core::AsyncSchedule s;
  s.q = 10;
  s.slack = 4;
  EXPECT_EQ(s.observed_phase(0), AgentPhase::kCommit);
  EXPECT_EQ(s.observed_phase(9), AgentPhase::kCommit);
  EXPECT_EQ(s.observed_phase(10), AgentPhase::kVote);   // Guard 1.
  EXPECT_EQ(s.observed_phase(14), AgentPhase::kVote);   // Voting proper.
  EXPECT_EQ(s.observed_phase(23), AgentPhase::kVote);
  EXPECT_EQ(s.observed_phase(24), AgentPhase::kSpread);  // Guard 2.
  EXPECT_EQ(s.observed_phase(28), AgentPhase::kSpread);  // Find-min.
  EXPECT_EQ(s.observed_phase(41), AgentPhase::kSpread);
  EXPECT_EQ(s.observed_phase(42), AgentPhase::kConfirm);  // Coherence.
  EXPECT_EQ(s.observed_phase(51), AgentPhase::kConfirm);
  EXPECT_EQ(s.observed_phase(52), AgentPhase::kDone);
}

TEST(AgentPhase, ProtocolAgentTracksAuditPipeline) {
  // The synchronous agent's phase observation follows the global schedule
  // through its own activations.
  const std::uint32_t n = 16;
  const auto params = core::ProtocolParams::make(n, 3.0);
  Engine engine({n, 7});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<core::ProtocolAgent>(
                            params, static_cast<core::Color>(i)));
  }
  const EngineView& view = engine.view();
  EXPECT_EQ(view.phase(0), AgentPhase::kCommit);  // Before any round.
  engine.run(params.voting_begin() + 1);
  EXPECT_EQ(view.phase(0), AgentPhase::kVote);
  engine.run(params.find_min_begin() + 1);
  EXPECT_EQ(view.phase(0), AgentPhase::kSpread);
  engine.run(params.coherence_begin() + 1);
  EXPECT_EQ(view.phase(0), AgentPhase::kConfirm);
  engine.run(params.total_rounds() + 4);
  EXPECT_EQ(view.phase(0), AgentPhase::kDone);
  EXPECT_TRUE(view.done(0));
}

// --------------------------------------------------------------------------
// EngineView
// --------------------------------------------------------------------------

TEST(EngineView, ExposesClocksFaultsAndGeometry) {
  const std::uint32_t n = 10;
  Engine engine({n, 3});
  engine.set_faulty(2);
  engine.set_faulty(7);
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<PhasedAgent>(AgentPhase::kCommit));
  }
  const EngineView& view = engine.view();
  EXPECT_EQ(view.n(), n);
  EXPECT_EQ(view.num_active(), 8u);
  EXPECT_EQ(view.num_faulty(), 2u);
  EXPECT_TRUE(view.faulty(2));
  EXPECT_FALSE(view.faulty(3));
  EXPECT_FALSE(view.done(0));
  EXPECT_FALSE(view.all_done());
  EXPECT_EQ(view.phase(0), AgentPhase::kCommit);
  engine.run(3);
  EXPECT_EQ(view.time(), 3u);
  EXPECT_DOUBLE_EQ(view.virtual_time(), 3.0);

  // Block geometry matches the sharded executor's partition rule, with
  // block_of the exact inverse of block_begin.
  for (const std::uint32_t blocks : {1u, 3u, 4u, 10u}) {
    EXPECT_EQ(view.block_begin(0, blocks), 0u);
    EXPECT_EQ(view.block_begin(blocks, blocks), n);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      for (std::uint32_t i = view.block_begin(b, blocks);
           i < view.block_begin(b + 1, blocks); ++i) {
        EXPECT_EQ(view.block_of(i, blocks), b)
            << "blocks=" << blocks << " label=" << i;
      }
    }
  }
  EXPECT_EQ(view.blocks(3), 3u);
  EXPECT_EQ(view.blocks(64), n);  // Clamped to the label count.
  // block_of clamps the same way, so it always indexes a blocks()-sized
  // array in bounds (requested > n degenerates to one block per label).
  for (AgentId i = 0; i < n; ++i) {
    EXPECT_EQ(view.block_of(i, 64), i) << i;
    EXPECT_LT(view.block_of(i, 64), view.blocks(64)) << i;
  }
}

// --------------------------------------------------------------------------
// PhaseAdversarialScheduler: phase targeting and the starvation budget
// --------------------------------------------------------------------------

TEST(PhaseAdversary, StarvesOnlyVictimsInTargetPhase) {
  // Victim 0 sits in its voting window, victim 1 does not: only 0 starves.
  const std::uint32_t n = 6;
  Engine engine = phased_engine(
      n, 21,
      SchedulerSpec::adversarial({.victim_ids = {0, 1},
                                  .target_phase = AgentPhase::kVote}),
      {AgentPhase::kVote, AgentPhase::kCommit});
  engine.run(120);
  const auto counts = activation_counts(engine);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[1], 0u);
  for (AgentId i = 2; i < n; ++i) EXPECT_GT(counts[i], 0u) << i;
  EXPECT_GT(engine.metrics().denials, 0u);
}

TEST(PhaseAdversary, BudgetCapsSpentDenialsExactly) {
  // One matching victim, budget B: after exactly B denials the victim wakes
  // like everyone else, and the metered total equals B.
  const std::uint32_t n = 5;
  const std::uint64_t kBudget = 7;
  Engine engine = phased_engine(
      n, 23,
      SchedulerSpec::adversarial({.victim_ids = {0},
                                  .target_phase = AgentPhase::kVote,
                                  .budget = kBudget}),
      {AgentPhase::kVote});
  engine.run(200);
  EXPECT_EQ(engine.metrics().denials, kBudget);
  EXPECT_GT(activation_counts(engine)[0], 0u);
}

TEST(PhaseAdversary, UnboundedBudgetKeepsMatchingVictimStarved) {
  const std::uint32_t n = 5;
  Engine engine = phased_engine(
      n, 25,
      SchedulerSpec::adversarial({.victim_ids = {0},
                                  .target_phase = AgentPhase::kVote}),
      {AgentPhase::kVote});
  engine.run(200);
  EXPECT_EQ(activation_counts(engine)[0], 0u);
  // One denial per round-robin lap over the other four agents.
  EXPECT_NEAR(static_cast<double>(engine.metrics().denials), 200.0 / 4, 2.0);
}

TEST(PhaseAdversary, AllStarvedWakesRoundRobinFreeOfCharge) {
  // When every agent matches the target phase the adversary must still
  // schedule someone: round-robin, no denials charged.
  const std::uint32_t n = 4;
  Engine engine = phased_engine(
      n, 27,
      SchedulerSpec::adversarial({.victim_fraction = 1.0,
                                  .target_phase = AgentPhase::kVote}),
      std::vector<AgentPhase>(n, AgentPhase::kVote));
  engine.run(40);
  const auto counts = activation_counts(engine);
  for (AgentId i = 0; i < n; ++i) EXPECT_EQ(counts[i], 10u) << i;
  EXPECT_EQ(engine.metrics().denials, 0u);
}

TEST(PhaseAdversary, StaticVictimsMeterDenialsIntoMetrics) {
  // The classic static adversary (no phase target) now reports its spent
  // starvation budget: one denial per victim per round-robin lap.
  const std::uint32_t n = 8;
  Engine engine = phased_engine(
      n, 29, SchedulerSpec::adversarial({.victim_ids = {3, 5}}), {});
  engine.run(60);  // 60 events over 6 favored agents = 10 laps.
  const auto counts = activation_counts(engine);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[5], 0u);
  EXPECT_NEAR(static_cast<double>(engine.metrics().denials), 20.0, 3.0);
}

TEST(PhaseAdversary, EndgameDoneRemovalsDoNotDistortDenials) {
  // Agents finishing while a victim is starved trigger swap-removals
  // mid-walk; the per-walk stamp must keep the charge at exactly one
  // denial per victim per lap through the transition (a naive walk can
  // double-charge a rotated victim or end the lap early).
  class DoneAfterAgent final : public Agent {
   public:
    Action on_round(const Context&) override {
      ++activations_;
      return Action::idle();
    }
    Payload serve_pull(const Context&, AgentId) override { return {}; }
    bool done() const override { return activations_ >= 5; }

   private:
    std::uint64_t activations_ = 0;
  };
  const std::uint32_t n = 4;
  Engine engine({n, 33, nullptr,
                 SchedulerSpec::adversarial({.victim_ids = {0}}).make()});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<DoneAfterAgent>());
  }
  engine.run(1'000);
  EXPECT_TRUE(engine.all_done());
  // 3 favored agents × 5 activations = 15 events ≈ 5 laps with the victim
  // waiting: one denial per lap, ±1 for the final-lap boundary (whether
  // the victim's slot precedes the last favored wake).  Once the favored
  // pool drains, the victim wakes free of charge — a distorted walk
  // (double-charges, or a lap ended early by a rotated victim) lands
  // outside this band.
  EXPECT_GE(engine.metrics().denials, 4u);
  EXPECT_LE(engine.metrics().denials, 5u);
}

TEST(PhaseAdversary, PhaseTargetDefeatsGuardBandAsyncProtocol) {
  // The acceptance scenario in miniature: at equal n and guard band, the
  // phase-aware adversary with a *bounded* budget defeats the async
  // protocol while spending strictly less starvation than the static
  // victim adversary.  A budget of (q+slack)·|victims| denials holds the
  // victims' voting window closed until every favored agent has sealed its
  // certificate, so the late votes are all dropped.
  const std::uint32_t n = 48;
  const std::uint32_t slack = 24;
  const auto params = core::ProtocolParams::make(n, 4.0);
  std::vector<AgentId> victims;
  for (AgentId i = 0; i < n / 4; ++i) victims.push_back(i);
  const std::uint64_t phase_budget =
      (params.q + slack) * static_cast<std::uint64_t>(victims.size());

  std::uint64_t static_failures = 0, phase_failures = 0;
  double static_spent = 0.0, phase_spent = 0.0;
  const int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    core::AsyncRunConfig cfg;
    cfg.n = n;
    cfg.slack = slack;
    cfg.seed = 1000 + t;
    cfg.scheduler = SchedulerSpec::adversarial({.victim_ids = victims});
    const auto stat = core::run_async_protocol(cfg);
    if (stat.failed()) ++static_failures;
    static_spent += static_cast<double>(stat.metrics.denials) / kTrials;

    cfg.scheduler = SchedulerSpec::adversarial(
        {.victim_ids = victims,
         .target_phase = AgentPhase::kVote,
         .budget = phase_budget});
    const auto phase = core::run_async_protocol(cfg);
    if (phase.failed()) ++phase_failures;
    phase_spent += static_cast<double>(phase.metrics.denials) / kTrials;
  }
  EXPECT_EQ(phase_failures, static_cast<std::uint64_t>(kTrials));
  EXPECT_EQ(static_failures, static_cast<std::uint64_t>(kTrials));
  EXPECT_GT(phase_spent, 0.0);
  EXPECT_LT(phase_spent, static_spent);
}

TEST(PhaseAdversary, DeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    gossip::SpreadConfig cfg;
    cfg.n = 64;
    cfg.mechanism = gossip::Mechanism::kPushPull;
    cfg.seed = seed;
    cfg.scheduler = SchedulerSpec::parse(
        "adversarial:victim_fraction=0.25,phase=vote,budget=100");
    cfg.max_rounds = 100'000;
    return gossip::run_rumor_spreading(cfg);
  };
  const auto a = run(31), b = run(31), c = run(32);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_EQ(a.metrics.denials, b.metrics.denials);
  EXPECT_NE(c.metrics.total_bits, a.metrics.total_bits);
}

// --------------------------------------------------------------------------
// Agent::progress(): the numeric observation next to phase()
// --------------------------------------------------------------------------

TEST(AgentProgress, DefaultsToZeroAndRumorReportsInformed) {
  const PhasedAgent plain;
  EXPECT_DOUBLE_EQ(plain.progress(), 0.0);
  const gossip::RumorAgent uninformed(gossip::Mechanism::kPull, false, 8);
  const gossip::RumorAgent informed(gossip::Mechanism::kPull, true, 8);
  EXPECT_DOUBLE_EQ(uninformed.progress(), 0.0);
  EXPECT_DOUBLE_EQ(informed.progress(), 1.0);
}

TEST(AgentProgress, AsyncScheduleStagePlusFraction) {
  core::AsyncSchedule s;
  s.q = 10;
  s.slack = 4;  // block = 14.
  EXPECT_DOUBLE_EQ(s.progress_of(0), 0.0);
  EXPECT_DOUBLE_EQ(s.progress_of(5), 0.5);
  EXPECT_DOUBLE_EQ(s.progress_of(9), 0.9);
  // Vote stage spans the guard plus the q pushes: [10, 24), length 14.
  EXPECT_DOUBLE_EQ(s.progress_of(10), 1.0);
  EXPECT_DOUBLE_EQ(s.progress_of(17), 1.0 + 7.0 / 14.0);
  EXPECT_DOUBLE_EQ(s.progress_of(23), 1.0 + 13.0 / 14.0);
  // Spread spans guard 2 plus the extended find-min: [24, 42), length 18.
  EXPECT_DOUBLE_EQ(s.progress_of(24), 2.0);
  EXPECT_DOUBLE_EQ(s.progress_of(33), 2.5);
  EXPECT_DOUBLE_EQ(s.progress_of(41), 2.0 + 17.0 / 18.0);
  // Coherence [42, 52), then the pipeline is complete.
  EXPECT_DOUBLE_EQ(s.progress_of(42), 3.0);
  EXPECT_DOUBLE_EQ(s.progress_of(51), 3.9);
  EXPECT_DOUBLE_EQ(s.progress_of(52), 4.0);
  EXPECT_DOUBLE_EQ(s.progress_of(1000), 4.0);
  // The integer part always agrees with the observed stage, and progress
  // is monotone nondecreasing activation by activation.
  double last = 0.0;
  for (std::uint64_t a = 0; a <= s.total_activations(); ++a) {
    const double p = s.progress_of(a);
    EXPECT_GE(p, last) << a;
    last = p;
    const AgentPhase expect[] = {AgentPhase::kCommit, AgentPhase::kVote,
                                 AgentPhase::kSpread, AgentPhase::kConfirm,
                                 AgentPhase::kDone};
    EXPECT_EQ(s.observed_phase(a), expect[static_cast<int>(p)]) << a;
  }
}

TEST(AgentProgress, ProtocolAgentCountsStagesThroughSchedule) {
  const std::uint32_t n = 16;
  const auto params = core::ProtocolParams::make(n, 3.0);
  Engine engine({n, 7});
  for (AgentId i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<core::ProtocolAgent>(
                            params, static_cast<core::Color>(i)));
  }
  const EngineView& view = engine.view();
  EXPECT_DOUBLE_EQ(view.progress(0), 0.0);  // Before any round.
  engine.run(params.voting_begin() + 1);
  EXPECT_GE(view.progress(0), 1.0);
  EXPECT_LT(view.progress(0), 2.0);
  engine.run(params.find_min_begin() + 1);
  EXPECT_GE(view.progress(0), 2.0);
  EXPECT_LT(view.progress(0), 3.0);
  engine.run(params.coherence_begin() + 1);
  EXPECT_GE(view.progress(0), 3.0);
  EXPECT_LT(view.progress(0), 4.0);
  engine.run(params.total_rounds() + 4);
  EXPECT_DOUBLE_EQ(view.progress(0), 4.0);
}

// --------------------------------------------------------------------------
// ReactiveAdversarialScheduler: observation-driven targeting rules
// --------------------------------------------------------------------------

SchedulerSpec reactive_spec(ReactiveTarget rule, double fraction,
                            std::uint64_t budget = 0) {
  return SchedulerSpec::adversarial(
      {.victim_fraction = fraction, .target = rule, .budget = budget});
}

TEST(ReactiveAdversary, MinCertStarvesTheWeakestProgressHolder) {
  const std::uint32_t n = 6;
  std::vector<double> progress = {0.5, 0.2, 0.9, 0.4, 0.8, 0.7};
  Engine engine = progress_engine(
      n, 51, reactive_spec(ReactiveTarget::kMinCert, 1.0 / n), progress);
  engine.run(60);
  const auto counts = progress_activation_counts(engine);
  EXPECT_EQ(counts[1], 0u);  // The 0.2 holder never wakes.
  for (const AgentId i : {0u, 2u, 3u, 4u, 5u}) EXPECT_GT(counts[i], 0u) << i;
  EXPECT_GT(engine.metrics().denials, 0u);
}

TEST(ReactiveAdversary, MinCertReplansWhenTheMinimumMoves) {
  // The victim set is re-ranked every step: once the starved agent's
  // progress observation jumps ahead, the adversary switches to the new
  // minimum — no restart required.
  const std::uint32_t n = 4;
  std::vector<double> progress = {0.6, 0.1, 0.8, 0.3};
  Engine engine = progress_engine(
      n, 53, reactive_spec(ReactiveTarget::kMinCert, 1.0 / n), progress);
  engine.run(30);
  const auto first = progress_activation_counts(engine);
  EXPECT_EQ(first[1], 0u);
  EXPECT_GT(first[3], 0u);
  progress[1] = 2.0;  // The starved agent leaps ahead (externally).
  engine.run(60);     // 30 further events (the cap is total).
  const auto second = progress_activation_counts(engine);
  EXPECT_GT(second[1], 0u);          // Former victim wakes again...
  EXPECT_EQ(second[3], first[3]);    // ...the 0.3 holder starves instead.
}

TEST(ReactiveAdversary, LaggardSelfReinforcesMaximalClockSkew) {
  // All wake clocks start equal; the rule starves the least-recently-woken
  // agent, which by construction stays least recent — one agent's local
  // clock is pinned while everyone else's advances.
  const std::uint32_t n = 5;
  std::vector<double> progress(n, 1.0);  // Equal progress: rule ≠ min-cert.
  Engine engine = progress_engine(
      n, 55, reactive_spec(ReactiveTarget::kLaggard, 1.0 / n), progress);
  engine.run(80);
  const auto counts = progress_activation_counts(engine);
  EXPECT_EQ(counts[0], 0u);  // Label tie-break pins agent 0, forever.
  for (AgentId i = 1; i < n; ++i) EXPECT_EQ(counts[i], 20u) << i;
  // One denial per lap over the other four agents.
  EXPECT_NEAR(static_cast<double>(engine.metrics().denials), 20.0, 2.0);
}

TEST(ReactiveAdversary, QuorumEdgeStarvesTheLargestStageFraction) {
  // Fractional progress ranks the rule: 1.95 is 95% through its stage and
  // starves ahead of 2.5 (50%) and 0.3 (30%), regardless of the integer
  // stage count.
  const std::uint32_t n = 4;
  std::vector<double> progress = {0.1, 1.95, 2.5, 0.3};
  Engine engine = progress_engine(
      n, 57, reactive_spec(ReactiveTarget::kQuorumEdge, 1.0 / n), progress);
  engine.run(40);
  const auto counts = progress_activation_counts(engine);
  EXPECT_EQ(counts[1], 0u);
  for (const AgentId i : {0u, 2u, 3u}) EXPECT_GT(counts[i], 0u) << i;
}

TEST(ReactiveAdversary, BudgetCapsSpentDenialsExactly) {
  const std::uint32_t n = 5;
  const std::uint64_t kCap = 9;
  std::vector<double> progress = {0.0, 1.0, 1.0, 1.0, 1.0};
  Engine engine = progress_engine(
      n, 59, reactive_spec(ReactiveTarget::kMinCert, 1.0 / n, kCap),
      progress);
  engine.run(200);
  EXPECT_EQ(engine.metrics().denials, kCap);
  EXPECT_GT(progress_activation_counts(engine)[0], 0u);
}

TEST(ReactiveAdversary, SelectionMatchesFullSortTopKWithLabelTiebreak) {
  // Pins the O(n) nth_element victim selection to the full-sort reference:
  // the (key, label) order is strict and total, so the starved *set* is
  // unique even under key ties, and a partial selection must reproduce it
  // exactly.  Keys here tie four agents at 0.5 while k = 3, so a selection
  // bug that resolves ties by heap order instead of label would starve the
  // wrong subset.
  const std::uint32_t n = 8;
  const std::vector<double> progress = {1.0, 0.5, 0.5, 0.5,
                                        2.0, 0.5, 3.0, 4.0};
  // Full-sort reference: sort (progress, label) ascending, take the first
  // k = ceil(3/8 * 8) = 3 → labels {1, 2, 3}; the fourth 0.5 holder
  // (label 5) loses every tie and stays wakeable.
  std::vector<AgentId> reference(n);
  for (AgentId i = 0; i < n; ++i) reference[i] = i;
  std::sort(reference.begin(), reference.end(),
            [&](AgentId a, AgentId b) {
              if (progress[a] != progress[b]) {
                return progress[a] < progress[b];
              }
              return a < b;
            });
  Engine engine = progress_engine(
      n, 61, reactive_spec(ReactiveTarget::kMinCert, 3.0 / n), progress);
  engine.run(160);
  const auto counts = progress_activation_counts(engine);
  for (AgentId i = 0; i < n; ++i) {
    const bool starved =
        std::find(reference.begin(), reference.begin() + 3, i) !=
        reference.begin() + 3;
    if (starved) {
      EXPECT_EQ(counts[i], 0u) << "victim " << i << " woke";
    } else {
      EXPECT_GT(counts[i], 0u) << "non-victim " << i << " starved";
    }
  }
  EXPECT_GT(engine.metrics().denials, 0u);
}

TEST(ReactiveAdversary, ComposesWithThePhaseGate) {
  // target= picks *who* is starvable, phase= still gates *when*: the
  // minimal-progress agent only starves while it observes the target
  // phase.
  const std::uint32_t n = 4;
  std::vector<double> progress = {0.0, 1.0, 1.0, 1.0};
  Engine in_phase = progress_engine(
      n, 61,
      SchedulerSpec::adversarial({.victim_fraction = 1.0 / n,
                                  .target = ReactiveTarget::kMinCert,
                                  .target_phase = AgentPhase::kVote}),
      progress, {AgentPhase::kVote});
  in_phase.run(40);
  EXPECT_EQ(progress_activation_counts(in_phase)[0], 0u);
  EXPECT_GT(in_phase.metrics().denials, 0u);

  Engine out_of_phase = progress_engine(
      n, 61,
      SchedulerSpec::adversarial({.victim_fraction = 1.0 / n,
                                  .target = ReactiveTarget::kMinCert,
                                  .target_phase = AgentPhase::kVote}),
      progress, {AgentPhase::kCommit});
  out_of_phase.run(40);
  EXPECT_GT(progress_activation_counts(out_of_phase)[0], 0u);
  EXPECT_EQ(out_of_phase.metrics().denials, 0u);
}

TEST(ReactiveAdversary, SpecRoundTripAndValidation) {
  const auto spec = reactive_spec(ReactiveTarget::kLaggard, 0.1, 25);
  EXPECT_EQ(spec.to_string(),
            "adversarial:budget=25,target=laggard,victim_fraction=0.1");
  EXPECT_EQ(SchedulerSpec::parse(spec.to_string()), spec);
  EXPECT_NE(spec.make(), nullptr);
  EXPECT_STREQ(spec.make()->name(), "reactive-adversarial");
  // Plain adversarial specs still build the base policy.
  EXPECT_STREQ(SchedulerSpec::parse("adversarial").make()->name(),
               "adversarial");

  // Malformed rule names and contradictory parameters throw.
  EXPECT_THROW(SchedulerSpec::parse("adversarial:target=warp-drive").make(),
               std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("adversarial:target=").make(),
               std::invalid_argument);
  EXPECT_THROW(
      SchedulerSpec::parse("adversarial:target=min-cert,victims=0+1").make(),
      std::invalid_argument);
  EXPECT_THROW(make_adversarial_scheduler(
                   {.victim_ids = {0}, .target = ReactiveTarget::kMinCert}),
               std::invalid_argument);
  EXPECT_THROW(ReactiveAdversarialScheduler(AdversarialConfig{}),
               std::invalid_argument);
  // String round-trip of the rule names themselves.
  for (const ReactiveTarget t :
       {ReactiveTarget::kMinCert, ReactiveTarget::kLaggard,
        ReactiveTarget::kQuorumEdge}) {
    EXPECT_EQ(parse_reactive_target(to_string(t)), t);
  }
  EXPECT_THROW(parse_reactive_target(""), std::invalid_argument);
  EXPECT_THROW(parse_reactive_target("none"), std::invalid_argument);
}

TEST(ReactiveAdversary, DeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    gossip::SpreadConfig cfg;
    cfg.n = 64;
    cfg.mechanism = gossip::Mechanism::kPushPull;
    cfg.seed = seed;
    cfg.scheduler = SchedulerSpec::parse(
        "adversarial:target=min-cert,victim_fraction=0.1,budget=120");
    cfg.max_rounds = 100'000;
    return gossip::run_rumor_spreading(cfg);
  };
  const auto a = run(63), b = run(63), c = run(64);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
  EXPECT_EQ(a.metrics.denials, b.metrics.denials);
  EXPECT_NE(c.metrics.total_bits, a.metrics.total_bits);
}

TEST(ReactiveAdversary, MinCertStallsRumorSpreadUnlikeStaticVictims) {
  // On a pull spread the min-cert rule is the natural worst case: it
  // starves exactly the still-uninformed agents (progress 0), so the last
  // coupon never gets to draw.  A static victim set of the same size picks
  // its victims blindly and mostly starves agents that are already
  // informed.  Same budget, very different damage.
  const auto run = [](const SchedulerSpec& spec) {
    gossip::SpreadConfig cfg;
    cfg.n = 64;
    cfg.mechanism = gossip::Mechanism::kPull;  // Pulls only: wake = chance.
    cfg.seed = 71;
    cfg.scheduler = spec;
    cfg.max_rounds = 40'000;
    return gossip::run_rumor_spreading(cfg);
  };
  const std::uint64_t budget = 512;
  const auto reactive = run(SchedulerSpec::adversarial(
      {.victim_fraction = 0.05,
       .target = ReactiveTarget::kMinCert,
       .budget = budget}));
  const auto pinned = run(SchedulerSpec::adversarial(
      {.victim_fraction = 0.05, .budget = budget}));
  ASSERT_TRUE(reactive.complete);
  ASSERT_TRUE(pinned.complete);
  EXPECT_GT(reactive.rounds, pinned.rounds);
}

TEST(ReactiveAdversary, MinCertDefeatsGuardBandCheaperThanPhaseAdversary) {
  // The acceptance scenario in miniature (see E12g in exp_async): at equal
  // n, slack, and *equal denial budget* of one agent's schedule length,
  // the reactive min-cert rule holds one victim-of-the-moment behind every
  // sealed certificate and breaks the protocol's w.h.p. success, while the
  // phase-static adversary spread over its pinned victim set is fully
  // absorbed by the guard band — its defeat threshold is (q+slack)·|V|,
  // an order of magnitude more.
  const std::uint32_t n = 48;
  const std::uint32_t slack = 24;
  const auto params = core::ProtocolParams::make(n, 4.0);
  const std::uint64_t sched = 4ull * params.q + 3ull * slack;
  std::vector<AgentId> victims;
  for (AgentId i = 0; i < n / 4; ++i) victims.push_back(i);

  std::uint64_t phase_failures = 0, reactive_failures = 0;
  const int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    core::AsyncRunConfig cfg;
    cfg.n = n;
    cfg.slack = slack;
    cfg.seed = 2000 + t;
    cfg.scheduler = SchedulerSpec::adversarial(
        {.victim_ids = victims,
         .target_phase = AgentPhase::kVote,
         .budget = sched});
    const auto phase = core::run_async_protocol(cfg);
    if (phase.failed()) ++phase_failures;
    EXPECT_LE(phase.metrics.denials, sched);

    cfg.scheduler = SchedulerSpec::adversarial(
        {.victim_fraction = 1.0 / n,
         .target = ReactiveTarget::kMinCert,
         .budget = sched});
    const auto reactive = core::run_async_protocol(cfg);
    if (reactive.failed()) ++reactive_failures;
    EXPECT_LE(reactive.metrics.denials, sched);
  }
  // Equal budgets: the pinned set absorbs every denial, the reactive rule
  // converts them into failures.
  EXPECT_EQ(phase_failures, 0u);
  EXPECT_GT(reactive_failures, 0u);
}

// --------------------------------------------------------------------------
// BatchedDeliveryScheduler
// --------------------------------------------------------------------------

TEST(BatchedDelivery, RotationActivatesEveryBlockOncePerSweep) {
  const std::uint32_t n = 10;
  Engine engine = phased_engine(n, 41, SchedulerSpec::batched(3), {});
  engine.run(3);  // One full rotation of 3 sub-steps.
  const auto counts = activation_counts(engine);
  for (AgentId i = 0; i < n; ++i) EXPECT_EQ(counts[i], 1u) << i;
  EXPECT_NEAR(engine.virtual_time(), 1.0, 1e-9);
  engine.run(9);
  for (const auto c : activation_counts(engine)) EXPECT_EQ(c, 3u);
}

TEST(BatchedDelivery, SubStepWakesExactlyOneContiguousBlock) {
  const std::uint32_t n = 10;
  Engine engine = phased_engine(n, 43, SchedulerSpec::batched(3), {});
  engine.step();  // Block 0 = [0, block_begin(1)).
  const EngineView& view = engine.view();
  const auto counts = activation_counts(engine);
  for (AgentId i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i], view.block_of(i, 3) == 0 ? 1u : 0u) << i;
  }
}

TEST(BatchedDelivery, SpreadsRumorToCompletion) {
  gossip::SpreadConfig cfg;
  cfg.n = 128;
  cfg.mechanism = gossip::Mechanism::kPushPull;
  cfg.seed = 47;
  cfg.scheduler = SchedulerSpec::batched(8);
  const auto r = gossip::run_rumor_spreading(cfg);
  EXPECT_TRUE(r.complete);
  // Virtual time is measured in full rotations: the broadcast still costs
  // Θ(log n) rounds on that axis.
  EXPECT_LT(r.virtual_time, 12.0 * std::log(128.0));
  EXPECT_EQ(r.rounds, static_cast<std::uint64_t>(
                          std::llround(r.virtual_time * 8)));
}

TEST(BatchedDelivery, RejectsZeroBlocks) {
  EXPECT_THROW(make_batched_delivery_scheduler({.blocks = 0}),
               std::invalid_argument);
}

TEST(BatchedDelivery, VirtualTimeHitsRoundBoundariesExactly) {
  // Non-power-of-two block counts must not drift: the accumulated clock is
  // pinned to exactly k/B at sub-step k, so a horizon of 2.0 rounds runs
  // exactly 2·B sub-steps (a naive 1/3+1/3+... accumulation lands at
  // 1.9999999999999998 after two block=3 rotations and would run a 7th).
  for (const std::uint32_t blocks : {3u, 5u, 7u}) {
    Engine engine = phased_engine(14, 49, SchedulerSpec::batched(blocks), {});
    EXPECT_EQ(engine.run_until(2.0), 2ull * blocks) << blocks;
    EXPECT_DOUBLE_EQ(engine.virtual_time(), 2.0) << blocks;
  }
}

}  // namespace
}  // namespace rfc::sim
