// Bit-exact serialization: every payload round-trips in exactly the number
// of bits the accounting model charges.
#include "core/wire.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace rfc::core {
namespace {

ProtocolParams params() { return ProtocolParams::make(300, 3.0); }

TEST(BitWriter, PacksMsbFirst) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0b01, 2);
  EXPECT_EQ(w.bit_count(), 5u);
  ASSERT_EQ(w.bytes().size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0b10101000);
}

TEST(BitWriter, CrossesByteBoundaries) {
  BitWriter w;
  w.write(0xABCD, 16);
  w.write(0x3, 2);
  EXPECT_EQ(w.bit_count(), 18u);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.read(16), 0xABCDu);
  EXPECT_EQ(r.read(2), 0x3u);
}

TEST(BitReader, RefusesOverread) {
  BitWriter w;
  w.write(1, 4);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_TRUE(r.read(4).has_value());
  EXPECT_FALSE(r.read(1).has_value());
}

TEST(BitRoundTrip, RandomValues) {
  rfc::support::Xoshiro256 rng(44);
  BitWriter w;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> expected;
  for (int i = 0; i < 500; ++i) {
    const auto bits = static_cast<std::uint32_t>(1 + rng.below(64));
    const std::uint64_t value =
        bits == 64 ? rng.next() : rng.below(1ull << bits);
    w.write(value, bits);
    expected.emplace_back(value, bits);
  }
  BitReader r(w.bytes(), w.bit_count());
  for (const auto& [value, bits] : expected) {
    const auto got = r.read(bits);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireIntention, RoundTripsAtExactSize) {
  const auto p = params();
  rfc::support::Xoshiro256 rng(7);
  VoteIntention h(p.q);
  for (VoteEntry& e : h) {
    e.value = rng.below(p.m);
    e.target = static_cast<sim::AgentId>(rng.below(p.n));
  }
  BitWriter w;
  encode_intention(w, p, h);
  // Exactly the size IntentionPayload charges.
  EXPECT_EQ(w.bit_count(),
            static_cast<std::uint64_t>(p.q) *
                (p.value_bits() + p.label_bits()));
  BitReader r(w.bytes(), w.bit_count());
  const auto decoded = decode_intention(r, p);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireVote, RoundTrips) {
  const auto p = params();
  BitWriter w;
  encode_vote(w, p, 123456);
  EXPECT_EQ(w.bit_count(), p.value_bits());
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(decode_vote(r, p), 123456u);
}

TEST(WireCertificate, RoundTripsAtChargedSizePlusCount) {
  const auto p = params();
  rfc::support::Xoshiro256 rng(8);
  ReceivedVotes votes;
  for (std::uint32_t i = 0; i < 25; ++i) {
    votes.push_back({static_cast<sim::AgentId>(rng.below(p.n)),
                     static_cast<std::uint32_t>(rng.below(p.q)),
                     rng.below(p.m)});
  }
  const Certificate cert = make_certificate(p, 17, 5, votes);

  BitWriter w;
  encode_certificate(w, p, cert);
  EXPECT_EQ(w.bit_count(), encoded_certificate_bits(p, cert));
  EXPECT_EQ(w.bit_count(),
            cert.bit_size(p) + certificate_count_bits(p));

  BitReader r(w.bytes(), w.bit_count());
  const auto decoded = decode_certificate(r, p);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cert);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireCertificate, EmptyVotesRoundTrip) {
  const auto p = params();
  Certificate cert;
  cert.k = 0;
  cert.color = 0;
  cert.owner = 3;
  BitWriter w;
  encode_certificate(w, p, cert);
  BitReader r(w.bytes(), w.bit_count());
  const auto decoded = decode_certificate(r, p);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cert);
}

TEST(WireCertificate, TruncatedStreamFailsCleanly) {
  const auto p = params();
  const Certificate cert = make_certificate(p, 1, 2, {{3, 0, 400}});
  BitWriter w;
  encode_certificate(w, p, cert);
  BitReader r(w.bytes(), w.bit_count() - 5);  // Chop the tail.
  EXPECT_FALSE(decode_certificate(r, p).has_value());
}

TEST(WireCertificate, CountPrefixCoversMaxVotes) {
  // The count field must be able to represent n*q (every vote in the
  // system landing on one agent).
  const auto p = params();
  const std::uint64_t max_count =
      static_cast<std::uint64_t>(p.n) * p.q;
  EXPECT_LT(max_count, 1ull << certificate_count_bits(p));
}

}  // namespace
}  // namespace rfc::core
