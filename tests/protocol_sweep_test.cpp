// Large parameterized property sweeps over the protocol's configuration
// space: every (n, gamma, fault fraction, placement, digest-mode) cell must
// uphold the core invariants — termination, safety (winner is an active
// agent's initial color or ⊥), agreement, and exact communication-model
// bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/runner.hpp"

namespace rfc::core {
namespace {

struct SweepCase {
  std::uint32_t n;
  double gamma;
  double alpha;
  sim::FaultPlacement placement;
  bool digest;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = "n" + std::to_string(c.n) + "_g" +
                     std::to_string(static_cast<int>(c.gamma)) + "_a" +
                     std::to_string(static_cast<int>(c.alpha * 100)) + "_" +
                     sim::to_string(c.placement) +
                     (c.digest ? "_digest" : "_full");
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class ProtocolSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweepTest, InvariantsHold) {
  const SweepCase& c = GetParam();
  RunConfig cfg;
  cfg.n = c.n;
  cfg.gamma = c.gamma;
  cfg.num_faulty = static_cast<std::uint32_t>(c.alpha * c.n);
  cfg.placement = cfg.num_faulty ? c.placement : sim::FaultPlacement::kNone;
  cfg.coherence_digest = c.digest;
  cfg.colors = split_colors(c.n, {0.5, 0.3, 0.2});
  const auto params = ProtocolParams::make(c.n, c.gamma);

  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed * 7919;
    const RunResult r = run_protocol(cfg);

    // Termination: the engine never exceeds the schedule.
    EXPECT_LE(r.rounds, params.total_rounds());

    // Safety: the outcome is ⊥ or a color some active agent started with.
    if (!r.failed()) {
      ++successes;
      EXPECT_TRUE(r.active_colors.contains(r.winner));
      EXPECT_NE(r.winner_agent, sim::kNoAgent);
    }

    // Model bounds: one active operation per agent per round; message
    // sizes polylog.
    EXPECT_LE(r.metrics.active_links,
              r.rounds * static_cast<std::uint64_t>(c.n));
    const double log2n = std::log2(static_cast<double>(c.n));
    EXPECT_LT(static_cast<double>(r.metrics.max_message_bits),
              64.0 * log2n * log2n);

    // Consistency of the active-color histogram.
    std::uint32_t active_total = 0;
    for (const auto& [color, count] : r.active_colors) {
      (void)color;
      active_total += count;
    }
    EXPECT_EQ(active_total, r.num_active);
    EXPECT_EQ(r.num_active, c.n - cfg.num_faulty);
  }
  // Liveness at suitable gamma: gamma = 6 covers alpha <= 0.5 comfortably.
  if (c.gamma >= 6.0) {
    EXPECT_EQ(successes, 5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultFreeSizes, ProtocolSweepTest,
    ::testing::Values(
        SweepCase{16, 6.0, 0.0, sim::FaultPlacement::kNone, false},
        SweepCase{33, 6.0, 0.0, sim::FaultPlacement::kNone, false},
        SweepCase{64, 6.0, 0.0, sim::FaultPlacement::kNone, false},
        SweepCase{100, 6.0, 0.0, sim::FaultPlacement::kNone, false},
        SweepCase{128, 6.0, 0.0, sim::FaultPlacement::kNone, true},
        SweepCase{257, 6.0, 0.0, sim::FaultPlacement::kNone, false}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    FaultPlacements, ProtocolSweepTest,
    ::testing::Values(
        SweepCase{96, 6.0, 0.25, sim::FaultPlacement::kRandom, false},
        SweepCase{96, 6.0, 0.25, sim::FaultPlacement::kPrefix, false},
        SweepCase{96, 6.0, 0.25, sim::FaultPlacement::kSuffix, false},
        SweepCase{96, 6.0, 0.25, sim::FaultPlacement::kStride, false},
        SweepCase{96, 6.0, 0.25, sim::FaultPlacement::kClustered, false},
        SweepCase{96, 6.0, 0.5, sim::FaultPlacement::kRandom, false},
        SweepCase{96, 6.0, 0.5, sim::FaultPlacement::kClustered, true}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    GammaLadder, ProtocolSweepTest,
    ::testing::Values(
        // Small gamma: invariants must hold even when liveness does not.
        SweepCase{128, 1.0, 0.0, sim::FaultPlacement::kNone, false},
        SweepCase{128, 2.0, 0.0, sim::FaultPlacement::kNone, false},
        SweepCase{128, 3.0, 0.3, sim::FaultPlacement::kRandom, false},
        SweepCase{128, 8.0, 0.6, sim::FaultPlacement::kRandom, false},
        SweepCase{128, 8.0, 0.6, sim::FaultPlacement::kPrefix, true}),
    case_name);

}  // namespace
}  // namespace rfc::core
