// The pending-event queue under the continuous-time path
// (sim/event_queue.hpp): pop order, lazy deletion via generations, the
// compaction invariant, generation wraparound, and a randomized property
// test against a sorted-map oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "support/rng.hpp"

namespace rfc::sim {
namespace {

TEST(EventQueue, PopsInTimeOrderWithLabelTiebreak) {
  EventQueue q(8);
  q.schedule(3, 2.0);
  q.schedule(1, 1.0);
  q.schedule(5, 2.0);  // Same time as 3: smaller label pops first.
  q.schedule(7, 0.5);
  EXPECT_EQ(q.live(), 4u);
  const AgentId order[] = {7, 1, 3, 5};
  const double times[] = {0.5, 1.0, 2.0, 2.0};
  for (int i = 0; i < 4; ++i) {
    const auto e = q.pop();
    EXPECT_EQ(e.id, order[i]) << i;
    EXPECT_DOUBLE_EQ(e.time, times[i]) << i;
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleReplacesThePendingEvent) {
  EventQueue q(4);
  q.schedule(0, 5.0);
  q.schedule(1, 2.0);
  EXPECT_DOUBLE_EQ(q.time_of(0), 5.0);
  q.schedule(0, 1.0);  // Move agent 0 ahead of agent 1...
  EXPECT_EQ(q.live(), 2u);  // ...one live event per agent, still.
  EXPECT_DOUBLE_EQ(q.time_of(0), 1.0);
  EXPECT_EQ(q.pop().id, 0u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_TRUE(q.empty());
  // The stale 5.0 entry died lazily: nothing left to pop.
  EXPECT_EQ(q.live(), 0u);
}

TEST(EventQueue, CancelIsLazyAndIdempotent) {
  EventQueue q(4);
  q.schedule(0, 1.0);
  q.schedule(1, 2.0);
  q.cancel(0);
  q.cancel(0);  // Idempotent.
  q.cancel(3);  // Never scheduled: a no-op.
  EXPECT_EQ(q.live(), 1u);
  EXPECT_FALSE(q.scheduled(0));
  EXPECT_TRUE(q.scheduled(1));
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_TRUE(q.empty());
  // A cancelled agent can come back with a fresh event.
  q.schedule(0, 3.0);
  EXPECT_EQ(q.pop().id, 0u);
}

TEST(EventQueue, GenerationWraparoundIsHarmless) {
  // Start the per-agent counters two short of the wrap: schedule/cancel
  // cycles drive them across 2^64 - 1 -> 0, and liveness (an equality
  // test) must keep discriminating stale entries from fresh ones.
  EventQueue q(2, std::numeric_limits<EventQueue::Generation>::max() - 2);
  q.schedule(0, 1.0);  // gen max-1
  q.schedule(0, 2.0);  // gen max      (1.0 entry goes stale)
  q.schedule(0, 3.0);  // gen 0        (wrap; 2.0 entry goes stale)
  q.schedule(1, 2.5);  // other agent, pre-wrap generation
  EXPECT_EQ(q.live(), 2u);
  auto e = q.pop();
  EXPECT_EQ(e.id, 1u);
  EXPECT_DOUBLE_EQ(e.time, 2.5);
  e = q.pop();
  EXPECT_EQ(e.id, 0u);
  EXPECT_DOUBLE_EQ(e.time, 3.0);  // The post-wrap entry, not a stale one.
  EXPECT_TRUE(q.empty());
  // And across a cancel at the wrap boundary.
  q.schedule(0, 4.0);
  q.cancel(0);
  q.schedule(0, 5.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
}

TEST(EventQueue, ResetClearsStateAndReusesStorage) {
  EventQueue q(4);
  q.schedule(0, 1.0);
  q.schedule(1, 2.0);
  q.reset(6);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.n(), 6u);
  EXPECT_EQ(q.heap_size(), 0u);
  EXPECT_FALSE(q.scheduled(0));
  q.schedule(5, 1.5);
  EXPECT_EQ(q.pop().id, 5u);
}

// The oracle: per-agent pending time in a std::map, popped by exhaustive
// (time, label) minimum — trivially correct, O(n) per op.
struct Oracle {
  std::map<AgentId, double> pending;

  void schedule(AgentId u, double t) { pending[u] = t; }
  void cancel(AgentId u) { pending.erase(u); }
  EventQueue::Event pop() {
    auto best = pending.begin();
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->second < best->second ||
          (it->second == best->second && it->first < best->first)) {
        best = it;
      }
    }
    const EventQueue::Event e{best->second, best->first};
    pending.erase(best);
    return e;
  }
};

TEST(EventQueueProperty, MatchesOracleUnderRandomInterleaving) {
  const std::uint32_t kN = 48;
  rfc::support::Xoshiro256 rng(0xE0E1u);
  for (int trial = 0; trial < 30; ++trial) {
    // Some trials start at the generation wrap boundary so the property
    // test also sweeps the counters across it.
    const EventQueue::Generation g0 =
        trial % 3 == 0
            ? std::numeric_limits<EventQueue::Generation>::max() - 5
            : 0;
    EventQueue q(kN, g0);
    Oracle oracle;
    for (int op = 0; op < 600; ++op) {
      const auto dice = rng.below(10);
      const AgentId u = static_cast<AgentId>(rng.below(kN));
      if (dice < 5) {
        const double t = rng.uniform01() * 100.0;
        q.schedule(u, t);
        oracle.schedule(u, t);
      } else if (dice < 7) {
        q.cancel(u);
        oracle.cancel(u);
      } else if (!oracle.pending.empty()) {
        const auto expected = oracle.pop();
        const auto got = q.pop();
        ASSERT_EQ(got.id, expected.id) << "op " << op;
        ASSERT_DOUBLE_EQ(got.time, expected.time) << "op " << op;
      }
      // Shared invariants after every operation.
      ASSERT_EQ(q.live(), oracle.pending.size()) << "op " << op;
      ASSERT_EQ(q.empty(), oracle.pending.empty()) << "op " << op;
      // The lazy-deletion bound: stale entries never outnumber live ones
      // by more than the compaction slack.
      ASSERT_LE(q.heap_size(), 2 * q.live() + EventQueue::kCompactionSlack)
          << "op " << op;
      if (!oracle.pending.empty()) {
        const AgentId probe = oracle.pending.begin()->first;
        ASSERT_TRUE(q.scheduled(probe));
        ASSERT_DOUBLE_EQ(q.time_of(probe), oracle.pending.begin()->second);
      }
    }
    // Drain both completely: the full pop orders must agree.
    while (!oracle.pending.empty()) {
      const auto expected = oracle.pop();
      const auto got = q.pop();
      ASSERT_EQ(got.id, expected.id);
      ASSERT_DOUBLE_EQ(got.time, expected.time);
    }
    ASSERT_TRUE(q.empty());
  }
}

TEST(ActiveSet, BuildSampleSwapRemove) {
  ActiveSet s;
  EXPECT_FALSE(s.built());
  s.build({2, 4, 6, 8});
  EXPECT_TRUE(s.built());
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.at(1), 4u);
  s.swap_remove(1);  // 4 replaced by the tail (8).
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(1), 8u);
  s.swap_remove(2);
  s.swap_remove(0);
  s.swap_remove(0);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.built());  // Emptied, not unbuilt.
}

}  // namespace
}  // namespace rfc::sim
