#include "support/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfc::support {
namespace {

TEST(FitLinear, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-10);
  EXPECT_NEAR(f.slope, 2.0, 1e-10);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-10);
  EXPECT_NEAR(f.predict(10), 21.0, 1e-9);
}

TEST(FitLinear, NoisyDataStillRecoversSlope) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(5.0 * i + 2.0 + ((i % 3) - 1) * 0.1);
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 5.0, 0.01);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(FitLinear, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // Vertical data (all x equal) must not divide by zero.
  const LinearFit f = fit_linear({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
}

TEST(FitPower, ExactPowerLaw) {
  std::vector<double> x, y;
  for (const double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_NEAR(f.exponent, 2.0, 1e-9);
  EXPECT_NEAR(f.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(f.predict(32), 3.0 * 32 * 32, 1e-6);
}

TEST(FitPower, IgnoresNonPositivePoints) {
  const PowerFit f = fit_power({0.0, 1.0, 2.0, 4.0}, {5.0, 2.0, 4.0, 8.0});
  EXPECT_NEAR(f.exponent, 1.0, 1e-9);  // The (0,5) point is dropped.
}

TEST(FitPower, QuasilinearBitsLookSlightlySuperlinear) {
  // n log^3 n over a decade fits as n^e with 1 < e < 1.7 — the shape E3
  // relies on to separate P from the quadratic baseline.
  std::vector<double> x, y;
  for (std::uint32_t n = 64; n <= 8192; n *= 2) {
    x.push_back(n);
    const double l = std::log2(static_cast<double>(n));
    y.push_back(static_cast<double>(n) * l * l * l);
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_GT(f.exponent, 1.0);
  EXPECT_LT(f.exponent, 1.7);
  EXPECT_GT(f.r_squared, 0.99);
}

}  // namespace
}  // namespace rfc::support
