#include "support/chi_square.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace rfc::support {
namespace {

TEST(RegularizedGammaQ, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_q(1.0, 0.0), 1.0);
  EXPECT_NEAR(regularized_gamma_q(1.0, 1e9), 0.0, 1e-12);
}

TEST(RegularizedGammaQ, ExponentialSpecialCase) {
  // Q(1, x) = exp(-x).
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_q(1.0, x), std::exp(-x), 1e-10);
  }
}

TEST(ChiSquareSf, KnownCriticalValues) {
  // Classic table entries: P(X >= x) = 0.05.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(chi_square_sf(5.991, 2), 0.05, 0.001);
  EXPECT_NEAR(chi_square_sf(16.919, 9), 0.05, 0.001);
  // And the 0.99 tail.
  EXPECT_NEAR(chi_square_sf(0.000157, 1), 0.99, 0.002);
}

TEST(ChiSquareSf, ZeroDofIsVacuous) {
  EXPECT_DOUBLE_EQ(chi_square_sf(10.0, 0), 1.0);
}

TEST(ChiSquareGof, PerfectFitHasHighP) {
  const auto r = chi_square_gof({250, 250, 250, 250},
                                {0.25, 0.25, 0.25, 0.25});
  EXPECT_EQ(r.dof, 3u);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_FALSE(r.rejected(0.05));
}

TEST(ChiSquareGof, GrossMismatchRejected) {
  const auto r = chi_square_gof({900, 100}, {0.5, 0.5});
  EXPECT_TRUE(r.rejected(0.001));
}

TEST(ChiSquareGof, UnnormalizedProbsAccepted) {
  const auto a = chi_square_gof({100, 200}, {1.0, 2.0});
  const auto b = chi_square_gof({100, 200}, {1.0 / 3, 2.0 / 3});
  EXPECT_NEAR(a.statistic, b.statistic, 1e-9);
}

TEST(ChiSquareGof, ZeroExpectationWithObservationsIsInfinite) {
  const auto r = chi_square_gof({10, 5}, {1.0, 0.0});
  EXPECT_TRUE(std::isinf(r.statistic));
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(ChiSquareGof, ZeroExpectationWithoutObservationsIsFine) {
  const auto r = chi_square_gof({10, 0}, {1.0, 0.0});
  EXPECT_FALSE(std::isinf(r.statistic));
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(ChiSquareGof, EmptyInputsAreVacuous) {
  const auto r = chi_square_gof({}, {});
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(ChiSquareGof, UniformSamplesUsuallyAccepted) {
  // Property: data actually drawn from the hypothesized distribution should
  // rarely be rejected at alpha = 1e-3.
  Xoshiro256 rng(5);
  int rejections = 0;
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<std::uint64_t> counts(10, 0);
    for (int i = 0; i < 5000; ++i) ++counts[rng.below(10)];
    const auto r = chi_square_gof(counts, std::vector<double>(10, 0.1));
    if (r.rejected(1e-3)) ++rejections;
  }
  EXPECT_LE(rejections, 2);
}

}  // namespace
}  // namespace rfc::support
