// E7 — Theorem 7: Protocol P is a w.h.p. t-strong equilibrium for
// t = o(n / log n).
//
// For each coalition size and each deviation strategy we measure the
// coalition's win rate and the beneficiary's expected utility
// (win - χ·fail), against the honest control (= the fair share |C|/|A|).
// Expected shape: no deviation's win-rate CI exceeds the fair share;
// failure-inducing deviations have *worse* utility than honesty.
//
// The ablation block repeats the two forging attacks with the completeness
// cross-check disabled (the naive literal reading of footnote 5), showing
// the check is load-bearing: the attacks then win outright.
#include "analysis/equilibrium.hpp"
#include "exp_util.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E7 (Theorem 7): w.h.p. t-strong equilibrium",
      "Expected shape: every deviation's win rate <= fair share (within CI "
      "noise); utility(chi=1) never above the honest row.");

  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 256));
  const auto trials = rfc::exputil::sweep_trials(args, 200, 1500);
  const double gamma = args.get_double("gamma", 4.0);
  const double chi = args.get_double("chi", 1.0);
  const std::vector<std::uint32_t> coalition_sizes = {1, 8, 32};

  for (const auto t : coalition_sizes) {
    std::printf("--- coalition size t=%u (fair share %.4f) ---\n", t,
                static_cast<double>(t) / n);
    rfc::support::Table table({"deviation", "win rate", "95% CI",
                               "fail rate", "utility", "gain vs honest"});
    double honest_utility = 0.0;
    for (const auto strategy : rfc::rational::all_deviation_strategies()) {
      rfc::analysis::DeviationConfig cfg;
      cfg.scheduler = scheduler;
      cfg.n = n;
      cfg.gamma = gamma;
      cfg.coalition_size = t;
      cfg.strategy = strategy;
      cfg.seed = args.get_uint("seed", 707);
      const auto report = rfc::analysis::measure_deviation(cfg, trials);
      if (strategy == rfc::rational::DeviationStrategy::kHonest) {
        honest_utility = report.utility(chi);
      }
      const double gain = report.utility(chi) - honest_utility;
      table.add_row({
          rfc::rational::to_string(strategy),
          rfc::support::Table::fmt(report.win_rate(), 4),
          "[" + rfc::support::Table::fmt(report.win_ci().lo, 4) + ", " +
              rfc::support::Table::fmt(report.win_ci().hi, 4) + "]",
          rfc::support::Table::fmt(report.fail_rate(), 3),
          rfc::support::Table::fmt(report.utility(chi), 4),
          (gain > 0.01 ? "+" : "") + rfc::support::Table::fmt(gain, 4),
      });
    }
    rfc::exputil::print_table(args, table, "");
  }

  // Ablation: disable the completeness cross-check (verification checks
  // only the votes *present* in W_min against declarations).
  std::printf("--- ablation: verification without the completeness check "
              "(t=8) ---\n");
  rfc::support::Table ablation({"deviation", "strict", "win rate",
                                "fail rate"});
  for (const auto strategy :
       {rfc::rational::DeviationStrategy::kForgedEmptyCert,
        rfc::rational::DeviationStrategy::kForgedCoalitionCert,
        rfc::rational::DeviationStrategy::kVoteDrop}) {
    for (const bool strict : {true, false}) {
      rfc::analysis::DeviationConfig cfg;
      cfg.scheduler = scheduler;
      cfg.n = n;
      cfg.gamma = gamma;
      cfg.coalition_size = 8;
      cfg.strategy = strategy;
      cfg.strict_verification = strict;
      cfg.seed = args.get_uint("seed", 707);
      const auto report = rfc::analysis::measure_deviation(cfg, trials);
      ablation.add_row({
          rfc::rational::to_string(strategy),
          strict ? "yes" : "no",
          rfc::support::Table::fmt(report.win_rate(), 4),
          rfc::support::Table::fmt(report.fail_rate(), 3),
      });
    }
  }
  rfc::exputil::print_table(
      args,
      ablation,
      "Without completeness the forged-coalition-cert attack wins ~always: "
      "the cross-check is exactly the inconsistency the proof of Claim 1 "
      "relies on.");
  return 0;
}
