// Shared CLI plumbing of the transport binaries: `node` (one node process)
// and `exp_socket` (the launcher) must agree on every workload flag — both
// sides derive the same Workload from the same flags, or the cross-check
// is comparing different experiments.  The NODE-REPORT line is the
// machine-readable channel from a node process back to the launcher.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "net/harness.hpp"
#include "sim/fault_model.hpp"
#include "support/cli.hpp"

namespace rfc::benchnet {

inline rfc::sim::FaultPlacement parse_placement(const std::string& text) {
  for (const auto p : rfc::sim::all_fault_placements()) {
    if (rfc::sim::to_string(p) == text) return p;
  }
  throw std::invalid_argument("unknown fault placement '" + text + "'");
}

inline rfc::gossip::Mechanism parse_mechanism(const std::string& text) {
  for (const auto m : rfc::gossip::all_mechanisms()) {
    if (rfc::gossip::to_string(m) == text) return m;
  }
  throw std::invalid_argument("unknown gossip mechanism '" + text + "'");
}

/// Builds the cluster spec for one workload kind from the shared flags:
/// --n, --seed, --scheduler, --faulty, --placement, --mechanism,
/// --rumor-bits, --gamma, --nodes, --timeout-ms.
inline rfc::net::ClusterSpec cluster_spec_from_cli(
    const rfc::support::CliArgs& args, rfc::net::ClusterSpec::Kind kind) {
  rfc::net::ClusterSpec spec;
  spec.kind = kind;
  spec.num_nodes = static_cast<std::uint32_t>(args.get_uint("nodes", 4));
  spec.sync_timeout_ms =
      static_cast<int>(args.get_uint("timeout-ms", 30000));
  spec.resend_interval_ms =
      static_cast<int>(args.get_uint("resend-ms", 150));
  spec.linger_ms = static_cast<int>(args.get_uint("linger-ms", 0));

  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 48));
  const std::uint64_t seed = args.get_uint("seed", 1234);
  const auto scheduler =
      rfc::sim::SchedulerSpec::parse(args.get("scheduler", "synchronous"));
  const auto num_faulty =
      static_cast<std::uint32_t>(args.get_uint("faulty", 0));
  const auto placement =
      num_faulty == 0
          ? rfc::sim::FaultPlacement::kNone
          : parse_placement(args.get("placement", "random"));

  if (kind == rfc::net::ClusterSpec::Kind::kRumor) {
    spec.rumor.n = n;
    spec.rumor.seed = seed;
    spec.rumor.scheduler = scheduler;
    spec.rumor.num_faulty = num_faulty;
    spec.rumor.placement = placement;
    spec.rumor.mechanism = parse_mechanism(args.get("mechanism", "push-pull"));
    spec.rumor.rumor_bits = args.get_uint("rumor-bits", 64);
  } else {
    spec.protocol.n = n;
    spec.protocol.seed = seed;
    spec.protocol.scheduler = scheduler;
    spec.protocol.num_faulty = num_faulty;
    spec.protocol.placement = placement;
    spec.protocol.gamma = args.get_double("gamma", 4.0);
  }
  return spec;
}

/// One line per node process, parsed back by the launcher.  The network /
/// churn counters are always zero on transport runs today (the NodeDriver
/// is adversary-free) but travel anyway, so the launcher-side cross-check
/// against the engine covers the full Metrics struct.
inline std::string format_node_report(const rfc::net::NodeReport& r) {
  char buffer[640];
  std::snprintf(
      buffer, sizeof buffer,
      "NODE-REPORT node=%" PRIu32 " first=%" PRIu32 " end=%" PRIu32
      " complete=%d rounds=%" PRIu64 " digest=0x%016" PRIx64
      " pushes=%" PRIu64 " pull_requests=%" PRIu64 " pull_replies=%" PRIu64
      " total_bits=%" PRIu64 " max_message_bits=%" PRIu64
      " active_links=%" PRIu64 " denials=%" PRIu64
      " net_drops=%" PRIu64 " net_dups=%" PRIu64 " net_corruptions=%" PRIu64
      " net_delays=%" PRIu64 " churn_crashes=%" PRIu64,
      r.node_id, r.first_label, r.end_label, r.complete ? 1 : 0, r.rounds,
      r.state_digest, r.metrics.pushes, r.metrics.pull_requests,
      r.metrics.pull_replies, r.metrics.total_bits,
      r.metrics.max_message_bits, r.metrics.active_links, r.metrics.denials,
      r.metrics.net_drops, r.metrics.net_dups, r.metrics.net_corruptions,
      r.metrics.net_delays, r.metrics.churn_crashes);
  return buffer;
}

/// Inverse of format_node_report; std::nullopt for any other line.
inline std::optional<rfc::net::NodeReport> parse_node_report(
    const std::string& line) {
  const auto start = line.find("NODE-REPORT ");
  if (start == std::string::npos) return std::nullopt;

  rfc::net::NodeReport r;
  int complete = 0;
  const int fields = std::sscanf(
      line.c_str() + start,
      "NODE-REPORT node=%" SCNu32 " first=%" SCNu32 " end=%" SCNu32
      " complete=%d rounds=%" SCNu64 " digest=0x%" SCNx64
      " pushes=%" SCNu64 " pull_requests=%" SCNu64 " pull_replies=%" SCNu64
      " total_bits=%" SCNu64 " max_message_bits=%" SCNu64
      " active_links=%" SCNu64 " denials=%" SCNu64
      " net_drops=%" SCNu64 " net_dups=%" SCNu64 " net_corruptions=%" SCNu64
      " net_delays=%" SCNu64 " churn_crashes=%" SCNu64,
      &r.node_id, &r.first_label, &r.end_label, &complete, &r.rounds,
      &r.state_digest, &r.metrics.pushes, &r.metrics.pull_requests,
      &r.metrics.pull_replies, &r.metrics.total_bits,
      &r.metrics.max_message_bits, &r.metrics.active_links,
      &r.metrics.denials, &r.metrics.net_drops, &r.metrics.net_dups,
      &r.metrics.net_corruptions, &r.metrics.net_delays,
      &r.metrics.churn_crashes);
  if (fields != 18) return std::nullopt;
  r.complete = complete != 0;
  return r;
}

}  // namespace rfc::benchnet
