// E5 — Lemma 3 / Theorem 4: Protocol P tolerates any worst-case permanent
// fault pattern of up to αn agents, 0 <= α < 1, with γ = γ(α).
//
// We sweep the fault fraction α, the adversarial placement family, and γ,
// and report the success rate.  Expected shape: for every α < 1 there is a
// constant γ(α) (growing with α) with success rate 1.0, independent of the
// placement; too-small γ fails first at large α.
#include "analysis/montecarlo.hpp"
#include "core/runner.hpp"
#include "exp_util.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  const auto network = rfc::exputil::network_spec(args);
  rfc::exputil::print_header(
      "E5 (Lemma 3): tolerance of worst-case permanent faults",
      "Expected shape: success 1.0 once gamma >= gamma(alpha); placement "
      "family does not matter (the protocol is label-symmetric).");

  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 256));
  const auto trials = rfc::exputil::sweep_trials(args, 60, 400);
  const std::vector<double> alphas = {0.0, 0.1, 0.3, 0.5, 0.7};
  const std::vector<double> gammas = {2.0, 4.0, 8.0};

  // Placement sweep at fixed gamma.
  rfc::support::Table table({"alpha", "placement", "gamma", "success rate",
                             "mean min votes"});
  for (const double alpha : alphas) {
    for (const auto placement : rfc::sim::all_fault_placements()) {
      if (alpha == 0.0 && placement != rfc::sim::FaultPlacement::kNone) {
        continue;
      }
      if (alpha > 0.0 && placement == rfc::sim::FaultPlacement::kNone) {
        continue;
      }
      for (const double gamma : gammas) {
        rfc::core::RunConfig cfg;
        cfg.scheduler = scheduler;
        cfg.network = network;
        cfg.n = n;
        cfg.gamma = gamma;
        cfg.seed = args.get_uint("seed", 505);
        cfg.num_faulty = static_cast<std::uint32_t>(alpha * n);
        cfg.placement = placement;

        std::uint64_t successes = 0;
        double votes = 0;
        const auto results =
            rfc::analysis::run_trials<rfc::core::RunResult>(
                trials, cfg.seed,
                [&cfg](std::uint64_t seed, std::size_t) {
                  rfc::core::RunConfig run = cfg;
                  run.seed = seed;
                  return rfc::core::run_protocol(run);
                });
        for (const auto& r : results) {
          if (!r.failed()) ++successes;
          votes += r.events.min_votes;
        }
        table.add_row({
            rfc::support::Table::fmt(alpha, 1),
            rfc::sim::to_string(placement),
            rfc::support::Table::fmt(gamma, 1),
            rfc::support::Table::fmt(
                static_cast<double>(successes) /
                    static_cast<double>(trials), 3),
            rfc::support::Table::fmt(
                votes / static_cast<double>(trials), 1),
        });
      }
    }
  }
  rfc::exputil::print_table(
      args,
      table,
      "Failures at high alpha with small gamma are vote-starvation and "
      "incomplete Find-Min broadcasts — exactly the events gamma(alpha) "
      "buys back (Lemma 3).");
  return 0;
}
