// E12 — open problem #2: the asynchronous (sequential) GOSSIP model.
//
// One uniformly random agent wakes per step.  We measure rumor-spreading
// completion in *steps* and compare against the synchronous model's
// rounds × n (the natural exchange rate: n activations per synchronous
// round).  Expected shape: steps/(n ln n) flat — the sequential model costs
// a Θ(log n)-factor more activations than the synchronous one spends on a
// broadcast, and nothing worse; this is the substrate on which an
// asynchronous Protocol P would run.  All activation policies are selected
// through sim::SchedulerSpec; E12d/E12e sweep the registered spectrum,
// including the continuous-time Poisson clock.
#include <algorithm>
#include <cmath>
#include <string>

#include "analysis/montecarlo.hpp"
#include "baseline/naive_election.hpp"
#include "core/async_protocol.hpp"
#include "core/params.hpp"
#include "exp_util.hpp"
#include "gossip/rumor.hpp"
#include "sim/scheduler_spec.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  rfc::exputil::print_header(
      "E12 (open problem #2): sequential GOSSIP substrate",
      "Expected shape: async steps / (n ln n) flat in n; sync rounds "
      "* n and async steps within a constant of each other per informed "
      "agent.");

  const auto sizes = rfc::exputil::sweep_sizes(args);
  const auto trials = rfc::exputil::sweep_trials(args, 20, 100);

  rfc::support::Table table({"n", "mechanism", "sync rounds", "async steps",
                             "steps/(n ln n)", "steps/(sync*n)",
                             "complete"});
  for (const auto n : sizes) {
    for (const auto mech :
         {rfc::gossip::Mechanism::kPushPull, rfc::gossip::Mechanism::kPull}) {
      rfc::support::OnlineStats sync_rounds, async_steps;
      std::uint64_t complete = 0;
      const auto results = rfc::analysis::run_trials<
          std::pair<rfc::gossip::SpreadResult, rfc::gossip::SpreadResult>>(
          trials, args.get_uint("seed", 113),
          [&](std::uint64_t seed, std::size_t) {
            rfc::gossip::SpreadConfig cfg;
            cfg.n = n;
            cfg.mechanism = mech;
            cfg.seed = seed;
            cfg.max_rounds = 10'000;
            const auto sync = rfc::gossip::run_rumor_spreading(cfg);
            cfg.scheduler = rfc::sim::SchedulerSpec::sequential();
            cfg.max_rounds = 200ull * n *
                             static_cast<std::uint64_t>(std::log(n) + 1);
            const auto async = rfc::gossip::run_rumor_spreading(cfg);
            return std::make_pair(sync, async);
          });
      for (const auto& [sync, async] : results) {
        sync_rounds.add(static_cast<double>(sync.rounds));
        async_steps.add(static_cast<double>(async.rounds));
        if (async.complete) ++complete;
      }
      const double n_ln_n = n * std::log(static_cast<double>(n));
      table.add_row({
          rfc::support::Table::fmt_int(n),
          rfc::gossip::to_string(mech),
          rfc::support::Table::fmt(sync_rounds.mean(), 1),
          rfc::support::Table::fmt(async_steps.mean(), 0),
          rfc::support::Table::fmt(async_steps.mean() / n_ln_n, 2),
          rfc::support::Table::fmt(
              async_steps.mean() / (sync_rounds.mean() * n), 2),
          rfc::support::Table::fmt(
              static_cast<double>(complete) / static_cast<double>(trials),
              2),
      });
    }
  }
  rfc::exputil::print_table(
      args,
      table,
      "A sequential activation schedule costs Θ(n log n) steps per "
      "broadcast — the coupon-collector price of unsynchronized wake-ups. "
      "Protocol P's phase alignment does not survive this model; providing "
      "it is the paper's second open problem.");

  // E12b: a concrete symptom of lost synchrony.  The naive (non-rational)
  // min-key election still *runs* asynchronously — each agent spends its q
  // pulls whenever it wakes — but agents now finish at different times, so
  // early finishers can freeze on a stale minimum.  Extra budget buys
  // agreement back.
  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 256));
  const auto trials2 = rfc::exputil::sweep_trials(args, 100, 500);
  rfc::support::Table t2({"budget multiplier", "agreement rate (async)",
                          "agreement rate (sync)"});
  for (const double mult : {0.5, 1.0, 2.0, 4.0}) {
    std::uint64_t async_ok = 0, sync_ok = 0;
    const auto results = rfc::analysis::run_trials<std::pair<bool, bool>>(
        trials2, args.get_uint("seed", 114),
        [&](std::uint64_t seed, std::size_t) {
          rfc::baseline::NaiveElectionConfig cfg;
          cfg.n = n;
          cfg.gamma = 4.0 * mult;  // Sync comparison at the same budget.
          cfg.seed = seed;
          const bool sync_agree =
              rfc::baseline::run_naive_election(cfg).agreement;
          cfg.gamma = 4.0;
          cfg.scheduler = rfc::sim::SchedulerSpec::sequential();
          cfg.budget_multiplier = mult;
          const bool async_agree =
              rfc::baseline::run_naive_election(cfg).agreement;
          return std::make_pair(async_agree, sync_agree);
        });
    for (const auto& [async_agree, sync_agree] : results) {
      if (async_agree) ++async_ok;
      if (sync_agree) ++sync_ok;
    }
    t2.add_row({
        rfc::support::Table::fmt(mult, 1),
        rfc::support::Table::fmt(
            static_cast<double>(async_ok) / static_cast<double>(trials2), 3),
        rfc::support::Table::fmt(
            static_cast<double>(sync_ok) / static_cast<double>(trials2), 3),
    });
  }
  rfc::exputil::print_table(
      args, t2,
      "Losing round alignment costs real reliability at equal budgets — "
      "the concrete obstacle an asynchronous Protocol P must overcome.");

  // E12c: our exploratory asynchronous Protocol P (core/async_protocol).
  // Guard bands of `slack` idle activations protect vote completeness, and
  // an extended Find-Min phase absorbs scheduling jitter.  We sweep the
  // slack and report success rate and fairness (50/50 split).
  const auto trials3 = rfc::exputil::sweep_trials(args, 120, 600);
  rfc::support::Table t3({"n", "slack", "success rate",
                          "color-1 win | success", "fair share",
                          "steps/agent"});
  for (const std::uint32_t pn : {96u, 256u}) {
    for (const std::uint32_t slack : {0u, 10u, 20u, 40u, 80u}) {
      std::uint64_t ok = 0, wins1 = 0;
      rfc::support::OnlineStats steps;
      const auto results =
          rfc::analysis::run_trials<rfc::core::AsyncRunResult>(
              trials3, args.get_uint("seed", 115),
              [&](std::uint64_t seed, std::size_t) {
                rfc::core::AsyncRunConfig cfg;
                cfg.n = pn;
                cfg.gamma = 4.0;
                cfg.slack = slack;
                cfg.seed = seed;
                cfg.colors.assign(pn, 0);
                for (std::uint32_t i = 0; i < pn / 2; ++i) {
                  cfg.colors[i] = 1;
                }
                return rfc::core::run_async_protocol(cfg);
              });
      for (const auto& r : results) {
        steps.add(static_cast<double>(r.steps) / pn);
        if (!r.failed()) {
          ++ok;
          if (r.winner == 1) ++wins1;
        }
      }
      t3.add_row({
          rfc::support::Table::fmt_int(pn),
          rfc::support::Table::fmt_int(slack),
          rfc::support::Table::fmt(
              static_cast<double>(ok) / static_cast<double>(trials3), 3),
          ok ? rfc::support::Table::fmt(
                   static_cast<double>(wins1) / static_cast<double>(ok), 3)
             : "-",
          "0.500",
          rfc::support::Table::fmt(steps.mean(), 0),
      });
    }
  }
  rfc::exputil::print_table(
      args, t3,
      "With slack ~ 2 sqrt(q log n) idle activations per barrier the full "
      "audit pipeline survives sequential scheduling and stays fair.  The "
      "*equilibrium* analysis of this variant remains open, as in the "
      "paper.");

  // E12d: the scheduler spectrum, selected entirely through SchedulerSpec.
  // PartialAsyncScheduler interpolates between the paper's lock-step rounds
  // (p = 1) and near-sequential wake-ups (p -> 1/n); batched delivery wakes
  // contiguous rack blocks in rotation; the adversarial policy starves a
  // victim subset; the Poisson clock is the continuous-time asynchronous
  // model, whose virtual time directly exposes the Θ(log n) broadcast
  // bound.  Broadcast cost is reported in *activations* (events x expected
  // awake agents) so all policies share one axis.  `--horizon=V` caps every
  // run at V units of virtual time (Engine::run_until semantics) — the
  // same horizon means the same model time under every policy.
  {
    const auto sn = static_cast<std::uint32_t>(args.get_uint("n", 256));
    const auto trials4 = rfc::exputil::sweep_trials(args, 20, 100);
    const rfc::sim::Budget budget = rfc::exputil::run_budget(args);
    rfc::support::Table t4({"scheduler", "events", "activations/agent",
                            "virtual time", "complete"});
    struct Policy {
      rfc::sim::SchedulerSpec spec;
      double awake_per_event;  ///< Expected activations per event.
    };
    const std::vector<Policy> policies = {
        {rfc::sim::SchedulerSpec::synchronous(), static_cast<double>(sn)},
        {rfc::sim::SchedulerSpec::partial_async(0.5), 0.5 * sn},
        {rfc::sim::SchedulerSpec::partial_async(0.1), 0.1 * sn},
        {rfc::sim::SchedulerSpec::batched(4), sn / 4.0},
        {rfc::sim::SchedulerSpec::sequential(), 1.0},
        {rfc::sim::SchedulerSpec::poisson(), 1.0},
        {rfc::sim::SchedulerSpec::adversarial({.victim_fraction = 0.25}),
         1.0},
    };
    rfc::support::ThreadPool pool(0);  // Shared across the policy sweep.
    for (const Policy& policy : policies) {
      rfc::support::OnlineStats events, virtual_time;
      std::uint64_t complete = 0;
      const auto results =
          rfc::analysis::run_trials<rfc::gossip::SpreadResult>(
              pool, trials4, args.get_uint("seed", 116),
              [&](std::uint64_t seed, std::size_t) {
                rfc::gossip::SpreadConfig cfg;
                cfg.n = sn;
                cfg.mechanism = rfc::gossip::Mechanism::kPushPull;
                cfg.seed = seed;
                cfg.scheduler = policy.spec;
                cfg.budget = budget;
                cfg.max_rounds =
                    400ull * sn *
                    static_cast<std::uint64_t>(std::log(sn) + 1);
                return rfc::gossip::run_rumor_spreading(cfg);
              });
      for (const auto& r : results) {
        events.add(static_cast<double>(r.rounds));
        virtual_time.add(r.virtual_time);
        if (r.complete) ++complete;
      }
      t4.add_row({
          policy.spec.to_string(),
          rfc::support::Table::fmt(events.mean(), 0),
          rfc::support::Table::fmt(
              events.mean() * policy.awake_per_event / sn, 1),
          rfc::support::Table::fmt(virtual_time.mean(), 1),
          rfc::support::Table::fmt(
              static_cast<double>(complete) / static_cast<double>(trials4),
              2),
      });
    }
    rfc::exputil::print_table(
        args, t4,
        "One engine, seven wake models behind one SchedulerSpec: broadcast "
        "pays ~log n activations per agent under every non-adversarial "
        "policy (the Poisson clock's virtual time reads the Θ(log n) bound "
        "off directly), while the starvation adversary shifts the whole "
        "cost onto passive receptions — the robustness axis the rational "
        "analysis must eventually survive.");
  }

  // E12e (ROADMAP): the guard-band async Protocol P under the scheduler
  // spectrum — where does its completeness argument break?  The local
  // schedule counts own activations, so round-based policies keep agents
  // aligned (every agent wakes ~every event) while starvation desynchronizes
  // victims by construction.
  {
    const auto trials5 = rfc::exputil::sweep_trials(args, 60, 300);
    const auto pn = static_cast<std::uint32_t>(args.get_uint("n", 96));
    const auto slack =
        static_cast<std::uint32_t>(args.get_uint("slack", 40));
    rfc::support::Table t5({"scheduler", "success rate",
                            "color-1 win | success", "events/agent"});
    const std::vector<rfc::sim::SchedulerSpec> specs = {
        rfc::sim::SchedulerSpec::sequential(),
        rfc::sim::SchedulerSpec::poisson(),
        rfc::sim::SchedulerSpec::partial_async(0.5),
        rfc::sim::SchedulerSpec::partial_async(0.1),
        rfc::sim::SchedulerSpec::adversarial({.victim_fraction = 0.25}),
    };
    rfc::support::ThreadPool pool(0);
    for (const auto& spec : specs) {
      std::uint64_t ok = 0, wins1 = 0;
      rfc::support::OnlineStats events;
      const auto results =
          rfc::analysis::run_trials<rfc::core::AsyncRunResult>(
              pool, trials5, args.get_uint("seed", 117),
              [&](std::uint64_t seed, std::size_t) {
                rfc::core::AsyncRunConfig cfg;
                cfg.n = pn;
                cfg.gamma = 4.0;
                cfg.slack = slack;
                cfg.seed = seed;
                cfg.scheduler = spec;
                cfg.colors.assign(pn, 0);
                for (std::uint32_t i = 0; i < pn / 2; ++i) {
                  cfg.colors[i] = 1;
                }
                return rfc::core::run_async_protocol(cfg);
              });
      for (const auto& r : results) {
        events.add(static_cast<double>(r.steps) / pn);
        if (!r.failed()) {
          ++ok;
          if (r.winner == 1) ++wins1;
        }
      }
      t5.add_row({
          spec.to_string(),
          rfc::support::Table::fmt(
              static_cast<double>(ok) / static_cast<double>(trials5), 3),
          ok ? rfc::support::Table::fmt(
                   static_cast<double>(wins1) / static_cast<double>(ok), 3)
             : "-",
          rfc::support::Table::fmt(events.mean(), 0),
      });
    }
    rfc::exputil::print_table(
        args, t5,
        "Guard bands tuned for uniformly random wake-ups survive the "
        "Poisson clock (same wake distribution, different time axis) and "
        "round-based policies, but targeted starvation defeats any fixed "
        "slack: victims burn their guard band while favored agents run "
        "ahead — the completeness argument needs scheduler-aware slack, "
        "not more of it.");
  }

  // E12f: the *adaptive* adversary.  The paper's worst-case scheduler picks
  // whom to starve from what the protocol is doing; with the EngineView
  // observation hook the adversarial policy can spend its starvation budget
  // exactly on agents entering their voting window
  // (adversarial:phase=vote,budget=B) instead of pinning a victim set for
  // the whole run.  At equal n, guard band, and victim set, we sweep the
  // budget B and compare against the static victims= adversary; the cost
  // axis is Metrics::denials — wake-ups the policy withheld from an
  // eligible agent.  Expected shape: the static adversary defeats the
  // guard band spending ~total_activations·|victims| denials, while
  // phase=vote already defeats it at B ≈ (q+slack)·|victims| — the
  // adaptive adversary needs a strictly smaller budget because it starves
  // only where the completeness argument is vulnerable.
  {
    const auto trials6 = rfc::exputil::sweep_trials(args, 40, 200);
    const auto pn = static_cast<std::uint32_t>(args.get_uint("n", 96));
    const auto slack =
        static_cast<std::uint32_t>(args.get_uint("slack", 40));
    const auto params = rfc::core::ProtocolParams::make(pn, 4.0);
    std::vector<rfc::sim::AgentId> victims;
    for (rfc::sim::AgentId i = 0; i < std::max(1u, pn / 4); ++i) {
      victims.push_back(i);
    }
    const auto nv = static_cast<std::uint64_t>(victims.size());

    struct Adversary {
      std::string label;
      rfc::sim::SchedulerSpec spec;
    };
    std::vector<Adversary> adversaries = {
        {"static victims (whole run)",
         rfc::sim::SchedulerSpec::adversarial({.victim_ids = victims})}};
    for (const std::uint64_t budget :
         {params.q * nv / 2, params.q * nv, (params.q + slack) * nv,
          2 * (params.q + slack) * nv}) {
      adversaries.push_back(
          {"phase=vote, budget=" + std::to_string(budget),
           rfc::sim::SchedulerSpec::adversarial(
               {.victim_ids = victims,
                .target_phase = rfc::sim::AgentPhase::kVote,
                .budget = budget})});
    }

    rfc::support::Table t6({"adversary", "success rate", "spent denials",
                            "events/agent"});
    rfc::support::ThreadPool pool(0);
    for (const Adversary& adv : adversaries) {
      std::uint64_t ok = 0;
      rfc::support::OnlineStats spent, events;
      const auto results =
          rfc::analysis::run_trials<rfc::core::AsyncRunResult>(
              pool, trials6, args.get_uint("seed", 118),
              [&](std::uint64_t seed, std::size_t) {
                rfc::core::AsyncRunConfig cfg;
                cfg.n = pn;
                cfg.gamma = 4.0;
                cfg.slack = slack;
                cfg.seed = seed;
                cfg.scheduler = adv.spec;
                cfg.colors.assign(pn, 0);
                for (std::uint32_t i = 0; i < pn / 2; ++i) {
                  cfg.colors[i] = 1;
                }
                return rfc::core::run_async_protocol(cfg);
              });
      for (const auto& r : results) {
        if (!r.failed()) ++ok;
        spent.add(static_cast<double>(r.metrics.denials));
        events.add(static_cast<double>(r.steps) / pn);
      }
      t6.add_row({
          adv.label,
          rfc::support::Table::fmt(
              static_cast<double>(ok) / static_cast<double>(trials6), 3),
          rfc::support::Table::fmt(spent.mean(), 0),
          rfc::support::Table::fmt(events.mean(), 0),
      });
    }
    rfc::exputil::print_table(
        args, t6,
        "The adaptive adversary defeats the guard band with a strictly "
        "smaller starvation budget than the static victim set: holding "
        "the victims' voting window closed for ~(q+slack) laps is enough "
        "to drop their votes past every sealed certificate, at a fraction "
        "of the denials the whole-run adversary burns.");
  }

  // E12g: the *reactive* adversary (ROADMAP's last scheduler item).  E12f's
  // phase adversary still pins its victim set up front; the paper's
  // worst-case scheduler re-plans from protocol state.  With the
  // Agent::progress() observation the adversarial policy can re-rank the
  // pool every step (adversarial:target=RULE): min-cert starves the current
  // weakest progress holder, laggard the most-skewed local clock,
  // quorum-edge the agents about to cross a phase boundary.  We map the
  // three rules against the phase-static and whole-run adversaries at
  // equal denial budgets.  Expected shape: tracking the minimum lets the
  // adversary concentrate its whole budget on one victim-of-the-moment, so
  // target=min-cert defeats the guard band at a budget near the *per-agent*
  // schedule length (4q+3·slack) — strictly smaller than the
  // (q+slack)·|victims| the phase=vote adversary needs, because a pinned
  // set must pay per victim for votes to drop, while the reactive rule only
  // needs one agent held behind the certificate seal.
  {
    const auto trials7 = rfc::exputil::sweep_trials(args, 40, 200);
    const auto pn = static_cast<std::uint32_t>(args.get_uint("n", 96));
    const auto slack =
        static_cast<std::uint32_t>(args.get_uint("slack", 40));
    const auto params = rfc::core::ProtocolParams::make(pn, 4.0);
    std::vector<rfc::sim::AgentId> victims;
    for (rfc::sim::AgentId i = 0; i < std::max(1u, pn / 4); ++i) {
      victims.push_back(i);
    }
    const auto nv = static_cast<std::uint64_t>(victims.size());
    // One agent's whole local schedule — the budget that lets a reactive
    // rule hold a single victim behind every sealed certificate.
    const std::uint64_t sched = 4ull * params.q + 3ull * slack;
    const std::uint64_t phase_budget = (params.q + slack) * nv;

    struct Adversary {
      std::string label;
      rfc::sim::SchedulerSpec spec;
    };
    const auto reactive = [&](rfc::sim::ReactiveTarget rule, double fraction,
                              std::uint64_t budget) {
      return rfc::sim::SchedulerSpec::adversarial(
          {.victim_fraction = fraction, .target = rule, .budget = budget});
    };
    // Equal-budget matrix: at budget B the reactive rules starve
    // ceil(B/sched) victims-of-the-moment (each costs one schedule length
    // of laps to hold behind the seal), while phase=vote spreads B over its
    // pinned |victims| set.
    std::vector<Adversary> adversaries = {
        {"static victims (whole run)",
         rfc::sim::SchedulerSpec::adversarial({.victim_ids = victims})}};
    for (const std::uint64_t budget :
         {sched, 2 * sched, 4 * sched, phase_budget}) {
      const auto b = std::to_string(budget);
      const double fraction =
          std::min(1.0, static_cast<double>((budget + sched - 1) / sched) /
                            static_cast<double>(pn));
      adversaries.push_back(
          {"phase=vote, budget=" + b,
           rfc::sim::SchedulerSpec::adversarial(
               {.victim_ids = victims,
                .target_phase = rfc::sim::AgentPhase::kVote,
                .budget = budget})});
      adversaries.push_back(
          {"target=min-cert, budget=" + b,
           reactive(rfc::sim::ReactiveTarget::kMinCert, fraction, budget)});
      adversaries.push_back(
          {"target=laggard, budget=" + b,
           reactive(rfc::sim::ReactiveTarget::kLaggard, fraction, budget)});
      adversaries.push_back(
          {"target=quorum-edge, budget=" + b,
           reactive(rfc::sim::ReactiveTarget::kQuorumEdge, 0.25, budget)});
    }

    rfc::support::Table t7({"adversary", "success rate", "spent denials",
                            "events/agent"});
    rfc::support::ThreadPool pool(0);
    for (const Adversary& adv : adversaries) {
      std::uint64_t ok = 0;
      rfc::support::OnlineStats spent, events;
      const auto results =
          rfc::analysis::run_trials<rfc::core::AsyncRunResult>(
              pool, trials7, args.get_uint("seed", 119),
              [&](std::uint64_t seed, std::size_t) {
                rfc::core::AsyncRunConfig cfg;
                cfg.n = pn;
                cfg.gamma = 4.0;
                cfg.slack = slack;
                cfg.seed = seed;
                cfg.scheduler = adv.spec;
                cfg.colors.assign(pn, 0);
                for (std::uint32_t i = 0; i < pn / 2; ++i) {
                  cfg.colors[i] = 1;
                }
                return rfc::core::run_async_protocol(cfg);
              });
      for (const auto& r : results) {
        if (!r.failed()) ++ok;
        spent.add(static_cast<double>(r.metrics.denials));
        events.add(static_cast<double>(r.steps) / pn);
      }
      t7.add_row({
          adv.label,
          rfc::support::Table::fmt(
              static_cast<double>(ok) / static_cast<double>(trials7), 3),
          rfc::support::Table::fmt(spent.mean(), 0),
          rfc::support::Table::fmt(events.mean(), 0),
      });
    }
    rfc::exputil::print_table(
        args, t7,
        "Reacting beats pinning: a pinned victim set is all-or-nothing — "
        "below (q+slack)·|victims| the guard band absorbs every denial "
        "(success 1.0), at it the protocol collapses.  target=min-cert and "
        "its clock-skew twin target=laggard instead convert *any* budget "
        "into failure probability: one schedule length of denials "
        "(4q+3·slack) holds one victim-of-the-moment behind every sealed "
        "certificate and already breaks the w.h.p. completeness guarantee, "
        "at ~7x less than the phase adversary's threshold.  quorum-edge "
        "spreads the same budget across phase boundaries and behaves like "
        "the pinned set.");
  }

  // E12h: the *message-layer* adversary (sim::NetworkSpec).  The scheduler
  // adversaries above withhold wake-ups; the network adversary attacks the
  // messages themselves — drops starve Find-Min of pull replies, corruption
  // feeds the verifier tampered certificates (which it must catch and
  // meter, never adopt).  We map success probability over a drop × corrupt
  // grid at fixed n, slack, and gamma; every run composes the network spec
  // with the sequential scheduler through the same AsyncRunConfig.  The
  // corruption column is the *caught* tamper count (Metrics::
  // net_corruptions counts flips applied in transit; every one a verifier
  // sees must be rejected — adopting one would poison agreement, so any
  // success-rate cliff here must come from *lost* information, not from
  // accepted forgeries).
  {
    const auto trials8 = rfc::exputil::sweep_trials(args, 40, 200);
    const auto pn = static_cast<std::uint32_t>(args.get_uint("n", 96));
    const auto slack =
        static_cast<std::uint32_t>(args.get_uint("slack", 40));
    rfc::support::Table t8({"network", "success rate", "net drops",
                            "net corruptions", "events/agent"});
    std::vector<rfc::sim::NetworkSpec> specs = {rfc::sim::NetworkSpec::none()};
    for (const double drop : {0.02, 0.05, 0.10}) {
      char text[64];
      std::snprintf(text, sizeof text, "network:drop=%g", drop);
      specs.push_back(rfc::sim::NetworkSpec::parse(text));
    }
    for (const double corrupt : {0.01, 0.05}) {
      char text[64];
      std::snprintf(text, sizeof text, "network:corrupt=%g", corrupt);
      specs.push_back(rfc::sim::NetworkSpec::parse(text));
    }
    specs.push_back(
        rfc::sim::NetworkSpec::parse("network:drop=0.05,corrupt=0.01"));
    rfc::support::ThreadPool pool(0);
    for (const auto& net : specs) {
      std::uint64_t ok = 0;
      rfc::support::OnlineStats drops, corruptions, events;
      const auto results =
          rfc::analysis::run_trials<rfc::core::AsyncRunResult>(
              pool, trials8, args.get_uint("seed", 120),
              [&](std::uint64_t seed, std::size_t) {
                rfc::core::AsyncRunConfig cfg;
                cfg.n = pn;
                cfg.gamma = 4.0;
                cfg.slack = slack;
                cfg.seed = seed;
                cfg.network = net;
                cfg.colors.assign(pn, 0);
                for (std::uint32_t i = 0; i < pn / 2; ++i) {
                  cfg.colors[i] = 1;
                }
                return rfc::core::run_async_protocol(cfg);
              });
      for (const auto& r : results) {
        if (!r.failed()) ++ok;
        drops.add(static_cast<double>(r.metrics.net_drops));
        corruptions.add(static_cast<double>(r.metrics.net_corruptions));
        events.add(static_cast<double>(r.steps) / pn);
      }
      t8.add_row({
          net.to_string(),
          rfc::support::Table::fmt(
              static_cast<double>(ok) / static_cast<double>(trials8), 3),
          rfc::support::Table::fmt(drops.mean(), 0),
          rfc::support::Table::fmt(corruptions.mean(), 0),
          rfc::support::Table::fmt(events.mean(), 0),
      });
    }
    rfc::exputil::print_table(
        args, t8,
        "Uniform loss degrades gracefully — the guard band and the pull "
        "budget absorb small drop rates, and failures appear as *incomplete "
        "votes*, not wrong winners.  Corruption is strictly weaker than "
        "loss at equal rates: every tampered certificate is caught by "
        "verification (metered above) and behaves like one more lost "
        "reply.  A forgery-accepting verifier would show up here as a "
        "success-rate *increase* under corruption — the differential "
        "harness pins the opposite.");
  }
  return 0;
}
