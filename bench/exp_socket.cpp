// Transport cross-check launcher: run rumor spreading and Protocol P as N
// communicating node processes and prove the distributed execution equal
// to the in-memory engine at the same seeds.
//
// transport=loopback (the default, and what the bench smoke test runs)
// keeps the N nodes as threads of this process; transport=tcp/udp spawns N
// `node` processes (--node-bin) on localhost ports, parses their
// NODE-REPORT lines, and merges them.  Either way the merged result —
// completion, rounds, every Metrics counter, per-block state digests — is
// compared against gossip::run_rumor_spreading / core::run_protocol on the
// engine; any difference is printed and the process exits nonzero, which
// is what makes the CTest socket_smoke_* entries real acceptance tests.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cluster_flags.hpp"
#include "net/loopback.hpp"
#include "net/lossy_client.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using rfc::net::ClusterSpec;

struct RunOutcome {
  rfc::net::ClusterResult cluster;
  rfc::net::ClusterResult reference;
  std::string mismatch;
};

std::vector<std::string> child_args(const rfc::support::CliArgs& args,
                                    const ClusterSpec& spec,
                                    const char* workload,
                                    const std::string& transport,
                                    std::uint32_t node_id,
                                    std::uint16_t port_base) {
  const auto& cfgn = spec.kind == ClusterSpec::Kind::kRumor
                         ? spec.rumor.n
                         : spec.protocol.n;
  const std::uint32_t lo =
      rfc::sim::contiguous_block_begin(cfgn, spec.num_nodes, node_id);
  const std::uint32_t hi =
      rfc::sim::contiguous_block_begin(cfgn, spec.num_nodes, node_id + 1);
  std::vector<std::string> argv;
  argv.push_back("node");
  argv.push_back("--workload=" + std::string(workload));
  argv.push_back("--transport=" + transport);
  argv.push_back("--node-id=" + std::to_string(node_id));
  argv.push_back("--nodes=" + std::to_string(spec.num_nodes));
  argv.push_back("--port-base=" + std::to_string(port_base));
  argv.push_back("--label-range=" + std::to_string(lo) + "-" +
                 std::to_string(hi));
  argv.push_back("--timeout-ms=" + std::to_string(spec.sync_timeout_ms));
  // Workload flags travel verbatim so both sides derive the same Workload;
  // drop/resend/linger tune the transport only (node seeds its loss stream
  // per node id, so one shared --drop-seed does not drop in lockstep).
  for (const char* flag : {"n", "seed", "scheduler", "faulty", "placement",
                           "mechanism", "rumor-bits", "gamma", "drop",
                           "drop-seed", "resend-ms", "linger-ms"}) {
    if (args.has(flag)) {
      argv.push_back("--" + std::string(flag) + "=" + args.get(flag, ""));
    }
  }
  return argv;
}

/// Spawns one `node` process with stdout piped back; returns its pid.
pid_t spawn_node(const std::string& node_bin,
                 const std::vector<std::string>& argv, int* out_fd) {
  int fds[2];
  if (pipe(fds) != 0) throw std::runtime_error("exp_socket: pipe() failed");
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("exp_socket: fork() failed");
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    execv(node_bin.c_str(), cargv.data());
    std::fprintf(stderr, "exp_socket: execv(%s): %s\n", node_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(fds[1]);
  *out_fd = fds[0];
  return pid;
}

std::string read_all(int fd) {
  std::string out;
  char buffer[4096];
  for (;;) {
    const ssize_t got = read(fd, buffer, sizeof buffer);
    if (got <= 0) break;
    out.append(buffer, static_cast<std::size_t>(got));
  }
  close(fd);
  return out;
}

std::vector<rfc::net::NodeReport> run_process_cluster(
    const rfc::support::CliArgs& args, const ClusterSpec& spec,
    const char* workload, const std::string& transport,
    const std::string& node_bin, std::uint16_t port_base) {
  std::vector<pid_t> pids(spec.num_nodes);
  std::vector<int> fds(spec.num_nodes);
  for (std::uint32_t id = 0; id < spec.num_nodes; ++id) {
    pids[id] = spawn_node(
        node_bin,
        child_args(args, spec, workload, transport, id, port_base),
        &fds[id]);
  }

  std::vector<rfc::net::NodeReport> reports;
  bool failed = false;
  for (std::uint32_t id = 0; id < spec.num_nodes; ++id) {
    const std::string output = read_all(fds[id]);
    int status = 0;
    waitpid(pids[id], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "exp_socket: node %u exited with status %d\n", id,
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      failed = true;
      continue;
    }
    std::size_t pos = 0;
    bool parsed = false;
    while (pos < output.size()) {
      const std::size_t eol = output.find('\n', pos);
      const std::string line =
          output.substr(pos, eol == std::string::npos ? eol : eol - pos);
      if (const auto report = rfc::benchnet::parse_node_report(line)) {
        reports.push_back(*report);
        parsed = true;
      }
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
    if (!parsed) {
      std::fprintf(stderr, "exp_socket: node %u printed no NODE-REPORT\n",
                   id);
      failed = true;
    }
  }
  if (failed) {
    throw std::runtime_error("exp_socket: a node process failed");
  }
  return reports;
}

RunOutcome run_one(const rfc::support::CliArgs& args, ClusterSpec spec,
                   const char* workload, const std::string& transport,
                   const std::string& node_bin, std::uint16_t port_base) {
  const rfc::net::Workload wl = rfc::net::make_cluster_workload(spec);
  const double drop = args.get_double("drop", 0.0);
  RunOutcome outcome;
  if (transport == "loopback") {
    if (drop > 0.0) {
      // Injected loss on the in-process transport: every outgoing message
      // is dropped with probability `drop`, and the cross-check below must
      // STILL match the engine bit for bit — the driver's resend protocol
      // has to recover every lost frame, not merely terminate.
      if (spec.linger_ms == 0) spec.linger_ms = 1000;
      const std::uint64_t drop_seed = args.get_uint("drop-seed", 99);
      rfc::net::LoopbackHub hub(spec.num_nodes);
      outcome.cluster = rfc::net::merge_reports(
          wl, rfc::net::run_local_cluster(
                  spec, [&](rfc::net::NodeId id) {
                    return rfc::net::make_lossy_client(
                        rfc::net::make_comm_client(
                            rfc::net::TransportKind::kLoopback, &hub),
                        drop, rfc::support::derive_seed(drop_seed, id));
                  }));
    } else {
      outcome.cluster = rfc::net::merge_reports(
          wl, rfc::net::run_local_cluster(
                  spec, rfc::net::TransportKind::kLoopback));
    }
  } else {
    if (node_bin.empty()) {
      throw std::runtime_error(
          "exp_socket: --transport=" + transport +
          " spawns node processes and needs --node-bin=PATH");
    }
    outcome.cluster = rfc::net::merge_reports(
        wl, run_process_cluster(args, spec, workload, transport, node_bin,
                                port_base));
  }
  outcome.reference = rfc::net::reference_result(spec);
  outcome.mismatch = rfc::net::cross_check(outcome.cluster,
                                           outcome.reference);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  try {
    const std::string transport = args.get("transport", "loopback");
    (void)rfc::net::parse_transport_kind(transport);  // Validate early.
    const std::string workload = args.get("workload", "both");
    const std::string node_bin = args.get("node-bin", "");
    const auto port_base = static_cast<std::uint16_t>(args.get_uint(
        "port-base", 22000 + static_cast<std::uint16_t>(getpid() % 15000)));

    std::printf(
        "exp_socket: distributed transport cross-check (transport=%s)\n"
        "Claim: a cluster of communicating node processes computes the "
        "same execution\n"
        "as the in-memory engine at the same seeds — same completion, "
        "rounds, message\n"
        "counters, and per-block state digests.\n\n",
        transport.c_str());

    rfc::support::Table table({"workload", "nodes", "n", "complete",
                               "rounds", "messages", "digest", "check"});
    bool ok = true;
    std::uint16_t next_ports = port_base;
    for (const char* kind_name : {"rumor", "protocol"}) {
      if (workload != "both" && workload != kind_name) continue;
      const auto kind = std::string(kind_name) == "rumor"
                            ? ClusterSpec::Kind::kRumor
                            : ClusterSpec::Kind::kProtocol;
      const ClusterSpec spec =
          rfc::benchnet::cluster_spec_from_cli(args, kind);
      const RunOutcome outcome = run_one(args, spec, kind_name, transport,
                                         node_bin, next_ports);
      // Fresh ports per run: the previous listeners are gone but may
      // linger in TIME_WAIT.
      next_ports = static_cast<std::uint16_t>(
          next_ports + spec.num_nodes);
      const bool match = outcome.mismatch.empty();
      ok = ok && match;
      char digest[32];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(outcome.cluster.digest));
      table.add_row({kind_name, std::to_string(spec.num_nodes),
                     std::to_string(spec.kind == ClusterSpec::Kind::kRumor
                                        ? spec.rumor.n
                                        : spec.protocol.n),
                     outcome.cluster.complete ? "yes" : "no",
                     std::to_string(outcome.cluster.rounds),
                     std::to_string(outcome.cluster.metrics.messages()),
                     digest, match ? "ok" : "MISMATCH"});
      if (!match) {
        std::fprintf(stderr, "exp_socket: %s mismatch: %s\n", kind_name,
                     outcome.mismatch.c_str());
      }
    }
    std::printf("%s", table.render().c_str());
    if (!ok) return 1;
    std::printf("\nAll transport runs match the in-memory engine.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "exp_socket: %s\n", e.what());
    return 2;
  }
}
