// E10 — Definition 2(1) / Chernoff (Lemma 8): every active agent receives
// Θ(log n) votes.
//
// Each of the ~n active agents receives Binomial(|A| q, 1/n) votes with mean
// γ ln n · |A|/n; the Chernoff + union bound argument of Lemma 3 needs the
// *minimum* over agents to stay a constant fraction of the mean.  We sweep
// n and γ and report min/mean/max over all agents and trials.
#include <cmath>

#include "analysis/scaling.hpp"
#include "exp_util.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E10 (Def. 2.1): vote-count concentration around gamma ln n",
      "Expected shape: min votes > 0 always; min/mean ratio stable in n "
      "(concentration), mean ~= gamma ln n.");

  const auto sizes = rfc::exputil::sweep_sizes(args);
  const auto trials = rfc::exputil::sweep_trials(args, 24, 150);

  rfc::support::Table table({"n", "gamma", "mean q=ceil(g ln n)", "min votes",
                             "max votes", "min/ln n", "max/ln n"});
  for (const double gamma : {2.0, 4.0}) {
    rfc::core::RunConfig base;
    base.scheduler = scheduler;
    base.gamma = gamma;
    base.seed = args.get_uint("seed", 1010);
    const auto sweep = rfc::analysis::measure_scaling(base, sizes, trials);
    for (const auto& p : sweep.points) {
      const double ln_n = std::log(static_cast<double>(p.n));
      table.add_row({
          rfc::support::Table::fmt_int(p.n),
          rfc::support::Table::fmt(gamma, 1),
          rfc::support::Table::fmt(std::ceil(gamma * ln_n), 0),
          rfc::support::Table::fmt(p.min_votes.min(), 0),
          rfc::support::Table::fmt(p.max_votes.max(), 0),
          rfc::support::Table::fmt(p.min_votes.min() / ln_n, 2),
          rfc::support::Table::fmt(p.max_votes.max() / ln_n, 2),
      });
    }
  }
  rfc::exputil::print_table(
      args,
      table,
      "Both normalized extremes stay bounded away from 0 and infinity: the "
      "beta_1 log n <= X_u <= beta_2 log n window of Lemma 3's proof.");
  return 0;
}
