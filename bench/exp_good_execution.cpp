// E6 — Definitions 2 & 5: the "good execution" events hold w.h.p.
//
// Def. 2 (cooperative): (1) every active agent receives Θ(log n) votes,
// (2) all k_u distinct, (3) Find-Min reaches global agreement.
// Def. 5 (with a coalition): (1) every agent is commitment-audited by an
// honest agent, (3) every agent receives a vote from an honest agent the
// coalition did not pull.  We measure each event's empirical frequency.
#include <cmath>

#include "analysis/montecarlo.hpp"
#include "core/runner.hpp"
#include "exp_util.hpp"
#include "rational/strategies.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E6 (Def. 2 / Def. 5): good-execution events hold w.h.p.",
      "Expected shape: all event frequencies -> 1.0 with n for coalitions "
      "respecting t = o(n / log n); the oversized-coalition rows show the "
      "t bound of Theorem 7 is necessary (D5.3 collapses).");

  const auto trials = rfc::exputil::sweep_trials(args, 200, 1000);
  const auto sizes = rfc::exputil::sweep_sizes(args);
  const double gamma = args.get_double("gamma", 4.0);

  rfc::support::Table table({"n", "|C|", "C regime", "votes>=1", "k distinct",
                             "find-min agree", "audited (D5.1)",
                             "clean vote (D5.3)"});
  for (const auto n : sizes) {
    // Theorem-compliant coalition: t ~ n / (8 ln n) keeps the coalition's
    // total Commitment pulls (t*q = gamma*t*ln n) at most n/2, so honest
    // un-pulled voters still cover everyone.  The contrast row uses a
    // *linear* coalition (5% of n), which violates t = o(n / log n).
    const auto compliant = static_cast<std::uint32_t>(
        std::max(1.0, n / (8.0 * std::log(static_cast<double>(n)))));
    const auto oversized = std::max(1u, n / 20);
    for (const auto& [t, regime] :
         {std::pair{compliant, "o(n/log n)"},
          std::pair{oversized, "0.05 n (too big)"}}) {
      rfc::core::RunConfig cfg;
      cfg.scheduler = scheduler;
      cfg.n = n;
      cfg.gamma = gamma;
      cfg.seed = args.get_uint("seed", 606);
      for (std::uint32_t i = 0; i < t; ++i) cfg.coalition.push_back(i);
      // Coalition agents run the honest protocol here: Def. 5's events are
      // about what the *honest* agents achieve regardless of the coalition;
      // deviating strategies are exercised in E7.

      std::uint64_t votes_ok = 0, k_ok = 0, agree_ok = 0, audited_ok = 0,
                    clean_ok = 0;
      const auto results = rfc::analysis::run_trials<rfc::core::RunResult>(
          trials, cfg.seed,
          [&cfg](std::uint64_t seed, std::size_t) {
            rfc::core::RunConfig run = cfg;
            run.seed = seed;
            return rfc::core::run_protocol(run);
          });
      for (const auto& r : results) {
        if (r.events.min_votes >= 1) ++votes_ok;
        if (r.events.k_values_distinct) ++k_ok;
        if (r.events.find_min_agreement) ++agree_ok;
        if (r.events.every_agent_audited) ++audited_ok;
        if (r.events.every_agent_cleanly_voted) ++clean_ok;
      }
      const auto frac = [trials](std::uint64_t c) {
        return rfc::support::Table::fmt(
            static_cast<double>(c) / static_cast<double>(trials), 3);
      };
      table.add_row({rfc::support::Table::fmt_int(n),
                     rfc::support::Table::fmt_int(t), regime, frac(votes_ok),
                     frac(k_ok), frac(agree_ok), frac(audited_ok),
                     frac(clean_ok)});
    }
  }
  rfc::exputil::print_table(
      args,
      table,
      "These events are the preconditions of Claims 1-4; their w.h.p. "
      "failure probability is what the 1/n^Θ(1) terms absorb.");
  return 0;
}
