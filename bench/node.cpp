// One node process of a distributed GOSSIP run.
//
// Owns the contiguous label block [contiguous_block_begin(n, nodes, id),
// contiguous_block_begin(n, nodes, id+1)) and runs it through
// net::NodeDriver over the selected transport, then prints one NODE-REPORT
// line (bench/cluster_flags.hpp) for the launcher to merge and cross-check
// against the in-memory engine.  Usually spawned by exp_socket, but usable
// by hand, e.g. a 2-node TCP rumor run on one machine:
//
//   ./node --workload=rumor --transport=tcp --nodes=2 --node-id=0 \
//          --port-base=23000 --n=64 --seed=7 &
//   ./node --workload=rumor --transport=tcp --nodes=2 --node-id=1 \
//          --port-base=23000 --n=64 --seed=7
//
// Every workload flag must be identical across the node processes of one
// run (they derive the fault plan, RNG streams, and schedule from them).
#include <cstdio>
#include <exception>
#include <string>

#include "cluster_flags.hpp"
#include "net/loopback.hpp"
#include "net/lossy_client.hpp"
#include "sim/sharding.hpp"
#include "support/rng.hpp"

namespace {

std::uint32_t parse_label(const std::string& text) {
  return static_cast<std::uint32_t>(std::stoul(text));
}

}  // namespace

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  try {
    const std::string workload_name = args.get("workload", "rumor");
    rfc::net::ClusterSpec::Kind kind;
    if (workload_name == "rumor") {
      kind = rfc::net::ClusterSpec::Kind::kRumor;
    } else if (workload_name == "protocol") {
      kind = rfc::net::ClusterSpec::Kind::kProtocol;
    } else {
      throw std::invalid_argument(
          "--workload must be rumor or protocol, got '" + workload_name +
          "'");
    }
    const rfc::net::ClusterSpec spec =
        rfc::benchnet::cluster_spec_from_cli(args, kind);
    const rfc::net::Workload workload =
        rfc::net::make_cluster_workload(spec);

    const auto transport =
        rfc::net::parse_transport_kind(args.get("transport", "tcp"));
    rfc::net::NodeOptions options;
    options.node_id =
        static_cast<rfc::net::NodeId>(args.get_uint("node-id", 0));
    options.num_nodes = spec.num_nodes;
    options.sync_timeout_ms = spec.sync_timeout_ms;
    options.resend_interval_ms = spec.resend_interval_ms;
    options.linger_ms = spec.linger_ms;

    // --drop=P injects Bernoulli loss on every outgoing message (seeded per
    // node from --drop-seed, so nodes do not drop in lockstep) — the way
    // the lossy-UDP smoke exercises the driver's resend path on purpose.
    // A lossy run must linger: the final status broadcast may be dropped
    // and only the retransmit linger can answer for it.
    const double drop = args.get_double("drop", 0.0);
    if (!(drop >= 0.0 && drop < 1.0)) {
      throw std::invalid_argument("--drop must be in [0, 1)");
    }
    if (drop > 0.0 && !args.has("linger-ms")) options.linger_ms = 1000;

    // --label-range=LO-HI is declarative: the block is determined by
    // (n, nodes, node-id), and a mismatching range means the launcher and
    // this node disagree about the partition — stop before running.
    if (args.has("label-range")) {
      const std::string range = args.get("label-range", "");
      const auto dash = range.find('-');
      if (dash == std::string::npos) {
        throw std::invalid_argument("--label-range must be LO-HI");
      }
      const std::uint32_t lo = parse_label(range.substr(0, dash));
      const std::uint32_t hi = parse_label(range.substr(dash + 1));
      const std::uint32_t expect_lo = rfc::sim::contiguous_block_begin(
          workload.n, options.num_nodes, options.node_id);
      const std::uint32_t expect_hi = rfc::sim::contiguous_block_begin(
          workload.n, options.num_nodes, options.node_id + 1);
      if (lo != expect_lo || hi != expect_hi) {
        throw std::invalid_argument(
            "--label-range=" + range + " but node " +
            std::to_string(options.node_id) + " of " +
            std::to_string(options.num_nodes) + " owns [" +
            std::to_string(expect_lo) + "-" + std::to_string(expect_hi) +
            ")");
      }
    }

    const auto port_base =
        static_cast<std::uint16_t>(args.get_uint("port-base", 23000));
    const std::string host = args.get("host", "127.0.0.1");
    std::vector<rfc::net::PeerEndpoint> peers(options.num_nodes);
    for (std::uint32_t i = 0; i < options.num_nodes; ++i) {
      peers[i].host = host;
      peers[i].port = static_cast<std::uint16_t>(port_base + i);
    }

    // Loopback lives inside one process; a standalone node can only use it
    // as a single-node cluster (still useful to smoke the driver alone).
    rfc::net::LoopbackHub hub(options.num_nodes);
    rfc::net::CommClientPtr client =
        rfc::net::make_comm_client(transport, &hub);
    if (drop > 0.0) {
      client = rfc::net::make_lossy_client(
          std::move(client), drop,
          rfc::support::derive_seed(args.get_uint("drop-seed", 99),
                                    options.node_id));
    }

    rfc::net::NodeDriver driver(workload, options, *client);
    const rfc::net::NodeReport report = driver.run(peers);
    std::printf("%s\n", rfc::benchnet::format_node_report(report).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "node: %s\n", e.what());
    return 2;
  }
}
