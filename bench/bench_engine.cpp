// Microbenchmarks of the GOSSIP simulation engine itself: raw round
// throughput with idle, pushing, and pulling agents, plus per-policy
// scheduler dispatch overhead.  These bound how large an n the experiment
// sweeps can afford and baseline future scheduler work.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "gossip/rumor.hpp"
#include "sim/agent.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler_spec.hpp"

namespace {

using rfc::sim::Action;
using rfc::sim::Agent;
using rfc::sim::Context;
using rfc::sim::Engine;

/// An agent that does nothing — measures pure engine dispatch overhead.
class IdleAgent final : public Agent {
 public:
  Action on_round(const Context&) override { return Action::idle(); }
  rfc::sim::Payload serve_pull(const Context&, rfc::sim::AgentId) override {
    return {};
  }
  bool done() const override { return false; }
};

/// An agent that pulls a random peer every round (peer replies nothing).
class PullAgent final : public Agent {
 public:
  Action on_round(const Context& ctx) override {
    return Action::pull(ctx.random_peer());
  }
  rfc::sim::Payload serve_pull(const Context&, rfc::sim::AgentId) override {
    return {};
  }
  bool done() const override { return false; }
};

template <typename AgentT>
void run_rounds(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Engine engine({n, 42});
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<AgentT>());
  }
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_EngineIdleRound(benchmark::State& state) {
  run_rounds<IdleAgent>(state);
}
BENCHMARK(BM_EngineIdleRound)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EnginePullRound(benchmark::State& state) {
  run_rounds<PullAgent>(state);
}
BENCHMARK(BM_EnginePullRound)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EngineRumorRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Engine engine({n, 42});
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<rfc::gossip::RumorAgent>(
                            rfc::gossip::Mechanism::kPushPull, i == 0, 64));
  }
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// The two large args exercise the cache-blocked delivery path (it activates
// at n >= 2^16): the acceptance bar for the million-agent engine is the
// n=2^20 single-thread ns/agent staying within 1.5x of the seed's n=4096
// figure.
BENCHMARK(BM_EngineRumorRound)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(1 << 17)
    ->Arg(1 << 20);

/// Tail-regime agent for the sparse-round benchmark: a fixed 90% of labels
/// are done() from the start, the rest idle forever.  Opts into cacheable
/// observations (like every shipped protocol agent) so the engine's SoA
/// caches — and with them the incremental live list — are enabled.
class SparseTailAgent final : public Agent {
 public:
  explicit SparseTailAgent(bool is_done) noexcept : done_(is_done) {}
  Action on_round(const Context&) override { return Action::idle(); }
  rfc::sim::Payload serve_pull(const Context&, rfc::sim::AgentId) override {
    return {};
  }
  bool done() const override { return done_; }
  bool cacheable_observations() const noexcept override { return true; }

 private:
  bool done_;
};

// The sparse tail of a long run: 90% of agents already finished.  The
// live-list round costs O(active + messages) instead of the pre-sparse
// engine's O(n) label scan, so the per-*live*-agent time (items/sec counts
// live agents only) must stay flat as n grows 64x — if it climbs with n,
// the dead 90% are being walked again.
void BM_EngineSparseRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Engine engine({n, 42});
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<SparseTailAgent>(i % 10 != 0));
  }
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() * ((n + 9) / 10));
}
BENCHMARK(BM_EngineSparseRound)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

// The sharded synchronous round (sim/sharding.hpp) on the same push-pull
// rumor workload as BM_EngineRumorRound: args are (n, shards, threads), so
// {n, 1, 1} is the serial engine via the executor's delegation path and the
// speedup of {n, S, T} over it is the sharding win at equal semantics
// (results are bit-identical by construction).  Thread counts beyond the
// machine's cores measure oversubscription, not speedup.
void BM_ShardedRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto shards = static_cast<std::uint32_t>(state.range(1));
  const auto threads = static_cast<std::uint32_t>(state.range(2));
  Engine engine({n, 42, nullptr,
                 rfc::sim::make_synchronous_scheduler({shards, threads})});
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<rfc::gossip::RumorAgent>(
                            rfc::gossip::Mechanism::kPushPull, i == 0, 64));
  }
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShardedRound)
    ->Args({4096, 1, 1})
    ->Args({4096, 4, 2})
    ->Args({4096, 4, 4})
    ->Args({16384, 4, 4})
    ->Args({65536, 8, 4})
    ->Args({1 << 17, 8, 4})
    ->Args({1 << 20, 8, 4});

// Engine setup cost at scale: construction + agent installation + the
// per-agent RNG-stream derivation + one idle round — the fixed cost every
// Monte-Carlo trial pays before its first event.  Args are (n, shards,
// threads): {n, 1, 1} derives all n streams serially inside
// ensure_started; sharded configs prefetch each shard's RNG block on its
// own worker (sim/sharding.hpp), moving the O(n) SplitMix expansion off
// the serial path.
void BM_EngineSetup(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto shards = static_cast<std::uint32_t>(state.range(1));
  const auto threads = static_cast<std::uint32_t>(state.range(2));
  for (auto _ : state) {
    Engine engine({n, 42, nullptr,
                   rfc::sim::make_synchronous_scheduler({shards, threads})});
    for (std::uint32_t i = 0; i < n; ++i) {
      engine.set_agent(i, std::make_unique<IdleAgent>());
    }
    engine.step();
    benchmark::DoNotOptimize(engine.round());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSetup)
    ->Args({65536, 1, 1})
    ->Args({65536, 8, 4})
    ->Args({262144, 8, 4});

// Scheduler dispatch overhead: one engine.step() of idle agents under each
// registered policy, at fixed n.  Round-based policies pay O(n) per step
// (one phased round), activation-based ones O(1) (one wake-up), so
// items/sec is per *event*, not per agent — compare within a policy across
// future scheduler changes, not across policies.  This is the baseline
// number follow-on scheduler work (phase-aware adversary, batched
// delivery, sharded EngineCore) must not regress.
void BM_SchedulerDispatch(benchmark::State& state,
                          const std::string& spec_text) {
  const std::uint32_t n = 1024;
  const auto spec = rfc::sim::SchedulerSpec::parse(spec_text);
  Engine engine({n, 42, nullptr, spec.make()});
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.set_agent(i, std::make_unique<IdleAgent>());
  }
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_SchedulerDispatch, synchronous, "synchronous");
BENCHMARK_CAPTURE(BM_SchedulerDispatch, sequential, "sequential");
BENCHMARK_CAPTURE(BM_SchedulerDispatch, partial_async, "partial-async:p=0.5");
BENCHMARK_CAPTURE(BM_SchedulerDispatch, batched, "batched:block=8");
BENCHMARK_CAPTURE(BM_SchedulerDispatch, adversarial,
                  "adversarial:victim_fraction=0.25");
BENCHMARK_CAPTURE(BM_SchedulerDispatch, adversarial_phase,
                  "adversarial:victim_fraction=0.25,phase=vote");
BENCHMARK_CAPTURE(BM_SchedulerDispatch, poisson, "poisson");
BENCHMARK_CAPTURE(BM_SchedulerDispatch, poisson_heap, "poisson:queue=heap");

/// An agent that is done() from the start — engine-level dead weight.
class DoneAgent final : public Agent {
 public:
  Action on_round(const Context&) override { return Action::idle(); }
  rfc::sim::Payload serve_pull(const Context&, rfc::sim::AgentId) override {
    return {};
  }
  bool done() const override { return true; }
};

// Per-event cost of the continuous-time path in the end-phase regime that
// separates the two queue substrates: all agents but one are done, and the
// survivor sits at the *last* label so the run loop's short-circuiting
// all_done() scan walks the full done prefix.  The Gillespie scan path pays
// that O(n) scan per event (its own sampling is O(1) once the active set
// compacts); the heap path replaces it with the scheduler's O(1)
// exhausted() check and schedules only live agents, so its per-event cost
// stays flat as n grows.  Events run through Engine::run in small batches —
// the loop whose predicate is the cost being measured.  items/sec is per
// event; compare the scan-vs-heap trend across ->Arg(n), not absolute
// numbers.
void BM_SchedulerStep(benchmark::State& state, const std::string& spec_text) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto spec = rfc::sim::SchedulerSpec::parse(spec_text);
  Engine engine({n, 42, nullptr, spec.make()});
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    engine.set_agent(i, std::make_unique<DoneAgent>());
  }
  engine.set_agent(n - 1, std::make_unique<IdleAgent>());
  constexpr std::uint64_t kBatch = 16;
  std::uint64_t target = 0;
  for (auto _ : state) {
    target += kBatch;
    engine.run(rfc::sim::Budget::of_events(target));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK_CAPTURE(BM_SchedulerStep, poisson_scan, "poisson")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17);
BENCHMARK_CAPTURE(BM_SchedulerStep, poisson_heap, "poisson:queue=heap")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17);

}  // namespace
