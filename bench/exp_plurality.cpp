// E8b — plurality consensus ([6], 3-majority dynamics) solves a *different*
// problem than fair consensus.
//
// Plurality dynamics converge fast, but the initially most common color
// wins almost surely: the winning probability is a step function of the
// initial share.  Protocol P's fairness makes it exactly proportional.
// This experiment sweeps the initial share of color 1 and reports its
// winning frequency under both protocols — a step curve vs the diagonal.
#include "analysis/fairness.hpp"
#include "analysis/montecarlo.hpp"
#include "baseline/plurality.hpp"
#include "core/runner.hpp"
#include "exp_util.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E8b: plurality dynamics vs proportional fairness",
      "Expected shape: 3-majority win rate jumps 0 -> 1 around share 0.5; "
      "Protocol P's win rate tracks the share (the diagonal).");

  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 256));
  const auto trials = rfc::exputil::sweep_trials(args, 300, 2000);
  const std::vector<double> shares = {0.1, 0.3, 0.4, 0.45, 0.5,
                                      0.55, 0.6, 0.7, 0.9};

  rfc::support::Table table({"share of color 1", "3-majority win rate",
                             "3-majority rounds", "Protocol P win rate",
                             "fair (diagonal)"});
  for (const double share : shares) {
    const auto colors = rfc::core::split_colors(n, {1.0 - share, share});

    std::uint64_t plurality_wins = 0;
    rfc::support::OnlineStats plurality_rounds;
    const auto p_results =
        rfc::analysis::run_trials<rfc::baseline::PluralityResult>(
            trials, args.get_uint("seed", 111),
            [&](std::uint64_t seed, std::size_t) {
              rfc::baseline::PluralityConfig cfg;
              cfg.n = n;
              cfg.seed = seed;
              cfg.colors = colors;
              return rfc::baseline::run_plurality_consensus(cfg);
            });
    for (const auto& r : p_results) {
      if (r.converged && r.winner == 1) ++plurality_wins;
      plurality_rounds.add(static_cast<double>(r.rounds));
    }

    std::uint64_t fair_wins = 0;
    const auto f_results =
        rfc::analysis::run_trials<rfc::core::RunResult>(
            trials, args.get_uint("seed", 111),
            [&](std::uint64_t seed, std::size_t) {
              rfc::core::RunConfig cfg;
              cfg.scheduler = scheduler;
              cfg.n = n;
              cfg.gamma = args.get_double("gamma", 4.0);
              cfg.seed = seed;
              cfg.colors = colors;
              return rfc::core::run_protocol(cfg);
            });
    for (const auto& r : f_results) {
      if (!r.failed() && r.winner == 1) ++fair_wins;
    }

    const auto rate = [trials](std::uint64_t w) {
      return rfc::support::Table::fmt(
          static_cast<double>(w) / static_cast<double>(trials), 3);
    };
    table.add_row({
        rfc::support::Table::fmt(share, 2),
        rate(plurality_wins),
        rfc::support::Table::fmt(plurality_rounds.mean(), 1),
        rate(fair_wins),
        rfc::support::Table::fmt(share, 3),
    });
  }
  rfc::exputil::print_table(
      args,
      table,
      "Plurality consensus amplifies majorities (a sigmoid step at 1/2); "
      "fair consensus preserves minority chances exactly.");
  return 0;
}
