// E13 — the prior-work comparison table (Section 1 of the paper).
//
// Reproduces, protocol-by-protocol, the qualitative comparison the paper's
// introduction makes: ADH-style LOCAL commit-reveal election [2] is fair
// and rationally robust but costs Θ(n^2) messages and dies on a single
// crash between commit and reveal; Protocol P matches the game-theoretic
// guarantees at O(n log^3 n) bits and tolerates αn permanent crashes.
#include "analysis/equilibrium.hpp"
#include "analysis/montecarlo.hpp"
#include "baseline/adh_election.hpp"
#include "core/runner.hpp"
#include "exp_util.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E13: prior work (ADH commit-reveal, LOCAL model) vs Protocol P",
      "Expected shape: ADH fair & rationally robust but Θ(n^2) msgs and "
      "0% success under one mid-protocol crash; P fair, robust, o(n^2), "
      "crash-tolerant.");

  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 256));
  const auto trials = rfc::exputil::sweep_trials(args, 300, 2000);

  struct Row {
    const char* scenario;
    rfc::baseline::AdhDeviation deviation;
    std::uint32_t deviators;
    std::uint32_t pre_faults;
  };
  const std::vector<Row> adh_rows = {
      {"honest", rfc::baseline::AdhDeviation::kNone, 0, 0},
      {"1 crash mid-protocol", rfc::baseline::AdhDeviation::kCrashAfterCommit,
       1, 0},
      {"4 false reveals", rfc::baseline::AdhDeviation::kFalseReveal, 4, 0},
      {"4 abort-if-losing", rfc::baseline::AdhDeviation::kAbortIfLosing, 4,
       0},
      {"25% pre-protocol faults", rfc::baseline::AdhDeviation::kNone, 0,
       n / 4},
  };

  rfc::support::Table table({"protocol / scenario", "success rate",
                             "deviator-color win rate", "fair share",
                             "messages"});
  for (const auto& row : adh_rows) {
    std::uint64_t successes = 0, wins = 0, messages = 0;
    const std::uint32_t colored = std::max(row.deviators, 4u);
    const auto results =
        rfc::analysis::run_trials<rfc::baseline::AdhResult>(
            trials, args.get_uint("seed", 1313),
            [&](std::uint64_t seed, std::size_t) {
              rfc::baseline::AdhConfig cfg;
              cfg.n = n;
              cfg.seed = seed;
              cfg.deviation = row.deviation;
              cfg.deviators = row.deviators;
              cfg.num_faulty = row.pre_faults;
              cfg.placement = row.pre_faults
                                  ? rfc::sim::FaultPlacement::kSuffix
                                  : rfc::sim::FaultPlacement::kNone;
              cfg.colors.assign(n, 0);
              for (std::uint32_t i = 0; i < colored; ++i) cfg.colors[i] = 1;
              return rfc::baseline::run_adh_election(cfg);
            });
    for (const auto& r : results) {
      messages = r.messages;
      if (!r.failed()) {
        ++successes;
        if (r.winner == 1) ++wins;
      }
    }
    table.add_row({
        std::string("ADH, ") + row.scenario,
        rfc::support::Table::fmt(
            static_cast<double>(successes) / static_cast<double>(trials),
            3),
        successes ? rfc::support::Table::fmt(
                        static_cast<double>(wins) /
                            static_cast<double>(successes), 3)
                  : "-",
        rfc::support::Table::fmt(
            static_cast<double>(colored) /
                static_cast<double>(n - row.pre_faults), 3),
        rfc::support::Table::fmt_int(messages),
    });
  }

  // Protocol P under the analogous stress: 25% permanent crashes AND an
  // 8-agent forging coalition, simultaneously.
  {
    rfc::analysis::DeviationConfig cfg;
    cfg.scheduler = scheduler;
    cfg.n = n;
    cfg.gamma = 6.0;  // gamma(0.25).
    cfg.coalition_size = 8;
    cfg.strategy = rfc::rational::DeviationStrategy::kForgedCoalitionCert;
    cfg.num_faulty = n / 4;
    cfg.seed = args.get_uint("seed", 1313);
    const auto report = rfc::analysis::measure_deviation(cfg, trials);
    // "Success" for the deviated protocol = not converted to a coalition
    // win; failures are the protocol *detecting* the forgery.
    table.add_row({
        "Protocol P, 25% faults + 8 forgers",
        rfc::support::Table::fmt(1.0 - report.fail_rate(), 3),
        rfc::support::Table::fmt(report.win_rate(), 3),
        rfc::support::Table::fmt(report.fair_share, 3),
        "(see E3)",
    });

    rfc::analysis::DeviationConfig honest = cfg;
    honest.strategy = rfc::rational::DeviationStrategy::kHonest;
    const auto honest_report = rfc::analysis::measure_deviation(honest,
                                                                trials);
    table.add_row({
        "Protocol P, 25% faults, honest",
        rfc::support::Table::fmt(1.0 - honest_report.fail_rate(), 3),
        rfc::support::Table::fmt(honest_report.win_rate(), 3),
        rfc::support::Table::fmt(honest_report.fair_share, 3),
        "(see E3)",
    });
  }

  rfc::exputil::print_table(
      args, table,
      "ADH dies on one silent participant (crash or rational abort — "
      "indistinguishable); Protocol P absorbs 25% crashes and converts "
      "forgery attempts into detected failures, never into unfair wins, "
      "with gossip-scale communication.  gamma=6 keeps honest success at "
      "1.0 under alpha=0.25.");
  return 0;
}
