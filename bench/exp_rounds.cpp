// E1 — Theorem 4: Protocol P reaches fair consensus within O(log n) rounds.
//
// The protocol's schedule is 4·ceil(γ ln n)+1 rounds by construction; the
// empirical content of the theorem is that a *constant* γ (independent of n)
// already makes every execution succeed.  We sweep n and γ and report the
// success rate and the normalized round count (rounds / ln n), which must
// stay flat as n grows.
#include <cmath>

#include "analysis/montecarlo.hpp"
#include "core/runner.hpp"
#include "exp_util.hpp"
#include "support/math_util.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  const auto network = rfc::exputil::network_spec(args);
  rfc::exputil::print_header(
      "E1 (Theorem 4): consensus in O(log n) rounds",
      "Expected shape: rounds/ln(n) flat in n; success rate 1.0 for gamma >= "
      "2 at every size.");

  const auto sizes = rfc::exputil::sweep_sizes(args);
  const auto trials = rfc::exputil::sweep_trials(args, 40, 200);
  const std::vector<double> gammas = {1.0, 2.0, 4.0};

  rfc::support::Table table({"n", "gamma", "rounds", "rounds/ln n",
                             "success rate", "min votes seen",
                             "find-min agree @ (of q)"});
  for (const auto n : sizes) {
    for (const double gamma : gammas) {
      rfc::core::RunConfig cfg;
      cfg.scheduler = scheduler;
      cfg.network = network;
      cfg.n = n;
      cfg.gamma = gamma;
      cfg.seed = args.get_uint("seed", 101);
      cfg.measure_convergence = true;

      std::uint64_t successes = 0;
      std::uint64_t rounds = 0;
      std::uint32_t min_votes = ~0u;
      rfc::support::OnlineStats agree_round;
      const auto results =
          rfc::analysis::run_trials<rfc::core::RunResult>(
              trials, cfg.seed,
              [&cfg](std::uint64_t seed, std::size_t) {
                rfc::core::RunConfig run = cfg;
                run.seed = seed;
                return rfc::core::run_protocol(run);
              });
      for (const auto& r : results) {
        if (!r.failed()) ++successes;
        rounds = r.rounds;
        min_votes = std::min(min_votes, r.events.min_votes);
        if (r.find_min_agreement_round !=
            rfc::core::RunResult::kNotMeasured) {
          agree_round.add(
              static_cast<double>(r.find_min_agreement_round) + 1);
        }
      }
      const auto q = rfc::support::round_count(gamma, n);
      table.add_row({
          rfc::support::Table::fmt_int(n),
          rfc::support::Table::fmt(gamma, 1),
          rfc::support::Table::fmt_int(rounds),
          rfc::support::Table::fmt(
              static_cast<double>(rounds) / std::log(n), 2),
          rfc::support::Table::fmt(
              static_cast<double>(successes) / static_cast<double>(trials),
              3),
          rfc::support::Table::fmt_int(min_votes),
          rfc::support::Table::fmt(agree_round.mean(), 1) + " of " +
              std::to_string(q),
      });
    }
  }
  rfc::exputil::print_table(
      args,
      table,
      "rounds/ln(n) ~= 4*gamma + o(1): logarithmic round complexity with a "
      "constant that does not grow with n.");
  return 0;
}
