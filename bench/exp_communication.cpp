// E3 — total communication O(n log^3 n) bits vs the Ω(n^2) LOCAL baseline.
//
// The headline systems claim: prior rational fair consensus protocols
// [2, 3, 14] broadcast all-to-all (Ω(n^2) messages); Protocol P is the first
// with o(n^2) communication.  We sweep n, measure both, fit power laws, and
// locate the crossover.
#include <cmath>

#include "analysis/montecarlo.hpp"
#include "analysis/scaling.hpp"
#include "baseline/local_fair_election.hpp"
#include "exp_util.hpp"
#include "support/regression.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E3: total communication — Protocol P O(n log^3 n) vs LOCAL Ω(n^2)",
      "Expected shape: P's power-law exponent ~1 (plus log factors), "
      "baseline exactly 2; baseline overtakes P as n grows.");

  const auto sizes = rfc::exputil::sweep_sizes(args);
  const auto trials = rfc::exputil::sweep_trials(args, 16, 64);

  rfc::core::RunConfig base;
  base.scheduler = scheduler;
  base.gamma = args.get_double("gamma", 4.0);
  base.seed = args.get_uint("seed", 303);
  const auto sweep = rfc::analysis::measure_scaling(base, sizes, trials);

  // The same sweep with the coherence-digest optimization (64-bit
  // fingerprints in place of full certificates during Coherence).
  rfc::core::RunConfig digest_base = base;
  digest_base.coherence_digest = true;
  const auto digest_sweep =
      rfc::analysis::measure_scaling(digest_base, sizes, trials);

  rfc::support::Table table({"n", "P msgs", "P bits", "P bits/(n ln^3 n)",
                             "P+digest bits", "digest saves",
                             "LOCAL msgs", "LOCAL bits", "LOCAL/P bits"});
  std::vector<double> ns, local_bits_series;
  for (std::size_t idx = 0; idx < sweep.points.size(); ++idx) {
    const auto& p = sweep.points[idx];
    const auto& pd = digest_sweep.points[idx];
    // The LOCAL baseline is deterministic in its costs; one run suffices.
    rfc::baseline::LocalElectionConfig lc;
    lc.n = p.n;
    lc.seed = base.seed;
    const auto local = rfc::baseline::run_local_fair_election(lc);
    ns.push_back(static_cast<double>(p.n));
    local_bits_series.push_back(static_cast<double>(local.total_bits));

    table.add_row({
        rfc::support::Table::fmt_int(p.n),
        rfc::support::Table::fmt(p.messages.mean(), 0),
        rfc::support::Table::fmt(p.total_bits.mean(), 0),
        rfc::support::Table::fmt(p.bits_per_n_log3_n(), 3),
        rfc::support::Table::fmt(pd.total_bits.mean(), 0),
        rfc::support::Table::fmt_pct(
            1.0 - pd.total_bits.mean() / p.total_bits.mean(), 1),
        rfc::support::Table::fmt_int(local.messages),
        rfc::support::Table::fmt_int(local.total_bits),
        rfc::support::Table::fmt(
            static_cast<double>(local.total_bits) / p.total_bits.mean(), 2),
    });
  }

  const auto p_fit = sweep.total_bits_fit();
  const auto local_fit = rfc::support::fit_power(ns, local_bits_series);
  rfc::exputil::print_table(args, table, "");
  std::printf("power-law fit, total bits ~ C * n^e:\n");
  std::printf("  Protocol P : e = %.3f (R^2 = %.4f)  [~1 + log factors]\n",
              p_fit.exponent, p_fit.r_squared);
  std::printf("  LOCAL      : e = %.3f (R^2 = %.4f)  [exactly 2]\n",
              local_fit.exponent, local_fit.r_squared);
  std::printf("Who wins: LOCAL cheaper at small n (big protocol constants), "
              "P wins from the crossover on and the gap widens as n^%.2f.\n",
              local_fit.exponent - p_fit.exponent);
  return 0;
}
