// Million-agent engine acceptance run: ONE push-pull rumor spread, end to
// end, at --n agents (default 2^20), reporting wall clock, ns per
// agent-round, peak RSS, and the full metrics block.
//
// CI's release-bench job runs this at n=2^20 under a wall-clock ceiling —
// the check that the engine's structure-of-arrays hot path, round arenas,
// and cache-blocked delivery actually hold up at scale, not just in
// microbenchmark steady states.  The run also prints an FNV-1a digest of
// (outcome, metrics, informed bitmap), so two engine builds can be
// compared for bit-identical behavior at full scale with grep and diff.
//
// Exits nonzero if the spread does not complete — an incomplete spread at
// these fault-free defaults means the engine lost messages.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include <sys/resource.h>

#include "gossip/rumor.hpp"
#include "net/state_digest.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "support/cli.hpp"

namespace {

long peak_rss_kib() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux.
}

}  // namespace

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  rfc::gossip::SpreadConfig cfg;
  cfg.n = static_cast<std::uint32_t>(args.get_uint("n", 1u << 20));
  cfg.mechanism = rfc::gossip::Mechanism::kPushPull;
  cfg.seed = args.get_uint("seed", 20260809);
  cfg.num_faulty = static_cast<std::uint32_t>(args.get_uint("faulty", 0));
  cfg.placement = cfg.num_faulty == 0 ? rfc::sim::FaultPlacement::kNone
                                      : rfc::sim::FaultPlacement::kRandom;

  auto engine = rfc::gossip::build_spread_engine(cfg);
  if (args.has("block-labels")) {
    // Expose the blocked-delivery tuning for A/B runs: --block-labels=K
    // forces the cache-blocked path on (at any n) with K-label blocks.
    engine->set_blocked_delivery(
        1, static_cast<std::uint32_t>(args.get_uint("block-labels", 1u << 15)));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const rfc::gossip::SpreadResult res =
      rfc::gossip::run_rumor_spreading_on(*engine, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  rfc::net::Fnv1a fnv;
  fnv.mix_bool(res.complete);
  fnv.mix_u64(res.rounds);
  fnv.mix_u64(res.metrics.pushes);
  fnv.mix_u64(res.metrics.pull_requests);
  fnv.mix_u64(res.metrics.pull_replies);
  fnv.mix_u64(res.metrics.total_bits);
  fnv.mix_u64(res.metrics.max_message_bits);
  fnv.mix_u64(res.metrics.active_links);
  for (rfc::sim::AgentId u = 0; u < cfg.n; ++u) {
    fnv.mix_bool(
        static_cast<const rfc::gossip::RumorAgent&>(engine->agent(u))
            .informed());
  }

  const double agent_rounds =
      static_cast<double>(cfg.n) * static_cast<double>(res.rounds);
  std::printf("exp_spread_scale: one push-pull spread, end to end\n");
  std::printf("n               %u\n", cfg.n);
  std::printf("seed            %llu\n",
              static_cast<unsigned long long>(cfg.seed));
  std::printf("complete        %s\n", res.complete ? "yes" : "NO");
  std::printf("rounds          %llu\n",
              static_cast<unsigned long long>(res.rounds));
  std::printf("wall_ms         %.1f\n", wall_ms);
  std::printf("ns_per_agent_round %.2f\n",
              agent_rounds > 0 ? wall_ms * 1e6 / agent_rounds : 0.0);
  std::printf("peak_rss_mib    %.1f\n",
              static_cast<double>(peak_rss_kib()) / 1024.0);
  std::printf("pushes          %llu\n",
              static_cast<unsigned long long>(res.metrics.pushes));
  std::printf("pull_requests   %llu\n",
              static_cast<unsigned long long>(res.metrics.pull_requests));
  std::printf("pull_replies    %llu\n",
              static_cast<unsigned long long>(res.metrics.pull_replies));
  std::printf("total_bits      %llu\n",
              static_cast<unsigned long long>(res.metrics.total_bits));
  std::printf("end_state_digest %016llx\n",
              static_cast<unsigned long long>(fnv.value()));
  return res.complete ? 0 : 1;
}
