// Shared plumbing for the experiment binaries (bench/exp_*.cpp).
//
// Every experiment regenerates one table of EXPERIMENTS.md.  Defaults are
// sized to finish in seconds; pass --full for the paper-scale sweep quoted
// in EXPERIMENTS.md (minutes).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/budget.hpp"
#include "sim/network_spec.hpp"
#include "sim/scheduler_spec.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace rfc::exputil {

/// Network sizes for scaling sweeps.  `--max-n=N` trims the sweep (CI smoke
/// runs use it to stay in the sub-second range); `--full` extends it to the
/// paper-scale sizes quoted in EXPERIMENTS.md.
inline std::vector<std::uint32_t> sweep_sizes(
    const rfc::support::CliArgs& args) {
  std::vector<std::uint32_t> sizes = {64, 128, 256, 512, 1024, 2048};
  if (args.get_bool("full")) {
    sizes.insert(sizes.end(), {4096, 8192});
  }
  if (args.has("max-n")) {
    const std::uint64_t cap = args.get_uint("max-n", 0);
    std::vector<std::uint32_t> trimmed;
    for (const auto n : sizes) {
      if (n <= cap) trimmed.push_back(n);
    }
    if (trimmed.empty()) trimmed.push_back(sizes.front());
    sizes = std::move(trimmed);
  }
  return sizes;
}

/// Shared `--scheduler=SPEC` parsing (see sim/scheduler_spec.hpp for the
/// grammar).  Every experiment accepts the flag, so each protocol runs
/// under any registered activation policy; on a malformed spec the process
/// exits with the parse error and the registry listing.
///
/// `--shards=S` (and optionally `--shard-threads=T`) fold into the spec as
/// its shards=/threads= parameters, so `--shards=4` parallelizes the
/// synchronous round of any experiment — runs are bit-identical to the
/// serial engine for every S/T.  Policies without a sharded round
/// (sequential, adversarial, poisson) reject the flag with the usual
/// unknown-parameter error.
inline rfc::sim::SchedulerSpec scheduler_spec(
    const rfc::support::CliArgs& args,
    const std::string& def = "synchronous") {
  std::string text = args.get("scheduler", def);
  try {
    const auto fold_param = [&text](const std::string& key,
                                    std::uint64_t value) {
      text += text.find(':') == std::string::npos ? ':' : ',';
      text += key + "=" + std::to_string(value);
    };
    if (args.has("shards")) {
      fold_param("shards", args.get_uint("shards", 1));
    }
    if (args.has("shard-threads")) {
      if (!args.has("shards")) {
        // Alone it would fold threads= into a shards=1 spec, which never
        // builds a pool — refuse rather than silently run serial.
        throw std::invalid_argument(
            "--shard-threads requires --shards=N (a lone thread count "
            "would leave the run serial)");
      }
      fold_param("threads", args.get_uint("shard-threads", 0));
    }
    const auto spec = rfc::sim::SchedulerSpec::parse(text);
    spec.make();  // Validate parameter values up front, not mid-sweep.
    return spec;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\nregistered schedulers:\n%s", e.what(),
                 rfc::sim::SchedulerSpec::describe_registry().c_str());
    std::exit(2);
  }
}

/// Shared `--network=SPEC` parsing (see sim/network_spec.hpp for the
/// grammar).  Every experiment accepts the flag next to --scheduler, so any
/// registered message adversary (drop/dup/reorder/delay/corrupt, plus
/// churn) composes with any activation policy; the default is the reliable
/// network, bit-identical to running with no adversary at all.  On a
/// malformed spec the process exits with the parse error and the registry
/// listing.
inline rfc::sim::NetworkSpec network_spec(
    const rfc::support::CliArgs& args,
    const std::string& def = "network") {
  const std::string text = args.get("network", def);
  try {
    const auto spec = rfc::sim::NetworkSpec::parse(text);
    spec.make();  // Validate parameter values up front, not mid-sweep.
    return spec;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\nregistered network policies:\n%s", e.what(),
                 rfc::sim::NetworkSpec::describe_registry().c_str());
    std::exit(2);
  }
}

/// Shared run-budget flags: `--horizon=V` caps runs at V units of *virtual
/// time* (the scheduler's clock — Engine::run_until semantics, so the same
/// V means the same model time under every policy) and `--max-events=N`
/// caps discrete scheduling events.  Both unset returns an unbounded
/// Budget, letting each experiment's own default event cap apply.
inline rfc::sim::Budget run_budget(const rfc::support::CliArgs& args) {
  rfc::sim::Budget budget;
  if (args.has("horizon")) {
    budget.virtual_horizon = args.get_double("horizon", 0.0);
    if (!(budget.virtual_horizon > 0.0)) {
      std::fprintf(stderr, "--horizon must be a positive virtual time\n");
      std::exit(2);
    }
  }
  if (args.has("max-events")) {
    budget.events = args.get_uint("max-events", 0);
  }
  return budget;
}

inline std::uint64_t sweep_trials(const rfc::support::CliArgs& args,
                                  std::uint64_t fast_default,
                                  std::uint64_t full_default) {
  if (args.has("trials")) return args.get_uint("trials", fast_default);
  return args.get_bool("full") ? full_default : fast_default;
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

inline void print_table(const rfc::support::Table& table,
                        const std::string& note) {
  std::printf("%s", table.render().c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

inline void maybe_write_csv(const rfc::support::CliArgs& args,
                            const rfc::support::Table& table);

/// Prints the table and honours --csv=PATH.
inline void print_table(const rfc::support::CliArgs& args,
                        const rfc::support::Table& table,
                        const std::string& note) {
  print_table(table, note);
  maybe_write_csv(args, table);
}

/// With --csv=PATH, additionally writes the table as CSV (appending a
/// numeric suffix for an experiment's second and later tables).
inline void maybe_write_csv(const rfc::support::CliArgs& args,
                            const rfc::support::Table& table) {
  static int table_index = 0;
  ++table_index;
  if (!args.has("csv")) return;
  std::string path = args.get("csv", "");
  if (path.empty()) return;
  if (table_index > 1) {
    const auto dot = path.rfind('.');
    const std::string suffix = "." + std::to_string(table_index);
    if (dot == std::string::npos) {
      path += suffix;
    } else {
      path.insert(dot, suffix);
    }
  }
  if (!table.write_csv(path)) {
    std::fprintf(stderr, "failed to write CSV to %s\n", path.c_str());
  }
}

}  // namespace rfc::exputil
