// Shared plumbing for the experiment binaries (bench/exp_*.cpp).
//
// Every experiment regenerates one table of EXPERIMENTS.md.  Defaults are
// sized to finish in seconds; pass --full for the paper-scale sweep quoted
// in EXPERIMENTS.md (minutes).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/table.hpp"

namespace rfc::exputil {

/// Network sizes for scaling sweeps.
inline std::vector<std::uint32_t> sweep_sizes(
    const rfc::support::CliArgs& args) {
  if (args.get_bool("full")) {
    return {64, 128, 256, 512, 1024, 2048, 4096, 8192};
  }
  return {64, 128, 256, 512, 1024, 2048};
}

inline std::uint64_t sweep_trials(const rfc::support::CliArgs& args,
                                  std::uint64_t fast_default,
                                  std::uint64_t full_default) {
  if (args.has("trials")) return args.get_uint("trials", fast_default);
  return args.get_bool("full") ? full_default : fast_default;
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

inline void print_table(const rfc::support::Table& table,
                        const std::string& note) {
  std::printf("%s", table.render().c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

inline void maybe_write_csv(const rfc::support::CliArgs& args,
                            const rfc::support::Table& table);

/// Prints the table and honours --csv=PATH.
inline void print_table(const rfc::support::CliArgs& args,
                        const rfc::support::Table& table,
                        const std::string& note) {
  print_table(table, note);
  maybe_write_csv(args, table);
}

/// With --csv=PATH, additionally writes the table as CSV (appending a
/// numeric suffix for an experiment's second and later tables).
inline void maybe_write_csv(const rfc::support::CliArgs& args,
                            const rfc::support::Table& table) {
  static int table_index = 0;
  ++table_index;
  if (!args.has("csv")) return;
  std::string path = args.get("csv", "");
  if (path.empty()) return;
  if (table_index > 1) {
    const auto dot = path.rfind('.');
    const std::string suffix = "." + std::to_string(table_index);
    if (dot == std::string::npos) {
      path += suffix;
    } else {
      path.insert(dot, suffix);
    }
  }
  if (!table.write_csv(path)) {
    std::fprintf(stderr, "failed to write CSV to %s\n", path.c_str());
  }
}

}  // namespace rfc::exputil
