// E9 — Lemma 3 (point 3) / [19]: pull-based broadcast completes in
// Θ(log n) rounds on the complete graph, with and without permanent faults.
//
// The Find-Min phase is a pull broadcast of the minimal certificate; its
// round budget q = ceil(γ ln n) is justified by this primitive's
// convergence time.  We measure all three gossip mechanisms and the effect
// of a 30% worst-case fault pattern, plus the min-aggregation skeleton
// itself under a fixed budget.
#include <cmath>

#include "analysis/montecarlo.hpp"
#include "exp_util.hpp"
#include "gossip/min_aggregation.hpp"
#include "gossip/rumor.hpp"
#include "support/math_util.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  const auto network = rfc::exputil::network_spec(args);
  rfc::exputil::print_header(
      "E9 ([19], Lemma 3.3): gossip broadcast completes in Θ(log n) rounds",
      "Expected shape: rounds/log2(n) flat in n for all mechanisms; 30% "
      "faults cost a constant factor, not the asymptotics.");

  const auto sizes = rfc::exputil::sweep_sizes(args);
  const auto trials = rfc::exputil::sweep_trials(args, 40, 300);

  rfc::support::Table table({"n", "mechanism", "faults", "mean rounds",
                             "rounds/log2 n", "complete"});
  for (const auto n : sizes) {
    for (const auto mech : rfc::gossip::all_mechanisms()) {
      for (const double alpha : {0.0, 0.3}) {
        rfc::gossip::SpreadConfig cfg;
        cfg.scheduler = scheduler;
        cfg.network = network;
        cfg.n = n;
        cfg.mechanism = mech;
        cfg.seed = args.get_uint("seed", 909);
        cfg.num_faulty = static_cast<std::uint32_t>(alpha * n);
        cfg.placement = alpha > 0 ? rfc::sim::FaultPlacement::kRandom
                                  : rfc::sim::FaultPlacement::kNone;

        rfc::support::OnlineStats rounds;
        std::uint64_t complete = 0;
        const auto results =
            rfc::analysis::run_trials<rfc::gossip::SpreadResult>(
                trials, cfg.seed,
                [&cfg](std::uint64_t seed, std::size_t) {
                  rfc::gossip::SpreadConfig run = cfg;
                  run.seed = seed;
                  return rfc::gossip::run_rumor_spreading(run);
                });
        for (const auto& r : results) {
          rounds.add(static_cast<double>(r.rounds));
          if (r.complete) ++complete;
        }
        table.add_row({
            rfc::support::Table::fmt_int(n),
            rfc::gossip::to_string(mech),
            rfc::support::Table::fmt_pct(alpha, 0),
            rfc::support::Table::fmt(rounds.mean(), 1),
            rfc::support::Table::fmt(rounds.mean() / std::log2(n), 2),
            rfc::support::Table::fmt(
                static_cast<double>(complete) /
                    static_cast<double>(trials), 2),
        });
      }
    }
  }
  rfc::exputil::print_table(args, table, "");

  // Min-aggregation (the Find-Min skeleton) under the protocol's own
  // budget q = ceil(gamma ln n).
  rfc::support::Table agg({"n", "gamma", "budget q", "converged rate"});
  for (const auto n : sizes) {
    for (const double gamma : {1.0, 2.0, 4.0}) {
      rfc::gossip::MinAggConfig cfg;
      cfg.n = n;
      cfg.rounds = rfc::support::round_count(gamma, n);
      cfg.seed = args.get_uint("seed", 910);
      std::uint64_t converged = 0;
      const auto results =
          rfc::analysis::run_trials<rfc::gossip::MinAggResult>(
              trials, cfg.seed,
              [&cfg](std::uint64_t seed, std::size_t) {
                rfc::gossip::MinAggConfig run = cfg;
                run.seed = seed;
                return rfc::gossip::run_min_aggregation(run);
              });
      for (const auto& r : results) {
        if (r.converged) ++converged;
      }
      agg.add_row({
          rfc::support::Table::fmt_int(n),
          rfc::support::Table::fmt(gamma, 1),
          rfc::support::Table::fmt_int(cfg.rounds),
          rfc::support::Table::fmt(
              static_cast<double>(converged) / static_cast<double>(trials),
              3),
      });
    }
  }
  rfc::exputil::print_table(
      args,
      agg, "gamma >= 2 always converges within budget: the protocol's "
           "Find-Min phase length is safe.");
  return 0;
}
