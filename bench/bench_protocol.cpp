// Microbenchmarks of Protocol P end to end: one full execution per
// iteration, at several network sizes and fault levels, plus the
// verification audit in isolation.
#include <benchmark/benchmark.h>

#include "core/runner.hpp"
#include "core/verification.hpp"
#include "support/rng.hpp"

namespace {

void BM_ProtocolRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto fault_pct = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t seed = 3;
  for (auto _ : state) {
    rfc::core::RunConfig cfg;
    cfg.n = n;
    cfg.gamma = 4.0;
    cfg.seed = seed++;
    cfg.num_faulty = n * fault_pct / 100;
    cfg.placement = fault_pct ? rfc::sim::FaultPlacement::kRandom
                              : rfc::sim::FaultPlacement::kNone;
    const auto result = rfc::core::run_protocol(cfg);
    benchmark::DoNotOptimize(result.winner);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProtocolRun)
    ->Args({256, 0})
    ->Args({1024, 0})
    ->Args({4096, 0})
    ->Args({1024, 30});

void BM_VerifyCertificate(benchmark::State& state) {
  // A realistic audit: certificate with Θ(log n) votes checked against a
  // commitment map with Θ(log^2 n) entries.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto params = rfc::core::ProtocolParams::make(n, 4.0);
  rfc::support::Xoshiro256 rng(99);

  rfc::core::CollectedIntentions collected;
  rfc::core::Certificate cert;
  cert.owner = 0;
  cert.color = 1;
  for (std::uint32_t v = 1; v <= params.q; ++v) {
    rfc::core::CommitmentRecord record;
    record.intention.resize(params.q);
    for (std::uint32_t j = 0; j < params.q; ++j) {
      record.intention[j] = {rng.below(params.m),
                             static_cast<rfc::sim::AgentId>(rng.below(n))};
    }
    // One declared vote per audited peer lands on the owner.
    const std::uint32_t j = v % params.q;
    record.intention[j].target = 0;
    cert.votes.push_back({v, j, record.intention[j].value});
    collected.emplace(v, std::move(record));
  }
  cert.k = cert.vote_sum(params);

  for (auto _ : state) {
    const auto result =
        rfc::core::verify_certificate(params, cert, collected);
    benchmark::DoNotOptimize(result.failure);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VerifyCertificate)->Arg(1024)->Arg(65536);

}  // namespace
