// E11 — open problem #1: GOSSIP rational fair consensus beyond the
// complete graph.
//
// We run (a) the pull-broadcast primitive and (b) the full Protocol P on
// four topology families.  Expected shape: expanders (random d-regular,
// dense Erdős–Rényi) behave like the complete graph — Θ(log n) broadcast,
// protocol succeeds and stays fair; the ring's Θ(n) diameter starves both
// the broadcast and the protocol's fixed Θ(log n) schedule, marking
// exactly where new ideas are needed.
#include <cmath>

#include "analysis/montecarlo.hpp"
#include "core/runner.hpp"
#include "exp_util.hpp"
#include "gossip/rumor.hpp"
#include "sim/topology.hpp"
#include "support/stats.hpp"

namespace {

struct TopoCase {
  const char* label;
  rfc::sim::TopologyPtr (*make)(std::uint32_t n, std::uint64_t seed);
};

rfc::sim::TopologyPtr complete(std::uint32_t n, std::uint64_t) {
  return rfc::sim::make_complete(n);
}
rfc::sim::TopologyPtr regular8(std::uint32_t n, std::uint64_t seed) {
  return rfc::sim::make_random_regular(n, 8, seed);
}
rfc::sim::TopologyPtr er_dense(std::uint32_t n, std::uint64_t seed) {
  const double p = 4.0 * std::log(static_cast<double>(n)) / n;
  return rfc::sim::make_erdos_renyi(n, p, seed);
}
rfc::sim::TopologyPtr ring2(std::uint32_t n, std::uint64_t) {
  return rfc::sim::make_ring(n, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E11 (open problem #1): beyond the complete graph",
      "Expected shape: expanders match the complete graph (broadcast "
      "Θ(log n), protocol succeeds, fairness holds); the ring starves the "
      "log-round schedule.");

  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 512));
  const auto trials = rfc::exputil::sweep_trials(args, 100, 600);
  const double gamma = args.get_double("gamma", 4.0);

  const std::vector<TopoCase> cases = {
      {"complete", complete},
      {"random-8-regular", regular8},
      {"erdos-renyi (4 ln n / n)", er_dense},
      {"ring (k=2)", ring2},
  };

  rfc::support::Table table({"topology", "broadcast rounds", "rounds/log2 n",
                             "P success rate", "minority win rate",
                             "minority share"});
  for (const auto& c : cases) {
    // (a) Pull-broadcast convergence time.
    rfc::support::OnlineStats broadcast_rounds;
    for (std::uint64_t i = 0; i < 20; ++i) {
      rfc::gossip::SpreadConfig sc;
      sc.scheduler = scheduler;
      sc.n = n;
      sc.mechanism = rfc::gossip::Mechanism::kPushPull;
      sc.seed = 900 + i;
      sc.topology = c.make(n, 900 + i);
      sc.max_rounds = 50ull * n;
      const auto r = rfc::gossip::run_rumor_spreading(sc);
      broadcast_rounds.add(static_cast<double>(r.rounds));
    }

    // (b) Full Protocol P with a 30% minority color.
    std::uint64_t successes = 0, minority_wins = 0;
    const auto results = rfc::analysis::run_trials<rfc::core::RunResult>(
        trials, args.get_uint("seed", 112),
        [&](std::uint64_t seed, std::size_t index) {
          rfc::core::RunConfig cfg;
          cfg.scheduler = scheduler;
          cfg.n = n;
          cfg.gamma = gamma;
          cfg.seed = seed;
          cfg.colors = rfc::core::split_colors(n, {0.7, 0.3});
          cfg.topology = c.make(n, 7000 + index);
          return rfc::core::run_protocol(cfg);
        });
    for (const auto& r : results) {
      if (!r.failed()) {
        ++successes;
        if (r.winner == 1) ++minority_wins;
      }
    }

    table.add_row({
        c.label,
        rfc::support::Table::fmt(broadcast_rounds.mean(), 1),
        rfc::support::Table::fmt(
            broadcast_rounds.mean() / std::log2(n), 2),
        rfc::support::Table::fmt(
            static_cast<double>(successes) / static_cast<double>(trials),
            3),
        successes ? rfc::support::Table::fmt(
                        static_cast<double>(minority_wins) /
                            static_cast<double>(successes), 3)
                  : "-",
        rfc::support::Table::fmt(0.3, 3),
    });
  }
  rfc::exputil::print_table(
      args,
      table,
      "The protocol (unchanged) remains correct and fair on expanders; the "
      "ring needs Θ(n) rounds of broadcast, so the Θ(log n) schedule fails "
      "— the gap open problem #1 asks to close.");
  return 0;
}
