// Microbenchmarks of the gossip primitives: full rumor spreads and
// min-aggregation runs, end to end.
#include <benchmark/benchmark.h>

#include "gossip/min_aggregation.hpp"
#include "gossip/rumor.hpp"
#include "support/math_util.hpp"

namespace {

void BM_RumorSpread(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto mech = static_cast<rfc::gossip::Mechanism>(state.range(1));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    rfc::gossip::SpreadConfig cfg;
    cfg.n = n;
    cfg.mechanism = mech;
    cfg.seed = seed++;
    const auto result = rfc::gossip::run_rumor_spreading(cfg);
    benchmark::DoNotOptimize(result.rounds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RumorSpread)
    ->Args({1024, 0})   // push
    ->Args({1024, 1})   // pull
    ->Args({1024, 2})   // push-pull
    ->Args({4096, 2});

void BM_MinAggregation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    rfc::gossip::MinAggConfig cfg;
    cfg.n = n;
    cfg.rounds = rfc::support::round_count(2.0, n);
    cfg.seed = seed++;
    const auto result = rfc::gossip::run_min_aggregation(cfg);
    benchmark::DoNotOptimize(result.converged);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MinAggregation)->Arg(1024)->Arg(4096);

}  // namespace
