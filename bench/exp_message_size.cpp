// E2 — Theorem 4: messages have size O(log^2 n) bits.
//
// The largest message of Protocol P is the winning certificate, whose W
// contains the Θ(log n) votes the winner received, each of Θ(log n) bits.
// We sweep n and report the largest message observed on the wire, normalized
// by log2(n)^2 — flat means the bound is tight.
#include <cmath>

#include "analysis/scaling.hpp"
#include "exp_util.hpp"

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E2 (Theorem 4): message size O(log^2 n) bits",
      "Expected shape: max-message-bits / log2(n)^2 flat in n; mean votes "
      "per certificate Θ(log n).");

  const auto sizes = rfc::exputil::sweep_sizes(args);
  const auto trials = rfc::exputil::sweep_trials(args, 24, 100);

  rfc::core::RunConfig base;
  base.scheduler = scheduler;
  base.gamma = args.get_double("gamma", 4.0);
  base.seed = args.get_uint("seed", 202);

  const auto sweep = rfc::analysis::measure_scaling(base, sizes, trials);

  rfc::support::Table table({"n", "max msg bits (mean)", "max msg bits (max)",
                             "bits/log2(n)^2", "max votes/agent",
                             "votes/ln n", "memory bits",
                             "memory/log2(n)^3"});
  for (const auto& p : sweep.points) {
    const double l = std::log2(static_cast<double>(p.n));
    table.add_row({
        rfc::support::Table::fmt_int(p.n),
        rfc::support::Table::fmt(p.max_message_bits.mean(), 0),
        rfc::support::Table::fmt(p.max_message_bits.max(), 0),
        rfc::support::Table::fmt(p.max_msg_per_log2_n(), 2),
        rfc::support::Table::fmt(p.max_votes.mean(), 1),
        rfc::support::Table::fmt(p.max_votes.mean() / std::log(p.n), 2),
        rfc::support::Table::fmt(p.local_memory_bits.mean(), 0),
        rfc::support::Table::fmt(
            p.local_memory_bits.mean() / (l * l * l), 2),
    });
  }
  rfc::exputil::print_table(
      args,
      table,
      "The largest message is always a certificate carrying Θ(log n) votes "
      "of Θ(log n) bits each.  Local memory is dominated by L_u: Θ(log n) "
      "audited intentions of Θ(log^2 n) bits (Θ(log^2 n) *words*, as the "
      "paper counts).");
  return 0;
}
