// E4 — Theorem 4 (fairness): Pr[color c wins] = N(A,c)/|A|.
//
// Four scenarios: balanced 2-color, skewed 90/10, three-way, and full
// leader election (every agent its own color).  For each we run many
// executions, compare observed winning shares against initial shares
// (Wilson 95% CIs), and run a chi-square goodness-of-fit test.
#include <algorithm>
#include <cmath>

#include "analysis/fairness.hpp"
#include "core/runner.hpp"
#include "exp_util.hpp"

namespace {

struct Scenario {
  const char* name;
  std::vector<double> fractions;  ///< Empty = leader election.
};

}  // namespace

int main(int argc, char** argv) {
  const rfc::support::CliArgs args(argc, argv);
  const auto scheduler = rfc::exputil::scheduler_spec(args);
  rfc::exputil::print_header(
      "E4 (Theorem 4): fairness — Pr[c wins] = N(A,c)/|A|",
      "Expected shape: every observed share inside its 95% CI around the "
      "initial share; chi-square p-values not small.");

  const auto n =
      static_cast<std::uint32_t>(args.get_uint("n", 128));
  const auto trials = rfc::exputil::sweep_trials(args, 1500, 8000);

  const std::vector<Scenario> scenarios = {
      {"balanced 50/50", {0.5, 0.5}},
      {"skewed 90/10", {0.9, 0.1}},
      {"three-way 60/30/10", {0.6, 0.3, 0.1}},
      {"leader election", {}},
  };

  for (const auto& scenario : scenarios) {
    rfc::core::RunConfig cfg;
    cfg.scheduler = scheduler;
    cfg.n = n;
    cfg.gamma = args.get_double("gamma", 4.0);
    cfg.seed = args.get_uint("seed", 404);
    if (!scenario.fractions.empty()) {
      cfg.colors = rfc::core::split_colors(n, scenario.fractions);
    }
    const auto report = rfc::analysis::measure_fairness(cfg, trials);

    std::printf("--- %s (n=%u, %llu trials, %llu failures) ---\n",
                scenario.name, n,
                static_cast<unsigned long long>(report.trials),
                static_cast<unsigned long long>(report.failures));
    if (scenario.fractions.empty()) {
      // Leader election: 128 shares; summarize instead of listing.
      double max_dev = 0.0;
      std::size_t outside = 0;
      for (const auto& s : report.shares) {
        max_dev = std::max(max_dev, std::abs(s.observed - s.expected));
        if (!s.within_ci) ++outside;
      }
      std::printf("  %zu colors; max |observed-expected| = %.4f; "
                  "%zu/%zu outside 95%% CI (expect ~5%%)\n",
                  report.shares.size(), max_dev, outside,
                  report.shares.size());
    } else {
      rfc::support::Table table(
          {"color", "expected", "observed", "95% CI", "ok"});
      for (const auto& s : report.shares) {
        table.add_row({
            std::to_string(s.color),
            rfc::support::Table::fmt(s.expected, 4),
            rfc::support::Table::fmt(s.observed, 4),
            "[" + rfc::support::Table::fmt(s.ci.lo, 4) + ", " +
                rfc::support::Table::fmt(s.ci.hi, 4) + "]",
            s.within_ci ? "yes" : "NO",
        });
      }
      std::printf("%s", table.render().c_str());
      rfc::exputil::maybe_write_csv(args, table);
    }
    std::printf("  chi-square: stat=%.2f dof=%u p=%.3f\n\n",
                report.chi.statistic, report.chi.dof, report.chi.p_value);
  }
  return 0;
}
