#include "net/workload.hpp"

#include <stdexcept>
#include <utility>

#include "core/protocol_agent.hpp"
#include "core/wire.hpp"
#include "sim/fault_model.hpp"
#include "support/rng.hpp"

namespace rfc::net {

namespace {

/// The driver replicates the synchronous phased round (optionally masked by
/// the partial-async Bernoulli stream); activation-based policies wake one
/// agent per event and have no round structure to distribute.
void require_round_based(const sim::SchedulerSpec& scheduler) {
  const std::string& policy = scheduler.policy();
  if (policy != "synchronous" && policy != "partial-async") {
    throw std::invalid_argument(
        "net: transport runs support scheduler=synchronous or "
        "partial-async, not '" + policy + "'");
  }
}

void require_round_budget(const sim::Budget& budget) {
  if (budget.virtual_horizon > 0.0) {
    throw std::invalid_argument(
        "net: transport runs budget in rounds only (no virtual-time "
        "horizon)");
  }
}

std::vector<bool> fault_plan_for(std::uint64_t seed,
                                 sim::FaultPlacement placement,
                                 std::uint32_t n, std::uint32_t num_faulty) {
  // The exact stream of run_rumor_spreading / run_protocol.
  rfc::support::Xoshiro256 fault_rng(rfc::support::derive_seed(seed, 0x0fau));
  return sim::make_fault_plan(placement, n, num_faulty, fault_rng);
}

void mix_certificate(Fnv1a& fnv, const core::ProtocolParams& params,
                     const core::Certificate& certificate) {
  core::BitWriter w;
  core::encode_certificate(w, params, certificate);
  fnv.mix_u64(w.bit_count());
  fnv.mix_bytes(w.bytes().data(), w.bytes().size());
}

}  // namespace

Workload make_rumor_workload(const gossip::SpreadConfig& cfg) {
  require_round_based(cfg.scheduler);
  require_round_budget(cfg.budget);
  if (cfg.topology != nullptr) {
    throw std::invalid_argument(
        "net: transport runs model the complete graph (topology must be "
        "null)");
  }
  if (!cfg.network.inert()) {
    throw std::invalid_argument(
        "net: transport runs are adversary-free (the simulated message "
        "adversary lives in the engine; transport loss is the backend's "
        "hazard, recovered by retransmission) — network spec must be inert");
  }

  Workload w;
  w.n = cfg.n;
  w.seed = cfg.seed;
  w.scheduler = cfg.scheduler;
  w.fault_plan = fault_plan_for(cfg.seed, cfg.placement, cfg.n,
                                cfg.num_faulty);
  w.max_rounds = cfg.budget.events != 0 ? cfg.budget.events : cfg.max_rounds;

  // Sources on the first `initial_informed` active labels, exactly as
  // run_rumor_spreading places them.
  std::vector<bool> informed(cfg.n, false);
  std::uint32_t sources = cfg.initial_informed;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (!w.fault_plan[i] && sources > 0) {
      informed[i] = true;
      --sources;
    }
  }

  const gossip::Mechanism mechanism = cfg.mechanism;
  const std::uint64_t rumor_bits = cfg.rumor_bits;
  w.make_agent = [mechanism, informed = std::move(informed),
                  rumor_bits](sim::AgentId label) {
    return std::make_unique<gossip::RumorAgent>(mechanism, informed[label],
                                                rumor_bits);
  };
  w.agent_complete = [](const sim::Agent& agent) {
    return static_cast<const gossip::RumorAgent&>(agent).informed();
  };
  w.digest_agent = [](Fnv1a& fnv, const sim::Agent& agent, sim::AgentId label,
                      bool faulty) {
    fnv.mix_u64(label);
    fnv.mix_bool(faulty);
    fnv.mix_bool(static_cast<const gossip::RumorAgent&>(agent).informed());
  };
  return w;
}

Workload make_protocol_workload(const core::RunConfig& cfg) {
  require_round_based(cfg.scheduler);
  require_round_budget(cfg.budget);
  if (cfg.topology != nullptr) {
    throw std::invalid_argument(
        "net: transport runs model the complete graph (topology must be "
        "null)");
  }
  if (!cfg.coalition.empty()) {
    throw std::invalid_argument(
        "net: coalition deviations share in-process blackboards and cannot "
        "run across node processes");
  }
  if (!cfg.network.inert()) {
    throw std::invalid_argument(
        "net: transport runs are adversary-free (the simulated message "
        "adversary lives in the engine; transport loss is the backend's "
        "hazard, recovered by retransmission) — network spec must be inert");
  }

  Workload w;
  w.n = cfg.n;
  w.seed = cfg.seed;
  w.scheduler = cfg.scheduler;
  w.fault_plan = fault_plan_for(cfg.seed, cfg.placement, cfg.n,
                                cfg.num_faulty);
  w.has_params = true;
  w.params = core::ProtocolParams::make(cfg.n, cfg.gamma,
                                        cfg.strict_verification);
  w.params.coherence_digest = cfg.coherence_digest;
  w.max_rounds =
      cfg.budget.events != 0
          ? cfg.budget.events
          : (w.params.total_rounds() + cfg.max_rounds_slack) *
                cfg.scheduler.steps_per_round(cfg.n);

  const std::vector<core::Color> colors =
      cfg.colors.empty() ? core::leader_election_colors(cfg.n) : cfg.colors;
  if (colors.size() != cfg.n) {
    throw std::invalid_argument("net: colors size mismatch");
  }

  w.make_agent = [params = w.params, colors](sim::AgentId label) {
    return std::make_unique<core::ProtocolAgent>(params, colors.at(label));
  };
  w.agent_complete = [](const sim::Agent& agent) { return agent.done(); };
  w.digest_agent = [params = w.params](Fnv1a& fnv, const sim::Agent& agent,
                                       sim::AgentId label, bool faulty) {
    fnv.mix_u64(label);
    fnv.mix_bool(faulty);
    const auto& p = static_cast<const core::ProtocolAgent&>(agent);
    fnv.mix_bool(p.failed());
    fnv.mix_bool(p.decided());
    fnv.mix_u64(static_cast<std::uint64_t>(p.decision()));
    fnv.mix_bool(p.has_own_certificate());
    if (p.has_own_certificate()) {
      mix_certificate(fnv, params, p.own_certificate());
    }
    fnv.mix_bool(p.has_min_certificate());
    if (p.has_min_certificate()) {
      mix_certificate(fnv, params, p.min_certificate());
    }
  };
  return w;
}

}  // namespace rfc::net
