// FNV-1a end-state digests for the socket cross-check.
//
// A distributed run proves itself against the in-memory engine by hashing
// the per-agent end state on both sides and comparing: each node digests
// its own label block, the reference digests the same blocks from the
// engine, and equal digests mean equal states — including, for Protocol P,
// the *wire-encoded* certificates, so "identical certificates" is checked
// at the bit level rather than through a lossy summary.
//
// FNV-1a (64-bit) is deliberate: order-sensitive, trivially portable, and
// stable across processes — no std::hash, whose value is implementation-
// defined and would break the cross-process comparison.
#pragma once

#include <cstdint>
#include <vector>

namespace rfc::net {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  void mix_byte(std::uint8_t byte) noexcept {
    hash_ = (hash_ ^ byte) * kPrime;
  }

  void mix_bytes(const std::uint8_t* data, std::size_t size) noexcept {
    for (std::size_t i = 0; i < size; ++i) mix_byte(data[i]);
  }

  void mix_u64(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void mix_bool(bool value) noexcept { mix_byte(value ? 1 : 0); }

  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// Chains per-block digests into one run digest (block order is part of the
/// hash, so node reports must be combined in node-id order).
inline std::uint64_t combine_block_digests(
    const std::vector<std::uint64_t>& blocks) noexcept {
  Fnv1a fnv;
  for (std::uint64_t b : blocks) fnv.mix_u64(b);
  return fnv.value();
}

}  // namespace rfc::net
