// Workload — what a node cluster runs, decoupled from how it runs.
//
// A Workload is the transport layer's view of one experiment: how to build
// the agent for each label, the full fault plan, the (round-based)
// scheduler, the round budget, a per-agent completion predicate, and a
// per-agent state digest.  Factories adapt the two shipped entry points —
// gossip::run_rumor_spreading and core::run_protocol — reproducing their
// exact seeding (fault stream 0x0fa, per-label agent streams, source
// placement, colors) so a NodeDriver cluster and the in-memory engine
// compute the *same execution* from the same config.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/params.hpp"
#include "core/runner.hpp"
#include "gossip/rumor.hpp"
#include "net/state_digest.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::net {

struct Workload {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  /// Round-based policy: `synchronous` or `partial-async:p=...` (the two
  /// whose phased rounds the distributed driver replicates; activation-based
  /// policies are rejected by the factories).
  sim::SchedulerSpec scheduler;
  std::vector<bool> fault_plan;
  /// Event budget in rounds (already scaled by steps_per_round).
  std::uint64_t max_rounds = 0;
  /// True for Protocol P: `params` is meaningful and the frame codec can
  /// move boxed intention/certificate payloads.
  bool has_params = false;
  core::ProtocolParams params{};

  /// Builds the agent installed at `label` (same construction the in-memory
  /// runner performs).
  std::function<std::unique_ptr<sim::Agent>(sim::AgentId label)> make_agent;
  /// Per-agent completion predicate: informed for rumor, done() for the
  /// protocol.  A run stops when every non-faulty agent satisfies it.
  std::function<bool(const sim::Agent&)> agent_complete;
  /// Folds one agent's end state into a block digest.
  std::function<void(Fnv1a&, const sim::Agent&, sim::AgentId label,
                     bool faulty)> digest_agent;
};

/// Adapts a rumor-spreading config.  Throws std::invalid_argument on a
/// non-round-based scheduler, a topology (the driver runs the complete
/// graph), or a virtual-time budget (rounds only).
Workload make_rumor_workload(const gossip::SpreadConfig& cfg);

/// Adapts a Protocol P config.  Additionally rejects coalitions (deviating
/// agents share in-process blackboards that cannot cross a transport).
Workload make_protocol_workload(const core::RunConfig& cfg);

}  // namespace rfc::net
