// A loss-injecting CommClient decorator, for exercising the driver's
// resend path without real packet loss.
//
// LossyCommClient wraps any backend and drops *outgoing* send()s — either
// by a deterministic Bernoulli draw (seeded, so a failing run replays) or
// by an arbitrary predicate (tests drop exactly the frame whose loss used
// to hang the barrier).  Receives, start/stop and polling pass through
// untouched; in particular the UDP backend's bind/resolve handshake is
// unaffected because it happens inside start(), below send().
//
// This models the transport's loss, not the GOSSIP adversary: the
// message-layer adversary of the *simulation* lives in sim/network.hpp and
// never touches the wire.  Here loss is an environment hazard the driver
// must survive (net/node_driver.hpp's bounded retransmission), with the
// run's outcome still bit-identical to the reliable execution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "net/comm_client.hpp"
#include "support/rng.hpp"

namespace rfc::net {

class LossyCommClient final : public CommClient {
 public:
  /// Returns true when this outgoing message should be dropped.  `data`
  /// holds the encoded frame (magic at data[0], FrameKind at data[1]).
  using DropFn =
      std::function<bool(NodeId to, const std::uint8_t* data,
                         std::size_t size)>;

  LossyCommClient(CommClientPtr inner, DropFn drop)
      : inner_(std::move(inner)), drop_(std::move(drop)) {}

  const char* name() const noexcept override { return inner_->name(); }

  void start(NodeId self, const std::vector<PeerEndpoint>& peers,
             CommClientCallback& callback) override {
    inner_->start(self, peers, callback);
  }

  void stop() override { inner_->stop(); }

  void send(NodeId to, const std::uint8_t* data, std::size_t size) override {
    if (drop_ && drop_(to, data, size)) return;  // Lost in transit.
    inner_->send(to, data, size);
  }

  std::size_t poll(int timeout_ms) override {
    return inner_->poll(timeout_ms);
  }

 private:
  CommClientPtr inner_;
  DropFn drop_;
};

/// Wraps `inner` so each outgoing message is dropped independently with
/// probability `p`, from a private deterministic stream seeded by `seed`
/// (give each node its own seed or every node drops in lockstep).
inline CommClientPtr make_lossy_client(CommClientPtr inner, double p,
                                       std::uint64_t seed) {
  auto rng = std::make_shared<rfc::support::Xoshiro256>(seed);
  return std::make_unique<LossyCommClient>(
      std::move(inner),
      [rng, p](NodeId, const std::uint8_t*, std::size_t) {
        return rng->bernoulli(p);
      });
}

}  // namespace rfc::net
