// Real-socket CommClient backends (POSIX only): UDP datagrams and an
// ACP-style TCP mesh.
//
// Both run single-threaded and poll(2)-driven — no reader threads, no
// locks; poll() on the client pumps the sockets and dispatches callbacks on
// the caller's stack, matching the CommClient threading contract.
//
// Wire envelopes:
//   * udp — one message per datagram, prefixed with the sender's node id
//     (u32, network byte order).  The socket itself carries no identity, so
//     the id travels in-band; endpoints are not authenticated (the model's
//     secure-channel assumption holds only for loopback/tcp runs).
//     Best-effort: datagrams may drop or reorder.  The NodeDriver's counted
//     sync points tolerate reordering, and a lost datagram is recovered by
//     its bounded retransmission protocol (resend requests answered from a
//     two-round send buffer, duplicates suppressed by per-round dedup) —
//     so a lossy link delays the barrier instead of hanging the run until
//     the sync timeout.
//   * tcp — full mesh in the comm_client_tcp_mesh shape: node i dials
//     every peer j < i and accepts from every j > i, each accepted
//     connection is identified by a 4-byte hello carrying the dialer's
//     node id, and every message is length-prefixed (u32, network byte
//     order) on the stream.  Reliable and FIFO per peer pair.
#pragma once

#include "net/comm_client.hpp"

namespace rfc::net {

/// Builds the UDP backend.  start() binds peers[self].port and resolves
/// every peer endpoint; all peers are reported up immediately.
CommClientPtr make_udp_client();

/// Builds the TCP-mesh backend.  start() listens on peers[self].port,
/// dials lower-id peers (retrying while they come up), accepts higher-id
/// peers, and returns once the mesh is complete; throws std::runtime_error
/// if the mesh cannot be established within the dial timeout.
CommClientPtr make_tcp_mesh_client();

}  // namespace rfc::net
