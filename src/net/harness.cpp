#include "net/harness.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/loopback.hpp"
#include "sim/sharding.hpp"

namespace rfc::net {

namespace {

void append_mismatch(std::ostringstream& out, const char* field,
                     std::uint64_t cluster, std::uint64_t reference) {
  out << field << ": cluster=" << cluster << " reference=" << reference
      << "; ";
}

}  // namespace

Workload make_cluster_workload(const ClusterSpec& spec) {
  if (spec.kind == ClusterSpec::Kind::kRumor) {
    return make_rumor_workload(spec.rumor);
  }
  return make_protocol_workload(spec.protocol);
}

ClusterResult merge_reports(const Workload& workload,
                            const std::vector<NodeReport>& reports) {
  if (reports.empty()) {
    throw std::runtime_error("merge_reports: no node reports");
  }
  std::vector<const NodeReport*> by_node(reports.size(), nullptr);
  for (const NodeReport& r : reports) {
    if (r.node_id >= by_node.size() || by_node[r.node_id] != nullptr) {
      throw std::runtime_error("merge_reports: missing or duplicate node id " +
                               std::to_string(r.node_id));
    }
    by_node[r.node_id] = &r;
  }

  const auto num_nodes = static_cast<std::uint32_t>(by_node.size());
  ClusterResult result;
  result.complete = by_node[0]->complete;
  result.rounds = by_node[0]->rounds;
  for (std::uint32_t b = 0; b < num_nodes; ++b) {
    const NodeReport& r = *by_node[b];
    const std::uint32_t lo = sim::contiguous_block_begin(workload.n,
                                                         num_nodes, b);
    const std::uint32_t hi = sim::contiguous_block_begin(workload.n,
                                                         num_nodes, b + 1);
    if (r.first_label != lo || r.end_label != hi) {
      throw std::runtime_error("merge_reports: node " + std::to_string(b) +
                               " does not own block [" + std::to_string(lo) +
                               ", " + std::to_string(hi) + ")");
    }
    if (r.complete != result.complete || r.rounds != result.rounds) {
      throw std::runtime_error(
          "merge_reports: node " + std::to_string(b) +
          " disagrees on the run outcome (rounds/completion)");
    }
    result.metrics.merge_from(r.metrics);
    result.block_digests.push_back(r.state_digest);
  }
  // Node metrics carry only message counters; the common round count is the
  // cluster's, and every executed round advances virtual time by 1 under
  // the (discrete) round-based policies the driver supports.
  result.metrics.rounds = result.rounds;
  result.metrics.virtual_time = static_cast<double>(result.rounds);
  result.digest = combine_block_digests(result.block_digests);
  return result;
}

ClusterResult reference_result(const ClusterSpec& spec) {
  const Workload workload = make_cluster_workload(spec);
  std::unique_ptr<sim::Engine> engine;
  if (spec.kind == ClusterSpec::Kind::kRumor) {
    engine = gossip::build_spread_engine(spec.rumor);
    gossip::run_rumor_spreading_on(*engine, spec.rumor);
  } else {
    engine = core::build_protocol_engine(spec.protocol);
    core::run_protocol_on(*engine, spec.protocol);
  }

  ClusterResult result;
  result.rounds = engine->round();
  result.metrics = engine->metrics();
  result.complete = true;
  for (std::uint32_t i = 0; i < workload.n; ++i) {
    if (!engine->is_faulty(i) && !workload.agent_complete(engine->agent(i))) {
      result.complete = false;
      break;
    }
  }
  for (std::uint32_t b = 0; b < spec.num_nodes; ++b) {
    const std::uint32_t lo = sim::contiguous_block_begin(workload.n,
                                                         spec.num_nodes, b);
    const std::uint32_t hi = sim::contiguous_block_begin(workload.n,
                                                         spec.num_nodes,
                                                         b + 1);
    Fnv1a fnv;
    for (std::uint32_t l = lo; l < hi; ++l) {
      workload.digest_agent(fnv, engine->agent(l), l, engine->is_faulty(l));
    }
    result.block_digests.push_back(fnv.value());
  }
  result.digest = combine_block_digests(result.block_digests);
  return result;
}

std::vector<NodeReport> run_local_cluster(const ClusterSpec& spec,
                                          const ClientFactory& factory) {
  const Workload workload = make_cluster_workload(spec);
  const std::uint32_t num_nodes = spec.num_nodes;
  // Endpoints stay defaulted: the factory path is used with loopback-style
  // backends that ignore the peer table (the factory owns any hub/ports).
  std::vector<PeerEndpoint> peers(num_nodes);

  std::vector<NodeReport> reports(num_nodes);
  std::vector<std::exception_ptr> errors(num_nodes);
  std::vector<std::thread> threads;
  threads.reserve(num_nodes);
  for (std::uint32_t id = 0; id < num_nodes; ++id) {
    threads.emplace_back([&, id] {
      try {
        const CommClientPtr client = factory(id);
        NodeOptions options;
        options.node_id = id;
        options.num_nodes = num_nodes;
        options.sync_timeout_ms = spec.sync_timeout_ms;
        options.resend_interval_ms = spec.resend_interval_ms;
        options.linger_ms = spec.linger_ms;
        NodeDriver driver(workload, options, *client);
        reports[id] = driver.run(peers);
      } catch (...) {
        errors[id] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return reports;
}

std::vector<NodeReport> run_local_cluster(const ClusterSpec& spec,
                                          TransportKind kind,
                                          std::uint16_t port_base) {
  const std::uint32_t num_nodes = spec.num_nodes;
  if (kind != TransportKind::kLoopback && port_base == 0) {
    throw std::invalid_argument(
        "run_local_cluster: socket transports need a port_base");
  }

  LoopbackHub hub(num_nodes);
  const Workload workload = make_cluster_workload(spec);
  std::vector<PeerEndpoint> peers(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    peers[i].host = "127.0.0.1";
    peers[i].port = static_cast<std::uint16_t>(port_base + i);
  }

  std::vector<NodeReport> reports(num_nodes);
  std::vector<std::exception_ptr> errors(num_nodes);
  std::vector<std::thread> threads;
  threads.reserve(num_nodes);
  for (std::uint32_t id = 0; id < num_nodes; ++id) {
    threads.emplace_back([&, id] {
      try {
        const CommClientPtr client = make_comm_client(kind, &hub);
        NodeOptions options;
        options.node_id = id;
        options.num_nodes = num_nodes;
        options.sync_timeout_ms = spec.sync_timeout_ms;
        options.resend_interval_ms = spec.resend_interval_ms;
        options.linger_ms = spec.linger_ms;
        NodeDriver driver(workload, options, *client);
        reports[id] = driver.run(peers);
      } catch (...) {
        errors[id] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return reports;
}

std::string cross_check(const ClusterResult& cluster,
                        const ClusterResult& reference) {
  std::ostringstream out;
  if (cluster.complete != reference.complete) {
    append_mismatch(out, "complete", cluster.complete ? 1 : 0,
                    reference.complete ? 1 : 0);
  }
  if (cluster.rounds != reference.rounds) {
    append_mismatch(out, "rounds", cluster.rounds, reference.rounds);
  }
  const sim::Metrics& cm = cluster.metrics;
  const sim::Metrics& rm = reference.metrics;
  if (cm.rounds != rm.rounds) {
    append_mismatch(out, "metrics.rounds", cm.rounds, rm.rounds);
  }
  if (cm.virtual_time != rm.virtual_time) {
    out << "metrics.virtual_time: cluster=" << cm.virtual_time
        << " reference=" << rm.virtual_time << "; ";
  }
  if (cm.pushes != rm.pushes) {
    append_mismatch(out, "metrics.pushes", cm.pushes, rm.pushes);
  }
  if (cm.pull_requests != rm.pull_requests) {
    append_mismatch(out, "metrics.pull_requests", cm.pull_requests,
                    rm.pull_requests);
  }
  if (cm.pull_replies != rm.pull_replies) {
    append_mismatch(out, "metrics.pull_replies", cm.pull_replies,
                    rm.pull_replies);
  }
  if (cm.total_bits != rm.total_bits) {
    append_mismatch(out, "metrics.total_bits", cm.total_bits, rm.total_bits);
  }
  if (cm.max_message_bits != rm.max_message_bits) {
    append_mismatch(out, "metrics.max_message_bits", cm.max_message_bits,
                    rm.max_message_bits);
  }
  if (cm.active_links != rm.active_links) {
    append_mismatch(out, "metrics.active_links", cm.active_links,
                    rm.active_links);
  }
  if (cm.denials != rm.denials) {
    append_mismatch(out, "metrics.denials", cm.denials, rm.denials);
  }
  // The network-adversary counters are all zero on cluster runs today (the
  // NodeDriver is adversary-free; sim-level faults stay in the engine), so
  // a nonzero reference here means the workloads diverged.
  if (cm.net_drops != rm.net_drops) {
    append_mismatch(out, "metrics.net_drops", cm.net_drops, rm.net_drops);
  }
  if (cm.net_dups != rm.net_dups) {
    append_mismatch(out, "metrics.net_dups", cm.net_dups, rm.net_dups);
  }
  if (cm.net_corruptions != rm.net_corruptions) {
    append_mismatch(out, "metrics.net_corruptions", cm.net_corruptions,
                    rm.net_corruptions);
  }
  if (cm.net_delays != rm.net_delays) {
    append_mismatch(out, "metrics.net_delays", cm.net_delays, rm.net_delays);
  }
  if (cm.churn_crashes != rm.churn_crashes) {
    append_mismatch(out, "metrics.churn_crashes", cm.churn_crashes,
                    rm.churn_crashes);
  }
  if (cluster.block_digests.size() != reference.block_digests.size()) {
    append_mismatch(out, "block count", cluster.block_digests.size(),
                    reference.block_digests.size());
  } else {
    for (std::size_t b = 0; b < cluster.block_digests.size(); ++b) {
      if (cluster.block_digests[b] != reference.block_digests[b]) {
        out << "block " << b << " digest: cluster=" << std::hex
            << cluster.block_digests[b] << " reference="
            << reference.block_digests[b] << std::dec << "; ";
      }
    }
  }
  if (cluster.digest != reference.digest) {
    out << "combined digest: cluster=" << std::hex << cluster.digest
        << " reference=" << reference.digest << std::dec << "; ";
  }
  return out.str();
}

std::string cross_check_local(const ClusterSpec& spec, TransportKind kind,
                              std::uint16_t port_base) {
  const Workload workload = make_cluster_workload(spec);
  const std::vector<NodeReport> reports =
      run_local_cluster(spec, kind, port_base);
  return cross_check(merge_reports(workload, reports),
                     reference_result(spec));
}

}  // namespace rfc::net
