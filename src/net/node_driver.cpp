#include "net/node_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/scheduler.hpp"
#include "sim/sharding.hpp"
#include "support/math_util.hpp"

namespace rfc::net {

namespace {

/// Sync-point tracing for debugging distributed runs (RFC_NET_TRACE=1).
bool trace_enabled() {
  static const bool on = std::getenv("RFC_NET_TRACE") != nullptr;
  return on;
}

[[noreturn]] void protocol_violation(const char* what, NodeId from,
                                     const Frame& frame) {
  throw std::runtime_error(
      std::string("NodeDriver: ") + what + " (peer " + std::to_string(from) +
      ", " + to_string(frame.kind) + " frame, round " +
      std::to_string(frame.round) + ", agent " + std::to_string(frame.agent) +
      ", target " + std::to_string(frame.target) + ")");
}

}  // namespace

NodeDriver::NodeDriver(const Workload& workload, const NodeOptions& options,
                       CommClient& client)
    : workload_(&workload), options_(options), client_(&client) {
  const std::uint32_t n = workload_->n;
  if (n == 0) throw std::invalid_argument("NodeDriver: workload has n == 0");
  if (options_.num_nodes == 0 || options_.node_id >= options_.num_nodes) {
    throw std::invalid_argument("NodeDriver: node_id/num_nodes out of range");
  }
  if (options_.num_nodes > n) {
    throw std::invalid_argument("NodeDriver: more nodes than agents");
  }
  if (workload_->fault_plan.size() != n) {
    throw std::invalid_argument("NodeDriver: fault plan size mismatch");
  }
  if (!workload_->make_agent || !workload_->agent_complete ||
      !workload_->digest_agent) {
    throw std::invalid_argument("NodeDriver: workload hooks not set");
  }

  codec_.n = n;
  codec_.params = workload_->has_params ? &workload_->params : nullptr;

  first_ = sim::contiguous_block_begin(n, options_.num_nodes,
                                       options_.node_id);
  end_ = sim::contiguous_block_begin(n, options_.num_nodes,
                                     options_.node_id + 1);
  owner_.resize(n);
  for (std::uint32_t b = 0; b < options_.num_nodes; ++b) {
    const std::uint32_t lo = sim::contiguous_block_begin(n, options_.num_nodes,
                                                         b);
    const std::uint32_t hi = sim::contiguous_block_begin(n, options_.num_nodes,
                                                         b + 1);
    for (std::uint32_t l = lo; l < hi; ++l) owner_[l] = b;
  }

  // Faulty labels get an agent too: they take no callbacks, but their
  // (initial) state is part of the block digest, as in the engine.
  agents_.reserve(end_ - first_);
  rngs_.reserve(end_ - first_);
  for (std::uint32_t l = first_; l < end_; ++l) {
    agents_.push_back(workload_->make_agent(l));
    if (agents_.back() == nullptr) {
      throw std::invalid_argument("NodeDriver: make_agent returned null");
    }
    rngs_.emplace_back(rfc::support::derive_seed(workload_->seed, l));
  }

  const std::string& policy = workload_->scheduler.policy();
  if (policy == "partial-async") {
    partial_async_ = true;
    awake_p_ = workload_->scheduler.param_double("p", 0.5);
    if (!(awake_p_ >= 0.0 && awake_p_ <= 1.0)) {
      throw std::invalid_argument(
          "NodeDriver: wake probability must be in [0, 1]");
    }
    mask_rng_.seed(rfc::support::derive_seed(
        workload_->seed, sim::PartialAsyncScheduler::kStream));
    mask_.assign(n, true);
  } else if (policy != "synchronous") {
    throw std::invalid_argument("NodeDriver: scheduler '" + policy +
                                "' is not round-based");
  }

  actions_.resize(end_ - first_);
  reply_for_.resize(end_ - first_);
  reply_ready_.assign(end_ - first_, false);
  peer_down_.assign(options_.num_nodes, false);
}

sim::Context NodeDriver::make_context(sim::AgentId label) noexcept {
  sim::Context ctx;
  ctx.self = label;
  ctx.n = workload_->n;
  ctx.round = round_;
  ctx.rng = &rngs_[label - first_];
  ctx.topology = nullptr;  // Workload factories reject topologies.
  return ctx;
}

bool NodeDriver::block_complete() const {
  for (std::uint32_t l = first_; l < end_; ++l) {
    if (!workload_->fault_plan[l] &&
        !workload_->agent_complete(*agents_[l - first_])) {
      return false;
    }
  }
  return true;
}

std::uint64_t NodeDriver::local_digest() const {
  Fnv1a fnv;
  for (std::uint32_t l = first_; l < end_; ++l) {
    workload_->digest_agent(fnv, *agents_[l - first_], l,
                            workload_->fault_plan[l]);
  }
  return fnv.value();
}

void NodeDriver::send_frame(NodeId to, const Frame& frame) {
  std::vector<std::uint8_t> bytes = codec_.encode(frame);
  client_->send(to, bytes.data(), bytes.size());
  // Everything except the resend requests themselves is kept for replay;
  // the buffer holds at most two rounds of traffic (see prune_sent).
  if (frame.kind != FrameKind::kResendRequest) {
    sent_frames_[frame.round][to].push_back(std::move(bytes));
  }
}

void NodeDriver::answer_resend(NodeId to, std::uint64_t round) {
  const auto rit = sent_frames_.find(round);
  if (rit == sent_frames_.end()) return;
  const auto pit = rit->second.find(to);
  if (pit == rit->second.end()) return;
  for (const std::vector<std::uint8_t>& bytes : pit->second) {
    client_->send(to, bytes.data(), bytes.size());
  }
}

void NodeDriver::prune_sent(std::uint64_t keep_from) {
  sent_frames_.erase(sent_frames_.begin(),
                     sent_frames_.lower_bound(keep_from));
}

void NodeDriver::broadcast(Frame frame) {
  for (NodeId p = 0; p < options_.num_nodes; ++p) {
    if (p != options_.node_id) send_frame(p, frame);
  }
}

void NodeDriver::on_peer_state(NodeId peer, bool connected) {
  if (peer < peer_down_.size() && !connected) peer_down_[peer] = true;
}

void NodeDriver::on_message(NodeId from, const std::uint8_t* data,
                            std::size_t size) {
  if (from >= options_.num_nodes || from == options_.node_id) {
    throw std::runtime_error("NodeDriver: frame from invalid peer " +
                             std::to_string(from));
  }
  auto decoded = codec_.decode(data, size);
  if (!decoded.ok()) {
    throw std::runtime_error(std::string("NodeDriver: bad frame from peer ") +
                             std::to_string(from) + ": " +
                             core::to_string(decoded.error));
  }
  Frame frame = std::move(*decoded.value);
  // Resend requests are answered regardless of round skew: the requester
  // may lag (waiting for frames we already sent) or lead (waiting at the
  // next status barrier for a broadcast we lost).
  if (frame.kind == FrameKind::kResendRequest) {
    answer_resend(from, frame.round);
    return;
  }
  // A frame for an already-finished round is a legitimate duplicate: a
  // retransmission can land after the barrier it was needed for released.
  // Drop it silently (before the inbox lookup — finished rounds are erased
  // and must not be resurrected).
  if (frame.round < round_) return;

  RoundInbox& inbox = inbox_[frame.round];
  switch (frame.kind) {
    case FrameKind::kRoundStatus:
      if (trace_enabled()) {
        std::fprintf(stderr,
                     "[trace] node %u recv status from=%u r=%llu "
                     "complete=%d (round_=%llu)\n",
                     options_.node_id, from,
                     static_cast<unsigned long long>(frame.round),
                     static_cast<int>(frame.complete),
                     static_cast<unsigned long long>(round_));
      }
      inbox.status[from] = frame.complete;
      break;
    case FrameKind::kActionsDone:
      inbox.actions_announced[from] = frame.count;
      break;
    case FrameKind::kRepliesDone:
      inbox.replies_announced[from] = frame.count;
      break;
    case FrameKind::kPullRequest:
      if (owner_[frame.agent] != from ||
          owner_[frame.target] != options_.node_id ||
          workload_->fault_plan[frame.target]) {
        protocol_violation("misrouted pull request", from, frame);
      }
      if (!inbox.seen_data.insert(frame.agent).second) break;  // Duplicate.
      ++inbox.data_received[from];
      inbox.pull_requests.push_back(std::move(frame));
      break;
    case FrameKind::kPush:
      if (owner_[frame.agent] != from ||
          owner_[frame.target] != options_.node_id ||
          workload_->fault_plan[frame.target]) {
        protocol_violation("misrouted push", from, frame);
      }
      if (!inbox.seen_data.insert(frame.agent).second) break;  // Duplicate.
      ++inbox.data_received[from];
      inbox.pushes.push_back(std::move(frame));
      break;
    case FrameKind::kPullReply:
      if (owner_[frame.agent] != options_.node_id ||
          owner_[frame.target] != from) {
        protocol_violation("misrouted pull reply", from, frame);
      }
      if (!inbox.seen_replies.insert(frame.agent).second) break;  // Dup.
      ++inbox.replies_received[from];
      inbox.pull_replies.push_back(std::move(frame));
      break;
    case FrameKind::kResendRequest:
      break;  // Handled above; unreachable.
  }
}

template <typename Satisfied>
void NodeDriver::wait_for(const char* what, Satisfied satisfied) {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::milliseconds(
      options_.resend_interval_ms > 0 ? options_.resend_interval_ms : 150);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.sync_timeout_ms);
  // The first resend request waits one full interval: on reliable
  // transports every barrier clears well before that, so the recovery path
  // stays cold unless something was actually lost.
  auto next_resend = Clock::now() + interval;
  const NodeId self = options_.node_id;
  for (;;) {
    bool ready = true;
    bool resend_due = Clock::now() >= next_resend;
    for (NodeId p = 0; p < options_.num_nodes; ++p) {
      if (p == self || satisfied(p)) continue;
      ready = false;
      // Fatal only while p's contribution is outstanding: a peer that
      // finished the run closes its connections, but everything it owed
      // this barrier was delivered before its EOF (ordered transport).
      if (peer_down_[p]) {
        throw std::runtime_error(std::string("NodeDriver: peer ") +
                                 std::to_string(p) +
                                 " disconnected while waiting for " + what +
                                 " (round " + std::to_string(round_) + ")");
      }
      if (resend_due) {
        // Bounded retransmission: ask p to replay this round's frames.  The
        // request itself may be lost too — it repeats every interval until
        // the barrier clears or the sync timeout trips.
        Frame f;
        f.kind = FrameKind::kResendRequest;
        f.round = round_;
        send_frame(p, f);
      }
    }
    if (ready) return;
    if (resend_due) next_resend = Clock::now() + interval;
    if (Clock::now() >= deadline) {
      throw std::runtime_error(std::string("NodeDriver: timed out waiting "
                                           "for ") +
                               what + " (round " + std::to_string(round_) +
                               ")");
    }
    client_->poll(50);
  }
}

bool NodeDriver::exchange_status(bool local_complete, bool* all_complete) {
  Frame status;
  status.kind = FrameKind::kRoundStatus;
  status.round = round_;
  status.complete = local_complete;
  if (trace_enabled()) {
    std::fprintf(stderr, "[trace] node %u bcast status r=%llu complete=%d\n",
                 options_.node_id,
                 static_cast<unsigned long long>(round_),
                 static_cast<int>(local_complete));
  }
  broadcast(status);
  wait_for("round-status", [&](NodeId p) {
    return inbox_[round_].status.count(p) != 0;
  });
  bool complete = local_complete;
  for (const auto& [peer, flag] : inbox_[round_].status) complete &= flag;
  *all_complete = complete;
  return true;
}

void NodeDriver::execute_round() {
  const std::uint32_t n = workload_->n;
  const std::vector<bool>& faulty = workload_->fault_plan;
  const NodeId self = options_.node_id;

  // The awake mask is drawn for *all* n labels on every node, so the shared
  // Bernoulli stream stays aligned with PartialAsyncScheduler::step.
  if (partial_async_) {
    for (std::uint32_t i = 0; i < n; ++i) {
      mask_[i] = mask_rng_.bernoulli(awake_p_);
    }
  }

  // Phase A: collect each local awake agent's single active operation, in
  // label order; charge the requester/sender side and ship cross-block
  // requests and pushes.
  std::vector<std::uint32_t> sent(options_.num_nodes, 0);
  for (std::uint32_t l = first_; l < end_; ++l) {
    const std::uint32_t idx = l - first_;
    sim::Action& action = actions_[idx];
    if (faulty[l] || agents_[idx]->done() || (partial_async_ && !mask_[l])) {
      action = sim::Action::idle();
      continue;
    }
    action = agents_[idx]->on_round(make_context(l));
    if (action.kind == sim::ActionKind::kIdle) continue;
    if (action.target >= n) {
      throw std::runtime_error("NodeDriver: agent " + std::to_string(l) +
                               " targeted label out of range");
    }
    ++metrics_.active_links;
    if (action.kind == sim::ActionKind::kPull) {
      ++metrics_.pull_requests;
      metrics_.note_message(rfc::support::bit_width_for_domain(n));
      if (faulty[action.target]) {
        // Pulling a faulty node observes silence; like the engine, the
        // requester side synthesizes the empty reply without any traffic.
        reply_for_[idx] = sim::Payload{};
        reply_ready_[idx] = true;
      } else if (owner_[action.target] != self) {
        Frame f;
        f.kind = FrameKind::kPullRequest;
        f.round = round_;
        f.agent = l;
        f.target = action.target;
        send_frame(owner_[action.target], f);
        ++sent[owner_[action.target]];
      }
      // A local non-faulty pullee is served from actions_ in phase B.
    } else {
      ++metrics_.pushes;
      metrics_.note_message(action.payload.bit_size());
      // Pushes to faulty targets are charged but never travel (the engine
      // drops them at delivery); local targets are delivered in phase D.
      if (!faulty[action.target] && owner_[action.target] != self) {
        Frame f;
        f.kind = FrameKind::kPush;
        f.round = round_;
        f.agent = l;
        f.target = action.target;
        f.payload = action.payload;
        send_frame(owner_[action.target], f);
        ++sent[owner_[action.target]];
      }
    }
  }

  // Sync point: actions-done, carrying per-destination data-frame counts so
  // the barrier is exact even if the transport reorders.
  for (NodeId p = 0; p < options_.num_nodes; ++p) {
    if (p == self) continue;
    Frame f;
    f.kind = FrameKind::kActionsDone;
    f.round = round_;
    f.count = sent[p];
    send_frame(p, f);
  }
  wait_for("actions-done", [&](NodeId p) {
    RoundInbox& ib = inbox_[round_];
    const auto it = ib.actions_announced.find(p);
    return it != ib.actions_announced.end() &&
           ib.data_received[p] >= it->second;
  });

  RoundInbox& inbox = inbox_[round_];

  // Phase B: serve every pull on a local pullee from round-start state, in
  // global requester-label order (the engine's order restricted to this
  // block's pullees).  The pullee side charges replies; empty replies still
  // travel so the requester can always deliver phase C.
  struct PendingPull {
    sim::AgentId requester;
    sim::AgentId pullee;
  };
  std::vector<PendingPull> serves;
  for (std::uint32_t l = first_; l < end_; ++l) {
    const sim::Action& a = actions_[l - first_];
    if (a.kind == sim::ActionKind::kPull && !faulty[a.target] &&
        owner_[a.target] == self) {
      serves.push_back({l, a.target});
    }
  }
  for (const Frame& f : inbox.pull_requests) {
    serves.push_back({f.agent, f.target});
  }
  std::sort(serves.begin(), serves.end(),
            [](const PendingPull& a, const PendingPull& b) {
              return a.requester < b.requester;
            });

  std::vector<std::uint32_t> replies_sent(options_.num_nodes, 0);
  for (const PendingPull& s : serves) {
    sim::Payload reply =
        local_agent(s.pullee).serve_pull(make_context(s.pullee), s.requester);
    if (!reply.empty()) {
      ++metrics_.pull_replies;
      metrics_.note_message(reply.bit_size());
    }
    if (owner_[s.requester] == self) {
      reply_for_[s.requester - first_] = std::move(reply);
      reply_ready_[s.requester - first_] = true;
    } else {
      Frame f;
      f.kind = FrameKind::kPullReply;
      f.round = round_;
      f.agent = s.requester;
      f.target = s.pullee;
      f.payload = std::move(reply);
      send_frame(owner_[s.requester], f);
      ++replies_sent[owner_[s.requester]];
    }
  }

  // Sync point: replies-done.
  for (NodeId p = 0; p < options_.num_nodes; ++p) {
    if (p == self) continue;
    Frame f;
    f.kind = FrameKind::kRepliesDone;
    f.round = round_;
    f.count = replies_sent[p];
    send_frame(p, f);
  }
  wait_for("replies-done", [&](NodeId p) {
    RoundInbox& rb = inbox_[round_];
    const auto it = rb.replies_announced.find(p);
    return it != rb.replies_announced.end() &&
           rb.replies_received[p] >= it->second;
  });

  // Phase C: deliver pull replies to local requesters in label order.
  for (Frame& f : inbox.pull_replies) {
    const std::uint32_t idx = f.agent - first_;
    if (actions_[idx].kind != sim::ActionKind::kPull ||
        actions_[idx].target != f.target || reply_ready_[idx]) {
      protocol_violation("unsolicited pull reply", owner_[f.target], f);
    }
    reply_for_[idx] = std::move(f.payload);
    reply_ready_[idx] = true;
  }
  for (std::uint32_t l = first_; l < end_; ++l) {
    const std::uint32_t idx = l - first_;
    if (actions_[idx].kind != sim::ActionKind::kPull) continue;
    if (!reply_ready_[idx]) {
      throw std::runtime_error("NodeDriver: no reply reached agent " +
                               std::to_string(l) + " in round " +
                               std::to_string(round_));
    }
    local_agent(l).on_pull_reply(make_context(l), actions_[idx].target,
                                 reply_for_[idx]);
    reply_for_[idx] = sim::Payload{};
    reply_ready_[idx] = false;
  }

  // Phase D: deliver pushes in sender-label order.
  struct PendingPush {
    sim::AgentId sender;
    sim::AgentId target;
    const sim::Payload* payload;
  };
  std::vector<PendingPush> pushes;
  for (std::uint32_t l = first_; l < end_; ++l) {
    const sim::Action& a = actions_[l - first_];
    if (a.kind == sim::ActionKind::kPush && !faulty[a.target] &&
        owner_[a.target] == self) {
      pushes.push_back({l, a.target, &a.payload});
    }
  }
  for (const Frame& f : inbox.pushes) {
    pushes.push_back({f.agent, f.target, &f.payload});
  }
  std::sort(pushes.begin(), pushes.end(),
            [](const PendingPush& a, const PendingPush& b) {
              return a.sender < b.sender;
            });
  for (const PendingPush& p : pushes) {
    local_agent(p.target).on_push(make_context(p.target), p.sender,
                                  *p.payload);
  }

  inbox_.erase(round_);
}

NodeReport NodeDriver::run(const std::vector<PeerEndpoint>& peers) {
  if (peers.size() != options_.num_nodes) {
    throw std::invalid_argument("NodeDriver: peer table size mismatch");
  }
  client_->start(options_.node_id, peers, *this);

  bool global_complete = false;
  try {
    for (std::uint32_t l = first_; l < end_; ++l) {
      if (!workload_->fault_plan[l]) {
        local_agent(l).on_start(make_context(l));
      }
    }
    // The engine's check-before-step loop: completion is evaluated (here:
    // agreed on, via the status barrier) before a round may execute, and
    // the round budget caps executed rounds.
    for (;;) {
      exchange_status(block_complete(), &global_complete);
      if (global_complete) break;
      if (workload_->max_rounds != 0 && round_ >= workload_->max_rounds) {
        break;
      }
      execute_round();
      ++round_;
      // Peers lag at most one stage cycle, so nothing older than the
      // previous round can still be resend-requested.
      prune_sent(round_ == 0 ? 0 : round_ - 1);
    }
    // Lossy transports: the final status broadcast may have been dropped,
    // and once this node stops it can no longer answer the slower peers'
    // resend requests — so linger briefly, still polling (on_message keeps
    // replaying from the send buffer).
    if (options_.linger_ms > 0) {
      using Clock = std::chrono::steady_clock;
      const auto linger_deadline =
          Clock::now() + std::chrono::milliseconds(options_.linger_ms);
      while (Clock::now() < linger_deadline) client_->poll(20);
    }
  } catch (...) {
    client_->stop();
    throw;
  }
  client_->stop();

  NodeReport report;
  report.node_id = options_.node_id;
  report.first_label = first_;
  report.end_label = end_;
  report.complete = global_complete;
  report.rounds = round_;
  report.metrics = metrics_;
  report.state_digest = local_digest();
  return report;
}

}  // namespace rfc::net
