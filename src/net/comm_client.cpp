#include "net/comm_client.hpp"

#include <stdexcept>

#include "net/loopback.hpp"
#include "net/socket_client.hpp"

namespace rfc::net {

const char* to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kLoopback: return "loopback";
    case TransportKind::kUdp: return "udp";
    case TransportKind::kTcp: return "tcp";
  }
  return "unknown";
}

TransportKind parse_transport_kind(const std::string& text) {
  if (text == "loopback") return TransportKind::kLoopback;
  if (text == "udp") return TransportKind::kUdp;
  if (text == "tcp") return TransportKind::kTcp;
  throw std::invalid_argument(
      "unknown transport '" + text + "' (expected loopback, udp, or tcp)");
}

CommClientPtr make_comm_client(TransportKind kind, LoopbackHub* hub) {
  switch (kind) {
    case TransportKind::kLoopback:
      if (hub == nullptr) {
        throw std::invalid_argument(
            "make_comm_client: the loopback transport needs the shared "
            "LoopbackHub every in-process node attaches to");
      }
      return make_loopback_client(*hub);
    case TransportKind::kUdp:
      return make_udp_client();
    case TransportKind::kTcp:
      return make_tcp_mesh_client();
  }
  throw std::invalid_argument("make_comm_client: unknown transport kind");
}

}  // namespace rfc::net
