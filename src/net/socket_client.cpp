#include "net/socket_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rfc::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in resolve(const PeerEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: cannot resolve host '" + ep.host +
                             "' (IPv4 dotted quad or 'localhost' only)");
  }
  return addr;
}

void write_u32(std::uint8_t* out, std::uint32_t value) {
  const std::uint32_t be = htonl(value);
  std::memcpy(out, &be, 4);
}

std::uint32_t read_u32(const std::uint8_t* in) {
  std::uint32_t be = 0;
  std::memcpy(&be, in, 4);
  return ntohl(be);
}

/// Blocking full write; small frames plus kernel buffering make this safe
/// on the single driver thread (the round protocol never floods a pipe).
void write_fully(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t w = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_errno("net: send");
    }
    sent += static_cast<std::size_t>(w);
  }
}

// --- UDP ------------------------------------------------------------------

class UdpCommClient final : public CommClient {
 public:
  /// How long start() keeps pinging unheard peers before declaring the
  /// cluster unreachable.
  static constexpr int kHandshakeTimeoutMs = 20000;

  ~UdpCommClient() override { stop(); }

  const char* name() const noexcept override { return "udp"; }

  void start(NodeId self, const std::vector<PeerEndpoint>& peers,
             CommClientCallback& callback) override {
    if (self >= peers.size()) {
      throw std::runtime_error("udp: self id outside the peer table");
    }
    self_ = self;
    callback_ = &callback;
    peers_.clear();
    for (const PeerEndpoint& ep : peers) peers_.push_back(resolve(ep));

    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) fail_errno("udp: socket");
    sockaddr_in local{};
    local.sin_family = AF_INET;
    local.sin_addr.s_addr = htonl(INADDR_ANY);
    local.sin_port = htons(peers[self].port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&local),
               sizeof(local)) != 0) {
      fail_errno("udp: bind port " + std::to_string(peers[self].port));
    }

    // Readiness handshake.  A datagram to a not-yet-bound port is lost
    // outright, so peers that come up early would lose their first sync
    // frames to late ones and deadlock the round protocol.  Ping every
    // peer with an empty-payload envelope until something — hello or real
    // frame — has arrived from each: hearing from p proves p is bound, so
    // everything sent to p afterwards reaches its receive buffer.  Real
    // frames arriving during the handshake (a fast peer may already be in
    // round 0) are dispatched to the callback like any other.
    std::vector<bool> heard(peers_.size(), false);
    heard[self_] = true;
    auto missing = static_cast<std::uint32_t>(peers_.size()) - 1;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(kHandshakeTimeoutMs);
    while (missing > 0) {
      if (Clock::now() >= deadline) {
        throw std::runtime_error("udp: node " + std::to_string(self_) +
                                 " heard nothing from " +
                                 std::to_string(missing) +
                                 " peer(s) during the start handshake");
      }
      std::uint8_t hello[4];
      write_u32(hello, self_);
      for (NodeId p = 0; p < peers_.size(); ++p) {
        if (p == self_) continue;
        // Best-effort by design: a refused/unreachable send just means the
        // peer is not up yet and the next tick retries.
        (void)::sendto(fd_, hello, sizeof(hello), 0,
                       reinterpret_cast<const sockaddr*>(&peers_[p]),
                       sizeof(peers_[p]));
      }
      int wait = 100;
      for (;;) {
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
          if (errno == EINTR) continue;
          fail_errno("udp: poll(handshake)");
        }
        if (ready == 0) break;
        std::uint8_t buffer[65536];
        const ssize_t r = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
        if (r < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
            break;
          }
          fail_errno("udp: recv(handshake)");
        }
        if (r >= 4) {
          const NodeId from = read_u32(buffer);
          if (from < peers_.size() && from != self_) {
            if (!heard[from]) {
              heard[from] = true;
              --missing;
            }
            if (r > 4) {
              callback_->on_message(from, buffer + 4,
                                    static_cast<std::size_t>(r) - 4);
            }
          }
        }
        wait = 0;
      }
    }

    for (NodeId p = 0; p < peers_.size(); ++p) {
      if (p != self_) callback_->on_peer_state(p, true);
    }
  }

  void stop() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    callback_ = nullptr;
  }

  void send(NodeId to, const std::uint8_t* data, std::size_t size) override {
    if (fd_ < 0) throw std::runtime_error("udp: not started");
    if (to >= peers_.size()) throw std::runtime_error("udp: unknown peer");
    // In-band sender id: a datagram socket carries no identity of its own.
    std::vector<std::uint8_t> packet(4 + size);
    write_u32(packet.data(), self_);
    std::memcpy(packet.data() + 4, data, size);
    const ssize_t w = ::sendto(
        fd_, packet.data(), packet.size(), 0,
        reinterpret_cast<const sockaddr*>(&peers_[to]), sizeof(peers_[to]));
    if (w < 0) fail_errno("udp: sendto");
  }

  std::size_t poll(int timeout_ms) override {
    if (fd_ < 0) throw std::runtime_error("udp: not started");
    std::size_t delivered = 0;
    int wait = timeout_ms;
    for (;;) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, wait);
      if (ready < 0) {
        if (errno == EINTR) continue;
        fail_errno("udp: poll");
      }
      if (ready == 0) return delivered;
      std::uint8_t buffer[65536];
      const ssize_t r = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        fail_errno("udp: recv");
      }
      // r == 4 is a bare handshake hello (empty payload): a late peer may
      // still be pinging after our start() finished.  Drop it silently.
      if (r > 4) {
        const NodeId from = read_u32(buffer);
        if (from < peers_.size() && from != self_) {
          callback_->on_message(from, buffer + 4,
                                static_cast<std::size_t>(r) - 4);
          ++delivered;
        }
      }
      wait = 0;  // Drain whatever else is queued without blocking again.
    }
  }

 private:
  int fd_ = -1;
  NodeId self_ = kNoNode;
  CommClientCallback* callback_ = nullptr;
  std::vector<sockaddr_in> peers_;
};

// --- TCP mesh -------------------------------------------------------------

class TcpMeshCommClient final : public CommClient {
 public:
  /// How long start() keeps dialing/accepting before declaring the mesh
  /// unreachable; generous because peer processes launch concurrently.
  static constexpr int kMeshTimeoutMs = 20000;

  ~TcpMeshCommClient() override { stop(); }

  const char* name() const noexcept override { return "tcp"; }

  void start(NodeId self, const std::vector<PeerEndpoint>& peers,
             CommClientCallback& callback) override {
    if (self >= peers.size()) {
      throw std::runtime_error("tcp: self id outside the peer table");
    }
    self_ = self;
    num_nodes_ = static_cast<NodeId>(peers.size());
    callback_ = &callback;

    // Listen before dialing anyone: a concurrent dialer then lands in the
    // backlog even while we are busy dialing, which is what makes the
    // dial-lower/accept-higher mesh deadlock-free.
    listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener_ < 0) fail_errno("tcp: socket");
    const int one = 1;
    ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in local{};
    local.sin_family = AF_INET;
    local.sin_addr.s_addr = htonl(INADDR_ANY);
    local.sin_port = htons(peers[self].port);
    if (::bind(listener_, reinterpret_cast<const sockaddr*>(&local),
               sizeof(local)) != 0) {
      fail_errno("tcp: bind port " + std::to_string(peers[self].port));
    }
    if (::listen(listener_, static_cast<int>(num_nodes_)) != 0) {
      fail_errno("tcp: listen");
    }

    const auto deadline =
        Clock::now() + std::chrono::milliseconds(kMeshTimeoutMs);
    for (NodeId j = 0; j < self_; ++j) dial(j, resolve(peers[j]), deadline);
    accept_higher(deadline);

    for (auto& [peer, conn] : conns_) {
      (void)conn;
      callback_->on_peer_state(peer, true);
    }
  }

  void stop() override {
    for (auto& [peer, conn] : conns_) {
      (void)peer;
      ::close(conn.fd);
    }
    conns_.clear();
    if (listener_ >= 0) {
      ::close(listener_);
      listener_ = -1;
    }
    callback_ = nullptr;
  }

  void send(NodeId to, const std::uint8_t* data, std::size_t size) override {
    const auto it = conns_.find(to);
    if (it == conns_.end()) {
      throw std::runtime_error("tcp: no connection to node " +
                               std::to_string(to));
    }
    std::vector<std::uint8_t> frame(4 + size);
    write_u32(frame.data(), static_cast<std::uint32_t>(size));
    std::memcpy(frame.data() + 4, data, size);
    write_fully(it->second.fd, frame.data(), frame.size());
  }

  std::size_t poll(int timeout_ms) override {
    if (callback_ == nullptr) throw std::runtime_error("tcp: not started");
    std::size_t delivered = 0;
    int wait = timeout_ms;
    for (;;) {
      std::vector<pollfd> pfds;
      std::vector<NodeId> owners;
      pfds.reserve(conns_.size());
      for (const auto& [peer, conn] : conns_) {
        pfds.push_back({conn.fd, POLLIN, 0});
        owners.push_back(peer);
      }
      if (pfds.empty()) return delivered;
      const int ready = ::poll(pfds.data(), pfds.size(), wait);
      if (ready < 0) {
        if (errno == EINTR) continue;
        fail_errno("tcp: poll");
      }
      if (ready == 0) return delivered;
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        delivered += pump(owners[i]);
      }
      wait = 0;  // Drain without blocking again.
    }
  }

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> buffer;  ///< Unconsumed stream bytes.
  };

  void configure(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  void dial(NodeId peer, const sockaddr_in& addr, Clock::time_point deadline) {
    for (;;) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) fail_errno("tcp: socket");
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        configure(fd);
        std::uint8_t hello[4];
        write_u32(hello, self_);
        write_fully(fd, hello, sizeof(hello));
        conns_[peer] = Conn{fd, {}};
        return;
      }
      ::close(fd);
      if (Clock::now() >= deadline) {
        throw std::runtime_error("tcp: node " + std::to_string(self_) +
                                 " could not reach node " +
                                 std::to_string(peer) + " in time");
      }
      // The peer process is still coming up; back off briefly and retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  void accept_higher(Clock::time_point deadline) {
    NodeId expected = num_nodes_ - 1 - self_;
    while (expected > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        throw std::runtime_error("tcp: node " + std::to_string(self_) +
                                 " timed out accepting higher-id peers (" +
                                 std::to_string(expected) + " missing)");
      }
      pollfd pfd{listener_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        fail_errno("tcp: poll(listener)");
      }
      if (ready == 0) continue;
      const int fd = ::accept(listener_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        fail_errno("tcp: accept");
      }
      configure(fd);
      const NodeId peer = read_hello(fd, deadline);
      if (peer <= self_ || peer >= num_nodes_ || conns_.contains(peer)) {
        ::close(fd);
        throw std::runtime_error("tcp: unexpected hello from node id " +
                                 std::to_string(peer));
      }
      conns_[peer] = Conn{fd, {}};
      --expected;
    }
  }

  NodeId read_hello(int fd, Clock::time_point deadline) {
    std::uint8_t hello[4];
    std::size_t got = 0;
    while (got < sizeof(hello)) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        throw std::runtime_error("tcp: timed out reading hello");
      }
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0 && errno != EINTR) fail_errno("tcp: poll(hello)");
      if (ready <= 0) continue;
      const ssize_t r = ::recv(fd, hello + got, sizeof(hello) - got, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        fail_errno("tcp: recv(hello)");
      }
      if (r == 0) throw std::runtime_error("tcp: peer closed during hello");
      got += static_cast<std::size_t>(r);
    }
    return read_u32(hello);
  }

  /// Reads whatever node `peer` has queued and dispatches every complete
  /// length-prefixed message; returns how many were delivered.  On EOF the
  /// connection is dropped *after* delivering the buffered tail — it must
  /// leave conns_, or poll()'s level-triggered readiness would see the
  /// closed fd ready forever and its drain loop would never return.
  std::size_t pump(NodeId peer) {
    Conn& conn = conns_.at(peer);
    std::uint8_t chunk[65536];
    bool eof = false;
    while (!eof) {
      const ssize_t r = ::recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (r > 0) {
        conn.buffer.insert(conn.buffer.end(), chunk, chunk + r);
        continue;
      }
      if (r == 0) {
        eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      fail_errno("tcp: recv");
    }
    std::size_t delivered = 0;
    std::size_t cursor = 0;
    while (conn.buffer.size() - cursor >= 4) {
      const std::uint32_t len = read_u32(conn.buffer.data() + cursor);
      if (conn.buffer.size() - cursor - 4 < len) break;
      callback_->on_message(peer, conn.buffer.data() + cursor + 4, len);
      ++delivered;
      cursor += 4 + static_cast<std::size_t>(len);
    }
    conn.buffer.erase(conn.buffer.begin(),
                      conn.buffer.begin() + static_cast<std::ptrdiff_t>(cursor));
    if (eof) {
      if (std::getenv("RFC_NET_TRACE") != nullptr) {
        std::fprintf(stderr,
                     "[trace] node %u eof from peer %u (tail delivered %zu, "
                     "leftover %zu bytes)\n",
                     self_, peer, delivered, conn.buffer.size());
      }
      ::close(conn.fd);
      conns_.erase(peer);
      callback_->on_peer_state(peer, false);
    }
    return delivered;
  }

  int listener_ = -1;
  NodeId self_ = kNoNode;
  NodeId num_nodes_ = 0;
  CommClientCallback* callback_ = nullptr;
  std::map<NodeId, Conn> conns_;
};

}  // namespace

CommClientPtr make_udp_client() { return std::make_unique<UdpCommClient>(); }

CommClientPtr make_tcp_mesh_client() {
  return std::make_unique<TcpMeshCommClient>();
}

}  // namespace rfc::net
