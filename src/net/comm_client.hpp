// Communication-client abstraction of the real transport layer.
//
// Everything below src/net exists to run the simulator's protocols as
// *actual communicating processes*: the same agents, the same per-label RNG
// streams, the same phased round — but with every cross-block message
// serialized through core/wire and moved over a pluggable transport instead
// of an in-memory buffer.  The design follows the comm_client /
// comm_client_cb_api split of cryptobiu/ACP (SNIPPETS.md §2): a virtual
// communication client delivers opaque byte messages to a callback
// interface, and the protocol driver above it (net/node_driver.hpp) never
// sees sockets.
//
// Three backends ship:
//
//   * loopback — in-process mailboxes behind a shared LoopbackHub
//     (net/loopback.hpp).  Deterministic and dependency-free: the unit and
//     differential tests run N "nodes" on N threads of one process.
//   * udp      — one datagram socket per node (net/socket_client.hpp).
//     Unordered, unreliable, connectionless: each message is one datagram
//     prefixed with the sender's node id.
//   * tcp      — a full mesh of TCP connections (net/socket_client.hpp),
//     ACP's comm_client_tcp_mesh shape: node i dials every peer j < i and
//     accepts from every j > i, each established connection is identified
//     by a hello carrying the dialer's node id, and messages are
//     length-prefixed on the stream.
//
// Threading contract: single-threaded by design.  start(), send(), poll()
// and stop() are called from one driver thread; poll() is the only place
// callbacks fire, on the caller's stack.  (The loopback hub is internally
// synchronized because *different* clients poll from different threads,
// but any one client still has one owner.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rfc::net {

/// Index of a node process in the peer table (not an agent label: one node
/// owns a whole contiguous block of labels).
using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Where a peer listens.  Loopback ignores both fields; udp/tcp bind
/// `port` on all interfaces and dial `host:port`.
struct PeerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Callback interface through which a CommClient surfaces events — the
/// ACP comm_client_cb_api role.  Implemented by net::NodeDriver.
class CommClientCallback {
 public:
  virtual ~CommClientCallback() = default;

  /// One complete message from `from`.  The buffer is only valid for the
  /// duration of the call.
  virtual void on_message(NodeId from, const std::uint8_t* data,
                          std::size_t size) = 0;

  /// Connection-state edge for `peer` (tcp emits these as mesh links come
  /// up and down; loopback/udp report every peer up at start).
  virtual void on_peer_state(NodeId /*peer*/, bool /*connected*/) {}
};

/// A virtual communication client: reliable-or-not, ordered-or-not is the
/// backend's business.  The driver's sync-point protocol tolerates loss,
/// duplication and reordering of individual messages (it retransmits on
/// request and deduplicates), but assumes the link itself stays up —
/// loopback and tcp are reliable anyway; udp is best-effort and recovered
/// by the driver.
class CommClient {
 public:
  virtual ~CommClient() = default;

  /// Backend name ("loopback", "udp", "tcp").
  virtual const char* name() const noexcept = 0;

  /// Brings the transport up: binds/dials per the backend, blocks until
  /// the mesh is usable (tcp: all connections established) or throws
  /// std::runtime_error.  `peers[self]` is this node's own endpoint.
  virtual void start(NodeId self, const std::vector<PeerEndpoint>& peers,
                     CommClientCallback& callback) = 0;

  /// Tears the transport down; idempotent.
  virtual void stop() = 0;

  /// Queues one message to `to`.  Throws std::runtime_error on a hard
  /// transport failure (unknown peer, broken connection).
  virtual void send(NodeId to, const std::uint8_t* data,
                    std::size_t size) = 0;

  /// Pumps the transport: dispatches any received messages to the callback
  /// and returns how many were delivered.  Blocks up to `timeout_ms` for
  /// the first one (0 = non-blocking drain).
  virtual std::size_t poll(int timeout_ms) = 0;
};

using CommClientPtr = std::unique_ptr<CommClient>;

/// Transport selector, round-trippable for CLI flags (`--transport=`).
enum class TransportKind : std::uint8_t { kLoopback, kUdp, kTcp };

const char* to_string(TransportKind kind) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names.
TransportKind parse_transport_kind(const std::string& text);

class LoopbackHub;  // net/loopback.hpp

/// Builds a client for `kind`.  Loopback requires the shared hub (every
/// in-process node attaches to the same one); udp/tcp ignore it.
CommClientPtr make_comm_client(TransportKind kind,
                               LoopbackHub* hub = nullptr);

}  // namespace rfc::net
