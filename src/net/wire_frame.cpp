#include "net/wire_frame.hpp"

#include <limits>
#include <stdexcept>

#include "core/payloads.hpp"

namespace rfc::net {

namespace {

constexpr std::uint64_t kFrameMagic = 0xC5;

bool known_kind(std::uint64_t raw) noexcept {
  return raw >= static_cast<std::uint64_t>(FrameKind::kRoundStatus) &&
         raw <= static_cast<std::uint64_t>(FrameKind::kResendRequest);
}

bool carries_payload(FrameKind kind) noexcept {
  return kind == FrameKind::kPullReply || kind == FrameKind::kPush;
}

bool carries_labels(FrameKind kind) noexcept {
  return kind == FrameKind::kPullRequest || carries_payload(kind);
}

}  // namespace

const char* to_string(FrameKind kind) noexcept {
  switch (kind) {
    case FrameKind::kRoundStatus: return "round-status";
    case FrameKind::kActionsDone: return "actions-done";
    case FrameKind::kRepliesDone: return "replies-done";
    case FrameKind::kPullRequest: return "pull-request";
    case FrameKind::kPullReply: return "pull-reply";
    case FrameKind::kPush: return "push";
    case FrameKind::kResendRequest: return "resend-request";
  }
  return "unknown";
}

void encode_payload(core::BitWriter& w, const sim::Payload& payload,
                    const core::ProtocolParams* params) {
  const sim::PayloadTag tag = payload.tag();
  w.write(tag, 16);
  if (payload.empty()) return;

  if (tag == core::kIntentionPayloadTag || tag == core::kCertificatePayloadTag) {
    if (params == nullptr) {
      throw std::invalid_argument(
          "encode_payload: protocol payloads need ProtocolParams");
    }
    if (tag == core::kIntentionPayloadTag) {
      const core::VoteIntention* intention = core::intention_in(payload);
      if (intention == nullptr) {
        throw std::invalid_argument("encode_payload: intention tag without "
                                    "a boxed VoteIntention");
      }
      core::encode_intention(w, *params, *intention);
    } else {
      const core::Certificate* certificate = core::certificate_in(payload);
      if (certificate == nullptr) {
        throw std::invalid_argument("encode_payload: certificate tag without "
                                    "a boxed Certificate");
      }
      core::encode_certificate(w, *params, *certificate);
    }
    return;
  }

  // Any other boxed payload (e.g. the sequential model's AsyncReply, 0x29)
  // has no registered wire form.
  if (payload.boxed_as<void>(tag) != nullptr) {
    throw std::invalid_argument("encode_payload: boxed payload tag has no "
                                "wire encoding");
  }

  // Generic inline payload: declared bit size plus the three words.
  if (payload.bit_size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("encode_payload: inline bit size overflows");
  }
  w.write(payload.bit_size(), 32);
  for (std::size_t i = 0; i < sim::Payload::kInlineWords; ++i) {
    w.write(payload.word(i), 64);
  }
}

core::WireResult<sim::Payload> decode_payload(
    core::BitReader& r, const core::ProtocolParams* params) {
  using R = core::WireResult<sim::Payload>;
  const auto tag = r.read(16);
  if (!tag) return R::failure(core::WireError::kTruncated);
  if (*tag == sim::kUntaggedPayload) return R::success(sim::Payload{});

  if (*tag == core::kIntentionPayloadTag) {
    if (params == nullptr) {
      return R::failure(core::WireError::kUnsupportedTag);
    }
    auto intention = core::decode_intention_checked(r, *params);
    if (!intention.ok()) return R::failure(intention.error);
    return R::success(
        core::make_intention_payload(std::move(*intention.value), *params));
  }
  if (*tag == core::kCertificatePayloadTag) {
    if (params == nullptr) {
      return R::failure(core::WireError::kUnsupportedTag);
    }
    auto certificate = core::decode_certificate_checked(r, *params);
    if (!certificate.ok()) return R::failure(certificate.error);
    return R::success(core::make_certificate_payload(
        std::move(*certificate.value), *params));
  }
  if (*tag == core::kAsyncReplyPayloadTag) {
    return R::failure(core::WireError::kUnsupportedTag);
  }

  const auto bits = r.read(32);
  if (!bits) return R::failure(core::WireError::kTruncated);
  std::uint64_t words[sim::Payload::kInlineWords] = {};
  for (auto& word : words) {
    const auto w = r.read(64);
    if (!w) return R::failure(core::WireError::kTruncated);
    word = *w;
  }
  return R::success(sim::Payload::inline_words(
      static_cast<sim::PayloadTag>(*tag), *bits, words[0], words[1],
      words[2]));
}

std::vector<std::uint8_t> FrameCodec::encode(const Frame& frame) const {
  if (frame.round > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("FrameCodec: round overflows the u32 header");
  }
  core::BitWriter w;
  w.write(kFrameMagic, 8);
  w.write(static_cast<std::uint64_t>(frame.kind), 8);
  w.write(frame.round, 32);
  w.write(frame.agent, 32);
  w.write(frame.target, 32);
  w.write(frame.complete ? 1 : 0, 8);
  w.write(frame.count, 32);
  if (carries_payload(frame.kind)) {
    encode_payload(w, frame.payload, params);
  }
  return w.bytes();
}

core::WireResult<Frame> FrameCodec::decode(const std::uint8_t* data,
                                           std::size_t size) const {
  using R = core::WireResult<Frame>;
  const std::vector<std::uint8_t> bytes(data, data + size);
  core::BitReader r(bytes, static_cast<std::uint64_t>(bytes.size()) * 8);

  const auto magic = r.read(8);
  if (!magic) return R::failure(core::WireError::kTruncated);
  if (*magic != kFrameMagic) return R::failure(core::WireError::kBadFrame);
  const auto kind = r.read(8);
  if (!kind) return R::failure(core::WireError::kTruncated);
  if (!known_kind(*kind)) return R::failure(core::WireError::kBadFrame);

  Frame frame;
  frame.kind = static_cast<FrameKind>(*kind);
  const auto round = r.read(32);
  const auto agent = r.read(32);
  const auto target = r.read(32);
  const auto complete = r.read(8);
  const auto count = r.read(32);
  if (!round || !agent || !target || !complete || !count) {
    return R::failure(core::WireError::kTruncated);
  }
  frame.round = *round;
  frame.agent = static_cast<sim::AgentId>(*agent);
  frame.target = static_cast<sim::AgentId>(*target);
  frame.complete = *complete != 0;
  frame.count = static_cast<std::uint32_t>(*count);

  if (carries_labels(frame.kind) && n != 0 &&
      (frame.agent >= n || frame.target >= n)) {
    return R::failure(core::WireError::kRangeViolation);
  }
  if (carries_payload(frame.kind)) {
    auto payload = decode_payload(r, params);
    if (!payload.ok()) return R::failure(payload.error);
    frame.payload = std::move(*payload.value);
  }
  // Only byte-boundary padding may trail a frame; whole extra bytes mean a
  // framing slip (or a hostile overlong buffer).
  if (r.remaining() >= 8) return R::failure(core::WireError::kBadFrame);
  return R::success(std::move(frame));
}

}  // namespace rfc::net
