#include "net/loopback.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace rfc::net {

LoopbackHub::LoopbackHub(std::uint32_t num_nodes) {
  if (num_nodes == 0) {
    throw std::invalid_argument("LoopbackHub: num_nodes must be positive");
  }
  boxes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
}

void LoopbackHub::post(NodeId from, NodeId to, const std::uint8_t* data,
                       std::size_t size) {
  if (to >= boxes_.size()) {
    throw std::invalid_argument("LoopbackHub: unknown destination node");
  }
  Mailbox& box = *boxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.emplace_back(from, std::vector<std::uint8_t>(data, data + size));
  }
  box.ready.notify_one();
}

std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> LoopbackHub::drain(
    NodeId self, int timeout_ms) {
  Mailbox& box = *boxes_.at(self);
  std::unique_lock<std::mutex> lock(box.mutex);
  if (box.queue.empty() && timeout_ms > 0) {
    box.ready.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&box] { return !box.queue.empty(); });
  }
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> out(
      std::make_move_iterator(box.queue.begin()),
      std::make_move_iterator(box.queue.end()));
  box.queue.clear();
  return out;
}

namespace {

class LoopbackCommClient final : public CommClient {
 public:
  explicit LoopbackCommClient(LoopbackHub& hub) : hub_(&hub) {}

  const char* name() const noexcept override { return "loopback"; }

  void start(NodeId self, const std::vector<PeerEndpoint>& peers,
             CommClientCallback& callback) override {
    if (self >= hub_->num_nodes() || peers.size() != hub_->num_nodes()) {
      throw std::runtime_error(
          "loopback: peer table does not match the hub's node count");
    }
    self_ = self;
    callback_ = &callback;
    for (NodeId p = 0; p < hub_->num_nodes(); ++p) {
      if (p != self_) callback_->on_peer_state(p, true);
    }
  }

  void stop() override { callback_ = nullptr; }

  void send(NodeId to, const std::uint8_t* data, std::size_t size) override {
    if (callback_ == nullptr) throw std::runtime_error("loopback: not started");
    hub_->post(self_, to, data, size);
  }

  std::size_t poll(int timeout_ms) override {
    if (callback_ == nullptr) throw std::runtime_error("loopback: not started");
    const auto batch = hub_->drain(self_, timeout_ms);
    for (const auto& [from, bytes] : batch) {
      callback_->on_message(from, bytes.data(), bytes.size());
    }
    return batch.size();
  }

 private:
  LoopbackHub* hub_;
  NodeId self_ = kNoNode;
  CommClientCallback* callback_ = nullptr;
};

}  // namespace

CommClientPtr make_loopback_client(LoopbackHub& hub) {
  return std::make_unique<LoopbackCommClient>(hub);
}

}  // namespace rfc::net
