// NodeDriver — one node process of a distributed GOSSIP run.
//
// Each node owns a contiguous label block (the partition rule shared with
// the sharded executor: block b is [contiguous_block_begin(n, K, b),
// contiguous_block_begin(n, K, b+1))) and replicates EngineCore's phased
// synchronous round locally, moving every cross-block interaction over a
// CommClient as wire frames.  The adaptation into asynchronous rounds with
// explicit sync points follows ACP's ac_protocol: a round advances through
// three barriers, each a mark frame that also *counts* the data frames
// preceding it so the barrier is exact even over a reordering transport:
//
//   1. round-status  — exchanged at round *start*, carrying each block's
//      completion flag (computed from post-previous-round state, matching
//      the engine's check-before-step loop).  All blocks complete, or the
//      round budget spent → the run ends here.
//   2. actions-done  — after phase A: every local agent's action collected
//      (in label order, under the partial-async mask when configured) and
//      every cross-block pull request / push sent.
//   3. replies-done  — after phase B: every pull on a local pullee served
//      in global requester-label order from round-start state, and every
//      cross-block reply (empty ones included) sent.
//
// Phases C (deliver pull replies, requester order) and D (deliver pushes,
// sender order) then run locally — all their inputs arrived by barrier 3.
//
// Loss recovery: on a lossy transport (UDP) any of those frames can simply
// vanish, and before the resend protocol a single lost barrier frame hung
// the whole cluster until the sync timeout.  Now every sent frame is kept
// (encoded) in a two-round send buffer; a driver whose sync point stays
// unsatisfied past resend_interval_ms sends kResendRequest marks to the
// outstanding peers, which replay their buffered frames.  Re-deliveries
// are made idempotent by per-round dedup (an agent acts at most once per
// round, so its label keys its data frame) and frames for finished rounds
// are dropped silently — so retransmission changes nothing about the
// execution, which stays bit-identical to the engine's.
//
// Determinism: agent RNG streams are derive_seed(seed, label), the fault
// plan and the partial-async mask stream (one Bernoulli per label per
// round, faulty included) are derived identically on every node, and all
// per-phase processing is sorted by label — so the distributed execution
// is the engine's execution, bit for bit, regardless of message arrival
// interleaving.  Metrics are charged exactly once cluster-wide on the side
// the engine charges them (requester: pull requests; pullee owner:
// replies; sender: pushes), so per-node Metrics sum to the engine's.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/comm_client.hpp"
#include "net/wire_frame.hpp"
#include "net/workload.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"

namespace rfc::net {

struct NodeOptions {
  NodeId node_id = 0;
  std::uint32_t num_nodes = 1;
  /// How long a sync-point wait may stall before the driver gives up and
  /// throws (a peer crash would otherwise hang the cluster forever).
  int sync_timeout_ms = 30000;
  /// While a sync point stays unsatisfied, a resend request is sent to each
  /// outstanding peer every `resend_interval_ms` — the recovery path for
  /// lossy transports (UDP), where a dropped barrier frame used to hang the
  /// run until sync_timeout_ms.  Reliable transports never get that far, so
  /// the requests only ever travel when something was actually lost.
  int resend_interval_ms = 150;
  /// After finishing, keep polling this long to answer slower peers' resend
  /// requests: the *final* status broadcast may be dropped, and a node that
  /// exits immediately can no longer retransmit it.  0 (the default) keeps
  /// the exit prompt — right for reliable transports; UDP runs should set a
  /// few resend intervals' worth.
  int linger_ms = 0;
};

struct NodeReport {
  NodeId node_id = 0;
  std::uint32_t first_label = 0;  ///< Local block [first_label, end_label).
  std::uint32_t end_label = 0;
  bool complete = false;          ///< Every block completed (global flag).
  std::uint64_t rounds = 0;       ///< Rounds executed (identical on all nodes).
  /// Locally charged message counters; rounds/virtual_time left zero so the
  /// harness can merge node metrics by plain summation.
  sim::Metrics metrics;
  std::uint64_t state_digest = 0;  ///< FNV-1a over the local block's agents.
};

class NodeDriver final : public CommClientCallback {
 public:
  /// `workload` and `client` must outlive the driver.
  NodeDriver(const Workload& workload, const NodeOptions& options,
             CommClient& client);

  /// Brings the transport up, runs the workload to completion (or budget),
  /// tears the transport down, and reports the local block's outcome.
  /// Throws std::runtime_error on transport failure, a malformed frame, or
  /// a sync-point timeout.
  NodeReport run(const std::vector<PeerEndpoint>& peers);

  // CommClientCallback (invoked from inside client.poll()):
  void on_message(NodeId from, const std::uint8_t* data,
                  std::size_t size) override;
  void on_peer_state(NodeId peer, bool connected) override;

 private:
  /// Per-round frame buffers: peers may run up to one stage-cycle ahead, so
  /// everything is bucketed by round and consumed when the local round
  /// catches up.
  struct RoundInbox {
    std::map<NodeId, bool> status;              ///< round-status flags.
    std::map<NodeId, std::uint32_t> actions_announced;
    std::map<NodeId, std::uint32_t> replies_announced;
    std::map<NodeId, std::uint32_t> data_received;     ///< requests + pushes.
    std::map<NodeId, std::uint32_t> replies_received;
    std::vector<Frame> pull_requests;
    std::vector<Frame> pull_replies;
    std::vector<Frame> pushes;
    /// Duplicate suppression for retransmitted data frames.  Every agent
    /// performs at most one active operation per round, so its label keys
    /// its request-or-push (and the single reply it is owed) uniquely; mark
    /// frames are idempotent map writes and need no set.
    std::set<sim::AgentId> seen_data;     ///< requests + pushes, by sender.
    std::set<sim::AgentId> seen_replies;  ///< replies, by requester.
  };

  sim::Context make_context(sim::AgentId label) noexcept;
  sim::Agent& local_agent(sim::AgentId label) {
    return *agents_[label - first_];
  }
  bool block_complete() const;
  std::uint64_t local_digest() const;

  void broadcast(Frame frame);
  void send_frame(NodeId to, const Frame& frame);
  /// Replays everything already sent to `to` for `round` from the send
  /// buffer (a no-op for pruned or not-yet-reached rounds).
  void answer_resend(NodeId to, std::uint64_t round);
  /// Drops send-buffer rounds below `keep_from` (peers lag at most one
  /// stage cycle, so current-1 is the oldest round anyone can still ask
  /// for — the buffer stays bounded at two rounds of traffic).
  void prune_sent(std::uint64_t keep_from);
  /// Polls until `satisfied(p)` holds for every peer p; throws after
  /// options_.sync_timeout_ms.  A disconnected peer is fatal only while
  /// this barrier still needs something from it: a node that finishes the
  /// run closes its connections while slower peers are still collecting
  /// *other* peers' final frames, and (TCP/loopback being ordered) its own
  /// contribution is guaranteed to have been delivered before its EOF.
  template <typename Satisfied>
  void wait_for(const char* what, Satisfied satisfied);

  /// True once the status barrier has all flags; sets `all_complete`.
  bool exchange_status(bool local_complete, bool* all_complete);
  void execute_round();

  const Workload* workload_;
  NodeOptions options_;
  CommClient* client_;
  FrameCodec codec_;

  std::uint32_t first_ = 0;               ///< Local block begin.
  std::uint32_t end_ = 0;                 ///< Local block end.
  std::vector<NodeId> owner_;             ///< label -> owning node.
  std::vector<std::unique_ptr<sim::Agent>> agents_;  ///< Local block only.
  std::vector<rfc::support::Xoshiro256> rngs_;       ///< Local block only.

  bool partial_async_ = false;
  double awake_p_ = 1.0;
  rfc::support::Xoshiro256 mask_rng_{0};
  std::vector<bool> mask_;                ///< Full n, redrawn per round.

  std::uint64_t round_ = 0;
  sim::Metrics metrics_;
  std::map<std::uint64_t, RoundInbox> inbox_;
  std::vector<bool> peer_down_;           ///< tcp disconnects, fail-fast.
  /// Encoded frames already sent, by round then destination — the resend
  /// buffer answering kResendRequest.  Pruned to the last two rounds.
  std::map<std::uint64_t, std::map<NodeId, std::vector<std::vector<std::uint8_t>>>>
      sent_frames_;

  // Per-round scratch, reused.
  std::vector<sim::Action> actions_;      ///< Local agents' actions.
  std::vector<sim::Payload> reply_for_;   ///< Replies to local requesters.
  std::vector<bool> reply_ready_;
};

}  // namespace rfc::net
