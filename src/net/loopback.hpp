// In-process loopback transport: deterministic mailboxes, no sockets.
//
// The hub owns one mailbox per node; a client's send() appends to the
// destination mailbox and poll() drains its own.  Delivery order within a
// (sender, receiver) pair is FIFO — exactly what a reliable ordered
// transport guarantees — and the NodeDriver's round protocol is insensitive
// to cross-sender interleaving (frames are buffered per round and replayed
// in label order), so loopback runs are bit-deterministic even though the
// N drivers live on N preemptively-scheduled threads.
//
// This is the `transport=loopback` backend the differential tests run: it
// exercises every byte of the framing and sync-point protocol with zero
// network nondeterminism, which is what makes "socket run == in-memory
// engine" a meaningful equation before real sockets enter the picture.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "net/comm_client.hpp"

namespace rfc::net {

/// Shared router for one in-process cluster of `num_nodes` loopback
/// clients.  Thread-safe: each node's driver thread touches only its own
/// mailbox lock on receive and the destination's on send.
class LoopbackHub {
 public:
  explicit LoopbackHub(std::uint32_t num_nodes);

  std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(boxes_.size());
  }

  /// Appends one message to `to`'s mailbox (wakes a blocked poll()).
  /// Throws std::invalid_argument on an out-of-range destination.
  void post(NodeId from, NodeId to, const std::uint8_t* data,
            std::size_t size);

  /// Moves out every queued message for `self`, blocking up to
  /// `timeout_ms` for the first (0 = non-blocking).
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> drain(
      NodeId self, int timeout_ms);

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::pair<NodeId, std::vector<std::uint8_t>>> queue;
  };

  std::vector<std::unique_ptr<Mailbox>> boxes_;
};

/// Builds a loopback client attached to `hub`.  start() binds it to its
/// NodeId; peers' endpoints are ignored (the hub is the address space).
CommClientPtr make_loopback_client(LoopbackHub& hub);

}  // namespace rfc::net
