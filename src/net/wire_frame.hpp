// Transport frames of the distributed round protocol.
//
// Every byte a NodeDriver puts on a CommClient is one Frame, encoded with
// core/wire's BitWriter (MSB-first) and parsed back with the checked
// decoders — transport input is hostile by assumption, so every decode
// returns a structured core::WireError instead of asserting.
//
// Frame layout (bit-packed, then padded to a byte boundary):
//
//   magic     u8   0xC5 — rejects stray datagrams and framing slips
//   kind      u8   FrameKind
//   round     u32  engine round the frame belongs to
//   agent     u32  acting agent label (requester / pusher); kNoAgent on marks
//   target    u32  pullee / push destination label; kNoAgent on marks
//   complete  u8   kRoundStatus: the sender's block completion flag
//   count     u32  kActionsDone / kRepliesDone: data frames the sender put
//                  on the wire to *this* destination this round — the
//                  receiver waits until that many arrived, which makes the
//                  sync points exact even over a reordering transport (UDP)
//   payload        kPullReply / kPush: see below
//
// Payload encoding: a 16-bit tag, then tag-dependent content.  Tag 0 is the
// empty payload (a silent pull reply).  The boxed core tags (0x22 vote
// intentions, 0x23 certificates) use the exact bit-level encodings of
// core/wire — the same bits the accounting model charges — and therefore
// need the run's ProtocolParams in the codec.  Every other tag is an inline
// payload and travels generically as (bits u32, 3 x u64 words).  The async
// boxed tag 0x29 has no wire form and is rejected as kUnsupportedTag.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/wire.hpp"
#include "sim/agent.hpp"
#include "sim/payload.hpp"

namespace rfc::net {

enum class FrameKind : std::uint8_t {
  kRoundStatus = 1,  ///< Round-start barrier, carries the block's completion.
  kActionsDone = 2,  ///< All pull requests / pushes of the round are sent.
  kRepliesDone = 3,  ///< All pull replies of the round are sent.
  kPullRequest = 4,  ///< agent pulls target (a local label of the receiver).
  kPullReply = 5,    ///< Reply to agent's pull on target; payload may be empty.
  kPush = 6,         ///< agent pushes payload to target.
  kResendRequest = 7,  ///< "resend me everything you sent me for `round`":
                       ///< lossy transports (UDP) drop frames, and a lost
                       ///< barrier frame would otherwise hang the cluster
                       ///< until the sync timeout.  The receiver answers
                       ///< from its bounded per-round send buffer; dedup on
                       ///< the requester side makes the re-delivery
                       ///< idempotent (see net/node_driver.hpp).
};

const char* to_string(FrameKind kind) noexcept;

struct Frame {
  FrameKind kind = FrameKind::kRoundStatus;
  std::uint64_t round = 0;
  sim::AgentId agent = sim::kNoAgent;
  sim::AgentId target = sim::kNoAgent;
  bool complete = false;
  std::uint32_t count = 0;
  sim::Payload payload;
};

/// Encodes `payload` after its 16-bit tag.  Throws std::invalid_argument on
/// a boxed payload the wire has no encoding for, or on a protocol payload
/// without `params`.
void encode_payload(core::BitWriter& w, const sim::Payload& payload,
                    const core::ProtocolParams* params);

/// Inverse of encode_payload; structured errors on truncated, overlong, or
/// out-of-domain input.
core::WireResult<sim::Payload> decode_payload(
    core::BitReader& r, const core::ProtocolParams* params);

/// Frame codec bound to one run's geometry: `n` validates agent labels
/// (0 = unknown, labels pass unchecked) and `params` enables the boxed
/// protocol payloads.
struct FrameCodec {
  std::uint32_t n = 0;
  const core::ProtocolParams* params = nullptr;

  std::vector<std::uint8_t> encode(const Frame& frame) const;
  core::WireResult<Frame> decode(const std::uint8_t* data,
                                 std::size_t size) const;
};

}  // namespace rfc::net
