// Cluster harness: run a workload as N communicating nodes and prove the
// execution equal to the in-memory engine's.
//
// The reference side deliberately reuses the production entry points
// (gossip::build_spread_engine + run_rumor_spreading_on,
// core::build_protocol_engine + run_protocol_on), so the comparison is
// against the exact loop experiments run — not a reimplementation.  The
// cross-check compares completion, executed rounds, every Metrics field,
// and the per-block FNV-1a end-state digests (certificates wire-encoded),
// which for the deterministic transports (loopback, tcp) must match bit
// for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "gossip/rumor.hpp"
#include "net/comm_client.hpp"
#include "net/node_driver.hpp"
#include "net/workload.hpp"

namespace rfc::net {

struct ClusterSpec {
  enum class Kind : std::uint8_t { kRumor, kProtocol };
  Kind kind = Kind::kRumor;
  gossip::SpreadConfig rumor;     ///< Used when kind == kRumor.
  core::RunConfig protocol;       ///< Used when kind == kProtocol.
  std::uint32_t num_nodes = 2;
  int sync_timeout_ms = 30000;
  /// Forwarded to NodeOptions (see net/node_driver.hpp): the resend-request
  /// cadence of stalled sync points, and how long a finished node keeps
  /// answering resend requests.  The defaults match reliable transports;
  /// lossy runs (UDP, or an injected-loss client) should set a linger of a
  /// few resend intervals.
  int resend_interval_ms = 150;
  int linger_ms = 0;
};

/// The adapted workload for spec.kind (validation per the workload
/// factories: round-based scheduler, no topology/coalition/horizon).
Workload make_cluster_workload(const ClusterSpec& spec);

/// One cluster-level outcome, comparable across the distributed and the
/// in-memory execution.
struct ClusterResult {
  bool complete = false;
  std::uint64_t rounds = 0;
  sim::Metrics metrics;
  std::vector<std::uint64_t> block_digests;  ///< One per node, in node order.
  std::uint64_t digest = 0;                  ///< combine_block_digests(...).
};

/// Folds per-node reports (any order) into a ClusterResult.  Throws
/// std::runtime_error when the reports do not form one consistent run:
/// missing/duplicate node ids, blocks not tiling [0, n), or nodes
/// disagreeing on rounds or completion.
ClusterResult merge_reports(const Workload& workload,
                            const std::vector<NodeReport>& reports);

/// Runs the same workload on the in-memory engine via the production entry
/// points and summarizes it in the same shape.
ClusterResult reference_result(const ClusterSpec& spec);

/// Runs spec as num_nodes in-process nodes, one thread each, over `kind`
/// (loopback needs no ports; udp/tcp bind 127.0.0.1:port_base+i).  The
/// first node failure is rethrown.
std::vector<NodeReport> run_local_cluster(const ClusterSpec& spec,
                                          TransportKind kind,
                                          std::uint16_t port_base = 0);

/// Builds node `id`'s transport — the hook through which tests wrap a
/// backend (e.g. net/lossy_client.hpp dropping one chosen sync frame).
using ClientFactory = std::function<CommClientPtr(NodeId id)>;

/// As above, but each node's CommClient comes from `factory` (ports are the
/// factory's business; `spec.num_nodes` threads are still spawned here).
std::vector<NodeReport> run_local_cluster(const ClusterSpec& spec,
                                          const ClientFactory& factory);

/// "" when `cluster` and `reference` describe the same execution, else a
/// human-readable description of the first few mismatches.
std::string cross_check(const ClusterResult& cluster,
                        const ClusterResult& reference);

/// Convenience: run_local_cluster + merge + reference + cross_check.
std::string cross_check_local(const ClusterSpec& spec, TransportKind kind,
                              std::uint16_t port_base = 0);

}  // namespace rfc::net
