#include "baseline/local_fair_election.hpp"

#include "core/runner.hpp"
#include "support/math_util.hpp"
#include "support/rng.hpp"

namespace rfc::baseline {

LocalElectionResult run_local_fair_election(const LocalElectionConfig& cfg) {
  LocalElectionResult result;
  if (cfg.n == 0) return result;

  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  const std::vector<bool> faulty = sim::make_fault_plan(
      cfg.placement, cfg.n, cfg.num_faulty, fault_rng);

  const std::vector<core::Color> colors =
      cfg.colors.empty() ? core::leader_election_colors(cfg.n) : cfg.colors;

  // Every active agent draws r_u u.a.r. in [n] and (conceptually) sends a
  // commitment to everyone, then the opening.  The leader is the
  // (Σ r_u mod |A|)-th active agent in label order — uniform because each
  // r_u alone already makes the sum uniform (deferred decision).
  std::vector<sim::AgentId> active;
  active.reserve(cfg.n);
  std::uint64_t sum = 0;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (faulty[i]) continue;
    active.push_back(i);
    rfc::support::Xoshiro256 rng(rfc::support::derive_seed(cfg.seed, i));
    sum += rng.below(cfg.n);
  }
  if (active.empty()) return result;

  result.num_active = static_cast<std::uint32_t>(active.size());
  result.leader = active[sum % active.size()];
  result.winner = colors.at(result.leader);
  result.rounds = 2;

  // Accounting: commit round + reveal round, each |A| * (n-1) messages of
  // one value width (the commitment is modeled at the same width as the
  // value it hides; any constant-factor hash width only helps the gossip
  // protocol in the comparison).
  const std::uint64_t value_bits =
      rfc::support::bit_width_for_domain(cfg.n);
  const std::uint64_t per_round =
      static_cast<std::uint64_t>(active.size()) * (cfg.n - 1);
  result.messages = 2 * per_round;
  result.total_bits = result.messages * value_bits;
  result.max_message_bits = value_bits;
  return result;
}

}  // namespace rfc::baseline
