// Naive GOSSIP leader election: the verification-free strawman.
//
// Each agent draws a key u.a.r. in [m] (or uses its label, for the
// deterministic min-ID variant), the network pull-broadcasts the minimal
// (key, owner, color) tuple for q rounds, and everyone adopts the minimal
// tuple's color.  With honest agents this is fair and fast — but nothing
// binds an agent to its key, so a single rational agent claiming key 0 wins
// with certainty.  Experiment E8 measures exactly that, motivating the
// Commitment / Coherence / Verification machinery of Protocol P.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/agent.hpp"
#include "sim/budget.hpp"
#include "sim/fault_model.hpp"
#include "sim/metrics.hpp"
#include "sim/network_spec.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::baseline {

enum class NaiveKeyMode : std::uint8_t {
  kRandom,  ///< Key u.a.r. in [m]: fair among honest agents.
  kMinId,   ///< Key = own label: deterministic and blatantly unfair.
};

std::string to_string(NaiveKeyMode mode);

class NaiveElectionAgent final : public sim::Agent {
 public:
  struct Tuple {
    std::uint64_t key = 0;
    sim::AgentId owner = sim::kNoAgent;
    core::Color color = core::kNoColor;
    bool less_than(const Tuple& other) const noexcept {
      if (key != other.key) return key < other.key;
      return owner < other.owner;
    }
  };

  /// `cheat` pins the key to 0 — the one-line attack this baseline admits.
  NaiveElectionAgent(NaiveKeyMode mode, std::uint64_t m, std::uint32_t q,
                     core::Color color, bool cheat) noexcept
      : mode_(mode), m_(m), q_(q), rounds_left_(q), color_(color),
        cheat_(cheat) {}

  core::Color decision() const noexcept { return best_.color; }
  const Tuple& best() const noexcept { return best_; }

  void on_start(const sim::Context& ctx) override;
  sim::Action on_round(const sim::Context& ctx) override;
  sim::Payload serve_pull(const sim::Context& ctx,
                          sim::AgentId requester) override;
  void on_pull_reply(const sim::Context& ctx, sim::AgentId target,
                     const sim::Payload& reply) override;
  bool done() const override { return rounds_left_ == 0; }

  // All observations move only inside this agent's own callbacks, so the
  // engine may mirror them into its SoA caches (sim/agent.hpp).
  bool cacheable_observations() const noexcept override { return true; }

  /// One-stage pipeline: the fraction of the q-pull budget spent.
  double progress() const noexcept override {
    return q_ == 0 ? 1.0
                   : static_cast<double>(q_ - rounds_left_) /
                         static_cast<double>(q_);
  }

 private:
  NaiveKeyMode mode_;
  std::uint64_t m_;
  std::uint32_t q_;
  std::uint32_t rounds_left_;
  core::Color color_;
  bool cheat_;
  Tuple best_;
};

struct NaiveElectionConfig {
  std::uint32_t n = 0;
  double gamma = 4.0;
  std::uint64_t seed = 1;
  NaiveKeyMode mode = NaiveKeyMode::kRandom;
  std::vector<core::Color> colors;   ///< Empty = leader election.
  std::uint32_t cheaters = 0;        ///< First labels claim key 0.
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  /// Activation policy; the default is the paper's synchronous model.
  /// Under activation-based policies agents spend their q pull budget
  /// whenever they wake, finish at different (random) times, and early
  /// finishers can freeze on a stale minimum — agreement is no longer
  /// w.h.p. at the synchronous budget (experiment E12b).
  sim::SchedulerSpec scheduler;
  /// Message-layer adversary & churn (sim/network_spec.hpp); the default is
  /// the reliable network.
  sim::NetworkSpec network;
  /// Scales the per-agent pull budget q, to explore how much extra work
  /// buys agreement back under asynchronous schedules.
  double budget_multiplier = 1.0;
  /// Optional run budget override (events and/or a virtual-time horizon).
  /// Unset fields fall back to the q-derived default event cap.
  sim::Budget budget;
};

struct NaiveElectionResult {
  bool agreement = false;            ///< All active agents adopted one tuple.
  core::Color winner = core::kNoColor;
  sim::AgentId leader = sim::kNoAgent;
  std::uint64_t rounds = 0;          ///< Scheduling events elapsed.
  sim::Metrics metrics;
};

NaiveElectionResult run_naive_election(const NaiveElectionConfig& cfg);

}  // namespace rfc::baseline
