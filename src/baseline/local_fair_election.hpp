// LOCAL-model fair leader election baseline (Abraham-Dolev-Halpern style).
//
// All prior rational fair consensus / leader election protocols [2, 3, 14]
// run in the LOCAL model and rely on all-to-all broadcast: every agent sends
// a commitment of a random value to every other agent, then reveals it; the
// leader is indexed by the sum of all reveals modulo the number of
// participants.  This is fair and (per [2]) resilient, but costs Θ(n^2)
// messages and Θ(n) local memory — the cost the paper's protocol removes.
//
// We implement it as a direct closed-form simulation (the LOCAL model has no
// scheduling subtlety worth simulating message-by-message) with exact
// message/bit accounting, as the Ω(n^2) comparator for experiment E3.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sim/fault_model.hpp"

namespace rfc::baseline {

struct LocalElectionConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  /// Initial colors; empty means leader election (c_u = u).
  std::vector<core::Color> colors;
};

struct LocalElectionResult {
  core::Color winner = core::kNoColor;
  sim::AgentId leader = sim::kNoAgent;
  std::uint64_t rounds = 0;        ///< 2: commit + reveal.
  std::uint64_t messages = 0;      ///< 2 |A| (n-1).
  std::uint64_t total_bits = 0;
  std::uint64_t max_message_bits = 0;
  std::uint32_t num_active = 0;
};

LocalElectionResult run_local_fair_election(const LocalElectionConfig& cfg);

}  // namespace rfc::baseline
