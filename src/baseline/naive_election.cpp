#include "baseline/naive_election.hpp"

#include <cmath>
#include <memory>

#include "core/runner.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"
#include "support/math_util.hpp"

namespace rfc::baseline {
namespace {

/// Tag of the (key, owner, color) tuple (baseline range 0x30..0x3F).
constexpr sim::PayloadTag kTuplePayloadTag = 0x30;

/// (key, owner, color) on the wire, inline as three words (the color is a
/// signed Color round-tripped through static_cast).
sim::Payload make_tuple_payload(const NaiveElectionAgent::Tuple& tuple,
                                std::uint64_t m, std::uint32_t n) noexcept {
  return sim::Payload::inline_words(
      kTuplePayloadTag,
      rfc::support::bit_width_for_domain(m) +
          2ull * rfc::support::bit_width_for_domain(n),
      tuple.key, tuple.owner, static_cast<std::uint64_t>(tuple.color));
}

NaiveElectionAgent::Tuple tuple_in(const sim::Payload& p) noexcept {
  return {p.word(0), static_cast<sim::AgentId>(p.word(1)),
          static_cast<core::Color>(p.word(2))};
}

}  // namespace

std::string to_string(NaiveKeyMode mode) {
  switch (mode) {
    case NaiveKeyMode::kRandom: return "random-key";
    case NaiveKeyMode::kMinId: return "min-id";
  }
  return "unknown";
}

void NaiveElectionAgent::on_start(const sim::Context& ctx) {
  best_.owner = ctx.self;
  best_.color = color_;
  if (cheat_) {
    best_.key = 0;  // Nothing in this protocol can catch the lie.
  } else if (mode_ == NaiveKeyMode::kRandom) {
    best_.key = ctx.rng->below(m_);
  } else {
    best_.key = ctx.self;
  }
}

sim::Action NaiveElectionAgent::on_round(const sim::Context& ctx) {
  if (rounds_left_ == 0) return sim::Action::idle();
  --rounds_left_;
  return sim::Action::pull(ctx.random_peer());
}

sim::Payload NaiveElectionAgent::serve_pull(const sim::Context& ctx,
                                            sim::AgentId) {
  return make_tuple_payload(best_, m_, ctx.n);
}

void NaiveElectionAgent::on_pull_reply(const sim::Context&, sim::AgentId,
                                       const sim::Payload& reply) {
  if (reply.empty()) return;
  const Tuple tuple = tuple_in(reply);
  if (tuple.less_than(best_)) best_ = tuple;
}

NaiveElectionResult run_naive_election(const NaiveElectionConfig& cfg) {
  sim::Engine engine(
      {cfg.n, cfg.seed, nullptr, cfg.scheduler.make(), cfg.network.make()});
  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  engine.apply_fault_plan(
      sim::make_fault_plan(cfg.placement, cfg.n, cfg.num_faulty, fault_rng));

  const std::vector<core::Color> colors =
      cfg.colors.empty() ? core::leader_election_colors(cfg.n) : cfg.colors;
  const std::uint64_t m =
      rfc::support::cube(static_cast<std::uint64_t>(cfg.n));
  const auto q = static_cast<std::uint32_t>(std::ceil(
      cfg.budget_multiplier * rfc::support::round_count(cfg.gamma, cfg.n)));

  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    engine.set_agent(i, std::make_unique<NaiveElectionAgent>(
                            cfg.mode, m, q, colors.at(i), i < cfg.cheaters));
  }
  // Every agent spends exactly q activations; under activation-based
  // policies each costs ~steps_per_round events and the 8x slack covers
  // the coupon-collector tail of the wake schedule (agents go done() when
  // their budget is spent, so the run stops early in the common case).
  // cfg.budget overrides; the default event cap stays as a backstop for
  // horizon-only runs.
  const std::uint64_t spr = cfg.scheduler.steps_per_round(cfg.n);
  sim::Budget budget = cfg.budget;
  if (budget.events == 0) budget.events = spr == 1 ? q : 8ull * q * spr;
  engine.run(budget);

  NaiveElectionResult result;
  result.rounds = engine.round();
  result.metrics = engine.metrics();
  result.agreement = true;
  bool first = true;
  NaiveElectionAgent::Tuple best;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (engine.is_faulty(i)) continue;
    const auto& agent =
        static_cast<const NaiveElectionAgent&>(engine.agent(i));
    if (first) {
      best = agent.best();
      first = false;
    } else if (!(agent.best().key == best.key &&
                 agent.best().owner == best.owner)) {
      result.agreement = false;
    }
  }
  if (result.agreement && !first) {
    result.winner = best.color;
    result.leader = best.owner;
  }
  return result;
}

}  // namespace rfc::baseline
