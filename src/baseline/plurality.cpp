#include "baseline/plurality.hpp"

#include <stdexcept>

#include "core/runner.hpp"
#include "support/math_util.hpp"
#include "support/rng.hpp"

namespace rfc::baseline {

PluralityResult run_plurality_consensus(const PluralityConfig& cfg) {
  if (cfg.n == 0) throw std::invalid_argument("plurality: n must be > 0");

  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  const std::vector<bool> faulty = sim::make_fault_plan(
      cfg.placement, cfg.n, cfg.num_faulty, fault_rng);

  std::vector<core::Color> state =
      cfg.colors.empty() ? core::leader_election_colors(cfg.n) : cfg.colors;
  std::vector<core::Color> next(state.size());

  std::vector<rfc::support::Xoshiro256> rngs;
  rngs.reserve(cfg.n);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    rngs.emplace_back(rfc::support::derive_seed(cfg.seed, i));
  }

  PluralityResult result;
  const std::uint64_t color_bits =
      rfc::support::bit_width_for_domain(cfg.n);

  const auto monochromatic = [&] {
    core::Color c = core::kNoColor;
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      if (faulty[i]) continue;
      if (c == core::kNoColor) {
        c = state[i];
      } else if (state[i] != c) {
        return core::kNoColor;
      }
    }
    return c;
  };

  for (std::uint64_t round = 0; round < cfg.max_rounds; ++round) {
    const core::Color c = monochromatic();
    if (c != core::kNoColor) {
      result.converged = true;
      result.winner = c;
      result.rounds = round;
      result.metrics.rounds = round;
      return result;
    }
    for (std::uint32_t u = 0; u < cfg.n; ++u) {
      if (faulty[u]) {
        next[u] = state[u];
        continue;
      }
      // Sample three uniform peers; a faulty peer yields no reply and the
      // sample falls back to u's own color (a conservative tie-preserving
      // choice).
      core::Color sample[3];
      for (int s = 0; s < 3; ++s) {
        const auto v = static_cast<std::uint32_t>(rngs[u].below(cfg.n));
        sample[s] = faulty[v] ? state[u] : state[v];
        ++result.metrics.pull_requests;
        if (!faulty[v]) ++result.metrics.pull_replies;
        result.metrics.note_message(color_bits);
      }
      result.metrics.active_links += 3;
      // Majority of three; all-distinct ties go to the first sample.
      if (sample[1] == sample[2]) {
        next[u] = sample[1];
      } else {
        next[u] = sample[0];
      }
    }
    state.swap(next);
    result.metrics.rounds = round + 1;
  }

  result.rounds = cfg.max_rounds;
  const core::Color c = monochromatic();
  result.converged = c != core::kNoColor;
  result.winner = c;
  return result;
}

}  // namespace rfc::baseline
