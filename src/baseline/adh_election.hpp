// Abraham–Dolev–Halpern-style fair leader election in the LOCAL model
// (reference [2] of the paper) — the prior-work comparator, implemented as
// an executable protocol rather than a cost formula.
//
// Mechanism (two all-to-all rounds):
//   commit round : every participant broadcasts a binding commitment to a
//                  random value r_u ∈ [n];
//   reveal round : every participant broadcasts the opening; everyone
//                  checks every opening against its commitment;
//   decision     : leader = the (Σ r_u mod |participants|)-th participant
//                  in label order.  Fair: any single honest r_u already
//                  makes the sum uniform.
//
// Properties the paper cites, all reproducible here (experiment E13):
//   * fairness and (n-1)-resilience against *rational* deviations: a
//     cheater cannot steer the sum (commitments bind before any reveal is
//     seen), and a detectably bad opening marks the cheater faulty;
//   * Θ(n^2) messages and Θ(n) local memory — the costs Protocol P removes;
//   * NO crash-fault tolerance: a participant that commits but never
//     reveals leaves the sum undefined — honest agents cannot distinguish
//     "crashed" from "aborting because it lost", so the run ends ⊥.  (The
//     paper: "their protocol is not robust against crash faults".)
//
// Deviations modeled:
//   kCrashAfterCommit  : stop after the commit round (a fault, or the
//                        "abort rather than lose" rational strategy —
//                        indistinguishable, which is exactly the problem);
//   kFalseReveal       : open a different value than committed — detected
//                        by every honest agent, cheater excluded, election
//                        re-run among the rest;
//   kAbortIfLosing     : reveal honestly, but crash the *next* election
//                        attempt if the outcome is unfavourable — modeled
//                        by aborting whenever the (already determined)
//                        leader is not in the deviator set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/fault_model.hpp"

namespace rfc::baseline {

enum class AdhDeviation : std::uint8_t {
  kNone,
  kCrashAfterCommit,
  kFalseReveal,
  kAbortIfLosing,
};

std::string to_string(AdhDeviation d);

struct AdhConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  std::vector<core::Color> colors;  ///< Empty = leader election.
  std::uint32_t num_faulty = 0;     ///< Crashed before the protocol starts.
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  /// First `deviators` labels play `deviation` (0 = all honest).
  std::uint32_t deviators = 0;
  AdhDeviation deviation = AdhDeviation::kNone;
};

struct AdhResult {
  core::Color winner = core::kNoColor;  ///< kNoColor = ⊥ (stuck election).
  bool failed() const noexcept { return winner == core::kNoColor; }
  sim::AgentId leader = sim::kNoAgent;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint32_t detected_cheaters = 0;  ///< Excluded after bad openings.
  std::uint32_t num_active = 0;
};

AdhResult run_adh_election(const AdhConfig& cfg);

}  // namespace rfc::baseline
