#include "baseline/adh_election.hpp"

#include <algorithm>

#include "core/runner.hpp"
#include "support/math_util.hpp"
#include "support/rng.hpp"

namespace rfc::baseline {

std::string to_string(AdhDeviation d) {
  switch (d) {
    case AdhDeviation::kNone: return "honest";
    case AdhDeviation::kCrashAfterCommit: return "crash-after-commit";
    case AdhDeviation::kFalseReveal: return "false-reveal";
    case AdhDeviation::kAbortIfLosing: return "abort-if-losing";
  }
  return "unknown";
}

AdhResult run_adh_election(const AdhConfig& cfg) {
  AdhResult result;
  if (cfg.n == 0) return result;

  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  const std::vector<bool> faulty = sim::make_fault_plan(
      cfg.placement, cfg.n, cfg.num_faulty, fault_rng);
  const std::vector<core::Color> colors =
      cfg.colors.empty() ? core::leader_election_colors(cfg.n) : cfg.colors;

  const auto is_deviator = [&cfg](sim::AgentId u) {
    return u < cfg.deviators && cfg.deviation != AdhDeviation::kNone;
  };

  // Participants and their private draws.
  std::vector<sim::AgentId> participants;
  std::vector<std::uint64_t> committed(cfg.n, 0);
  for (std::uint32_t u = 0; u < cfg.n; ++u) {
    if (faulty[u]) continue;
    participants.push_back(u);
    rfc::support::Xoshiro256 rng(rfc::support::derive_seed(cfg.seed, u));
    committed[u] = rng.below(cfg.n);
  }
  result.num_active = static_cast<std::uint32_t>(participants.size());
  if (participants.empty()) return result;

  const std::uint64_t value_bits =
      rfc::support::bit_width_for_domain(cfg.n);
  const auto charge_broadcast_round = [&](std::size_t senders) {
    ++result.rounds;
    result.messages += senders * (cfg.n - 1);
    result.total_bits += senders * (cfg.n - 1) * value_bits;
  };

  // The election may restart after detected cheaters are excluded; each
  // attempt costs two all-to-all rounds.  At most `deviators + 1` attempts.
  std::vector<sim::AgentId> excluded;
  for (;;) {
    std::vector<sim::AgentId> round_participants;
    for (const sim::AgentId u : participants) {
      if (std::find(excluded.begin(), excluded.end(), u) == excluded.end()) {
        round_participants.push_back(u);
      }
    }
    if (round_participants.empty()) return result;  // ⊥.

    // Commit round: everyone broadcasts a binding commitment.
    charge_broadcast_round(round_participants.size());

    // Reveal round.
    charge_broadcast_round(round_participants.size());
    bool stuck = false;
    std::vector<sim::AgentId> detected;
    std::uint64_t sum = 0;
    for (const sim::AgentId u : round_participants) {
      if (is_deviator(u)) {
        switch (cfg.deviation) {
          case AdhDeviation::kCrashAfterCommit:
            // Committed, never reveals.  Honest agents cannot attribute
            // blame (crash vs abort) — the sum is undefined.
            stuck = true;
            continue;
          case AdhDeviation::kFalseReveal: {
            // Opens a value different from the commitment: every honest
            // agent detects the mismatch and excludes u.
            detected.push_back(u);
            continue;
          }
          case AdhDeviation::kAbortIfLosing:
          case AdhDeviation::kNone:
            break;  // Reveals honestly (abort handled after the draw).
        }
      }
      sum += committed[u];
    }

    if (stuck) {
      // ADH offers no recovery from a silent participant: ⊥.
      return result;
    }
    if (!detected.empty()) {
      result.detected_cheaters +=
          static_cast<std::uint32_t>(detected.size());
      excluded.insert(excluded.end(), detected.begin(), detected.end());
      continue;  // Re-run among the remaining participants.
    }

    const sim::AgentId leader =
        round_participants[sum % round_participants.size()];
    if (cfg.deviation == AdhDeviation::kAbortIfLosing &&
        cfg.deviators > 0 && !is_deviator(leader)) {
      // The deviators dislike the outcome and go silent before the final
      // confirmation: indistinguishable from a crash, the election dies.
      return result;  // ⊥.
    }
    result.leader = leader;
    result.winner = colors.at(leader);
    return result;
  }
}

}  // namespace rfc::baseline
