// 3-majority plurality dynamics (Becchetti et al., SODA'15 — reference [6]
// of the paper): in each round every agent pulls the colors of three random
// neighbors and adopts the majority color among them (ties broken toward
// the first sampled).
//
// This is the classic *plurality consensus* protocol the paper cites as
// motivation for studying consensus in the GOSSIP model: it is fast and
// self-stabilizing, but it solves a different problem — the initially most
// common color wins almost surely, so the winning distribution is a step
// function of the initial shares rather than proportional to them.
// Experiment E8b contrasts this with Protocol P's proportional fairness.
//
// Note on the model: sampling three neighbors in one round technically uses
// three pull operations; following [6] we count it as one round of the
// (slightly relaxed) uniform-gossip model and charge all three pulls to the
// metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sim/fault_model.hpp"
#include "sim/metrics.hpp"

namespace rfc::baseline {

struct PluralityConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  std::vector<core::Color> colors;   ///< Initial opinions (required).
  std::uint64_t max_rounds = 10'000;
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
};

struct PluralityResult {
  bool converged = false;            ///< Monochromatic within max_rounds.
  core::Color winner = core::kNoColor;
  std::uint64_t rounds = 0;
  sim::Metrics metrics;
};

PluralityResult run_plurality_consensus(const PluralityConfig& cfg);

}  // namespace rfc::baseline
