// Classic epidemic rumor spreading on the complete graph (Demers et al. '87,
// Karp et al. FOCS'00), built on the sim engine.
//
// These primitives serve two purposes: they are the substrate the protocol's
// Find-Min phase is built from (a pull-based broadcast, [19] in the paper),
// and experiment E9 uses them to calibrate the Θ(log n) broadcast time that
// Lemma 3 (point 3) relies on — including the fault-resilience slack that
// motivates the γ(α) constant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/agent.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/scheduler.hpp"

namespace rfc::gossip {

enum class Mechanism : std::uint8_t {
  kPush,      ///< Informed nodes push the rumor to a random neighbor.
  kPull,      ///< Uninformed nodes pull a random neighbor.
  kPushPull,  ///< Informed push, uninformed pull.
};

const std::vector<Mechanism>& all_mechanisms();
std::string to_string(Mechanism m);

/// A rumor value travelling the network; bit size is configurable so
/// experiments can model payloads of any width.
class RumorPayload final : public sim::Payload {
 public:
  RumorPayload(std::uint64_t value, std::uint64_t bits) noexcept
      : value_(value), bits_(bits) {}
  std::uint64_t value() const noexcept { return value_; }
  std::uint64_t bit_size() const noexcept override { return bits_; }

 private:
  std::uint64_t value_;
  std::uint64_t bits_;
};

/// One node of the rumor-spreading process.
class RumorAgent final : public sim::Agent {
 public:
  RumorAgent(Mechanism mech, bool informed, std::uint64_t rumor_bits) noexcept
      : mech_(mech), informed_(informed), rumor_bits_(rumor_bits) {}

  bool informed() const noexcept { return informed_; }

  sim::Action on_round(const sim::Context& ctx) override;
  sim::PayloadPtr serve_pull(const sim::Context& ctx,
                             sim::AgentId requester) override;
  void on_pull_reply(const sim::Context& ctx, sim::AgentId target,
                     sim::PayloadPtr reply) override;
  void on_push(const sim::Context& ctx, sim::AgentId sender,
               sim::PayloadPtr payload) override;
  /// Rumor agents never self-terminate: completion ("everyone informed") is
  /// a global property the driver below observes from outside.
  bool done() const override { return false; }

 private:
  Mechanism mech_;
  bool informed_;
  std::uint64_t rumor_bits_;
};

struct SpreadConfig {
  std::uint32_t n = 0;
  Mechanism mechanism = Mechanism::kPull;
  std::uint64_t seed = 1;
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  std::uint64_t rumor_bits = 64;
  std::uint64_t max_rounds = 10'000;  ///< Steps, in the asynchronous model.
  std::uint32_t initial_informed = 1;  ///< Sources, placed on active labels.
  sim::TopologyPtr topology;           ///< Null = complete graph.
};

struct SpreadResult {
  bool complete = false;        ///< Every active agent informed.
  std::uint64_t rounds = 0;     ///< Rounds (sync) / steps (async) elapsed.
  sim::Metrics metrics;
};

/// Runs a full rumor-spreading execution and reports its convergence time.
SpreadResult run_rumor_spreading(const SpreadConfig& cfg);

/// The same process in the asynchronous (sequential) GOSSIP model: one
/// random agent wakes per step.  `rounds` in the result counts steps;
/// expect Θ(n log n) on the complete graph (vs Θ(log n) synchronous
/// rounds) — the cost gap experiment E12 quantifies.
SpreadResult run_rumor_spreading_async(const SpreadConfig& cfg);

/// Fully general form: the spreading process under any activation policy
/// (null = synchronous).  `check_every` bounds how often the O(n)
/// completion predicate is evaluated — 1 checks after every time unit,
/// larger values amortize the scan under step-based schedulers at the cost
/// of overstating completion time by at most that granularity.
SpreadResult run_rumor_spreading_scheduled(const SpreadConfig& cfg,
                                           sim::SchedulerPtr scheduler,
                                           std::uint64_t check_every = 1);

}  // namespace rfc::gossip
