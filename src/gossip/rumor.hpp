// Classic epidemic rumor spreading on the complete graph (Demers et al. '87,
// Karp et al. FOCS'00), built on the sim engine.
//
// These primitives serve two purposes: they are the substrate the protocol's
// Find-Min phase is built from (a pull-based broadcast, [19] in the paper),
// and experiment E9 uses them to calibrate the Θ(log n) broadcast time that
// Lemma 3 (point 3) relies on — including the fault-resilience slack that
// motivates the γ(α) constant.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/agent.hpp"
#include "sim/budget.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/network_spec.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::gossip {

enum class Mechanism : std::uint8_t {
  kPush,      ///< Informed nodes push the rumor to a random neighbor.
  kPull,      ///< Uninformed nodes pull a random neighbor.
  kPushPull,  ///< Informed push, uninformed pull.
};

const std::vector<Mechanism>& all_mechanisms();
std::string to_string(Mechanism m);

/// Tag of the rumor payload (gossip range 0x10..0x1F; see sim/payload.hpp).
/// Shared with gossip::MinAggregationAgent, whose messages are the same
/// "one value of configurable width" wire shape.
inline constexpr sim::PayloadTag kRumorPayloadTag = 0x10;

/// A rumor value travelling the network, inline (no allocation); bit size
/// is configurable so experiments can model payloads of any width.
inline sim::Payload make_rumor_payload(std::uint64_t value,
                                       std::uint64_t bits) noexcept {
  return sim::Payload::inline_words(kRumorPayloadTag, bits, value);
}

/// The value carried by a rumor payload (word 0; callers gate on the tag).
inline std::uint64_t rumor_value_in(const sim::Payload& p) noexcept {
  return p.word(0);
}

/// One node of the rumor-spreading process.
class RumorAgent final : public sim::Agent {
 public:
  RumorAgent(Mechanism mech, bool informed, std::uint64_t rumor_bits) noexcept
      : mech_(mech), informed_(informed), rumor_bits_(rumor_bits) {}

  bool informed() const noexcept { return informed_; }

  sim::Action on_round(const sim::Context& ctx) override;
  sim::Payload serve_pull(const sim::Context& ctx,
                          sim::AgentId requester) override;
  void on_pull_reply(const sim::Context& ctx, sim::AgentId target,
                     const sim::Payload& reply) override;
  void on_push(const sim::Context& ctx, sim::AgentId sender,
               const sim::Payload& payload) override;
  /// Rumor agents never self-terminate: completion ("everyone informed") is
  /// a global property the driver below observes from outside.
  bool done() const override { return false; }

  // All observations move only inside this agent's own callbacks, so the
  // engine may mirror them into its SoA caches (sim/agent.hpp).
  bool cacheable_observations() const noexcept override { return true; }

  /// One-stage pipeline: informed or not.  Lets reactive adversaries
  /// (adversarial:target=min-cert) starve exactly the still-uninformed
  /// agents — the worst case for a pull spread.
  double progress() const noexcept override { return informed_ ? 1.0 : 0.0; }

 private:
  Mechanism mech_;
  bool informed_;
  std::uint64_t rumor_bits_;
};

struct SpreadConfig {
  std::uint32_t n = 0;
  Mechanism mechanism = Mechanism::kPull;
  std::uint64_t seed = 1;
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  std::uint64_t rumor_bits = 64;
  /// Activation policy; the default is the paper's synchronous model.
  /// Under `sequential`/`poisson` expect Θ(n log n) scheduling events on
  /// the complete graph (vs Θ(log n) synchronous rounds) — the cost gap
  /// experiment E12 quantifies.  `synchronous:shards=S,threads=T` runs the
  /// round sharded on a thread pool (sim/sharding.hpp), bit-identical to
  /// the serial engine — how large-n sweeps use multicore hardware.
  sim::SchedulerSpec scheduler;
  /// Message-layer adversary & churn (sim/network_spec.hpp); the default is
  /// the reliable network.  Composes with every scheduler — e.g. a lossy
  /// push-pull spread is `network:drop=0.1` under any activation policy.
  sim::NetworkSpec network;
  /// Cap on scheduling events (rounds under round-based policies, per-agent
  /// activations under sequential/adversarial/poisson).
  std::uint64_t max_rounds = 10'000;
  /// Optional run budget override: a virtual-time horizon and/or an event
  /// cap.  An unset event cap falls back to max_rounds (which then doubles
  /// as the termination backstop of horizon-only runs); the horizon is the
  /// natural axis for continuous-time (poisson) spreads.
  sim::Budget budget;
  /// How often (in scheduling events) the O(n) completion predicate is
  /// evaluated.  0 = auto: every round for round-based policies,
  /// every ~n/4 activations for activation-based ones; completion time is
  /// overstated by at most that granularity.
  std::uint64_t check_every = 0;
  std::uint32_t initial_informed = 1;  ///< Sources, placed on active labels.
  sim::TopologyPtr topology;           ///< Null = complete graph.
};

struct SpreadResult {
  bool complete = false;        ///< Every active agent informed.
  std::uint64_t rounds = 0;     ///< Scheduling events elapsed.
  double virtual_time = 0.0;    ///< Simulated time (= rounds when discrete).
  sim::Metrics metrics;
};

/// Builds the engine of a rumor-spreading run — fault plan applied, sources
/// placed on the first `initial_informed` active labels, a RumorAgent on
/// every label — without stepping it.  Split out so harnesses that need the
/// engine afterwards (e.g. the transport cross-check digesting per-agent
/// end state, net/harness.hpp) drive the exact engine the entry point runs.
std::unique_ptr<sim::Engine> build_spread_engine(const SpreadConfig& cfg);

/// Runs the spread loop on an engine built by build_spread_engine.
SpreadResult run_rumor_spreading_on(sim::Engine& engine,
                                    const SpreadConfig& cfg);

/// Runs a full rumor-spreading execution under cfg.scheduler and reports
/// its convergence time.  This is the single entry point for every
/// activation model; select the policy through the SchedulerSpec.
/// Equivalent to build_spread_engine + run_rumor_spreading_on.
SpreadResult run_rumor_spreading(const SpreadConfig& cfg);

}  // namespace rfc::gossip
