#include "gossip/min_aggregation.hpp"

#include <limits>
#include <memory>

#include "gossip/rumor.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace rfc::gossip {

sim::Action MinAggregationAgent::on_round(const sim::Context& ctx) {
  if (rounds_left_ == 0) return sim::Action::idle();
  --rounds_left_;
  return sim::Action::pull(ctx.random_peer());
}

sim::Payload MinAggregationAgent::serve_pull(const sim::Context&,
                                             sim::AgentId) {
  return make_rumor_payload(value_, value_bits_);
}

void MinAggregationAgent::on_pull_reply(const sim::Context&, sim::AgentId,
                                        const sim::Payload& reply) {
  if (reply.empty()) return;
  const std::uint64_t value = rumor_value_in(reply);
  if (value < value_) value_ = value;
}

MinAggResult run_min_aggregation(const MinAggConfig& cfg) {
  sim::Engine engine({cfg.n, cfg.seed});
  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  engine.apply_fault_plan(
      sim::make_fault_plan(cfg.placement, cfg.n, cfg.num_faulty, fault_rng));

  rfc::support::Xoshiro256 value_rng(
      rfc::support::derive_seed(cfg.seed, 0x7a1u));
  std::uint64_t global_min = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    const std::uint64_t v = value_rng.below(1ULL << 63);
    if (!engine.is_faulty(i)) global_min = std::min(global_min, v);
    engine.set_agent(i, std::make_unique<MinAggregationAgent>(
                            v, cfg.value_bits, cfg.rounds));
  }

  engine.run(cfg.rounds);

  MinAggResult result;
  result.global_min = global_min;
  result.converged = true;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    if (engine.is_faulty(i)) continue;
    const auto& agent =
        static_cast<const MinAggregationAgent&>(engine.agent(i));
    if (agent.value() != global_min) {
      result.converged = false;
      break;
    }
  }
  result.metrics = engine.metrics();
  return result;
}

}  // namespace rfc::gossip
