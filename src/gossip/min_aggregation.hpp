// Pull-based minimum aggregation: every agent repeatedly pulls a random
// peer's current minimum and keeps the smaller value.  This is exactly the
// communication skeleton of Protocol P's Find-Min phase (with certificates
// in place of raw values), packaged standalone so it can be unit-tested and
// benchmarked in isolation.
//
// Snapshot semantics: `value_` is only mutated in on_pull_reply, which the
// engine delivers after all serve_pull calls of a round, so serve_pull
// naturally answers from round-start state.
#pragma once

#include <cstdint>

#include "sim/agent.hpp"
#include "sim/fault_model.hpp"
#include "sim/metrics.hpp"

namespace rfc::gossip {

class MinAggregationAgent final : public sim::Agent {
 public:
  MinAggregationAgent(std::uint64_t initial_value, std::uint64_t value_bits,
                      std::uint64_t rounds_budget) noexcept
      : value_(initial_value), value_bits_(value_bits),
        budget_(rounds_budget), rounds_left_(rounds_budget) {}

  std::uint64_t value() const noexcept { return value_; }

  sim::Action on_round(const sim::Context& ctx) override;
  sim::Payload serve_pull(const sim::Context& ctx,
                          sim::AgentId requester) override;
  void on_pull_reply(const sim::Context& ctx, sim::AgentId target,
                     const sim::Payload& reply) override;
  bool done() const override { return rounds_left_ == 0; }

  // All observations move only inside this agent's own callbacks, so the
  // engine may mirror them into its SoA caches (sim/agent.hpp).
  bool cacheable_observations() const noexcept override { return true; }

  /// One-stage pipeline: the fraction of the pull budget spent.
  double progress() const noexcept override {
    return budget_ == 0 ? 1.0
                        : static_cast<double>(budget_ - rounds_left_) /
                              static_cast<double>(budget_);
  }

 private:
  std::uint64_t value_;
  std::uint64_t value_bits_;
  std::uint64_t budget_;
  std::uint64_t rounds_left_;
};

struct MinAggConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;          ///< Fixed budget, e.g. ceil(γ ln n).
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  std::uint64_t value_bits = 64;
};

struct MinAggResult {
  bool converged = false;       ///< All active agents hold the global min.
  std::uint64_t global_min = 0; ///< Minimum over active agents' inputs.
  sim::Metrics metrics;
};

/// Runs min-aggregation with values drawn u.a.r. from [0, 2^63) and reports
/// whether the round budget sufficed for global convergence.
MinAggResult run_min_aggregation(const MinAggConfig& cfg);

}  // namespace rfc::gossip
