#include "gossip/rumor.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace rfc::gossip {

const std::vector<Mechanism>& all_mechanisms() {
  static const std::vector<Mechanism> kAll = {
      Mechanism::kPush, Mechanism::kPull, Mechanism::kPushPull};
  return kAll;
}

std::string to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kPush: return "push";
    case Mechanism::kPull: return "pull";
    case Mechanism::kPushPull: return "push-pull";
  }
  return "unknown";
}

sim::Action RumorAgent::on_round(const sim::Context& ctx) {
  const bool may_push =
      mech_ == Mechanism::kPush || mech_ == Mechanism::kPushPull;
  const bool may_pull =
      mech_ == Mechanism::kPull || mech_ == Mechanism::kPushPull;
  if (informed_ && may_push) {
    return sim::Action::push(ctx.random_peer(),
                             make_rumor_payload(1, rumor_bits_));
  }
  if (!informed_ && may_pull) {
    return sim::Action::pull(ctx.random_peer());
  }
  return sim::Action::idle();
}

sim::Payload RumorAgent::serve_pull(const sim::Context&, sim::AgentId) {
  if (!informed_) return {};  // Nothing to share yet.
  return make_rumor_payload(1, rumor_bits_);
}

void RumorAgent::on_pull_reply(const sim::Context&, sim::AgentId,
                               const sim::Payload& reply) {
  if (!reply.empty()) informed_ = true;
}

void RumorAgent::on_push(const sim::Context&, sim::AgentId,
                         const sim::Payload&) {
  informed_ = true;
}

std::unique_ptr<sim::Engine> build_spread_engine(const SpreadConfig& cfg) {
  auto engine = std::make_unique<sim::Engine>(
      sim::EngineConfig{cfg.n, cfg.seed, cfg.topology, cfg.scheduler.make(),
                        cfg.network.make()});
  rfc::support::Xoshiro256 fault_rng(
      rfc::support::derive_seed(cfg.seed, 0x0fau));
  engine->apply_fault_plan(
      sim::make_fault_plan(cfg.placement, cfg.n, cfg.num_faulty, fault_rng));

  // Place the sources on the first `initial_informed` *active* labels so a
  // fault plan cannot silence the rumor at birth.
  std::uint32_t sources = cfg.initial_informed;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    const bool informed = !engine->is_faulty(i) && sources > 0;
    if (informed) --sources;
    engine->set_agent(i, std::make_unique<RumorAgent>(cfg.mechanism, informed,
                                                      cfg.rumor_bits));
  }
  return engine;
}

SpreadResult run_rumor_spreading_on(sim::Engine& engine,
                                    const SpreadConfig& cfg) {
  SpreadResult result;
  const auto all_informed = [&engine] {
    for (std::uint32_t i = 0; i < engine.n(); ++i) {
      if (engine.is_faulty(i)) continue;
      if (!static_cast<const RumorAgent&>(engine.agent(i)).informed()) {
        return false;
      }
    }
    return true;
  };
  // Checking the global predicate is O(n); under activation-based policies
  // (O(1) per event) amortize it over ~n/4 events — completion time is
  // overstated by at most that granularity.  Round-based policies already
  // pay O(n) per event, so they check every round.
  const std::uint64_t check_every =
      cfg.check_every != 0 ? cfg.check_every
      : cfg.scheduler.activation_based()
          ? std::max<std::uint64_t>(1, cfg.n / 4)
          : 1;
  // cfg.budget overrides the event cap and/or adds a virtual-time horizon;
  // max_rounds stays as the default (and as the backstop of horizon-only
  // runs).
  sim::Budget budget = cfg.budget;
  if (budget.events == 0) budget.events = cfg.max_rounds;
  const auto exhausted = [&engine, &budget] {
    return budget.exhausted(engine.round(), engine.virtual_time());
  };
  // The all_done() exit matters for schedulers whose step() can stop
  // advancing time once every agent reports done() (e.g. adversarial):
  // without it a done-capable agent population could spin here forever.
  while (!exhausted() && !all_informed() && !engine.all_done()) {
    for (std::uint64_t i = 0; i < check_every && !exhausted(); ++i) {
      engine.step();
    }
  }
  result.complete = all_informed();
  result.rounds = engine.round();
  result.virtual_time = engine.virtual_time();
  result.metrics = engine.metrics();
  return result;
}

SpreadResult run_rumor_spreading(const SpreadConfig& cfg) {
  const std::unique_ptr<sim::Engine> engine = build_spread_engine(cfg);
  return run_rumor_spreading_on(*engine, cfg);
}

}  // namespace rfc::gossip
