// Message payloads exchanged over the simulated GOSSIP network.
//
// Payloads are immutable and shared: a push to k recipients or a reply served
// to many pullers shares one allocation.  Every payload reports its size in
// bits so the engine can account communication complexity exactly — this is
// how the O(log^2 n) message-size and O(n log^3 n) total-communication claims
// of the paper are measured rather than asserted.
#pragma once

#include <cstdint>
#include <memory>

namespace rfc::sim {

class Payload {
 public:
  virtual ~Payload() = default;

  /// Size of this payload on the wire, in bits, under the paper's encoding
  /// model (values in [m] cost ceil(log2 m) bits, labels cost ceil(log2 n)).
  virtual std::uint64_t bit_size() const noexcept = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

}  // namespace rfc::sim
