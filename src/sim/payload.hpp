// Message payloads exchanged over the simulated GOSSIP network.
//
// Payload is a *value* type: a tagged union of
//
//   * empty           — "no message" (a silent pull reply, an idle action);
//   * inline words    — up to three 64-bit words stored in place, covering
//     every fixed-size message of the shipped protocols (rumor bits, votes,
//     digests, election tuples) with zero heap traffic;
//   * boxed object    — one immutable, shared heap object for the
//     variable-size messages (certificates, vote intentions).  A push to k
//     recipients or a reply served to many pullers shares one allocation,
//     exactly like the former shared_ptr<const Payload> hierarchy, but the
//     handle itself travels by value;
//   * arena-boxed     — the same immutable object, bump-allocated in the
//     engine's per-round arena (support/arena.hpp) instead of make_shared.
//     Valid for one round only: EngineCore resets its arenas at the shard
//     barrier, so producers use it for genuinely transient messages (a
//     reply consumed in this round's delivery hook) and consumers must copy
//     the value out, never retain the payload across rounds.  Every shipped
//     delivery hook already copies; agents that cache a payload across
//     rounds (ProtocolAgent's intention/certificate caches) keep the
//     shared_ptr form.
//
// This replaces the old virtual `Payload` class: the simulation hot path
// (Action buffers, pull-reply scratch, per-message delivery) now moves
// 32-byte values instead of allocating one control block per message, which
// is what lifts the single-thread n ceiling of the engine.
//
// Layout.  The union is hand-rolled rather than a std::variant: the three
// inline words are the widest member (24 B), and the discriminator, the
// 16-bit tag, and the bit size pack into the trailing 8 bytes instead of
// variant's separately padded index — sizeof(Payload) is exactly 32 (was 48),
// enforced below.  The savings is pure bandwidth: the blocked-delivery
// queues, the Action buffers, and the transport scratch all stream payloads
// by value, so phases A/B/D move 1.5× less data per message.  The bit size
// is stored in 32 bits; the paper's messages are O(log^2 n) ≤ a few kilobits,
// so the public uint64_t API cannot overflow it (debug-asserted).
//
// Every payload reports its size in bits so the engine can account
// communication complexity exactly — this is how the O(log^2 n) message-size
// and O(n log^3 n) total-communication claims of the paper are measured
// rather than asserted.  The producing layer computes the bit size under the
// paper's encoding model (values in [m] cost ceil(log2 m) bits, labels
// ceil(log2 n)) and stamps it on the payload at construction.
//
// Tags.  A PayloadTag identifies the application-level message kind — what
// dynamic_cast over payload subclasses used to do, now a 16-bit compare.
// Each layer owns a tag range and, for boxed payloads, each tag maps to
// exactly one C++ type (the contract behind `boxed_as`):
//
//   0x00        untagged / reserved (sim)
//   0x10..0x1F  gossip   (gossip/rumor.hpp)
//   0x20..0x2F  core     (core/payloads.hpp)
//   0x30..0x3F  baseline (baseline/naive_election.cpp)
//   0xF0..      tests
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "support/arena.hpp"

namespace rfc::sim {

/// Application-level message-kind discriminator (see the tag-range table
/// above).  For boxed payloads a tag also pins the boxed C++ type.
using PayloadTag = std::uint16_t;

inline constexpr PayloadTag kUntaggedPayload = 0;

class Payload {
 public:
  /// Words an inline payload can carry (the widest shipped message, the
  /// naive-election (key, owner, color) tuple, needs three).
  static constexpr std::size_t kInlineWords = 3;

  /// Default-constructed payload is empty — the "no message" value.
  Payload() noexcept {}

  Payload(const Payload& other) { copy_from(other); }
  Payload(Payload&& other) noexcept { move_from(std::move(other)); }
  Payload& operator=(const Payload& other) {
    if (this != &other) {
      destroy();
      copy_from(other);
    }
    return *this;
  }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }
  ~Payload() { destroy(); }

  bool empty() const noexcept { return kind_ == Kind::kEmpty; }
  /// True when a message is present (mirrors the old `ptr != nullptr`).
  bool has_value() const noexcept { return !empty(); }
  explicit operator bool() const noexcept { return !empty(); }

  /// Size of this payload on the wire, in bits, under the paper's encoding
  /// model; 0 when empty.
  std::uint64_t bit_size() const noexcept { return bits_; }

  /// The message-kind tag; kUntaggedPayload when empty.
  PayloadTag tag() const noexcept { return tag_; }

  /// True when the payload stores inline words (word(i) is meaningful).
  bool is_inline() const noexcept { return kind_ == Kind::kInline; }

  /// True for a boxed payload whose object is bump-allocated in a round
  /// arena — it dies at the barrier reset and must not be retained across
  /// rounds (the network layer's delayed-push path deep-copies these).
  bool is_arena_boxed() const noexcept { return kind_ == Kind::kArenaBoxed; }

  // --- Inline payloads ----------------------------------------------------

  /// An allocation-free payload of up to kInlineWords 64-bit words.  Signed
  /// fields round-trip via static_cast (two's complement).
  static Payload inline_words(PayloadTag tag, std::uint64_t bits,
                              std::uint64_t w0, std::uint64_t w1 = 0,
                              std::uint64_t w2 = 0) noexcept {
    Payload p;
    p.data_.words = {w0, w1, w2};
    p.set_meta(Kind::kInline, tag, bits);
    return p;
  }

  /// Word `i` of an inline payload; 0 for boxed/empty payloads or i out of
  /// range.  Callers gate on tag(), which pins the word layout.
  std::uint64_t word(std::size_t i) const noexcept {
    return kind_ == Kind::kInline && i < kInlineWords ? data_.words[i] : 0;
  }

  // --- Boxed payloads -----------------------------------------------------

  /// Wraps an existing immutable shared object.  `tag` must be the unique
  /// tag registered for type T.
  template <typename T>
  static Payload boxed(PayloadTag tag, std::uint64_t bits,
                       std::shared_ptr<const T> object) noexcept {
    Payload p;
    ::new (&p.data_.object) std::shared_ptr<const void>(std::move(object));
    p.set_meta(Kind::kBoxed, tag, bits);
    return p;
  }

  /// Constructs the boxed object in place (one allocation, shared by every
  /// copy of the returned payload).
  template <typename T, typename... Args>
  static Payload make_boxed(PayloadTag tag, std::uint64_t bits,
                            Args&&... args) {
    return boxed<T>(tag, bits,
                    std::make_shared<const T>(std::forward<Args>(args)...));
  }

  /// Constructs the boxed object in `arena` (pointer bump, no control
  /// block; the arena owns destruction at its round-barrier reset).  Falls
  /// back to make_boxed when `arena` is null — producers route through the
  /// Context's arena unconditionally and callers outside an engine round
  /// (tests, the transport driver) simply get the shared form.
  template <typename T, typename... Args>
  static Payload make_boxed_in(rfc::support::Arena* arena, PayloadTag tag,
                               std::uint64_t bits, Args&&... args) {
    if (arena == nullptr) {
      return make_boxed<T>(tag, bits, std::forward<Args>(args)...);
    }
    Payload p;
    p.data_.arena_object = arena->create<T>(std::forward<Args>(args)...);
    p.set_meta(Kind::kArenaBoxed, tag, bits);
    return p;
  }

  /// The boxed object, or null unless this payload is boxed AND carries
  /// `expected_tag`.  Replaces dynamic_cast over payload subclasses; safe
  /// because a tag maps to exactly one boxed type (see header comment).
  template <typename T>
  const T* boxed_as(PayloadTag expected_tag) const noexcept {
    if (tag_ != expected_tag) return nullptr;
    if (kind_ == Kind::kBoxed) {
      return static_cast<const T*>(data_.object.get());
    }
    if (kind_ == Kind::kArenaBoxed) {
      return static_cast<const T*>(data_.arena_object);
    }
    return nullptr;
  }

 private:
  enum class Kind : std::uint8_t { kEmpty, kInline, kBoxed, kArenaBoxed };

  /// The value storage.  Only `object` has a non-trivial lifetime; it is
  /// placement-constructed by the boxed paths and destroyed by destroy().
  union Data {
    std::array<std::uint64_t, kInlineWords> words;  // 24 B, the widest.
    std::shared_ptr<const void> object;             // kBoxed only.
    const void* arena_object;  ///< Arena-owned; dies at the barrier reset.
    Data() noexcept : arena_object(nullptr) {}
    ~Data() {}  // The discriminator lives outside; Payload destroys.
  };

  void set_meta(Kind kind, PayloadTag tag, std::uint64_t bits) noexcept {
    assert(bits <= 0xFFFFFFFFull);  // O(log^2 n) bits in practice.
    kind_ = kind;
    tag_ = tag;
    bits_ = static_cast<std::uint32_t>(bits);
  }

  void destroy() noexcept {
    if (kind_ == Kind::kBoxed) data_.object.~shared_ptr();
  }

  /// Precondition: *this holds no live shared_ptr (fresh or just destroyed).
  void copy_from(const Payload& other) {
    switch (other.kind_) {
      case Kind::kInline:
        data_.words = other.data_.words;
        break;
      case Kind::kBoxed:
        ::new (&data_.object) std::shared_ptr<const void>(other.data_.object);
        break;
      case Kind::kArenaBoxed:
        data_.arena_object = other.data_.arena_object;
        break;
      case Kind::kEmpty:
        break;
    }
    kind_ = other.kind_;
    tag_ = other.tag_;
    bits_ = other.bits_;
  }

  /// Precondition as copy_from.  The source is left *empty* (stronger than
  /// variant's valid-but-unspecified): no shipped code reads a moved-from
  /// payload, and empty is the cheapest state to leave behind.
  void move_from(Payload&& other) noexcept {
    switch (other.kind_) {
      case Kind::kInline:
        data_.words = other.data_.words;
        break;
      case Kind::kBoxed:
        ::new (&data_.object)
            std::shared_ptr<const void>(std::move(other.data_.object));
        other.data_.object.~shared_ptr();
        break;
      case Kind::kArenaBoxed:
        data_.arena_object = other.data_.arena_object;
        break;
      case Kind::kEmpty:
        break;
    }
    kind_ = other.kind_;
    tag_ = other.tag_;
    bits_ = other.bits_;
    other.kind_ = Kind::kEmpty;
    other.tag_ = kUntaggedPayload;
    other.bits_ = 0;
  }

  Data data_;                           // 24 B
  std::uint32_t bits_ = 0;              // wire size in bits (see bit_size()).
  PayloadTag tag_ = kUntaggedPayload;   // 2 B
  Kind kind_ = Kind::kEmpty;            // 1 B (+1 padding)
};

// The whole point of the hand-rolled union: a payload is one half cache
// line, and the delivery queues stream exactly 40-byte push entries.
static_assert(sizeof(Payload) <= 32, "Payload must stay within 32 bytes");

}  // namespace rfc::sim
