// Message payloads exchanged over the simulated GOSSIP network.
//
// Payload is a *value* type: a tagged union of
//
//   * empty           — "no message" (a silent pull reply, an idle action);
//   * inline words    — up to three 64-bit words stored in place, covering
//     every fixed-size message of the shipped protocols (rumor bits, votes,
//     digests, election tuples) with zero heap traffic;
//   * boxed object    — one immutable, shared heap object for the
//     variable-size messages (certificates, vote intentions).  A push to k
//     recipients or a reply served to many pullers shares one allocation,
//     exactly like the former shared_ptr<const Payload> hierarchy, but the
//     handle itself travels by value;
//   * arena-boxed     — the same immutable object, bump-allocated in the
//     engine's per-round arena (support/arena.hpp) instead of make_shared.
//     Valid for one round only: EngineCore resets its arenas at the shard
//     barrier, so producers use it for genuinely transient messages (a
//     reply consumed in this round's delivery hook) and consumers must copy
//     the value out, never retain the payload across rounds.  Every shipped
//     delivery hook already copies; agents that cache a payload across
//     rounds (ProtocolAgent's intention/certificate caches) keep the
//     shared_ptr form.
//
// This replaces the old virtual `Payload` class: the simulation hot path
// (Action buffers, pull-reply scratch, per-message delivery) now moves
// 48-byte values instead of allocating one control block per message, which
// is what lifts the single-thread n ceiling of the engine.
//
// Every payload reports its size in bits so the engine can account
// communication complexity exactly — this is how the O(log^2 n) message-size
// and O(n log^3 n) total-communication claims of the paper are measured
// rather than asserted.  The producing layer computes the bit size under the
// paper's encoding model (values in [m] cost ceil(log2 m) bits, labels
// ceil(log2 n)) and stamps it on the payload at construction.
//
// Tags.  A PayloadTag identifies the application-level message kind — what
// dynamic_cast over payload subclasses used to do, now a 16-bit compare.
// Each layer owns a tag range and, for boxed payloads, each tag maps to
// exactly one C++ type (the contract behind `boxed_as`):
//
//   0x00        untagged / reserved (sim)
//   0x10..0x1F  gossip   (gossip/rumor.hpp)
//   0x20..0x2F  core     (core/payloads.hpp)
//   0x30..0x3F  baseline (baseline/naive_election.cpp)
//   0xF0..      tests
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <variant>

#include "support/arena.hpp"

namespace rfc::sim {

/// Application-level message-kind discriminator (see the tag-range table
/// above).  For boxed payloads a tag also pins the boxed C++ type.
using PayloadTag = std::uint16_t;

inline constexpr PayloadTag kUntaggedPayload = 0;

class Payload {
 public:
  /// Words an inline payload can carry (the widest shipped message, the
  /// naive-election (key, owner, color) tuple, needs three).
  static constexpr std::size_t kInlineWords = 3;

  /// Default-constructed payload is empty — the "no message" value.
  Payload() = default;

  bool empty() const noexcept {
    return std::holds_alternative<std::monostate>(data_);
  }
  /// True when a message is present (mirrors the old `ptr != nullptr`).
  bool has_value() const noexcept { return !empty(); }
  explicit operator bool() const noexcept { return !empty(); }

  /// Size of this payload on the wire, in bits, under the paper's encoding
  /// model; 0 when empty.
  std::uint64_t bit_size() const noexcept {
    if (const Inline* in = std::get_if<Inline>(&data_)) return in->bits;
    if (const Boxed* bx = std::get_if<Boxed>(&data_)) return bx->bits;
    if (const ArenaBoxed* ab = std::get_if<ArenaBoxed>(&data_)) {
      return ab->bits;
    }
    return 0;
  }

  /// The message-kind tag; kUntaggedPayload when empty.
  PayloadTag tag() const noexcept {
    if (const Inline* in = std::get_if<Inline>(&data_)) return in->tag;
    if (const Boxed* bx = std::get_if<Boxed>(&data_)) return bx->tag;
    if (const ArenaBoxed* ab = std::get_if<ArenaBoxed>(&data_)) {
      return ab->tag;
    }
    return kUntaggedPayload;
  }

  // --- Inline payloads ----------------------------------------------------

  /// An allocation-free payload of up to kInlineWords 64-bit words.  Signed
  /// fields round-trip via static_cast (two's complement).
  static Payload inline_words(PayloadTag tag, std::uint64_t bits,
                              std::uint64_t w0, std::uint64_t w1 = 0,
                              std::uint64_t w2 = 0) noexcept {
    Payload p;
    p.data_.emplace<Inline>(Inline{{w0, w1, w2}, bits, tag});
    return p;
  }

  /// Word `i` of an inline payload; 0 for boxed/empty payloads or i out of
  /// range.  Callers gate on tag(), which pins the word layout.
  std::uint64_t word(std::size_t i) const noexcept {
    const Inline* in = std::get_if<Inline>(&data_);
    return in != nullptr && i < kInlineWords ? in->words[i] : 0;
  }

  // --- Boxed payloads -----------------------------------------------------

  /// Wraps an existing immutable shared object.  `tag` must be the unique
  /// tag registered for type T.
  template <typename T>
  static Payload boxed(PayloadTag tag, std::uint64_t bits,
                       std::shared_ptr<const T> object) noexcept {
    Payload p;
    p.data_.emplace<Boxed>(Boxed{std::move(object), bits, tag});
    return p;
  }

  /// Constructs the boxed object in place (one allocation, shared by every
  /// copy of the returned payload).
  template <typename T, typename... Args>
  static Payload make_boxed(PayloadTag tag, std::uint64_t bits,
                            Args&&... args) {
    return boxed<T>(tag, bits,
                    std::make_shared<const T>(std::forward<Args>(args)...));
  }

  /// Constructs the boxed object in `arena` (pointer bump, no control
  /// block; the arena owns destruction at its round-barrier reset).  Falls
  /// back to make_boxed when `arena` is null — producers route through the
  /// Context's arena unconditionally and callers outside an engine round
  /// (tests, the transport driver) simply get the shared form.
  template <typename T, typename... Args>
  static Payload make_boxed_in(rfc::support::Arena* arena, PayloadTag tag,
                               std::uint64_t bits, Args&&... args) {
    if (arena == nullptr) {
      return make_boxed<T>(tag, bits, std::forward<Args>(args)...);
    }
    Payload p;
    p.data_.emplace<ArenaBoxed>(
        ArenaBoxed{arena->create<T>(std::forward<Args>(args)...), bits, tag});
    return p;
  }

  /// The boxed object, or null unless this payload is boxed AND carries
  /// `expected_tag`.  Replaces dynamic_cast over payload subclasses; safe
  /// because a tag maps to exactly one boxed type (see header comment).
  template <typename T>
  const T* boxed_as(PayloadTag expected_tag) const noexcept {
    if (const Boxed* bx = std::get_if<Boxed>(&data_)) {
      return bx->tag == expected_tag ? static_cast<const T*>(bx->object.get())
                                     : nullptr;
    }
    if (const ArenaBoxed* ab = std::get_if<ArenaBoxed>(&data_)) {
      return ab->tag == expected_tag ? static_cast<const T*>(ab->object)
                                     : nullptr;
    }
    return nullptr;
  }

 private:
  struct Inline {
    std::array<std::uint64_t, kInlineWords> words{};
    std::uint64_t bits = 0;
    PayloadTag tag = kUntaggedPayload;
  };
  struct Boxed {
    std::shared_ptr<const void> object;
    std::uint64_t bits = 0;
    PayloadTag tag = kUntaggedPayload;
  };
  struct ArenaBoxed {
    const void* object;  ///< Arena-owned; valid until the round-barrier reset.
    std::uint64_t bits = 0;
    PayloadTag tag = kUntaggedPayload;
  };

  std::variant<std::monostate, Inline, Boxed, ArenaBoxed> data_;
};

}  // namespace rfc::sim
