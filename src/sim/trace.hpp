// Per-round execution tracing.
//
// A TraceRecorder attaches to the engine's round observer and snapshots the
// metric deltas of every round, giving tests and debugging tools a
// round-by-round view of the communication pattern (e.g. "pushes occur only
// during Voting and Coherence") without touching the agents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace rfc::sim {

struct RoundTrace {
  std::uint64_t round = 0;
  std::uint64_t pushes = 0;
  std::uint64_t pull_requests = 0;
  std::uint64_t pull_replies = 0;
  std::uint64_t bits = 0;
  std::uint64_t active_links = 0;
};

class TraceRecorder {
 public:
  /// Installs this recorder as the engine's round observer.  The recorder
  /// must outlive the engine's run.
  void attach(Engine& engine);

  const std::vector<RoundTrace>& rounds() const noexcept { return rounds_; }

  /// Sum of a field over a half-open round interval [begin, end).
  std::uint64_t total_pushes(std::uint64_t begin, std::uint64_t end) const;
  std::uint64_t total_pulls(std::uint64_t begin, std::uint64_t end) const;
  std::uint64_t total_bits(std::uint64_t begin, std::uint64_t end) const;

  /// One line per round: "r12: push=0 pull=64 bits=12345".
  std::string render() const;

 private:
  Metrics last_;
  std::vector<RoundTrace> rounds_;
};

}  // namespace rfc::sim
