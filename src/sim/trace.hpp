// Per-round execution tracing.
//
// A TraceRecorder attaches to the engine's round observer and snapshots the
// metric deltas of every round, giving tests and debugging tools a
// round-by-round view of the communication pattern (e.g. "pushes occur only
// during Voting and Coherence") without touching the agents.
//
// Default mode keeps every round — O(rounds) memory, fine for protocol runs
// whose round count is polylogarithmic.  Million-agent spreads and long
// continuous-time runs attach with TraceOptions instead: `sample_every`
// thins the stream (keep rounds 0, k, 2k, ...), `max_rounds` bounds the
// retained window (oldest sampled entries are evicted first), and
// observed_rounds()/dropped() report what the recorder saw versus kept, so
// a bounded trace never silently reads as a complete one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace rfc::sim {

struct RoundTrace {
  std::uint64_t round = 0;
  std::uint64_t pushes = 0;
  std::uint64_t pull_requests = 0;
  std::uint64_t pull_replies = 0;
  std::uint64_t bits = 0;
  std::uint64_t active_links = 0;
};

/// Streaming controls for TraceRecorder::attach.  The defaults reproduce
/// the classic recorder: every round kept, unbounded.
struct TraceOptions {
  /// Keep one round in every `sample_every` (rounds with
  /// round % sample_every == 0).  Must be positive.
  std::uint64_t sample_every = 1;
  /// Upper bound on retained entries; 0 = unbounded.  When exceeded, the
  /// oldest retained entries are evicted (amortized O(1) per round), so the
  /// recorder holds the most recent `max_rounds` sampled entries (up to
  /// 2x that transiently, trimmed on read).
  std::uint64_t max_rounds = 0;
};

class TraceRecorder {
 public:
  /// Installs this recorder as the engine's round observer.  The recorder
  /// must outlive the engine's run.  `options` selects the streaming mode;
  /// the default keeps every round.
  void attach(Engine& engine, TraceOptions options = {});

  /// Retained round entries, oldest first (a suffix of the sampled stream
  /// when max_rounds is set).
  const std::vector<RoundTrace>& rounds() const;

  /// Rounds the recorder observed (independent of sampling/eviction).
  std::uint64_t observed_rounds() const noexcept { return observed_; }
  /// Observed rounds not retained (skipped by sampling or evicted).
  std::uint64_t dropped() const noexcept {
    return observed_ - static_cast<std::uint64_t>(rounds().size());
  }

  /// Sum of a field over a half-open round interval [begin, end), over the
  /// *retained* entries only (exact in the default all-rounds mode).
  std::uint64_t total_pushes(std::uint64_t begin, std::uint64_t end) const;
  std::uint64_t total_pulls(std::uint64_t begin, std::uint64_t end) const;
  std::uint64_t total_bits(std::uint64_t begin, std::uint64_t end) const;

  /// One line per retained round: "r12: push=0 pull=64 bits=12345".
  std::string render() const;

 private:
  void trim() const;  ///< Drops evictable prefix beyond max_rounds.

  TraceOptions options_;
  Metrics last_;
  std::uint64_t observed_ = 0;
  mutable std::vector<RoundTrace> rounds_;
};

}  // namespace rfc::sim
