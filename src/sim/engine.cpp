#include "sim/engine.hpp"

namespace rfc::sim {

Engine::Engine(EngineConfig cfg)
    : core_(cfg.n, cfg.seed, std::move(cfg.topology)),
      view_(core_),
      scheduler_(cfg.scheduler != nullptr ? std::move(cfg.scheduler)
                                          : make_synchronous_scheduler()) {
  if (cfg.network != nullptr) core_.set_network(std::move(cfg.network));
  scheduler_->attach(core_);
}

void Engine::step() {
  // Start-up (agent checks, RNG derivation, on_start) is the scheduler's
  // responsibility via the execution primitives: the sharded executor
  // prefetches RNG blocks in parallel *before* the agents start, which an
  // eager ensure_started here would defeat.
  const std::uint64_t before = core_.time();
  core_.advance_virtual_time(scheduler_->step(core_, view_));
  // The observer sees *events*: a step on which the scheduler had nothing
  // left to schedule (no execution primitive ran, so the event clock did
  // not move) is not one, and reporting it would break the events ==
  // trace-length contract of the run loops.
  if (observer_ && core_.time() != before) observer_(*this);
}

std::uint64_t Engine::run(std::uint64_t max_time) {
  // run(0) means "no events", not Budget's "no event cap".
  if (max_time == 0) return core_.time();
  return run(Budget::of_events(max_time));
}

std::uint64_t Engine::run(const Budget& budget) {
  if (scheduler_->self_terminating()) {
    // The policy tracks its own pending-event set: loop on its O(1)
    // exhaustion report instead of the O(n) all-done scan, so the per-event
    // run-loop cost is the scheduler's step cost alone.  The event-clock
    // guard catches the drain corner — stale heap entries for agents whose
    // done() flipped off-turn (e.g. via a coalition blackboard) can leave
    // exhausted() false with nothing actually wakeable.
    while (!budget.exhausted(core_.time(), core_.virtual_time()) &&
           !scheduler_->exhausted()) {
      const std::uint64_t before = core_.time();
      step();
      if (core_.time() == before) break;  // Drained: no event executed.
    }
    return core_.time();
  }
  while (!budget.exhausted(core_.time(), core_.virtual_time()) &&
         !all_done()) {
    step();
  }
  return core_.time();
}

}  // namespace rfc::sim
