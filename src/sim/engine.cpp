#include "sim/engine.hpp"

namespace rfc::sim {

Engine::Engine(EngineConfig cfg)
    : core_(cfg.n, cfg.seed, std::move(cfg.topology)),
      scheduler_(cfg.scheduler != nullptr ? std::move(cfg.scheduler)
                                          : make_synchronous_scheduler()) {
  scheduler_->attach(core_);
}

void Engine::step() {
  core_.ensure_started();
  core_.advance_virtual_time(scheduler_->step(core_));
  if (observer_) observer_(*this);
}

std::uint64_t Engine::run(std::uint64_t max_time) {
  while (core_.time() < max_time && !all_done()) step();
  return core_.time();
}

}  // namespace rfc::sim
