#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

#include "support/math_util.hpp"

namespace rfc::sim {

Engine::Engine(EngineConfig cfg) : cfg_(cfg) {
  if (cfg_.n == 0) throw std::invalid_argument("Engine: n must be positive");
  agents_.resize(cfg_.n);
  faulty_.assign(cfg_.n, false);
  rngs_.reserve(cfg_.n);
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    rngs_.emplace_back(rfc::support::derive_seed(cfg_.seed, i));
  }
  actions_.resize(cfg_.n);
  pull_replies_.resize(cfg_.n);
}

void Engine::set_agent(AgentId id, std::unique_ptr<Agent> agent) {
  agents_.at(id) = std::move(agent);
}

void Engine::set_faulty(AgentId id, bool faulty) {
  if (started_) {
    throw std::logic_error("Engine: fault plan is permanent; set before run");
  }
  if (faulty_.at(id) != faulty) {
    faulty_[id] = faulty;
    num_faulty_ += faulty ? 1u : -1u;
  }
}

void Engine::apply_fault_plan(const std::vector<bool>& plan) {
  if (plan.size() != cfg_.n) {
    throw std::invalid_argument("Engine: fault plan size mismatch");
  }
  for (std::uint32_t i = 0; i < cfg_.n; ++i) set_faulty(i, plan[i]);
}

std::uint64_t Engine::pull_request_bits() const noexcept {
  return rfc::support::bit_width_for_domain(cfg_.n);
}

Context Engine::make_context(AgentId id) noexcept {
  Context ctx;
  ctx.self = id;
  ctx.n = cfg_.n;
  ctx.round = round_;
  ctx.rng = &rngs_[id];
  ctx.topology = cfg_.topology.get();
  return ctx;
}

void Engine::step() {
  if (!started_) {
    for (std::uint32_t i = 0; i < cfg_.n; ++i) {
      if (agents_[i] == nullptr) {
        throw std::logic_error("Engine: agent " + std::to_string(i) +
                               " not installed");
      }
      if (!faulty_[i]) {
        const Context ctx = make_context(i);
        agents_[i]->on_start(ctx);
      }
    }
    started_ = true;
  }

  // Phase A: collect each active agent's single active operation.
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    if (faulty_[i] || agents_[i]->done()) {
      actions_[i] = Action::idle();
      continue;
    }
    actions_[i] = agents_[i]->on_round(make_context(i));
    if (actions_[i].kind != ActionKind::kIdle) {
      assert(actions_[i].target < cfg_.n);
      ++metrics_.active_links;
    }
  }

  // Phase B: serve all pull requests from round-start state.
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    pull_replies_[i] = nullptr;
    const Action& a = actions_[i];
    if (a.kind != ActionKind::kPull) continue;
    ++metrics_.pull_requests;
    metrics_.note_message(pull_request_bits());
    const AgentId v = a.target;
    if (faulty_[v]) continue;  // Silence: the puller observes no reply.
    PayloadPtr reply = agents_[v]->serve_pull(make_context(v), i);
    if (reply != nullptr) {
      ++metrics_.pull_replies;
      metrics_.note_message(reply->bit_size());
      pull_replies_[i] = std::move(reply);
    }
  }

  // Phase C: deliver pull replies in puller-label order.
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    const Action& a = actions_[i];
    if (a.kind != ActionKind::kPull) continue;
    agents_[i]->on_pull_reply(make_context(i), a.target, pull_replies_[i]);
    pull_replies_[i] = nullptr;
  }

  // Phase D: deliver pushes in sender-label order.  A push to a faulty node
  // still travels (and is charged), but is dropped at the destination.
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    const Action& a = actions_[i];
    if (a.kind != ActionKind::kPush) continue;
    ++metrics_.pushes;
    const std::uint64_t bits =
        a.payload != nullptr ? a.payload->bit_size() : 0;
    metrics_.note_message(bits);
    const AgentId v = a.target;
    if (!faulty_[v]) {
      agents_[v]->on_push(make_context(v), i, a.payload);
    }
  }

  ++round_;
  metrics_.rounds = round_;
  if (observer_) observer_(*this);
}

bool Engine::all_done() const {
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    if (!faulty_[i] && !agents_[i]->done()) return false;
  }
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_rounds) {
  while (round_ < max_rounds && !all_done()) step();
  return round_;
}

}  // namespace rfc::sim
