#include "sim/engine.hpp"

namespace rfc::sim {

Engine::Engine(EngineConfig cfg)
    : core_(cfg.n, cfg.seed, std::move(cfg.topology)),
      view_(core_),
      scheduler_(cfg.scheduler != nullptr ? std::move(cfg.scheduler)
                                          : make_synchronous_scheduler()) {
  scheduler_->attach(core_);
}

void Engine::step() {
  // Start-up (agent checks, RNG derivation, on_start) is the scheduler's
  // responsibility via the execution primitives: the sharded executor
  // prefetches RNG blocks in parallel *before* the agents start, which an
  // eager ensure_started here would defeat.
  core_.advance_virtual_time(scheduler_->step(core_, view_));
  if (observer_) observer_(*this);
}

std::uint64_t Engine::run(std::uint64_t max_time) {
  // run(0) means "no events", not Budget's "no event cap".
  if (max_time == 0) return core_.time();
  return run(Budget::of_events(max_time));
}

std::uint64_t Engine::run(const Budget& budget) {
  while (!budget.exhausted(core_.time(), core_.virtual_time()) &&
         !all_done()) {
    step();
  }
  return core_.time();
}

}  // namespace rfc::sim
