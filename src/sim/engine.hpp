// The synchronous GOSSIP round engine.
//
// Executes the model of Section 2: per round, every non-faulty agent performs
// at most one active push or pull; pulls are answered within the round from
// round-start state; any number of passive receptions is allowed.  The engine
// is single-threaded and fully deterministic given (config, agents, fault
// plan): agent callbacks are invoked in label order and each agent draws from
// its own SplitMix-derived RNG stream, so a master seed pins down the entire
// execution trace.  Monte-Carlo parallelism lives one level up
// (analysis::MonteCarlo) and runs independent engines on independent seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/agent.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"

namespace rfc::sim {

struct EngineConfig {
  EngineConfig() = default;
  EngineConfig(std::uint32_t n_, std::uint64_t seed_ = 1,
               TopologyPtr topology_ = nullptr)
      : n(n_), seed(seed_), topology(std::move(topology_)) {}

  std::uint32_t n = 0;      ///< Number of nodes.
  std::uint64_t seed = 1;   ///< Master seed; derives every agent stream.
  /// Interconnect; null means the complete graph on [n] (the paper's model).
  TopologyPtr topology;
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg);

  /// Installs the agent for label `id`.  All labels must be populated before
  /// `run` / `step`.
  void set_agent(AgentId id, std::unique_ptr<Agent> agent);

  /// Marks `id` permanently faulty (must be called before the first round).
  void set_faulty(AgentId id, bool faulty = true);

  /// Applies a full fault plan (see sim/fault_model.hpp).
  void apply_fault_plan(const std::vector<bool>& plan);

  bool is_faulty(AgentId id) const { return faulty_.at(id); }
  std::uint32_t num_faulty() const noexcept { return num_faulty_; }
  std::uint32_t num_active() const noexcept { return cfg_.n - num_faulty_; }

  /// Executes one synchronous round.
  void step();

  /// Runs until every non-faulty agent reports done() or `max_rounds`
  /// rounds have executed; returns the number of rounds executed in total.
  std::uint64_t run(std::uint64_t max_rounds);

  /// True when every non-faulty agent reports done().
  bool all_done() const;

  Agent& agent(AgentId id) { return *agents_.at(id); }
  const Agent& agent(AgentId id) const { return *agents_.at(id); }

  std::uint32_t n() const noexcept { return cfg_.n; }
  std::uint64_t round() const noexcept { return round_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  /// Observer invoked after every round (for traces and tests).
  using RoundObserver = std::function<void(const Engine&)>;
  void set_round_observer(RoundObserver obs) { observer_ = std::move(obs); }

  /// Bits charged for a pull *request* (the "send me your X" control
  /// message): one peer label, per the paper's accounting.
  std::uint64_t pull_request_bits() const noexcept;

 private:
  Context make_context(AgentId id) noexcept;

  EngineConfig cfg_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<bool> faulty_;
  std::vector<rfc::support::Xoshiro256> rngs_;
  std::uint32_t num_faulty_ = 0;
  std::uint64_t round_ = 0;
  bool started_ = false;
  Metrics metrics_;
  RoundObserver observer_;

  // Scratch buffers reused across rounds to avoid per-round allocation.
  std::vector<Action> actions_;
  std::vector<PayloadPtr> pull_replies_;
};

}  // namespace rfc::sim
