// The unified GOSSIP simulation engine.
//
// Engine binds the execution substrate (sim/engine_core.hpp — agents,
// faults, RNG streams, delivery, accounting) to a pluggable activation
// policy (sim/scheduler.hpp).  With the default SynchronousScheduler it
// executes the model of Section 2 of the paper: per round, every non-faulty
// agent performs at most one active push or pull; pulls are answered within
// the round from round-start state; any number of passive receptions is
// allowed.  Other schedulers reinterpret step() — one sequential activation
// for SequentialScheduler, one partial round for PartialAsyncScheduler, and
// so on — over the same agents, unchanged.
//
// The engine is single-threaded and fully deterministic given (config,
// agents, fault plan): agent callbacks are invoked in label order and each
// agent draws from its own SplitMix-derived RNG stream, so a master seed
// pins down the entire execution trace under every scheduler.  Monte-Carlo
// parallelism lives one level up (analysis::MonteCarlo) and runs
// independent engines on independent seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/agent.hpp"
#include "sim/budget.hpp"
#include "sim/engine_core.hpp"
#include "sim/engine_view.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"

namespace rfc::sim {

struct EngineConfig {
  EngineConfig() = default;
  EngineConfig(std::uint32_t n_, std::uint64_t seed_ = 1,
               TopologyPtr topology_ = nullptr,
               SchedulerPtr scheduler_ = nullptr,
               NetworkModelPtr network_ = nullptr)
      : n(n_),
        seed(seed_),
        topology(std::move(topology_)),
        scheduler(std::move(scheduler_)),
        network(std::move(network_)) {}

  std::uint32_t n = 0;      ///< Number of nodes.
  std::uint64_t seed = 1;   ///< Master seed; derives every agent stream.
  /// Interconnect; null means the complete graph on [n] (the paper's model).
  TopologyPtr topology;
  /// Activation policy; null means SynchronousScheduler (the paper's model).
  SchedulerPtr scheduler;
  /// Message-layer adversary & churn (sim/network.hpp); null means the
  /// reliable network (bit-identical to an all-zero-rate model).
  NetworkModelPtr network;
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg);

  /// Installs the agent for label `id`.  All labels must be populated before
  /// `run` / `step`.
  void set_agent(AgentId id, std::unique_ptr<Agent> agent) {
    core_.set_agent(id, std::move(agent));
  }

  /// Marks `id` permanently faulty (must be called before the first round).
  void set_faulty(AgentId id, bool faulty = true) {
    core_.set_faulty(id, faulty);
  }

  /// Applies a full fault plan (see sim/fault_model.hpp).
  void apply_fault_plan(const std::vector<bool>& plan) {
    core_.apply_fault_plan(plan);
  }

  bool is_faulty(AgentId id) const { return core_.is_faulty(id); }
  std::uint32_t num_faulty() const noexcept { return core_.num_faulty(); }
  std::uint32_t num_active() const noexcept { return core_.num_active(); }

  /// Executes one scheduling event under the installed scheduler — a
  /// synchronous round, a sequential activation, a partial round, a Poisson
  /// wake-up — and accrues its virtual-time increment.
  void step();

  /// Runs until every non-faulty agent reports done() or `max_time` events
  /// (rounds or steps, per the scheduler) have executed; returns the number
  /// of events executed in total.
  std::uint64_t run(std::uint64_t max_time);

  /// Runs until every non-faulty agent reports done() or the budget is
  /// exhausted (events and/or virtual-time horizon, whichever trips first);
  /// returns the number of events executed in total.  Self-terminating
  /// schedulers (Scheduler::self_terminating(), e.g. the event-driven
  /// Poisson path) are looped on their O(1) exhausted() report instead of
  /// the O(n) all-done scan, so their per-event run cost stays O(log n).
  std::uint64_t run(const Budget& budget);

  /// Runs until virtual_time() reaches `virtual_horizon` (or all agents are
  /// done) — the continuous-time run loop: horizons are expressed in model
  /// time, so the same horizon means the same thing under every scheduler.
  /// No step starts at or past the horizon, so the overshoot is at most one
  /// step increment.  Requires a scheduler with positive time increments
  /// (all shipped policies); returns the number of events executed.
  std::uint64_t run_until(double virtual_horizon) {
    return run(Budget::until(virtual_horizon));
  }

  /// True when every non-faulty agent reports done().
  bool all_done() const { return core_.all_done(); }

  Agent& agent(AgentId id) { return core_.agent(id); }
  const Agent& agent(AgentId id) const { return core_.agent(id); }

  std::uint32_t n() const noexcept { return core_.n(); }
  /// Elapsed simulated time.  Under round-based schedulers this counts
  /// rounds; under sequential ones it counts activations.
  std::uint64_t round() const noexcept { return core_.time(); }
  /// Alias of round() for sequential-model call sites.
  std::uint64_t steps() const noexcept { return core_.time(); }
  /// Elapsed virtual time: equals round()/steps() under discrete policies,
  /// the continuous Gillespie clock under PoissonClockScheduler.
  double virtual_time() const noexcept { return core_.virtual_time(); }
  const Metrics& metrics() const noexcept { return core_.metrics(); }

  const Scheduler& scheduler() const noexcept { return *scheduler_; }

  /// The read-only observation window handed to the scheduler each step —
  /// exposed for tests and external adaptive drivers.
  const EngineView& view() const noexcept { return view_; }

  /// Observer invoked after every step (for traces and tests).
  using RoundObserver = std::function<void(const Engine&)>;
  void set_round_observer(RoundObserver obs) { observer_ = std::move(obs); }

  /// Bits charged for a pull *request* (the "send me your X" control
  /// message): one peer label, per the paper's accounting.
  std::uint64_t pull_request_bits() const noexcept {
    return core_.pull_request_bits();
  }

  /// Tunes the synchronous round's cache-blocked delivery path (see
  /// EngineCore::set_blocked_delivery); bit-identical to the default path
  /// by construction, so this only moves the n threshold / block size.
  void set_blocked_delivery(std::uint32_t min_n, std::uint32_t block_labels) {
    core_.set_blocked_delivery(min_n, block_labels);
  }

 private:
  EngineCore core_;
  EngineView view_;  ///< Read-only window over core_, reused every step.
  SchedulerPtr scheduler_;
  RoundObserver observer_;
};

}  // namespace rfc::sim
