// Run budgets: how long a simulation is allowed to run, as a value.
//
// Engine::run historically capped *discrete events* (rounds under
// round-based schedulers, activations under sequential ones), which makes a
// horizon policy-dependent: the same experiment needs ~n× more events under
// a Poisson clock than under lock-step rounds.  Continuous-time experiments
// instead want horizons in *model time* — the virtual-time axis the
// scheduler reports through Scheduler::step() — where "run for 10 time
// units" means the same thing under every policy.  Budget carries either
// cap (or both; whichever trips first ends the run) and is threaded by
// value through every run entry point's config
// (gossip::SpreadConfig, core::RunConfig, core::AsyncRunConfig,
// baseline::NaiveElectionConfig), so one `--horizon=` flag works
// everywhere.
//
// A default-constructed Budget is unbounded; entry points then fall back to
// their own policy-scaled event caps.  When only a virtual-time horizon is
// given, entry points keep their default event cap as a termination
// backstop (a scheduler returning zero-length increments could otherwise
// spin forever short of the horizon).
#pragma once

#include <cstdint>

namespace rfc::sim {

struct Budget {
  /// Cap on discrete scheduling events; 0 = no event cap.
  std::uint64_t events = 0;
  /// Horizon in virtual time (the scheduler's clock); <= 0 = no horizon.
  /// The run stops *before* the first event that would start at or past the
  /// horizon, so Metrics::virtual_time overshoots it by at most one step
  /// increment.
  double virtual_horizon = 0.0;

  static constexpr Budget of_events(std::uint64_t max_events) noexcept {
    return {max_events, 0.0};
  }
  static constexpr Budget until(double horizon) noexcept {
    return {0, horizon};
  }

  constexpr bool unbounded() const noexcept {
    return events == 0 && !(virtual_horizon > 0.0);
  }

  /// True once either cap is reached at (elapsed_events, virtual_time).
  constexpr bool exhausted(std::uint64_t elapsed_events,
                           double virtual_time) const noexcept {
    return (events != 0 && elapsed_events >= events) ||
           (virtual_horizon > 0.0 && virtual_time >= virtual_horizon);
  }

  bool operator==(const Budget& other) const = default;
};

}  // namespace rfc::sim
