#include "sim/scheduler_spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "support/parse.hpp"

namespace rfc::sim {

namespace {

using Registry = std::map<std::string, SchedulerSpec::Policy>;

std::uint64_t activation_steps(std::uint32_t n, const SchedulerSpec&) {
  return std::max<std::uint32_t>(n, 1);
}

std::uint64_t round_steps(std::uint32_t, const SchedulerSpec&) { return 1; }

/// Shared wasted= knob of the activation-based policies: keep (default)
/// preserves the pinned draw-over-the-initial-pool traces, skip prunes
/// finished agents from the wakeable pool so no step is wasted on them.
bool wasted_skip_from(const SchedulerSpec& spec) {
  if (!spec.has_param("wasted")) return false;
  const std::string& value = spec.params().at("wasted");
  if (value == "keep") return false;
  if (value == "skip") return true;
  throw std::invalid_argument("SchedulerSpec: " + spec.policy() +
                              ":wasted=\"" + value + "\" is not keep or skip");
}

/// Shared shards=/threads= parameters of the round-based policies.
ShardingConfig sharding_from(const SchedulerSpec& spec) {
  ShardingConfig cfg;
  const std::uint64_t shards = spec.param_uint("shards", 1);
  if (shards == 0 || shards > 0xFFFFFFFFull) {
    throw std::invalid_argument("SchedulerSpec: " + spec.policy() +
                                ":shards must be a positive 32-bit count");
  }
  cfg.shards = static_cast<std::uint32_t>(shards);
  const std::uint64_t threads = spec.param_uint("threads", 0);
  if (threads > 0xFFFFFFFFull) {
    throw std::invalid_argument("SchedulerSpec: " + spec.policy() +
                                ":threads must be a 32-bit count");
  }
  cfg.threads = static_cast<std::uint32_t>(threads);
  return cfg;
}

Registry make_builtin_registry() {
  Registry reg;
  reg["synchronous"] = {
      [](const SchedulerSpec& spec) {
        return make_synchronous_scheduler(sharding_from(spec));
      },
      round_steps,
      {"shards", "threads"},
      "the paper's lock-step rounds (default; shards=S,threads=T to "
      "parallelize the round, bit-identical for any S/T)"};
  reg["sequential"] = {
      [](const SchedulerSpec& spec) {
        return make_sequential_scheduler(wasted_skip_from(spec));
      },
      activation_steps,
      {"wasted"},
      "one u.a.r. active agent wakes per step (wasted=keep draws over the "
      "initial pool forever — the pinned coupon-collector contract; "
      "wasted=skip prunes finished agents so every step wakes a live one)",
      /*activation_based=*/true};
  reg["partial-async"] = {
      [](const SchedulerSpec& spec) {
        return make_partial_async_scheduler(spec.param_double("p", 0.5),
                                            sharding_from(spec));
      },
      [](std::uint32_t n, const SchedulerSpec& spec) -> std::uint64_t {
        const double p = spec.param_double("p", 0.5);
        if (p >= 1.0) return 1;
        if (p <= 0.0) return std::max<std::uint32_t>(n, 1);
        return static_cast<std::uint64_t>(std::ceil(1.0 / p));
      },
      {"p", "shards", "threads"},
      "each round wakes an independent Bernoulli(p) subset (p=0.5)"};
  reg["batched"] = {
      [](const SchedulerSpec& spec) {
        BatchedDeliveryConfig cfg;
        const std::uint64_t blocks = spec.param_uint("block", 2);
        if (blocks == 0 || blocks > 0xFFFFFFFFull) {
          throw std::invalid_argument(
              "SchedulerSpec: batched:block must be a positive 32-bit "
              "count");
        }
        cfg.blocks = static_cast<std::uint32_t>(blocks);
        cfg.sharding = sharding_from(spec);
        return make_batched_delivery_scheduler(cfg);
      },
      [](std::uint32_t n, const SchedulerSpec& spec) -> std::uint64_t {
        // One full rotation (a round of per-agent progress) is B sub-steps.
        const std::uint64_t blocks = spec.param_uint("block", 2);
        const std::uint64_t cap = std::max<std::uint32_t>(n, 1);
        return std::max<std::uint64_t>(1, std::min(blocks, cap));
      },
      {"block", "shards", "threads"},
      "wakes contiguous label blocks (racks/shards) in rotation, one "
      "masked sub-round per sub-step (block=2; shards=S,threads=T "
      "parallelize the sub-round)"};
  reg["adversarial"] = {
      [](const SchedulerSpec& spec) {
        AdversarialConfig cfg;
        cfg.victim_fraction = spec.param_double("victim_fraction", 0.25);
        cfg.stream = spec.param_uint("stream", cfg.stream);
        cfg.victim_ids = spec.param_agent_list("victims");
        cfg.budget = spec.param_uint("budget", 0);
        cfg.skip_wasted = wasted_skip_from(spec);
        if (spec.has_param("phase")) {
          cfg.target_phase =
              parse_agent_phase(spec.params().at("phase"));
        }
        if (spec.has_param("target")) {
          cfg.target = parse_reactive_target(spec.params().at("target"));
          if (!cfg.victim_ids.empty()) {
            throw std::invalid_argument(
                "SchedulerSpec: adversarial:target= selects victims from "
                "observations; drop victims=");
          }
        }
        return make_adversarial_scheduler(std::move(cfg));
      },
      activation_steps,
      {"victim_fraction", "stream", "victims", "phase", "budget", "target",
       "wasted"},
      "seeded starvation orderings (victim_fraction=0.25 or victims=a+b+c); "
      "phase=vote starves victims only in that pipeline phase, budget=N "
      "caps the spent wake-up denials, target=min-cert|laggard|quorum-edge "
      "re-plans the victim set every step from EngineView observations, "
      "wasted=skip prunes finished agents from the walk pool eagerly",
      /*activation_based=*/true};
  reg["poisson"] = {
      [](const SchedulerSpec& spec) {
        const double rate = spec.param_double("rate", 1.0);
        const std::string queue = spec.has_param("queue")
                                      ? spec.params().at("queue")
                                      : "scan";
        if (queue == "scan") return make_poisson_clock_scheduler(rate);
        if (queue == "heap") {
          return make_event_driven_poisson_scheduler(rate);
        }
        throw std::invalid_argument("SchedulerSpec: poisson:queue=\"" +
                                    queue + "\" is not scan or heap");
      },
      activation_steps,
      {"rate", "queue"},
      "continuous-time rate-λ Poisson clocks (rate=1): queue=scan (default) "
      "samples Gillespie-style over the active pool, queue=heap pre-draws "
      "per-agent wakes into a pending-event heap — O(log n) per event, "
      "identical in distribution",
      /*activation_based=*/true};
  return reg;
}

Registry& registry() {
  static Registry reg = make_builtin_registry();
  return reg;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// Returns by value: the registry can be amended at runtime, and make() is
// called from Monte-Carlo worker threads, so callers must not hold
// references into the map beyond the lock.
SchedulerSpec::Policy find_policy(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& [n, p] : registry()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("SchedulerSpec: unknown policy \"" + name +
                                "\" (registered: " + known + ")");
  }
  return it->second;
}

[[noreturn]] void bad_value(const std::string& policy, const std::string& key,
                            const std::string& value, const char* expected) {
  throw std::invalid_argument("SchedulerSpec: " + policy + ":" + key + "=\"" +
                              value + "\" is not " + expected);
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string format_param_double(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

SchedulerSpec::SchedulerSpec() : policy_("synchronous") {}

SchedulerSpec::SchedulerSpec(std::string policy, Params params)
    : policy_(std::move(policy)), params_(std::move(params)) {}

SchedulerSpec SchedulerSpec::parse(const std::string& text) {
  const auto colon = text.find(':');
  const std::string name = trim(text.substr(0, colon));
  if (name.empty()) {
    throw std::invalid_argument("SchedulerSpec: empty policy name in \"" +
                                text + "\"");
  }
  find_policy(name);  // Fail fast on unknown policies.

  Params params;
  if (colon != std::string::npos) {
    std::string rest = text.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
      const auto comma = rest.find(',', pos);
      const std::string item = trim(
          rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
      if (item.empty()) {
        throw std::invalid_argument(
            "SchedulerSpec: empty parameter in \"" + text + "\"");
      }
      const auto eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("SchedulerSpec: expected key=value, got \"" +
                                    item + "\" in \"" + text + "\"");
      }
      const std::string key = trim(item.substr(0, eq));
      if (!params.emplace(key, trim(item.substr(eq + 1))).second) {
        throw std::invalid_argument("SchedulerSpec: duplicate parameter \"" +
                                    key + "\" in \"" + text + "\"");
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return SchedulerSpec(name, std::move(params));
}

std::string SchedulerSpec::to_string() const {
  std::string out = policy_;
  char sep = ':';
  for (const auto& [key, value] : params_) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

SchedulerPtr SchedulerSpec::make() const {
  const Policy policy = find_policy(policy_);
  for (const auto& [key, value] : params_) {
    if (std::find(policy.keys.begin(), policy.keys.end(), key) ==
        policy.keys.end()) {
      throw std::invalid_argument("SchedulerSpec: policy \"" + policy_ +
                                  "\" has no parameter \"" + key + "\"");
    }
  }
  return policy.factory(*this);
}

std::uint64_t SchedulerSpec::steps_per_round(std::uint32_t n) const {
  return find_policy(policy_).steps_per_round(n, *this);
}

bool SchedulerSpec::activation_based() const {
  return find_policy(policy_).activation_based;
}

bool SchedulerSpec::has_param(const std::string& key) const {
  return params_.count(key) > 0;
}

double SchedulerSpec::param_double(const std::string& key, double def) const {
  const auto it = params_.find(key);
  if (it == params_.end()) return def;
  double value = 0.0;
  if (!rfc::support::parse_number(it->second, value)) {
    bad_value(policy_, key, it->second, "a number");
  }
  return value;
}

std::uint64_t SchedulerSpec::param_uint(const std::string& key,
                                        std::uint64_t def) const {
  const auto it = params_.find(key);
  if (it == params_.end()) return def;
  std::uint64_t value = 0;
  if (!rfc::support::parse_uint64(it->second, value)) {
    bad_value(policy_, key, it->second, "a non-negative integer");
  }
  return value;
}

std::vector<AgentId> SchedulerSpec::param_agent_list(
    const std::string& key) const {
  const auto it = params_.find(key);
  if (it == params_.end()) return {};
  std::vector<AgentId> ids;
  const std::string& text = it->second;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto plus = text.find('+', pos);
    const std::string item =
        text.substr(pos, plus == std::string::npos ? std::string::npos
                                                   : plus - pos);
    std::uint64_t value = 0;
    if (!rfc::support::parse_uint64(item, value) || value > 0xFFFFFFFFull) {
      bad_value(policy_, key, text, "a +-separated agent-label list");
    }
    ids.push_back(static_cast<AgentId>(value));
    if (plus == std::string::npos) break;
    pos = plus + 1;
  }
  return ids;
}

SchedulerSpec SchedulerSpec::synchronous() { return SchedulerSpec(); }

SchedulerSpec SchedulerSpec::synchronous(const ShardingConfig& sharding) {
  Params params;
  if (sharding.shards > 1) {
    params["shards"] = std::to_string(sharding.shards);
    if (sharding.threads != 0) {
      params["threads"] = std::to_string(sharding.threads);
    }
  }
  return SchedulerSpec("synchronous", std::move(params));
}

SchedulerSpec SchedulerSpec::sequential() {
  return SchedulerSpec("sequential", {});
}

SchedulerSpec SchedulerSpec::partial_async(double wake_probability) {
  return SchedulerSpec("partial-async",
                       {{"p", format_param_double(wake_probability)}});
}

SchedulerSpec SchedulerSpec::batched(std::uint32_t blocks,
                                     const ShardingConfig& sharding) {
  Params params;
  params["block"] = std::to_string(blocks);
  if (sharding.shards > 1) {
    params["shards"] = std::to_string(sharding.shards);
    if (sharding.threads != 0) {
      params["threads"] = std::to_string(sharding.threads);
    }
  }
  return SchedulerSpec("batched", std::move(params));
}

SchedulerSpec SchedulerSpec::adversarial(const AdversarialConfig& cfg) {
  Params params;
  if (cfg.victim_ids.empty()) {
    params["victim_fraction"] = format_param_double(cfg.victim_fraction);
  } else {
    std::string list;
    for (AgentId id : cfg.victim_ids) {
      if (!list.empty()) list += '+';
      list += std::to_string(id);
    }
    params["victims"] = std::move(list);
  }
  if (cfg.target_phase != AgentPhase::kUnknown) {
    params["phase"] = rfc::sim::to_string(cfg.target_phase);
  }
  if (cfg.target != ReactiveTarget::kNone) {
    params["target"] = rfc::sim::to_string(cfg.target);
  }
  if (cfg.budget != 0) {
    params["budget"] = std::to_string(cfg.budget);
  }
  if (cfg.stream != AdversarialConfig{}.stream) {
    params["stream"] = std::to_string(cfg.stream);
  }
  if (cfg.skip_wasted) {
    params["wasted"] = "skip";
  }
  return SchedulerSpec("adversarial", std::move(params));
}

SchedulerSpec SchedulerSpec::poisson(double rate) {
  Params params;
  if (rate != 1.0) params["rate"] = format_param_double(rate);
  return SchedulerSpec("poisson", std::move(params));
}

SchedulerSpec SchedulerSpec::poisson_heap(double rate) {
  Params params;
  params["queue"] = "heap";
  if (rate != 1.0) params["rate"] = format_param_double(rate);
  return SchedulerSpec("poisson", std::move(params));
}

void SchedulerSpec::register_policy(const std::string& name, Policy policy) {
  if (name.empty() || name.find(':') != std::string::npos ||
      name.find(',') != std::string::npos) {
    throw std::invalid_argument(
        "SchedulerSpec: policy names must be non-empty and free of ':'/','");
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = std::move(policy);
}

std::vector<std::string> SchedulerSpec::registered_policies() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, policy] : registry()) names.push_back(name);
  return names;
}

std::string SchedulerSpec::describe_registry() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::string out;
  for (const auto& [name, policy] : registry()) {
    out += "  " + name + " — " + policy.summary + "\n";
  }
  return out;
}

}  // namespace rfc::sim
