#include "sim/async_engine.hpp"

#include <stdexcept>

#include "support/math_util.hpp"

namespace rfc::sim {

AsyncEngine::AsyncEngine(AsyncEngineConfig cfg)
    : cfg_(cfg),
      scheduler_rng_(rfc::support::derive_seed(cfg.seed, 0xA57Cu)) {
  if (cfg_.n == 0) {
    throw std::invalid_argument("AsyncEngine: n must be positive");
  }
  agents_.resize(cfg_.n);
  faulty_.assign(cfg_.n, false);
  rngs_.reserve(cfg_.n);
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    rngs_.emplace_back(rfc::support::derive_seed(cfg_.seed, i));
  }
}

void AsyncEngine::set_agent(AgentId id, std::unique_ptr<Agent> agent) {
  agents_.at(id) = std::move(agent);
}

void AsyncEngine::set_faulty(AgentId id, bool faulty) {
  if (started_) {
    throw std::logic_error("AsyncEngine: fault plan is permanent");
  }
  faulty_.at(id) = faulty;
}

Context AsyncEngine::make_context(AgentId id) noexcept {
  Context ctx;
  ctx.self = id;
  ctx.n = cfg_.n;
  ctx.round = steps_;
  ctx.rng = &rngs_[id];
  ctx.topology = cfg_.topology.get();
  return ctx;
}

void AsyncEngine::step() {
  if (!started_) {
    active_.clear();
    for (std::uint32_t i = 0; i < cfg_.n; ++i) {
      if (agents_[i] == nullptr) {
        throw std::logic_error("AsyncEngine: agent " + std::to_string(i) +
                               " not installed");
      }
      if (!faulty_[i]) {
        agents_[i]->on_start(make_context(i));
        active_.push_back(i);
      }
    }
    started_ = true;
    if (active_.empty()) return;
  }

  const AgentId u = active_[scheduler_rng_.below(active_.size())];
  ++steps_;
  metrics_.rounds = steps_;
  if (agents_[u]->done()) return;  // A wasted activation.

  const Action action = agents_[u]->on_round(make_context(u));
  switch (action.kind) {
    case ActionKind::kIdle:
      return;
    case ActionKind::kPull: {
      ++metrics_.active_links;
      ++metrics_.pull_requests;
      metrics_.note_message(rfc::support::bit_width_for_domain(cfg_.n));
      const AgentId v = action.target;
      PayloadPtr reply;
      // Done agents are still asked: in the sequential model a fast agent
      // finishes while slow ones are mid-audit, and whether a terminated
      // agent keeps serving is the agent's own policy (as in the
      // synchronous engine).
      if (!faulty_[v]) {
        reply = agents_[v]->serve_pull(make_context(v), u);
      }
      if (reply != nullptr) {
        ++metrics_.pull_replies;
        metrics_.note_message(reply->bit_size());
      }
      agents_[u]->on_pull_reply(make_context(u), action.target,
                                std::move(reply));
      return;
    }
    case ActionKind::kPush: {
      ++metrics_.active_links;
      ++metrics_.pushes;
      metrics_.note_message(
          action.payload != nullptr ? action.payload->bit_size() : 0);
      const AgentId v = action.target;
      if (!faulty_[v]) {
        agents_[v]->on_push(make_context(v), u, action.payload);
      }
      return;
    }
  }
}

bool AsyncEngine::all_done() const {
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    if (!faulty_[i] && !agents_[i]->done()) return false;
  }
  return true;
}

std::uint64_t AsyncEngine::run(std::uint64_t max_steps) {
  while (steps_ < max_steps && !all_done()) step();
  return steps_;
}

}  // namespace rfc::sim
