#include "sim/engine_core.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "support/math_util.hpp"

namespace rfc::sim {

EngineCore::EngineCore(std::uint32_t n, std::uint64_t seed,
                       TopologyPtr topology)
    : n_(n), seed_(seed), topology_(std::move(topology)) {
  if (n_ == 0) throw std::invalid_argument("Engine: n must be positive");
  agents_.resize(n_);
  faulty_.assign(n_, 0);
  // Stream slots only; the SplitMix expansions are deferred to
  // seed_rng_block so the sharded executor can derive each shard's block on
  // its own worker before the agents start (shard-local RNG prefetch).
  rngs_.assign(n_, rfc::support::Xoshiro256(
                       rfc::support::Xoshiro256::Unseeded{}));
  actions_.resize(n_);
  pull_replies_.resize(n_);
}

void EngineCore::seed_rng_block(std::uint32_t lo, std::uint32_t hi) noexcept {
  for (std::uint32_t i = lo; i < hi; ++i) {
    rngs_[i].seed(rfc::support::derive_seed(seed_, i));
  }
}

void EngineCore::set_agent(AgentId id, std::unique_ptr<Agent> agent) {
  agents_.at(id) = std::move(agent);
}

void EngineCore::set_faulty(AgentId id, bool faulty) {
  if (started_) {
    throw std::logic_error("Engine: fault plan is permanent; set before run");
  }
  if ((faulty_.at(id) != 0) != faulty) {
    faulty_[id] = faulty ? 1 : 0;
    num_faulty_ += faulty ? 1u : -1u;
  }
}

void EngineCore::apply_fault_plan(const std::vector<bool>& plan) {
  if (plan.size() != n_) {
    throw std::invalid_argument("Engine: fault plan size mismatch");
  }
  for (std::uint32_t i = 0; i < n_; ++i) set_faulty(i, plan[i]);
}

void EngineCore::set_network(NetworkModelPtr network) {
  if (started_) {
    throw std::logic_error(
        "Engine: the network model is part of the run setup; set before run");
  }
  network_ = std::move(network);
  net_msgs_ = network_ != nullptr && network_->message_faults();
  net_churn_ = network_ != nullptr && network_->has_churn();
  if (net_churn_) down_until_.assign(n_, 0);
}

void EngineCore::advance_churn(std::uint64_t epoch) {
  if (!net_churn_) return;
  net_epoch_ = epoch;
  // Sweep every epoch exactly once even if the caller's clock jumps (the
  // sequential path advances the epoch every n steps), so crash verdicts
  // are a function of the epoch alone, not of how it was reached.
  while (churn_unswept_ <= epoch) {
    const std::uint64_t e = churn_unswept_++;
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (faulty_[i] != 0 || down_until_[i] > e) continue;
      if (network_->crashes(e, i)) {
        const std::uint64_t rejoin = network_->rates().rejoin;
        down_until_[i] = rejoin == 0
                             ? std::numeric_limits<std::uint64_t>::max()
                             : e + rejoin;
        ++metrics_.churn_crashes;
      }
    }
  }
}

void EngineCore::deliver_push(AgentId sender, AgentId target,
                              const Payload& payload, support::Arena* arena) {
  if (faulty_[target] != 0 || is_down(target)) return;
  agents_[target]->on_push(make_context(target, arena), sender, payload);
}

void EngineCore::net_push(AgentId sender, AgentId target,
                          const Payload& payload, Metrics& metrics,
                          support::Arena* arena, NetSinks* sinks) {
  const NetworkModel& net = *network_;
  const std::uint64_t now = time_;
  if (net.drop(NetMessage::kPush, now, sender, target)) {
    ++metrics.net_drops;  // Charged at send, lost in transit.
    return;
  }
  const Payload* body = &payload;
  Payload tampered;
  if (net.corrupt(NetMessage::kPush, now, sender, target)) {
    tampered = corrupt_payload(payload, net.corrupt_salt(now, sender, target));
    if (!tampered.empty()) {
      ++metrics.net_corruptions;  // Only metered when bits actually flipped.
      body = &tampered;
    }
  }
  if (sinks != nullptr) {
    if (sinks->delayed != nullptr) {
      const std::uint64_t d = net.delay_of(now, sender, target);
      if (d > 0) {
        Payload kept = clone_payload(*body);
        if (!kept.empty() || body->empty()) {
          ++metrics.net_delays;
          sinks->delayed->push_back(
              DelayedPush{now + d, now, sender, target, std::move(kept)});
          return;
        }
        // Unclonable across rounds (an arena-boxed tag with no registered
        // clone hook): fall through and deliver this round instead.
      }
    }
    if (sinks->deferred != nullptr && net.reorder(now, sender, target)) {
      // Same-round payloads survive until the next barrier reset, so no
      // clone is needed here.
      ++metrics.net_delays;
      sinks->deferred->push_back(DelayedPush{now, now, sender, target, *body});
      return;
    }
  }
  const bool dup = net.duplicate(now, sender, target);
  if (dup) ++metrics.net_dups;
  deliver_push(sender, target, *body, arena);
  if (dup) deliver_push(sender, target, *body, arena);
}

void EngineCore::deliver_due_delayed(support::Arena* arena) {
  if (net_delayed_.empty()) return;
  std::vector<DelayedPush> due;
  std::size_t w = 0;
  for (DelayedPush& e : net_delayed_) {
    if (e.due <= time_) {
      due.push_back(std::move(e));
    } else {
      net_delayed_[w++] = std::move(e);
    }
  }
  net_delayed_.resize(w);
  if (due.empty()) return;
  // (origin round, sender) is unique per delayed push — a total order, so
  // delivery cannot depend on how the pending list was accumulated.
  std::sort(due.begin(), due.end(),
            [](const DelayedPush& a, const DelayedPush& b) {
              return a.origin != b.origin ? a.origin < b.origin
                                          : a.sender < b.sender;
            });
  for (const DelayedPush& e : due) {
    deliver_push(e.sender, e.target, e.payload, arena);
    note_activation(e.target);
  }
}

void EngineCore::flush_deferred(std::vector<DelayedPush>& batch,
                                support::Arena* arena) {
  if (batch.empty()) return;
  // Senders are unique within a round (one action per agent), so sender
  // label is a total order shared by the serial, blocked, and sharded
  // paths regardless of queue accumulation order.
  std::sort(batch.begin(), batch.end(),
            [](const DelayedPush& a, const DelayedPush& b) {
              return a.sender < b.sender;
            });
  for (const DelayedPush& e : batch) {
    deliver_push(e.sender, e.target, e.payload, arena);
    note_activation(e.target);
  }
  batch.clear();
}

bool EngineCore::all_done() const {
  if (obs_cache_enabled_ && started_) {
    return num_done_ == n_ - num_faulty_;
  }
  // Without the caches, a fresh scan every call: completion can arrive
  // outside the agent's own callbacks (coalition blackboard), so nothing
  // cheaper is sound.
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (faulty_[i] == 0 && !agents_[i]->done()) return false;
  }
  return true;
}

AgentPhase EngineCore::agent_phase(AgentId id) const {
  if (!obs_cache_enabled_) return agents_[id]->phase();
  if ((obs_valid_[id] & kPhaseValid) == 0) {
    phase_cache_[id] = agents_[id]->phase();
    obs_valid_[id] |= kPhaseValid;
  }
  return phase_cache_[id];
}

double EngineCore::agent_progress(AgentId id) const {
  if (!obs_cache_enabled_) return agents_[id]->progress();
  if ((obs_valid_[id] & kProgressValid) == 0) {
    progress_cache_[id] = agents_[id]->progress();
    obs_valid_[id] |= kProgressValid;
  }
  return progress_cache_[id];
}

void EngineCore::recount_done() noexcept {
  if (!obs_cache_enabled_) return;
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const bool done = faulty_[i] == 0 && done_[i] != 0;
    count += static_cast<std::uint32_t>(done);
    // The sharded phases refresh done_ bytes without logging (the shared
    // log would race); append the round's transitions here, in label order.
    if (done) log_done_transition(i);
  }
  num_done_ = count;
  // Stable-compact the live list: drop the labels that finished this round
  // (order preserved, so the next phase A walks label order as ever).
  std::size_t w = 0;
  for (const AgentId i : live_list_) {
    if (done_[i] == 0) live_list_[w++] = i;
  }
  live_list_.resize(w);
}

std::vector<AgentId> EngineCore::active_labels() const {
  std::vector<AgentId> labels;
  active_labels(labels);
  return labels;
}

void EngineCore::active_labels(std::vector<AgentId>& out) const {
  out.clear();
  out.reserve(num_active());
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (faulty_[i] == 0) out.push_back(i);
  }
}

std::uint64_t EngineCore::pull_request_bits() const noexcept {
  return rfc::support::bit_width_for_domain(n_);
}

void EngineCore::ensure_arenas(std::uint32_t count) {
  while (arenas_.size() < count) {
    arenas_.push_back(std::make_unique<support::Arena>());
  }
}

void EngineCore::reset_round_arenas() noexcept {
  for (auto& arena : arenas_) arena->reset();
}

void EngineCore::set_blocked_delivery(std::uint32_t min_n,
                                      std::uint32_t block_labels) {
  if (block_labels == 0) {
    throw std::invalid_argument("Engine: block_labels must be positive");
  }
  blocked_min_n_ = min_n;
  block_shift_ = 0;
  while ((1u << block_shift_) < block_labels) ++block_shift_;
}

Context EngineCore::make_context(AgentId id) noexcept {
  return make_context(id, serial_arena());
}

Context EngineCore::make_context(AgentId id, support::Arena* arena) noexcept {
  Context ctx;
  ctx.self = id;
  ctx.n = n_;
  ctx.round = time_;
  ctx.rng = &rngs_[id];
  ctx.topology = topology_.get();
  ctx.arena = arena;
  return ctx;
}

void EngineCore::ensure_started() {
  if (started_) return;
  if (!rngs_seeded_) {  // The sharded executor may have prefetched already.
    seed_rng_block(0, n_);
    rngs_seeded_ = true;
  }
  ensure_arenas(1);
  // The SoA observation caches are sound exactly when observations change
  // only through the agent's own callbacks: cacheable_observations() rules
  // out externally mutated state, shard_safe() rules out one label's
  // callback moving another label's observations (coalition blackboards).
  bool cacheable = true;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (agents_[i] == nullptr) {
      throw std::logic_error("Engine: agent " + std::to_string(i) +
                             " not installed");
    }
    cacheable = cacheable && agents_[i]->shard_safe() &&
                agents_[i]->cacheable_observations();
  }
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (faulty_[i] == 0) {
      const Context ctx = make_context(i, serial_arena());
      agents_[i]->on_start(ctx);
    }
  }
  if (cacheable) {
    done_.assign(n_, 0);
    obs_valid_.assign(n_, 0);
    phase_cache_.assign(n_, AgentPhase::kUnknown);
    progress_cache_.assign(n_, 0.0);
    done_logged_.assign(n_, 0);
    done_log_.clear();
    num_done_ = 0;
    live_list_.clear();
    live_list_.reserve(n_ - num_faulty_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      done_[i] = agents_[i]->done() ? 1 : 0;
      if (faulty_[i] != 0) continue;
      if (done_[i] != 0) {
        ++num_done_;
        done_logged_[i] = 1;  // Pre-start done: accounted, never logged.
      } else {
        live_list_.push_back(i);
      }
    }
    obs_cache_enabled_ = true;
  }
  started_ = true;
}

void EngineCore::charge_pull_request(Metrics& metrics) {
  ++metrics.pull_requests;
  metrics.note_message(pull_request_bits());
}

Payload EngineCore::serve_and_charge_pull(AgentId v, AgentId requester,
                                          Metrics& metrics,
                                          support::Arena* arena) {
  if (net_msgs_ &&
      network_->drop(NetMessage::kPullRequest, time_, requester, v)) {
    ++metrics.net_drops;  // Lost request: charged by the caller, never
    return {};            // served — the requester observes silence.
  }
  if (faulty_[v] != 0 || is_down(v)) return {};  // Silence: no reply.
  Payload reply = agents_[v]->serve_pull(make_context(v, arena), requester);
  if (reply.empty()) return reply;
  ++metrics.pull_replies;
  metrics.note_message(reply.bit_size());
  if (net_msgs_) {
    // The reply was served and charged either way — the server's RNG
    // consumption never depends on what the network does afterwards.
    if (network_->drop(NetMessage::kPullReply, time_, v, requester)) {
      ++metrics.net_drops;
      return {};
    }
    if (network_->corrupt(NetMessage::kPullReply, time_, v, requester)) {
      Payload tampered =
          corrupt_payload(reply, network_->corrupt_salt(time_, v, requester));
      if (!tampered.empty()) {
        ++metrics.net_corruptions;
        return tampered;
      }
    }
  }
  return reply;
}

void EngineCore::execute_push(AgentId sender, AgentId target,
                              const Payload& payload, Metrics& metrics,
                              support::Arena* arena, NetSinks* sinks) {
  ++metrics.pushes;
  metrics.note_message(payload.bit_size());
  if (net_msgs_) {
    net_push(sender, target, payload, metrics, arena, sinks);
    return;
  }
  deliver_push(sender, target, payload, arena);
}

void EngineCore::run_synchronous_round(const std::vector<bool>* awake_mask) {
  ensure_started();
  advance_churn(time_);  // Round paths: one churn epoch per round.
  // The shard-barrier arena reset: payloads allocated last round die here,
  // so an arena-boxed payload is valid for exactly one full round.
  reset_round_arenas();
  if (use_blocked_round()) {
    run_blocked_round(awake_mask);
  } else {
    run_serial_round(awake_mask);
  }
}

void EngineCore::run_serial_round(const std::vector<bool>* awake_mask) {
  support::Arena* arena = serial_arena();

  // One Context for the whole round, re-aimed per agent (see
  // run_blocked_round): only self and the RNG pointer vary per callback.
  Context ctx = make_context(0, arena);

  // Phase A: collect each awake agent's single active operation, recording
  // who pulled and who pushed so phases B/C/D walk those lists instead of
  // rescanning all n labels.  push_back in the label-ordered walk keeps the
  // lists label-ordered — the pinned delivery order.
  round_pullers_.clear();
  round_pushers_.clear();
  const auto collect = [&](AgentId i) {
    ctx.self = i;
    ctx.rng = &rngs_[i];
    Action& a = actions_[i];
    a = agents_[i]->on_round(ctx);
    note_activation(i);
    if (a.kind == ActionKind::kIdle) return;
    assert(a.target < n_);
    ++metrics_.active_links;
    if (a.kind == ActionKind::kPull) round_pullers_.push_back(i);
    else round_pushers_.push_back(i);
  };
  if (obs_cache_enabled_) {
    // Sparse path: walk the live list, compacting finished labels in place
    // (done() is monotone, so a dropped label never wakes again).  The list
    // is label-ordered and contains exactly the labels the 0..n scan would
    // not have skipped, so the activation sequence is the scan's.
    std::size_t w = 0;
    const std::size_t live = live_list_.size();
    for (std::size_t r = 0; r < live; ++r) {
      const AgentId i = live_list_[r];
      if (done_[i] != 0) continue;
      live_list_[w++] = i;  // Down agents stay listed: churn is transient.
      if (is_down(i)) continue;
      if (awake_mask != nullptr && !(*awake_mask)[i]) continue;
      collect(i);
    }
    live_list_.resize(w);
  } else {
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (faulty_[i] != 0 || is_down(i) || agents_[i]->done() ||
          (awake_mask != nullptr && !(*awake_mask)[i])) {
        continue;
      }
      collect(i);
    }
  }

  // A phase with no work is skipped outright — pull-free rounds (e.g. the
  // push steady state of a spread) cost nothing beyond phase A.
  // pull_replies_ slots are only ever written in phase B and cleared again
  // in phase C, so every slot is empty at round start (which is also why
  // neither this path nor the sharded one pre-clears them).
  if (!round_pullers_.empty()) {
    // Phase B: serve all pull requests from round-start state.
    for (const AgentId i : round_pullers_) {
      charge_pull_request(metrics_);
      const AgentId target = actions_[i].target;
      pull_replies_[i] = serve_and_charge_pull(target, i, metrics_, arena);
      note_activation(target);
    }

    // Phase C: deliver pull replies in puller-label order.
    for (const AgentId i : round_pullers_) {
      ctx.self = i;
      ctx.rng = &rngs_[i];
      agents_[i]->on_pull_reply(ctx, actions_[i].target, pull_replies_[i]);
      pull_replies_[i] = {};
      note_activation(i);
    }
  }

  // Phase D: deliver pushes in sender-label order (execute_push inlined
  // onto the hoisted Context; metrics charged identically for faulty
  // targets, and note_activation keeps the cache-off path sound).  With a
  // fault-enabled network the inlined fast path yields to the shared
  // execute_push so all delivery paths share one fault stage; pushes
  // delayed in earlier rounds land first, reordered ones last.
  const bool net_active = net_msgs_ || net_churn_;
  if (net_msgs_) deliver_due_delayed(arena);
  NetSinks sinks{&net_delayed_, &net_deferred_};
  for (const AgentId i : round_pushers_) {
    const Action& a = actions_[i];
    if (net_active) {
      execute_push(i, a.target, a.payload, metrics_, arena, &sinks);
      note_activation(a.target);
      continue;
    }
    ++metrics_.pushes;
    metrics_.note_message(a.payload.bit_size());
    if (faulty_[a.target] == 0) {
      ctx.self = a.target;
      ctx.rng = &rngs_[a.target];
      agents_[a.target]->on_push(ctx, i, a.payload);
    }
    note_activation(a.target);
  }
  if (net_msgs_) flush_deferred(net_deferred_, arena);

  ++time_;
  metrics_.rounds = time_;
}

void EngineCore::run_blocked_round(const std::vector<bool>* awake_mask) {
  support::Arena* arena = serial_arena();
  const std::uint32_t shift = block_shift_;
  const std::uint32_t blocks = ((n_ - 1) >> shift) + 1;
  if (push_blocks_.size() < blocks) {
    push_blocks_.resize(blocks);
    pull_blocks_.resize(blocks);
  }
  for (std::uint32_t b = 0; b < blocks; ++b) {
    push_blocks_[b].clear();  // Capacity kept: steady state allocates nothing.
    pull_blocks_[b].clear();
  }
  if (pull_target_.size() != n_) pull_target_.resize(n_);
  round_pullers_.clear();

  // One Context for the whole round, re-aimed per agent: only self and the
  // RNG pointer vary, so the hot loops skip rebuilding the other fields
  // (make_context) once per callback.
  Context ctx = make_context(0, arena);

  // Phase A: walk the live list (compacting finished labels in place, as in
  // run_serial_round) and route each action to its destination block.  The
  // full Action (payload included) moves into the block queue, so delivery
  // streams the queue instead of random-reading an n-sized action buffer;
  // pullers are additionally listed for phase C.
  const bool net_active = net_msgs_ || net_churn_;
  std::uint32_t num_pushes = 0;
  std::size_t w = 0;
  const std::size_t live = live_list_.size();
  for (std::size_t r = 0; r < live; ++r) {
    const AgentId i = live_list_[r];
    if (done_[i] != 0) continue;
    live_list_[w++] = i;  // Down agents stay listed: churn is transient.
    if (is_down(i)) continue;
    if (awake_mask != nullptr && !(*awake_mask)[i]) continue;
    ctx.self = i;
    ctx.rng = &rngs_[i];
    Agent* agent = agents_[i].get();
    Action a = agent->on_round(ctx);
    // note_activation body, minus the faulty recheck (i is non-faulty here)
    // and minus the done_ compare (done_[i] was 0 at the gate above).
    obs_valid_[i] = 0;
    if (agent->done()) {
      done_[i] = 1;
      ++num_done_;
      log_done_transition(i);
    }
    if (a.kind == ActionKind::kIdle) continue;
    assert(a.target < n_);
    ++metrics_.active_links;
    if (a.kind == ActionKind::kPull) {
      round_pullers_.push_back(i);
      pull_target_[i] = a.target;
      // Charged at collect time, as on the sharded path (sums are
      // merge-order independent, so totals match the serial round).
      charge_pull_request(metrics_);
      pull_blocks_[a.target >> shift].push_back(PullEntry{i, a.target});
    } else {
      ++num_pushes;
      push_blocks_[a.target >> shift].push_back(
          PushEntry{std::move(a.payload), i, a.target});
    }
  }
  live_list_.resize(w);

  if (!round_pullers_.empty()) {
    // Phase B: serve pulls block by block.  Within a block entries are in
    // requester-label order and a server lives in exactly one block, so
    // every server sees its pullers in the serial round's order (same RNG
    // stream consumption); only the cross-server interleaving differs, and
    // servers' streams are independent.
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const PullEntry* q = pull_blocks_[b].data();
      const std::size_t m = pull_blocks_[b].size();
      for (std::size_t j = 0; j < m; ++j) {
        // Same two-stage prefetch as phase D (pointer line, then object),
        // plus the reply slot the serve is about to write: requesters are
        // label-ordered but sparse, so the stores stride past what the
        // hardware prefetcher tracks.
        if (j + 8 < m) {
          __builtin_prefetch(&agents_[q[j + 8].server]);
        }
        if (j + 4 < m) {
          __builtin_prefetch(agents_[q[j + 4].server].get());
          __builtin_prefetch(&pull_replies_[q[j + 4].requester], 1);
        }
        const PullEntry& e = q[j];
        if (net_active) {
          // Fault-enabled rounds take the shared serve path so the
          // request/reply fault stage has one definition.
          pull_replies_[e.requester] =
              serve_and_charge_pull(e.server, e.requester, metrics_, arena);
          note_activation(e.server);
          continue;
        }
        // serve_and_charge_pull on the hoisted Context (identical fields;
        // only self and the RNG pointer differ per serve).
        if (faulty_[e.server] != 0) {
          pull_replies_[e.requester] = {};  // Silence: no reply observed.
        } else {
          ctx.self = e.server;
          ctx.rng = &rngs_[e.server];
          Payload reply = agents_[e.server]->serve_pull(ctx, e.requester);
          if (!reply.empty()) {
            ++metrics_.pull_replies;
            metrics_.note_message(reply.bit_size());
          }
          pull_replies_[e.requester] = std::move(reply);
        }
        note_activation(e.server);
      }
    }

    // Phase C: deliver pull replies in puller-label order (the puller list
    // was filled by the label-ordered phase-A walk, so it already is the
    // contract's order).
    const AgentId* pullers = round_pullers_.data();
    const std::size_t np = round_pullers_.size();
    for (std::size_t j = 0; j < np; ++j) {
      if (j + 8 < np) {
        __builtin_prefetch(&agents_[pullers[j + 8]]);
      }
      if (j + 4 < np) {
        const AgentId ahead = pullers[j + 4];
        __builtin_prefetch(agents_[ahead].get());
        __builtin_prefetch(&pull_replies_[ahead], 1);
      }
      const AgentId i = pullers[j];
      ctx.self = i;
      ctx.rng = &rngs_[i];
      agents_[i]->on_pull_reply(ctx, pull_target_[i], pull_replies_[i]);
      pull_replies_[i] = {};
      note_activation(i);
    }
  }

  // Phase D: deliver pushes block by block — per receiver the sender order
  // is the serial round's (entries are in sender-label order within the
  // receiver's block), and one block's receivers stay cache-resident while
  // its queue streams through.  Fault verdicts are pure per-message hashes,
  // so taking them block by block instead of in sender order changes
  // nothing; held-back pushes re-enter through the same sorted flushes as
  // the serial round's.
  if (net_msgs_) deliver_due_delayed(arena);
  NetSinks sinks{&net_delayed_, &net_deferred_};
  if (num_pushes != 0) {
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const PushEntry* q = push_blocks_[b].data();
      const std::size_t m = push_blocks_[b].size();
      for (std::size_t j = 0; j < m; ++j) {
        // Two-stage software prefetch: the agent-pointer line a few entries
        // ahead, then the agent object itself one stage later (its address
        // needs the pointer already resident) — hides the scattered-target
        // latency the queue's streaming reads cannot.
        if (j + 8 < m) {
          __builtin_prefetch(&agents_[q[j + 8].target]);
        }
        if (j + 4 < m) {
          __builtin_prefetch(agents_[q[j + 4].target].get());
        }
        const PushEntry& e = q[j];
        if (net_active) {
          execute_push(e.sender, e.target, e.payload, metrics_, arena,
                       &sinks);
          note_activation(e.target);
          continue;
        }
        // execute_push + note_activation, sharing one faulty_ load and the
        // hoisted Context (metrics charged identically for faulty targets).
        ++metrics_.pushes;
        metrics_.note_message(e.payload.bit_size());
        if (faulty_[e.target] != 0) continue;
        ctx.self = e.target;
        ctx.rng = &rngs_[e.target];
        Agent* agent = agents_[e.target].get();
        agent->on_push(ctx, e.sender, e.payload);
        obs_valid_[e.target] = 0;
        const std::uint8_t d = agent->done() ? 1 : 0;
        if (d != done_[e.target]) {
          done_[e.target] = d;
          if (d != 0) {
            ++num_done_;
            log_done_transition(e.target);
          } else {
            --num_done_;
            unlog_done_transition(e.target);
          }
        }
      }
    }
  }
  if (net_msgs_) flush_deferred(net_deferred_, arena);

  ++time_;
  metrics_.rounds = time_;
}

void EngineCore::sequential_activation(AgentId u) {
  ensure_started();
  reset_round_arenas();  // One activation = one message lifetime.
  ++time_;
  metrics_.rounds = time_;
  // Sequential churn epochs tick once per n activations — the step-count
  // analogue of one synchronous round — and delayed pushes land at the
  // start of the first activation at or past their due step.
  if (net_churn_) advance_churn(time_ / n_);
  if (net_msgs_) deliver_due_delayed(serial_arena());
  if (agent_done(u)) return;  // A wasted activation.
  if (is_down(u)) return;     // A crashed agent's activation is wasted too.

  support::Arena* arena = serial_arena();
  const Action action = agents_[u]->on_round(make_context(u, arena));
  note_activation(u);
  switch (action.kind) {
    case ActionKind::kIdle:
      return;
    case ActionKind::kPull: {
      ++metrics_.active_links;
      charge_pull_request(metrics_);
      // Done agents are still asked: in the sequential model a fast agent
      // finishes while slow ones are mid-audit, and whether a terminated
      // agent keeps serving is the agent's own policy (as in the
      // synchronous round).
      const Payload reply =
          serve_and_charge_pull(action.target, u, metrics_, arena);
      note_activation(action.target);
      agents_[u]->on_pull_reply(make_context(u, arena), action.target, reply);
      note_activation(u);
      return;
    }
    case ActionKind::kPush: {
      ++metrics_.active_links;
      // No delivery phase to reorder within: reordering is a no-op here,
      // but cross-activation delay still applies.
      NetSinks sinks{&net_delayed_, nullptr};
      execute_push(u, action.target, action.payload, metrics_, arena,
                   &sinks);
      note_activation(action.target);
      return;
    }
  }
}

}  // namespace rfc::sim
