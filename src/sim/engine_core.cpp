#include "sim/engine_core.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "support/math_util.hpp"

namespace rfc::sim {

EngineCore::EngineCore(std::uint32_t n, std::uint64_t seed,
                       TopologyPtr topology)
    : n_(n), seed_(seed), topology_(std::move(topology)) {
  if (n_ == 0) throw std::invalid_argument("Engine: n must be positive");
  agents_.resize(n_);
  faulty_.assign(n_, false);
  // Stream slots only; the SplitMix expansions are deferred to
  // seed_rng_block so the sharded executor can derive each shard's block on
  // its own worker before the agents start (shard-local RNG prefetch).
  rngs_.assign(n_, rfc::support::Xoshiro256(
                       rfc::support::Xoshiro256::Unseeded{}));
  actions_.resize(n_);
  pull_replies_.resize(n_);
}

void EngineCore::seed_rng_block(std::uint32_t lo, std::uint32_t hi) noexcept {
  for (std::uint32_t i = lo; i < hi; ++i) {
    rngs_[i].seed(rfc::support::derive_seed(seed_, i));
  }
}

void EngineCore::set_agent(AgentId id, std::unique_ptr<Agent> agent) {
  agents_.at(id) = std::move(agent);
}

void EngineCore::set_faulty(AgentId id, bool faulty) {
  if (started_) {
    throw std::logic_error("Engine: fault plan is permanent; set before run");
  }
  if (faulty_.at(id) != faulty) {
    faulty_[id] = faulty;
    num_faulty_ += faulty ? 1u : -1u;
  }
}

void EngineCore::apply_fault_plan(const std::vector<bool>& plan) {
  if (plan.size() != n_) {
    throw std::invalid_argument("Engine: fault plan size mismatch");
  }
  for (std::uint32_t i = 0; i < n_; ++i) set_faulty(i, plan[i]);
}

bool EngineCore::all_done() const {
  // Deliberately a fresh scan every call (see the header): completion can
  // arrive outside the agent's own callbacks, so nothing cheaper is sound.
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (!faulty_[i] && !agents_[i]->done()) return false;
  }
  return true;
}

std::vector<AgentId> EngineCore::active_labels() const {
  std::vector<AgentId> labels;
  labels.reserve(num_active());
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (!faulty_[i]) labels.push_back(i);
  }
  return labels;
}

std::uint64_t EngineCore::pull_request_bits() const noexcept {
  return rfc::support::bit_width_for_domain(n_);
}

Context EngineCore::make_context(AgentId id) noexcept {
  Context ctx;
  ctx.self = id;
  ctx.n = n_;
  ctx.round = time_;
  ctx.rng = &rngs_[id];
  ctx.topology = topology_.get();
  return ctx;
}

void EngineCore::ensure_started() {
  if (started_) return;
  if (!rngs_seeded_) {  // The sharded executor may have prefetched already.
    seed_rng_block(0, n_);
    rngs_seeded_ = true;
  }
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (agents_[i] == nullptr) {
      throw std::logic_error("Engine: agent " + std::to_string(i) +
                             " not installed");
    }
    if (!faulty_[i]) {
      const Context ctx = make_context(i);
      agents_[i]->on_start(ctx);
    }
  }
  started_ = true;
}

void EngineCore::charge_pull_request(Metrics& metrics) {
  ++metrics.pull_requests;
  metrics.note_message(pull_request_bits());
}

Payload EngineCore::serve_and_charge_pull(AgentId v, AgentId requester,
                                          Metrics& metrics) {
  if (faulty_[v]) return {};  // Silence: the puller observes no reply.
  Payload reply = agents_[v]->serve_pull(make_context(v), requester);
  if (!reply.empty()) {
    ++metrics.pull_replies;
    metrics.note_message(reply.bit_size());
  }
  return reply;
}

void EngineCore::execute_push(AgentId sender, const Action& action,
                              Metrics& metrics) {
  ++metrics.pushes;
  metrics.note_message(action.payload.bit_size());
  const AgentId v = action.target;
  if (!faulty_[v]) {
    agents_[v]->on_push(make_context(v), sender, action.payload);
  }
}

void EngineCore::run_synchronous_round(const std::vector<bool>* awake_mask) {
  ensure_started();

  // Phase A: collect each awake agent's single active operation.
  std::uint32_t num_pulls = 0;
  std::uint32_t num_pushes = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (faulty_[i] || agents_[i]->done() ||
        (awake_mask != nullptr && !(*awake_mask)[i])) {
      actions_[i] = Action::idle();
      continue;
    }
    actions_[i] = agents_[i]->on_round(make_context(i));
    const ActionKind kind = actions_[i].kind;
    if (kind != ActionKind::kIdle) {
      assert(actions_[i].target < n_);
      ++metrics_.active_links;
      if (kind == ActionKind::kPull) ++num_pulls;
      else ++num_pushes;
    }
  }

  // A phase with no work is skipped outright — pull-free rounds (e.g. the
  // push steady state of a spread) drop two O(n) scans.  pull_replies_
  // slots are only ever written in phase B and cleared again in phase C,
  // so every slot is empty at round start (which is also why neither this
  // path nor the sharded one pre-clears them).
  if (num_pulls != 0) {
    // Phase B: serve all pull requests from round-start state.
    for (std::uint32_t i = 0; i < n_; ++i) {
      const Action& a = actions_[i];
      if (a.kind != ActionKind::kPull) continue;
      charge_pull_request(metrics_);
      pull_replies_[i] = serve_and_charge_pull(a.target, i, metrics_);
    }

    // Phase C: deliver pull replies in puller-label order.
    for (std::uint32_t i = 0; i < n_; ++i) {
      const Action& a = actions_[i];
      if (a.kind != ActionKind::kPull) continue;
      agents_[i]->on_pull_reply(make_context(i), a.target, pull_replies_[i]);
      pull_replies_[i] = {};
    }
  }

  // Phase D: deliver pushes in sender-label order.
  if (num_pushes != 0) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      const Action& a = actions_[i];
      if (a.kind != ActionKind::kPush) continue;
      execute_push(i, a, metrics_);
    }
  }

  ++time_;
  metrics_.rounds = time_;
}

void EngineCore::sequential_activation(AgentId u) {
  ensure_started();
  ++time_;
  metrics_.rounds = time_;
  if (agents_[u]->done()) return;  // A wasted activation.

  const Action action = agents_[u]->on_round(make_context(u));
  switch (action.kind) {
    case ActionKind::kIdle:
      return;
    case ActionKind::kPull: {
      ++metrics_.active_links;
      charge_pull_request(metrics_);
      // Done agents are still asked: in the sequential model a fast agent
      // finishes while slow ones are mid-audit, and whether a terminated
      // agent keeps serving is the agent's own policy (as in the
      // synchronous round).
      const Payload reply =
          serve_and_charge_pull(action.target, u, metrics_);
      agents_[u]->on_pull_reply(make_context(u), action.target, reply);
      return;
    }
    case ActionKind::kPush: {
      ++metrics_.active_links;
      execute_push(u, action, metrics_);
      return;
    }
  }
}

}  // namespace rfc::sim
