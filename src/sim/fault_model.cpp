#include "sim/fault_model.hpp"

#include <algorithm>

namespace rfc::sim {

const std::vector<FaultPlacement>& all_fault_placements() {
  static const std::vector<FaultPlacement> kAll = {
      FaultPlacement::kNone,   FaultPlacement::kRandom,
      FaultPlacement::kPrefix, FaultPlacement::kSuffix,
      FaultPlacement::kStride, FaultPlacement::kClustered,
  };
  return kAll;
}

std::string to_string(FaultPlacement p) {
  switch (p) {
    case FaultPlacement::kNone: return "none";
    case FaultPlacement::kRandom: return "random";
    case FaultPlacement::kPrefix: return "prefix";
    case FaultPlacement::kSuffix: return "suffix";
    case FaultPlacement::kStride: return "stride";
    case FaultPlacement::kClustered: return "clustered";
  }
  return "unknown";
}

std::vector<bool> make_fault_plan(FaultPlacement placement, std::uint32_t n,
                                  std::uint32_t num_faulty,
                                  rfc::support::Xoshiro256& rng) {
  std::vector<bool> plan(n, false);
  if (n == 0) return plan;
  const std::uint32_t f = std::min(num_faulty, n - 1);
  if (f == 0 || placement == FaultPlacement::kNone) return plan;

  switch (placement) {
    case FaultPlacement::kNone:
      break;
    case FaultPlacement::kRandom: {
      // Partial Fisher-Yates over the label set: first f entries die.
      std::vector<std::uint32_t> labels(n);
      for (std::uint32_t i = 0; i < n; ++i) labels[i] = i;
      for (std::uint32_t i = 0; i < f; ++i) {
        const auto j =
            i + static_cast<std::uint32_t>(rng.below(n - i));
        std::swap(labels[i], labels[j]);
        plan[labels[i]] = true;
      }
      break;
    }
    case FaultPlacement::kPrefix:
      for (std::uint32_t i = 0; i < f; ++i) plan[i] = true;
      break;
    case FaultPlacement::kSuffix:
      for (std::uint32_t i = 0; i < f; ++i) plan[n - 1 - i] = true;
      break;
    case FaultPlacement::kStride: {
      // f labels spaced as evenly as possible.
      for (std::uint32_t i = 0; i < f; ++i) {
        const auto idx = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(i) * n) / f);
        plan[idx] = true;
      }
      // Exact count: striding can collide only if f > n, which is excluded.
      break;
    }
    case FaultPlacement::kClustered: {
      const auto start = static_cast<std::uint32_t>(rng.below(n));
      for (std::uint32_t i = 0; i < f; ++i) plan[(start + i) % n] = true;
      break;
    }
  }
  return plan;
}

}  // namespace rfc::sim
