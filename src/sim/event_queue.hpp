// Pending-event priority queue for the continuous-time scheduling path.
//
// EventQueue keys at most one pending wake-up per agent by absolute virtual
// time and pops them in (time, label) order.  It is a binary min-heap with
// *lazy deletion*: schedule() and cancel() never search the heap — each
// agent carries a generation counter, bumped on every schedule and cancel,
// and a heap entry is live only while its recorded generation matches the
// agent's current one.  Stale entries are dropped when they surface at the
// top, or swept out wholesale when they outnumber the live ones, so the
// costs are
//
//   schedule / reschedule   O(log n) amortized
//   cancel                  O(1)  (the entry dies in place)
//   pop                     O(log n) amortized
//
// and the heap never holds more than 2·live() + kCompactionSlack entries
// after any operation (the compaction invariant, asserted by
// event_queue_test).  Generations compare by equality only, so counter
// wraparound is harmless as long as two coexisting entries for one agent
// never share a generation — they cannot, because every push uses a fresh
// value and compaction evicts stale entries long before 2^64 pushes; the
// `initial_generation` reset hook lets tests drive the counter across the
// wrap directly.  Equal times pop by smaller label, so the pop order is a
// pure function of the operation history.
//
// EventDrivenPoissonScheduler (sim/scheduler.hpp) builds its per-agent
// exponential clocks on this queue.  The ActiveSet helper below is the
// incremental form of the wakeable-label snapshot used by the sampling
// schedulers: built once from active_labels(), with done agents swap-removed
// as they are discovered instead of absorbing wasted draws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/agent.hpp"

namespace rfc::sim {

class EventQueue {
 public:
  using Generation = std::uint64_t;

  /// Stale entries tolerated beyond 2·live() before a compaction sweep;
  /// keeps tiny queues from compacting on every cancel.
  static constexpr std::size_t kCompactionSlack = 64;

  struct Event {
    double time;
    AgentId id;
  };

  /// An empty queue over `n` labels.  `initial_generation` pre-ages every
  /// per-agent counter — a test hook for exercising wraparound; the default
  /// is the natural zero.
  explicit EventQueue(std::uint32_t n = 0, Generation initial_generation = 0);

  /// Re-initializes to an empty queue over `n` labels (same semantics as
  /// constructing anew; storage is reused).
  void reset(std::uint32_t n, Generation initial_generation = 0);

  /// Label-space size (not the pending count).
  std::uint32_t n() const noexcept { return static_cast<std::uint32_t>(gen_.size()); }
  /// Number of live (pending, not cancelled) events.
  std::size_t live() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }
  /// Heap entries including stale ones; bounded by 2·live() +
  /// kCompactionSlack after every operation.
  std::size_t heap_size() const noexcept { return heap_.size(); }

  /// True when `u` has a pending event.
  bool scheduled(AgentId u) const { return pending_.at(u); }
  /// The pending event's time; only meaningful while scheduled(u).
  double time_of(AgentId u) const { return time_.at(u); }

  /// Schedules agent `u` at absolute time `time`, replacing any pending
  /// event for `u` (the replaced entry dies lazily).  O(log n) amortized.
  void schedule(AgentId u, double time);

  /// Cancels `u`'s pending event, if any.  O(1) amortized (lazy).
  void cancel(AgentId u);

  /// Removes and returns the earliest live event; ties on time break toward
  /// the smaller label.  Precondition: !empty().  O(log n) amortized.
  Event pop();

 private:
  struct Entry {
    double time;
    AgentId id;
    Generation gen;
  };

  /// Min-heap order on (time, id); std::push_heap and friends build a
  /// max-heap, so the comparator is the reverse.
  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }

  bool is_live(const Entry& e) const { return e.gen == gen_[e.id]; }
  void maybe_compact();

  std::vector<Entry> heap_;
  std::vector<Generation> gen_;  ///< Current generation, by label.
  std::vector<double> time_;     ///< Pending time, by label (while pending).
  std::vector<bool> pending_;    ///< Live-event flag, by label.
  std::size_t live_ = 0;
};

/// Incrementally maintained wakeable-label set for the sampling schedulers:
/// built once from EngineCore::active_labels(), sampled by index, and
/// compacted by swap-remove as agents are discovered done — O(1) per
/// removal, order not preserved.  PoissonClockScheduler draws from this set
/// so completed agents stop absorbing wake draws (and stop contributing to
/// the aggregate clock rate) from the first time they are drawn.
class ActiveSet {
 public:
  /// Adopts the label set; marks the set built.
  void build(std::vector<AgentId> labels) {
    labels_ = std::move(labels);
    built_ = true;
  }

  /// Clears back to the unbuilt state, keeping the grown capacity — the
  /// scheduler rebind path (Scheduler::attach may see a different core, so
  /// the labels must be refilled, but the allocation is reusable exactly
  /// like the shard routing queues').
  void reset() noexcept {
    labels_.clear();
    built_ = false;
  }

  /// Allocation-free rebuild: expose the storage for refill (e.g. via
  /// EngineCore::active_labels(out&)), then call mark_built().
  std::vector<AgentId>& mutable_labels() noexcept { return labels_; }
  void mark_built() noexcept { built_ = true; }

  bool built() const noexcept { return built_; }
  bool empty() const noexcept { return labels_.empty(); }
  std::size_t size() const noexcept { return labels_.size(); }
  AgentId at(std::size_t k) const { return labels_.at(k); }

  /// Swap-removes the label at index `k`.
  void swap_remove(std::size_t k) {
    labels_.at(k) = labels_.back();
    labels_.pop_back();
  }

 private:
  std::vector<AgentId> labels_;
  bool built_ = false;
};

}  // namespace rfc::sim
