// NetworkModel — the live message-layer adversary behind a NetworkSpec.
//
// The model answers one question per message: what does the network do to
// *this* frame?  Every verdict (drop / duplicate / reorder / delay /
// corrupt, and per-epoch crash churn) is a pure SplitMix64-style hash of
// (model seed, message kind, time, sender, target).  No RNG stream is
// consumed, so verdicts are independent of delivery order: the serial,
// cache-blocked, and sharded round paths reach bit-identical outcomes, and
// a model with all rates zero is indistinguishable from no model at all.
//
// Corruption is payload-aware.  Inline payloads are bit-flipped generically
// (same tag, same advertised bit size, one flipped bit chosen by the
// verdict hash); boxed payloads go through a per-tag PayloadOps registry so
// protocol payloads (certificates, vote intentions) can define what a
// flipped bit means for them.  Unregistered boxed tags pass through
// uncorrupted — a corruption is only *metered* when a payload actually
// changed.  The registry's clone hook exists because arena-boxed payloads
// die at the round barrier: a delayed push must deep-copy its payload to
// survive into a later round, and a tag that cannot be cloned is delivered
// immediately instead of delayed.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/payload.hpp"
#include "sim/topology.hpp"

namespace rfc::sim {

/// Message kinds the adversary distinguishes.  The enum value salts the
/// verdict hash so e.g. a pull request and the push sharing (time, sender,
/// target) draw independent verdicts.
enum class NetMessage : std::uint64_t {
  kPullRequest = 0x9e3779b97f4a7c15ull,
  kPullReply = 0xbf58476d1ce4e5b9ull,
  kPush = 0x94d049bb133111ebull,
};

/// Per-tag corruption/clone hooks for boxed payloads.
struct PayloadOps {
  /// Returns a tampered deep copy of `payload` (which bit flips is chosen
  /// by `salt`); an empty Payload means "cannot corrupt this one".
  Payload (*corrupt)(const Payload& payload, std::uint64_t salt);
  /// Returns a deep copy safe to retain across round boundaries (re-boxes
  /// arena-backed state on the heap); null means the tag cannot outlive
  /// its round.
  Payload (*clone)(const Payload& payload);
};

/// Registers (or replaces) the corruption/clone hooks for a boxed payload
/// tag.  Inline payloads never consult the registry.
void register_payload_ops(PayloadTag tag, PayloadOps ops);

/// Tampered copy of `payload`: generic bit flip for inline payloads,
/// registry hook for boxed ones.  Empty result means the payload could not
/// be corrupted (unregistered boxed tag, or an empty payload).
Payload corrupt_payload(const Payload& payload, std::uint64_t salt);

/// Deep copy of `payload` that survives round-arena resets, or an empty
/// Payload when the tag cannot be cloned (and the original is non-empty).
/// Inline payloads are trivially copied; boxed ones use the registry.
Payload clone_payload(const Payload& payload);

/// One push held back by the network adversary: due for delivery at the
/// start of round `due`'s push phase.  Reordered pushes keep due == origin
/// and re-enter at the end of their own delivery phase instead.  Delivery
/// sorts by (origin, sender) — unique per push, since an agent sends at
/// most one push per round — so the order cannot depend on how the pending
/// list was accumulated (serial, blocked, or per-shard).
struct DelayedPush {
  std::uint64_t due;
  std::uint64_t origin;  ///< Round the push was sent (sort key).
  AgentId sender;
  AgentId target;
  Payload payload;
};

class NetworkModel {
 public:
  struct Rates {
    double drop = 0.0;     ///< P(message lost), any kind.
    double dup = 0.0;      ///< P(push delivered twice).
    double reorder = 0.0;  ///< P(push deferred to end of delivery phase).
    double corrupt = 0.0;  ///< P(payload tampered in transit).
    double churn = 0.0;    ///< P(an up agent crashes, per epoch).
    std::uint64_t delay = 0;   ///< Max push delay in rounds (uniform 0..delay).
    std::uint64_t rejoin = 0;  ///< Rounds until a crashed agent returns (0: never).
    std::uint64_t seed = 0;    ///< Selects the fault stream.
  };

  NetworkModel() = default;
  explicit NetworkModel(const Rates& rates) : rates_(rates) {}
  virtual ~NetworkModel() = default;

  const Rates& rates() const noexcept { return rates_; }

  /// True when any per-message fault can fire (drop/dup/reorder/delay/
  /// corrupt).  The engine skips the whole fault stage when false.
  bool message_faults() const noexcept {
    return rates_.drop > 0.0 || rates_.dup > 0.0 || rates_.reorder > 0.0 ||
           rates_.corrupt > 0.0 || rates_.delay > 0;
  }

  /// True when agents may crash mid-run.
  bool has_churn() const noexcept { return rates_.churn > 0.0; }

  // --- Per-message verdicts (pure functions of the arguments). ---

  virtual bool drop(NetMessage kind, std::uint64_t time, AgentId sender,
                    AgentId target) const {
    return verdict(rates_.drop, static_cast<std::uint64_t>(kind) ^ kDropSalt,
                   time, sender, target);
  }

  virtual bool duplicate(std::uint64_t time, AgentId sender,
                         AgentId target) const {
    return verdict(rates_.dup, kDupSalt, time, sender, target);
  }

  virtual bool reorder(std::uint64_t time, AgentId sender,
                       AgentId target) const {
    return verdict(rates_.reorder, kReorderSalt, time, sender, target);
  }

  virtual bool corrupt(NetMessage kind, std::uint64_t time, AgentId sender,
                       AgentId target) const {
    return verdict(rates_.corrupt,
                   static_cast<std::uint64_t>(kind) ^ kCorruptSalt, time,
                   sender, target);
  }

  /// Which bit to flip when a corruption fires (feeds corrupt_payload).
  std::uint64_t corrupt_salt(std::uint64_t time, AgentId sender,
                             AgentId target) const {
    return hash(kCorruptSalt, time, sender, target);
  }

  /// Push delay in rounds, uniform in [0, rates().delay]; 0 means deliver
  /// this round as usual.
  virtual std::uint64_t delay_of(std::uint64_t time, AgentId sender,
                                 AgentId target) const {
    if (rates_.delay == 0) return 0;
    return hash(kDelaySalt, time, sender, target) % (rates_.delay + 1);
  }

  /// Does agent `agent` crash at churn epoch `epoch`?  Only consulted for
  /// agents that are currently up.
  virtual bool crashes(std::uint64_t epoch, AgentId agent) const {
    return verdict(rates_.churn, kChurnSalt, epoch, agent, agent);
  }

 private:
  static constexpr std::uint64_t kDropSalt = 0x2545f4914f6cdd1dull;
  static constexpr std::uint64_t kDupSalt = 0xd6e8feb86659fd93ull;
  static constexpr std::uint64_t kReorderSalt = 0xff51afd7ed558ccdull;
  static constexpr std::uint64_t kCorruptSalt = 0xc4ceb9fe1a85ec53ull;
  static constexpr std::uint64_t kDelaySalt = 0x9e6c63d0876a9f4bull;
  static constexpr std::uint64_t kChurnSalt = 0xa24baed4963ee407ull;

  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  std::uint64_t hash(std::uint64_t salt, std::uint64_t time, AgentId a,
                     AgentId b) const noexcept {
    std::uint64_t h = mix(rates_.seed + 0x9e3779b97f4a7c15ull);
    h = mix(h ^ salt);
    h = mix(h ^ time);
    h = mix(h ^ ((static_cast<std::uint64_t>(a) << 32) |
                 static_cast<std::uint64_t>(b)));
    return h;
  }

  bool verdict(double rate, std::uint64_t salt, std::uint64_t time, AgentId a,
               AgentId b) const noexcept {
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    const double u =
        static_cast<double>(hash(salt, time, a, b) >> 11) * 0x1.0p-53;
    return u < rate;
  }

  Rates rates_;
};

using NetworkModelPtr = std::unique_ptr<NetworkModel>;

}  // namespace rfc::sim
