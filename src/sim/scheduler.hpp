// Pluggable activation policies for the unified simulation engine.
//
// A Scheduler owns *when* agents run — activation order and the passage of
// simulated time — while EngineCore (sim/engine_core.hpp) owns *what*
// running means (phased delivery, fault silence, message accounting).  Eight
// policies ship:
//
//   * SynchronousScheduler — the paper's model (Section 2): every active
//     agent performs one operation per lock-step round.  Produces traces
//     bit-identical to the pre-refactor synchronous Engine.
//   * SequentialScheduler — the paper's second open problem: one uniformly
//     random active agent wakes per step.  Reproduces the pre-refactor
//     AsyncEngine step-for-step (same 0xA57C scheduler stream).
//   * PartialAsyncScheduler — each round wakes an independent Bernoulli(p)
//     subset of agents, interpolating between the two models above: p = 1
//     recovers lock-step rounds, p ≈ 1/n approximates sequential wake-ups.
//   * BatchedDeliveryScheduler — each sub-step wakes one *contiguous label
//     block* (a rack / shard) and runs a masked phased round over it,
//     cycling through the B blocks; a full sweep is one round of virtual
//     time.  Models rack-batched delivery and bridges to the sharded
//     executor: each sub-round reuses ShardedRoundExecutor's per-(src,dst)
//     queue merge, so batched traces stay deterministic and thread-scalable.
//   * PhaseAdversarialScheduler — seeded worst-case wake orderings for
//     robustness experiments, *adaptive* via EngineView: a victim subset
//     (seeded fraction, or pinned via victim_ids) is starved — always by
//     default, or only while a victim observes a target pipeline phase
//     (AdversarialConfig::target_phase, e.g. its voting window) — and the
//     spent starvation budget (wake-up denials) is metered into
//     Metrics::denials, optionally capped by AdversarialConfig::budget.
//   * ReactiveAdversarialScheduler — the fully adaptive adversary: the
//     victim set is not fixed at all but re-planned every step from
//     EngineView observations (AdversarialConfig::target — starve the
//     minimal-progress holder, the most-skewed laggard, or the agents at
//     the edge of completing their phase), under the same denial metering
//     and budget cap.
//   * PoissonClockScheduler — the literature's standard continuous-time
//     asynchronous model: every active agent carries an independent rate-λ
//     Poisson clock, so wake-ups are a rate-λ·|active| process (simulated
//     Gillespie-style: exponential inter-event times, uniform wake choice).
//   * EventDrivenPoissonScheduler — the same model simulated event-driven:
//     each agent's next wake is pre-drawn into a pending-event heap
//     (sim/event_queue.hpp) and the engine advances directly to the next
//     event — O(log n) per event instead of the scan path's O(n) run-loop
//     cost, equal in distribution by Poisson superposition.
//
// The engine↔scheduler contract is split in two: policies *observe* the
// execution through the read-only sim::EngineView handed to step() (clocks,
// per-agent done/faulty/phase, shard geometry) and *execute* through the
// EngineCore primitives.  Time is *virtual*: step() executes one scheduling
// event on the core and returns the simulated-time increment it represents.
// Round- and step-counting policies return 1.0 per event; batched delivery
// returns 1/B per sub-step; the Poisson clock returns Exp(λ·|active|)
// increments, so virtual time advances by ~1/λ per per-agent activation and
// a broadcast's Θ(log n) virtual-time bound can be read off directly.  The
// engine accumulates the increments into Metrics::virtual_time next to the
// discrete event count, and Engine::run_until / sim::Budget express run
// horizons on that axis.
//
// All scheduler randomness derives from the engine's master seed via
// distinct SplitMix streams, so a run stays pinned down by (config, agents,
// fault plan) regardless of policy.  Prefer selecting policies by value
// through sim::SchedulerSpec (sim/scheduler_spec.hpp), which adds a string
// round-trip and a registry; the factories below are the low-level API.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/agent.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharding.hpp"
#include "support/rng.hpp"

namespace rfc::sim {

class EngineView;  // sim/engine_view.hpp

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable policy name, for tables and traces.
  virtual const char* name() const noexcept = 0;

  /// Called once by the engine before any step.  The core's master seed is
  /// the only source of randomness a policy may draw from.
  virtual void attach(EngineCore& core);

  /// Executes one scheduling event on the core (a round or an activation,
  /// at the policy's discretion) and returns the simulated-time increment
  /// the event represents.  `view` is the read-only observation window over
  /// the same core — adaptive policies key decisions off it.  Discrete
  /// policies return 1.0; continuous-time policies return a positive real;
  /// a policy that had nothing left to schedule returns 0.0.  Policies must
  /// ensure_started() (directly or via an execution primitive) before
  /// touching agents.
  virtual double step(EngineCore& core, const EngineView& view) = 0;

  /// True when the policy tracks its own pending-event set and therefore
  /// knows, in O(1), when nothing is left to schedule.  Engine::run loops
  /// such policies on exhausted() instead of the O(n) all_done() scan — the
  /// event-driven path's run-loop cost drops from O(n) to O(log n) per
  /// event.
  virtual bool self_terminating() const noexcept { return false; }

  /// For self-terminating policies: true once no live pending event
  /// remains, i.e. the next step() would return 0.0.  Policies that are not
  /// self-terminating always report false (the run loop ignores it).
  virtual bool exhausted() const noexcept { return false; }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// The paper's synchronous model: every active agent acts each round.
/// With sharding.shards > 1 the phased round runs over label shards on a
/// thread pool (sim/sharding.hpp), bit-identical to the serial round for
/// every (shards, threads) — S=1 *is* the serial engine.
class SynchronousScheduler final : public Scheduler {
 public:
  explicit SynchronousScheduler(ShardingConfig sharding = {});

  const char* name() const noexcept override { return "synchronous"; }
  const ShardingConfig& sharding() const noexcept {
    return executor_.config();
  }
  double step(EngineCore& core, const EngineView& view) override;

 private:
  ShardedRoundExecutor executor_;  ///< Delegates to the serial round at S=1.
};

/// One uniformly random active agent wakes per step (the sequential GOSSIP
/// model).  By default (`wasted=keep`, the pinned trace contract) wake-ups
/// are drawn over the *initial* active list for the whole run, so waking a
/// finished agent consumes the step as a wasted activation — exactly the
/// coupon-collector semantics of the sequential analyses.  With
/// `wasted=skip` the scheduler maintains the live set incrementally instead
/// (ActiveSet swap-remove, as the Poisson sampler does): a drawn agent
/// observed done() is removed and the draw repeats, so no step is wasted
/// and an exhausted set ends the run.  Same RNG stream, different
/// consumption — the two modes are separately pinned, never bit-comparable.
class SequentialScheduler final : public Scheduler {
 public:
  /// Stream tag of the wake-up RNG; fixed by the legacy AsyncEngine and
  /// load-bearing for trace compatibility.
  static constexpr std::uint64_t kStream = 0xA57Cu;

  explicit SequentialScheduler(bool skip_wasted = false);

  const char* name() const noexcept override { return "sequential"; }
  bool skip_wasted() const noexcept { return skip_wasted_; }
  void attach(EngineCore& core) override;
  double step(EngineCore& core, const EngineView& view) override;

 private:
  rfc::support::Xoshiro256 rng_{0};
  ActiveSet active_;  ///< Wake pool; done agents swap-removed under skip.
  bool skip_wasted_;
};

/// Each round wakes an independent Bernoulli(p) subset of the agents and
/// runs a synchronous phased round over that subset.  Accepts the same
/// sharding configuration as SynchronousScheduler (the masked round shards
/// identically).
class PartialAsyncScheduler final : public Scheduler {
 public:
  static constexpr std::uint64_t kStream = 0x9A27u;

  /// `wake_probability` must lie in [0, 1].
  explicit PartialAsyncScheduler(double wake_probability,
                                 ShardingConfig sharding = {});

  const char* name() const noexcept override { return "partial-async"; }
  double wake_probability() const noexcept { return p_; }
  const ShardingConfig& sharding() const noexcept {
    return executor_.config();
  }
  void attach(EngineCore& core) override;
  double step(EngineCore& core, const EngineView& view) override;

 private:
  double p_;
  rfc::support::Xoshiro256 rng_{0};
  std::vector<bool> awake_;  ///< Scratch mask reused across rounds.
  ShardedRoundExecutor executor_;  ///< Delegates to the serial round at S=1.
};

struct BatchedDeliveryConfig {
  /// Contiguous label blocks the label space is cut into (the racks); one
  /// block wakes per sub-step, in rotation.  Must be positive; values above
  /// n collapse to n.  1 = the synchronous round.
  std::uint32_t blocks = 2;
  /// Sharding of each masked sub-round (sim/sharding.hpp); independent of
  /// the block partition, bit-identical for every (shards, threads).
  ShardingConfig sharding = {};
};

/// Topology-aware batched delivery: sub-step k wakes the agents of
/// contiguous block k mod B (the partition rule shared with the sharded
/// executor, so blocks model racks/shards) and runs a masked phased round
/// over them.  A full rotation activates every agent once, so one sub-step
/// is 1/B of a round of virtual time and budgets in rounds transfer.
class BatchedDeliveryScheduler final : public Scheduler {
 public:
  explicit BatchedDeliveryScheduler(BatchedDeliveryConfig cfg = {});

  const char* name() const noexcept override { return "batched"; }
  const BatchedDeliveryConfig& config() const noexcept { return cfg_; }
  double step(EngineCore& core, const EngineView& view) override;

 private:
  BatchedDeliveryConfig cfg_;
  ShardedRoundExecutor executor_;
  std::vector<bool> awake_;     ///< Scratch mask reused across sub-steps.
  std::uint32_t bound_n_ = 0;
  std::uint32_t blocks_ = 1;    ///< Effective count, <= cfg.blocks.
  std::uint32_t next_block_ = 0;
  std::uint64_t sub_steps_ = 0;  ///< Executed sub-steps; keeps the
                                 ///< accumulated virtual time pinned to
                                 ///< exactly sub_steps_/blocks_.
};

/// Observation-driven targeting rules of the *reactive* adversary
/// (ReactiveAdversarialScheduler): instead of pinning a victim set up
/// front, the policy re-ranks the wakeable agents from EngineView every
/// step (each step is a round of the sequential model) and starves the
/// worst-ranked.  String forms ("min-cert", "laggard", "quorum-edge") are
/// the `adversarial:target=` scheduler parameter.
enum class ReactiveTarget : std::uint8_t {
  kNone = 0,     ///< Not reactive: the static/phase-gated victim set.
  kMinCert,      ///< Starve the minimal Agent::progress() holders — the
                 ///< current weakest certificate/progress owners.
  kLaggard,      ///< Starve the least-recently-woken agents — the maximal
                 ///< local-clock skew, measured from the scheduler's own
                 ///< wake log (self-reinforcing: a starved laggard only
                 ///< falls further behind).
  kQuorumEdge,   ///< Starve the agents closest to completing their current
                 ///< pipeline stage (largest fractional progress) — denial
                 ///< lands exactly where one more wake-up would let them
                 ///< cross a phase boundary.
};

/// Stable names ("min-cert", ...), used by `adversarial:target=`; kNone has
/// no name.
const char* to_string(ReactiveTarget target) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown rule names
/// (strict, mirroring the CliArgs/SchedulerSpec parsing contract).
ReactiveTarget parse_reactive_target(const std::string& text);

struct AdversarialConfig {
  /// Fraction of active agents starved (victims are a seeded sample).
  /// Ignored when `victim_ids` is non-empty.  For the reactive adversary
  /// (`target` set) it sizes the starved set instead: the
  /// ceil(fraction·wakeable) worst-ranked agents starve each step.
  double victim_fraction = 0.25;
  /// Explicit victim set; overrides `victim_fraction` when non-empty.
  /// Faulty or out-of-range labels in the set are skipped (they never wake
  /// anyway), so one list works across a sweep over n.  Incompatible with
  /// `target` (a reactive adversary selects victims from observations).
  std::vector<AgentId> victim_ids = {};
  /// Reactive targeting rule; kNone (the default) keeps the victim set
  /// fixed for the whole run (the static / phase-gated adversary).
  ReactiveTarget target = ReactiveTarget::kNone;
  /// Starve victims only while they observe this phase (Agent::phase(),
  /// read through EngineView) — e.g. kVote pins an agent exactly during its
  /// voting window.  kUnknown (the default) starves victims regardless of
  /// phase: the classic static adversary.
  AgentPhase target_phase = AgentPhase::kUnknown;
  /// Cap on wake-up denials — the starvation budget.  0 = unbounded.  Once
  /// spent, victims wake like everyone else; the spent amount is metered
  /// into Metrics::denials either way.
  std::uint64_t budget = 0;
  /// Stream tag mixed into the master seed for the adversary's choices;
  /// vary it to sample different worst-case orderings at a fixed seed.
  std::uint64_t stream = 0xADF0u;
  /// `wasted=skip`: prune finished agents from the wake pool *eagerly* by
  /// draining the engine's done log each step, instead of the default lazy
  /// removal when the round-robin cursor happens upon them (`wasted=keep`,
  /// the pinned contract).  Pruning swap-removes at different pool
  /// positions, so the walk order — and hence the trace — differs between
  /// the modes; each is pinned separately.  The payoff is sparse-tail cost:
  /// the pool holds only live agents, so the reactive re-ranking pass is
  /// O(live) rather than O(pool including the dead).  With the done log
  /// unavailable (non-cacheable agents) skip falls back to keep's lazy
  /// behavior.
  bool skip_wasted = false;
};

/// Seeded worst-case sequential wake orderings, with optional phase-aware
/// targeting.  A seeded permutation of the active labels fixes the
/// round-robin wake order; victims encountered in the walk are passed over
/// (one metered denial each) while they match the starvation predicate —
/// always, for the static adversary, or only while observing
/// `target_phase`, for the adaptive one — and the walk wakes the first
/// non-starved agent.  When every remaining agent is starved the scheduler
/// must still schedule someone: it wakes the round-robin head and charges
/// nothing (an adversary that delays everyone equally delays no one).
/// With an empty victim set this degenerates to a deterministic round-robin
/// over a seeded permutation.
///
/// The walk mechanics (denial metering, budget cap, all-starved rule) are
/// shared with the *reactive* subclass below through two protected hooks:
/// plan_victims() recomputes the victim mask before each walk (a no-op
/// here — this policy plans once), and note_wake() observes the chosen
/// agent (reactive policies log wake clocks off it).
class PhaseAdversarialScheduler : public Scheduler {
 public:
  explicit PhaseAdversarialScheduler(AdversarialConfig cfg = {});

  const char* name() const noexcept override { return "adversarial"; }
  const AdversarialConfig& config() const noexcept { return cfg_; }
  /// Denials spent so far (also accumulated into Metrics::denials).
  std::uint64_t denials_spent() const noexcept { return spent_; }
  void attach(EngineCore& core) override;
  double step(EngineCore& core, const EngineView& view) override;

 protected:
  /// Recomputes victim_ before each round-robin walk.  The base policy
  /// plans once in build_order and leaves the set fixed; reactive policies
  /// override this to re-rank the pool from EngineView every step.
  virtual void plan_victims(EngineCore& core, const EngineView& view);

  /// Called with the agent about to wake, before the activation executes.
  virtual void note_wake(AgentId u);

  AdversarialConfig cfg_;
  rfc::support::Xoshiro256 rng_{0};
  std::vector<AgentId> pool_;  ///< Seeded permutation; done agents removed.
  std::vector<bool> victim_;   ///< Victim membership, by label.

 private:
  void build_order(EngineCore& core);
  /// Swap-removes pool_[k], keeping pool_pos_ and the cursor consistent.
  void pool_swap_remove(std::size_t k);
  /// `wasted=skip`: drains the core's done log from the last cursor and
  /// swap-removes the newly finished agents from the pool (O(1) each via
  /// the label→position map) — the eager counterpart of the walk's lazy
  /// removal.
  void prune_pool(EngineCore& core);

  static constexpr std::uint32_t kNoPoolPos = 0xFFFFFFFFu;

  /// Per-label id of the last walk that skipped it — dedups denial charges
  /// when a swap-removal rotates a passed victim back in front of the
  /// cursor within one walk.
  std::vector<std::uint64_t> walk_stamp_;
  /// Label → index in pool_ (kNoPoolPos when absent); maintained only under
  /// `wasted=skip`, where prune_pool needs O(1) removal by label.
  std::vector<std::uint32_t> pool_pos_;
  std::size_t done_log_cursor_ = 0;  ///< Drained prefix of core.done_log().
  std::uint64_t walk_id_ = 0;
  std::size_t cursor_ = 0;
  std::uint64_t spent_ = 0;
  bool order_built_ = false;
};

/// The paper's worst-case adversary made concrete: a reactive policy layer
/// over PhaseAdversarialScheduler that re-plans its victim set *every step*
/// (each step is a round of the sequential model) from EngineView
/// observations, instead of pinning victims up front.  The wakeable pool is
/// ranked by the configured ReactiveTarget rule — minimal progress
/// (min-cert), oldest wake clock (laggard), or largest fractional progress
/// (quorum-edge) — and the ceil(victim_fraction·pool) worst-ranked agents
/// starve, under the same phase gate, budget cap, denial metering, and
/// all-starved escape rule as the base policy.  Ties rank by label, so runs
/// stay pinned by the master seed.
class ReactiveAdversarialScheduler final : public PhaseAdversarialScheduler {
 public:
  /// `cfg.target` must be a real rule (not kNone) and `cfg.victim_ids` must
  /// be empty; throws std::invalid_argument otherwise.
  explicit ReactiveAdversarialScheduler(AdversarialConfig cfg);

  const char* name() const noexcept override { return "reactive-adversarial"; }

 protected:
  void plan_victims(EngineCore& core, const EngineView& view) override;
  void note_wake(AgentId u) override;

 private:
  /// One ranking entry: the rule's key (smaller = starved first) plus the
  /// label tie-break that makes the top-k set unique and deterministic.
  struct Ranked {
    double key;
    AgentId id;
  };

  /// Wake log for the laggard rule: monotone wake counter per label, 0 =
  /// never woken.  Self-maintained — clock skew is the scheduler's own
  /// observable, no agent hook needed.
  std::vector<std::uint64_t> last_wake_;
  std::uint64_t wake_counter_ = 0;
  std::vector<Ranked> ranked_;  ///< Scratch: pool re-keyed per step.
  /// Labels whose victim_ bit the last plan set — clearing exactly these
  /// replaces the former O(n) std::fill per step, keeping the per-step cost
  /// O(pool + starved), which under `wasted=skip` is O(live).
  std::vector<AgentId> marked_;
};

/// Continuous-time asynchronous gossip: each active agent wakes at the
/// ticks of an independent rate-`rate` Poisson clock.  Simulated in the
/// Gillespie style — per event, one uniformly random active agent wakes
/// (drawn first) and virtual time advances by Exp(rate·|active|) (drawn
/// second); the draw order is part of the pinned trace contract.  The
/// discrete event count matches the sequential model's step count in
/// distribution of wake choices, so step budgets transfer; only the time
/// axis changes.
///
/// Trace contract (bumped in PR 6): agents that finish after attach() no
/// longer absorb wake draws as no-ops — a drawn agent observed done() is
/// swap-removed from the active set and the draw repeats, so simulated time
/// is never spent waking dead clocks and the aggregate rate λ·|active|
/// shrinks as agents complete.  The compaction is *lazy*: an agent stops
/// contributing to the rate the first time it is drawn after finishing, not
/// the instant it finishes.  Runs over never-done agent populations (the
/// pinned uniformity/determinism suites) draw the exact pre-bump sequence;
/// done-capable workloads see fewer events to completion.
class PoissonClockScheduler final : public Scheduler {
 public:
  static constexpr std::uint64_t kStream = 0x9015u;

  /// `rate` is each agent's clock rate λ; must be positive.
  explicit PoissonClockScheduler(double rate = 1.0);

  const char* name() const noexcept override { return "poisson"; }
  double rate() const noexcept { return rate_; }
  void attach(EngineCore& core) override;
  double step(EngineCore& core, const EngineView& view) override;

 private:
  double rate_;
  rfc::support::Xoshiro256 rng_{0};
  /// Wakeable labels; done agents swap-removed lazily.  attach() resets it
  /// (capacity kept), so a rebind to another core rebuilds allocation-free
  /// instead of sampling the previous core's stale label set.
  ActiveSet active_;
};

/// The Poisson-clock model simulated event-driven (`poisson:queue=heap`):
/// every active agent's *next* wake time is pre-drawn — independent Exp(λ)
/// inter-arrival per agent, the superposition theorem's other face — and
/// held in a pending-event min-heap (sim/event_queue.hpp).  Each step pops
/// the earliest event, wakes that agent, and re-draws its next tick; agents
/// observed done() at pop time are dropped from the heap instead of wasting
/// a redraw, and agents that finish during their own activation are simply
/// not rescheduled.  Per event the cost is O(log n), and because the policy
/// is self_terminating() the engine's run loop skips its O(n) completion
/// scan — the whole continuous-time path becomes O(log n) per event.
///
/// Distribution contract: wake choices are uniform over the live set and
/// inter-event times are Exp(λ·|live|) — identical in law to the scan
/// path (chi-square-tested in scheduler_differential_test) — but the RNG
/// stream and draw order differ, so traces are *not* bit-comparable with
/// `queue=scan`; end states under matched seeds are compared
/// distributionally instead.
class EventDrivenPoissonScheduler final : public Scheduler {
 public:
  /// Distinct stream tag: the heap path draws per-agent exponentials, not
  /// the scan path's (uniform agent, aggregate exponential) pairs, so the
  /// streams must never be conflated.
  static constexpr std::uint64_t kStream = 0x93B7u;

  /// `rate` is each agent's clock rate λ; must be positive.
  explicit EventDrivenPoissonScheduler(double rate = 1.0);

  const char* name() const noexcept override { return "poisson-heap"; }
  double rate() const noexcept { return rate_; }
  bool self_terminating() const noexcept override { return true; }
  bool exhausted() const noexcept override {
    return built_ && queue_.empty();
  }
  void attach(EngineCore& core) override;
  double step(EngineCore& core, const EngineView& view) override;

 private:
  /// One Exp(rate_) inter-arrival draw.
  double exp_interarrival();

  double rate_;
  rfc::support::Xoshiro256 rng_{0};
  EventQueue queue_;
  std::vector<AgentId> labels_scratch_;  ///< Build-order scratch, reused.
  double now_ = 0.0;  ///< Time of the last popped event.
  bool built_ = false;  ///< Cleared by attach(): a rebind rebuilds the heap.
};

SchedulerPtr make_synchronous_scheduler(ShardingConfig sharding = {});
SchedulerPtr make_sequential_scheduler(bool skip_wasted = false);
SchedulerPtr make_partial_async_scheduler(double wake_probability,
                                          ShardingConfig sharding = {});
SchedulerPtr make_batched_delivery_scheduler(BatchedDeliveryConfig cfg = {});
SchedulerPtr make_adversarial_scheduler(AdversarialConfig cfg = {});
SchedulerPtr make_poisson_clock_scheduler(double rate = 1.0);
SchedulerPtr make_event_driven_poisson_scheduler(double rate = 1.0);

}  // namespace rfc::sim
