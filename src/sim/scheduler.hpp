// Pluggable activation policies for the unified simulation engine.
//
// A Scheduler owns *when* agents run — activation order and the passage of
// simulated time — while EngineCore (sim/engine_core.hpp) owns *what*
// running means (phased delivery, fault silence, message accounting).  Five
// policies ship:
//
//   * SynchronousScheduler — the paper's model (Section 2): every active
//     agent performs one operation per lock-step round.  Produces traces
//     bit-identical to the pre-refactor synchronous Engine.
//   * SequentialScheduler — the paper's second open problem: one uniformly
//     random active agent wakes per step.  Reproduces the pre-refactor
//     AsyncEngine step-for-step (same 0xA57C scheduler stream).
//   * PartialAsyncScheduler — each round wakes an independent Bernoulli(p)
//     subset of agents, interpolating between the two models above: p = 1
//     recovers lock-step rounds, p ≈ 1/n approximates sequential wake-ups.
//   * AdversarialScheduler — seeded worst-case wake orderings for
//     robustness experiments: a victim subset (seeded, or pinned via
//     victim_ids) is starved until every other agent has finished, the rest
//     are woken round-robin in a seeded permutation.
//   * PoissonClockScheduler — the literature's standard continuous-time
//     asynchronous model: every active agent carries an independent rate-λ
//     Poisson clock, so wake-ups are a rate-λ·|active| process (simulated
//     Gillespie-style: exponential inter-event times, uniform wake choice).
//
// Time is *virtual*: step() executes one scheduling event on the core and
// returns the simulated-time increment it represents.  Round- and
// step-counting policies return 1.0 per event; the Poisson clock returns
// Exp(λ·|active|) increments, so virtual time advances by ~1/λ per
// per-agent activation and a broadcast's Θ(log n) virtual-time bound can be
// read off directly.  The engine accumulates the increments into
// Metrics::virtual_time next to the discrete event count.
//
// All scheduler randomness derives from the engine's master seed via
// distinct SplitMix streams, so a run stays pinned down by (config, agents,
// fault plan) regardless of policy.  Prefer selecting policies by value
// through sim::SchedulerSpec (sim/scheduler_spec.hpp), which adds a string
// round-trip and a registry; the factories below are the low-level API.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/agent.hpp"
#include "sim/sharding.hpp"
#include "support/rng.hpp"

namespace rfc::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable policy name, for tables and traces.
  virtual const char* name() const noexcept = 0;

  /// Called once by the engine before any step.  The core's master seed is
  /// the only source of randomness a policy may draw from.
  virtual void attach(EngineCore& core);

  /// Executes one scheduling event on the core (a round or an activation,
  /// at the policy's discretion; the core is already started) and returns
  /// the simulated-time increment the event represents.  Discrete policies
  /// return 1.0; continuous-time policies return a positive real; a policy
  /// that had nothing left to schedule returns 0.0.
  virtual double step(EngineCore& core) = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// The paper's synchronous model: every active agent acts each round.
/// With sharding.shards > 1 the phased round runs over label shards on a
/// thread pool (sim/sharding.hpp), bit-identical to the serial round for
/// every (shards, threads) — S=1 *is* the serial engine.
class SynchronousScheduler final : public Scheduler {
 public:
  explicit SynchronousScheduler(ShardingConfig sharding = {});

  const char* name() const noexcept override { return "synchronous"; }
  const ShardingConfig& sharding() const noexcept {
    return executor_.config();
  }
  double step(EngineCore& core) override;

 private:
  ShardedRoundExecutor executor_;  ///< Delegates to the serial round at S=1.
};

/// One uniformly random active agent wakes per step (the sequential GOSSIP
/// model).  Wasted activations (done agents) consume steps, as in the
/// coupon-collector analyses.
class SequentialScheduler final : public Scheduler {
 public:
  /// Stream tag of the wake-up RNG; fixed by the legacy AsyncEngine and
  /// load-bearing for trace compatibility.
  static constexpr std::uint64_t kStream = 0xA57Cu;

  const char* name() const noexcept override { return "sequential"; }
  void attach(EngineCore& core) override;
  double step(EngineCore& core) override;

 private:
  rfc::support::Xoshiro256 rng_{0};
  std::vector<AgentId> active_;  ///< Labels eligible to wake.
  bool active_built_ = false;
};

/// Each round wakes an independent Bernoulli(p) subset of the agents and
/// runs a synchronous phased round over that subset.  Accepts the same
/// sharding configuration as SynchronousScheduler (the masked round shards
/// identically).
class PartialAsyncScheduler final : public Scheduler {
 public:
  static constexpr std::uint64_t kStream = 0x9A27u;

  /// `wake_probability` must lie in [0, 1].
  explicit PartialAsyncScheduler(double wake_probability,
                                 ShardingConfig sharding = {});

  const char* name() const noexcept override { return "partial-async"; }
  double wake_probability() const noexcept { return p_; }
  const ShardingConfig& sharding() const noexcept {
    return executor_.config();
  }
  void attach(EngineCore& core) override;
  double step(EngineCore& core) override;

 private:
  double p_;
  rfc::support::Xoshiro256 rng_{0};
  std::vector<bool> awake_;  ///< Scratch mask reused across rounds.
  ShardedRoundExecutor executor_;  ///< Delegates to the serial round at S=1.
};

struct AdversarialConfig {
  /// Fraction of active agents starved until everyone else is done().
  /// Ignored when `victim_ids` is non-empty.
  double victim_fraction = 0.25;
  /// Explicit victim set; overrides `victim_fraction` when non-empty.
  /// Faulty or out-of-range labels in the set are skipped (they never wake
  /// anyway), so one list works across a sweep over n.  Groundwork for
  /// phase-aware adversaries that must pin specific agents.
  std::vector<AgentId> victim_ids = {};
  /// Stream tag mixed into the master seed for the adversary's choices;
  /// vary it to sample different worst-case orderings at a fixed seed.
  std::uint64_t stream = 0xADF0u;
};

/// Seeded worst-case sequential wake orderings.  A seeded permutation fixes
/// the wake order; its first ⌈victim_fraction·active⌉ entries (or the
/// explicit victim_ids set) are starved until every non-victim reports
/// done(), modelling a scheduler that maximally delays a coalition of
/// agents.  With an empty victim set this degenerates to a deterministic
/// round-robin over a seeded permutation.
class AdversarialScheduler final : public Scheduler {
 public:
  explicit AdversarialScheduler(AdversarialConfig cfg = {});

  const char* name() const noexcept override { return "adversarial"; }
  const AdversarialConfig& config() const noexcept { return cfg_; }
  void attach(EngineCore& core) override;
  double step(EngineCore& core) override;

 private:
  void build_order(EngineCore& core);
  /// Next not-done agent from `pool`, round-robin from `cursor`; done
  /// agents are swap-removed as encountered (amortized O(1) per step).
  /// kNoAgent when the pool has emptied.
  static AgentId next_from(std::vector<AgentId>& pool, std::size_t& cursor,
                           EngineCore& core);

  AdversarialConfig cfg_;
  rfc::support::Xoshiro256 rng_{0};
  std::vector<AgentId> favored_;  ///< Woken while any of them is not done.
  std::vector<AgentId> victims_;  ///< Starved until then.
  std::size_t favored_cursor_ = 0;
  std::size_t victim_cursor_ = 0;
  bool order_built_ = false;
};

/// Continuous-time asynchronous gossip: each active agent wakes at the
/// ticks of an independent rate-`rate` Poisson clock.  Simulated in the
/// Gillespie style — per event, one uniformly random active agent wakes
/// (drawn first) and virtual time advances by Exp(rate·|active|) (drawn
/// second); the draw order is part of the pinned trace contract.  The
/// discrete event count matches the sequential model's step count in
/// distribution of wake choices, so step budgets transfer; only the time
/// axis changes.
class PoissonClockScheduler final : public Scheduler {
 public:
  static constexpr std::uint64_t kStream = 0x9015u;

  /// `rate` is each agent's clock rate λ; must be positive.
  explicit PoissonClockScheduler(double rate = 1.0);

  const char* name() const noexcept override { return "poisson"; }
  double rate() const noexcept { return rate_; }
  void attach(EngineCore& core) override;
  double step(EngineCore& core) override;

 private:
  double rate_;
  rfc::support::Xoshiro256 rng_{0};
  std::vector<AgentId> active_;  ///< Labels eligible to wake.
  bool active_built_ = false;
};

SchedulerPtr make_synchronous_scheduler(ShardingConfig sharding = {});
SchedulerPtr make_sequential_scheduler();
SchedulerPtr make_partial_async_scheduler(double wake_probability,
                                          ShardingConfig sharding = {});
SchedulerPtr make_adversarial_scheduler(AdversarialConfig cfg = {});
SchedulerPtr make_poisson_clock_scheduler(double rate = 1.0);

}  // namespace rfc::sim
