#include "sim/sharding.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sim/engine_core.hpp"
#include "support/thread_pool.hpp"

namespace rfc::sim {

ShardedRoundExecutor::ShardedRoundExecutor(ShardingConfig cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) {
    throw std::invalid_argument(
        "ShardedRoundExecutor: shards must be positive");
  }
}

ShardedRoundExecutor::~ShardedRoundExecutor() = default;

void ShardedRoundExecutor::bind(EngineCore& core) {
  if (bound_n_ == core.n()) return;
  bound_n_ = core.n();
  // More shards than labels would only add empty tasks.
  shards_ = cfg_.shards < bound_n_ ? cfg_.shards : bound_n_;
  shard_begin_.resize(shards_ + 1);
  for (std::uint32_t s = 0; s <= shards_; ++s) {
    shard_begin_[s] = contiguous_block_begin(bound_n_, shards_, s);
  }
  shard_of_.resize(bound_n_);
  for (std::uint32_t s = 0; s < shards_; ++s) {
    for (std::uint32_t i = shard_begin_[s]; i < shard_begin_[s + 1]; ++i) {
      shard_of_[i] = s;
    }
  }
  shard_metrics_.assign(shards_, Metrics{});
  shard_delayed_.resize(shards_);
  shard_deferred_.resize(shards_);
  // resize + clear instead of assign: a rebind to the same geometry keeps
  // the queues' grown capacity (assign would discard it).
  pull_queues_.resize(static_cast<std::size_t>(shards_) * shards_);
  push_queues_.resize(static_cast<std::size_t>(shards_) * shards_);
  shard_pullers_.resize(shards_);
  for (auto& q : pull_queues_) q.clear();
  for (auto& q : push_queues_) q.clear();
  for (auto& q : shard_pullers_) q.clear();
  core.ensure_arenas(shards_);  // One round arena per shard.
  if (shards_ <= 1) return;
  // Agents sharing mutable state across labels (Agent::shard_safe() ==
  // false, e.g. the rational::Coalition blackboard) would race the parallel
  // phases — refuse loudly instead.  Missing agents are left for
  // ensure_started's friendlier diagnostic.
  for (std::uint32_t i = 0; i < bound_n_; ++i) {
    if (core.agents_[i] != nullptr && !core.agents_[i]->shard_safe()) {
      throw std::invalid_argument(
          "ShardedRoundExecutor: agent " + std::to_string(i) +
          " shares mutable state across labels (shard_safe() == false) and "
          "cannot run under a sharded round; use shards=1");
    }
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<rfc::support::ThreadPool>(cfg_.threads);
  }
  // Shard-local RNG prefetch: derive each shard's per-agent streams on its
  // own worker before the agents start.  The streams are a pure function of
  // (seed, label), so this is the serial derivation reordered — traces are
  // untouched, only the O(n) SplitMix expansion leaves the serial path.
  if (!core.rngs_seeded_) {
    parallel_phase([&](std::uint32_t s) {
      core.seed_rng_block(shard_begin_[s], shard_begin_[s + 1]);
    });
    core.rngs_seeded_ = true;
  }
}

void ShardedRoundExecutor::parallel_phase(
    const std::function<void(std::uint32_t)>& fn) {
  // An exception from an agent callback must reach the caller exactly as
  // on the serial path (where it unwinds out of Engine::step), not
  // std::terminate the process from a pool worker.  First one wins; the
  // round's state is partially applied either way, as with serial throws.
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (std::uint32_t s = 0; s < shards_; ++s) {
    pool_->submit([&, s] {
      try {
        fn(s);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    });
  }
  pool_->wait_idle();  // Barrier: phases never overlap.
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ShardedRoundExecutor::run_round(EngineCore& core,
                                     const std::vector<bool>* awake_mask) {
  // Degenerate cases are exactly the serial engine: an unsharded config
  // never even binds (the default scheduler pays nothing for owning an
  // executor), and a shard count the label space cannot fill collapses
  // after bind().
  if (cfg_.shards <= 1) {
    core.run_synchronous_round(awake_mask);
    return;
  }
  // bind() before ensure_started(): the first bind prefetches the per-agent
  // RNG blocks in parallel, which must precede the agents' on_start draws.
  bind(core);
  core.ensure_started();
  if (shards_ <= 1) {
    core.run_synchronous_round(awake_mask);
    return;
  }
  core.advance_churn(core.time_);  // Serial, pre-phase: one epoch per round.
  const std::uint32_t S = shards_;
  // The shard-barrier arena reset: last round's arena payloads die here.
  core.reset_round_arenas();
  for (Metrics& m : shard_metrics_) m = Metrics{};
  for (auto& q : pull_queues_) q.clear();
  for (auto& q : push_queues_) q.clear();
  for (auto& q : shard_pullers_) q.clear();

  // Phase A: collect each awake agent's single active operation (by
  // self-shard) and route it to its destination shard.  With the SoA caches
  // live each shard walks its segment of the core's label-ordered live list
  // (found by binary search — the list is sorted) instead of its full label
  // range; the list is compacted at the barrier (recount_done), never here,
  // so the shards only read it.  Pullers are listed per shard for phase C.
  parallel_phase([&](std::uint32_t s) {
    Metrics& m = shard_metrics_[s];
    support::Arena* arena = core.round_arena(s);
    std::vector<AgentId>& pullers = shard_pullers_[s];
    const auto collect = [&](AgentId i) {
      core.actions_[i] =
          core.agents_[i]->on_round(core.make_context(i, arena));
      core.note_activation_sharded(i);
      const Action& a = core.actions_[i];
      if (a.kind == ActionKind::kIdle) return;
      assert(a.target < core.n_);
      ++m.active_links;
      if (a.kind == ActionKind::kPull) {
        // The request header is charged at the requester, as in phase B of
        // the serial round (sums are merge-order independent).
        core.charge_pull_request(m);
        pullers.push_back(i);
        pull_queues_[static_cast<std::size_t>(s) * S + shard_of_[a.target]]
            .push_back(PullItem{i, a.target});
      } else {
        push_queues_[static_cast<std::size_t>(s) * S + shard_of_[a.target]]
            .push_back(i);
      }
    };
    if (core.obs_cache_enabled_) {
      const auto begin = std::lower_bound(core.live_list_.begin(),
                                          core.live_list_.end(),
                                          shard_begin_[s]);
      const auto end = std::lower_bound(begin, core.live_list_.end(),
                                        shard_begin_[s + 1]);
      for (auto it = begin; it != end; ++it) {
        const AgentId i = *it;
        if (core.done_[i] != 0 || core.is_down(i) ||
            (awake_mask != nullptr && !(*awake_mask)[i])) {
          continue;
        }
        collect(i);
      }
    } else {
      // Shard-safe but non-cacheable agents: no live list, scan the range.
      for (std::uint32_t i = shard_begin_[s]; i < shard_begin_[s + 1]; ++i) {
        if (core.faulty_[i] || core.is_down(i) || core.agents_[i]->done() ||
            (awake_mask != nullptr && !(*awake_mask)[i])) {
          continue;
        }
        collect(i);
      }
    }
  });

  // Empty phases are skipped, as in the serial round.
  bool any_pull = false;
  bool any_push = false;
  for (const auto& q : shard_pullers_) any_pull = any_pull || !q.empty();
  for (const auto& q : push_queues_) any_push = any_push || !q.empty();

  // Phase B: serve pulls from round-start state, by server-shard.  Queues
  // drain in source-shard order; contiguous shards make that the global
  // requester-label order per server.
  if (any_pull) parallel_phase([&](std::uint32_t d) {
    Metrics& m = shard_metrics_[d];
    support::Arena* arena = core.round_arena(d);
    for (std::uint32_t s = 0; s < S; ++s) {
      for (const PullItem& item :
           pull_queues_[static_cast<std::size_t>(s) * S + d]) {
        // Each requester pulls at most once per round, so this slot is
        // written by exactly one shard.
        core.pull_replies_[item.requester] =
            core.serve_and_charge_pull(item.server, item.requester, m, arena);
        core.note_activation_sharded(item.server);
      }
    }
  });

  // Phase C: deliver pull replies in puller-label order, by puller-shard
  // (each shard's puller list is label-ordered by construction).
  if (any_pull) parallel_phase([&](std::uint32_t s) {
    support::Arena* arena = core.round_arena(s);
    for (const AgentId i : shard_pullers_[s]) {
      const Action& a = core.actions_[i];
      core.agents_[i]->on_pull_reply(core.make_context(i, arena), a.target,
                                     core.pull_replies_[i]);
      core.pull_replies_[i] = {};
      core.note_activation_sharded(i);
    }
  });

  // Pushes the network delayed in earlier rounds land at the start of the
  // push phase, exactly as on the serial paths.  Runs between barriers, so
  // single-threaded delivery against the core is safe.
  const bool net_msgs = core.net_msgs_;
  if (net_msgs) core.deliver_due_delayed(core.round_arena(0));

  // Phase D: deliver pushes by target-shard; the source-shard merge yields
  // global sender-label order at every receiver.  Fault verdicts are pure
  // per-message hashes, so shard interleaving cannot change them; held-back
  // pushes go to per-shard sinks merged (and sorted) at the barrier.
  if (any_push) parallel_phase([&](std::uint32_t d) {
    Metrics& m = shard_metrics_[d];
    support::Arena* arena = core.round_arena(d);
    EngineCore::NetSinks sinks{&shard_delayed_[d], &shard_deferred_[d]};
    for (std::uint32_t s = 0; s < S; ++s) {
      for (const AgentId sender :
           push_queues_[static_cast<std::size_t>(s) * S + d]) {
        const Action& a = core.actions_[sender];
        core.execute_push(sender, a.target, a.payload, m, arena, &sinks);
        core.note_activation_sharded(a.target);
      }
    }
  });

  if (net_msgs) {
    // Barrier merge of the per-shard sinks.  Delayed pushes join the core's
    // pending list (delivery sorts by (origin, sender), so merge order is
    // free); reordered ones are flushed now, at the end of this round's
    // push phase, through the same sorted flush as the serial round.
    for (auto& q : shard_delayed_) {
      for (DelayedPush& e : q) core.net_delayed_.push_back(std::move(e));
      q.clear();
    }
    deferred_merge_.clear();
    for (auto& q : shard_deferred_) {
      for (DelayedPush& e : q) deferred_merge_.push_back(std::move(e));
      q.clear();
    }
    core.flush_deferred(deferred_merge_, core.round_arena(0));
  }

  // Shard deltas carry no rounds/virtual_time (the scheduler owns those),
  // so the general merge is exact here.
  for (const Metrics& m : shard_metrics_) core.metrics_.merge_from(m);
  // The phases refreshed done_ bytes only (the shared counter would race);
  // recount it at the barrier so all_done() stays O(1) and exact.
  core.recount_done();
  ++core.time_;
  core.metrics_.rounds = core.time_;
}

}  // namespace rfc::sim
