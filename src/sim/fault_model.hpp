// Worst-case *permanent* fault model (Section 2 of the paper).
//
// At round 0 an adversary that knows the protocol marks up to alpha*n agents
// as faulty; faulty agents stay quiescent forever (they never push, pull, or
// reply).  After round 0 the adversary takes no further action — this is the
// static adversary the paper adopts after Halpern–Vilaça's impossibility
// result for dynamic faults.
//
// Because protocol P is label-symmetric, the adversary's power reduces to
// choosing *which* labels die.  We provide the canonical placement families
// so experiments can sweep them and confirm placement-independence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace rfc::sim {

enum class FaultPlacement : std::uint8_t {
  kNone,      ///< No faults.
  kRandom,    ///< Uniformly random subset.
  kPrefix,    ///< Labels 0..f-1 (adversary kills the smallest labels; these
              ///< are also the likeliest low-ID tie-break winners).
  kSuffix,    ///< Labels n-f..n-1.
  kStride,    ///< Every ceil(n/f)-th label — maximally spread.
  kClustered, ///< A contiguous block starting at a random offset.
};

/// All placements, for sweeps.
const std::vector<FaultPlacement>& all_fault_placements();

std::string to_string(FaultPlacement p);

/// Builds the round-0 fault plan: plan[i] == true iff label i is faulty.
/// `num_faulty` is clamped to n - 1 (the model requires |A| >= 1; the
/// experiments keep |A| = Θ(n) as the paper assumes).
std::vector<bool> make_fault_plan(FaultPlacement placement, std::uint32_t n,
                                  std::uint32_t num_faulty,
                                  rfc::support::Xoshiro256& rng);

}  // namespace rfc::sim
