// Read-only engine observations for adaptive scheduling policies.
//
// A Scheduler decides *when* agents run; an *adaptive* scheduler decides it
// from what the execution is doing — the paper's worst-case adversary picks
// whom to starve based on the protocol's state.  EngineView is the
// observation half of the engine↔scheduler contract: a non-owning, read-only
// window over EngineCore handed to every Scheduler::step() call, exposing
//
//   * the clocks (discrete event count and accumulated virtual time),
//   * per-agent done()/faulty status,
//   * per-agent protocol phase and numeric progress (the Agent::phase() /
//     Agent::progress() hooks — e.g. Protocol P agents report their
//     audit-pipeline stage and position, so a phase-aware adversary can
//     starve an agent exactly during its voting window and a reactive one
//     can re-plan its victim set around the weakest progress holder), and
//   * shard geometry (the contiguous block partition of the label space
//     shared with ShardedRoundExecutor and the batched-delivery policy).
//
// Policies mutate the core only through its execution primitives
// (run_synchronous_round / sequential_activation, taken by EngineCore&);
// everything they *observe* goes through this type, which keeps the
// observation surface explicit and const.
#pragma once

#include <cstdint>

#include "sim/agent.hpp"
#include "sim/engine_core.hpp"
#include "sim/sharding.hpp"

namespace rfc::sim {

class EngineView {
 public:
  explicit EngineView(const EngineCore& core) noexcept : core_(&core) {}

  std::uint32_t n() const noexcept { return core_->n(); }
  /// Elapsed discrete scheduling events (rounds or activations).
  std::uint64_t time() const noexcept { return core_->time(); }
  /// Elapsed virtual time (the sum of scheduler step() increments).
  double virtual_time() const noexcept { return core_->virtual_time(); }
  std::uint32_t num_active() const noexcept { return core_->num_active(); }
  std::uint32_t num_faulty() const noexcept { return core_->num_faulty(); }

  bool faulty(AgentId id) const { return core_->is_faulty(id); }
  /// The agent's own done() report (served from the core's SoA cache when
  /// live).  Faulty agents never wake regardless.
  bool done(AgentId id) const { return core_->agent_done(id); }
  /// The agent's phase observation (sim::AgentPhase); kUnknown for agents
  /// that expose none.
  AgentPhase phase(AgentId id) const { return core_->agent_phase(id); }
  /// The agent's numeric pipeline position (Agent::progress(): completed
  /// stages + fraction of the current stage); 0 for agents that expose
  /// none.  Reactive adversaries rank victims by this observation.
  double progress(AgentId id) const { return core_->agent_progress(id); }
  /// True when every non-faulty agent reports done().
  bool all_done() const { return core_->all_done(); }

  // --- Shard geometry: the contiguous block partition of [0, n). ---
  //
  // All three helpers agree on the effective block count blocks(requested):
  // block_of always returns an index in [0, blocks(requested)) and is the
  // exact inverse of block_begin over that range, so a per-block array
  // sized with blocks() is always indexed in bounds.

  /// Effective block count when asking for `requested` blocks — clamped to
  /// the label count (more blocks would only add empty ranges), exactly as
  /// the sharded executor and the batched policy clamp theirs.
  std::uint32_t blocks(std::uint32_t requested) const noexcept {
    return requested < n() ? requested : n();
  }
  /// First label of block `b` out of blocks(num_blocks) (same rule as the
  /// sharded round's shard map); block b covers
  /// [block_begin(b), block_begin(b+1)).
  std::uint32_t block_begin(std::uint32_t b,
                            std::uint32_t num_blocks) const noexcept {
    return contiguous_block_begin(n(), blocks(num_blocks), b);
  }
  /// The block owning label `id` under a blocks(num_blocks) partition: the
  /// largest b with block_begin(b) <= id, i.e. ceil((id+1)·B/n) - 1.
  std::uint32_t block_of(AgentId id, std::uint32_t num_blocks) const noexcept {
    const std::uint64_t effective = blocks(num_blocks);
    return static_cast<std::uint32_t>(
        ((static_cast<std::uint64_t>(id) + 1) * effective - 1) / n());
  }

 private:
  const EngineCore* core_;
};

}  // namespace rfc::sim
