#include "sim/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace rfc::sim {
namespace {

class CompleteTopology final : public Topology {
 public:
  explicit CompleteTopology(std::uint32_t n) : n_(n) {}

  std::uint32_t n() const noexcept override { return n_; }
  std::string name() const override { return "complete"; }

  AgentId sample_neighbor(AgentId,
                          rfc::support::Xoshiro256& rng) const override {
    return static_cast<AgentId>(rng.below(n_));
  }

  std::uint32_t degree(AgentId) const override { return n_; }
  bool are_adjacent(AgentId, AgentId) const override { return true; }

 private:
  std::uint32_t n_;
};

/// Shared implementation for explicit adjacency-list graphs.
class AdjacencyTopology : public Topology {
 public:
  AdjacencyTopology(std::uint32_t n, std::string name)
      : n_(n), name_(std::move(name)), adjacency_(n) {}

  std::uint32_t n() const noexcept override { return n_; }
  std::string name() const override { return name_; }

  AgentId sample_neighbor(AgentId u,
                          rfc::support::Xoshiro256& rng) const override {
    const auto& neighbors = adjacency_[u];
    if (neighbors.empty()) return u;  // Isolated: a wasted operation.
    return neighbors[rng.below(neighbors.size())];
  }

  std::uint32_t degree(AgentId u) const override {
    return static_cast<std::uint32_t>(adjacency_.at(u).size());
  }

  bool are_adjacent(AgentId u, AgentId v) const override {
    const auto& neighbors = adjacency_.at(u);
    return std::find(neighbors.begin(), neighbors.end(), v) !=
           neighbors.end();
  }

 protected:
  void add_edge(AgentId u, AgentId v) {
    if (u == v || are_adjacent(u, v)) return;
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
  }

 private:
  std::uint32_t n_;
  std::string name_;
  std::vector<std::vector<AgentId>> adjacency_;
};

class RingTopology final : public AdjacencyTopology {
 public:
  RingTopology(std::uint32_t n, std::uint32_t k)
      : AdjacencyTopology(n, "ring-k" + std::to_string(k)) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 1; j <= k; ++j) {
        add_edge(i, (i + j) % n);
      }
    }
  }
};

class RandomRegularTopology final : public AdjacencyTopology {
 public:
  RandomRegularTopology(std::uint32_t n, std::uint32_t d, std::uint64_t seed)
      : AdjacencyTopology(n, "random-" + std::to_string(d) + "-regular") {
    // Union of d/2 uniformly random Hamiltonian cycles: every node gets
    // degree <= d (slightly less where cycles overlap), and the result is
    // an expander w.h.p. — the standard "permutation model".
    rfc::support::Xoshiro256 rng(seed);
    std::vector<AgentId> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    for (std::uint32_t c = 0; c < d / 2; ++c) {
      for (std::uint32_t i = n; i-- > 1;) {
        std::swap(order[i], order[rng.below(i + 1)]);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        add_edge(order[i], order[(i + 1) % n]);
      }
    }
  }
};

class ErdosRenyiTopology final : public AdjacencyTopology {
 public:
  ErdosRenyiTopology(std::uint32_t n, double p, std::uint64_t seed)
      : AdjacencyTopology(n, "erdos-renyi") {
    rfc::support::Xoshiro256 rng(seed);
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) add_edge(u, v);
      }
    }
  }
};

}  // namespace

TopologyPtr make_complete(std::uint32_t n) {
  return std::make_shared<CompleteTopology>(n);
}

TopologyPtr make_ring(std::uint32_t n, std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("ring: k must be >= 1");
  return std::make_shared<RingTopology>(n, k);
}

TopologyPtr make_random_regular(std::uint32_t n, std::uint32_t d,
                                std::uint64_t seed) {
  if (d < 2 || d % 2 != 0) {
    throw std::invalid_argument("random regular: d must be even and >= 2");
  }
  return std::make_shared<RandomRegularTopology>(n, d, seed);
}

TopologyPtr make_erdos_renyi(std::uint32_t n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos-renyi: p must be in [0, 1]");
  }
  return std::make_shared<ErdosRenyiTopology>(n, p, seed);
}

}  // namespace rfc::sim
