// The agent interface of the synchronous GOSSIP model.
//
// Model recap (Section 2 of the paper): the network is the complete graph on
// [n].  In every synchronous round each node performs at most one *active*
// operation — a push (send one message to one chosen neighbor) or a pull
// (request one message from one chosen neighbor, answered within the round).
// A node may passively *receive* any number of pushes and serve any number of
// pull requests per round.  Channels are secure: the receiver always learns
// the authentic label of the peer (agents cannot forge their identity, an
// assumption shared with all prior work on rational consensus).
//
// Synchrony contract enforced by the engine:
//   1. `on_round` is called once per round per active agent to collect its
//      active operation.
//   2. All `serve_pull` calls of the round happen next; implementations must
//      answer from state as of the *start* of the round (the provided
//      protocol agents do this naturally because they mutate state only in
//      the delivery hooks).
//   3. All pull replies are then delivered via `on_pull_reply`, and all
//      pushed payloads via `on_push`, in sender-label order.
#pragma once

#include <cstdint>
#include <string>

#include "sim/payload.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"

namespace rfc::support {
class Arena;
}  // namespace rfc::support

namespace rfc::sim {

inline constexpr AgentId kNoAgent = static_cast<AgentId>(-1);

/// Coarse, protocol-agnostic pipeline stages an agent may expose to
/// observers (sim/engine_view.hpp) through Agent::phase().  Adaptive
/// schedulers key starvation decisions off these — e.g. starving an agent
/// exactly while it reports kVote.  The names mirror the audit pipeline of
/// Protocol P (commit declarations → cast votes → spread the minimum →
/// cross-check) but carry no protocol semantics in the sim layer; agents
/// without a pipeline stay at kUnknown.
enum class AgentPhase : std::uint8_t {
  kUnknown = 0,  ///< Agent exposes no phase information (the default).
  kCommit,       ///< Declaring/collecting commitments (audit pulls).
  kVote,         ///< Entering or inside its voting window.
  kSpread,       ///< Broadcasting/aggregating (e.g. find-min).
  kConfirm,      ///< Cross-checking the outcome (e.g. coherence).
  kDone,         ///< Decided or failed; no further active operations.
};

/// Stable lowercase names ("commit", "vote", ...), used by the
/// `adversarial:phase=` scheduler parameter.
const char* to_string(AgentPhase phase) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names
/// (including "unknown", which no observer can meaningfully target).
AgentPhase parse_agent_phase(const std::string& text);

/// Per-callback view of the world handed to an agent by the engine.
struct Context {
  AgentId self = kNoAgent;          ///< This agent's authentic label.
  std::uint32_t n = 0;              ///< Network size (known to all agents).
  std::uint64_t round = 0;          ///< Current round, starting at 0.
  rfc::support::Xoshiro256* rng = nullptr;  ///< This agent's private stream.
  const Topology* topology = nullptr;  ///< Null means the complete graph.
  /// Round-lifetime allocator for transient boxed payloads (null outside an
  /// engine round, e.g. in direct test calls).  Payloads built here via
  /// Payload::make_boxed_in are valid until the next round's shard-barrier
  /// reset — use it for messages consumed in this round's delivery hooks,
  /// never for payloads cached across rounds.
  rfc::support::Arena* arena = nullptr;

  /// A neighbor chosen uniformly at random — the "choose a neighbor u.a.r."
  /// primitive of the GOSSIP model.  On the complete graph this is a label
  /// u.a.r. in [0, n) (self-loops permitted, as in the standard analyses; a
  /// self-contact is a wasted round).
  AgentId random_peer() const noexcept {
    if (topology != nullptr) return topology->sample_neighbor(self, *rng);
    return static_cast<AgentId>(rng->below(n));
  }
};

enum class ActionKind : std::uint8_t { kIdle, kPush, kPull };

/// The single active operation an agent performs in a round.  Carried by
/// value: the payload is a flat tagged union (sim/payload.hpp), so the
/// engine's per-round Action buffers involve no per-message allocation.
struct Action {
  ActionKind kind = ActionKind::kIdle;
  AgentId target = kNoAgent;  ///< Peer contacted (push destination / pullee).
  Payload payload;            ///< Pushed payload (empty for pull/idle).

  static Action idle() noexcept { return {}; }
  static Action push(AgentId to, Payload p) noexcept {
    return {ActionKind::kPush, to, std::move(p)};
  }
  static Action pull(AgentId from) noexcept {
    return {ActionKind::kPull, from, Payload{}};
  }
};

class Agent {
 public:
  virtual ~Agent() = default;

  /// Called once before round 0.
  virtual void on_start(const Context& /*ctx*/) {}

  /// Returns this agent's active operation for the round.
  virtual Action on_round(const Context& ctx) = 0;

  /// Serves a pull request from `requester`.  Returning an empty payload
  /// models "no reply" — the requester will observe silence exactly as it
  /// would from a faulty node.  Must answer from round-start state.
  virtual Payload serve_pull(const Context& ctx, AgentId requester) = 0;

  /// Delivers the reply to this agent's own pull.  `reply` is empty when
  /// the pulled peer was faulty, quiescent, or chose not to answer.
  virtual void on_pull_reply(const Context& /*ctx*/, AgentId /*target*/,
                             const Payload& /*reply*/) {}

  /// Delivers a payload pushed by `sender` this round.
  virtual void on_push(const Context& /*ctx*/, AgentId /*sender*/,
                       const Payload& /*payload*/) {}

  /// True once the agent has reached a final state.  The engine stops when
  /// every non-faulty agent is done.
  virtual bool done() const = 0;

  /// Observation hook for adaptive schedulers (read through
  /// sim::EngineView): the coarse pipeline stage this agent is in.  The
  /// default kUnknown means "no phase information"; protocol agents
  /// override it to expose their audit-pipeline stage.  For agents whose
  /// schedule reads a global clock the observation reflects their *last
  /// activation* (a starved agent's report can be stale); agents counting
  /// their own activations report the phase of their next wake-up exactly.
  virtual AgentPhase phase() const noexcept { return AgentPhase::kUnknown; }

  /// Numeric observation hook next to phase(): the agent's position in its
  /// local pipeline, encoded as completed stages plus the fraction of the
  /// current stage done — the integer part counts pipeline stages fully
  /// behind the agent, the fractional part (in [0, 1)) is how far through
  /// the current stage it is.  Monotone nondecreasing over an execution and
  /// comparable *within one agent family*, which is all a reactive
  /// adversary needs: `adversarial:target=min-cert` starves the agent whose
  /// report is currently minimal (the weakest certificate/progress holder),
  /// `target=quorum-edge` the agents whose fractional part is largest (just
  /// about to complete their phase).  The same staleness caveat as phase()
  /// applies.  Agents without a pipeline report 0 forever.
  virtual double progress() const noexcept { return 0.0; }

  /// True when this agent's callbacks touch only its own state and the
  /// Context handed to them — the requirement of the sharded round
  /// (sim/sharding.hpp).  Agents sharing mutable state across labels (a
  /// coalition blackboard) override to false; the sharded executor then
  /// refuses to run them instead of silently racing.
  virtual bool shard_safe() const noexcept { return true; }

  /// True when done()/phase()/progress() can only change inside this
  /// agent's own callbacks — never through state mutated from outside the
  /// engine (a test fixture poking shared memory, a wall clock, ...).  When
  /// every installed agent returns true (and is shard_safe), the engine
  /// mirrors these observations into structure-of-arrays caches refreshed
  /// at activation time instead of virtual-calling per read; agents backed
  /// by externally mutable state must keep the default so observers always
  /// see the live value.  The provided protocol/gossip agents opt in.
  virtual bool cacheable_observations() const noexcept { return false; }
};

}  // namespace rfc::sim
