#include "sim/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace rfc::sim {

void TraceRecorder::attach(Engine& engine, TraceOptions options) {
  if (options.sample_every == 0) {
    throw std::invalid_argument("TraceRecorder: sample_every must be positive");
  }
  options_ = options;
  last_ = Metrics{};
  observed_ = 0;
  rounds_.clear();
  engine.set_round_observer([this](const Engine& e) {
    const Metrics& m = e.metrics();
    const std::uint64_t round = e.round() - 1;
    ++observed_;
    // The delta baseline advances every round regardless of sampling, so a
    // sampled entry reports that single round's traffic, not the traffic
    // since the previous *kept* entry.
    RoundTrace t;
    t.round = round;
    t.pushes = m.pushes - last_.pushes;
    t.pull_requests = m.pull_requests - last_.pull_requests;
    t.pull_replies = m.pull_replies - last_.pull_replies;
    t.bits = m.total_bits - last_.total_bits;
    t.active_links = m.active_links - last_.active_links;
    last_ = m;
    if (round % options_.sample_every != 0) return;
    rounds_.push_back(t);
    // Ring behavior with amortized O(1) eviction: let the buffer grow to
    // 2x the cap, then drop the oldest half in one move.  Readers see an
    // exact max_rounds-suffix via trim().
    if (options_.max_rounds != 0 && rounds_.size() >= 2 * options_.max_rounds) {
      trim();
    }
  });
}

void TraceRecorder::trim() const {
  if (options_.max_rounds == 0 || rounds_.size() <= options_.max_rounds) {
    return;
  }
  rounds_.erase(rounds_.begin(),
                rounds_.end() - static_cast<std::ptrdiff_t>(
                                    options_.max_rounds));
}

const std::vector<RoundTrace>& TraceRecorder::rounds() const {
  trim();
  return rounds_;
}

namespace {

template <typename Field>
std::uint64_t sum_over(const std::vector<RoundTrace>& rounds,
                       std::uint64_t begin, std::uint64_t end, Field field) {
  std::uint64_t total = 0;
  for (const RoundTrace& t : rounds) {
    if (t.round >= begin && t.round < end) total += field(t);
  }
  return total;
}

}  // namespace

std::uint64_t TraceRecorder::total_pushes(std::uint64_t begin,
                                          std::uint64_t end) const {
  return sum_over(rounds(), begin, end,
                  [](const RoundTrace& t) { return t.pushes; });
}

std::uint64_t TraceRecorder::total_pulls(std::uint64_t begin,
                                         std::uint64_t end) const {
  return sum_over(rounds(), begin, end,
                  [](const RoundTrace& t) { return t.pull_requests; });
}

std::uint64_t TraceRecorder::total_bits(std::uint64_t begin,
                                        std::uint64_t end) const {
  return sum_over(rounds(), begin, end,
                  [](const RoundTrace& t) { return t.bits; });
}

std::string TraceRecorder::render() const {
  std::ostringstream os;
  for (const RoundTrace& t : rounds()) {
    os << "r" << t.round << ": push=" << t.pushes
       << " pull=" << t.pull_requests << " bits=" << t.bits << "\n";
  }
  return os.str();
}

}  // namespace rfc::sim
