#include "sim/trace.hpp"

#include <sstream>

namespace rfc::sim {

void TraceRecorder::attach(Engine& engine) {
  last_ = Metrics{};
  rounds_.clear();
  engine.set_round_observer([this](const Engine& e) {
    const Metrics& m = e.metrics();
    RoundTrace t;
    t.round = e.round() - 1;
    t.pushes = m.pushes - last_.pushes;
    t.pull_requests = m.pull_requests - last_.pull_requests;
    t.pull_replies = m.pull_replies - last_.pull_replies;
    t.bits = m.total_bits - last_.total_bits;
    t.active_links = m.active_links - last_.active_links;
    rounds_.push_back(t);
    last_ = m;
  });
}

namespace {

template <typename Field>
std::uint64_t sum_over(const std::vector<RoundTrace>& rounds,
                       std::uint64_t begin, std::uint64_t end, Field field) {
  std::uint64_t total = 0;
  for (const RoundTrace& t : rounds) {
    if (t.round >= begin && t.round < end) total += field(t);
  }
  return total;
}

}  // namespace

std::uint64_t TraceRecorder::total_pushes(std::uint64_t begin,
                                          std::uint64_t end) const {
  return sum_over(rounds_, begin, end,
                  [](const RoundTrace& t) { return t.pushes; });
}

std::uint64_t TraceRecorder::total_pulls(std::uint64_t begin,
                                         std::uint64_t end) const {
  return sum_over(rounds_, begin, end,
                  [](const RoundTrace& t) { return t.pull_requests; });
}

std::uint64_t TraceRecorder::total_bits(std::uint64_t begin,
                                        std::uint64_t end) const {
  return sum_over(rounds_, begin, end,
                  [](const RoundTrace& t) { return t.bits; });
}

std::string TraceRecorder::render() const {
  std::ostringstream os;
  for (const RoundTrace& t : rounds_) {
    os << "r" << t.round << ": push=" << t.pushes
       << " pull=" << t.pull_requests << " bits=" << t.bits << "\n";
  }
  return os.str();
}

}  // namespace rfc::sim
