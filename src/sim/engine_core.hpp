// The execution substrate shared by every activation model.
//
// EngineCore owns *what it means to run agents* — agent storage, fault
// bookkeeping, per-agent SplitMix-derived RNG streams, exact message
// accounting, and the two delivery primitives every model composes:
//
//   * run_synchronous_round — the paper's phased lock-step round (collect
//     one active operation per awake agent, serve pulls from round-start
//     state, deliver replies, deliver pushes, all in label order);
//   * sequential_activation — one agent wakes alone and its operation
//     resolves immediately against current state.
//
// *When* agents run — activation order and round/step semantics — is a
// Scheduler policy (sim/scheduler.hpp).  The Engine facade
// (sim/engine.hpp) binds the two.  EngineCore itself is single-threaded and
// fully deterministic given (n, seed, topology, fault plan, agents):
// Monte-Carlo parallelism lives one level up (analysis::MonteCarlo) and
// runs independent cores on independent seeds.  For parallelism *inside*
// one engine, sim/sharding.hpp runs the synchronous phased round over
// label shards on a thread pool, bit-identical to the serial round by
// construction (ShardedRoundExecutor is a friend so the two
// implementations share buffers and accounting).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/agent.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"

namespace rfc::sim {

class EngineCore {
 public:
  EngineCore(std::uint32_t n, std::uint64_t seed, TopologyPtr topology);

  /// Installs the agent for label `id`.  All labels must be populated
  /// before the first step.
  void set_agent(AgentId id, std::unique_ptr<Agent> agent);

  /// Marks `id` permanently faulty (must be called before the first step).
  void set_faulty(AgentId id, bool faulty = true);

  /// Applies a full fault plan (see sim/fault_model.hpp).
  void apply_fault_plan(const std::vector<bool>& plan);

  bool is_faulty(AgentId id) const { return faulty_.at(id); }
  std::uint32_t num_faulty() const noexcept { return num_faulty_; }
  std::uint32_t num_active() const noexcept { return n_ - num_faulty_; }

  std::uint32_t n() const noexcept { return n_; }
  std::uint64_t seed() const noexcept { return seed_; }
  /// Elapsed scheduling events: rounds under round-based schedulers, steps
  /// under sequential ones.
  std::uint64_t time() const noexcept { return time_; }
  /// Elapsed *virtual* time: the sum of scheduler step() increments.
  /// Equals time() for discrete policies; the continuous clock otherwise.
  double virtual_time() const noexcept { return metrics_.virtual_time; }
  /// Accumulates a scheduler-reported time increment (engine-internal).
  void advance_virtual_time(double dt) noexcept {
    metrics_.virtual_time += dt;
  }
  /// Accumulates wake-up denials reported by an adversarial policy — its
  /// spent starvation budget, surfaced next to the message counters so run
  /// results can compare adversaries by cost (scheduler-facing, like
  /// advance_virtual_time).
  void note_denials(std::uint64_t count) noexcept {
    metrics_.denials += count;
  }
  bool started() const noexcept { return started_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  Agent& agent(AgentId id) { return *agents_.at(id); }
  const Agent& agent(AgentId id) const { return *agents_.at(id); }

  /// True when every non-faulty agent reports done().  An O(n) scan by
  /// necessity: done() can flip without the agent's own callback running
  /// (e.g. through a coalition blackboard), so no counter can cache it.
  /// Run loops over self-terminating schedulers (Scheduler::exhausted())
  /// avoid paying it per event.
  bool all_done() const;

  /// Non-faulty labels, in label order.
  std::vector<AgentId> active_labels() const;

  /// Bits charged for a pull *request* (the "send me your X" control
  /// message): one peer label, per the paper's accounting.
  std::uint64_t pull_request_bits() const noexcept;

  // --- Execution primitives, composed by Scheduler policies. ---

  /// Installs-check plus on_start for every active agent in label order.
  /// Idempotent; runs before the first scheduler step.
  void ensure_started();

  /// Executes one synchronous phased round over the agents with
  /// `awake_mask[i]` true (null = every agent), then advances time by one
  /// round.  Faulty and done() agents idle regardless of the mask.
  void run_synchronous_round(const std::vector<bool>* awake_mask = nullptr);

  /// Advances time by one step, then wakes `u` alone: its action is
  /// collected and resolved immediately (a pull is served from current
  /// state).  Waking a done() agent consumes the step as a wasted
  /// activation, as in the sequential model's analyses.
  void sequential_activation(AgentId u);

  /// The per-callback view handed to agent `id` at the current time.
  Context make_context(AgentId id) noexcept;

 private:
  friend class ShardedRoundExecutor;  // sim/sharding.hpp

  /// Expands the per-agent RNG streams for labels [lo, hi) from the master
  /// seed.  Stream values are a pure function of (seed, label), so *where*
  /// this runs is free: ensure_started derives the whole range on first
  /// use, and the sharded executor prefetches each shard's block on its own
  /// worker thread instead (sim/sharding.hpp), off the serial path.
  void seed_rng_block(std::uint32_t lo, std::uint32_t hi) noexcept;

  // Shared accounting/delivery between the synchronous phases, the
  // sequential activation path, and the sharded round — one definition
  // keeps every execution model's metrics bit-identical by construction.
  // `metrics` is metrics_ on the serial paths and a per-shard delta on the
  // sharded one (merged after the round).
  void charge_pull_request(Metrics& metrics);
  /// Serves `requester`'s pull on `v` (silence if `v` is faulty), charging
  /// the reply if any.  Delivery to the requester is the caller's job:
  /// the synchronous round defers it to phase C, the sequential path
  /// delivers immediately.
  Payload serve_and_charge_pull(AgentId v, AgentId requester,
                                Metrics& metrics);
  /// Charges `sender`'s push and delivers it unless the target is faulty
  /// (the message still travels, and is charged, either way).
  void execute_push(AgentId sender, const Action& action, Metrics& metrics);
  std::uint32_t n_;
  std::uint64_t seed_;
  TopologyPtr topology_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<bool> faulty_;
  std::vector<rfc::support::Xoshiro256> rngs_;
  std::uint32_t num_faulty_ = 0;
  std::uint64_t time_ = 0;
  bool started_ = false;
  bool rngs_seeded_ = false;
  Metrics metrics_;

  // Scratch buffers reused across rounds to avoid per-round allocation;
  // both carry payloads by value (no per-message heap traffic).
  std::vector<Action> actions_;
  std::vector<Payload> pull_replies_;
};

}  // namespace rfc::sim
