// The execution substrate shared by every activation model.
//
// EngineCore owns *what it means to run agents* — agent storage, fault
// bookkeeping, per-agent SplitMix-derived RNG streams, exact message
// accounting, and the two delivery primitives every model composes:
//
//   * run_synchronous_round — the paper's phased lock-step round (collect
//     one active operation per awake agent, serve pulls from round-start
//     state, deliver replies, deliver pushes, all in label order);
//   * sequential_activation — one agent wakes alone and its operation
//     resolves immediately against current state.
//
// *When* agents run — activation order and round/step semantics — is a
// Scheduler policy (sim/scheduler.hpp).  The Engine facade
// (sim/engine.hpp) binds the two.  EngineCore itself is single-threaded and
// fully deterministic given (n, seed, topology, fault plan, agents):
// Monte-Carlo parallelism lives one level up (analysis::MonteCarlo) and
// runs independent cores on independent seeds.  For parallelism *inside*
// one engine, sim/sharding.hpp runs the synchronous phased round over
// label shards on a thread pool, bit-identical to the serial round by
// construction (ShardedRoundExecutor is a friend so the two
// implementations share buffers and accounting).
//
// Hot state is structure-of-arrays.  The polymorphic Agent objects remain
// the behavior, but everything the round loop and the observers touch per
// agent lives in contiguous parallel arrays: the fault flags, the per-agent
// RNG streams, and SoA caches of the hot observations (done()/phase()/
// progress()) refreshed on activation.  The caches are enabled only when
// every agent is shard_safe() — an agent whose done() can flip without its
// own callback running (the coalition blackboard) declares shard_safe()
// false and gets the virtual-scan behavior unchanged.
//
// At large n the synchronous round switches to cache-blocked delivery:
// phase A routes each action into a destination *block* queue (contiguous
// label ranges sized to stay cache-resident), and phases B/D drain the
// queues block by block, so serving and delivering touch one block's agents
// at a time instead of hopping the whole array per message.  Per receiver
// the sender order, every RNG stream's consumption, and all metric sums are
// exactly the serial round's — the same argument that makes the sharded
// round bit-identical (per-receiver sender-label order is preserved because
// a receiver lives in exactly one block and queues fill in label order;
// metrics are order-independent sums).  tests/sharded_equivalence_test.cpp
// pins this against pre-refactor digests.
//
// Rounds are *sparse*: with the SoA caches live the engine maintains the
// label-ordered live list (non-faulty, not-done labels) incrementally —
// phase A iterates it instead of scanning all n labels, compacting done
// entries in place as it goes (done() is monotone by the Agent contract),
// and phases B/C/D walk this round's puller/pusher lists instead of
// rescanning the label space — so a round costs O(live + messages), not
// O(n).  The iteration order equals the old 0..n scan's (the list is label-
// ordered and drops exactly the labels the scan skipped), so traces are
// bit-identical.  Done 0→1 transitions are also appended to a public *done
// log* (done_log()), which incremental schedulers drain to prune their own
// wakeable pools eagerly instead of re-deriving them per step.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/agent.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "support/arena.hpp"
#include "support/rng.hpp"

namespace rfc::sim {

class EngineCore {
 public:
  EngineCore(std::uint32_t n, std::uint64_t seed, TopologyPtr topology);

  /// Installs the agent for label `id`.  All labels must be populated
  /// before the first step.
  void set_agent(AgentId id, std::unique_ptr<Agent> agent);

  /// Marks `id` permanently faulty (must be called before the first step).
  void set_faulty(AgentId id, bool faulty = true);

  /// Applies a full fault plan (see sim/fault_model.hpp).
  void apply_fault_plan(const std::vector<bool>& plan);

  bool is_faulty(AgentId id) const { return faulty_.at(id) != 0; }
  std::uint32_t num_faulty() const noexcept { return num_faulty_; }
  std::uint32_t num_active() const noexcept { return n_ - num_faulty_; }

  std::uint32_t n() const noexcept { return n_; }
  std::uint64_t seed() const noexcept { return seed_; }
  /// Elapsed scheduling events: rounds under round-based schedulers, steps
  /// under sequential ones.
  std::uint64_t time() const noexcept { return time_; }
  /// Elapsed *virtual* time: the sum of scheduler step() increments.
  /// Equals time() for discrete policies; the continuous clock otherwise.
  double virtual_time() const noexcept { return metrics_.virtual_time; }
  /// Accumulates a scheduler-reported time increment (engine-internal).
  void advance_virtual_time(double dt) noexcept {
    metrics_.virtual_time += dt;
  }
  /// Accumulates wake-up denials reported by an adversarial policy — its
  /// spent starvation budget, surfaced next to the message counters so run
  /// results can compare adversaries by cost (scheduler-facing, like
  /// advance_virtual_time).
  void note_denials(std::uint64_t count) noexcept {
    metrics_.denials += count;
  }
  bool started() const noexcept { return started_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  // --- Network adversary & churn (sim/network.hpp). -----------------------

  /// Installs the message-layer fault model (must precede the first step).
  /// Null (the default) — and any model with every rate zero — leaves all
  /// delivery paths bit-identical to the adversary-free engine: the fault
  /// stage is gated out entirely, not merely drawing zero-probability
  /// verdicts.
  void set_network(NetworkModelPtr network);
  const NetworkModel* network_model() const noexcept { return network_.get(); }

  /// True while churn holds agent `id` crashed: it idles, serves silence,
  /// and absorbs (charged) messages until its rejoin epoch.  Always false
  /// without a churn-enabled network model.
  bool is_down(AgentId id) const noexcept {
    return net_churn_ && down_until_[id] > net_epoch_;
  }

  Agent& agent(AgentId id) { return *agents_.at(id); }
  const Agent& agent(AgentId id) const { return *agents_.at(id); }

  // --- Hot observations, cached SoA-side. ---------------------------------
  //
  // done() is refreshed eagerly on every activation (the round loop needs
  // it anyway); phase()/progress() are cached lazily — invalidated on
  // activation, recomputed on the first observer read after it.  With any
  // non-shard-safe agent installed every accessor falls back to the virtual
  // call, byte-identically to the pre-SoA engine.

  /// The agent's done() report (cached; identical to agent(id).done()).
  bool agent_done(AgentId id) const {
    return obs_cache_enabled_ ? done_[id] != 0 : agents_[id]->done();
  }
  /// The agent's phase observation; kUnknown for agents exposing none.
  AgentPhase agent_phase(AgentId id) const;
  /// The agent's numeric pipeline position (Agent::progress()).
  double agent_progress(AgentId id) const;

  /// True when every non-faulty agent reports done().  O(1) off the cached
  /// done counter when the SoA caches are live; otherwise the legacy scan
  /// (done() can flip without the agent's own callback running, e.g.
  /// through a coalition blackboard, so no counter is sound there).
  bool all_done() const;

  /// Non-faulty labels, in label order.
  std::vector<AgentId> active_labels() const;
  /// Allocation-free overload: clears and refills `out` (capacity reused by
  /// the caller across calls — scheduler attach/rebuild paths use this).
  void active_labels(std::vector<AgentId>& out) const;

  // --- The done log: incremental active-set maintenance for schedulers. ---
  //
  // With the SoA caches live (done_log_enabled()), every done() 0→1
  // transition observed by the engine appends that label to an append-only
  // log, in observation order on the serial paths and label order at the
  // sharded barrier.  A scheduler keeping its own wakeable pool drains the
  // log from a cursor each step and removes exactly the newly finished
  // agents — O(transitions) total instead of O(pool) per step.  Labels done
  // before the first step are never logged (pools built from active_labels()
  // filter them at build time).

  /// True when the engine maintains the done log (== the SoA caches are
  /// live; with any non-cacheable agent installed the log stays empty and
  /// consumers must fall back to lazy done() checks).
  bool done_log_enabled() const noexcept { return obs_cache_enabled_; }
  /// The append-only done-transition log (labels, first-observed order).
  const std::vector<AgentId>& done_log() const noexcept { return done_log_; }
  /// Bumped if a logged agent ever un-reports done() — an Agent-contract
  /// breach ("done is final").  Consumers treating the log as ground truth
  /// may resync on a change; the shipped schedulers keep a lazy done()
  /// check at wake time regardless, so they stay correct without it.
  std::uint64_t done_log_epoch() const noexcept { return done_epoch_; }

  /// Bits charged for a pull *request* (the "send me your X" control
  /// message): one peer label, per the paper's accounting.
  std::uint64_t pull_request_bits() const noexcept;

  // --- Round arenas. -------------------------------------------------------

  /// Grows the per-shard arena set to `count` (the serial paths use arena
  /// 0; the sharded executor one per shard).
  void ensure_arenas(std::uint32_t count);
  /// The round arena for shard `idx` (valid after ensure_arenas).
  support::Arena* round_arena(std::uint32_t idx) noexcept {
    return arenas_[idx].get();
  }
  /// Resets every round arena — the shard-barrier reset at round start.
  /// Payloads built in an arena live until the NEXT round begins.
  void reset_round_arenas() noexcept;

  /// Tunes the cache-blocked delivery path of the synchronous round: it
  /// activates at n >= min_n (and only with the SoA caches live), routing
  /// deliveries through blocks of `block_labels` labels (rounded up to a
  /// power of two).  Defaults: min_n = 2^19, blocks of 2^16 labels (~a few
  /// MB of agent state per block).  Tests force tiny thresholds to pin the
  /// blocked path bit-identical at small n.
  void set_blocked_delivery(std::uint32_t min_n, std::uint32_t block_labels);

  // --- Execution primitives, composed by Scheduler policies. ---

  /// Installs-check plus on_start for every active agent in label order.
  /// Idempotent; runs before the first scheduler step.
  void ensure_started();

  /// Executes one synchronous phased round over the agents with
  /// `awake_mask[i]` true (null = every agent), then advances time by one
  /// round.  Faulty and done() agents idle regardless of the mask.
  void run_synchronous_round(const std::vector<bool>* awake_mask = nullptr);

  /// Advances time by one step, then wakes `u` alone: its action is
  /// collected and resolved immediately (a pull is served from current
  /// state).  Waking a done() agent consumes the step as a wasted
  /// activation, as in the sequential model's analyses.
  void sequential_activation(AgentId u);

  /// The per-callback view handed to agent `id` at the current time (serial
  /// paths: carries round arena 0).
  Context make_context(AgentId id) noexcept;

 private:
  friend class ShardedRoundExecutor;  // sim/sharding.hpp

  /// One routed push awaiting cache-blocked delivery: the payload travels
  /// in the queue so phase D never random-reads the action buffer.
  struct PushEntry {
    Payload payload;
    AgentId sender;
    AgentId target;
  };
  /// One routed pull: `requester` pulls `server` (server's block serves).
  struct PullEntry {
    AgentId requester;
    AgentId server;
  };

  /// Where the fault stage parks held-back pushes: the core-owned vectors
  /// on the serial paths, per-shard vectors on the sharded one (merged at
  /// the barrier so delivery order stays shard-count independent).  A null
  /// member means the context cannot defer that way (the sequential path
  /// has no delivery phase to reorder within) and the push is delivered
  /// immediately instead.
  struct NetSinks {
    std::vector<DelayedPush>* delayed;
    std::vector<DelayedPush>* deferred;
  };

  /// Expands the per-agent RNG streams for labels [lo, hi) from the master
  /// seed.  Stream values are a pure function of (seed, label), so *where*
  /// this runs is free: ensure_started derives the whole range on first
  /// use, and the sharded executor prefetches each shard's block on its own
  /// worker thread instead (sim/sharding.hpp), off the serial path.
  void seed_rng_block(std::uint32_t lo, std::uint32_t hi) noexcept;

  Context make_context(AgentId id, support::Arena* arena) noexcept;
  support::Arena* serial_arena() noexcept {
    return arenas_.empty() ? nullptr : arenas_[0].get();
  }

  /// Appends `i` to the done log at its 0→1 transition (at most once per
  /// label; done_logged_ also covers pre-start done labels, which are
  /// accounted but never logged).
  void log_done_transition(AgentId i) {
    if (done_logged_[i] == 0) {
      done_logged_[i] = 1;
      done_log_.push_back(i);
    }
  }
  /// A logged agent un-reported done() — contract breach; flag it so log
  /// consumers can resync, and allow a future re-transition to log again.
  void unlog_done_transition(AgentId i) {
    done_logged_[i] = 0;
    ++done_epoch_;
  }

  /// Refreshes the SoA observation caches after agent `i` ran a callback:
  /// re-reads done() (maintaining the done counter and the done log) and
  /// invalidates the lazy phase/progress entries.  No-op for faulty labels
  /// and with the caches disabled.  Serial paths only — the sharded round
  /// uses the counter-free variant below plus a barrier recount.
  void note_activation(AgentId i) {
    if (!obs_cache_enabled_ || faulty_[i] != 0) return;
    obs_valid_[i] = 0;
    const std::uint8_t d = agents_[i]->done() ? 1 : 0;
    if (d != done_[i]) {
      done_[i] = d;
      if (d != 0) {
        ++num_done_;
        log_done_transition(i);
      } else {
        --num_done_;
        unlog_done_transition(i);
      }
    }
  }
  /// Cache refresh safe inside a sharded phase: each agent is owned by one
  /// shard per phase, so the byte stores cannot race — but the shared done
  /// counter could, so it is recomputed at the barrier (recount_done).
  void note_activation_sharded(AgentId i) {
    if (!obs_cache_enabled_ || faulty_[i] != 0) return;
    obs_valid_[i] = 0;
    done_[i] = agents_[i]->done() ? 1 : 0;
  }
  /// Recomputes the done counter from the done_ bytes, appends the round's
  /// unlogged done transitions to the log in label order, and compacts the
  /// live list (executor, post-round — the sharded phases must not mutate
  /// the shared list mid-round, so all list maintenance lands here).
  void recount_done() noexcept;

  /// True when the synchronous round should take the cache-blocked path.
  bool use_blocked_round() const noexcept {
    return obs_cache_enabled_ && n_ >= blocked_min_n_;
  }
  void run_blocked_round(const std::vector<bool>* awake_mask);
  void run_serial_round(const std::vector<bool>* awake_mask);

  // Shared accounting/delivery between the synchronous phases, the
  // sequential activation path, and the sharded round — one definition
  // keeps every execution model's metrics bit-identical by construction.
  // `metrics` is metrics_ on the serial paths and a per-shard delta on the
  // sharded one (merged after the round); `arena` is the round arena the
  // served/delivered agent's callbacks allocate from.
  void charge_pull_request(Metrics& metrics);
  /// Serves `requester`'s pull on `v` (silence if `v` is faulty or down,
  /// or the network dropped the request or the reply; a corrupted reply
  /// comes back tampered), charging the reply if any.  Delivery to the
  /// requester is the caller's job:
  /// the synchronous round defers it to phase C, the sequential path
  /// delivers immediately.  The caller refreshes v's observation cache.
  Payload serve_and_charge_pull(AgentId v, AgentId requester,
                                Metrics& metrics, support::Arena* arena);
  /// Charges `sender`'s push, runs the network fault stage when one is
  /// active, and delivers it unless the target is faulty or down (the
  /// message still travels, and is charged, either way).  The caller
  /// refreshes the target's observation cache.
  void execute_push(AgentId sender, AgentId target, const Payload& payload,
                    Metrics& metrics, support::Arena* arena,
                    NetSinks* sinks = nullptr);

  // --- Network fault stage (no-ops unless a fault-enabled model is set). --

  /// Sweeps churn epochs up to `epoch`: every up agent draws a crash
  /// verdict per unswept epoch; a down agent returns when its window
  /// expires.  Serial contexts only (called at round/activation start).
  void advance_churn(std::uint64_t epoch);
  /// The post-charge fault stage of one push: drop / corrupt / delay /
  /// reorder / duplicate, then delivery of whatever survives.
  void net_push(AgentId sender, AgentId target, const Payload& payload,
                Metrics& metrics, support::Arena* arena, NetSinks* sinks);
  /// Delivery past the fault stage: faulty and down targets absorb the
  /// (already charged) message silently.
  void deliver_push(AgentId sender, AgentId target, const Payload& payload,
                    support::Arena* arena);
  /// Delivers the delayed pushes whose round has come, ordered by (origin
  /// round, sender).  Serial contexts only (the sharded executor calls it
  /// at the barrier before its push phase).
  void deliver_due_delayed(support::Arena* arena);
  /// Delivers and clears a batch of same-round reordered pushes, ordered by
  /// sender label (senders are unique within a round, so the order is
  /// total and shard-count independent).
  void flush_deferred(std::vector<DelayedPush>& batch, support::Arena* arena);

  std::uint32_t n_;
  std::uint64_t seed_;
  TopologyPtr topology_;
  std::vector<std::unique_ptr<Agent>> agents_;

  // --- Structure-of-arrays hot state (one entry per label). ---------------
  std::vector<std::uint8_t> faulty_;
  std::vector<rfc::support::Xoshiro256> rngs_;
  std::vector<std::uint8_t> done_;      ///< Cached Agent::done() (eager).
  mutable std::vector<std::uint8_t> obs_valid_;  ///< Lazy-cache valid bits.
  mutable std::vector<AgentPhase> phase_cache_;
  mutable std::vector<double> progress_cache_;
  static constexpr std::uint8_t kPhaseValid = 1;
  static constexpr std::uint8_t kProgressValid = 2;

  std::uint32_t num_faulty_ = 0;
  std::uint32_t num_done_ = 0;  ///< Non-faulty labels with done_[i] set.
  /// Label-ordered live labels (non-faulty, not done) — the sparse round's
  /// phase-A iteration domain.  Built at ensure_started with the caches;
  /// done entries compact away in place (serial phase A) or at the sharded
  /// barrier (recount_done).
  std::vector<AgentId> live_list_;
  std::vector<AgentId> done_log_;  ///< Append-only; see done_log().
  /// 1 once label i is accounted in the log bookkeeping: logged, or done
  /// before the first step (those are accounted but never logged).
  std::vector<std::uint8_t> done_logged_;
  std::uint64_t done_epoch_ = 0;  ///< See done_log_epoch().
  /// SoA observation caches live?  Set at ensure_started iff every agent is
  /// shard_safe() (their observations change only through their own
  /// callbacks, so activation-keyed refresh is sound).
  bool obs_cache_enabled_ = false;
  std::uint64_t time_ = 0;
  bool started_ = false;
  bool rngs_seeded_ = false;
  Metrics metrics_;

  // --- Network adversary & churn state (inert unless set_network). --------
  NetworkModelPtr network_;
  bool net_msgs_ = false;   ///< Some per-message fault rate is positive.
  bool net_churn_ = false;  ///< Crash churn enabled.
  std::uint64_t net_epoch_ = 0;      ///< Epoch advance_churn has reached.
  std::uint64_t churn_unswept_ = 0;  ///< First epoch not yet swept.
  std::vector<std::uint64_t> down_until_;  ///< Crash windows, epoch units.
  std::vector<DelayedPush> net_delayed_;   ///< Cross-round delayed pushes.
  std::vector<DelayedPush> net_deferred_;  ///< Same-round reordered pushes.

  // --- Round arenas (one per shard; serial paths use index 0). ------------
  std::vector<std::unique_ptr<support::Arena>> arenas_;

  // Scratch buffers reused across rounds to avoid per-round allocation;
  // actions_/pull_replies_ carry payloads by value (no per-message heap
  // traffic).  actions_ entries are only written for agents that acted this
  // round and only read through the round's puller/pusher lists, so no
  // per-label idle writes are needed (a skipped agent's stale slot is never
  // read; at worst it keeps one old boxed payload alive).
  std::vector<Action> actions_;
  std::vector<Payload> pull_replies_;
  std::vector<AgentId> round_pullers_;  ///< This round's pullers, label order.
  std::vector<AgentId> round_pushers_;  ///< This round's pushers (serial path).

  // --- Cache-blocked delivery scratch (large-n synchronous rounds). -------
  /// Retuned after the 32-byte payload / 40-byte push entry shrink
  /// (steady-state push-pull rumor rounds, min-of-5 interleaved reps on
  /// the 1-CPU dev box): the smaller entries pushed the break-even point
  /// up a quarter-order — at n = 2^17 the straight serial round now wins
  /// (32.1 ns/agent vs 35.8 for the best blocked setting), n = 2^18 is a
  /// wash (34.9 vs 35.8), and from n = 2^19 blocking pays again (38.3 vs
  /// 44.1 unblocked; at n = 2^20, 48.2 vs 62.2).
  std::uint32_t blocked_min_n_ = 1u << 19;
  /// Labels per block = 1 << shift.  2^16 measured fastest at n = 2^20
  /// (48.2 ns/agent-round vs 49.5 at 2^17, 49.6 at 2^15, and 55.0 at
  /// 2^18) and at n = 2^19 (38.4, within noise of 2^15's 38.3): fewer,
  /// longer queues beat tighter receiver working sets until the per-block
  /// agent state outgrows L2.  Tunable per run via set_blocked_delivery.
  std::uint32_t block_shift_ = 16;
  std::vector<AgentId> pull_target_;  ///< Valid for this round's pullers.
  std::vector<std::vector<PushEntry>> push_blocks_;
  std::vector<std::vector<PullEntry>> pull_blocks_;
};

}  // namespace rfc::sim
