// NetworkSpec — message-layer adversaries as *values*.
//
// A NetworkSpec names a registered network policy plus its parameters, the
// transport-side twin of SchedulerSpec: where a SchedulerSpec decides *when*
// agents wake, a NetworkSpec decides *what the network does to their
// messages* — drop, duplicate, reorder, delay, bounded Byzantine corruption
// of payloads — plus membership churn (agents crashing and rejoining
// mid-run).  Configuration structs store it next to their SchedulerSpec
// (gossip::SpreadConfig, core::RunConfig, ...), so every run entry point and
// every `--network=` flag composes any registered network policy with any
// scheduling policy.
//
// Grammar (same shape as SchedulerSpec):
//
//   spec      := policy [ ":" param ("," param)* ]
//   param     := key "=" value
//
//   network                                     the reliable network (default;
//                                               all rates zero — bit-identical
//                                               to running with no adversary)
//   network:drop=0.1                            each message lost w.p. 0.1
//   network:dup=0.05                            pushes delivered twice
//   network:reorder=0.2                         pushes deferred to the end of
//                                               the round's delivery phase
//   network:delay=3                             pushes delayed by a uniform
//                                               0..3 rounds
//   network:corrupt=0.01                        payload bits flipped in
//                                               transit (verifiers must catch
//                                               tampered certificates)
//   network:churn=0.001,rejoin=5                each up agent crashes w.p.
//                                               0.001 per round and rejoins
//                                               after 5 rounds (rejoin=0:
//                                               crashed agents never return)
//   network:drop=0.1,corrupt=0.01,seed=7        faults composable; seed
//                                               selects the fault stream
//
// Every fault verdict is a pure hash of (seed, message kind, time, sender,
// target) — no RNG stream is consumed — so a spec is deterministic (same
// seed ⇒ same drops/corruptions), independent of delivery order (serial,
// cache-blocked, and sharded rounds stay bit-identical to each other), and
// inert at zero rates (pinned bit-identical to the engine with no network
// model installed).
//
// `parse(to_string())` is the identity for every spec.  Structural errors
// (empty params, duplicate keys, missing '=') throw at parse(); unknown
// keys and malformed or out-of-range *values* throw at make(), naming the
// offending key — matching SchedulerSpec.
//
// The registry is open: register_policy() plugs in out-of-tree network
// policies (a partition model, a targeted jammer, ...) reachable from every
// `--network=` flag with no further wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace rfc::sim {

class NetworkSpec {
 public:
  /// Parameter map; ordered so to_string() is canonical.
  using Params = std::map<std::string, std::string>;

  /// Default-constructed spec is the reliable network (policy "network",
  /// all rates zero) — the inert adversary.
  NetworkSpec();

  /// Parses the grammar above; throws std::invalid_argument on unknown
  /// policies or malformed text.  Parameter *values* are validated later,
  /// by make(), where the policy's schema is known.
  static NetworkSpec parse(const std::string& text);

  /// Canonical text form; parse(to_string()) reproduces *this exactly.
  std::string to_string() const;

  /// Builds the live fault model.  Throws std::invalid_argument on unknown
  /// parameter keys, malformed or out-of-range values (probabilities
  /// outside [0, 1], negative counts), naming the key in the message.
  NetworkModelPtr make() const;

  /// True when make() would produce a model with every rate zero — running
  /// with this spec is bit-identical to running with no network model.
  bool inert() const;

  const std::string& policy() const noexcept { return policy_; }
  const Params& params() const noexcept { return params_; }

  bool operator==(const NetworkSpec& other) const = default;

  // --- Typed parameter access (used by factories; throws on bad text). ---
  bool has_param(const std::string& key) const;
  double param_double(const std::string& key, double def) const;
  std::uint64_t param_uint(const std::string& key, std::uint64_t def) const;

  // --- Named constructors. ---
  /// The reliable network (the default).
  static NetworkSpec none();
  /// Uniform loss: every message dropped w.p. `drop`.
  static NetworkSpec lossy(double drop, std::uint64_t seed = 0);

  /// One registry entry: how to build the policy.
  struct Policy {
    std::function<NetworkModelPtr(const NetworkSpec&)> factory;
    std::vector<std::string> keys;  ///< Accepted parameter names.
    std::string summary;            ///< One-liner for --help style listings.
  };

  /// Registers (or replaces) a policy under `name`.
  static void register_policy(const std::string& name, Policy policy);

  /// Registered policy names, sorted.
  static std::vector<std::string> registered_policies();

  /// `name — summary` lines for every registered policy (CLI help text).
  static std::string describe_registry();

 private:
  NetworkSpec(std::string policy, Params params);

  std::string policy_;
  Params params_;
};

}  // namespace rfc::sim
