// SchedulerSpec — activation policies as *values*.
//
// A SchedulerSpec names a registered scheduling policy plus its parameters,
// and is what configuration structs store (gossip::SpreadConfig,
// core::RunConfig, baseline election configs, ...): copyable, comparable,
// and round-trippable through a string grammar, so one `--scheduler=` flag
// can select any registered policy for any protocol or experiment.
//
// Grammar:
//
//   spec      := policy [ ":" param ("," param)* ]
//   param     := key "=" value
//   value     := any text without "," (agent lists use "+", e.g. 0+3+7)
//
//   synchronous                                 the paper's lock-step rounds
//   sequential                                  one u.a.r. wake per step
//   sequential:wasted=skip                      ... with finished agents
//                                               pruned from the pool (the
//                                               default wasted=keep draws
//                                               over the initial pool
//                                               forever — the pinned
//                                               coupon-collector contract)
//   partial-async:p=0.25                        Bernoulli(p) wake subsets
//   batched:block=8                             contiguous blocks in rotation
//   batched:block=8,shards=4,threads=4          ... with sharded sub-rounds
//   adversarial:victim_fraction=0.25            seeded starvation orderings
//   adversarial:victims=0+3+7,stream=44528      explicit victim set
//   adversarial:phase=vote,budget=1500          adaptive: starve victims
//                                               only in their voting window,
//                                               spending <= 1500 denials
//   adversarial:target=min-cert,budget=200      reactive: re-plan the victim
//                                               set every step — starve the
//                                               weakest progress holder
//                                               (also: laggard, quorum-edge)
//   adversarial:wasted=skip                     eager pool pruning off the
//                                               engine's done log (default
//                                               wasted=keep removes done
//                                               agents lazily at the walk
//                                               cursor — the pinned traces)
//   poisson                                     rate-1 Poisson clocks
//   poisson:rate=2                              rate-λ Poisson clocks
//   poisson:queue=heap                          the same model event-driven:
//                                               per-agent wakes pre-drawn
//                                               into a pending-event heap,
//                                               O(log n) per event (default
//                                               queue=scan is the Gillespie
//                                               sampler)
//
// `parse(to_string())` is the identity for every spec, and `make()` builds
// the live sim::Scheduler.  Unknown policies, unknown keys, and malformed
// values all throw std::invalid_argument with the offending text.
//
// The registry is open: register_policy() plugs in out-of-tree policies
// (they become reachable from every run entry point and every binary's
// --scheduler flag with no further wiring).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace rfc::sim {

class SchedulerSpec {
 public:
  /// Parameter map; ordered so to_string() is canonical.
  using Params = std::map<std::string, std::string>;

  /// Default-constructed spec is the paper's model (synchronous).
  SchedulerSpec();

  /// Parses the grammar above; throws std::invalid_argument on unknown
  /// policies or malformed text.  Parameter *values* are validated later,
  /// by make(), where the policy's schema is known.
  static SchedulerSpec parse(const std::string& text);

  /// Canonical text form; parse(to_string()) reproduces *this exactly.
  std::string to_string() const;

  /// Builds the live scheduler.  Throws std::invalid_argument on unknown
  /// parameter keys, malformed or out-of-range values.
  SchedulerPtr make() const;

  const std::string& policy() const noexcept { return policy_; }
  const Params& params() const noexcept { return params_; }

  /// Expected scheduling events per "round" of per-agent progress — the
  /// exchange rate between the policy's discrete time axis and the
  /// synchronous model's: 1 for round-based policies, ~n for
  /// activation-based ones (sequential, adversarial, poisson), ⌈1/p⌉ for
  /// partial-async.  Callers use it to scale step budgets across policies.
  std::uint64_t steps_per_round(std::uint32_t n) const;

  /// True when one event wakes a single agent (sequential, adversarial,
  /// poisson) rather than running an O(n) phased round.  Drivers key
  /// completion-check amortization off this: an O(n) scan per O(1) event
  /// is worth amortizing, per O(n) round it is not.
  bool activation_based() const;

  bool operator==(const SchedulerSpec& other) const = default;

  // --- Typed parameter access (used by factories; throws on bad text). ---
  bool has_param(const std::string& key) const;
  double param_double(const std::string& key, double def) const;
  std::uint64_t param_uint(const std::string& key, std::uint64_t def) const;
  /// "+"-separated agent labels, e.g. "0+3+7"; empty when absent.
  std::vector<AgentId> param_agent_list(const std::string& key) const;

  // --- Named constructors for the shipped policies. ---
  static SchedulerSpec synchronous();
  /// Sharded synchronous rounds (sim/sharding.hpp): shards=1 collapses to
  /// the plain spec, so one call site covers serial and parallel runs.
  static SchedulerSpec synchronous(const ShardingConfig& sharding);
  static SchedulerSpec sequential();
  static SchedulerSpec partial_async(double wake_probability);
  /// Batched delivery: `blocks` contiguous label blocks wake in rotation,
  /// one per sub-step; shards=/threads= parallelize each masked sub-round.
  static SchedulerSpec batched(std::uint32_t blocks,
                               const ShardingConfig& sharding = {});
  static SchedulerSpec adversarial(const AdversarialConfig& cfg);
  static SchedulerSpec poisson(double rate = 1.0);
  /// The event-driven Poisson path (`poisson:queue=heap`): same model and
  /// policy name, O(log n) per event, distinct RNG stream (traces are not
  /// bit-comparable with the scan path).
  static SchedulerSpec poisson_heap(double rate = 1.0);

  /// One registry entry: how to build the policy and how its discrete time
  /// axis relates to synchronous rounds.
  struct Policy {
    std::function<SchedulerPtr(const SchedulerSpec&)> factory;
    std::function<std::uint64_t(std::uint32_t n, const SchedulerSpec&)>
        steps_per_round;
    std::vector<std::string> keys;  ///< Accepted parameter names.
    std::string summary;            ///< One-liner for --help style listings.
    bool activation_based = false;  ///< One event = one wake-up, not a round.
  };

  /// Registers (or replaces) a policy under `name`.
  static void register_policy(const std::string& name, Policy policy);

  /// Registered policy names, sorted.
  static std::vector<std::string> registered_policies();

  /// `name — summary` lines for every registered policy (CLI help text).
  static std::string describe_registry();

 private:
  SchedulerSpec(std::string policy, Params params);

  std::string policy_;
  Params params_;
};

/// Shortest decimal form of `value` that strtod's back exactly; keeps
/// to_string() canonical and human-readable ("0.25", not "0.250000").
std::string format_param_double(double value);

}  // namespace rfc::sim
