#include "sim/agent.hpp"

#include <stdexcept>

namespace rfc::sim {

const char* to_string(AgentPhase phase) noexcept {
  switch (phase) {
    case AgentPhase::kUnknown: return "unknown";
    case AgentPhase::kCommit: return "commit";
    case AgentPhase::kVote: return "vote";
    case AgentPhase::kSpread: return "spread";
    case AgentPhase::kConfirm: return "confirm";
    case AgentPhase::kDone: return "done";
  }
  return "unknown";
}

AgentPhase parse_agent_phase(const std::string& text) {
  for (const AgentPhase p : {AgentPhase::kCommit, AgentPhase::kVote,
                             AgentPhase::kSpread, AgentPhase::kConfirm,
                             AgentPhase::kDone}) {
    if (text == to_string(p)) return p;
  }
  throw std::invalid_argument("unknown agent phase \"" + text +
                              "\" (expected commit, vote, spread, confirm, "
                              "or done)");
}

}  // namespace rfc::sim
