#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace rfc::sim {

EventQueue::EventQueue(std::uint32_t n, Generation initial_generation) {
  reset(n, initial_generation);
}

void EventQueue::reset(std::uint32_t n, Generation initial_generation) {
  heap_.clear();
  gen_.assign(n, initial_generation);
  time_.assign(n, 0.0);
  pending_.assign(n, false);
  live_ = 0;
}

void EventQueue::schedule(AgentId u, double time) {
  if (!pending_.at(u)) {
    pending_[u] = true;
    ++live_;
  }
  // Bumping the generation orphans any previous entry for `u`; the fresh
  // entry is the only one carrying the new value.
  ++gen_[u];
  time_[u] = time;
  heap_.push_back({time, u, gen_[u]});
  std::push_heap(heap_.begin(), heap_.end(), later);
  maybe_compact();
}

void EventQueue::cancel(AgentId u) {
  if (!pending_.at(u)) return;
  pending_[u] = false;
  --live_;
  ++gen_[u];  // The heap entry is now stale; it dies lazily.
  maybe_compact();
}

EventQueue::Event EventQueue::pop() {
  assert(live_ > 0 && "pop() on an empty EventQueue");
  for (;;) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Entry e = heap_.back();
    heap_.pop_back();
    if (!is_live(e)) continue;  // Rescheduled or cancelled since its push.
    pending_[e.id] = false;
    --live_;
    maybe_compact();
    return {e.time, e.id};
  }
}

void EventQueue::maybe_compact() {
  if (heap_.size() <= 2 * live_ + kCompactionSlack) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !is_live(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), later);
}

}  // namespace rfc::sim
