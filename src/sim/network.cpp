#include "sim/network.hpp"

#include <algorithm>
#include <map>
#include <mutex>

namespace rfc::sim {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<PayloadTag, PayloadOps>& registry() {
  static std::map<PayloadTag, PayloadOps> r;
  return r;
}

bool find_ops(PayloadTag tag, PayloadOps* out) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(tag);
  if (it == registry().end()) return false;
  *out = it->second;
  return true;
}

}  // namespace

void register_payload_ops(PayloadTag tag, PayloadOps ops) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[tag] = ops;
}

Payload corrupt_payload(const Payload& payload, std::uint64_t salt) {
  if (payload.empty()) return {};
  if (payload.is_inline()) {
    // Generic in-transit bit flip: same tag, same advertised wire size, one
    // bit of the inline words inverted.  The flipped bit is confined to the
    // advertised bit_size so a 1-bit vote payload cannot grow a phantom
    // high word.
    const std::uint64_t bits =
        std::min<std::uint64_t>(payload.bit_size(),
                                Payload::kInlineWords * 64);
    if (bits == 0) return {};
    const std::uint64_t bit = salt % bits;
    std::uint64_t words[Payload::kInlineWords] = {
        payload.word(0), payload.word(1), payload.word(2)};
    words[bit / 64] ^= 1ull << (bit % 64);
    return Payload::inline_words(payload.tag(), payload.bit_size(), words[0],
                                 words[1], words[2]);
  }
  PayloadOps ops;
  if (!find_ops(payload.tag(), &ops) || ops.corrupt == nullptr) return {};
  return ops.corrupt(payload, salt);
}

Payload clone_payload(const Payload& payload) {
  // Inline and heap-shared boxed payloads are already safe to retain across
  // rounds; only arena-boxed objects need a deep copy before the barrier
  // resets their arena.
  if (!payload.is_arena_boxed()) return payload;
  PayloadOps ops;
  if (!find_ops(payload.tag(), &ops) || ops.clone == nullptr) return {};
  return ops.clone(payload);
}

}  // namespace rfc::sim
