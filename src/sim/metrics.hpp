// Exact communication accounting for a simulated execution.
#pragma once

#include <cstdint>

namespace rfc::sim {

struct Metrics {
  std::uint64_t rounds = 0;
  /// Simulated time accumulated from the scheduler's per-event increments:
  /// equals `rounds` under discrete (round/step) policies; under continuous
  /// ones (PoissonClockScheduler) it is the Gillespie clock, ~events/(λ·n).
  double virtual_time = 0.0;
  std::uint64_t pushes = 0;          ///< Push messages delivered or dropped.
  std::uint64_t pull_requests = 0;   ///< Pull requests issued.
  std::uint64_t pull_replies = 0;    ///< Non-silent pull replies.
  std::uint64_t total_bits = 0;      ///< Sum of all message payload bits
                                     ///< (requests count their header bits).
  std::uint64_t max_message_bits = 0;///< Largest single message observed.
  std::uint64_t active_links = 0;    ///< Non-idle active operations summed
                                     ///< over rounds (≤ n per round).
  std::uint64_t denials = 0;         ///< Wake-ups an adversarial policy
                                     ///< deliberately withheld from an
                                     ///< eligible agent — its spent
                                     ///< starvation budget.  0 under
                                     ///< non-adversarial schedulers.
  // Spent network-adversary faults (sim/network.hpp).  Like denials these
  // meter what the adversary *did*, not what it was allowed to do; all stay
  // 0 when no network model is installed or every rate is zero.
  std::uint64_t net_drops = 0;       ///< Messages lost in transit (charged
                                     ///< to the sender, never delivered).
  std::uint64_t net_dups = 0;        ///< Pushes delivered twice.
  std::uint64_t net_corruptions = 0; ///< Payloads tampered in transit (only
                                     ///< metered when bits actually flipped).
  std::uint64_t net_delays = 0;      ///< Pushes deferred: reordered within
                                     ///< their round or delayed across
                                     ///< rounds.
  std::uint64_t churn_crashes = 0;   ///< Agents taken down by churn epochs.

  std::uint64_t messages() const noexcept {
    return pushes + pull_requests + pull_replies;
  }

  void note_message(std::uint64_t bits) noexcept {
    total_bits += bits;
    if (bits > max_message_bits) max_message_bits = bits;
  }

  /// Folds another Metrics in: counters add, max_message_bits maxes.  Used
  /// to merge per-shard round deltas (sim/sharding.hpp), where both
  /// operations are merge-order independent — which is what makes sharded
  /// totals equal the serial interleaving's.  Lives here so a new field
  /// cannot be added without deciding how it merges (see the size guard
  /// below).
  void merge_from(const Metrics& other) noexcept {
    rounds += other.rounds;
    virtual_time += other.virtual_time;
    pushes += other.pushes;
    pull_requests += other.pull_requests;
    pull_replies += other.pull_replies;
    total_bits += other.total_bits;
    if (other.max_message_bits > max_message_bits) {
      max_message_bits = other.max_message_bits;
    }
    active_links += other.active_links;
    denials += other.denials;
    net_drops += other.net_drops;
    net_dups += other.net_dups;
    net_corruptions += other.net_corruptions;
    net_delays += other.net_delays;
    churn_crashes += other.churn_crashes;
  }
};

// Bumping this on a layout change is the reminder to extend merge_from
// (and the field-by-field comparisons in the equivalence tests) in the
// same commit: a field missing from the merge silently vanishes from
// sharded runs' totals.
static_assert(sizeof(Metrics) == 14 * sizeof(std::uint64_t),
              "Metrics changed: update Metrics::merge_from to cover every "
              "field, then adjust this guard");

}  // namespace rfc::sim
