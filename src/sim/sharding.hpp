// Sharded execution of the synchronous phased round — the parallel path of
// the "sharded EngineCore" design.
//
// ShardedRoundExecutor partitions the label space [n] into S *contiguous*
// shards and runs each phase of EngineCore::run_synchronous_round as S
// parallel tasks on a support::ThreadPool, with a barrier between phases:
//
//   Phase A (by self-shard):    collect each awake agent's action; pulls
//                               and pushes are routed into per-(source,
//                               destination)-shard queues.
//   Phase B (by server-shard):  serve pulls.  Each destination shard drains
//                               its queues in source-shard order; because
//                               shards are contiguous label ranges and
//                               phase A fills queues in label order, every
//                               server sees its pullers in global
//                               requester-label order — the serial engine's
//                               order, exactly.
//   Phase C (by puller-shard):  deliver pull replies in puller-label order.
//   Phase D (by target-shard):  deliver pushes; the source-shard merge
//                               again reproduces global sender-label order
//                               per receiver.
//
// Determinism: each agent (its state and its private RNG stream) is touched
// by exactly one shard per phase — phase A/C by its own shard, phase B/D by
// the shard owning it as pull-server/push-target — and phases are separated
// by pool barriers.  Message accounting goes to per-shard Metrics scratch
// merged in shard order after the round; all counters are sums (plus one
// max), so the merged totals equal the serial interleaving's.  The result
// is *bit-identical* to EngineCore::run_synchronous_round for every
// (shards, threads) combination, including thread counts exceeding the
// core count (tests/sharded_equivalence_test.cpp pins this).
//
// Requirements on agents: callbacks must only touch the agent's own state
// and the Context handed to them (true of every shipped protocol agent).
// Agents sharing mutable state across labels — the rational::Coalition
// blackboard — declare it via Agent::shard_safe() == false, and the
// executor fails fast at setup instead of silently racing; run those with
// shards=1.  Setup also prefetches each shard's per-agent RNG streams on
// its own worker (the streams are pure functions of (seed, label), so the
// parallel derivation is trace-identical to the serial one).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/agent.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace rfc::support {
class ThreadPool;
}  // namespace rfc::support

namespace rfc::sim {

class EngineCore;

struct ShardingConfig {
  /// Contiguous label shards per round; 1 = the serial engine.
  std::uint32_t shards = 1;
  /// Worker threads; 0 = hardware concurrency.  Any value yields the same
  /// execution — threads only control how shard tasks are scheduled.
  std::uint32_t threads = 0;
};

/// First label of block `b` when [0, n) is cut into `blocks` contiguous
/// near-equal blocks — the one partition rule shared by the sharded round,
/// the batched-delivery scheduler, and EngineView's shard-geometry
/// observations, so "block" means the same label range everywhere.
/// `block_begin(n, blocks, blocks)` is n.
constexpr std::uint32_t contiguous_block_begin(std::uint32_t n,
                                               std::uint32_t blocks,
                                               std::uint32_t b) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(n) * b /
                                    blocks);
}

class ShardedRoundExecutor {
 public:
  explicit ShardedRoundExecutor(ShardingConfig cfg);
  ~ShardedRoundExecutor();

  ShardedRoundExecutor(const ShardedRoundExecutor&) = delete;
  ShardedRoundExecutor& operator=(const ShardedRoundExecutor&) = delete;

  const ShardingConfig& config() const noexcept { return cfg_; }

  /// Executes one synchronous phased round over `core` (mask semantics as
  /// in EngineCore::run_synchronous_round), bit-identical to the serial
  /// round.  With shards <= 1 this delegates to the serial path.
  void run_round(EngineCore& core, const std::vector<bool>* awake_mask);

 private:
  /// One routed pull: `requester` pulls `server` (server's shard serves).
  struct PullItem {
    AgentId requester;
    AgentId server;
  };

  /// Lazily sizes the shard map and scratch to `core` (n is fixed per
  /// engine) and spins up the pool.
  void bind(EngineCore& core);
  /// Runs fn(shard) for every shard on the pool and waits (a barrier).
  void parallel_phase(const std::function<void(std::uint32_t)>& fn);

  ShardingConfig cfg_;
  std::unique_ptr<rfc::support::ThreadPool> pool_;
  std::uint32_t bound_n_ = 0;
  std::uint32_t shards_ = 1;              ///< Effective count, <= cfg.shards.
  std::vector<std::uint32_t> shard_begin_;  ///< size shards_+1; [s, s+1).
  std::vector<std::uint32_t> shard_of_;     ///< label -> owning shard.
  std::vector<Metrics> shard_metrics_;      ///< Per-round deltas, merged.
  /// Cross-shard routing queues, indexed [source * shards_ + destination];
  /// cleared (capacity kept) every round.
  std::vector<std::vector<PullItem>> pull_queues_;
  std::vector<std::vector<AgentId>> push_queues_;
  /// Per-shard pullers of the current round, in label order — phase C walks
  /// these instead of rescanning its whole shard range.  Cleared (capacity
  /// kept) every round, like the routing queues.
  std::vector<std::vector<AgentId>> shard_pullers_;
  /// Per-shard network-fault sinks of phase D (delayed / reordered pushes),
  /// merged into the core's pending lists at the barrier; the merged order
  /// is irrelevant because delivery sorts (see sim::DelayedPush).  Empty
  /// unless a fault-enabled network model is installed.
  std::vector<std::vector<DelayedPush>> shard_delayed_;
  std::vector<std::vector<DelayedPush>> shard_deferred_;
  std::vector<DelayedPush> deferred_merge_;
};

}  // namespace rfc::sim
