// The asynchronous (sequential) GOSSIP model — the paper's second open
// problem: "at every round, only one (possibly random) agent is awake".
//
// Each *step* wakes one uniformly random active agent, which performs one
// active operation (push or pull, answered immediately).  Time is measured
// in steps; n steps correspond to one synchronous round's worth of
// activations in expectation, so Θ(log n)-round synchronous primitives
// become Θ(n log n)-step asynchronous ones.
//
// Protocol P itself relies on globally aligned phases and is NOT directly
// runnable here — that is exactly why the paper leaves the model open.  The
// engine reuses the same Agent interface so the epidemic substrate
// (gossip::RumorAgent etc. — any agent whose behaviour does not depend on
// the global round number) runs unchanged, and experiment E12 quantifies
// the synchronous-vs-sequential cost gap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/agent.hpp"
#include "sim/metrics.hpp"
#include "sim/topology.hpp"

namespace rfc::sim {

struct AsyncEngineConfig {
  AsyncEngineConfig() = default;
  AsyncEngineConfig(std::uint32_t n_, std::uint64_t seed_ = 1,
                    TopologyPtr topology_ = nullptr)
      : n(n_), seed(seed_), topology(std::move(topology_)) {}

  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  TopologyPtr topology;  ///< Null = complete graph.
};

class AsyncEngine {
 public:
  explicit AsyncEngine(AsyncEngineConfig cfg);

  void set_agent(AgentId id, std::unique_ptr<Agent> agent);
  void set_faulty(AgentId id, bool faulty = true);

  bool is_faulty(AgentId id) const { return faulty_.at(id); }
  std::uint32_t n() const noexcept { return cfg_.n; }
  std::uint64_t steps() const noexcept { return steps_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  Agent& agent(AgentId id) { return *agents_.at(id); }
  const Agent& agent(AgentId id) const { return *agents_.at(id); }

  /// Wakes one u.a.r. active agent and executes its operation.  The woken
  /// agent's Context carries the step count in `round` (agents that key
  /// behaviour off a synchronized round counter are not meaningful here).
  void step();

  /// Runs until all active agents are done() or `max_steps` elapse; returns
  /// steps executed.
  std::uint64_t run(std::uint64_t max_steps);

  bool all_done() const;

 private:
  Context make_context(AgentId id) noexcept;

  AsyncEngineConfig cfg_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<bool> faulty_;
  std::vector<rfc::support::Xoshiro256> rngs_;
  std::vector<AgentId> active_;  ///< Labels eligible to wake.
  rfc::support::Xoshiro256 scheduler_rng_;
  std::uint64_t steps_ = 0;
  bool started_ = false;
  Metrics metrics_;
};

}  // namespace rfc::sim
