// Network topologies for the GOSSIP engine.
//
// The paper analyzes the complete graph; its first open problem asks for
// GOSSIP rational fair consensus "in other relevant classes of graphs".
// This module supplies the substrate for that exploration: a topology
// abstraction the engine samples neighbors from, with the canonical graph
// families (complete, ring lattice, random d-regular via cycle unions,
// Erdős–Rényi).  Experiment E11 measures where the protocol's Θ(log n)
// behaviour survives (expanders) and where it breaks (rings).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace rfc::sim {

using AgentId = std::uint32_t;

class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::uint32_t n() const noexcept = 0;
  virtual std::string name() const = 0;

  /// A neighbor of `u` chosen u.a.r. (the GOSSIP "contact a random
  /// neighbor" primitive).  For an isolated node, returns `u` itself.
  virtual AgentId sample_neighbor(AgentId u,
                                  rfc::support::Xoshiro256& rng) const = 0;

  virtual std::uint32_t degree(AgentId u) const = 0;
  virtual bool are_adjacent(AgentId u, AgentId v) const = 0;
};

using TopologyPtr = std::shared_ptr<const Topology>;

/// The complete graph K_n (with self-contacts allowed, matching the paper's
/// "choose u.a.r. in [n]" — a self-contact is a wasted operation).
TopologyPtr make_complete(std::uint32_t n);

/// Ring lattice: each node adjacent to the k nearest nodes on each side
/// (degree 2k).  Diameter Θ(n/k): the worst case for gossip.
TopologyPtr make_ring(std::uint32_t n, std::uint32_t k = 1);

/// Random (approximately) d-regular graph built as the union of d/2
/// independent random cycles (d even, d >= 2).  An expander w.h.p.
TopologyPtr make_random_regular(std::uint32_t n, std::uint32_t d,
                                std::uint64_t seed);

/// Erdős–Rényi G(n, p).  Connected w.h.p. for p >= (1+ε) ln n / n.
TopologyPtr make_erdos_renyi(std::uint32_t n, double p, std::uint64_t seed);

}  // namespace rfc::sim
