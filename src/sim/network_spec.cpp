#include "sim/network_spec.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sim/scheduler_spec.hpp"  // format_param_double
#include "support/parse.hpp"

namespace rfc::sim {

namespace {

using Registry = std::map<std::string, NetworkSpec::Policy>;

[[noreturn]] void bad_value(const std::string& policy, const std::string& key,
                            const std::string& value, const char* expected) {
  throw std::invalid_argument("NetworkSpec: " + policy + ":" + key + "=\"" +
                              value + "\" is not " + expected);
}

/// Reads a probability parameter; rejects NaN and values outside [0, 1] at
/// make() time with the key name in the message.
double probability_from(const NetworkSpec& spec, const std::string& key) {
  const double value = spec.param_double(key, 0.0);
  if (!(value >= 0.0 && value <= 1.0)) {  // Also catches NaN.
    bad_value(spec.policy(), key,
              spec.has_param(key) ? spec.params().at(key) : "",
              "a probability in [0, 1]");
  }
  return value;
}

NetworkModel::Rates rates_from(const NetworkSpec& spec) {
  NetworkModel::Rates rates;
  rates.drop = probability_from(spec, "drop");
  rates.dup = probability_from(spec, "dup");
  rates.reorder = probability_from(spec, "reorder");
  rates.corrupt = probability_from(spec, "corrupt");
  rates.churn = probability_from(spec, "churn");
  rates.delay = spec.param_uint("delay", 0);
  rates.rejoin = spec.param_uint("rejoin", 0);
  rates.seed = spec.param_uint("seed", 0);
  return rates;
}

Registry make_builtin_registry() {
  Registry reg;
  reg["network"] = {
      [](const NetworkSpec& spec) {
        return std::make_unique<NetworkModel>(rates_from(spec));
      },
      {"drop", "dup", "reorder", "delay", "corrupt", "churn", "rejoin",
       "seed"},
      "the i.i.d. message adversary: drop=p loses messages, dup=p doubles "
      "pushes, reorder=p defers pushes to the end of the delivery phase, "
      "delay=k spreads pushes over 0..k later rounds, corrupt=p flips "
      "payload bits in transit, churn=p crashes up agents each round "
      "(rejoin=k rounds later; rejoin=0 means for good), seed=s picks the "
      "fault stream; all rates zero (the default) is the reliable network"};
  return reg;
}

Registry& registry() {
  static Registry reg = make_builtin_registry();
  return reg;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// By value for the same reason as SchedulerSpec's find_policy: the registry
// can be amended at runtime and make() runs on Monte-Carlo worker threads.
NetworkSpec::Policy find_policy(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& [n, p] : registry()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("NetworkSpec: unknown policy \"" + name +
                                "\" (registered: " + known + ")");
  }
  return it->second;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

NetworkSpec::NetworkSpec() : policy_("network") {}

NetworkSpec::NetworkSpec(std::string policy, Params params)
    : policy_(std::move(policy)), params_(std::move(params)) {}

NetworkSpec NetworkSpec::parse(const std::string& text) {
  const auto colon = text.find(':');
  const std::string name = trim(text.substr(0, colon));
  if (name.empty()) {
    throw std::invalid_argument("NetworkSpec: empty policy name in \"" +
                                text + "\"");
  }
  find_policy(name);  // Fail fast on unknown policies.

  Params params;
  if (colon != std::string::npos) {
    std::string rest = text.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
      const auto comma = rest.find(',', pos);
      const std::string item = trim(
          rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
      if (item.empty()) {
        throw std::invalid_argument("NetworkSpec: empty parameter in \"" +
                                    text + "\"");
      }
      const auto eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("NetworkSpec: expected key=value, got \"" +
                                    item + "\" in \"" + text + "\"");
      }
      const std::string key = trim(item.substr(0, eq));
      if (!params.emplace(key, trim(item.substr(eq + 1))).second) {
        throw std::invalid_argument("NetworkSpec: duplicate parameter \"" +
                                    key + "\" in \"" + text + "\"");
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return NetworkSpec(name, std::move(params));
}

std::string NetworkSpec::to_string() const {
  std::string out = policy_;
  char sep = ':';
  for (const auto& [key, value] : params_) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

NetworkModelPtr NetworkSpec::make() const {
  const Policy policy = find_policy(policy_);
  for (const auto& [key, value] : params_) {
    if (std::find(policy.keys.begin(), policy.keys.end(), key) ==
        policy.keys.end()) {
      throw std::invalid_argument("NetworkSpec: policy \"" + policy_ +
                                  "\" has no parameter \"" + key + "\"");
    }
  }
  return policy.factory(*this);
}

bool NetworkSpec::inert() const {
  const NetworkModelPtr model = make();
  return !model->message_faults() && !model->has_churn();
}

bool NetworkSpec::has_param(const std::string& key) const {
  return params_.count(key) > 0;
}

double NetworkSpec::param_double(const std::string& key, double def) const {
  const auto it = params_.find(key);
  if (it == params_.end()) return def;
  double value = 0.0;
  if (!rfc::support::parse_number(it->second, value)) {
    bad_value(policy_, key, it->second, "a number");
  }
  return value;
}

std::uint64_t NetworkSpec::param_uint(const std::string& key,
                                      std::uint64_t def) const {
  const auto it = params_.find(key);
  if (it == params_.end()) return def;
  std::uint64_t value = 0;
  if (!rfc::support::parse_uint64(it->second, value)) {
    bad_value(policy_, key, it->second, "a non-negative integer");
  }
  return value;
}

NetworkSpec NetworkSpec::none() { return NetworkSpec(); }

NetworkSpec NetworkSpec::lossy(double drop, std::uint64_t seed) {
  Params params;
  params["drop"] = format_param_double(drop);
  if (seed != 0) params["seed"] = std::to_string(seed);
  return NetworkSpec("network", std::move(params));
}

void NetworkSpec::register_policy(const std::string& name, Policy policy) {
  if (name.empty() || name.find(':') != std::string::npos ||
      name.find(',') != std::string::npos) {
    throw std::invalid_argument(
        "NetworkSpec: policy names must be non-empty and free of ':'/','");
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = std::move(policy);
}

std::vector<std::string> NetworkSpec::registered_policies() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, policy] : registry()) names.push_back(name);
  return names;
}

std::string NetworkSpec::describe_registry() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::string out;
  for (const auto& [name, policy] : registry()) {
    out += "  " + name + " — " + policy.summary + "\n";
  }
  return out;
}

}  // namespace rfc::sim
