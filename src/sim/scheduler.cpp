#include "sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/engine_core.hpp"
#include "sim/engine_view.hpp"

namespace rfc::sim {

void Scheduler::attach(EngineCore& /*core*/) {}

SynchronousScheduler::SynchronousScheduler(ShardingConfig sharding)
    : executor_(sharding) {}

double SynchronousScheduler::step(EngineCore& core,
                                  const EngineView& /*view*/) {
  executor_.run_round(core, nullptr);
  return 1.0;
}

SequentialScheduler::SequentialScheduler(bool skip_wasted)
    : skip_wasted_(skip_wasted) {}

void SequentialScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), kStream));
  active_.reset();  // Rebind: refill from the new core, capacity kept.
}

double SequentialScheduler::step(EngineCore& core,
                                 const EngineView& /*view*/) {
  if (!active_.built()) {
    if (skip_wasted_) core.ensure_started();  // done() reads agent state.
    core.active_labels(active_.mutable_labels());
    active_.mark_built();
  }
  if (!skip_wasted_) {
    // The pinned contract: draws cover the initial active list forever, so
    // a drawn finished agent consumes the step as a wasted activation.
    if (active_.empty()) return 0.0;
    const AgentId u = active_.at(rng_.below(active_.size()));
    core.sequential_activation(u);
    return 1.0;
  }
  // wasted=skip: lazy swap-remove compaction, exactly the Poisson sampler's
  // discipline — a drawn agent observed done() leaves the pool and the draw
  // repeats (amortized O(1): each label is removed at most once), so every
  // step wakes a live agent and an empty pool ends the run.
  while (!active_.empty()) {
    const std::size_t k = rng_.below(active_.size());
    const AgentId u = active_.at(k);
    if (core.agent_done(u)) {
      active_.swap_remove(k);
      continue;
    }
    core.sequential_activation(u);
    return 1.0;
  }
  return 0.0;
}

PartialAsyncScheduler::PartialAsyncScheduler(double wake_probability,
                                             ShardingConfig sharding)
    : p_(wake_probability), executor_(sharding) {
  if (!(p_ >= 0.0 && p_ <= 1.0)) {
    throw std::invalid_argument(
        "PartialAsyncScheduler: wake probability must be in [0, 1]");
  }
}

void PartialAsyncScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), kStream));
}

double PartialAsyncScheduler::step(EngineCore& core,
                                   const EngineView& /*view*/) {
  if (awake_.size() != core.n()) awake_.assign(core.n(), false);
  // One draw per label, faulty included, so the wake pattern of agent i is
  // independent of the fault plan (mirrors the per-agent RNG streams).
  for (std::uint32_t i = 0; i < core.n(); ++i) {
    awake_[i] = rng_.bernoulli(p_);
  }
  executor_.run_round(core, &awake_);
  return 1.0;
}

BatchedDeliveryScheduler::BatchedDeliveryScheduler(BatchedDeliveryConfig cfg)
    : cfg_(cfg), executor_(cfg.sharding) {
  if (cfg_.blocks == 0) {
    throw std::invalid_argument(
        "BatchedDeliveryScheduler: blocks must be positive");
  }
}

double BatchedDeliveryScheduler::step(EngineCore& core,
                                      const EngineView& /*view*/) {
  if (bound_n_ != core.n()) {
    bound_n_ = core.n();
    blocks_ = cfg_.blocks < bound_n_ ? cfg_.blocks : bound_n_;
    awake_.assign(bound_n_, false);
    next_block_ = 0;
    sub_steps_ = 0;
  }
  const std::uint32_t lo =
      contiguous_block_begin(bound_n_, blocks_, next_block_);
  const std::uint32_t hi =
      contiguous_block_begin(bound_n_, blocks_, next_block_ + 1);
  for (std::uint32_t i = lo; i < hi; ++i) awake_[i] = true;
  executor_.run_round(core, &awake_);
  for (std::uint32_t i = lo; i < hi; ++i) awake_[i] = false;
  next_block_ = (next_block_ + 1) % blocks_;
  // One full rotation of B sub-steps activates every agent once — a round.
  // Returning the *difference of exact prefix times* k/B instead of a flat
  // 1/B makes the engine's accumulated virtual time equal fl(k/B) at every
  // sub-step k (consecutive prefixes are within Sterbenz range, so the
  // subtraction — and hence the accumulation — is exact): after 2 full
  // rotations of block=3 the clock reads exactly 2.0, so virtual-time
  // horizons hit round boundaries bit-exactly under every block count.
  ++sub_steps_;
  const double before =
      static_cast<double>(sub_steps_ - 1) / static_cast<double>(blocks_);
  const double after =
      static_cast<double>(sub_steps_) / static_cast<double>(blocks_);
  return after - before;
}

const char* to_string(ReactiveTarget target) noexcept {
  switch (target) {
    case ReactiveTarget::kNone: return "";
    case ReactiveTarget::kMinCert: return "min-cert";
    case ReactiveTarget::kLaggard: return "laggard";
    case ReactiveTarget::kQuorumEdge: return "quorum-edge";
  }
  return "";
}

ReactiveTarget parse_reactive_target(const std::string& text) {
  for (const ReactiveTarget t :
       {ReactiveTarget::kMinCert, ReactiveTarget::kLaggard,
        ReactiveTarget::kQuorumEdge}) {
    if (text == to_string(t)) return t;
  }
  throw std::invalid_argument(
      "unknown reactive target rule \"" + text +
      "\" (expected min-cert, laggard, or quorum-edge)");
}

PhaseAdversarialScheduler::PhaseAdversarialScheduler(AdversarialConfig cfg)
    : cfg_(std::move(cfg)) {
  if (!(cfg_.victim_fraction >= 0.0 && cfg_.victim_fraction <= 1.0)) {
    throw std::invalid_argument(
        "PhaseAdversarialScheduler: victim fraction must be in [0, 1]");
  }
}

void PhaseAdversarialScheduler::plan_victims(EngineCore& /*core*/,
                                             const EngineView& /*view*/) {
  // Static/phase adversary: the victim set was fixed by build_order.
}

void PhaseAdversarialScheduler::note_wake(AgentId /*u*/) {}

void PhaseAdversarialScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), cfg_.stream));
  // Rebind: the pool describes the previous core; rebuild it lazily at the
  // next step.  (attach runs once per Engine bind, never mid-run.)
  order_built_ = false;
  cursor_ = 0;
  done_log_cursor_ = 0;
}

void PhaseAdversarialScheduler::pool_swap_remove(std::size_t k) {
  const AgentId removed = pool_[k];
  pool_[k] = pool_.back();
  pool_.pop_back();
  if (!pool_pos_.empty()) {
    pool_pos_[removed] = kNoPoolPos;
    if (k < pool_.size()) {
      pool_pos_[pool_[k]] = static_cast<std::uint32_t>(k);
    }
  }
  // Removing in front of the round-robin head shifts the head's slot left;
  // removing at the head leaves the moved-in label at the head, exactly the
  // walk's in-place discipline.  A past-the-end cursor is normalized by the
  // walk before every read.
  if (k < cursor_) --cursor_;
}

void PhaseAdversarialScheduler::prune_pool(EngineCore& core) {
  if (!cfg_.skip_wasted || !core.done_log_enabled() || pool_pos_.empty()) {
    return;
  }
  const std::vector<AgentId>& log = core.done_log();
  for (; done_log_cursor_ < log.size(); ++done_log_cursor_) {
    const std::uint32_t k = pool_pos_[log[done_log_cursor_]];
    if (k != kNoPoolPos) pool_swap_remove(k);
  }
}

void PhaseAdversarialScheduler::build_order(EngineCore& core) {
  core.active_labels(pool_);
  walk_stamp_.assign(core.n(), 0);
  for (std::size_t i = pool_.size(); i > 1; --i) {
    std::swap(pool_[i - 1], pool_[rng_.below(i)]);
  }
  if (cfg_.skip_wasted) {
    // Label -> pool index, maintained by pool_swap_remove so the done-log
    // drain can evict by label in O(1).  Cursor 0: pre-build log entries
    // (on_start completions) evict on the first prune instead of absorbing
    // lazy walk slots.
    pool_pos_.assign(core.n(), kNoPoolPos);
    for (std::size_t k = 0; k < pool_.size(); ++k) {
      pool_pos_[pool_[k]] = static_cast<std::uint32_t>(k);
    }
    done_log_cursor_ = 0;
  }
  victim_.assign(core.n(), false);
  if (!cfg_.victim_ids.empty()) {
    // Explicit victim set: pin exactly these labels.  A faulty or
    // out-of-range victim is marked but never walked (it is not in the
    // pool), i.e. it is already maximally delayed — so one victim list
    // works across a sweep over n.
    for (const AgentId id : cfg_.victim_ids) {
      if (id < core.n()) victim_[id] = true;
    }
  } else {
    const auto num_victims = static_cast<std::size_t>(std::ceil(
        cfg_.victim_fraction * static_cast<double>(pool_.size())));
    for (std::size_t i = 0; i < num_victims && i < pool_.size(); ++i) {
      victim_[pool_[i]] = true;
    }
  }
  order_built_ = true;
}

double PhaseAdversarialScheduler::step(EngineCore& core,
                                       const EngineView& view) {
  core.ensure_started();  // Observations below read agent state.
  if (!order_built_) build_order(core);
  prune_pool(core);  // wasted=skip: evict done-log entries eagerly.
  plan_victims(core, view);  // Reactive policies re-rank every step.
  // One round-robin walk from the cursor: done agents are swap-removed
  // (amortized O(1) per step), starved victims are passed over with one
  // provisional denial each, and the first non-starved agent wakes.
  // Denials commit only if someone else actually woke instead — a full lap
  // of starved agents wakes the round-robin head free of charge.  A
  // swap-removal can rotate an already-passed victim back in front of the
  // cursor, so skips are deduplicated by a per-walk stamp and the walk
  // length is budgeted by the pool size at entry, not the shrinking size —
  // otherwise a re-inspected victim could double-charge and end the lap
  // before a wakeable agent was ever examined.
  ++walk_id_;
  std::uint64_t provisional = 0;
  std::size_t slots_left = pool_.size();
  AgentId chosen = kNoAgent;
  while (!pool_.empty() && slots_left > 0) {
    if (cursor_ >= pool_.size()) cursor_ = 0;
    const AgentId u = pool_[cursor_];
    if (core.agent_done(u)) {
      // Done for good (the Agent contract has no way back); consumes no
      // walk slot.  Kept even under wasted=skip: the done log is only an
      // accelerator (it is absent when the SoA caches are off), so the walk
      // must still tolerate done agents surfacing in the pool.
      pool_swap_remove(cursor_);
      continue;
    }
    const bool within_budget =
        cfg_.budget == 0 || spent_ + provisional < cfg_.budget;
    if (victim_[u] && within_budget &&
        (cfg_.target_phase == AgentPhase::kUnknown ||
         view.phase(u) == cfg_.target_phase)) {
      if (walk_stamp_[u] != walk_id_) {
        walk_stamp_[u] = walk_id_;
        ++provisional;
      }
      ++cursor_;
      --slots_left;
      continue;
    }
    chosen = u;
    ++cursor_;
    break;
  }
  if (pool_.empty()) return 0.0;  // Everyone done; the run loop exits.
  if (chosen == kNoAgent) {
    // Every remaining agent is starved: the adversary must schedule
    // someone, so the round-robin head wakes and nothing is charged (a
    // delay applied to everyone equally is no delay at all).
    if (cursor_ >= pool_.size()) cursor_ = 0;
    chosen = pool_[cursor_];
    ++cursor_;
  } else if (provisional != 0) {
    spent_ += provisional;
    core.note_denials(provisional);
  }
  note_wake(chosen);
  core.sequential_activation(chosen);
  return 1.0;
}

ReactiveAdversarialScheduler::ReactiveAdversarialScheduler(
    AdversarialConfig cfg)
    : PhaseAdversarialScheduler(std::move(cfg)) {
  if (cfg_.target == ReactiveTarget::kNone) {
    throw std::invalid_argument(
        "ReactiveAdversarialScheduler: a targeting rule is required "
        "(min-cert, laggard, or quorum-edge)");
  }
  if (!cfg_.victim_ids.empty()) {
    throw std::invalid_argument(
        "ReactiveAdversarialScheduler: target= selects victims from "
        "observations; drop victims=");
  }
}

void ReactiveAdversarialScheduler::plan_victims(EngineCore& core,
                                                const EngineView& view) {
  if (last_wake_.size() != core.n()) {
    last_wake_.assign(core.n(), 0);
    // First plan after a bind: build_order marked its static prefix; wipe
    // the whole bitmap once, then track our own marks so later plans clear
    // in O(marked) instead of O(n).
    std::fill(victim_.begin(), victim_.end(), false);
    marked_.clear();
  } else {
    for (const AgentId u : marked_) victim_[u] = false;
    marked_.clear();
  }
  // Candidates: the wakeable pool minus agents already done (the walk
  // removes those lazily; wasting victim slots on them would dilute the
  // attack).  Keys are computed once per agent — one progress() observation
  // each — and smaller keys starve first:
  //   min-cert     progress itself (weakest holder first);
  //   laggard      the wake clock — the agent whose local clock lags
  //                virtual time the most; starving it keeps it the
  //                laggard, maximizing clock skew;
  //   quorum-edge  minus the fraction-of-current-stage, so the agents one
  //                wake-up short of a phase boundary rank first.
  ranked_.clear();
  for (const AgentId u : pool_) {
    if (core.agent_done(u)) continue;
    double key = 0.0;
    switch (cfg_.target) {
      case ReactiveTarget::kMinCert:
        key = view.progress(u);
        break;
      case ReactiveTarget::kLaggard:
        key = static_cast<double>(last_wake_[u]);
        break;
      case ReactiveTarget::kQuorumEdge: {
        const double p = view.progress(u);
        key = std::floor(p) - p;  // = -frac(p), in (-1, 0].
        break;
      }
      case ReactiveTarget::kNone:
        return;  // Unreachable: the constructor rejects kNone.
    }
    ranked_.push_back({key, u});
  }
  if (ranked_.empty()) return;
  const auto k = static_cast<std::size_t>(std::ceil(
      cfg_.victim_fraction * static_cast<double>(ranked_.size())));
  if (k == 0) return;
  const std::size_t starved = k < ranked_.size() ? k : ranked_.size();
  // The label tie-break makes the order strict and total, so the starved
  // *set* is unique — a partial selection suffices and the run stays a
  // pure function of the master seed.
  const auto first = [](const Ranked& a, const Ranked& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  };
  if (starved < ranked_.size()) {
    std::nth_element(ranked_.begin(), ranked_.begin() + (starved - 1),
                     ranked_.end(), first);
  }
  for (std::size_t i = 0; i < starved; ++i) {
    victim_[ranked_[i].id] = true;
    marked_.push_back(ranked_[i].id);
  }
}

void ReactiveAdversarialScheduler::note_wake(AgentId u) {
  if (last_wake_.size() <= u) last_wake_.resize(u + 1, 0);
  last_wake_[u] = ++wake_counter_;
}

PoissonClockScheduler::PoissonClockScheduler(double rate) : rate_(rate) {
  if (!(rate_ > 0.0)) {
    throw std::invalid_argument(
        "PoissonClockScheduler: clock rate must be positive");
  }
}

void PoissonClockScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), kStream));
  active_.reset();  // Rebind: refill from the new core, capacity kept.
}

double PoissonClockScheduler::step(EngineCore& core,
                                   const EngineView& /*view*/) {
  core.ensure_started();  // The done() observations below read agent state.
  if (!active_.built()) {
    core.active_labels(active_.mutable_labels());
    active_.mark_built();
  }
  // Superposition of |active| independent rate-λ clocks: the next tick is
  // uniform over agents and Exp(λ·|active|)-distributed in time.  Agent
  // first, time second — the pinned draw order.  A drawn agent observed
  // done() is swap-removed and the draw repeats (amortized O(1): each label
  // is removed at most once), so dead clocks neither absorb wake-ups nor
  // inflate the aggregate rate below.
  AgentId u = kNoAgent;
  while (!active_.empty()) {
    const std::size_t k = rng_.below(active_.size());
    const AgentId candidate = active_.at(k);
    if (core.agent_done(candidate)) {
      active_.swap_remove(k);
      continue;
    }
    u = candidate;
    break;
  }
  if (u == kNoAgent) return 0.0;
  const double aggregate_rate =
      rate_ * static_cast<double>(active_.size());
  // uniform01() ∈ [0, 1), so the argument of log1p stays in (-1, 0].
  const double dt = -std::log1p(-rng_.uniform01()) / aggregate_rate;
  core.sequential_activation(u);
  return dt;
}

EventDrivenPoissonScheduler::EventDrivenPoissonScheduler(double rate)
    : rate_(rate) {
  if (!(rate_ > 0.0)) {
    throw std::invalid_argument(
        "EventDrivenPoissonScheduler: clock rate must be positive");
  }
}

void EventDrivenPoissonScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), kStream));
  built_ = false;  // Rebind: rebuild the heap from the new core's agents.
}

double EventDrivenPoissonScheduler::exp_interarrival() {
  // uniform01() ∈ [0, 1), so the argument of log1p stays in (-1, 0].
  return -std::log1p(-rng_.uniform01()) / rate_;
}

double EventDrivenPoissonScheduler::step(EngineCore& core,
                                         const EngineView& /*view*/) {
  if (!built_) {
    core.ensure_started();  // The done() observations below read agent state.
    queue_.reset(core.n());
    // Seed every live clock in label order (the deterministic build order):
    // faulty agents are excluded by active_labels(), already-done agents
    // never enter the heap.  The scratch keeps its capacity across rebinds.
    core.active_labels(labels_scratch_);
    for (const AgentId u : labels_scratch_) {
      if (!core.agent_done(u)) queue_.schedule(u, exp_interarrival());
    }
    built_ = true;
  }
  while (!queue_.empty()) {
    const EventQueue::Event event = queue_.pop();
    if (core.agent_done(event.id)) continue;  // Finished off-turn: drop.
    const double dt = event.time - now_;
    now_ = event.time;
    core.sequential_activation(event.id);
    // Re-arm the clock unless the activation completed the agent — done()
    // is monotone ("done for good"), so a dropped clock never returns.
    if (!core.agent_done(event.id)) {
      queue_.schedule(event.id, now_ + exp_interarrival());
    }
    return dt;
  }
  return 0.0;
}

SchedulerPtr make_synchronous_scheduler(ShardingConfig sharding) {
  return std::make_unique<SynchronousScheduler>(sharding);
}

SchedulerPtr make_sequential_scheduler(bool skip_wasted) {
  return std::make_unique<SequentialScheduler>(skip_wasted);
}

SchedulerPtr make_partial_async_scheduler(double wake_probability,
                                          ShardingConfig sharding) {
  return std::make_unique<PartialAsyncScheduler>(wake_probability, sharding);
}

SchedulerPtr make_batched_delivery_scheduler(BatchedDeliveryConfig cfg) {
  return std::make_unique<BatchedDeliveryScheduler>(cfg);
}

SchedulerPtr make_adversarial_scheduler(AdversarialConfig cfg) {
  if (cfg.target != ReactiveTarget::kNone) {
    return std::make_unique<ReactiveAdversarialScheduler>(std::move(cfg));
  }
  return std::make_unique<PhaseAdversarialScheduler>(std::move(cfg));
}

SchedulerPtr make_poisson_clock_scheduler(double rate) {
  return std::make_unique<PoissonClockScheduler>(rate);
}

SchedulerPtr make_event_driven_poisson_scheduler(double rate) {
  return std::make_unique<EventDrivenPoissonScheduler>(rate);
}

}  // namespace rfc::sim
