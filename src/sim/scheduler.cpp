#include "sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/engine_core.hpp"

namespace rfc::sim {

void Scheduler::attach(EngineCore& /*core*/) {}

SynchronousScheduler::SynchronousScheduler(ShardingConfig sharding)
    : executor_(sharding) {}

double SynchronousScheduler::step(EngineCore& core) {
  executor_.run_round(core, nullptr);
  return 1.0;
}

void SequentialScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), kStream));
}

double SequentialScheduler::step(EngineCore& core) {
  if (!active_built_) {
    active_ = core.active_labels();
    active_built_ = true;
  }
  if (active_.empty()) return 0.0;
  const AgentId u = active_[rng_.below(active_.size())];
  core.sequential_activation(u);
  return 1.0;
}

PartialAsyncScheduler::PartialAsyncScheduler(double wake_probability,
                                             ShardingConfig sharding)
    : p_(wake_probability), executor_(sharding) {
  if (!(p_ >= 0.0 && p_ <= 1.0)) {
    throw std::invalid_argument(
        "PartialAsyncScheduler: wake probability must be in [0, 1]");
  }
}

void PartialAsyncScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), kStream));
}

double PartialAsyncScheduler::step(EngineCore& core) {
  if (awake_.size() != core.n()) awake_.assign(core.n(), false);
  // One draw per label, faulty included, so the wake pattern of agent i is
  // independent of the fault plan (mirrors the per-agent RNG streams).
  for (std::uint32_t i = 0; i < core.n(); ++i) {
    awake_[i] = rng_.bernoulli(p_);
  }
  executor_.run_round(core, &awake_);
  return 1.0;
}

AdversarialScheduler::AdversarialScheduler(AdversarialConfig cfg)
    : cfg_(std::move(cfg)) {
  if (!(cfg_.victim_fraction >= 0.0 && cfg_.victim_fraction <= 1.0)) {
    throw std::invalid_argument(
        "AdversarialScheduler: victim fraction must be in [0, 1]");
  }
}

void AdversarialScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), cfg_.stream));
}

void AdversarialScheduler::build_order(EngineCore& core) {
  std::vector<AgentId> order = core.active_labels();
  if (!cfg_.victim_ids.empty()) {
    // Explicit victim set: pin exactly these labels.  A faulty or
    // out-of-range victim is skipped rather than rejected — it never wakes,
    // i.e. it is already maximally delayed — so one victim list works
    // across a sweep over n.  Favored agents still wake in a seeded
    // permutation.
    victims_.clear();
    favored_.clear();
    for (AgentId u : order) {
      const bool is_victim =
          std::find(cfg_.victim_ids.begin(), cfg_.victim_ids.end(), u) !=
          cfg_.victim_ids.end();
      (is_victim ? victims_ : favored_).push_back(u);
    }
    for (std::size_t i = favored_.size(); i > 1; --i) {
      std::swap(favored_[i - 1], favored_[rng_.below(i)]);
    }
    order_built_ = true;
    return;
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng_.below(i)]);
  }
  const auto num_victims = static_cast<std::size_t>(
      std::ceil(cfg_.victim_fraction * static_cast<double>(order.size())));
  victims_.assign(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(num_victims));
  favored_.assign(order.begin() + static_cast<std::ptrdiff_t>(num_victims),
                  order.end());
  order_built_ = true;
}

AgentId AdversarialScheduler::next_from(std::vector<AgentId>& pool,
                                        std::size_t& cursor,
                                        EngineCore& core) {
  while (!pool.empty()) {
    if (cursor >= pool.size()) cursor = 0;
    const AgentId u = pool[cursor];
    if (!core.agent(u).done()) {
      ++cursor;
      return u;
    }
    // Done for good (the Agent contract has no way back): swap-remove so
    // the completion tail stays amortized O(1) instead of O(pool) rescans.
    pool[cursor] = pool.back();
    pool.pop_back();
  }
  return kNoAgent;
}

double AdversarialScheduler::step(EngineCore& core) {
  if (!order_built_) build_order(core);
  AgentId u = next_from(favored_, favored_cursor_, core);
  if (u == kNoAgent) u = next_from(victims_, victim_cursor_, core);
  if (u == kNoAgent) return 0.0;  // Everyone done; the run loop exits.
  core.sequential_activation(u);
  return 1.0;
}

PoissonClockScheduler::PoissonClockScheduler(double rate) : rate_(rate) {
  if (!(rate_ > 0.0)) {
    throw std::invalid_argument(
        "PoissonClockScheduler: clock rate must be positive");
  }
}

void PoissonClockScheduler::attach(EngineCore& core) {
  rng_ = rfc::support::Xoshiro256(
      rfc::support::derive_seed(core.seed(), kStream));
}

double PoissonClockScheduler::step(EngineCore& core) {
  if (!active_built_) {
    active_ = core.active_labels();
    active_built_ = true;
  }
  if (active_.empty()) return 0.0;
  // Superposition of |active| independent rate-λ clocks: the next tick is
  // uniform over agents and Exp(λ·|active|)-distributed in time.  Agent
  // first, time second — the pinned draw order.
  const AgentId u = active_[rng_.below(active_.size())];
  const double aggregate_rate =
      rate_ * static_cast<double>(active_.size());
  // uniform01() ∈ [0, 1), so the argument of log1p stays in (-1, 0].
  const double dt = -std::log1p(-rng_.uniform01()) / aggregate_rate;
  core.sequential_activation(u);
  return dt;
}

SchedulerPtr make_synchronous_scheduler(ShardingConfig sharding) {
  return std::make_unique<SynchronousScheduler>(sharding);
}

SchedulerPtr make_sequential_scheduler() {
  return std::make_unique<SequentialScheduler>();
}

SchedulerPtr make_partial_async_scheduler(double wake_probability,
                                          ShardingConfig sharding) {
  return std::make_unique<PartialAsyncScheduler>(wake_probability, sharding);
}

SchedulerPtr make_adversarial_scheduler(AdversarialConfig cfg) {
  return std::make_unique<AdversarialScheduler>(std::move(cfg));
}

SchedulerPtr make_poisson_clock_scheduler(double rate) {
  return std::make_unique<PoissonClockScheduler>(rate);
}

}  // namespace rfc::sim
