#include "rational/strategies.hpp"

#include <algorithm>
#include <memory>

#include "core/payloads.hpp"

namespace rfc::rational {

const std::vector<DeviationStrategy>& all_deviation_strategies() {
  static const std::vector<DeviationStrategy> kAll = {
      DeviationStrategy::kHonest,
      DeviationStrategy::kSelfishVoting,
      DeviationStrategy::kForgedEmptyCert,
      DeviationStrategy::kForgedCoalitionCert,
      DeviationStrategy::kVoteDrop,
      DeviationStrategy::kEquivocate,
      DeviationStrategy::kPlayDead,
      DeviationStrategy::kFindMinSuppress,
      DeviationStrategy::kStubbornCert,
      DeviationStrategy::kAdaptiveVote,
      DeviationStrategy::kSkipVerification,
  };
  return kAll;
}

std::string to_string(DeviationStrategy s) {
  switch (s) {
    case DeviationStrategy::kHonest: return "honest";
    case DeviationStrategy::kSelfishVoting: return "selfish-voting";
    case DeviationStrategy::kForgedEmptyCert: return "forged-empty-cert";
    case DeviationStrategy::kForgedCoalitionCert: return "forged-coalition-cert";
    case DeviationStrategy::kVoteDrop: return "vote-drop";
    case DeviationStrategy::kEquivocate: return "equivocate";
    case DeviationStrategy::kPlayDead: return "play-dead";
    case DeviationStrategy::kFindMinSuppress: return "find-min-suppress";
    case DeviationStrategy::kStubbornCert: return "stubborn-cert";
    case DeviationStrategy::kAdaptiveVote: return "adaptive-vote";
    case DeviationStrategy::kSkipVerification: return "skip-verification";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// CoalitionAgent
// ---------------------------------------------------------------------------

CoalitionAgent::CoalitionAgent(const core::ProtocolParams& params,
                               core::Color color, CoalitionPtr coalition)
    : core::ProtocolAgent(params, color), coalition_(std::move(coalition)) {}

core::VoteIntention CoalitionAgent::choose_intention(const sim::Context& ctx) {
  core::VoteIntention h = core::ProtocolAgent::choose_intention(ctx);
  coalition_->publish_intention(ctx.self, h);
  return h;
}

// ---------------------------------------------------------------------------
// kSelfishVoting
// ---------------------------------------------------------------------------

core::VoteIntention SelfishVotingAgent::choose_intention(
    const sim::Context& ctx) {
  core::VoteIntention h(params_.q, {0, coalition_->beneficiary()});
  coalition_->publish_intention(ctx.self, h);
  return h;
}

// ---------------------------------------------------------------------------
// kForgedEmptyCert
// ---------------------------------------------------------------------------

core::Certificate ForgedEmptyCertAgent::build_own_certificate(
    const sim::Context& ctx) {
  if (!is_beneficiary(ctx)) {
    return core::ProtocolAgent::build_own_certificate(ctx);
  }
  core::Certificate forged;
  forged.k = 0;  // Guaranteed global minimum.
  forged.color = color_;
  forged.owner = ctx.self;
  return forged;
}

// ---------------------------------------------------------------------------
// kForgedCoalitionCert
// ---------------------------------------------------------------------------

core::VoteIntention ForgedCoalitionCertAgent::choose_intention(
    const sim::Context& ctx) {
  // Members declare exactly the votes the forged certificate will contain,
  // so every value/target audit of a coalition voter passes.
  core::VoteIntention h(params_.q, {0, coalition_->beneficiary()});
  coalition_->publish_intention(ctx.self, h);
  return h;
}

core::Certificate ForgedCoalitionCertAgent::build_own_certificate(
    const sim::Context& ctx) {
  if (!is_beneficiary(ctx)) {
    return core::ProtocolAgent::build_own_certificate(ctx);
  }
  // W := the coalition's declared votes for us, nothing else.  All values
  // are zero, so k = 0 and the certificate wins Find-Min.  Honest votes we
  // actually received are discarded — only the completeness cross-check
  // (the inconsistency used in the proof of Claim 1) can notice.
  core::Certificate forged;
  forged.color = color_;
  forged.owner = ctx.self;
  for (const auto& [member, intention] : coalition_->declared_intentions()) {
    for (std::uint32_t j = 0; j < intention.size(); ++j) {
      if (intention[j].target == ctx.self) {
        forged.votes.push_back({member, j, intention[j].value});
      }
    }
  }
  forged.k = forged.vote_sum(params_);
  return forged;
}

// ---------------------------------------------------------------------------
// kVoteDrop
// ---------------------------------------------------------------------------

core::Certificate VoteDropAgent::build_own_certificate(
    const sim::Context& ctx) {
  core::Certificate cert = core::ProtocolAgent::build_own_certificate(ctx);
  if (!is_beneficiary(ctx)) return cert;

  // Search all ways of dropping up to two received votes and keep the
  // variant with the smallest key.  O(|W|^2) with |W| = Θ(log n).
  const auto& votes = cert.votes;
  const std::uint64_t m = params_.m;
  std::uint64_t best_k = cert.k;
  int best_i = -1, best_j = -1;
  const auto sub = [m](std::uint64_t k, std::uint64_t h) {
    return (k + m - h % m) % m;
  };
  for (std::size_t i = 0; i < votes.size(); ++i) {
    const std::uint64_t k1 = sub(cert.k, votes[i].value);
    if (k1 < best_k) {
      best_k = k1;
      best_i = static_cast<int>(i);
      best_j = -1;
    }
    for (std::size_t j = i + 1; j < votes.size(); ++j) {
      const std::uint64_t k2 = sub(k1, votes[j].value);
      if (k2 < best_k) {
        best_k = k2;
        best_i = static_cast<int>(i);
        best_j = static_cast<int>(j);
      }
    }
  }
  if (best_i >= 0) {
    core::ReceivedVotes kept;
    kept.reserve(votes.size());
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if (static_cast<int>(i) == best_i || static_cast<int>(i) == best_j) {
        continue;
      }
      kept.push_back(votes[i]);
    }
    cert.votes = std::move(kept);
    cert.k = best_k;
  }
  return cert;
}

// ---------------------------------------------------------------------------
// kEquivocate
// ---------------------------------------------------------------------------

sim::Payload EquivocatingAgent::commitment_reply(const sim::Context& ctx,
                                                 sim::AgentId) {
  // A fresh lie for every auditor.
  core::VoteIntention fake(params_.q);
  for (core::VoteEntry& e : fake) {
    e.value = ctx.rng->below(params_.m);
    e.target = static_cast<sim::AgentId>(ctx.rng->below(params_.n));
  }
  // Never cached by this agent — each auditor gets a fresh lie — so the
  // round arena owns it.
  return core::make_intention_payload_in(ctx.arena, std::move(fake), params_);
}

// ---------------------------------------------------------------------------
// kPlayDead
// ---------------------------------------------------------------------------

core::VoteIntention PlayDeadAgent::choose_intention(const sim::Context& ctx) {
  core::VoteIntention h(params_.q, {0, coalition_->beneficiary()});
  coalition_->publish_intention(ctx.self, h);
  return h;
}

sim::Payload PlayDeadAgent::commitment_reply(const sim::Context&,
                                             sim::AgentId) {
  return {};  // Pretend to be faulty; auditors pin us to h* = 0.
}

// ---------------------------------------------------------------------------
// kFindMinSuppress
// ---------------------------------------------------------------------------

sim::Payload FindMinSuppressAgent::find_min_reply(const sim::Context& ctx,
                                                  sim::AgentId) {
  if (!has_own_certificate_) return {};
  // Serve our own certificate, never the smaller ones we have seen; the
  // auditor copies it out within the round, so it is arena-transient.
  return core::make_certificate_payload_in(ctx.arena, own_cert_, params_);
}

// ---------------------------------------------------------------------------
// kStubbornCert
// ---------------------------------------------------------------------------

void StubbornCertAgent::consider_certificate(
    const core::Certificate& certificate) {
  if (coalition_->contains(certificate.owner)) {
    core::ProtocolAgent::consider_certificate(certificate);
  }
  // Smaller honest certificates are ignored: we keep pushing ours.
}

void StubbornCertAgent::on_coherence_certificate(const core::Certificate&) {
  // Never fail ourselves; the damage is done at the honest receivers.
}

void StubbornCertAgent::on_coherence_digest(std::uint64_t) {
  // Likewise under the digest optimization.
}

// ---------------------------------------------------------------------------
// kAdaptiveVote
// ---------------------------------------------------------------------------

core::VoteEntry AdaptiveVoteAgent::vote_for_round(const sim::Context& ctx,
                                                  std::uint32_t i) {
  const sim::AgentId beneficiary = coalition_->beneficiary();
  if (ctx.self == beneficiary) {
    return core::ProtocolAgent::vote_for_round(ctx, i);
  }
  if (ctx.self == coalition_->fixer() && i + 1 == params_.q) {
    // Cancel everything the beneficiary has received so far: one vote of
    // m - (sum so far) drives the running key to 0.  Votes delivered in
    // this final round (including honest ones) remain uncontrolled — that
    // residual uniformity is exactly Claim 2's deferred-decision argument.
    const std::uint64_t sum = coalition_->beneficiary_vote_sum();
    return {(params_.m - sum) % params_.m, beneficiary};
  }
  return {0, beneficiary};
}

void AdaptiveVoteAgent::on_push(const sim::Context& ctx, sim::AgentId sender,
                                const sim::Payload& payload) {
  core::ProtocolAgent::on_push(ctx, sender, payload);
  if (ctx.self == coalition_->beneficiary()) {
    std::uint64_t sum = 0;
    for (const core::ReceivedVote& v : received_votes_) {
      sum = (sum + v.value % params_.m) % params_.m;
    }
    coalition_->publish_beneficiary_vote_sum(sum);
  }
}

// ---------------------------------------------------------------------------
// kSkipVerification
// ---------------------------------------------------------------------------

void SkipVerificationAgent::on_coherence_certificate(
    const core::Certificate&) {
  // Ignore mismatches entirely.
}

void SkipVerificationAgent::on_coherence_digest(std::uint64_t) {
  // Ignore mismatches entirely.
}

void SkipVerificationAgent::finalize(const sim::Context&) {
  if (has_min_certificate_) {
    decide(min_cert_.color);
  } else {
    fail_protocol();
  }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

core::AgentFactory make_deviating_factory(DeviationStrategy s,
                                          CoalitionPtr coalition) {
  return [s, coalition](sim::AgentId /*id*/, const core::ProtocolParams& params,
                        core::Color color)
             -> std::unique_ptr<core::ProtocolAgent> {
    switch (s) {
      case DeviationStrategy::kHonest:
        return nullptr;  // Runner installs a plain honest agent.
      case DeviationStrategy::kSelfishVoting:
        return std::make_unique<SelfishVotingAgent>(params, color, coalition);
      case DeviationStrategy::kForgedEmptyCert:
        return std::make_unique<ForgedEmptyCertAgent>(params, color,
                                                      coalition);
      case DeviationStrategy::kForgedCoalitionCert:
        return std::make_unique<ForgedCoalitionCertAgent>(params, color,
                                                          coalition);
      case DeviationStrategy::kVoteDrop:
        return std::make_unique<VoteDropAgent>(params, color, coalition);
      case DeviationStrategy::kEquivocate:
        return std::make_unique<EquivocatingAgent>(params, color, coalition);
      case DeviationStrategy::kPlayDead:
        return std::make_unique<PlayDeadAgent>(params, color, coalition);
      case DeviationStrategy::kFindMinSuppress:
        return std::make_unique<FindMinSuppressAgent>(params, color,
                                                      coalition);
      case DeviationStrategy::kStubbornCert:
        return std::make_unique<StubbornCertAgent>(params, color, coalition);
      case DeviationStrategy::kAdaptiveVote:
        return std::make_unique<AdaptiveVoteAgent>(params, color, coalition);
      case DeviationStrategy::kSkipVerification:
        return std::make_unique<SkipVerificationAgent>(params, color,
                                                       coalition);
    }
    return nullptr;
  };
}

}  // namespace rfc::rational
