// The deviation strategy library used by the equilibrium experiments (E7).
//
// Theorem 7 quantifies over *all* restricted protocols P'_C; an experiment
// can only sample that space, so we implement the canonical
// profitable-looking attacks the proof machinery (Claims 1-4) rules out,
// each isolating one lever a coalition controls:
//
//   kSelfishVoting      declare & cast all votes (value 0) at the
//                       beneficiary — tests Claim 2: honest votes keep the
//                       beneficiary's key uniform, so no gain.
//   kForgedEmptyCert    beneficiary enters Find-Min with k = 0 and an empty
//                       W — caught by strict verification (completeness).
//   kForgedCoalitionCert beneficiary fabricates W from coalition members'
//                       *declared* votes only, k = 0 — value-consistent with
//                       every audit, caught only by the completeness check;
//                       the ablation showing that check is load-bearing
//                       (it is exactly the inconsistency used in the proof
//                       of Claim 1).
//   kVoteDrop           beneficiary drops a chosen subset of received votes
//                       to minimize k — caught by completeness.
//   kEquivocate         members answer each Commitment pull with a fresh
//                       random intention — any vote landing in W_min is
//                       inconsistent with some first declaration.
//   kPlayDead           members stay silent in Commitment (pretend faulty),
//                       then vote anyway — auditors hold h* = 0 for them, so
//                       their votes in W_min trigger failure (the
//                       "pretend to be faulty" deviation the paper calls out).
//   kFindMinSuppress    members never forward the true minimum — only slows
//                       the pull broadcast; honest agents still converge.
//   kStubbornCert       members refuse to adopt smaller certificates and
//                       push their own in Coherence — forces ⊥, utility -χ.
//   kAdaptiveVote       members vote values different from declarations,
//                       adaptively steering the beneficiary's key toward 0 —
//                       caught by the declared-vs-actual audit (Def. 5(1)).
//   kSkipVerification   members skip Coherence/Verification checks — a
//                       free-rider deviation with no influence on the
//                       outcome.
#pragma once

#include <string>
#include <vector>

#include "core/protocol_agent.hpp"
#include "core/runner.hpp"
#include "rational/coalition.hpp"

namespace rfc::rational {

enum class DeviationStrategy : std::uint8_t {
  kHonest,  ///< Control: coalition labels follow P (baseline win rate).
  kSelfishVoting,
  kForgedEmptyCert,
  kForgedCoalitionCert,
  kVoteDrop,
  kEquivocate,
  kPlayDead,
  kFindMinSuppress,
  kStubbornCert,
  kAdaptiveVote,
  kSkipVerification,
};

const std::vector<DeviationStrategy>& all_deviation_strategies();
std::string to_string(DeviationStrategy s);

/// Builds the agent factory installing strategy `s` on every coalition
/// label.  Pass the result (and `coalition->members()`) into
/// core::RunConfig.
core::AgentFactory make_deviating_factory(DeviationStrategy s,
                                          CoalitionPtr coalition);

// ---------------------------------------------------------------------------
// Individual strategy agents (exposed for unit tests).
// ---------------------------------------------------------------------------

/// Common base: holds the coalition pointer and publishes declared
/// intentions to the blackboard.
class CoalitionAgent : public core::ProtocolAgent {
 public:
  CoalitionAgent(const core::ProtocolParams& params, core::Color color,
                 CoalitionPtr coalition);

  /// The blackboard is mutable state shared across labels: a sharded round
  /// would mutate it from several threads at once.  Declaring it here makes
  /// ShardedRoundExecutor fail fast at setup instead of racing (and
  /// core::run_protocol rejects the combination even earlier).
  bool shard_safe() const noexcept override { return false; }

 protected:
  core::VoteIntention choose_intention(const sim::Context& ctx) override;
  bool is_beneficiary(const sim::Context& ctx) const noexcept {
    return ctx.self == coalition_->beneficiary();
  }
  CoalitionPtr coalition_;
};

/// kSelfishVoting: every vote (declared and cast) is (0, beneficiary).
class SelfishVotingAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  core::VoteIntention choose_intention(const sim::Context& ctx) override;
};

/// kForgedEmptyCert: the beneficiary certifies k = 0 with an empty W.
class ForgedEmptyCertAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  core::Certificate build_own_certificate(const sim::Context& ctx) override;
};

/// kForgedCoalitionCert: members declare & cast (0, beneficiary) votes; the
/// beneficiary certifies exactly those declared votes (k = 0), discarding
/// all honest votes it received.
class ForgedCoalitionCertAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  core::VoteIntention choose_intention(const sim::Context& ctx) override;
  core::Certificate build_own_certificate(const sim::Context& ctx) override;
};

/// kVoteDrop: beneficiary drops up to two received votes, choosing the
/// subset minimizing k.
class VoteDropAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  core::Certificate build_own_certificate(const sim::Context& ctx) override;
};

/// kEquivocate: each Commitment pull is answered with a fresh random
/// intention; votes follow the (private) real intention.
class EquivocatingAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  sim::Payload commitment_reply(const sim::Context& ctx,
                                sim::AgentId requester) override;
};

/// kPlayDead: silent during Commitment, votes (0, beneficiary) anyway.
class PlayDeadAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  core::VoteIntention choose_intention(const sim::Context& ctx) override;
  sim::Payload commitment_reply(const sim::Context& ctx,
                                sim::AgentId requester) override;
};

/// kFindMinSuppress: serves its *own* certificate to every Find-Min pull
/// instead of the current minimum.
class FindMinSuppressAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  sim::Payload find_min_reply(const sim::Context& ctx,
                              sim::AgentId requester) override;
};

/// kStubbornCert: only adopts coalition-owned certificates and pushes its
/// own in Coherence, knowingly forcing mismatches.
class StubbornCertAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  void consider_certificate(const core::Certificate& certificate) override;
  void on_coherence_certificate(const core::Certificate& certificate) override;
  void on_coherence_digest(std::uint64_t digest) override;
};

/// kAdaptiveVote: declares a random intention but casts votes at the
/// beneficiary; the designated fixer casts, in the last voting round, the
/// value that steers the beneficiary's key to 0 given everything the
/// coalition has seen.
class AdaptiveVoteAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  core::VoteEntry vote_for_round(const sim::Context& ctx,
                                 std::uint32_t i) override;
  void on_push(const sim::Context& ctx, sim::AgentId sender,
               const sim::Payload& payload) override;
};

/// kSkipVerification: never fails in Coherence and adopts CE_min's color
/// without auditing it.
class SkipVerificationAgent final : public CoalitionAgent {
 public:
  using CoalitionAgent::CoalitionAgent;

 protected:
  void on_coherence_certificate(const core::Certificate& certificate) override;
  void on_coherence_digest(std::uint64_t digest) override;
  void finalize(const sim::Context& ctx) override;
};

}  // namespace rfc::rational
