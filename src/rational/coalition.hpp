// Coalition coordination state shared by deviating agents.
//
// The model (Def. 1) lets a coalition C pick an arbitrary joint strategy
// P'_C: members may share unbounded information out of band.  Because the
// engine is single-threaded, we model that with a blackboard object every
// coalition agent holds a shared_ptr to; anything a member learns is
// instantly available to the others.  This gives deviations *more* power
// than any realizable distributed strategy — a conservative way to test the
// equilibrium claim.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/types.hpp"
#include "sim/agent.hpp"

namespace rfc::rational {

class Coalition {
 public:
  Coalition(std::vector<sim::AgentId> members, sim::AgentId beneficiary);

  const std::vector<sim::AgentId>& members() const noexcept {
    return members_;
  }
  sim::AgentId beneficiary() const noexcept { return beneficiary_; }
  bool contains(sim::AgentId id) const noexcept {
    return member_set_.contains(id);
  }
  std::size_t size() const noexcept { return members_.size(); }

  // ---- Blackboard -------------------------------------------------------
  /// Members publish the intention they actually declared, so the
  /// beneficiary can fabricate certificates consistent with declarations.
  void publish_intention(sim::AgentId member, const core::VoteIntention& h) {
    declared_[member] = h;
  }
  const std::unordered_map<sim::AgentId, core::VoteIntention>&
  declared_intentions() const noexcept {
    return declared_;
  }

  /// The beneficiary publishes the running sum (mod m) of votes it has
  /// received, for adaptive-voting members.
  void publish_beneficiary_vote_sum(std::uint64_t sum) noexcept {
    beneficiary_vote_sum_ = sum;
  }
  std::uint64_t beneficiary_vote_sum() const noexcept {
    return beneficiary_vote_sum_;
  }

  /// Chooses the coalition member with the smallest label as the designated
  /// "fixer" for strategies that need exactly one member to act.
  sim::AgentId fixer() const noexcept { return fixer_; }

 private:
  std::vector<sim::AgentId> members_;
  std::unordered_set<sim::AgentId> member_set_;
  sim::AgentId beneficiary_;
  sim::AgentId fixer_;
  std::unordered_map<sim::AgentId, core::VoteIntention> declared_;
  std::uint64_t beneficiary_vote_sum_ = 0;
};

using CoalitionPtr = std::shared_ptr<Coalition>;

/// Builds a coalition of the first `size` labels (label 0 is the
/// beneficiary).  Protocol P is label-symmetric, so which labels deviate is
/// irrelevant; fault plans used in equilibrium experiments avoid these
/// labels so that |C| is exact.
CoalitionPtr make_prefix_coalition(std::uint32_t size);

}  // namespace rfc::rational
