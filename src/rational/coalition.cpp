#include "rational/coalition.hpp"

#include <algorithm>
#include <stdexcept>

namespace rfc::rational {

Coalition::Coalition(std::vector<sim::AgentId> members,
                     sim::AgentId beneficiary)
    : members_(std::move(members)), beneficiary_(beneficiary) {
  if (members_.empty()) {
    throw std::invalid_argument("Coalition: must have at least one member");
  }
  member_set_.insert(members_.begin(), members_.end());
  if (!member_set_.contains(beneficiary_)) {
    throw std::invalid_argument("Coalition: beneficiary must be a member");
  }
  fixer_ = *std::min_element(members_.begin(), members_.end());
}

CoalitionPtr make_prefix_coalition(std::uint32_t size) {
  std::vector<sim::AgentId> members(size);
  for (std::uint32_t i = 0; i < size; ++i) members[i] = i;
  return std::make_shared<Coalition>(std::move(members), 0);
}

}  // namespace rfc::rational
