// Shared vocabulary types of Protocol P (Algorithm 1 of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/agent.hpp"

namespace rfc::core {

/// A color from the finite color space Σ.  Colors are small non-negative
/// integers; in the fair-leader-election special case each agent's initial
/// color is his own label.
using Color = std::int64_t;

/// The "protocol failed / no consensus" outcome ⊥.
inline constexpr Color kNoColor = -1;

/// One entry (h_{u,i}, z_{u,i}) of a vote-intention list H_u: in round i of
/// the Voting phase, push the value `value` (u.a.r. in [m]) to agent
/// `target` (u.a.r. in [n]).
struct VoteEntry {
  std::uint64_t value = 0;
  sim::AgentId target = sim::kNoAgent;

  friend bool operator==(const VoteEntry&, const VoteEntry&) = default;
};

/// H_u: exactly q entries, one per Voting-phase round.
using VoteIntention = std::vector<VoteEntry>;

/// A vote as received in the Voting phase: agent `voter` pushed `value`
/// during voting round `round_index`.  The triple identifies the vote
/// uniquely (each agent pushes exactly one vote per round), which is what
/// lets the Verification phase cross-check W_min against collected
/// intentions.
struct ReceivedVote {
  sim::AgentId voter = sim::kNoAgent;
  std::uint32_t round_index = 0;
  std::uint64_t value = 0;

  friend bool operator==(const ReceivedVote&, const ReceivedVote&) = default;
};

/// W_u: all votes received by u during the Voting phase.
using ReceivedVotes = std::vector<ReceivedVote>;

/// One record of L_u: the vote intention an agent declared to us in the
/// Commitment phase, or the "marked faulty" state if it did not reply
/// (footnote 4 of the paper: a silent peer's votes all count as zero).
struct CommitmentRecord {
  bool marked_faulty = false;
  VoteIntention intention;  ///< Valid iff !marked_faulty.
};

/// L_u: first-declaration-wins map from peer label to its declared
/// intention.  "First declaration" implements the h* values of Theorem 7's
/// proof: an equivocating peer is pinned to whatever it told us first.
using CollectedIntentions = std::unordered_map<sim::AgentId, CommitmentRecord>;

}  // namespace rfc::core
