// Concrete message payloads of Protocol P, with exact bit accounting.
//
// Payloads are flat sim::Payload values (sim/payload.hpp): votes and
// digests travel inline (no allocation per message), certificates and vote
// intentions are boxed — one immutable shared object per distinct value, so
// serving Θ(log n) Find-Min pulls from one allocation still works, but the
// handle moves by value through the engine.
//
// This header owns the core tag range (0x20..0x2F).  Each boxed tag maps to
// exactly one C++ type, which is what makes the typed accessors below safe.
#pragma once

#include "core/certificate.hpp"
#include "core/params.hpp"
#include "core/types.hpp"
#include "sim/payload.hpp"

namespace rfc::core {

// --- Tags (core range 0x20..0x2F; see sim/payload.hpp) --------------------
inline constexpr sim::PayloadTag kVotePayloadTag = 0x20;        // inline
inline constexpr sim::PayloadTag kDigestPayloadTag = 0x21;      // inline
inline constexpr sim::PayloadTag kIntentionPayloadTag = 0x22;   // VoteIntention
inline constexpr sim::PayloadTag kCertificatePayloadTag = 0x23; // Certificate
// Sequential-model payloads (factories local to core/async_protocol.cpp;
// the tags live here so the core tag space has one registry).
inline constexpr sim::PayloadTag kAsyncVotePayloadTag = 0x28;   // inline
inline constexpr sim::PayloadTag kAsyncReplyPayloadTag = 0x29;  // AsyncReply

// --- Factories ------------------------------------------------------------

/// Commitment-phase reply: a full copy of the sender's vote intention H.
sim::Payload make_intention_payload(VoteIntention intention,
                                    const ProtocolParams& params);

/// Arena-boxed variant for *transient* replies (consumed in this round's
/// delivery hook, never cached): bump-allocates in the engine's round arena
/// when one is live (Context::arena), falling back to the shared form when
/// `arena` is null.  Producers that cache the payload across rounds
/// (ProtocolAgent's reply caches) must keep the plain factory.
sim::Payload make_intention_payload_in(rfc::support::Arena* arena,
                                       VoteIntention intention,
                                       const ProtocolParams& params);

/// Voting-phase push: a single vote value h (the voting round is implied by
/// synchrony; the voter label travels in the authenticated channel header).
sim::Payload make_vote_payload(std::uint64_t value,
                               const ProtocolParams& params);

/// Find-Min reply / Coherence push: a full certificate.
sim::Payload make_certificate_payload(Certificate certificate,
                                      const ProtocolParams& params);

/// Arena-boxed variant (same transient-only contract as
/// make_intention_payload_in).
sim::Payload make_certificate_payload_in(rfc::support::Arena* arena,
                                         Certificate certificate,
                                         const ProtocolParams& params);

/// Coherence push under the digest optimization: a 64-bit certificate
/// fingerprint instead of the full certificate.
sim::Payload make_digest_payload(std::uint64_t digest) noexcept;

// --- Typed accessors (null / false on tag mismatch or empty payload) ------

inline const VoteIntention* intention_in(const sim::Payload& p) noexcept {
  return p.boxed_as<VoteIntention>(kIntentionPayloadTag);
}

inline const Certificate* certificate_in(const sim::Payload& p) noexcept {
  return p.boxed_as<Certificate>(kCertificatePayloadTag);
}

inline bool is_vote(const sim::Payload& p) noexcept {
  return p.tag() == kVotePayloadTag;
}
inline std::uint64_t vote_value_in(const sim::Payload& p) noexcept {
  return p.word(0);
}

inline bool is_digest(const sim::Payload& p) noexcept {
  return p.tag() == kDigestPayloadTag;
}
inline std::uint64_t digest_in(const sim::Payload& p) noexcept {
  return p.word(0);
}

}  // namespace rfc::core
