// Concrete message payloads of Protocol P, with exact bit accounting.
#pragma once

#include <memory>

#include "core/certificate.hpp"
#include "core/params.hpp"
#include "core/types.hpp"
#include "sim/payload.hpp"

namespace rfc::core {

/// Commitment-phase reply: a full copy of the sender's vote intention H.
class IntentionPayload final : public sim::Payload {
 public:
  IntentionPayload(VoteIntention intention, const ProtocolParams& params);
  const VoteIntention& intention() const noexcept { return intention_; }
  std::uint64_t bit_size() const noexcept override { return bits_; }

 private:
  VoteIntention intention_;
  std::uint64_t bits_;
};

/// Voting-phase push: a single vote value h (the voting round is implied by
/// synchrony; the voter label travels in the authenticated channel header).
class VotePayload final : public sim::Payload {
 public:
  VotePayload(std::uint64_t value, const ProtocolParams& params);
  std::uint64_t value() const noexcept { return value_; }
  std::uint64_t bit_size() const noexcept override { return bits_; }

 private:
  std::uint64_t value_;
  std::uint64_t bits_;
};

/// Find-Min reply / Coherence push: a full certificate.
class CertificatePayload final : public sim::Payload {
 public:
  CertificatePayload(Certificate certificate, const ProtocolParams& params);
  const Certificate& certificate() const noexcept { return certificate_; }
  std::uint64_t bit_size() const noexcept override { return bits_; }

 private:
  Certificate certificate_;
  std::uint64_t bits_;
};

/// Coherence push under the digest optimization: a 64-bit certificate
/// fingerprint instead of the full certificate.
class DigestPayload final : public sim::Payload {
 public:
  explicit DigestPayload(std::uint64_t digest) noexcept : digest_(digest) {}
  std::uint64_t digest() const noexcept { return digest_; }
  std::uint64_t bit_size() const noexcept override { return 64; }

 private:
  std::uint64_t digest_;
};

}  // namespace rfc::core
