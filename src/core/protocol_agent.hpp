// The honest agent of Protocol P (Algorithm 1), with every decision point
// exposed as a protected virtual hook so rational deviations (src/rational)
// can override exactly one behaviour at a time while inheriting the rest.
//
// Phase schedule (all agents share it — the model is synchronous and every
// agent knows n and γ):
//   rounds [0, q)    Commitment  — pull random peers' vote intentions
//   rounds [q, 2q)   Voting      — push vote i of H_u to its target
//   rounds [2q, 3q)  Find-Min    — pull-broadcast the minimal certificate
//   rounds [3q, 4q)  Coherence   — push CE_min, fail on any mismatch
//   round 4q         Verification (local) — audit CE_min against L_u
// The Voting-Intention phase is local and runs in on_start.
#pragma once

#include <cstdint>
#include <vector>

#include "core/certificate.hpp"
#include "core/params.hpp"
#include "core/types.hpp"
#include "core/verification.hpp"
#include "sim/agent.hpp"

namespace rfc::core {

class ProtocolAgent : public sim::Agent {
 public:
  ProtocolAgent(const ProtocolParams& params, Color color);

  // ---- Final state ----------------------------------------------------
  bool failed() const noexcept { return failed_; }
  bool decided() const noexcept { return decided_; }
  /// The supported color after termination; kNoColor if the agent failed or
  /// has not decided yet.
  Color decision() const noexcept {
    return decided_ && !failed_ ? final_color_ : kNoColor;
  }
  Color initial_color() const noexcept { return color_; }
  VerificationFailure verification_failure() const noexcept {
    return verification_failure_;
  }

  // ---- Diagnostics read by the runner after execution ------------------
  const VoteIntention& intention() const noexcept { return intention_; }
  const ReceivedVotes& received_votes() const noexcept {
    return received_votes_;
  }
  const CollectedIntentions& collected_intentions() const noexcept {
    return collected_;
  }
  bool has_own_certificate() const noexcept { return has_own_certificate_; }
  const Certificate& own_certificate() const noexcept { return own_cert_; }
  bool has_min_certificate() const noexcept { return has_min_certificate_; }
  const Certificate& min_certificate() const noexcept { return min_cert_; }
  /// Labels that pulled us during the Commitment phase (first pull only is
  /// binding, but we record all for the Def. 5 diagnostics).
  const std::vector<sim::AgentId>& commitment_pullers() const noexcept {
    return commitment_pullers_;
  }

  /// Local memory footprint under the paper's encoding model, in bits:
  /// H_u + L_u + W_u + the two certificates.  The paper claims
  /// polylogarithmic local memory; experiment E2 reports this measured
  /// (L_u dominates with Θ(log n) records of Θ(log^2 n) bits each).
  std::uint64_t local_memory_bits() const noexcept;

  // ---- sim::Agent ------------------------------------------------------
  void on_start(const sim::Context& ctx) override;
  sim::Action on_round(const sim::Context& ctx) override;
  sim::Payload serve_pull(const sim::Context& ctx,
                          sim::AgentId requester) override;
  void on_pull_reply(const sim::Context& ctx, sim::AgentId target,
                     const sim::Payload& reply) override;
  void on_push(const sim::Context& ctx, sim::AgentId sender,
               const sim::Payload& payload) override;
  bool done() const override { return decided_ || failed_; }

  // All observations move only inside this agent's own callbacks, so the
  // engine may mirror them into its SoA caches (sim/agent.hpp).
  bool cacheable_observations() const noexcept override { return true; }

  /// Audit-pipeline stage for adaptive schedulers (sim::EngineView): the
  /// schedule reads the *global* clock, so this reflects the phase of the
  /// agent's last activation — exact under the synchronous model, possibly
  /// stale for an agent a scheduler is starving.
  sim::AgentPhase phase() const noexcept override {
    return done() ? sim::AgentPhase::kDone : observed_phase_;
  }

  /// Numeric pipeline position (stages completed + fraction of the current
  /// stage, in [0, 4]): round-of-last-activation / q, capped at 4.0 once
  /// decided or failed.  Same staleness caveat as phase().
  double progress() const noexcept override;

 protected:
  // ---- Deviation hooks: defaults implement the honest protocol ---------

  /// Voting-Intention: q pairs, each value u.a.r. in [m], target u.a.r. [n].
  virtual VoteIntention choose_intention(const sim::Context& ctx);

  /// Commitment-phase active operation (default: pull a u.a.r. peer).
  virtual sim::Action commitment_action(const sim::Context& ctx);

  /// Reply served to a Commitment pull (default: our full intention; a
  /// deviator may equivocate or stay silent by returning an empty payload).
  virtual sim::Payload commitment_reply(const sim::Context& ctx,
                                        sim::AgentId requester);

  /// The vote pushed in voting round i (default: H_u[i], as declared).
  virtual VoteEntry vote_for_round(const sim::Context& ctx, std::uint32_t i);

  /// The certificate entered into Find-Min (default: honest
  /// (k_u, W_u, c_u, u)).
  virtual Certificate build_own_certificate(const sim::Context& ctx);

  /// Find-Min adoption rule (default: keep the smaller of ours/theirs).
  virtual void consider_certificate(const Certificate& certificate);

  /// Reply served to a Find-Min pull (default: current minimal certificate).
  virtual sim::Payload find_min_reply(const sim::Context& ctx,
                                      sim::AgentId requester);

  /// Coherence-phase active operation (default: push CE_min to u.a.r peer).
  virtual sim::Action coherence_action(const sim::Context& ctx);

  /// Handles a certificate pushed at us during Coherence (default: make the
  /// protocol fail on any mismatch, per Algorithm 1).
  virtual void on_coherence_certificate(const Certificate& certificate);

  /// Handles a fingerprint pushed at us during Coherence when the digest
  /// optimization is on (default: fail on mismatch with our CE_min digest).
  virtual void on_coherence_digest(std::uint64_t digest);

  /// Verification + decision (default: audit CE_min, adopt its color or
  /// fail).  Runs once, in the round right after Coherence ends.
  virtual void finalize(const sim::Context& ctx);

  /// Enters the invalid/failed state (supporting no color in Σ).
  void fail_protocol() noexcept {
    failed_ = true;
    decided_ = true;
  }

  /// Shared payload wrapping min_cert_, rebuilt only when it changes.
  /// Serving Θ(log n) pulls per Find-Min round from one boxed allocation
  /// keeps the simulator's constant factors down.
  sim::Payload min_cert_payload();

  void decide(Color c) noexcept {
    final_color_ = c;
    decided_ = true;
  }

  // ---- Protocol state (visible to deviation subclasses) ----------------
  ProtocolParams params_;
  Color color_;                      ///< c_u, the initially supported color.
  VoteIntention intention_;          ///< H_u.
  CollectedIntentions collected_;    ///< L_u.
  ReceivedVotes received_votes_;     ///< W_u.
  Certificate own_cert_;             ///< CE_u (after Voting).
  Certificate min_cert_;             ///< CE_min_u (during/after Find-Min).
  bool has_own_certificate_ = false;
  bool has_min_certificate_ = false;
  bool failed_ = false;
  bool decided_ = false;
  Color final_color_ = kNoColor;
  VerificationFailure verification_failure_ = VerificationFailure::kNone;
  std::vector<sim::AgentId> commitment_pullers_;
  /// Phase observed at the last on_round (exposed through phase()).
  sim::AgentPhase observed_phase_ = sim::AgentPhase::kCommit;
  /// Round observed at the last on_round (exposed through progress()).
  std::uint64_t observed_round_ = 0;

 private:
  void record_commitment_reply(sim::AgentId target,
                               const sim::Payload& reply);

  sim::Payload cached_intention_payload_;
  sim::Payload cached_min_cert_payload_;
};

}  // namespace rfc::core
