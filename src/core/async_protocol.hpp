// Exploratory asynchronous Protocol P — a concrete probe at the paper's
// second open problem ("the asynchronous (i.e. sequential) GOSSIP model
// where, at every round, only one (possibly random) agent is awake").
//
// The synchronous protocol relies on globally aligned phases: a voter's
// round index identifies its vote, and everyone enters Find-Min at the same
// instant.  In the sequential model each agent can only count its *own*
// activations, which concentrate around t/n after t global steps with
// Θ(sqrt(t/n)) jitter — so naive per-agent phase schedules misalign by
// Θ(sqrt(q)) activations and late votes miss the certificate, tripping the
// (completeness) verification.
//
// Our variant makes three changes, each independently motivated:
//   1. votes carry their own voting-round index (log q extra bits), since
//      the receiver cannot infer it from a global clock;
//   2. pull replies are phase-tagged composites (intention + optional
//      current minimal certificate), since the servee cannot know which
//      phase its puller is in;
//   3. **guard bands**: each agent idles for `slack` activations between
//      phases, absorbing the Θ(sqrt(q log n)) scheduling jitter.  slack = 0
//      recovers the naive schedule (which fails often); slack of a few
//      sqrt(q) makes the full audit pipeline go through w.h.p.
//
// Experiment E12c measures failure rate and fairness vs the slack.  The
// *rational* analysis of this variant is open — we reproduce and
// characterize the obstacle, as the paper does, rather than claim the
// equilibrium result.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/certificate.hpp"
#include "core/params.hpp"
#include "core/types.hpp"
#include "core/verification.hpp"
#include "sim/agent.hpp"
#include "sim/budget.hpp"
#include "sim/fault_model.hpp"
#include "sim/metrics.hpp"
#include "sim/network_spec.hpp"
#include "sim/scheduler_spec.hpp"

namespace rfc::core {

/// Local schedule of the asynchronous variant, in units of the agent's own
/// activations: q commitment pulls, slack idle, q voting pushes, slack
/// idle, q + slack find-min pulls, q coherence pushes, then verify.
///
/// The guard band after voting protects vote *completeness* (no vote may
/// land after its recipient seals the certificate).  Between Find-Min and
/// Coherence no idle band is needed — extra Find-Min pulls both absorb the
/// scheduling jitter and extend the broadcast, which is what agreement on
/// CE_min actually requires.
struct AsyncSchedule {
  std::uint32_t q = 0;
  std::uint32_t slack = 0;

  enum class LocalPhase : std::uint8_t {
    kCommitment,
    kVoting,
    kFindMin,
    kCoherence,
    kFinished,
    kGuard,  ///< Idle activation inside a guard band.
  };

  LocalPhase phase_of(std::uint64_t activation) const noexcept;
  /// Index within the current communication phase, in [0, q).
  std::uint32_t index_of(std::uint64_t activation) const noexcept;
  std::uint64_t total_activations() const noexcept {
    return 4ull * q + 3ull * slack;
  }

  /// The sim-level phase observation for activation `a` (the agent's next
  /// wake-up): guard bands report the communication phase they lead into —
  /// an agent idling before its voting pushes is "entering its voting
  /// window", which is exactly what a phase-aware adversary targets.
  sim::AgentPhase observed_phase(std::uint64_t activation) const noexcept;

  /// Numeric pipeline position for activation `a`: completed observed
  /// stages + fraction of the current one, in [0, 4], consistent with
  /// observed_phase (guard activations count toward the stage they lead
  /// into).  Exact for any activation policy, like observed_phase.
  double progress_of(std::uint64_t activation) const noexcept;
};

class AsyncProtocolAgent final : public sim::Agent {
 public:
  AsyncProtocolAgent(const ProtocolParams& params, AsyncSchedule schedule,
                     Color color);

  bool failed() const noexcept { return failed_; }
  bool decided() const noexcept { return decided_; }
  Color decision() const noexcept {
    return decided_ && !failed_ ? final_color_ : kNoColor;
  }
  Color initial_color() const noexcept { return color_; }
  /// Why verification rejected (kNone when accepted or failure came from
  /// the Coherence mismatch rule).
  VerificationFailure verification_failure() const noexcept {
    return verification_failure_;
  }
  bool failed_in_coherence() const noexcept { return failed_in_coherence_; }
  /// Wake-ups consumed so far (diagnostics).
  std::uint64_t activations() const noexcept { return activations_; }

  void on_start(const sim::Context& ctx) override;
  sim::Action on_round(const sim::Context& ctx) override;
  sim::Payload serve_pull(const sim::Context& ctx,
                          sim::AgentId requester) override;
  void on_pull_reply(const sim::Context& ctx, sim::AgentId target,
                     const sim::Payload& reply) override;
  void on_push(const sim::Context& ctx, sim::AgentId sender,
               const sim::Payload& payload) override;
  bool done() const override { return decided_ || failed_; }

  // All observations move only inside this agent's own callbacks, so the
  // engine may mirror them into its SoA caches (sim/agent.hpp).
  bool cacheable_observations() const noexcept override { return true; }

  /// Audit-pipeline stage for adaptive schedulers (sim::EngineView).  The
  /// local schedule counts own activations, so this is the phase of the
  /// agent's *next* wake-up — exact under any activation policy.
  sim::AgentPhase phase() const noexcept override {
    return done() ? sim::AgentPhase::kDone
                  : schedule_.observed_phase(activations_);
  }

  /// Numeric pipeline position (sim::EngineView), from the local schedule
  /// and the agent's own activation count — exact under any policy.
  double progress() const noexcept override {
    return done() ? 4.0 : schedule_.progress_of(activations_);
  }

 private:
  void finalize();

  ProtocolParams params_;
  AsyncSchedule schedule_;
  Color color_;
  std::uint64_t activations_ = 0;
  VoteIntention intention_;
  CollectedIntentions collected_;
  ReceivedVotes received_votes_;
  Certificate own_cert_;
  bool own_cert_built_ = false;
  Certificate min_cert_;   ///< Best certificate seen (incl. early pushes).
  bool has_min_cert_ = false;
  bool in_coherence_ = false;
  bool failed_ = false;
  bool failed_in_coherence_ = false;
  bool decided_ = false;
  Color final_color_ = kNoColor;
  VerificationFailure verification_failure_ = VerificationFailure::kNone;
};

struct AsyncRunConfig {
  std::uint32_t n = 0;
  double gamma = 4.0;
  /// Guard band between phases, in activations.  0 = naive schedule.
  std::uint32_t slack = 0;
  std::uint64_t seed = 1;
  std::vector<Color> colors;  ///< Empty = leader election.
  std::uint32_t num_faulty = 0;
  sim::FaultPlacement placement = sim::FaultPlacement::kNone;
  /// Activation policy; the guard-band schedule counts *local* activations,
  /// so it is well-defined under any policy.  The default is the paper's
  /// sequential model; adversarial/poisson runs map where the guard-band
  /// completeness argument breaks (extends E12c/E12d), and
  /// `adversarial:phase=vote,budget=B` starves agents exactly in their
  /// voting window (E12f).
  sim::SchedulerSpec scheduler = sim::SchedulerSpec::sequential();
  /// Message-layer adversary & churn (sim/network_spec.hpp); the default is
  /// the reliable network.  E12h maps success probability against its
  /// drop/corrupt rates.
  sim::NetworkSpec network;
  /// Optional run budget override (events and/or a virtual-time horizon).
  /// Unset fields fall back to the activation-scaled default event cap.
  sim::Budget budget;
};

struct AsyncRunResult {
  Color winner = kNoColor;  ///< kNoColor = ⊥ (failure or disagreement).
  bool failed() const noexcept { return winner == kNoColor; }
  std::uint64_t steps = 0;           ///< Scheduling events elapsed.
  double virtual_time = 0.0;         ///< Simulated time (= steps discrete).
  sim::Metrics metrics;
  std::map<Color, std::uint32_t> active_colors;
};

AsyncRunResult run_async_protocol(const AsyncRunConfig& cfg);

}  // namespace rfc::core
