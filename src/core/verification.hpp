// The Verification-phase audit (last block of Algorithm 1), factored out so
// it can be unit-tested exhaustively and ablated in the equilibrium
// experiments.
//
// Given the winning certificate CE_min = (k_min, W_min, c_min, z_min) and
// the local commitment data L_u, an honest agent accepts iff:
//   (a) every vote in W_min is well-formed (value < m, round < q, label < n)
//       and no (voter, round) pair appears twice;
//   (b) k_min equals Σ_{h ∈ W_min} h mod m;
//   (c) W_min is *consistent* with L_u:
//       - a vote from a peer u marked faulty in L_u cannot appear (its
//         declared votes are all zero, footnote 4);
//       - a vote (v, j, h) with v ∈ L_u must match v's first-declared
//         intention: H_v[j] = (h, z_min);
//   (d) [strict mode only] W_min is *complete* w.r.t. L_u: if v ∈ L_u
//       declared a vote for z_min in round j, that vote must appear in
//       W_min.  Without (d) a rational winner could drop unfavourable votes
//       it received and re-aim k at a smaller value; experiment E7's
//       ablation shows this check is load-bearing.
#pragma once

#include <string>

#include "core/certificate.hpp"
#include "core/params.hpp"
#include "core/types.hpp"

namespace rfc::core {

enum class VerificationFailure : std::uint8_t {
  kNone,               ///< Certificate accepted.
  kMalformedVote,      ///< Vote value/round/label out of domain.
  kDuplicateVote,      ///< Two votes share (voter, round).
  kBadKeySum,          ///< k != Σ votes mod m.
  kVoteFromFaulty,     ///< Vote from a peer we marked faulty.
  kIntentionMismatch,  ///< Vote differs from the voter's declared intention.
  kMissingVote,        ///< Declared vote for the winner absent (strict mode).
};

std::string to_string(VerificationFailure f);

struct VerificationResult {
  VerificationFailure failure = VerificationFailure::kNone;
  bool accepted() const noexcept {
    return failure == VerificationFailure::kNone;
  }
};

VerificationResult verify_certificate(const ProtocolParams& params,
                                      const Certificate& certificate,
                                      const CollectedIntentions& collected);

}  // namespace rfc::core
