#include "core/verification.hpp"

#include <unordered_set>

namespace rfc::core {

std::string to_string(VerificationFailure f) {
  switch (f) {
    case VerificationFailure::kNone: return "none";
    case VerificationFailure::kMalformedVote: return "malformed-vote";
    case VerificationFailure::kDuplicateVote: return "duplicate-vote";
    case VerificationFailure::kBadKeySum: return "bad-key-sum";
    case VerificationFailure::kVoteFromFaulty: return "vote-from-faulty";
    case VerificationFailure::kIntentionMismatch: return "intention-mismatch";
    case VerificationFailure::kMissingVote: return "missing-vote";
  }
  return "unknown";
}

VerificationResult verify_certificate(const ProtocolParams& params,
                                      const Certificate& certificate,
                                      const CollectedIntentions& collected) {
  // (a) Well-formedness and uniqueness of (voter, round) pairs.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(certificate.votes.size());
  for (const ReceivedVote& v : certificate.votes) {
    if (v.value >= params.m || v.round_index >= params.q ||
        v.voter >= params.n) {
      return {VerificationFailure::kMalformedVote};
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(v.voter) << 32) | v.round_index;
    if (!seen.insert(key).second) {
      return {VerificationFailure::kDuplicateVote};
    }
  }

  // (b) The claimed key must equal the vote sum.
  if (certificate.k != certificate.vote_sum(params)) {
    return {VerificationFailure::kBadKeySum};
  }

  // (c) Consistency against first-declared intentions.
  for (const ReceivedVote& v : certificate.votes) {
    const auto it = collected.find(v.voter);
    if (it == collected.end()) continue;  // We never audited this voter.
    const CommitmentRecord& record = it->second;
    if (record.marked_faulty) {
      return {VerificationFailure::kVoteFromFaulty};
    }
    const VoteEntry& declared = record.intention.at(v.round_index);
    if (declared.target != certificate.owner ||
        declared.value != v.value) {
      return {VerificationFailure::kIntentionMismatch};
    }
  }

  // (d) Completeness: every audited peer's declared vote for the winner
  // must be present.  This closes the vote-dropping loophole.
  if (params.strict_verification) {
    for (const auto& [voter, record] : collected) {
      if (record.marked_faulty) continue;
      for (std::uint32_t j = 0; j < record.intention.size(); ++j) {
        if (record.intention[j].target != certificate.owner) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(voter) << 32) | j;
        if (!seen.contains(key)) {
          return {VerificationFailure::kMissingVote};
        }
      }
    }
  }

  return {VerificationFailure::kNone};
}

}  // namespace rfc::core
